// sskel — the command-line face of libsskel.
//
//   sskel run      run Algorithm 1 on a chosen adversary, optionally
//                  recording the communication-graph sequence to a file
//   sskel replay   re-run a recorded capture bit-exactly
//   sskel analyze  profile a capture's skeleton: root components,
//                  minimal k with Psrcs(k), Theorem 1 consistency
//
// Examples:
//   sskel run --adversary=random --n=10 --k=3 --seed=4 --record=run.sskel
//   sskel replay --file=run.sskel --k=3
//   sskel analyze --file=run.sskel
//   sskel run --adversary=impossibility --n=8 --k=4
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>

#include "adversary/eventual.hpp"
#include "adversary/figure1.hpp"
#include "adversary/impossibility.hpp"
#include "adversary/partition.hpp"
#include "adversary/random_psrcs.hpp"
#include "graph/scc.hpp"
#include "kset/runner.hpp"
#include "predicates/analysis.hpp"
#include "predicates/psrcs.hpp"
#include "rounds/record.hpp"
#include "skeleton/tracker.hpp"
#include "util/cli.hpp"

namespace {

using namespace sskel;

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: sskel <run|replay|analyze> [flags]\n"
               "  run     --adversary=random|figure1|impossibility|eventual|"
               "partition\n"
               "          [--n=N] [--k=K] [--roots=J] [--seed=S] "
               "[--noise=P]\n"
               "          [--record=FILE] [--quiet]\n"
               "  replay  --file=FILE [--k=K] [--quiet]\n"
               "  analyze --file=FILE\n");
  std::exit(2);
}

void save_file(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    std::fprintf(stderr, "sskel: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  os.write(reinterpret_cast<const char*>(b.data()),
           static_cast<std::streamsize>(b.size()));
}

std::vector<std::uint8_t> load_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    std::fprintf(stderr, "sskel: cannot read %s\n", path.c_str());
    std::exit(1);
  }
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(is),
                                   std::istreambuf_iterator<char>());
}

std::vector<Digraph> load_run(const std::string& path) {
  DecodeResult<std::vector<Digraph>> run = decode_run(load_file(path));
  if (!run.ok()) {
    std::fprintf(stderr, "sskel: %s is not a valid capture: %s\n",
                 path.c_str(), run.error().to_string().c_str());
    std::exit(1);
  }
  return std::move(run.value());
}

void print_report(const KSetRunReport& report, int k, bool quiet) {
  if (!quiet) {
    for (ProcId p = 0; p < report.n; ++p) {
      const Outcome& o = report.outcomes[static_cast<std::size_t>(p)];
      std::cout << "  p" << p << ": proposed " << o.proposal << " -> ";
      if (o.decided) {
        std::cout << "decided " << o.decision << " (round "
                  << o.decision_round << ")\n";
      } else {
        std::cout << "UNDECIDED\n";
      }
    }
  }
  std::cout << "rounds executed: " << report.rounds_executed
            << ", r_ST: " << report.skeleton_last_change
            << ", root components: " << report.root_components_final.size()
            << "\n";
  std::cout << "distinct values: " << report.distinct_values << " (k = " << k
            << ")\n";
  std::cout << "k-agreement " << (report.verdict.k_agreement ? "ok" : "VIOLATED")
            << ", validity " << (report.verdict.validity ? "ok" : "VIOLATED")
            << ", termination "
            << (report.verdict.termination ? "ok" : "VIOLATED") << "\n";
}

std::unique_ptr<GraphSource> build_adversary(const CliArgs& args, int k) {
  const std::string kind = args.get_string("adversary", "random");
  const ProcId n = static_cast<ProcId>(args.get_int("n", 10));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1));
  if (kind == "random") {
    RandomPsrcsParams params;
    params.n = n;
    params.k = k;
    params.root_components =
        static_cast<int>(args.get_int("roots", k));
    params.noise_probability = args.get_double("noise", 0.25);
    params.stabilization_round = 3;
    return std::make_unique<RandomPsrcsSource>(seed, params);
  }
  if (kind == "figure1") return make_figure1_source();
  if (kind == "impossibility") return make_impossibility_source(n, k);
  if (kind == "eventual") return make_eventual_source(n, 2 * n);
  if (kind == "partition") {
    PartitionParams params;
    params.blocks = even_blocks(n, k);
    params.cross_noise_probability = args.get_double("noise", 0.0);
    params.stabilization_round = 3;
    return std::make_unique<PartitionSource>(seed, params);
  }
  std::fprintf(stderr, "sskel: unknown adversary '%s'\n", kind.c_str());
  std::exit(2);
}

int cmd_run(const CliArgs& args) {
  const int k = static_cast<int>(args.get_int("k", 2));
  auto source = build_adversary(args, k);
  RecordingSource recorder(*source);

  KSetRunConfig config;
  config.k = k;
  const KSetRunReport report = run_kset(recorder, config);
  print_report(report, k, args.get_bool("quiet", false));

  const std::string record_path = args.get_string("record", "");
  if (!record_path.empty()) {
    save_file(record_path, encode_run(recorder.recorded()));
    std::cout << "recorded " << recorder.recorded().size() << " rounds to "
              << record_path << "\n";
  }
  return report.verdict.all_hold() ? 0 : 1;
}

int cmd_replay(const CliArgs& args) {
  const std::string path = args.get_string("file", "");
  if (path.empty()) usage();
  ReplaySource replay(load_run(path));
  const int k = static_cast<int>(args.get_int("k", 2));
  KSetRunConfig config;
  config.k = k;
  const KSetRunReport report = run_kset(replay, config);
  print_report(report, k, args.get_bool("quiet", false));
  return report.verdict.all_hold() ? 0 : 1;
}

int cmd_analyze(const CliArgs& args) {
  const std::string path = args.get_string("file", "");
  if (path.empty()) usage();
  const std::vector<Digraph> run = load_run(path);

  SkeletonTracker tracker(run.front().n());
  for (std::size_t i = 0; i < run.size(); ++i) {
    Digraph g = run[i];
    g.add_self_loops();
    tracker.observe(static_cast<Round>(i + 1), g);
  }
  const Digraph& skeleton = tracker.skeleton();

  std::cout << "capture: " << run.size() << " rounds, n = " << skeleton.n()
            << "\n";
  std::cout << "skeleton: " << skeleton.edge_count()
            << " edges, last change at round " << tracker.last_change_round()
            << "\n";
  const auto roots = root_components(skeleton);
  std::cout << "root components (" << roots.size() << "):\n";
  for (const ProcSet& root : roots) {
    std::cout << "  " << root.to_string() << "\n";
  }
  if (skeleton.n() <= 20) {
    const PredicateProfile profile = profile_skeleton(skeleton);
    if (profile.min_k < skeleton.n()) {
      std::cout << "smallest k with Psrcs(k): " << profile.min_k << "\n";
    } else {
      std::cout << "Psrcs(k) fails for every k < n\n";
    }
    std::cout << "Theorem 1 (roots <= min k): "
              << (profile.theorem1_consistent ? "consistent" : "VIOLATED")
              << "\n";
  } else {
    std::cout << "(skipping exact predicate analysis for n > 20)\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  const CliArgs args(argc - 1, argv + 1,
                     {"adversary", "n", "k", "roots", "seed", "noise",
                      "record", "file", "quiet"});
  if (command == "run") return cmd_run(args);
  if (command == "replay") return cmd_replay(args);
  if (command == "analyze") return cmd_analyze(args);
  usage();
}
