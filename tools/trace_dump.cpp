// sskel_trace — inspect, seed and replay framed trace captures.
//
//   sskel_trace dump      --file=F            pretty-print a capture
//   sskel_trace replay    --file=F [--k=K]    re-run the captured graphs
//                                             through the Simulator
//   sskel_trace make-seed --out=DIR           write fuzz-corpus seeds
//
// dump is the debugging face of DESIGN.md §14: it decodes with the
// hardened decoder and prints *where* and *why* a malformed capture
// was rejected (status, byte offset, field), so a fuzzer artifact or a
// truncated CI upload explains itself.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "kset/runner.hpp"
#include "rounds/record.hpp"
#include "rounds/trace.hpp"
#include "skeleton/codec.hpp"
#include "util/cli.hpp"

namespace {

using namespace sskel;

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: sskel_trace <dump|replay|make-seed> [flags]\n"
               "  dump      --file=FILE\n"
               "  replay    --file=FILE [--k=K] [--quiet]\n"
               "  make-seed --out=DIR\n");
  std::exit(2);
}

std::vector<std::uint8_t> load_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    std::fprintf(stderr, "sskel_trace: cannot read %s\n", path.c_str());
    std::exit(1);
  }
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(is),
                                   std::istreambuf_iterator<char>());
}

void save_file(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    std::fprintf(stderr, "sskel_trace: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  os.write(reinterpret_cast<const char*>(b.data()),
           static_cast<std::streamsize>(b.size()));
}

RunCapture load_capture(const std::string& path) {
  DecodeResult<RunCapture> r = decode_trace(load_file(path));
  if (!r.ok()) {
    std::fprintf(stderr, "sskel_trace: %s: %s\n", path.c_str(),
                 r.error().to_string().c_str());
    std::exit(1);
  }
  return std::move(r.value());
}

const char* source_name(TraceSource s) {
  switch (s) {
    case TraceSource::kSimulator: return "simulator";
    case TraceSource::kNetRing: return "net/ring";
    case TraceSource::kNetEventQueue: return "net/event-queue";
  }
  return "?";
}

const char* kind_name(DeliveryKind k) {
  switch (k) {
    case DeliveryKind::kOnTime: return "on-time";
    case DeliveryKind::kLate: return "late";
    case DeliveryKind::kDropped: return "dropped";
    case DeliveryKind::kTieDiscard: return "tie-discard";
  }
  return "?";
}

int cmd_dump(const CliArgs& args) {
  const std::string path = args.get_string("file", "");
  if (path.empty()) usage();
  const RunCapture c = load_capture(path);

  std::cout << "header: n=" << c.header.n << " source="
            << source_name(c.header.source) << " seed=" << c.header.seed
            << " D=" << c.header.round_duration << "\n";
  std::cout << "frames: " << c.graphs.size() << " graphs, " << c.stats.size()
            << " stats, " << c.messages.size() << " messages, "
            << c.deliveries.size() << " deliveries, " << c.closes.size()
            << " closes\n";
  for (std::size_t i = 0; i < c.graphs.size(); ++i) {
    const Digraph& g = c.graphs[i];
    std::cout << "  round " << i + 1 << ": " << g.nodes().count()
              << " nodes, " << g.edge_count() << " edges";
    if (i < c.stats.size()) {
      std::cout << ", " << c.stats[i].messages_delivered << " msgs, "
                << c.stats[i].bytes_delivered << " bytes";
    }
    std::cout << "\n";
  }
  std::int64_t by_kind[4] = {0, 0, 0, 0};
  for (const DeliveryRecord& d : c.deliveries) {
    ++by_kind[static_cast<int>(d.kind)];
  }
  std::cout << "deliveries: " << by_kind[0] << " on-time, " << by_kind[1]
            << " late, " << by_kind[2] << " dropped, " << by_kind[3]
            << " tie-discard\n";
  if (!c.deliveries.empty()) {
    std::cout << "first deliveries:\n";
    for (std::size_t i = 0; i < c.deliveries.size() && i < 10; ++i) {
      const DeliveryRecord& d = c.deliveries[i];
      std::cout << "  r" << d.round << " " << d.from << "->" << d.to << " "
                << kind_name(d.kind) << " t=" << d.time << "\n";
    }
  }
  return 0;
}

int cmd_replay(const CliArgs& args) {
  const std::string path = args.get_string("file", "");
  if (path.empty()) usage();
  const RunCapture c = load_capture(path);
  if (c.graphs.empty()) {
    std::fprintf(stderr, "sskel_trace: capture has no graphs to replay\n");
    return 1;
  }
  ReplaySource replay(c.graphs);
  KSetRunConfig config;
  config.k = static_cast<int>(args.get_int("k", 2));
  const KSetRunReport report = run_kset(replay, config);
  if (!args.get_bool("quiet", false)) {
    for (ProcId p = 0; p < report.n; ++p) {
      const Outcome& o = report.outcomes[static_cast<std::size_t>(p)];
      std::cout << "  p" << p << ": ";
      if (o.decided) {
        std::cout << "decided " << o.decision << " (round "
                  << o.decision_round << ")\n";
      } else {
        std::cout << "UNDECIDED\n";
      }
    }
  }
  std::cout << "rounds executed: " << report.rounds_executed
            << ", distinct values: " << report.distinct_values << "\n";
  std::cout << "k-agreement "
            << (report.verdict.k_agreement ? "ok" : "VIOLATED") << ", validity "
            << (report.verdict.validity ? "ok" : "VIOLATED") << ", termination "
            << (report.verdict.termination ? "ok" : "VIOLATED") << "\n";
  return report.verdict.all_hold() ? 0 : 1;
}

int cmd_make_seed(const CliArgs& args) {
  const std::string dir = args.get_string("out", "");
  if (dir.empty()) usage();

  // Run-codec seed: a short three-round capture with node churn.
  Digraph a(9);
  a.add_self_loops();
  a.add_edge(0, 5);
  a.add_edge(7, 3);
  Digraph b = a;
  b.remove_node(8);
  save_file(dir + "/run_codec.bin", encode_run({a, b, a}));

  // Graph-codec seed: labels spanning one- and two-byte varints.
  LabeledDigraph lg(11, 4);
  for (ProcId p = 0; p < 11; ++p) lg.add_node(p);
  lg.set_edge(4, 7, 200);
  lg.set_edge(9, 1, 3);
  save_file(dir + "/graph_codec.bin", encode_graph(lg));

  // Trace seed: every frame type, every delivery kind.
  RunCapture c;
  c.header = TraceHeader{5, TraceSource::kNetRing, 42, 1000};
  Digraph g(5);
  g.add_self_loops();
  g.add_edge(0, 1);
  c.graphs = {g};
  c.stats = {RoundStats{1, 7, 140, 20}};
  c.messages.push_back(MessageRecord{1, 0, {0xde, 0xad, 0xbe, 0xef}});
  c.deliveries.push_back(DeliveryRecord{1, 0, 1, DeliveryKind::kOnTime, 900});
  c.deliveries.push_back(DeliveryRecord{1, 1, 2, DeliveryKind::kLate, 1100});
  c.deliveries.push_back(DeliveryRecord{1, 2, 3, DeliveryKind::kDropped, 0});
  c.deliveries.push_back(
      DeliveryRecord{1, 3, 4, DeliveryKind::kTieDiscard, 1000});
  c.closes.push_back(CloseRecord{1, 0, 1000});
  save_file(dir + "/trace_codec.bin", encode_trace(c));

  std::cout << "wrote run_codec.bin, graph_codec.bin, trace_codec.bin to "
            << dir << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  const CliArgs args(argc - 1, argv + 1, {"file", "k", "quiet", "out"});
  if (command == "dump") return cmd_dump(args);
  if (command == "replay") return cmd_replay(args);
  if (command == "make-seed") return cmd_make_seed(args);
  usage();
}
