// sskel_campaign — run, resume and inspect checkpointed campaigns.
//
//   sskel_campaign run    --spec=F --state=DIR [flags]  fresh run
//   sskel_campaign resume --spec=F --state=DIR [flags]  continue from
//                                                       the newest
//                                                       checkpoint
//   sskel_campaign status --state=DIR                   inspect a
//                                                       checkpoint
//   sskel_campaign make-seed --out=DIR                  SSKC fuzz seeds
//
// Shared run/resume flags:
//   --artifacts=DIR   capture misbehaving trials as .sskt files
//   --stop-after=N    deterministic kill after N folded trials
//   --progress=N      emit a progress record every N trials
//   --progress-path=F append progress records to F (JSON lines)
//   --checkpoint-every=N  checkpoint cadence (default 10000)
//   --window=N        in-flight trial window (default 256)
//   --tiles=N         worker tiles (0 = resolve from environment)
//   --quiet           suppress per-job digest lines
//
// run/resume print one line per job:
//
//   job <name> trials=<folded>/<total> digest=<hex16>
//
// where the digest is FNV-1a 64 over encode_summary_trial_fields — two
// runs folded the same trials iff the digests match, which is how the
// CI kill+resume job compares an interrupted+resumed campaign against
// an uninterrupted one.
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "campaign/campaign.hpp"
#include "campaign/spec.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

using namespace sskel;

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: sskel_campaign <run|resume|status|make-seed> [flags]\n"
               "  run    --spec=FILE --state=DIR [--artifacts=DIR]\n"
               "         [--stop-after=N] [--progress=N] "
               "[--progress-path=FILE]\n"
               "         [--checkpoint-every=N] [--window=N] [--tiles=N] "
               "[--quiet]\n"
               "  resume (same flags as run)\n"
               "  status --state=DIR\n"
               "  make-seed --out=DIR\n");
  std::exit(2);
}

CampaignSpec load_spec(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "sskel_campaign: cannot read %s\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream text;
  text << in.rdbuf();
  SpecParseResult parsed = parse_campaign_spec(text.str());
  if (!parsed.spec.has_value()) {
    std::fprintf(stderr, "sskel_campaign: %s:%d: %s\n", path.c_str(),
                 parsed.line, parsed.error.c_str());
    std::exit(1);
  }
  return std::move(*parsed.spec);
}

void print_result(const CampaignSpec& spec, const CampaignResult& result,
                  bool quiet) {
  if (!quiet) {
    for (std::size_t j = 0; j < spec.jobs.size(); ++j) {
      const std::uint64_t digest =
          fnv1a64(encode_summary_trial_fields(result.summaries[j]));
      std::printf("job %s trials=%" PRId64 "/%" PRId64 " digest=%016" PRIx64
                  "\n",
                  spec.jobs[j].name.c_str(), result.trials_folded[j],
                  spec.jobs[j].trials, digest);
    }
  }
  const CampaignStats& stats = result.stats;
  std::printf("campaign %s: folded=%" PRId64 " wall=%.3fs "
              "sustained=%.0f trials/s checkpoints=%" PRId64
              " stall=%.3f%% artifacts=%" PRId64 "\n",
              result.completed ? "completed" : "interrupted",
              stats.trials_folded, stats.wall_seconds,
              stats.sustained_trials_per_sec, stats.checkpoints_written,
              stats.checkpoint_stall_pct, stats.artifacts_captured);
}

int cmd_run(const CliArgs& args, bool resume) {
  const std::string spec_path = args.get_string("spec", "");
  if (spec_path.empty()) usage();
  CampaignSpec spec = load_spec(spec_path);

  CampaignOptions options;
  options.state_dir = args.get_string("state", "");
  options.artifact_dir = args.get_string("artifacts", "");
  options.stop_after_trials = args.get_int("stop-after", -1);
  options.progress_every = args.get_int("progress", 0);
  options.progress_path = args.get_string("progress-path", "");
  options.checkpoint_every = args.get_int("checkpoint-every", 10000);
  options.window = static_cast<std::size_t>(args.get_int("window", 256));
  options.plane.tiles = static_cast<unsigned>(args.get_int("tiles", 0));

  if (resume && !options.state_dir.empty()) {
    // Friendly fingerprint check before the engine REQUIREs it. The
    // expected fingerprint makes load_latest prefer a matching
    // generation, so this only trips when *no* generation matches.
    if (const auto loaded =
            CheckpointWriter::load_latest(options.state_dir,
                                          spec.fingerprint());
        loaded.has_value() &&
        loaded->spec_fingerprint != spec.fingerprint()) {
      std::fprintf(stderr,
                   "sskel_campaign: checkpoint in %s was written by a "
                   "different spec (fingerprint %016" PRIx64
                   " != %016" PRIx64 ")\n",
                   options.state_dir.c_str(), loaded->spec_fingerprint,
                   spec.fingerprint());
      return 1;
    }
  }

  CampaignEngine engine(std::move(spec), std::move(options));
  const CampaignResult result = resume ? engine.resume() : engine.run();
  print_result(engine.spec(), result, args.get_bool("quiet", false));
  return 0;
}

int cmd_status(const CliArgs& args) {
  const std::string state_dir = args.get_string("state", "");
  if (state_dir.empty()) usage();
  const auto loaded = CheckpointWriter::load_latest(state_dir);
  if (!loaded.has_value()) {
    std::printf("no decodable checkpoint in %s\n", state_dir.c_str());
    return 1;
  }
  std::printf("checkpoint fingerprint=%016" PRIx64 " jobs=%zu\n",
              loaded->spec_fingerprint, loaded->jobs.size());
  for (std::size_t j = 0; j < loaded->jobs.size(); ++j) {
    const JobCheckpoint& job = loaded->jobs[j];
    const std::uint64_t digest =
        fnv1a64(encode_summary_trial_fields(job.summary));
    std::printf("  job %zu scenario=%s trials_folded=%" PRId64
                " digest=%016" PRIx64 "\n",
                j, job.summary.scenario.c_str(), job.trials_folded, digest);
  }
  return 0;
}

/// Writes structurally valid SSKC files for the fuzz corpus: the
/// decoder's happy path plus an interesting partial (mid-sweep state
/// with histograms and a resumed accumulator).
int cmd_make_seed(const CliArgs& args) {
  const std::string out_dir = args.get_string("out", "");
  if (out_dir.empty()) usage();
  std::filesystem::create_directories(out_dir);

  const auto save = [&](const char* name,
                        const std::vector<std::uint8_t>& bytes) {
    const std::filesystem::path path = std::filesystem::path(out_dir) / name;
    std::ofstream os(path, std::ios::binary);
    if (!os) {
      std::fprintf(stderr, "sskel_campaign: cannot write %s\n",
                   path.string().c_str());
      std::exit(1);
    }
    os.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  };

  CampaignCheckpoint empty;
  empty.spec_fingerprint = 0x5353'4b43;
  save("ckpt_empty.sskc", encode_checkpoint(empty));

  // A realistic mid-sweep checkpoint: fold actual trials so every
  // field class (accumulators, histograms, strings) is populated.
  PartitionParams params;
  params.blocks = even_blocks(4, 2);
  const PartitionScenario scenario(std::move(params));
  KSetRunConfig config;
  config.k = 2;
  CampaignCheckpoint partial;
  partial.spec_fingerprint = 0xdead'beef;
  JobCheckpoint job;
  job.summary.scenario = scenario.name();
  job.summary.bytes_measured = config.measure_bytes;
  for (std::uint64_t t = 0; t < 5; ++t) {
    const ScenarioTrial trial = scenario.run_trial(mix_seed(7, t), config);
    fold_scenario_trial(job.summary, trial, config);
    ++job.trials_folded;
  }
  partial.jobs.push_back(std::move(job));
  save("ckpt_partial.sskc", encode_checkpoint(partial));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  const CliArgs args(argc - 1, argv + 1,
                     {"spec", "state", "artifacts", "stop-after", "progress",
                      "progress-path", "checkpoint-every", "window", "tiles",
                      "quiet", "out"});
  if (command == "run") return cmd_run(args, /*resume=*/false);
  if (command == "resume") return cmd_run(args, /*resume=*/true);
  if (command == "status") return cmd_status(args);
  if (command == "make-seed") return cmd_make_seed(args);
  usage();
}
