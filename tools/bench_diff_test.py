#!/usr/bin/env python3
"""Unit tests for bench_diff.py — baseline selection and field picking."""

import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_diff  # noqa: E402


def run(database_id, branch):
    return {"databaseId": database_id, "headBranch": branch}


class SelectBaselineTest(unittest.TestCase):
    def test_prefers_newest_run_on_same_branch(self):
        runs = [run(30, "feature"), run(20, "feature"), run(10, "main")]
        self.assertEqual(
            bench_diff.select_baseline(runs, 99, "feature", "main"), 30)

    def test_excludes_the_current_run(self):
        runs = [run(30, "feature"), run(20, "feature")]
        self.assertEqual(
            bench_diff.select_baseline(runs, 30, "feature", "main"), 20)

    def test_current_run_id_compares_as_string(self):
        # gh emits numeric ids; GITHUB_RUN_ID arrives as a string.
        runs = [run(30, "feature"), run(20, "feature")]
        self.assertEqual(
            bench_diff.select_baseline(runs, "30", "feature", "main"), 20)

    def test_falls_back_to_default_branch_on_first_push(self):
        runs = [run(30, "other"), run(20, "main"), run(10, "main")]
        self.assertEqual(
            bench_diff.select_baseline(runs, 99, "feature", "main"), 20)

    def test_no_candidate_returns_none(self):
        self.assertIsNone(
            bench_diff.select_baseline([], 99, "feature", "main"))
        runs = [run(30, "other")]
        self.assertIsNone(
            bench_diff.select_baseline(runs, 99, "feature", "main"))

    def test_default_branch_run_is_not_picked_over_branch_run(self):
        # A newer default-branch run must not shadow the branch's own
        # history.
        runs = [run(40, "main"), run(30, "feature")]
        self.assertEqual(
            bench_diff.select_baseline(runs, 99, "feature", "main"), 30)

    def test_on_default_branch_current_run_is_still_excluded(self):
        # branch == default_branch: only one scan, current excluded.
        runs = [run(30, "main"), run(20, "main")]
        self.assertEqual(
            bench_diff.select_baseline(runs, 30, "main", "main"), 20)

    def test_only_current_run_on_default_branch_returns_none(self):
        runs = [run(30, "main")]
        self.assertIsNone(
            bench_diff.select_baseline(runs, 30, "main", "main"))

    def test_malformed_run_entries_are_skipped(self):
        runs = [{"headBranch": "feature"}, run(20, "feature")]
        self.assertEqual(
            bench_diff.select_baseline(runs, 99, "feature", "main"), 20)


class MeasuredFieldsTest(unittest.TestCase):
    def test_intern_counters_are_compared(self):
        record = {"op": "trial", "n": 64,
                  "intern_misses": 12, "intern_hits": 900,
                  "subsets_visited": 5, "total_ns": 1e6,
                  "note": "not-a-number"}
        fields = {name for name, _, _, _ in bench_diff.measured_fields(record)}
        self.assertEqual(
            fields,
            {"intern_misses", "intern_hits", "subsets_visited", "total_ns"})

    def test_peak_memory_counters_are_compared(self):
        record = {"op": "micro_intersect", "n": 65536,
                  "peak_bytes_dense": 2_147_483_648,
                  "peak_bytes_tiered": 16_777_216,
                  "speedup": 125.0, "tiered_ns": 1e7}
        fields = {name for name, _, _, _ in bench_diff.measured_fields(record)}
        self.assertIn("peak_bytes_dense", fields)
        self.assertIn("peak_bytes_tiered", fields)
        self.assertIn("tiered_ns", fields)
        self.assertNotIn("speedup", fields)  # ratio, not timing/counter

    def test_identity_fields_are_never_measured(self):
        record = {"op": "trial", "n": 64, "k": 2, "rounds": 10,
                  "plane": "ring", "tiles": 2}
        self.assertEqual(list(bench_diff.measured_fields(record)), [])

    def test_rate_fields_are_higher_is_better(self):
        record = {"op": "plane_throughput", "plane": "ring", "n": 24,
                  "process_rounds_per_sec": 1.7e6, "total_ns": 2e9,
                  "credit_stall_total": 3}
        directions = {name: higher for name, _, _, higher
                      in bench_diff.measured_fields(record)}
        self.assertTrue(directions["process_rounds_per_sec"])
        self.assertFalse(directions["total_ns"])
        self.assertFalse(directions["credit_stall_total"])

    def test_credit_counters_are_compared(self):
        record = {"op": "multiplexed", "tiles": 2,
                  "credit_stall_submit": 10, "credit_stall_result": 4}
        fields = {name for name, _, _, _ in bench_diff.measured_fields(record)}
        self.assertEqual(fields,
                         {"credit_stall_submit", "credit_stall_result"})

    def test_mean_fields_are_compared_lower_is_better(self):
        record = {"op": "trial", "n": 64,
                  "mean_late_messages": 296.2, "mean_rounds": 9.5}
        directions = {name: higher for name, _, _, higher
                      in bench_diff.measured_fields(record)}
        self.assertEqual(set(directions),
                         {"mean_late_messages", "mean_rounds"})
        self.assertFalse(directions["mean_late_messages"])

    def test_mean_fields_carry_an_absolute_tolerance(self):
        self.assertEqual(bench_diff.abs_tolerance("mean_late_messages"),
                         bench_diff.MEAN_ABS_TOLERANCE)
        self.assertEqual(bench_diff.abs_tolerance("total_ns"), 0.0)

    def test_campaign_fields_pick_the_right_directions(self):
        # The E17 record: sustained throughput is a rate (higher is
        # better), checkpoint stall is a percentage (lower is better),
        # and the gate booleans/ratios are not measured at all.
        record = {"op": "campaign_throughput",
                  "sustained_trials_per_sec": 7.1e4,
                  "batch_trials_per_sec": 6.0e4,
                  "checkpoint_stall_pct": 0.04,
                  "throughput_ratio": 1.18,
                  "throughput_gate_pass": 1}
        directions = {name: higher for name, _, _, higher
                      in bench_diff.measured_fields(record)}
        self.assertTrue(directions["sustained_trials_per_sec"])
        self.assertTrue(directions["batch_trials_per_sec"])
        self.assertFalse(directions["checkpoint_stall_pct"])
        self.assertNotIn("throughput_ratio", directions)
        self.assertNotIn("throughput_gate_pass", directions)

    def test_pct_fields_carry_an_absolute_tolerance(self):
        self.assertEqual(bench_diff.abs_tolerance("checkpoint_stall_pct"),
                         bench_diff.PCT_ABS_TOLERANCE)

    def test_plane_distinguishes_record_identity(self):
        ring = {"op": "plane_throughput", "plane": "ring", "n": 24}
        eq = {"op": "plane_throughput", "plane": "event-queue", "n": 24}
        self.assertNotEqual(bench_diff.record_key(ring),
                            bench_diff.record_key(eq))


class DiffDirectionTest(unittest.TestCase):
    """End-to-end diff runs over temp files: regression directions."""

    def run_diff(self, base_records, cur_records, threshold=2.0):
        import json
        import tempfile
        with tempfile.TemporaryDirectory() as tmp:
            base_path = os.path.join(tmp, "base.json")
            cur_path = os.path.join(tmp, "cur.json")
            with open(base_path, "w", encoding="utf-8") as f:
                json.dump({"bench": "t", "records": base_records}, f)
            with open(cur_path, "w", encoding="utf-8") as f:
                json.dump({"bench": "t", "records": cur_records}, f)
            return bench_diff.main_diff(
                [base_path, cur_path, "--threshold", str(threshold)])

    def test_rate_drop_beyond_threshold_fails(self):
        base = [{"op": "plane_throughput", "plane": "ring",
                 "process_rounds_per_sec": 1.6e6}]
        cur = [{"op": "plane_throughput", "plane": "ring",
                "process_rounds_per_sec": 0.5e6}]  # > 2x slower
        self.assertEqual(self.run_diff(base, cur), 1)

    def test_rate_gain_never_fails(self):
        base = [{"op": "plane_throughput", "plane": "ring",
                 "process_rounds_per_sec": 0.5e6}]
        cur = [{"op": "plane_throughput", "plane": "ring",
                "process_rounds_per_sec": 5e6}]  # 10x faster: fine
        self.assertEqual(self.run_diff(base, cur), 0)

    def test_rate_drop_within_threshold_passes(self):
        base = [{"op": "plane_throughput", "plane": "ring",
                 "process_rounds_per_sec": 1.6e6}]
        cur = [{"op": "plane_throughput", "plane": "ring",
                "process_rounds_per_sec": 1.0e6}]  # 1.6x: under 2x
        self.assertEqual(self.run_diff(base, cur), 0)

    def test_credit_stall_growth_fails(self):
        base = [{"op": "multiplexed", "tiles": 2,
                 "credit_stall_submit": 100}]
        cur = [{"op": "multiplexed", "tiles": 2,
                "credit_stall_submit": 500}]
        self.assertEqual(self.run_diff(base, cur), 1)

    def test_small_absolute_mean_move_passes_despite_large_ratio(self):
        # 0.1 -> 0.8 is an 8x ratio but under the 1.0-unit band: float
        # noise and single-trial jitter, not a regression.
        base = [{"op": "trial", "n": 64, "mean_late_messages": 0.1}]
        cur = [{"op": "trial", "n": 64, "mean_late_messages": 0.8}]
        self.assertEqual(self.run_diff(base, cur), 0)

    def test_large_mean_regression_still_fails(self):
        base = [{"op": "trial", "n": 64, "mean_late_messages": 10.0}]
        cur = [{"op": "trial", "n": 64, "mean_late_messages": 50.0}]
        self.assertEqual(self.run_diff(base, cur), 1)

    def test_sustained_rate_drop_beyond_threshold_fails(self):
        base = [{"op": "campaign_throughput",
                 "sustained_trials_per_sec": 7.0e4}]
        cur = [{"op": "campaign_throughput",
                "sustained_trials_per_sec": 2.0e4}]  # 3.5x slower
        self.assertEqual(self.run_diff(base, cur), 1)

    def test_small_pct_move_passes_despite_large_ratio(self):
        # 0.04% -> 0.3% stall is a 7.5x ratio but within the absolute
        # band: timer jitter on a fast run, not a regression.
        base = [{"op": "campaign_throughput", "checkpoint_stall_pct": 0.04}]
        cur = [{"op": "campaign_throughput", "checkpoint_stall_pct": 0.3}]
        self.assertEqual(self.run_diff(base, cur), 0)

    def test_large_pct_regression_fails(self):
        base = [{"op": "campaign_throughput", "checkpoint_stall_pct": 0.6}]
        cur = [{"op": "campaign_throughput", "checkpoint_stall_pct": 3.0}]
        self.assertEqual(self.run_diff(base, cur), 1)

    def test_missing_baseline_record_is_skipped(self):
        base = []
        cur = [{"op": "plane_throughput", "plane": "ring",
                "process_rounds_per_sec": 1.6e6}]
        self.assertEqual(self.run_diff(base, cur), 0)


if __name__ == "__main__":
    unittest.main()
