#!/usr/bin/env python3
"""Diff two BENCH_*.json files and fail on large regressions.

Usage:
    bench_diff.py BASELINE CURRENT [--threshold 2.0]
    bench_diff.py select-baseline RUNS_JSON --current-run ID \
        --branch BRANCH [--default-branch main]

Records are matched on their identity fields (op plus n/k/adversary/
plane/tiles when present). For every matched pair the timing fields
(*_ns, ns_per_op), throughput rates (*_per_sec — higher is better),
percentage overheads (*_pct — lower is better, with an absolute
tolerance band like means) and work counters (subsets_visited*,
intern_*, credit_*) are
compared; a lower-is-better value that grew by more than `threshold`
x its baseline — or a rate that fell below baseline / `threshold` —
counts as a regression and flips the exit code to 1. Records present
on only one side are reported but never fail the diff (benches come
and go), and timing fields below a noise floor are skipped —
sub-microsecond rows regress by scheduling jitter alone.

Mean-style statistics (mean_*) are compared with an additional
absolute-tolerance band: a small mean moving by a fraction of a unit
is a huge *ratio* but no regression (0.1 -> 0.3 late messages is
noise), so the ratio check only applies when |current - baseline|
also exceeds MEAN_ABS_TOLERANCE.

The `select-baseline` subcommand picks which earlier CI run to diff
against from a `gh run list --json databaseId,headBranch` dump
(newest first): the latest successful run on the same branch, or —
when the branch has none (first push of a PR branch) — the latest
successful run on the default branch. Prints the chosen run id, or
nothing when no candidate exists.
"""

import argparse
import json
import sys

# Fields that identify a record rather than measure it.
IDENTITY_FIELDS = ("op", "adversary", "n", "k", "j", "rounds", "plane",
                   "tiles")
# Measured fields compared against the threshold: (suffix, noise floor).
TIMING_SUFFIXES = ("_ns", "ns_per_op")
# Throughput rates: higher is better, so the regression direction flips.
RATE_SUFFIXES = ("_per_sec",)
# Percentage overheads (checkpoint_stall_pct, ...): lower is better,
# but like means their ratios lie near zero — 0.04% -> 0.3% is a 7.5x
# ratio and still nothing — so they carry an absolute band too.
PCT_SUFFIXES = ("_pct",)
PCT_ABS_TOLERANCE = 0.5
COUNTER_PREFIXES = ("subsets_visited", "intern_", "peak_", "credit_")
# Mean-style statistics: lower is better, but ratios lie for small
# means — the diff additionally requires an absolute move above
# MEAN_ABS_TOLERANCE before flagging one.
MEAN_PREFIXES = ("mean_",)
MEAN_ABS_TOLERANCE = 1.0
TIMING_NOISE_FLOOR_NS = 1000.0  # ignore sub-microsecond timings
RATE_NOISE_FLOOR = 1.0
COUNTER_NOISE_FLOOR = 64.0


def record_key(record):
    return tuple((f, record[f]) for f in IDENTITY_FIELDS if f in record)


def measured_fields(record):
    """Yields (name, value, noise_floor, higher_is_better) per field."""
    for key, value in record.items():
        if key in IDENTITY_FIELDS or not isinstance(value, (int, float)):
            continue
        if any(key.endswith(s) for s in TIMING_SUFFIXES):
            yield key, float(value), TIMING_NOISE_FLOOR_NS, False
        elif any(key.endswith(s) for s in RATE_SUFFIXES):
            yield key, float(value), RATE_NOISE_FLOOR, True
        elif any(key.endswith(s) for s in PCT_SUFFIXES):
            yield key, float(value), 0.0, False
        elif any(key.startswith(p) for p in COUNTER_PREFIXES):
            yield key, float(value), COUNTER_NOISE_FLOOR, False
        elif any(key.startswith(p) for p in MEAN_PREFIXES):
            yield key, float(value), 0.0, False


def abs_tolerance(field):
    """Absolute move a field must exceed before its ratio is judged."""
    if any(field.startswith(p) for p in MEAN_PREFIXES):
        return MEAN_ABS_TOLERANCE
    if any(field.endswith(s) for s in PCT_SUFFIXES):
        return PCT_ABS_TOLERANCE
    return 0.0


def load_records(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    records = {}
    for record in doc.get("records", []):
        # Last record wins on duplicate keys; benches do not emit
        # duplicates, but a malformed file should not crash the diff.
        records[record_key(record)] = record
    return doc.get("bench", "?"), records


def select_baseline(runs, current_run_id, branch, default_branch="main"):
    """Picks the CI run whose artifact should be the diff baseline.

    `runs` is a newest-first list of {"databaseId": ..., "headBranch":
    ...} dicts (successful runs only — the caller filters by status).
    Returns the databaseId of the newest run on `branch` that is not
    the current run; when the branch has no prior run (first push of a
    PR branch), falls back to the newest run on `default_branch`;
    returns None when neither exists.
    """
    current = str(current_run_id)
    candidates = [r for r in runs
                  if str(r.get("databaseId", "")) != current
                  and r.get("databaseId") is not None]
    for run in candidates:
        if run.get("headBranch") == branch:
            return run["databaseId"]
    if branch != default_branch:
        for run in candidates:
            if run.get("headBranch") == default_branch:
                return run["databaseId"]
    return None


def main_select_baseline(argv):
    parser = argparse.ArgumentParser(
        prog="bench_diff.py select-baseline",
        description="Pick the baseline CI run id from a gh run list dump.")
    parser.add_argument("runs_json",
                        help="file with `gh run list --json "
                             "databaseId,headBranch` output")
    parser.add_argument("--current-run", required=True,
                        help="run id to exclude (the run doing the diff)")
    parser.add_argument("--branch", required=True,
                        help="branch whose history is preferred")
    parser.add_argument("--default-branch", default="main",
                        help="fallback branch (default: main)")
    args = parser.parse_args(argv)

    with open(args.runs_json, encoding="utf-8") as f:
        runs = json.load(f)
    chosen = select_baseline(runs, args.current_run, args.branch,
                             args.default_branch)
    if chosen is not None:
        print(chosen)
    return 0


def main_diff(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="fail when current > threshold * baseline")
    args = parser.parse_args(argv)

    base_name, base = load_records(args.baseline)
    cur_name, cur = load_records(args.current)
    print(f"baseline: {args.baseline} (bench={base_name}, {len(base)} records)")
    print(f"current:  {args.current} (bench={cur_name}, {len(cur)} records)")

    regressions = []
    compared = 0
    for key, cur_rec in sorted(cur.items()):
        base_rec = base.get(key)
        label = ", ".join(f"{k}={v}" for k, v in key)
        if base_rec is None:
            print(f"  new record (not compared): {label}")
            continue
        for field, cur_val, floor, higher_better in measured_fields(cur_rec):
            base_val = base_rec.get(field)
            if not isinstance(base_val, (int, float)):
                continue
            base_val = float(base_val)
            if base_val < floor and cur_val < floor:
                continue
            compared += 1
            if base_val <= 0:
                continue
            if abs(cur_val - base_val) <= abs_tolerance(field):
                continue
            if higher_better:
                if cur_val * args.threshold < base_val:
                    ratio = base_val / max(cur_val, 1e-12)
                    regressions.append(
                        f"{label}: {field} {base_val:.6g} -> {cur_val:.6g} "
                        f"({ratio:.2f}x slower > {args.threshold}x)")
            elif cur_val > args.threshold * base_val:
                ratio = cur_val / base_val
                regressions.append(
                    f"{label}: {field} {base_val:.6g} -> {cur_val:.6g} "
                    f"({ratio:.2f}x > {args.threshold}x)")
    for key in sorted(set(base) - set(cur)):
        label = ", ".join(f"{k}={v}" for k, v in key)
        print(f"  removed record (not compared): {label}")

    print(f"compared {compared} measured values "
          f"across {len(set(base) & set(cur))} matched records")
    if regressions:
        print(f"\n{len(regressions)} regression(s) above threshold:")
        for line in regressions:
            print(f"  REGRESSION {line}")
        return 1
    print("no regressions above threshold")
    return 0


def main():
    argv = sys.argv[1:]
    if argv and argv[0] == "select-baseline":
        return main_select_baseline(argv[1:])
    return main_diff(argv)


if __name__ == "__main__":
    sys.exit(main())
