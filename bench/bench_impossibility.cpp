// E3 — Theorem 2: the impossibility construction is executable.
//
// For each (n, k): build the run with k-1 loners and a 2-source s,
// verify Psrcs(k) holds / Psrcs(k-1) fails on its skeleton (exactly,
// by subset enumeration), run Algorithm 1, and report the number of
// distinct decisions — which must be exactly k: the k-set ceiling is
// met, so no algorithm could have done k-1 on this run.
#include <iostream>

#include "adversary/impossibility.hpp"
#include "kset/runner.hpp"
#include "predicates/psrcs.hpp"
#include "util/table.hpp"

int main() {
  using namespace sskel;
  std::cout << "====================================================\n"
            << " E3: Theorem 2 — Psrcs(k) cannot give (k-1)-set\n"
            << "     agreement (constructive run, exactly k values)\n"
            << "====================================================\n\n";

  struct Row {
    ProcId n;
    int k;
  };
  const std::vector<Row> rows = {{4, 2},  {5, 3},  {6, 2},  {8, 4},
                                 {10, 5}, {12, 3}, {16, 8}, {20, 10}};

  Table table("the Theorem 2 run, swept over (n, k)",
              {"n", "k", "Psrcs(k)", "Psrcs(k-1)", "distinct values",
               "= k?", "last decision round"});
  bool all_ok = true;
  for (const Row& row : rows) {
    const Digraph skel = impossibility_graph(row.n, row.k);
    const bool at_k = check_psrcs_exact(skel, row.k).holds;
    const bool at_k1 = check_psrcs_exact(skel, row.k - 1).holds;

    auto source = make_impossibility_source(row.n, row.k);
    KSetRunConfig config;
    config.k = row.k;
    const KSetRunReport report = run_kset(*source, config);

    const bool ok = at_k && !at_k1 && report.all_decided &&
                    report.distinct_values == row.k;
    all_ok = all_ok && ok;
    table.add_row({cell(row.n), cell(row.k), at_k ? "holds" : "VIOLATED",
                   at_k1 ? "HOLDS (bad)" : "violated",
                   cell(report.distinct_values), ok ? "yes" : "NO",
                   cell(static_cast<std::int64_t>(
                       report.last_decision_round))});
  }
  table.print(std::cout);
  std::cout << (all_ok
                    ? "RESULT: every run produced exactly k values — the "
                      "predicate is tight.\n"
                    : "RESULT: MISMATCH (see table).\n");
  return all_ok ? 0 : 1;
}
