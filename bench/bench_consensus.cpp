// E8 — the Sec. V consensus remark: in "sufficiently well-behaved"
// runs (single root component in the stable skeleton), Algorithm 1
// solves consensus outright. Sweep over topologies with j = 1 root and
// growing follower populations, plus the partitioned-consensus
// scenario from the introduction (j = m partitions -> consensus per
// partition).
#include <iostream>
#include <set>

#include "adversary/partition.hpp"
#include "mc/montecarlo.hpp"
#include "util/table.hpp"

int main() {
  using namespace sskel;
  std::cout << "=====================================================\n"
            << " E8: consensus in well-behaved runs (Sec. V remark)\n"
            << "=====================================================\n\n";

  {
    Table table("A: single-root topologies -> consensus (60 trials/row)",
                {"n", "core size", "distinct values (max)", "consensus runs",
                 "mean decision round"});
    for (const auto& [n, core] :
         std::vector<std::pair<ProcId, int>>{{6, 2}, {10, 4}, {16, 6},
                                             {24, 8}, {32, 4}}) {
      RandomPsrcsParams params;
      params.n = n;
      params.k = 3;  // predicate slack: consensus must come from topology
      params.root_components = 1;
      params.max_core_size = core;
      params.stabilization_round = 3;
      KSetRunConfig config;
      config.k = 1;
      const McSummary s = run_random_psrcs_trials(0xE8, 60, params, config);
      table.add_row({cell(n), cell(core), cell(s.distinct_values.max(), 0),
                     cell(s.distinct_histogram.count(1)),
                     cell(s.last_decision_round.mean(), 1)});
    }
    table.print(std::cout);
  }

  {
    Table table("B: partitioned system -> consensus per partition",
                {"n", "partitions m", "distinct values", "= m?",
                 "per-partition consensus"});
    for (const auto& [n, m] : std::vector<std::pair<ProcId, int>>{
             {8, 2}, {12, 3}, {12, 4}, {20, 5}}) {
      // No cross traffic ever: each partition keeps its own minimum,
      // so the run realizes exactly m values. (With transient cross
      // noise, minima may leak across partitions before the skeleton
      // stabilizes — per-partition consensus still holds, but fewer
      // than m distinct values can remain; see the partition tests.)
      PartitionParams params;
      params.blocks = even_blocks(n, m);
      params.cross_noise_probability = 0.0;
      params.stabilization_round = 5;
      PartitionSource source(0xE8B, params);
      KSetRunConfig config;
      config.k = m;
      const KSetRunReport report = run_kset(source, config);
      bool per_partition = report.all_decided;
      for (const ProcSet& block : source.blocks()) {
        std::set<Value> vals;
        for (ProcId p : block) {
          vals.insert(report.outcomes[static_cast<std::size_t>(p)].decision);
        }
        per_partition = per_partition && vals.size() == 1;
      }
      table.add_row({cell(n), cell(m), cell(report.distinct_values),
                     report.distinct_values == m ? "yes" : "no",
                     per_partition ? "yes" : "NO"});
    }
    table.print(std::cout);
  }

  std::cout << "Reading: one root component -> one decision value, no k\n"
               "needed; disjoint partitions -> independent consensus per\n"
               "partition, the paper's motivating use of k-set agreement.\n";
  return 0;
}
