// E9 — microbenchmarks (google-benchmark): the graph and skeleton
// kernels that dominate simulation cost, plus end-to-end round
// throughput of Algorithm 1.
#include <benchmark/benchmark.h>

#include <memory>

#include "adversary/random_psrcs.hpp"
#include "graph/reach.hpp"
#include "graph/scc.hpp"
#include "kset/runner.hpp"
#include "kset/skeleton_kset.hpp"
#include "rounds/simulator.hpp"
#include "skeleton/codec.hpp"
#include "skeleton/tracker.hpp"
#include "util/rng.hpp"

namespace {

using namespace sskel;

Digraph random_digraph(ProcId n, double density, std::uint64_t seed) {
  Rng rng(seed);
  Digraph g(n);
  g.add_self_loops();
  for (ProcId q = 0; q < n; ++q) {
    for (ProcId p = 0; p < n; ++p) {
      if (q != p && rng.next_bool(density)) g.add_edge(q, p);
    }
  }
  return g;
}

LabeledDigraph random_labeled(ProcId n, double density, std::uint64_t seed) {
  Rng rng(seed);
  LabeledDigraph g(n, 0);
  for (ProcId q = 0; q < n; ++q) {
    for (ProcId p = 0; p < n; ++p) {
      if (rng.next_bool(density)) {
        g.set_edge(q, p, static_cast<Round>(1 + rng.next_below(64)));
      }
    }
  }
  return g;
}

void BM_SccDecomposition(benchmark::State& state) {
  const ProcId n = static_cast<ProcId>(state.range(0));
  const Digraph g = random_digraph(n, 4.0 / static_cast<double>(n), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(strongly_connected_components(g));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SccDecomposition)->Range(8, 512)->Complexity();

void BM_RootComponents(benchmark::State& state) {
  const ProcId n = static_cast<ProcId>(state.range(0));
  const Digraph g = random_digraph(n, 4.0 / static_cast<double>(n), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(root_components(g));
  }
}
BENCHMARK(BM_RootComponents)->Range(8, 512);

void BM_SkeletonIntersect(benchmark::State& state) {
  const ProcId n = static_cast<ProcId>(state.range(0));
  const Digraph g = random_digraph(n, 0.5, 3);
  for (auto _ : state) {
    Digraph skel = Digraph::complete(n);
    skel.intersect_with(g);
    benchmark::DoNotOptimize(skel);
  }
}
BENCHMARK(BM_SkeletonIntersect)->Range(8, 512);

void BM_ApproxMergeMax(benchmark::State& state) {
  const ProcId n = static_cast<ProcId>(state.range(0));
  const LabeledDigraph a = random_labeled(n, 0.3, 4);
  const LabeledDigraph b = random_labeled(n, 0.3, 5);
  for (auto _ : state) {
    LabeledDigraph merged = a;
    merged.merge_max(b);
    benchmark::DoNotOptimize(merged);
  }
}
BENCHMARK(BM_ApproxMergeMax)->Range(8, 256);

void BM_PruneNotReaching(benchmark::State& state) {
  const ProcId n = static_cast<ProcId>(state.range(0));
  const LabeledDigraph g = random_labeled(n, 0.1, 6);
  for (auto _ : state) {
    LabeledDigraph pruned = g;
    pruned.prune_not_reaching(0);
    benchmark::DoNotOptimize(pruned);
  }
}
BENCHMARK(BM_PruneNotReaching)->Range(8, 256);

void BM_StronglyConnectedCheck(benchmark::State& state) {
  const ProcId n = static_cast<ProcId>(state.range(0));
  const LabeledDigraph g = random_labeled(n, 0.2, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.strongly_connected());
  }
}
BENCHMARK(BM_StronglyConnectedCheck)->Range(8, 256);

void BM_CodecEncode(benchmark::State& state) {
  const ProcId n = static_cast<ProcId>(state.range(0));
  const LabeledDigraph g = random_labeled(n, 0.3, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(encode_graph(g));
  }
  state.SetBytesProcessed(state.iterations() * encoded_graph_size(g));
}
BENCHMARK(BM_CodecEncode)->Range(8, 256);

void BM_CodecRoundTrip(benchmark::State& state) {
  const ProcId n = static_cast<ProcId>(state.range(0));
  const LabeledDigraph g = random_labeled(n, 0.3, 9);
  const auto bytes = encode_graph(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(decode_graph(bytes));
  }
}
BENCHMARK(BM_CodecRoundTrip)->Range(8, 256);

/// End-to-end: one full round of Algorithm 1 for n processes on a
/// stable hub topology (send + deliver + transition for all n).
void BM_AlgorithmOneRound(benchmark::State& state) {
  const ProcId n = static_cast<ProcId>(state.range(0));
  RandomPsrcsParams params;
  params.n = n;
  params.k = 2;
  params.root_components = 2;
  params.noise_probability = 0.2;
  RandomPsrcsSource source(10, params);
  std::vector<std::unique_ptr<Algorithm<SkeletonMessage>>> procs;
  for (ProcId p = 0; p < n; ++p) {
    procs.push_back(std::make_unique<SkeletonKSetProcess>(n, p, p + 1));
  }
  Simulator<SkeletonMessage> sim(source, std::move(procs));
  for (auto _ : state) {
    sim.step();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AlgorithmOneRound)->Range(4, 128);

/// Whole-run throughput: a complete k-set agreement instance.
void BM_FullRun(benchmark::State& state) {
  const ProcId n = static_cast<ProcId>(state.range(0));
  RandomPsrcsParams params;
  params.n = n;
  params.k = 2;
  params.root_components = 2;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    RandomPsrcsSource source(mix_seed(11, seed++), params);
    KSetRunConfig config;
    config.k = 2;
    benchmark::DoNotOptimize(run_kset(source, config));
  }
}
BENCHMARK(BM_FullRun)->Range(4, 64);

}  // namespace

BENCHMARK_MAIN();
