// E9 — microbenchmarks (google-benchmark): the graph and skeleton
// kernels that dominate simulation cost, plus end-to-end round
// throughput of Algorithm 1.
//
// Besides the console table, the binary writes BENCH_micro.json
// (machine-readable records: op, n, k, ns/op, counters) for CI
// artifacts and regression tracking. SSKEL_SMOKE=1 shrinks
// per-benchmark min time so the whole suite finishes in seconds;
// SSKEL_BENCH_JSON overrides the output path.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "adversary/partition.hpp"
#include "adversary/random_psrcs.hpp"
#include "graph/inc_scc.hpp"
#include "graph/reach.hpp"
#include "graph/scc.hpp"
#include "skeleton/intern.hpp"
#include "kset/runner.hpp"
#include "kset/skeleton_kset.hpp"
#include "predicates/analysis.hpp"
#include "predicates/psrcs.hpp"
#include "rounds/simulator.hpp"
#include "skeleton/codec.hpp"
#include "skeleton/tracker.hpp"
#include "util/bench_json.hpp"
#include "util/rng.hpp"

namespace {

using namespace sskel;

Digraph random_digraph(ProcId n, double density, std::uint64_t seed) {
  Rng rng(seed);
  Digraph g(n);
  g.add_self_loops();
  for (ProcId q = 0; q < n; ++q) {
    for (ProcId p = 0; p < n; ++p) {
      if (q != p && rng.next_bool(density)) g.add_edge(q, p);
    }
  }
  return g;
}

LabeledDigraph random_labeled(ProcId n, double density, std::uint64_t seed) {
  Rng rng(seed);
  LabeledDigraph g(n, 0);
  for (ProcId q = 0; q < n; ++q) {
    for (ProcId p = 0; p < n; ++p) {
      if (rng.next_bool(density)) {
        g.set_edge(q, p, static_cast<Round>(1 + rng.next_below(64)));
      }
    }
  }
  return g;
}

void BM_SccDecomposition(benchmark::State& state) {
  const ProcId n = static_cast<ProcId>(state.range(0));
  const Digraph g = random_digraph(n, 4.0 / static_cast<double>(n), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(strongly_connected_components(g));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SccDecomposition)->Range(8, 512)->Complexity();

void BM_RootComponents(benchmark::State& state) {
  const ProcId n = static_cast<ProcId>(state.range(0));
  const Digraph g = random_digraph(n, 4.0 / static_cast<double>(n), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(root_components(g));
  }
}
BENCHMARK(BM_RootComponents)->Range(8, 512);

void BM_SkeletonIntersect(benchmark::State& state) {
  const ProcId n = static_cast<ProcId>(state.range(0));
  const Digraph g = random_digraph(n, 0.5, 3);
  for (auto _ : state) {
    Digraph skel = Digraph::complete(n);
    skel.intersect_with(g);
    benchmark::DoNotOptimize(skel);
  }
}
BENCHMARK(BM_SkeletonIntersect)->Range(8, 512);

void BM_ApproxMergeMax(benchmark::State& state) {
  const ProcId n = static_cast<ProcId>(state.range(0));
  const LabeledDigraph a = random_labeled(n, 0.3, 4);
  const LabeledDigraph b = random_labeled(n, 0.3, 5);
  for (auto _ : state) {
    LabeledDigraph merged = a;
    merged.merge_max(b);
    benchmark::DoNotOptimize(merged);
  }
}
BENCHMARK(BM_ApproxMergeMax)->Range(8, 256);

void BM_PruneNotReaching(benchmark::State& state) {
  const ProcId n = static_cast<ProcId>(state.range(0));
  const LabeledDigraph g = random_labeled(n, 0.1, 6);
  for (auto _ : state) {
    LabeledDigraph pruned = g;
    pruned.prune_not_reaching(0);
    benchmark::DoNotOptimize(pruned);
  }
}
BENCHMARK(BM_PruneNotReaching)->Range(8, 256);

void BM_StronglyConnectedCheck(benchmark::State& state) {
  const ProcId n = static_cast<ProcId>(state.range(0));
  const LabeledDigraph g = random_labeled(n, 0.2, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.strongly_connected());
  }
}
BENCHMARK(BM_StronglyConnectedCheck)->Range(8, 256);

void BM_CodecEncode(benchmark::State& state) {
  const ProcId n = static_cast<ProcId>(state.range(0));
  const LabeledDigraph g = random_labeled(n, 0.3, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(encode_graph(g));
  }
  state.SetBytesProcessed(state.iterations() * encoded_graph_size(g));
}
BENCHMARK(BM_CodecEncode)->Range(8, 256);

void BM_CodecRoundTrip(benchmark::State& state) {
  const ProcId n = static_cast<ProcId>(state.range(0));
  const LabeledDigraph g = random_labeled(n, 0.3, 9);
  const auto bytes = encode_graph(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(decode_graph(bytes));
  }
}
BENCHMARK(BM_CodecRoundTrip)->Range(8, 256);

/// Per-round skeleton analytics on a post-stabilization round,
/// recomputed from scratch every time — the pre-caching behavior:
/// SCC decomposition, root components, and the exact Psrcs(k) check
/// all rerun although the skeleton did not change.
void BM_PostStabilizationAnalytics_Fresh(benchmark::State& state) {
  const ProcId n = static_cast<ProcId>(state.range(0));
  RandomPsrcsParams params;
  params.n = n;
  params.k = 3;
  params.root_components = 3;
  RandomPsrcsSource source(21, params);
  SkeletonTracker tracker(n);
  Round r = 1;
  tracker.observe(r, source.stable_skeleton());
  for (auto _ : state) {
    ++r;
    tracker.observe(r, source.stable_skeleton());
    benchmark::DoNotOptimize(
        strongly_connected_components(tracker.skeleton()));
    benchmark::DoNotOptimize(root_components(tracker.skeleton()));
    benchmark::DoNotOptimize(check_psrcs_exact(tracker.skeleton(), 3));
  }
}
BENCHMARK(BM_PostStabilizationAnalytics_Fresh)->Range(16, 256);

/// The same post-stabilization round through the version-stamped
/// caches: observe() detects that the intersection removed nothing,
/// so every analytics read is a cache hit. The acceptance bar is a
/// >= 10x ratio against the _Fresh variant.
void BM_PostStabilizationAnalytics_Cached(benchmark::State& state) {
  const ProcId n = static_cast<ProcId>(state.range(0));
  RandomPsrcsParams params;
  params.n = n;
  params.k = 3;
  params.root_components = 3;
  RandomPsrcsSource source(21, params);
  SkeletonTracker tracker(n);
  SkeletonPredicateCache cache;
  Round r = 1;
  tracker.observe(r, source.stable_skeleton());
  for (auto _ : state) {
    ++r;
    tracker.observe(r, source.stable_skeleton());
    benchmark::DoNotOptimize(&tracker.current_scc());
    benchmark::DoNotOptimize(&tracker.current_root_components());
    benchmark::DoNotOptimize(
        &cache.psrcs_exact(tracker.skeleton(), tracker.version(), 3));
  }
}
BENCHMARK(BM_PostStabilizationAnalytics_Cached)->Range(16, 256);

/// A shrink-heavy skeleton run, SCC analytics recomputed with a full
/// Tarjan + root scan after every skeleton change. The graph sequence
/// (partition decay: 4 blocks, heavy transient cross noise) is
/// precomputed outside the timed loop, so the measurement isolates
/// intersection + analytics cost.
void BM_SccShrinkTarjanRerun(benchmark::State& state) {
  const ProcId n = static_cast<ProcId>(state.range(0));
  PartitionParams params;
  params.blocks = even_blocks(n, 4);
  params.cross_noise_probability = 0.9;
  const Round rounds = 60;
  params.stabilization_round = rounds;
  PartitionSource source(23, params);
  std::vector<Digraph> sequence;
  for (Round r = 1; r <= rounds; ++r) {
    // graph_into reuses one graph's rows and never assumes a payload
    // layout, so the materialized sequence is representation-agnostic
    // (dense or tiered ProcSet rows alike).
    Digraph g(n);
    source.graph_into(r, g);
    g.add_self_loops();
    sequence.push_back(std::move(g));
  }
  for (auto _ : state) {
    Digraph skel = Digraph::complete(n);
    for (const Digraph& g : sequence) {
      if (skel.intersect_with(g)) {
        const SccDecomposition scc = strongly_connected_components(skel);
        benchmark::DoNotOptimize(root_component_indices(skel, scc));
        benchmark::DoNotOptimize(&scc);
      }
    }
    benchmark::DoNotOptimize(skel);
  }
  state.SetItemsProcessed(state.iterations() * rounds);
}
BENCHMARK(BM_SccShrinkTarjanRerun)->Range(64, 512);

/// The same precomputed shrink-heavy sequence through the tracker's
/// decremental SCC maintainer: each change is consumed as a removal
/// delta and only the touched components are re-decomposed.
void BM_SccShrinkIncremental(benchmark::State& state) {
  const ProcId n = static_cast<ProcId>(state.range(0));
  PartitionParams params;
  params.blocks = even_blocks(n, 4);
  params.cross_noise_probability = 0.9;
  const Round rounds = 60;
  params.stabilization_round = rounds;
  PartitionSource source(23, params);
  std::vector<Digraph> sequence;
  for (Round r = 1; r <= rounds; ++r) {
    // graph_into reuses one graph's rows and never assumes a payload
    // layout, so the materialized sequence is representation-agnostic
    // (dense or tiered ProcSet rows alike).
    Digraph g(n);
    source.graph_into(r, g);
    g.add_self_loops();
    sequence.push_back(std::move(g));
  }
  for (auto _ : state) {
    SkeletonTracker tracker(n);
    (void)tracker.current_scc();  // seed the maintainer
    Round r = 0;
    for (const Digraph& g : sequence) {
      tracker.observe(++r, g);
      benchmark::DoNotOptimize(&tracker.current_scc());
      benchmark::DoNotOptimize(&tracker.current_root_components());
    }
  }
  state.SetItemsProcessed(state.iterations() * rounds);
}
BENCHMARK(BM_SccShrinkIncremental)->Range(64, 512);

/// The post-stabilization all-converged case with *private* analytics:
/// all n processes hold the same stable skeleton, and each one
/// re-derives its Line-25 keep set and Line-28 verdict from scratch
/// every round (one backward BFS plus a Tarjan pass on the pruned
/// graph per process) — n copies of identical work.
void BM_InternResolveConverged_Private(benchmark::State& state) {
  const ProcId n = static_cast<ProcId>(state.range(0));
  RandomPsrcsParams params;
  params.n = n;
  params.k = 2;
  params.root_components = 2;
  RandomPsrcsSource source(31, params);
  const Digraph& skel = source.stable_skeleton();
  for (auto _ : state) {
    for (ProcId p : skel.nodes()) {
      const ProcSet keep = reaching(skel, p);
      benchmark::DoNotOptimize(is_strongly_connected(skel.induced(keep)));
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_InternResolveConverged_Private)->Arg(64)->Arg(256)->Arg(512);

/// The same converged round through the structure intern table
/// (DESIGN.md §10): each process keeps a captured structure plus the
/// answers resolved through the shared entry, so an unchanged round
/// costs one word-level structure compare per process and zero graph
/// analytics — the analytics ran once, for the first resolver.
void BM_InternResolveConverged_Shared(benchmark::State& state) {
  const ProcId n = static_cast<ProcId>(state.range(0));
  RandomPsrcsParams params;
  params.n = n;
  params.k = 2;
  params.root_components = 2;
  RandomPsrcsSource source(31, params);
  const Digraph& skel = source.stable_skeleton();

  StructureInternTable table;
  struct Cached {
    Digraph captured;
    ProcSet keep;
    bool sc = false;
    bool valid = false;
  };
  std::vector<Cached> cache(static_cast<std::size_t>(n));
  std::int64_t mismatches = 0;
  for (auto _ : state) {
    for (ProcId p : skel.nodes()) {
      Cached& c = cache[static_cast<std::size_t>(p)];
      if (!c.valid || !(c.captured == skel)) {
        c.captured = skel;
        InternedStructure* entry = table.intern(skel);
        c.keep = entry->keep_set(p);
        c.sc = entry->pruned_strongly_connected(p);
        c.valid = true;
      }
      benchmark::DoNotOptimize(c.keep);
      benchmark::DoNotOptimize(c.sc);
    }
  }
  // Correctness tripwire, outside the timed loop: the shared answers
  // must match the private computation bit for bit.
  for (ProcId p : skel.nodes()) {
    const Cached& c = cache[static_cast<std::size_t>(p)];
    const ProcSet keep = reaching(skel, p);
    if (c.keep != keep ||
        c.sc != is_strongly_connected(skel.induced(keep))) {
      ++mismatches;
    }
  }
  const InternStats stats = table.stats();
  state.counters["intern_hits"] = static_cast<double>(stats.hits);
  state.counters["intern_misses"] = static_cast<double>(stats.misses);
  state.counters["intern_fingerprint_collisions"] =
      static_cast<double>(stats.fingerprint_collisions);
  state.counters["intern_keep_computes"] =
      static_cast<double>(stats.keep_computes);
  state.counters["intern_mismatches"] = static_cast<double>(mismatches);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_InternResolveConverged_Shared)->Arg(64)->Arg(256)->Arg(512);

/// A large SCC (ring + chords) losing one chord per apply(). With the
/// targeted fast path each deletion is decided by a single masked BFS
/// ("does the tail still reach the head?"); without it every deletion
/// re-runs the full local FW-BW decomposition. Seeding happens outside
/// the timed region so the pair isolates apply() cost.
void run_scc_shrink_single_edge(benchmark::State& state, bool fastpath) {
  const ProcId n = static_cast<ProcId>(state.range(0));
  Digraph base(n);
  for (ProcId p = 0; p < n; ++p) base.add_edge(p, (p + 1) % n);
  Rng rng(41);
  std::vector<std::pair<ProcId, ProcId>> chords;
  while (chords.size() < 64) {
    const ProcId u = static_cast<ProcId>(
        rng.next_below(static_cast<std::uint64_t>(n)));
    const ProcId v = static_cast<ProcId>(
        rng.next_below(static_cast<std::uint64_t>(n)));
    if (u == v || v == (u + 1) % n || base.has_edge(u, v)) continue;
    base.add_edge(u, v);
    chords.push_back({u, v});
  }
  std::int64_t hits = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Digraph g = base;
    IncrementalScc inc;
    inc.set_single_edge_fastpath(fastpath);
    inc.seed(g);
    state.ResumeTiming();
    for (const auto& [u, v] : chords) {
      GraphDelta delta;
      delta.removed_edges.push_back({u, v});
      g.remove_edge(u, v);
      inc.apply(g, delta);
    }
    benchmark::DoNotOptimize(inc.decomposition().count());
    hits = inc.targeted_hits();
  }
  state.counters["targeted_hits"] = static_cast<double>(hits);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(chords.size()));
}

void BM_SccShrinkSingleEdge_Fastpath(benchmark::State& state) {
  run_scc_shrink_single_edge(state, true);
}
BENCHMARK(BM_SccShrinkSingleEdge_Fastpath)->Arg(256)->Arg(512);

void BM_SccShrinkSingleEdge_Full(benchmark::State& state) {
  run_scc_shrink_single_edge(state, false);
}
BENCHMARK(BM_SccShrinkSingleEdge_Full)->Arg(256)->Arg(512);

/// Branch-and-bound Psrcs(k) decision on the stable skeleton of a
/// random Psrcs(k) adversary (the predicate holds, so the search must
/// exhaust its pruned space — the worst case). Counters export the
/// subsets visited so BENCH_micro.json records the pruning factor
/// against the brute-force baseline below.
void BM_PsrcsExactPruned(benchmark::State& state) {
  const ProcId n = static_cast<ProcId>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  RandomPsrcsParams params;
  params.n = n;
  params.k = k;
  params.root_components = k;
  RandomPsrcsSource source(22, params);
  const Digraph& skel = source.stable_skeleton();
  std::int64_t subsets = 0;
  for (auto _ : state) {
    const PsrcsCheck check = check_psrcs_exact(skel, k);
    subsets = check.subsets_checked;
    benchmark::DoNotOptimize(check.holds);
  }
  state.counters["subsets_visited"] = static_cast<double>(subsets);
}
BENCHMARK(BM_PsrcsExactPruned)->Args({16, 3})->Args({20, 4})->Args({24, 3});

/// The literal C(n, k+1) enumeration on the same instances.
void BM_PsrcsBruteforce(benchmark::State& state) {
  const ProcId n = static_cast<ProcId>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  RandomPsrcsParams params;
  params.n = n;
  params.k = k;
  params.root_components = k;
  RandomPsrcsSource source(22, params);
  const Digraph& skel = source.stable_skeleton();
  std::int64_t subsets = 0;
  for (auto _ : state) {
    const PsrcsCheck check = check_psrcs_bruteforce(skel, k);
    subsets = check.subsets_checked;
    benchmark::DoNotOptimize(check.holds);
  }
  state.counters["subsets_visited"] = static_cast<double>(subsets);
}
BENCHMARK(BM_PsrcsBruteforce)->Args({16, 3})->Args({20, 4})->Args({24, 3});

/// End-to-end: one full round of Algorithm 1 for n processes on a
/// stable hub topology (send + deliver + transition for all n).
void BM_AlgorithmOneRound(benchmark::State& state) {
  const ProcId n = static_cast<ProcId>(state.range(0));
  RandomPsrcsParams params;
  params.n = n;
  params.k = 2;
  params.root_components = 2;
  params.noise_probability = 0.2;
  RandomPsrcsSource source(10, params);
  std::vector<std::unique_ptr<Algorithm<SkeletonMessage>>> procs;
  for (ProcId p = 0; p < n; ++p) {
    procs.push_back(std::make_unique<SkeletonKSetProcess>(n, p, p + 1));
  }
  Simulator<SkeletonMessage> sim(source, std::move(procs));
  for (auto _ : state) {
    sim.step();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AlgorithmOneRound)->Range(4, 128);

/// Whole-run throughput: a complete k-set agreement instance.
void BM_FullRun(benchmark::State& state) {
  const ProcId n = static_cast<ProcId>(state.range(0));
  RandomPsrcsParams params;
  params.n = n;
  params.k = 2;
  params.root_components = 2;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    RandomPsrcsSource source(mix_seed(11, seed++), params);
    KSetRunConfig config;
    config.k = 2;
    benchmark::DoNotOptimize(run_kset(source, config));
  }
}
BENCHMARK(BM_FullRun)->Range(4, 64);

/// Console output as usual, plus a capture of every per-iteration run
/// for the BENCH_micro.json dump (aggregates and complexity fits are
/// console-only).
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& report) override {
    ConsoleReporter::ReportRuns(report);
    for (const Run& run : report) {
      if (run.run_type != Run::RT_Iteration) continue;
      if (run.report_big_o || run.report_rms || run.error_occurred) continue;
      runs_.push_back(run);
    }
  }

  [[nodiscard]] const std::vector<Run>& runs() const { return runs_; }

 private:
  std::vector<Run> runs_;
};

/// "BM_Name/16/3" -> op "BM_Name", args {16, 3} (n, then k when
/// present). Non-numeric path components are ignored.
void append_record(BenchJson& json, const JsonCaptureReporter::Run& run) {
  const std::string name = run.benchmark_name();
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= name.size()) {
    const std::size_t slash = name.find('/', start);
    if (slash == std::string::npos) {
      parts.push_back(name.substr(start));
      break;
    }
    parts.push_back(name.substr(start, slash - start));
    start = slash + 1;
  }
  BenchRecord& rec = json.add(parts.empty() ? name : parts[0]);
  std::vector<std::int64_t> args;
  for (std::size_t i = 1; i < parts.size(); ++i) {
    const std::string& p = parts[i];
    if (p.empty() ||
        !std::all_of(p.begin(), p.end(),
                     [](unsigned char c) { return std::isdigit(c); })) {
      continue;
    }
    args.push_back(std::stoll(p));
  }
  if (!args.empty()) rec.set("n", args[0]);
  if (args.size() > 1) rec.set("k", args[1]);
  rec.set("ns_per_op", run.GetAdjustedRealTime());
  rec.set("iterations", static_cast<std::int64_t>(run.iterations));
  for (const auto& [key, counter] : run.counters) {
    rec.set(key, counter.value);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  // Smoke mode (CI): cut per-benchmark min time so the suite runs in
  // seconds; the numbers are indicative, the JSON schema identical.
  std::string min_time = "--benchmark_min_time=0.01";
  if (std::getenv("SSKEL_SMOKE") != nullptr) {
    args.push_back(min_time.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }

  JsonCaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  BenchJson json("micro");
  for (const auto& run : reporter.runs()) append_record(json, run);
  const char* path_env = std::getenv("SSKEL_BENCH_JSON");
  const std::string path = path_env != nullptr ? path_env : "BENCH_micro.json";
  if (json.write_file(path)) {
    std::cout << "\nwrote " << path << " (" << reporter.runs().size()
              << " records)\n";
  } else {
    std::cerr << "\nwarning: could not write " << path << '\n';
  }
  benchmark::Shutdown();
  return 0;
}
