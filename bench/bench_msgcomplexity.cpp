// E5 — message bit complexity: Sec. V claims Algorithm 1's worst-case
// message bit complexity is polynomial in n. The wire codec gives a
// real binary encoding (varints + node bitmap + labeled edge list).
//
// Table A simulates real runs (sparse hub topologies) and reports the
// largest encoded message and total traffic until the last decision.
// Table B measures the *worst-case* message directly — a maximally
// dense approximation graph (all n^2 labeled edges) — whose encoded
// size must grow ~n^2 (log-log slope ~2): that is the polynomial bound
// the paper states.
#include <cmath>
#include <iostream>

#include "mc/montecarlo.hpp"
#include "skeleton/codec.hpp"
#include "util/table.hpp"

int main() {
  using namespace sskel;
  std::cout << "======================================================\n"
            << " E5: encoded message size / total traffic vs n\n"
            << " (Sec. V: bit complexity polynomial in n)\n"
            << "======================================================\n\n";

  {
    const std::vector<std::pair<ProcId, int>> cases = {
        {4, 8}, {8, 8}, {16, 6}, {32, 4}, {64, 3}};
    Table table("A: simulated runs (hub topology, j = 2 roots)",
                {"n", "trials", "max msg bytes", "mean msgs/run",
                 "total bytes/run", "last decision (mean)"});
    for (const auto& [n, trials] : cases) {
      RandomPsrcsParams params;
      params.n = n;
      params.k = 2;
      params.root_components = 2;
      params.max_core_size = 3;
      params.noise_probability = 0.2;
      params.stabilization_round = 2;
      params.follower_edge_probability = 0.05;
      KSetRunConfig config;
      config.k = 2;
      config.measure_bytes = true;
      const RandomPsrcsScenario scenario(params);
      const McSummary s = run_scenario_trials(scenario, 0xE5, trials, config);
      table.add_row({cell(n), cell(trials),
                     cell(s.max_message_bytes.max(), 0),
                     cell(s.total_messages.mean(), 0),
                     cell(s.total_bytes.mean(), 0),
                     cell(s.last_decision_round.mean(), 1)});
    }
    table.print(std::cout);
  }

  {
    Table table("B: worst-case message — complete approximation graph",
                {"n", "encoded bytes", "bytes / n^2", "log-log slope"});
    double prev_bytes = 0;
    ProcId prev_n = 0;
    for (ProcId n : {4, 8, 16, 32, 64, 128, 256}) {
      LabeledDigraph g(n, 0);
      for (ProcId q = 0; q < n; ++q) {
        for (ProcId p = 0; p < n; ++p) {
          g.set_edge(q, p, 2 * n);  // labels near the purge horizon
        }
      }
      const double bytes = static_cast<double>(encoded_graph_size(g)) + 9;
      std::string slope = "-";
      if (prev_n != 0) {
        slope = cell(std::log(bytes / prev_bytes) /
                         std::log(static_cast<double>(n) /
                                  static_cast<double>(prev_n)),
                     2);
      }
      table.add_row({cell(n), cell(bytes, 0),
                     cell(bytes / (static_cast<double>(n) *
                                   static_cast<double>(n)),
                          2),
                     slope});
      prev_bytes = bytes;
      prev_n = n;
    }
    table.print(std::cout);
  }

  std::cout << "Reading: table B's slope -> 2 confirms the worst-case\n"
               "message is Theta(n^2 log r) bits — polynomial in n, as\n"
               "Sec. V states. Table A shows realistic (sparse-skeleton)\n"
               "runs stay far below that ceiling.\n";
  return 0;
}
