// E10 — ablation: every structural line of Algorithm 1 is load-bearing.
//
// Runs the ablated variants on a run with a transient prefix (so stale
// knowledge exists to be purged) and a follower population (so decide
// forwarding matters), and reports what breaks:
//
//   * no Line 10-13 (decide forwarding): followers never decide.
//   * no Line 24 (purge): stale transient edges keep foreign nodes in
//     every root member's graph, Line 28 never fires -> nobody decides.
//   * no Line 25 (prune): unreachable nodes linger, blocking strong
//     connectivity the same way.
//   * no Line 15 (reset): accumulated structure defeats purge+prune.
//   * faithful: everything decides within the Lemma 11 bound.
#include <algorithm>
#include <iostream>

#include "adversary/random_psrcs.hpp"
#include "kset/ablation.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace sskel;
  std::cout << "=====================================================\n"
            << " E10: ablation — what each line of Algorithm 1 buys\n"
            << "=====================================================\n\n";

  struct Variant {
    const char* name;
    AblationFlags flags;
  };
  const std::vector<Variant> variants = {
      {"faithful Algorithm 1", {}},
      {"no decide forwarding (L10-13)", {true, true, true, false}},
      {"no purge (L24)", {true, false, true, true}},
      {"no prune (L25)", {true, true, false, true}},
      {"no graph reset (L15)", {false, true, true, true}},
      {"no purge, no prune", {true, false, false, true}},
  };

  const ProcId n = 10;
  const int k = 2;
  const int trials = 30;
  const Round max_rounds = 12 * n;

  Table table("ablated Algorithm 1 on transient-prefix Psrcs(2) runs "
              "(n=10, 30 trials)",
              {"variant", "runs all-decided", "mean decided procs",
               "values max", ">k viol", "mean last decision"});
  for (const Variant& v : variants) {
    int all_decided_runs = 0;
    int over_k = 0;
    int values_max = 0;
    Accumulator decided_procs, last_round;
    for (int t = 0; t < trials; ++t) {
      RandomPsrcsParams params;
      params.n = n;
      params.k = k;
      params.root_components = k;
      params.stabilization_round = 4;  // transient prefix matters
      params.noise_probability = 0.3;
      RandomPsrcsSource source(
          mix_seed(0xAB1A, static_cast<std::uint64_t>(t)), params);
      const AblationRunResult r =
          run_ablation(source, v.flags, k, max_rounds);
      if (r.all_decided) {
        ++all_decided_runs;
        last_round.add(r.last_decision_round);
      }
      if (r.distinct_values > k) ++over_k;
      values_max = std::max(values_max, r.distinct_values);
      decided_procs.add(r.decided_count);
    }
    table.add_row({v.name,
                   cell(all_decided_runs) + "/" + cell(trials),
                   cell(decided_procs.mean(), 1), cell(values_max),
                   cell(over_k),
                   all_decided_runs > 0 ? cell(last_round.mean(), 1)
                                        : std::string("n/a")});
  }
  table.print(std::cout);
  std::cout
      << "Reading: disabling decide forwarding strands every process\n"
         "outside a root component; disabling purge and/or prune leaves\n"
         "stale structure in the approximations, so the strong-\n"
         "connectivity test never fires once a run has a transient\n"
         "prefix — liveness breaks exactly as the proofs predict.\n"
         "Disabling only the Line-15 reset changes nothing observable:\n"
         "with purge + prune active, stale cells age out within n rounds\n"
         "anyway — the reset exists to make Lemma 3(c)'s 'exactly one\n"
         "label per edge' invariant hold per round, not for liveness.\n"
         "Safety (<= k values) survives every ablation: it rests on\n"
         "Psrcs(k) and estimate minimality, not on graph hygiene.\n";
  return 0;
}
