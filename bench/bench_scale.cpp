// E13 — scale gates for the tiered ProcSet stack (DESIGN.md §11).
//
// Three measurements, all on post-decay skeletons (disjoint complete
// blocks — the stable structure every partition-style adversary leaves
// behind):
//
//   1. intersection micro pair — the lemma monitor's historical row
//      probe (`tmp = out-row; tmp &= in-row; count`) swept over a
//      window of retained skeleton snapshots, run twice: once pinned
//      to the seed's flat dense representation (ScopedTierPolicy
//      kDenseOnly) and once under the tiered auto policy. Totals must
//      match bit-for-bit; the ratio is the headline number.
//   2. SCC micro pair — strongly_connected_components plus the root
//      scan on the same decayed graph, dense vs tiered ("blocked
//      Tarjan": member iteration walks the summary/sparse tier
//      instead of scanning the full row span).
//   3. a full Theorem-1 run at n = 65,536 — skeleton tracking through
//      a deterministic decay schedule (transient cross-block edges
//      plus internal-edge batches that exercise the multi-edge
//      targeted reachability path), stabilization detection, and the
//      decision rule (per-process min over the root components that
//      reach it). Gates: the run completes, root components <= k,
//      distinct decisions <= k, and the incremental decomposition
//      matches a from-scratch Tarjan on the final skeleton.
//
// Speedup gates: >= 5x at n = 65,536, where the dense representation
// streams O(n/64) words per row against the tiered O(active blocks)
// (measured: ~125x on the probe sweep, ~27x on the analytics pass).
// The n = 4096 rows carry floor gates only (2x probes, 1.3x SCC): at
// a 64-word span the fixed per-row costs (ProcSet object, Tarjan's
// per-node bookkeeping) bound the ratio well below the asymptotic
// span/active quotient — measured ~9x and ~1.7x respectively; see
// EXPERIMENTS.md for the curve.
//
// SSKEL_SMOKE=1 drops the n = 65,536 rows and shrinks the windows for
// CI; SSKEL_BENCH_JSON overrides the BENCH_scale.json path. Peak
// ProcSet bytes are recorded per arm (reset_peak_bytes before each),
// so the memory side of the representation change is regression-
// tracked alongside the timings.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/scc.hpp"
#include "skeleton/tracker.hpp"
#include "util/bench_json.hpp"
#include "util/proc_set.hpp"
#include "util/table.hpp"

namespace {

using namespace sskel;
using Clock = std::chrono::steady_clock;

[[nodiscard]] std::int64_t ns_since(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              start)
      .count();
}

/// Disjoint complete blocks of `block` processes (self-loops in): the
/// stable skeleton of a partitioned system, fully decayed.
Digraph block_skeleton(ProcId n, ProcId block) {
  Digraph g(n);
  g.add_self_loops();
  for (ProcId base = 0; base < n; base += block) {
    for (ProcId q = base; q < base + block; ++q) {
      for (ProcId p = base; p < base + block; ++p) {
        if (q != p) g.add_edge(q, p);
      }
    }
  }
  return g;
}

/// Sorted-by-first-member copy, for order-insensitive decomposition
/// comparison (same helper as bench_theorem1).
std::vector<ProcSet> sorted_sets(std::vector<ProcSet> sets) {
  std::sort(sets.begin(), sets.end(),
            [](const ProcSet& a, const ProcSet& b) {
              return a.first() < b.first();
            });
  return sets;
}

// --- intersection micro ---------------------------------------------------

struct IntersectArm {
  std::int64_t ns = 0;
  std::int64_t total = 0;       // sum of intersection popcounts
  std::int64_t peak_bytes = 0;  // ProcSet high-water mark for the arm
};

/// The monitor's historical probe: `window` retained snapshots of the
/// decayed skeleton (LemmaMonitor keeps every round with kKeepAll, and
/// Lemma 7 resolves bases r - n + 1 rounds back), swept row by row:
/// out-row of one snapshot AND in-row of the next, popcounted. Runs
/// under whatever tier policy is active when called.
IntersectArm run_intersect_arm(ProcId n, ProcId block, int window,
                               int reps) {
  IntersectArm arm;
  ProcSet::reset_peak_bytes();
  std::vector<Digraph> snaps;
  snaps.reserve(static_cast<std::size_t>(window));
  snaps.push_back(block_skeleton(n, block));
  for (int w = 1; w < window; ++w) snaps.push_back(snaps.front());

  ProcSet tmp(n);
  const auto start = Clock::now();
  for (int rep = 0; rep < reps; ++rep) {
    for (int w = 0; w < window; ++w) {
      const Digraph& a = snaps[static_cast<std::size_t>(w)];
      const Digraph& b =
          snaps[static_cast<std::size_t>((w + 1) % window)];
      for (ProcId p = 0; p < n; ++p) {
        // (p + 1) stays inside p's block except at block boundaries,
        // so most probes intersect to the shared block and the rest
        // prove disjointness — both directions of the verdict.
        const ProcId q = (p + 1) % n;
        tmp = a.out_neighbors(p);
        tmp &= b.in_neighbors(q);
        arm.total += tmp.count();
      }
    }
  }
  arm.ns = ns_since(start);
  arm.peak_bytes = ProcSet::peak_bytes();
  return arm;
}

// --- SCC micro ------------------------------------------------------------

struct SccArm {
  std::int64_t ns = 0;
  std::int64_t components = 0;
  std::int64_t roots = 0;
  std::int64_t checksum = 0;  // order-insensitive digest of the result
  std::int64_t peak_bytes = 0;
};

/// Full analytics pass on the decayed skeleton: Tarjan plus the root
/// scan, `reps` times. Small blocks keep member iteration light so the
/// timed region is dominated by the row walks the representation
/// changes (dense: full span; tiered: summary/sparse skip).
SccArm run_scc_arm(ProcId n, ProcId block, int reps) {
  SccArm arm;
  ProcSet::reset_peak_bytes();
  const Digraph skel = block_skeleton(n, block);
  const auto start = Clock::now();
  for (int rep = 0; rep < reps; ++rep) {
    const SccDecomposition scc = strongly_connected_components(skel);
    const std::vector<int> roots = root_component_indices(skel, scc);
    arm.components = static_cast<std::int64_t>(scc.components.size());
    arm.roots = static_cast<std::int64_t>(roots.size());
    arm.checksum = 0;
    for (const ProcSet& c : scc.components) {
      arm.checksum += static_cast<std::int64_t>(c.first()) + c.count();
    }
  }
  arm.ns = ns_since(start);
  arm.peak_bytes = ProcSet::peak_bytes();
  return arm;
}

// --- Theorem-1 scale run --------------------------------------------------

struct ScaleRun {
  ProcId n = 0;
  int k = 0;
  ProcId blocks = 0;
  Round rounds = 0;
  Round last_change = 0;
  Round stabilized = 0;
  std::int64_t root_components = 0;
  std::int64_t distinct_decisions = 0;
  std::int64_t build_ns = 0;
  std::int64_t run_ns = 0;
  std::int64_t decide_ns = 0;
  std::int64_t analytics_recomputes = 0;
  std::int64_t peak_bytes = 0;
  std::int64_t live_bytes = 0;
  bool scc_match = false;
  bool ok = false;
};

/// One full Theorem-1 run: a partitioned system of n/`block`
/// complete blocks (so Psrcs(k) holds with k = #blocks) decays from
/// transient cross-block edges over `kFade` rounds, the tracker's
/// analytics are queried every round from round 1 on, and once the
/// tail proves stabilization every process decides the minimum value
/// among the root components that reach it — the paper's rule, which
/// bounds distinct decisions by the number of root components <= k.
///
/// The decay schedule is deterministic (per-pair Bernoulli noise at
/// n = 65,536 would cost O(n^2) RNG draws per round and time nothing
/// but the generator):
///   * a cross-edge chain leader(b) -> leader(b+1) whose edge for
///     block b survives through round 1 + (b mod kFade) — while it
///     lives, block b+1 is not a root; every expiry is an external
///     edge loss with a root recheck;
///   * every 8th block loses two *internal* edges in round
///     kInternalLossRound's intersection — a same-component deletion
///     batch that exercises IncrementalScc's multi-edge targeted
///     reachability probes.
ScaleRun run_theorem1_scale(ProcId n, ProcId block) {
  constexpr Round kFade = 6;
  constexpr Round kInternalLossRound = 5;
  ScaleRun run;
  run.n = n;
  run.blocks = n / block;
  run.k = static_cast<int>(run.blocks);
  run.rounds = kFade + 5;
  ProcSet::reset_peak_bytes();

  struct Transient {
    ProcId q;
    ProcId p;
    Round until;  // present in the round graphs 1 .. until
  };
  std::vector<Transient> transients;
  for (ProcId b = 0; b + 1 < run.blocks; ++b) {
    transients.push_back(
        {b * block, (b + 1) * block, 1 + (b % kFade)});
  }
  for (ProcId b = 0; b < run.blocks; b += 8) {
    const ProcId base = b * block;
    transients.push_back({base + 1, base + 2, kInternalLossRound - 1});
    transients.push_back({base + 3, base + 4, kInternalLossRound - 1});
  }

  auto build_start = Clock::now();
  Digraph g = block_skeleton(n, block);
  for (const Transient& t : transients) g.add_edge(t.q, t.p);
  run.build_ns = ns_since(build_start);

  const auto run_start = Clock::now();
  SkeletonTracker tracker(n);
  for (Round r = 1; r <= run.rounds; ++r) {
    for (const Transient& t : transients) {
      if (t.until == r - 1) g.remove_edge(t.q, t.p);
    }
    tracker.observe(r, g);
    // Analytics every round, like a monitor: round 1 seeds the
    // (blocked) Tarjan on the freshly decayed skeleton, the rest run
    // the incremental maintainer over the small per-round deltas.
    (void)tracker.current_scc();
    (void)tracker.current_root_components();
  }
  run.run_ns = ns_since(run_start);
  run.last_change = tracker.last_change_round();
  run.stabilized = tracker.stabilized_for();
  run.analytics_recomputes = tracker.analytics_recomputes();

  // Decision phase on the stable skeleton: condense, then push root
  // minima down the component DAG in topological order.
  const auto decide_start = Clock::now();
  const Digraph& skel = tracker.skeleton();
  const SccDecomposition& scc = tracker.current_scc();
  const std::vector<int>& root_idx = tracker.current_root_indices();
  run.root_components = static_cast<std::int64_t>(root_idx.size());
  const std::size_t comps = scc.components.size();
  const auto cn = static_cast<ProcId>(comps);
  std::vector<ProcSet> dag_succ(comps, ProcSet(cn));
  for (ProcId p : skel.nodes()) {
    const int cp = scc.component_of[static_cast<std::size_t>(p)];
    for (ProcId q : skel.out_neighbors(p)) {
      const int cq = scc.component_of[static_cast<std::size_t>(q)];
      if (cq != cp) dag_succ[static_cast<std::size_t>(cp)].insert(cq);
    }
  }
  std::vector<int> indegree(comps, 0);
  for (const ProcSet& succ : dag_succ) {
    for (ProcId d : succ) ++indegree[static_cast<std::size_t>(d)];
  }
  // Values are the process ids, so a component's minimum value is its
  // first member; only roots seed the relaxation.
  std::vector<Value> rmin(comps, kNoValue);
  for (int idx : root_idx) {
    rmin[static_cast<std::size_t>(idx)] =
        scc.components[static_cast<std::size_t>(idx)].first();
  }
  std::vector<int> queue;
  for (std::size_t c = 0; c < comps; ++c) {
    if (indegree[c] == 0) queue.push_back(static_cast<int>(c));
  }
  bool decided_all = true;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const auto c = static_cast<std::size_t>(queue[head]);
    if (rmin[c] == kNoValue) decided_all = false;  // unreachable from roots
    for (ProcId d : dag_succ[c]) {
      const auto di = static_cast<std::size_t>(d);
      if (rmin[c] != kNoValue &&
          (rmin[di] == kNoValue || rmin[c] < rmin[di])) {
        rmin[di] = rmin[c];
      }
      if (--indegree[di] == 0) queue.push_back(d);
    }
  }
  decided_all = decided_all && queue.size() == comps;
  std::vector<Value> decisions;
  std::int64_t members = 0;
  for (std::size_t c = 0; c < comps; ++c) {
    members += scc.components[c].count();
    if (rmin[c] == kNoValue) decided_all = false;
    decisions.push_back(rmin[c]);
  }
  std::sort(decisions.begin(), decisions.end());
  decisions.erase(std::unique(decisions.begin(), decisions.end()),
                  decisions.end());
  run.distinct_decisions = static_cast<std::int64_t>(decisions.size());
  run.decide_ns = ns_since(decide_start);

  // Soundness anchor: the incrementally maintained decomposition must
  // match a from-scratch Tarjan on the final skeleton.
  const SccDecomposition fresh = strongly_connected_components(skel);
  run.scc_match =
      sorted_sets(fresh.components) == sorted_sets(scc.components);

  run.peak_bytes = ProcSet::peak_bytes();
  run.live_bytes = ProcSet::live_bytes();
  run.ok = decided_all && members == n && run.scc_match &&
           run.root_components <= run.k &&
           run.distinct_decisions <= run.k &&
           run.last_change == kFade + 1 && run.stabilized >= 3;
  return run;
}

}  // namespace

int main() {
  using namespace sskel;
  std::cout << "==================================================\n"
            << " E13: scale gates — tiered ProcSet vs flat dense\n"
            << "      (post-decay skeletons; n up to 65,536)\n"
            << "==================================================\n\n";

  const bool smoke = std::getenv("SSKEL_SMOKE") != nullptr;
  BenchJson json("scale");
  bool all_ok = true;

  // Every gated row demands tiered >= `gate` x dense. 5x is the
  // asymptotic claim at n = 65,536; 2x is the floor at n = 4096 where
  // fixed per-row costs bound the quotient (see file comment).
  struct MicroCfg {
    ProcId n;
    ProcId block;
    int window;
    int reps;
    double gate;
  };

  // --- intersection micro pair -------------------------------------------
  std::vector<MicroCfg> icfgs;
  icfgs.push_back({4096, 64, smoke ? 8 : 32, smoke ? 1 : 3, 2.0});
  if (!smoke) icfgs.push_back({65536, 64, 2, 2, 5.0});
  Table itable("row-probe intersection sweep: dense vs tiered",
               {"n", "window", "dense ms", "tiered ms", "speedup", "gate",
                "match"});
  for (const MicroCfg& cfg : icfgs) {
    IntersectArm dense;
    {
      ScopedTierPolicy scope(ProcSet::TierPolicy::kDenseOnly);
      dense = run_intersect_arm(cfg.n, cfg.block, cfg.window, cfg.reps);
    }
    const IntersectArm tiered =
        run_intersect_arm(cfg.n, cfg.block, cfg.window, cfg.reps);
    const bool match = dense.total == tiered.total;
    const double speedup =
        tiered.ns > 0 ? static_cast<double>(dense.ns) /
                            static_cast<double>(tiered.ns)
                      : 0.0;
    if (!match) {
      std::cerr << "intersect MISMATCH: n=" << cfg.n << " dense total "
                << dense.total << " != tiered " << tiered.total << "\n";
      all_ok = false;
    }
    if (speedup < cfg.gate) {
      std::cerr << "intersect gate FAILED: n=" << cfg.n << " speedup "
                << speedup << " < " << cfg.gate << "\n";
      all_ok = false;
    }
    itable.add_row({cell(cfg.n), cell(cfg.window),
                    cell(static_cast<double>(dense.ns) / 1e6, 2),
                    cell(static_cast<double>(tiered.ns) / 1e6, 2),
                    cell(speedup, 1), cell(cfg.gate, 1),
                    match ? "yes" : "NO"});
    json.add("micro_intersect")
        .set("n", cfg.n)
        .set("window", cfg.window)
        .set("reps", cfg.reps)
        .set("dense_ns", dense.ns)
        .set("tiered_ns", tiered.ns)
        .set("speedup", speedup)
        .set("gate", cfg.gate)
        .set("match", static_cast<std::int64_t>(match))
        .set("peak_bytes_dense", dense.peak_bytes)
        .set("peak_bytes_tiered", tiered.peak_bytes);
  }
  itable.print(std::cout);

  // --- SCC micro pair ----------------------------------------------------
  std::vector<MicroCfg> scfgs;
  scfgs.push_back({4096, 8, 0, smoke ? 2 : 5, 1.3});
  if (!smoke) scfgs.push_back({65536, 8, 0, 2, 5.0});
  Table stable_tbl("SCC + root analytics: dense vs blocked/tiered Tarjan",
                   {"n", "components", "dense ms", "tiered ms", "speedup",
                    "gate", "match"});
  for (const MicroCfg& cfg : scfgs) {
    SccArm dense;
    {
      ScopedTierPolicy scope(ProcSet::TierPolicy::kDenseOnly);
      dense = run_scc_arm(cfg.n, cfg.block, cfg.reps);
    }
    const SccArm tiered = run_scc_arm(cfg.n, cfg.block, cfg.reps);
    const bool match = dense.components == tiered.components &&
                       dense.roots == tiered.roots &&
                       dense.checksum == tiered.checksum;
    const double speedup =
        tiered.ns > 0 ? static_cast<double>(dense.ns) /
                            static_cast<double>(tiered.ns)
                      : 0.0;
    if (!match) {
      std::cerr << "scc MISMATCH: n=" << cfg.n << "\n";
      all_ok = false;
    }
    if (speedup < cfg.gate) {
      std::cerr << "scc gate FAILED: n=" << cfg.n << " speedup " << speedup
                << " < " << cfg.gate << "\n";
      all_ok = false;
    }
    stable_tbl.add_row({cell(cfg.n), cell(dense.components),
                        cell(static_cast<double>(dense.ns) / 1e6, 2),
                        cell(static_cast<double>(tiered.ns) / 1e6, 2),
                        cell(speedup, 1), cell(cfg.gate, 1),
                        match ? "yes" : "NO"});
    json.add("micro_scc")
        .set("n", cfg.n)
        .set("block", cfg.block)
        .set("reps", cfg.reps)
        .set("components", dense.components)
        .set("dense_ns", dense.ns)
        .set("tiered_ns", tiered.ns)
        .set("speedup", speedup)
        .set("gate", cfg.gate)
        .set("match", static_cast<std::int64_t>(match))
        .set("peak_bytes_dense", dense.peak_bytes)
        .set("peak_bytes_tiered", tiered.peak_bytes);
  }
  stable_tbl.print(std::cout);

  // --- Theorem-1 run at scale --------------------------------------------
  std::vector<ProcId> run_sizes = {4096};
  if (!smoke) run_sizes.push_back(65536);
  Table rtable("Theorem 1 at scale: stabilization + decision",
               {"n", "k", "rounds", "r_ST", "roots", "decisions",
                "track ms", "decide ms", "peak MB", "ok"});
  for (const ProcId n : run_sizes) {
    const ScaleRun run = run_theorem1_scale(n, 64);
    all_ok = all_ok && run.ok;
    if (!run.ok) {
      std::cerr << "theorem1 scale run FAILED at n=" << n
                << " (roots=" << run.root_components
                << " decisions=" << run.distinct_decisions
                << " r_ST=" << run.last_change
                << " scc_match=" << run.scc_match << ")\n";
    }
    rtable.add_row(
        {cell(run.n), cell(run.k), cell(static_cast<std::int64_t>(run.rounds)),
         cell(static_cast<std::int64_t>(run.last_change)),
         cell(run.root_components), cell(run.distinct_decisions),
         cell(static_cast<double>(run.run_ns) / 1e6, 2),
         cell(static_cast<double>(run.decide_ns) / 1e6, 2),
         cell(static_cast<double>(run.peak_bytes) / (1024.0 * 1024.0), 1),
         run.ok ? "yes" : "NO"});
    json.add("theorem1_scale")
        .set("n", run.n)
        .set("k", run.k)
        .set("rounds", static_cast<std::int64_t>(run.rounds))
        .set("blocks", run.blocks)
        .set("last_change_round", static_cast<std::int64_t>(run.last_change))
        .set("stabilized_rounds", static_cast<std::int64_t>(run.stabilized))
        .set("root_components", run.root_components)
        .set("distinct_decisions", run.distinct_decisions)
        .set("build_ns", run.build_ns)
        .set("track_ns", run.run_ns)
        .set("decide_ns", run.decide_ns)
        .set("analytics_recomputes", run.analytics_recomputes)
        .set("scc_match", static_cast<std::int64_t>(run.scc_match))
        .set("peak_proc_set_bytes", run.peak_bytes)
        .set("live_proc_set_bytes", run.live_bytes)
        .set("completed", static_cast<std::int64_t>(run.ok));
  }
  rtable.print(std::cout);

  const char* path_env = std::getenv("SSKEL_BENCH_JSON");
  const std::string path = path_env != nullptr ? path_env : "BENCH_scale.json";
  if (json.write_file(path)) {
    std::cout << "wrote " << path << '\n';
  } else {
    std::cerr << "warning: could not write " << path << '\n';
  }
  std::cout << (all_ok ? "RESULT: all scale gates held.\n"
                       : "RESULT: GATE FAILURES (see above).\n");
  return all_ok ? 0 : 1;
}
