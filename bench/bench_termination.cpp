// E4 — Lemma 11 quantitatively: every process decides by
// r_ST + 2n - 1 (+1 under the literal "r > n" guard).
//
// Sweep n x engineered stabilization round, 60 trials per row, both
// Line-28 guard variants. Reports the observed last-decision-round
// distribution against the analytic bound; "viol" must stay 0.
#include <iostream>

#include "mc/montecarlo.hpp"
#include "util/table.hpp"

int main() {
  using namespace sskel;
  std::cout << "=====================================================\n"
            << " E4: Lemma 11 — termination by r_ST + 2n - 1 (+guard)\n"
            << "=====================================================\n\n";

  struct Row {
    ProcId n;
    Round st;
  };
  const std::vector<Row> rows = {{4, 1}, {4, 8},  {8, 1},  {8, 4},
                                 {8, 12}, {16, 1}, {16, 8}, {24, 4},
                                 {32, 1}, {32, 16}};
  const int trials = 60;

  for (DecisionGuard guard :
       {DecisionGuard::kAfterRoundN, DecisionGuard::kAtRoundN}) {
    Table table(std::string("decision rounds vs Lemma 11 bound, guard = ") +
                    (guard == DecisionGuard::kAfterRoundN ? "r > n (paper)"
                                                          : "r >= n"),
                {"n", "eng. r_ST", "obs. r_ST mean", "last dec. mean",
                 "last dec. max", "bound (worst r_ST)", "bound viol",
                 "undecided"});
    bool all_ok = true;
    for (const Row& row : rows) {
      RandomPsrcsParams params;
      params.n = row.n;
      params.k = 2;
      params.root_components = 2;
      params.stabilization_round = row.st;
      params.noise_probability = 0.35;
      KSetRunConfig config;
      config.k = 2;
      config.guard = guard;
      config.max_rounds = 4 * row.n + 4 * row.st + 60;
      const McSummary s =
          run_random_psrcs_trials(0xE4, trials, params, config);

      const Round worst_bound =
          row.st + 2 * row.n - 1 +
          (guard == DecisionGuard::kAfterRoundN ? 1 : 0);
      all_ok = all_ok && s.bound_violations == 0 && s.undecided_runs == 0;
      table.add_row(
          {cell(row.n), cell(static_cast<std::int64_t>(row.st)),
           cell(s.stabilization_round.mean(), 2),
           cell(s.last_decision_round.mean(), 2),
           cell(s.last_decision_round.max(), 0),
           cell(static_cast<std::int64_t>(worst_bound)),
           cell(s.bound_violations), cell(s.undecided_runs)});
    }
    table.print(std::cout);
    if (!all_ok) {
      std::cout << "RESULT: BOUND VIOLATIONS FOUND.\n";
      return 1;
    }
  }
  std::cout << "RESULT: all decisions within the Lemma 11 bound, both "
               "guards.\n";
  return 0;
}
