// E1 — Figure 1 reproduction.
//
// Regenerates every artifact of the paper's only figure: the round-2
// skeleton G∩2 (Fig. 1a), the stable skeleton G∩∞ with its two root
// components (Fig. 1b), and process p6's approximation graph for
// rounds 1-6 (Figs. 1c-1h), printed as labeled edge lists. Also checks
// the surrounding claims (Psrcs(3) holds; decisions: one value per
// root component) and prints a verdict row per claim.
#include <iostream>
#include <memory>

#include "adversary/figure1.hpp"
#include "graph/scc.hpp"
#include "kset/runner.hpp"
#include "kset/skeleton_kset.hpp"
#include "predicates/psrcs.hpp"
#include "rounds/simulator.hpp"
#include "util/table.hpp"

int main() {
  using namespace sskel;
  std::cout << "================================================\n"
            << " E1: Figure 1 of the paper (6 processes, k = 3)\n"
            << " (paper ids p1..p6 are printed as p0..p5)\n"
            << "================================================\n\n";

  std::cout << "-- Fig. 1a: G∩2 (skeleton after round 2) --\n"
            << figure1_round2_skeleton().to_string() << "\n";
  std::cout << "-- Fig. 1b: G∩∞ (stable skeleton) --\n"
            << figure1_stable_skeleton().to_string() << "\n";

  Table roots_table("root components of G∩∞ (Fig. 1b)",
                    {"component", "members"});
  const auto roots = root_components(figure1_stable_skeleton());
  for (std::size_t i = 0; i < roots.size(); ++i) {
    roots_table.add_row({"R" + std::to_string(i), roots[i].to_string()});
  }
  roots_table.print(std::cout);

  // Figs. 1c-1h: p6's approximation, rounds 1..6.
  auto source = make_figure1_source();
  std::vector<std::unique_ptr<Algorithm<SkeletonMessage>>> procs;
  std::vector<SkeletonKSetProcess*> views;
  for (ProcId p = 0; p < kFigure1N; ++p) {
    auto proc =
        std::make_unique<SkeletonKSetProcess>(kFigure1N, p, 100 * p + 7);
    views.push_back(proc.get());
    procs.push_back(std::move(proc));
  }
  Simulator<SkeletonMessage> sim(*source, std::move(procs));

  Table series("Figs. 1c-1h: p6's approximation G_{p6}^r (self-loops "
               "omitted)",
               {"round", "edges (q -label-> p)", "#edges", "strongly conn."});
  for (Round r = 1; r <= 6; ++r) {
    sim.step();
    const LabeledDigraph& g = views[5]->approximation();
    std::int64_t non_self = 0;
    for (ProcId q : g.nodes()) {
      for (ProcId p : g.nodes()) {
        if (q != p && g.has_edge(q, p)) ++non_self;
      }
    }
    series.add_row({cell(r), g.to_string(false), cell(non_self),
                    g.strongly_connected() ? "yes" : "no"});
  }
  series.print(std::cout);

  // Full run, claims table.
  auto source2 = make_figure1_source();
  KSetRunConfig config;
  config.k = kFigure1K;
  config.attach_lemma_monitor = true;
  config.tail_rounds = 6;
  const KSetRunReport report = run_kset(*source2, config);

  Table claims("claims checked", {"claim", "expected", "measured", "ok"});
  auto add_claim = [&](const std::string& c, const std::string& e,
                       const std::string& m, bool ok) {
    claims.add_row({c, e, m, ok ? "yes" : "NO"});
  };
  const bool psrcs_ok =
      check_psrcs_exact(figure1_stable_skeleton(), kFigure1K).holds;
  add_claim("Psrcs(3) holds on G∩∞", "holds", psrcs_ok ? "holds" : "violated",
            psrcs_ok);
  add_claim("#root components", "2", cell(roots.size()), roots.size() == 2);
  add_claim("skeleton stabilization round r_ST", "3",
            cell(static_cast<std::int64_t>(report.skeleton_last_change)),
            report.skeleton_last_change == 3);
  add_claim("all processes decide", "yes", report.all_decided ? "yes" : "no",
            report.all_decided);
  add_claim("distinct decision values <= k", "<= 3",
            cell(report.distinct_values), report.distinct_values <= 3);
  add_claim("one value per root component", "2", cell(report.distinct_values),
            report.distinct_values == 2);
  add_claim("lemma monitors clean", "0 violations",
            cell(static_cast<std::int64_t>(report.lemma_violations.size())),
            report.lemma_violations.empty());
  add_claim("decisions within Lemma 11 bound",
            "<= " + std::to_string(report.termination_bound(config.guard)),
            cell(static_cast<std::int64_t>(report.last_decision_round)),
            report.last_decision_round <=
                report.termination_bound(config.guard));
  claims.print(std::cout);
  return 0;
}
