// E17 — checkpointed campaign throughput (DESIGN.md §15).
//
// The campaign engine's promise is "crash safety for free": streaming
// trials through a hot McTilePlane with periodic checkpoint snapshots
// must sustain the throughput of back-to-back plane batches, because
// the only dispatcher-side checkpoint cost is a state copy handed to
// the off-thread writer. This bench measures both sides of that
// promise on the converged partition workload (the E15 fleet regime)
// and exit-code-gates:
//
//   * sustained_trials_per_sec >= 0.95x the back-to-back batch rate,
//     with checkpointing every checkpoint_every trials;
//   * checkpoint_stall_pct < 1% of wall time;
//   * the campaign's folded summary is byte-identical (SSKC trial
//     fields) to one uninterrupted McTilePlane batch over the same
//     seeds — streaming, burst sizing and checkpoint copies change
//     nothing the fold can see;
//   * a campaign killed mid-run and resumed from its checkpoint
//     reproduces that same byte-identical summary.
//
// SSKEL_SMOKE=1 shrinks the trial counts for CI; SSKEL_BENCH_JSON
// overrides the BENCH_campaign.json path. Rate fields end in _per_sec
// (higher is better) and stall fields in _pct (lower is better) so
// tools/bench_diff.py applies the right direction to each.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "adversary/partition.hpp"
#include "campaign/campaign.hpp"
#include "mc/mc_plane.hpp"
#include "util/assert.hpp"
#include "util/bench_json.hpp"
#include "util/table.hpp"

namespace {

using namespace sskel;
using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

[[nodiscard]] std::filesystem::path fresh_state_dir(const char* name) {
  const std::filesystem::path dir = std::filesystem::path(".") / name;
  std::filesystem::remove_all(dir);
  return dir;
}

}  // namespace

int main() {
  const bool smoke = std::getenv("SSKEL_SMOKE") != nullptr;
  bool all_ok = true;
  BenchJson json("campaign");

  // The E15 converged workload: tiny stable partition, so per-trial
  // cost is small and scheduling overhead (the thing a campaign could
  // regress) is the biggest visible term.
  const ProcId n = 4;
  PartitionParams params;
  params.blocks = even_blocks(n, 2);
  params.cross_noise_probability = 0.0;
  params.stabilization_round = 1;
  const auto scenario = std::make_shared<PartitionScenario>(params);
  KSetRunConfig config;
  config.k = 2;

  const std::int64_t total_trials = smoke ? 4000 : 100000;
  const std::int64_t checkpoint_every = smoke ? 1000 : 10000;
  const int reps = smoke ? 2 : 3;
  const std::uint64_t master = 0xE17CA3;

  std::cout << "========================================================\n"
            << " E17: checkpointed campaign vs back-to-back batches\n"
            << " (partition n=4, m=2, " << total_trials << " trials, "
            << "checkpoint every " << checkpoint_every << ")\n"
            << "========================================================\n\n";

  // Reference fold: one uninterrupted plane batch over the campaign's
  // exact seed sequence. Its SSKC trial-field bytes are the
  // bit-equality currency every other run is compared against.
  McTilePlane reference_plane(*scenario, McPlaneOptions{});
  const McSummary reference = reference_plane.run(
      master, static_cast<int>(total_trials), config);
  const std::vector<std::uint8_t> reference_bytes =
      encode_summary_trial_fields(reference);

  // Back-to-back batch baseline: the same hot plane, run() per batch
  // of checkpoint_every trials — the pre-campaign way to sweep, with
  // no checkpointing and no crash safety. Best-of-reps batch rate.
  double batch_s = 0.0;
  {
    const auto batches =
        static_cast<int>(total_trials / checkpoint_every);
    for (int rep = 0; rep < reps; ++rep) {
      const Clock::time_point start = Clock::now();
      for (int b = 0; b < batches; ++b) {
        (void)reference_plane.run(master + static_cast<std::uint64_t>(b),
                                  static_cast<int>(checkpoint_every), config);
      }
      const double elapsed = seconds_since(start);
      batch_s = rep == 0 ? elapsed : std::min(batch_s, elapsed);
    }
  }
  const double batch_rate =
      static_cast<double>(total_trials) / (batch_s > 0.0 ? batch_s : 1e-9);

  // The campaign: same seeds, one job, checkpointing on. The engine
  // is constructed once so its plane stays hot across reps, exactly
  // like the baseline's.
  CampaignSpec spec;
  spec.config = config;
  spec.jobs.push_back(CampaignJob{"partition-sweep", scenario, master,
                                  total_trials});
  CampaignOptions options;
  options.checkpoint_every = checkpoint_every;
  options.state_dir = fresh_state_dir("bench_campaign.state").string();
  CampaignEngine engine(spec, options);

  CampaignStats best_stats;
  bool campaign_bytes_ok = true;
  for (int rep = 0; rep < reps; ++rep) {
    const CampaignResult result = engine.run();
    SSKEL_ASSERT(result.completed);
    campaign_bytes_ok =
        campaign_bytes_ok &&
        encode_summary_trial_fields(result.summaries[0]) == reference_bytes;
    if (rep == 0 || result.stats.sustained_trials_per_sec >
                        best_stats.sustained_trials_per_sec) {
      best_stats = result.stats;
    }
  }

  const double ratio =
      best_stats.sustained_trials_per_sec / (batch_rate > 0.0 ? batch_rate
                                                              : 1e-9);
  const bool throughput_ok = ratio >= 0.95;
  const bool stall_ok = best_stats.checkpoint_stall_pct < 1.0;
  all_ok = all_ok && throughput_ok && stall_ok && campaign_bytes_ok;

  Table table("campaign vs batches (best of " + std::to_string(reps) +
                  " reps)",
              {"mode", "trials/s", "checkpoints", "stall %", "ckpt bytes"});
  table.add_row({"back-to-back batches", cell(batch_rate, 0), "-", "-", "-"});
  table.add_row({"campaign (ckpt on)",
                 cell(best_stats.sustained_trials_per_sec, 0),
                 cell(best_stats.checkpoints_written),
                 cell(best_stats.checkpoint_stall_pct, 3),
                 cell(best_stats.checkpoint_bytes)});
  table.print(std::cout);
  std::cout << "throughput ratio: " << ratio
            << "x (gate >= 0.95x: " << (throughput_ok ? "PASS" : "FAIL")
            << ")\ncheckpoint stall: " << best_stats.checkpoint_stall_pct
            << "% (gate < 1%: " << (stall_ok ? "PASS" : "FAIL")
            << ")\nsummary bytes vs uninterrupted batch: "
            << (campaign_bytes_ok ? "IDENTICAL" : "MISMATCH") << "\n\n";

  json.add("campaign_throughput")
      .set("total_trials", total_trials)
      .set("checkpoint_every", checkpoint_every)
      .set("timing_reps", reps)
      .set("batch_trials_per_sec", batch_rate)
      .set("sustained_trials_per_sec", best_stats.sustained_trials_per_sec)
      .set("throughput_ratio", ratio)
      .set("checkpoint_stall_pct", best_stats.checkpoint_stall_pct)
      .set("checkpoints_written", best_stats.checkpoints_written)
      .set("checkpoint_bytes", best_stats.checkpoint_bytes)
      .set("burst_grows", best_stats.burst_grows)
      .set("burst_shrinks", best_stats.burst_shrinks)
      .set("throughput_gate_pass", static_cast<std::int64_t>(throughput_ok))
      .set("stall_gate_pass", static_cast<std::int64_t>(stall_ok))
      .set("summary_match_pass",
           static_cast<std::int64_t>(campaign_bytes_ok));

  std::cout << "========================================================\n"
            << " E17b: kill + resume bit-exactness\n"
            << "========================================================\n\n";

  {
    const std::int64_t stop_after = total_trials / 2;
    CampaignOptions killed_options;
    killed_options.checkpoint_every = checkpoint_every;
    killed_options.state_dir =
        fresh_state_dir("bench_campaign.killed").string();
    killed_options.stop_after_trials = stop_after;

    CampaignEngine killed(spec, killed_options);
    const CampaignResult interrupted = killed.run();
    SSKEL_ASSERT(!interrupted.completed);

    CampaignOptions resume_options = killed_options;
    resume_options.stop_after_trials = -1;
    CampaignEngine resumer(spec, resume_options);
    const CampaignResult resumed = resumer.resume();
    SSKEL_ASSERT(resumed.completed);

    const bool resume_ok =
        encode_summary_trial_fields(resumed.summaries[0]) == reference_bytes;
    all_ok = all_ok && resume_ok;
    std::cout << "killed at " << interrupted.stats.trials_folded
              << " folded trials, resumed "
              << resumed.stats.trials_folded
              << " more; summary vs uninterrupted: "
              << (resume_ok ? "BIT-IDENTICAL" : "MISMATCH") << "\n\n";

    json.add("campaign_resume")
        .set("stop_after", stop_after)
        .set("interrupted_folded", interrupted.stats.trials_folded)
        .set("resumed_folded", resumed.stats.trials_folded)
        .set("resume_match_pass", static_cast<std::int64_t>(resume_ok));

    std::filesystem::remove_all(killed_options.state_dir);
  }
  std::filesystem::remove_all(options.state_dir);

  const char* path_env = std::getenv("SSKEL_BENCH_JSON");
  const std::string path =
      path_env != nullptr ? path_env : "BENCH_campaign.json";
  if (json.write_file(path)) {
    std::cout << "wrote " << path << '\n';
  } else {
    std::cerr << "warning: could not write " << path << '\n';
  }
  std::cout << (all_ok ? "RESULT: all campaign gates held.\n"
                       : "RESULT: GATE FAILURES (see above).\n");
  return all_ok ? 0 : 1;
}
