// E11 — the round abstraction over a real (simulated) network: how the
// synchronizer's timeout D trades skeleton density against liveness.
//
// Fixed physical network (k timely hubs with delays in [100, 700]us,
// flaky remainder, 200us max clock skew), swept round duration D:
//
//   * D too small (< max timely delay + skew): even "timely" links
//     miss deadlines, the hub cover dissolves, the skeleton shatters
//     and more values survive (Psrcs(k) may fail on the derived run).
//   * D comfortable: the hub cover holds, Psrcs(k) holds on the
//     derived skeleton, <= k values; larger D wastes wall-clock time
//     per round but changes nothing structurally.
//
// This is the engineering face of the paper's model: the predicate is
// a property you *buy* with the timeout. Each row is one NetScenario
// sweep through the shared Monte-Carlo engine.
#include <iostream>

#include "graph/scc.hpp"
#include "mc/montecarlo.hpp"
#include "predicates/psrcs.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace sskel;
  std::cout << "========================================================\n"
            << " E11: synchronizer timeout vs derived-skeleton quality\n"
            << " (n=9, k=3 timely hubs: delays 100-700us, skew <= 200us)\n"
            << "========================================================\n\n";

  const ProcId n = 9;
  const int k = 3;
  const int trials = 15;

  Digraph stable(n);
  stable.add_self_loops();
  for (ProcId p = 0; p < n; ++p) {
    stable.add_edge(p % static_cast<ProcId>(k), p);
  }
  LinkMatrix links = LinkMatrix::all_flaky(n, 0.35);
  links.upgrade_to_timely(stable, 100, 700);

  KSetRunConfig run;
  run.k = k;

  Table table("round duration sweep (15 trials per row)",
              {"D (us)", "Psrcs(3) holds", "mean skel edges",
               "mean roots", "values max", ">k viol", "mean dec. round",
               "mean sim time (ms)", "late msgs/run"});
  for (SimTime d : {400, 550, 650, 700, 950, 1500, 4000}) {
    NetConfig net;
    net.round_duration = d;
    for (ProcId p = 0; p < n; ++p) {
      net.skews.push_back((static_cast<SimTime>(p) * 37) % 201);
    }
    const NetScenario scenario(links, net);

    int psrcs_holds = 0, over_k = 0, values_max = 0;
    Accumulator edges, roots, dec_round, sim_ms, late;
    const McSummary summary = run_scenario_trials(
        scenario, 0xE11, trials, run, /*threads=*/0,
        [&](std::size_t, const ScenarioTrial& trial) {
          const KSetRunReport& r = trial.kset;
          if (!r.all_decided) return;
          if (check_psrcs_exact(r.final_skeleton, k).holds) ++psrcs_holds;
          if (r.distinct_values > k) ++over_k;
          values_max = std::max(values_max, r.distinct_values);
          edges.add(static_cast<double>(r.final_skeleton.edge_count()));
          roots.add(static_cast<double>(
              root_components(r.final_skeleton).size()));
          dec_round.add(r.last_decision_round);
          sim_ms.add(static_cast<double>(trial.wall_clock) / 1000.0);
          late.add(static_cast<double>(trial.late_messages));
        });
    SSKEL_ASSERT(summary.net_backed);
    table.add_row({cell(static_cast<std::int64_t>(d)),
                   cell(psrcs_holds) + "/" + cell(trials),
                   cell(edges.mean(), 1), cell(roots.mean(), 2),
                   cell(values_max), cell(over_k), cell(dec_round.mean(), 1),
                   cell(sim_ms.mean(), 1), cell(late.mean(), 0)});
  }
  table.print(std::cout);
  std::cout
      << "Reading: a hub link with delay d is on time iff\n"
         "d <= D + skew(member) - skew(hub); with this skew assignment\n"
         "the worst adverse pair differs by 21us, so the hub cover needs\n"
         "D >= ~680us. Below that (D = 400us) hub links miss deadlines,\n"
         "the derived skeleton shatters into singleton roots, Psrcs(3)\n"
         "fails and more than 3 values appear. At D >= 700us Psrcs(3)\n"
         "holds in every trial and the k ceiling is honored; growing D\n"
         "further only stretches simulated wall-clock time per round —\n"
         "the predicate is a property you buy with the timeout, priced\n"
         "in latency.\n";
  return 0;
}
