// E11 + E14 — the network substrate, measured from both faces.
//
// E11 (tables 1): the round abstraction over a real (simulated)
// network — how the synchronizer's timeout D trades skeleton density
// against liveness. Fixed physical network (k timely hubs with delays
// in [100, 700]us, flaky remainder, 200us max clock skew), swept round
// duration D:
//
//   * D too small (< max timely delay + skew): even "timely" links
//     miss deadlines, the hub cover dissolves, the skeleton shatters
//     and more values survive (Psrcs(k) may fail on the derived run).
//   * D comfortable: the hub cover holds, Psrcs(k) holds on the
//     derived skeleton, <= k values; larger D wastes wall-clock time
//     per round but changes nothing structurally.
//
// E14 (tables 2-3): sustained throughput of the message plane
// (DESIGN.md §12). A trivial relay algorithm (min-fold over int64
// payloads) makes the transition free, so the measurement isolates the
// delivery hot path:
//
//   * plane compare — the same seeded run on NetPlane::kEventQueue
//     (one heap event per delivery) vs NetPlane::kRing (analytic
//     timeliness, batch ring drains). Gates: the ring plane sustains
//     >= 1M process-rounds/sec, and >= 5x the event-queue baseline on
//     the multiplexed configuration below.
//   * multiplexed runs — many independent net-backed runs dispatched
//     as TileWork over a TilePlane (credit-gated intake/result rings,
//     tick-paced watermarks), against the same batch run sequentially
//     on the event-queue plane. This is the fleet shape: one
//     dispatcher feeding pinned worker tiles.
//
// Both planes produce bit-identical reports (the tripwire test pins
// this); the bench asserts the cheap projection of that — equal
// delivered/late/lost counts and equal relay digests per seed.
//
// SSKEL_SMOKE=1 shrinks the sweeps for CI; SSKEL_BENCH_JSON overrides
// the BENCH_network.json path. Rate fields end in _per_sec so
// tools/bench_diff.py treats them as higher-is-better.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "graph/scc.hpp"
#include "mc/montecarlo.hpp"
#include "net/tile.hpp"
#include "predicates/psrcs.hpp"
#include "util/bench_json.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace sskel;
using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// The relay algorithm: broadcast a mixed counter, fold the inbox min
/// into a running digest. Cheap enough that the driver's delivery path
/// dominates, stateful enough that a misdelivered or double-counted
/// message changes the digest.
class RelayProcess final : public Algorithm<std::int64_t> {
 public:
  RelayProcess(ProcId n, ProcId id) : Algorithm<std::int64_t>(n, id) {}

  std::int64_t send(Round r) override {
    return digest_ * 31 + static_cast<std::int64_t>(id()) * 1009 + r;
  }

  void transition(Round r, const Inbox<std::int64_t>& inbox) override {
    std::int64_t lowest = send(r);  // own message, always delivered
    inbox.for_each([&](ProcId, const std::int64_t& msg) {
      lowest = std::min(lowest, msg);
    });
    digest_ = digest_ * 131 + lowest;
  }

  [[nodiscard]] std::int64_t digest() const { return digest_; }

 private:
  std::int64_t digest_ = 0;
};

struct ThroughputRun {
  double elapsed_s = 0.0;
  double process_rounds_per_sec = 0.0;
  std::int64_t delivered = 0;
  std::int64_t late = 0;
  std::int64_t lost = 0;
  std::int64_t credit_stalls = 0;
  std::int64_t ring_frags = 0;
  std::int64_t digest = 0;
};

/// One sustained run: n relay processes through `rounds` rounds on the
/// given plane. The digest folds every process's final state, so two
/// planes disagreeing anywhere disagree here.
ThroughputRun run_throughput(NetPlane plane, const LinkMatrix& links,
                             Round rounds, std::uint64_t seed) {
  const ProcId n = links.n();
  NetConfig net;
  net.round_duration = 1000;
  net.seed = seed;
  net.plane = plane;
  for (ProcId p = 0; p < n; ++p) {
    net.skews.push_back((static_cast<SimTime>(p) * 37) % 200);
  }
  std::vector<std::unique_ptr<Algorithm<std::int64_t>>> procs;
  procs.reserve(static_cast<std::size_t>(n));
  for (ProcId p = 0; p < n; ++p) {
    procs.push_back(std::make_unique<RelayProcess>(n, p));
  }
  NetRoundDriver<std::int64_t> driver(net, links, std::move(procs));

  const Clock::time_point start = Clock::now();
  driver.run_rounds(rounds);
  ThroughputRun run;
  run.elapsed_s = seconds_since(start);
  run.process_rounds_per_sec =
      static_cast<double>(n) * static_cast<double>(rounds) /
      (run.elapsed_s > 0.0 ? run.elapsed_s : 1e-9);
  run.delivered = driver.delivered_messages();
  run.late = driver.late_messages();
  run.lost = driver.lost_messages();
  run.credit_stalls = driver.credit_stalls();
  run.ring_frags = driver.ring_frags();
  for (ProcId p = 0; p < n; ++p) {
    const auto& proc = static_cast<const RelayProcess&>(driver.process(p));
    run.digest = run.digest * 257 + proc.digest();
  }
  return run;
}

/// Context for the multiplexed TilePlane runs: every work item is one
/// full net-backed run, keyed by its seed.
struct MuxContext {
  const LinkMatrix* links = nullptr;
  Round rounds = 0;
};

TileResult run_one_mux_work(void* ctx, unsigned /*tile*/,
                            const TileWork& work) {
  const auto& mux = *static_cast<const MuxContext*>(ctx);
  const ThroughputRun run =
      run_throughput(NetPlane::kRing, *mux.links, mux.rounds, work.seed);
  TileResult result;
  result.id = work.id;
  result.value = run.digest;
  result.aux = run.delivered;
  return result;
}

}  // namespace

int main() {
  const bool smoke = std::getenv("SSKEL_SMOKE") != nullptr;
  bool all_ok = true;
  BenchJson json("network");

  std::cout << "========================================================\n"
            << " E11: synchronizer timeout vs derived-skeleton quality\n"
            << " (n=9, k=3 timely hubs: delays 100-700us, skew <= 200us)\n"
            << "========================================================\n\n";

  {
    const ProcId n = 9;
    const int k = 3;
    const int trials = smoke ? 6 : 15;

    Digraph stable(n);
    stable.add_self_loops();
    for (ProcId p = 0; p < n; ++p) {
      stable.add_edge(p % static_cast<ProcId>(k), p);
    }
    LinkMatrix links = LinkMatrix::all_flaky(n, 0.35);
    links.upgrade_to_timely(stable, 100, 700);

    KSetRunConfig run;
    run.k = k;

    Table table("round duration sweep (" + std::to_string(trials) +
                    " trials per row)",
                {"D (us)", "Psrcs(3) holds", "mean skel edges", "mean roots",
                 "values max", ">k viol", "mean dec. round",
                 "mean sim time (ms)", "late msgs/run"});
    for (SimTime d : {400, 550, 650, 700, 950, 1500, 4000}) {
      NetConfig net;
      net.round_duration = d;
      for (ProcId p = 0; p < n; ++p) {
        net.skews.push_back((static_cast<SimTime>(p) * 37) % 201);
      }
      const NetScenario scenario(links, net);

      int psrcs_holds = 0, over_k = 0, values_max = 0;
      Accumulator edges, roots, dec_round, sim_ms, late;
      const McSummary summary = run_scenario_trials(
          scenario, 0xE11, trials, run, /*threads=*/0,
          [&](std::size_t, const ScenarioTrial& trial) {
            const KSetRunReport& r = trial.kset;
            if (!r.all_decided) return;
            if (check_psrcs_exact(r.final_skeleton, k).holds) ++psrcs_holds;
            if (r.distinct_values > k) ++over_k;
            values_max = std::max(values_max, r.distinct_values);
            edges.add(static_cast<double>(r.final_skeleton.edge_count()));
            roots.add(
                static_cast<double>(root_components(r.final_skeleton).size()));
            dec_round.add(r.last_decision_round);
            sim_ms.add(static_cast<double>(trial.wall_clock) / 1000.0);
            late.add(static_cast<double>(trial.late_messages));
          });
      SSKEL_ASSERT(summary.net_backed);
      table.add_row({cell(static_cast<std::int64_t>(d)),
                     cell(psrcs_holds) + "/" + cell(trials),
                     cell(edges.mean(), 1), cell(roots.mean(), 2),
                     cell(values_max), cell(over_k), cell(dec_round.mean(), 1),
                     cell(sim_ms.mean(), 1), cell(late.mean(), 0)});
      json.add("timeout_sweep")
          .set("round_duration_us", static_cast<std::int64_t>(d))
          .set("trials", trials)
          .set("psrcs_holds", psrcs_holds)
          .set("values_max", values_max)
          .set("mean_late_messages", late.mean())
          .set("credit_stall_total", summary.credit_stalls);
    }
    table.print(std::cout);
    std::cout
        << "Reading: a hub link with delay d is on time iff\n"
           "d <= D + skew(member) - skew(hub); with this skew assignment\n"
           "the worst adverse pair differs by 21us, so the hub cover needs\n"
           "D >= ~680us. Below that (D = 400us) hub links miss deadlines,\n"
           "the derived skeleton shatters into singleton roots, Psrcs(3)\n"
           "fails and more than 3 values appear. At D >= 700us Psrcs(3)\n"
           "holds in every trial and the k ceiling is honored.\n\n";
  }

  std::cout << "========================================================\n"
            << " E14: message-plane throughput (ring vs event queue)\n"
            << "========================================================\n\n";

  // The multiplexed configuration: enough processes that per-delivery
  // cost dominates per-round cost (n-1 deliveries per close), short
  // real delays so virtually everything is on time.
  const ProcId mux_n = 24;
  const Round mux_rounds = smoke ? 300 : 2000;
  const LinkMatrix mux_links = LinkMatrix::all_timely(mux_n, 50, 400);

  double ring_rate = 0.0;
  double speedup = 0.0;
  {
    Table table("plane compare (n=24, all-timely, " +
                    std::to_string(mux_rounds) + " rounds)",
                {"plane", "proc-rounds/s", "delivered", "late", "lost",
                 "credit stalls", "ring frags", "elapsed (ms)"});
    const ThroughputRun eq =
        run_throughput(NetPlane::kEventQueue, mux_links, mux_rounds, 0xE14);
    const ThroughputRun ring =
        run_throughput(NetPlane::kRing, mux_links, mux_rounds, 0xE14);
    // Cheap projection of the bit-equality tripwire: same seed, same
    // counts, same relay digest.
    SSKEL_ASSERT(eq.digest == ring.digest);
    SSKEL_ASSERT(eq.delivered == ring.delivered);
    SSKEL_ASSERT(eq.late == ring.late && eq.lost == ring.lost);

    const auto add_row = [&](const std::string& name,
                             const ThroughputRun& run) {
      table.add_row({name, cell(run.process_rounds_per_sec, 0),
                     cell(run.delivered), cell(run.late), cell(run.lost),
                     cell(run.credit_stalls), cell(run.ring_frags),
                     cell(run.elapsed_s * 1000.0, 1)});
      json.add("plane_throughput")
          .set("plane", name)
          .set("n", static_cast<std::int64_t>(mux_n))
          .set("rounds", static_cast<std::int64_t>(mux_rounds))
          .set("process_rounds_per_sec", run.process_rounds_per_sec)
          .set("delivered_messages", run.delivered)
          .set("credit_stall_total", run.credit_stalls)
          .set("ring_frags", run.ring_frags);
    };
    add_row("event-queue", eq);
    add_row("ring", ring);
    table.print(std::cout);

    ring_rate = ring.process_rounds_per_sec;
    speedup = ring.process_rounds_per_sec /
              (eq.process_rounds_per_sec > 0.0 ? eq.process_rounds_per_sec
                                               : 1e-9);
    const bool rate_ok = ring_rate >= 1e6;
    const bool speedup_ok = speedup >= 5.0;
    all_ok = all_ok && rate_ok && speedup_ok;
    std::cout << "ring plane: " << static_cast<std::int64_t>(ring_rate)
              << " process-rounds/s (gate >= 1,000,000: "
              << (rate_ok ? "PASS" : "FAIL") << "), " << speedup
              << "x event-queue baseline (gate >= 5x: "
              << (speedup_ok ? "PASS" : "FAIL") << ")\n\n";
    json.add("plane_speedup")
        .set("ring_process_rounds_per_sec", ring_rate)
        .set("speedup_vs_event_queue", speedup)
        .set("rate_gate_pass", static_cast<std::int64_t>(rate_ok))
        .set("speedup_gate_pass", static_cast<std::int64_t>(speedup_ok));
  }

  {
    const unsigned tiles = 2;
    const std::size_t runs = smoke ? 4 : 12;
    const Round per_run_rounds = smoke ? 150 : 500;

    MuxContext ctx;
    ctx.links = &mux_links;
    ctx.rounds = per_run_rounds;

    std::vector<TileWork> work;
    work.reserve(runs);
    for (std::size_t i = 0; i < runs; ++i) {
      work.push_back(TileWork{i, 0x5EED0000 + i, 0});
    }

    // Baseline: the same batch run sequentially on the event-queue
    // plane (the pre-refactor shape: one dispatcher, one plane, one
    // heap event per delivery).
    const Clock::time_point base_start = Clock::now();
    std::int64_t base_digest = 0;
    for (const TileWork& w : work) {
      const ThroughputRun run = run_throughput(NetPlane::kEventQueue,
                                               mux_links, per_run_rounds,
                                               w.seed);
      base_digest = base_digest * 269 + run.digest;
    }
    const double base_s = seconds_since(base_start);

    TilePlane plane(tiles, &run_one_mux_work, &ctx);
    std::vector<TileResult> results;
    const Clock::time_point mux_start = Clock::now();
    plane.run_all(work, results);
    const double mux_s = seconds_since(mux_start);
    SSKEL_ASSERT(results.size() == runs);

    // Completion order varies; the digest fold is keyed by run id.
    std::vector<std::int64_t> by_id(runs, 0);
    for (const TileResult& r : results) {
      by_id[static_cast<std::size_t>(r.id)] = r.value;
    }
    std::int64_t mux_digest = 0;
    for (std::int64_t d : by_id) mux_digest = mux_digest * 269 + d;
    SSKEL_ASSERT(mux_digest == base_digest);

    const double total_proc_rounds = static_cast<double>(runs) *
                                     static_cast<double>(mux_n) *
                                     static_cast<double>(per_run_rounds);
    const double mux_rate = total_proc_rounds / (mux_s > 0.0 ? mux_s : 1e-9);
    const double base_rate =
        total_proc_rounds / (base_s > 0.0 ? base_s : 1e-9);
    const double mux_speedup = mux_rate / (base_rate > 0.0 ? base_rate : 1e-9);
    const bool mux_ok = mux_speedup >= 5.0;
    all_ok = all_ok && mux_ok;

    Table table("multiplexed runs (" + std::to_string(runs) + " runs x " +
                    std::to_string(per_run_rounds) + " rounds, " +
                    std::to_string(tiles) + " tiles)",
                {"config", "proc-rounds/s", "elapsed (ms)", "submit stalls",
                 "result stalls", "tile frags"});
    table.add_row({"event-queue sequential", cell(base_rate, 0),
                   cell(base_s * 1000.0, 1), "-", "-", "-"});
    table.add_row({"ring + tile plane", cell(mux_rate, 0),
                   cell(mux_s * 1000.0, 1), cell(plane.submit_stalls()),
                   cell(plane.result_stalls()),
                   cell(plane.frags_processed())});
    table.print(std::cout);
    std::cout << "multiplexed speedup: " << mux_speedup
              << "x (gate >= 5x: " << (mux_ok ? "PASS" : "FAIL") << ")\n\n";

    json.add("multiplexed")
        .set("tiles", static_cast<std::int64_t>(tiles))
        .set("runs", static_cast<std::int64_t>(runs))
        .set("rounds_per_run", static_cast<std::int64_t>(per_run_rounds))
        .set("process_rounds_per_sec", mux_rate)
        .set("baseline_process_rounds_per_sec", base_rate)
        .set("speedup_vs_event_queue", mux_speedup)
        .set("credit_stall_submit", plane.submit_stalls())
        .set("credit_stall_result", plane.result_stalls())
        .set("tile_frags", plane.frags_processed())
        .set("speedup_gate_pass", static_cast<std::int64_t>(mux_ok));
  }

  const char* path_env = std::getenv("SSKEL_BENCH_JSON");
  const std::string path =
      path_env != nullptr ? path_env : "BENCH_network.json";
  if (json.write_file(path)) {
    std::cout << "wrote " << path << '\n';
  } else {
    std::cerr << "warning: could not write " << path << '\n';
  }
  std::cout << (all_ok ? "RESULT: all message-plane gates held.\n"
                       : "RESULT: GATE FAILURES (see above).\n");
  return all_ok ? 0 : 1;
}
