// E2 — Theorem 1 empirically: across random Psrcs(k) adversaries, the
// stable skeleton never has more than k root components and
// Algorithm 1 never decides more than k values.
//
// Sweep: n x k x j (engineered root components), 100 seeded trials per
// row. Columns report the distribution of root components and distinct
// decisions; the "viol" columns must stay 0.
// Besides the table, the binary writes BENCH_theorem1.json: one
// record per sweep row, including the Psrcs(k) decision cost on the
// row's stable skeleton (branch-and-bound subsets visited vs the
// C(n, k+1) brute-force baseline). SSKEL_SMOKE=1 cuts the trial count
// for CI; SSKEL_BENCH_JSON overrides the output path.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "adversary/partition.hpp"
#include "adversary/random_psrcs.hpp"
#include "adversary/rotating.hpp"
#include "graph/reach.hpp"
#include "graph/scc.hpp"
#include "kset/runner.hpp"
#include "mc/montecarlo.hpp"
#include "predicates/psrcs.hpp"
#include "skeleton/intern.hpp"
#include "skeleton/tracker.hpp"
#include "util/bench_json.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace sskel;

/// Sorted-by-first-member copy of a component list, for the
/// order-insensitive final equality check between the incremental
/// maintainer and the Tarjan baseline.
std::vector<ProcSet> sorted_sets(std::vector<ProcSet> sets) {
  std::sort(sets.begin(), sets.end(),
            [](const ProcSet& a, const ProcSet& b) {
              return a.first() < b.first();
            });
  return sets;
}

struct IncSccRow {
  std::string adversary;
  ProcId n = 0;
  Round rounds = 0;
  std::int64_t bumps = 0;
  std::int64_t tarjan_ns = 0;
  std::int64_t incremental_ns = 0;
  double speedup = 0.0;
  bool decompositions_match = false;
};

/// One shrink-heavy run, measured twice over the *same* materialized
/// graph sequence. The per-round graphs are generated up front so the
/// timed region is exactly what the two strategies differ on:
/// intersection plus SCC/root analytics. (Generating noisy partition
/// graphs costs millions of RNG draws per run — timed, it swamps the
/// analytics on both sides and the ratio collapses toward 1.)
///   baseline    — per-bump Tarjan + condensation root scan, i.e. what
///                 the tracker recomputed before the maintainer existed;
///   incremental — SkeletonTracker's delta-driven maintainer, queried
///                 every round like a monitor would.
IncSccRow run_inc_scc_pair(const std::string& adversary, GraphSource& source,
                           Round rounds) {
  using Clock = std::chrono::steady_clock;
  IncSccRow row;
  row.adversary = adversary;
  row.n = source.n();
  row.rounds = rounds;
  const ProcId n = source.n();

  std::vector<Digraph> seq;
  seq.reserve(static_cast<std::size_t>(rounds));
  for (Round r = 1; r <= rounds; ++r) {
    Digraph g(n);
    source.graph_into(r, g);
    g.add_self_loops();
    seq.push_back(std::move(g));
  }

  // Baseline: rerun Tarjan on every skeleton change.
  SccDecomposition base_scc;
  std::vector<ProcSet> base_roots;
  Digraph base_skel = Digraph::complete(n);
  const auto base_start = Clock::now();
  for (const Digraph& g : seq) {
    if (base_skel.intersect_with(g)) {
      ++row.bumps;
      base_scc = strongly_connected_components(base_skel);
      base_roots.clear();
      for (int idx : root_component_indices(base_skel, base_scc)) {
        base_roots.push_back(
            base_scc.components[static_cast<std::size_t>(idx)]);
      }
    }
  }
  row.tarjan_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      Clock::now() - base_start)
                      .count();

  // Incremental: identical round sequence through the tracker.
  SkeletonTracker tracker(n);
  (void)tracker.current_scc();  // seed before the timed loop's rounds
  const auto inc_start = Clock::now();
  Round round = 0;
  for (const Digraph& g : seq) {
    tracker.observe(++round, g);
    (void)tracker.current_scc();
    (void)tracker.current_root_components();
  }
  row.incremental_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           Clock::now() - inc_start)
                           .count();

  row.speedup = row.incremental_ns > 0
                    ? static_cast<double>(row.tarjan_ns) /
                          static_cast<double>(row.incremental_ns)
                    : 0.0;
  row.decompositions_match =
      base_skel == tracker.skeleton() &&
      sorted_sets(base_scc.components) ==
          sorted_sets(tracker.current_scc().components) &&
      sorted_sets(base_roots) ==
          sorted_sets(tracker.current_root_components());
  return row;
}

struct InternRow {
  std::string adversary;
  ProcId n = 0;
  Round rounds = 0;
  std::int64_t private_ns = 0;
  std::int64_t shared_ns = 0;
  double speedup = 0.0;
  bool match = true;
  InternStats stats;
};

/// Shared-vs-private skeleton analytics over the same materialized
/// skeleton sequence. Every round, all n processes need their Line-25
/// keep set and Line-28 strong-connectivity verdict on their (common)
/// skeleton approximation:
///   private — each process re-derives both from scratch (a backward
///             BFS plus a Tarjan pass on the pruned graph), n times;
///   shared  — each process keeps a captured structure and resolves
///             changes through one StructureInternTable, so an
///             unchanged round costs one structure compare per
///             process and a changed round pays the analytics once
///             for all n.
/// Both loops record their answers; `match` demands bit-equality.
InternRow run_intern_pair(const std::string& adversary,
                          const std::vector<Digraph>& skeletons) {
  using Clock = std::chrono::steady_clock;
  InternRow row;
  row.adversary = adversary;
  row.n = skeletons.front().n();
  row.rounds = static_cast<Round>(skeletons.size());
  const ProcId n = row.n;

  std::vector<ProcSet> private_keep;
  std::vector<char> private_sc;
  const auto private_start = Clock::now();
  for (const Digraph& skel : skeletons) {
    private_keep.clear();
    private_sc.clear();
    for (ProcId p : skel.nodes()) {
      ProcSet keep = reaching(skel, p);
      private_sc.push_back(
          is_strongly_connected(skel.induced(keep)) ? 1 : 0);
      private_keep.push_back(std::move(keep));
    }
  }
  row.private_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       Clock::now() - private_start)
                       .count();

  StructureInternTable table;
  struct Cached {
    Digraph captured;
    ProcSet keep;
    bool sc = false;
    bool valid = false;
  };
  std::vector<Cached> cache(static_cast<std::size_t>(n));
  std::vector<ProcSet> shared_keep;
  std::vector<char> shared_sc;
  const auto shared_start = Clock::now();
  for (const Digraph& skel : skeletons) {
    shared_keep.clear();
    shared_sc.clear();
    for (ProcId p : skel.nodes()) {
      Cached& c = cache[static_cast<std::size_t>(p)];
      if (!c.valid || !(c.captured == skel)) {
        c.captured = skel;
        InternedStructure* entry = table.intern(skel);
        c.keep = entry->keep_set(p);
        c.sc = entry->pruned_strongly_connected(p);
        c.valid = true;
      }
      shared_keep.push_back(c.keep);
      shared_sc.push_back(c.sc ? 1 : 0);
    }
  }
  row.shared_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      Clock::now() - shared_start)
                      .count();

  // The recorded vectors hold the *last* round's answers on both
  // sides; earlier rounds were checked by construction of the same
  // loop (kept cheap — the full per-round history at n = 512 would
  // dwarf the timed work).
  row.match = private_keep == shared_keep && private_sc == shared_sc;
  row.speedup = row.shared_ns > 0 ? static_cast<double>(row.private_ns) /
                                        static_cast<double>(row.shared_ns)
                                  : 0.0;
  row.stats = table.stats();
  return row;
}

/// Skeleton sequence of a run: G∩1 ... G∩rounds (self-loop closed).
std::vector<Digraph> skeleton_sequence(GraphSource& source, Round rounds) {
  const ProcId n = source.n();
  std::vector<Digraph> seq;
  Digraph skel = Digraph::complete(n);
  for (Round r = 1; r <= rounds; ++r) {
    Digraph g(n);
    source.graph_into(r, g);
    g.add_self_loops();
    skel.intersect_with(g);
    seq.push_back(skel);
  }
  return seq;
}

}  // namespace

int main() {
  using namespace sskel;
  std::cout << "==============================================\n"
            << " E2: Theorem 1 — at most k root components /\n"
            << "     at most k decision values under Psrcs(k)\n"
            << "==============================================\n\n";

  struct Row {
    ProcId n;
    int k;
    int j;
  };
  const std::vector<Row> rows = {
      {6, 1, 1},  {6, 2, 2},  {8, 2, 2},  {8, 3, 3},  {12, 3, 2},
      {12, 4, 4}, {16, 2, 2}, {16, 5, 5}, {24, 3, 3}, {32, 4, 4},
      {48, 6, 6}, {64, 4, 4},
  };
  const bool smoke = std::getenv("SSKEL_SMOKE") != nullptr;
  const int trials = smoke ? 10 : 100;

  BenchJson json("theorem1");
  Table table("root components and decision values vs k (100 trials/row)",
              {"n", "k", "j", "roots mean", "roots max", "values mean",
               "values max", "values hist", "agree viol", "root>k viol"});
  bool all_ok = true;
  for (const Row& row : rows) {
    RandomPsrcsParams params;
    params.n = row.n;
    params.k = row.k;
    params.root_components = row.j;
    params.stabilization_round = 3;
    params.noise_probability = 0.3;
    KSetRunConfig config;
    config.k = row.k;
    const McSummary s =
        run_random_psrcs_trials(0xE2, trials, params, config);

    const std::int64_t root_viol =
        s.root_histogram.max_value() > row.k ? 1 : 0;
    all_ok = all_ok && s.agreement_violations == 0 && root_viol == 0 &&
             s.undecided_runs == 0;
    table.add_row({cell(row.n), cell(row.k), cell(row.j),
                   cell(s.root_components.mean(), 2),
                   cell(s.root_components.max(), 0),
                   cell(s.distinct_values.mean(), 2),
                   cell(s.distinct_values.max(), 0),
                   s.distinct_histogram.to_string(),
                   cell(s.agreement_violations), cell(root_viol)});

    // Psrcs(k) decision cost on this row's stable skeleton: the
    // branch-and-bound checker must agree with the brute-force
    // enumeration while visiting fewer subsets.
    // (the C(n, k+1) baseline is only affordable on the smaller rows;
    // -1 marks rows where it was skipped).
    RandomPsrcsSource source(0xE2, params);
    const Digraph& skel = source.stable_skeleton();
    const PsrcsCheck pruned = check_psrcs_exact(skel, row.k);
    std::int64_t brute_subsets = -1;
    if (row.n <= 32) {
      const PsrcsCheck brute = check_psrcs_bruteforce(skel, row.k);
      brute_subsets = brute.subsets_checked;
      all_ok = all_ok && pruned.holds == brute.holds;
    }
    json.add("theorem1_row")
        .set("n", row.n)
        .set("k", row.k)
        .set("j", row.j)
        .set("trials", trials)
        .set("roots_mean", s.root_components.mean())
        .set("roots_max", s.root_components.max())
        .set("values_mean", s.distinct_values.mean())
        .set("values_max", s.distinct_values.max())
        .set("agreement_violations", s.agreement_violations)
        .set("root_bound_violations", root_viol)
        .set("psrcs_holds", static_cast<std::int64_t>(pruned.holds))
        .set("subsets_visited_pruned", pruned.subsets_checked)
        .set("subsets_visited_bruteforce", brute_subsets);
  }
  table.print(std::cout);

  // --- incremental SCC maintenance vs per-bump Tarjan rerun ---------------
  //
  // Shrink-heavy adversaries at large n, where rerunning Tarjan on
  // every skeleton change dominates a monitoring loop. The partition
  // source with heavy cross-block noise decays over ~hundreds of
  // rounds (a cross edge survives round r with probability p, so the
  // skeleton keeps shrinking until p^r * #cross-pairs < 1); the
  // rotating star collapses in a handful of bumps and exercises the
  // mostly-stable path. Both loops replay the identical deterministic
  // graph sequence and the final decompositions must agree.
  Table inc_table("incremental SCC vs per-bump Tarjan (shrink-heavy runs)",
                  {"adversary", "n", "rounds", "bumps", "tarjan ms",
                   "incremental ms", "speedup", "match"});
  const std::vector<ProcId> inc_sizes = {64, 128, 256, 512};
  for (const ProcId n : inc_sizes) {
    for (const bool partition : {false, true}) {
      IncSccRow r;
      if (partition) {
        PartitionParams params;
        params.blocks = even_blocks(n, 4);
        params.cross_noise_probability = 0.95;
        const Round rounds = smoke ? 80 : 300;
        params.stabilization_round = rounds;  // noise through the whole run
        PartitionSource source(0x1C5, params);
        r = run_inc_scc_pair("partition", source, rounds);
      } else {
        const auto source = make_rotating_star_source(n);
        r = run_inc_scc_pair("rotating", *source,
                             smoke ? 32 : static_cast<Round>(n));
      }
      all_ok = all_ok && r.decompositions_match;
      // The headline gate: on the shrink-heavy partition decay at
      // large n the incremental maintainer must beat the per-bump
      // Tarjan rerun by >= 5x. Rotating rows are reported, not gated
      // (they collapse after a few bumps, so both loops are cheap),
      // and smoke runs are too short for stable timing.
      const bool gated = partition && n >= 256 && !smoke;
      if (gated && r.speedup < 5.0) {
        std::cerr << "inc-scc gate FAILED: " << r.adversary << " n=" << n
                  << " speedup " << r.speedup << " < 5.0\n";
        all_ok = false;
      }
      // Sampled Psrcs screen on the large final skeleton (exact search
      // is unaffordable at these n): record the verdict with its
      // certification status and confidence instead of a bare bool.
      Rng screen_rng(mix_seed(0x5C4EE4, static_cast<std::uint64_t>(n)));
      PartitionParams screen_params;
      screen_params.blocks = even_blocks(n, 4);
      const PartitionSource screen_source(0x1C5, screen_params);
      const int screen_k = 4;
      // Partition skeleton: Psrcs(4) holds (4 blocks), so the sampled
      // pass must come back uncertified with an honest confidence.
      // Rotating skeleton: bare self-loops, every sample is a
      // violation, so the verdict is a certified refutation.
      const PsrcsCheck sampled = check_psrcs_sampled(
          partition ? screen_source.stable_skeleton()
                    : Digraph::self_loops_only(n),
          screen_k, smoke ? 50 : 500, screen_rng);

      inc_table.add_row(
          {r.adversary, cell(r.n), cell(static_cast<std::int64_t>(r.rounds)),
           cell(r.bumps), cell(static_cast<double>(r.tarjan_ns) / 1e6, 2),
           cell(static_cast<double>(r.incremental_ns) / 1e6, 2),
           cell(r.speedup, 1), r.decompositions_match ? "yes" : "NO"});
      json.add("inc_scc_row")
          .set("adversary", r.adversary)
          .set("n", r.n)
          .set("rounds", static_cast<std::int64_t>(r.rounds))
          .set("bumps", r.bumps)
          .set("tarjan_ns", r.tarjan_ns)
          .set("incremental_ns", r.incremental_ns)
          .set("speedup", r.speedup)
          .set("decompositions_match",
               static_cast<std::int64_t>(r.decompositions_match))
          .set("gated", static_cast<std::int64_t>(gated))
          .set("psrcs_sampled_k", screen_k)
          .set("psrcs_sampled_holds", static_cast<std::int64_t>(sampled.holds))
          .set("psrcs_sampled_certified",
               static_cast<std::int64_t>(sampled.certified))
          .set("psrcs_sampled_confidence", sampled.confidence);
    }
  }
  inc_table.print(std::cout);

  // --- shared vs private skeleton analytics (structure interning) ---------
  //
  // The post-stabilization all-converged case: all n processes hold
  // the same stable skeleton, so the intern table collapses n
  // identical Line-25/Line-28 derivations per round into one. The
  // stable adversary (structure never changes after stabilization) is
  // the headline ≥ 5x gate at n >= 256; the rotating star changes
  // structure every round and is reported ungated (it exercises the
  // miss/rehash path, where sharing still wins n-fold per structure).
  Table intern_table(
      "shared vs private skeleton analytics (structure interning)",
      {"adversary", "n", "rounds", "private ms", "shared ms", "speedup",
       "hits", "misses", "match"});
  const std::vector<ProcId> intern_sizes = {64, 256, 512};
  const Round intern_rounds = smoke ? 6 : 16;
  for (const ProcId n : intern_sizes) {
    for (const bool rotating : {false, true}) {
      std::vector<Digraph> seq;
      std::string adversary;
      if (rotating) {
        adversary = "rotating";
        const auto source = make_rotating_star_source(n);
        seq = skeleton_sequence(*source, intern_rounds);
      } else {
        adversary = "stable";
        RandomPsrcsParams params;
        params.n = n;
        params.k = 2;
        params.root_components = 2;
        RandomPsrcsSource source(0x1A7E, params);
        // Post-stabilization rounds: the skeleton is the stable
        // skeleton from round 1 on and never changes.
        seq.assign(static_cast<std::size_t>(intern_rounds),
                   source.stable_skeleton());
      }
      const InternRow r = run_intern_pair(adversary, seq);
      all_ok = all_ok && r.match;
      const bool gated = !rotating && n >= 256 && !smoke;
      if (gated && r.speedup < 5.0) {
        std::cerr << "intern gate FAILED: " << r.adversary << " n=" << n
                  << " speedup " << r.speedup << " < 5.0\n";
        all_ok = false;
      }
      if (!r.match) {
        std::cerr << "intern MISMATCH: " << r.adversary << " n=" << n
                  << " shared analytics differ from private baseline\n";
      }
      intern_table.add_row(
          {r.adversary, cell(r.n), cell(static_cast<std::int64_t>(r.rounds)),
           cell(static_cast<double>(r.private_ns) / 1e6, 2),
           cell(static_cast<double>(r.shared_ns) / 1e6, 2),
           cell(r.speedup, 1), cell(r.stats.hits), cell(r.stats.misses),
           r.match ? "yes" : "NO"});
      json.add("intern_row")
          .set("adversary", r.adversary)
          .set("n", r.n)
          .set("rounds", static_cast<std::int64_t>(r.rounds))
          .set("private_ns", r.private_ns)
          .set("shared_ns", r.shared_ns)
          .set("speedup", r.speedup)
          .set("gated", static_cast<std::int64_t>(gated))
          .set("match", static_cast<std::int64_t>(r.match))
          .set("intern_hits", r.stats.hits)
          .set("intern_misses", r.stats.misses)
          .set("intern_fingerprint_collisions", r.stats.fingerprint_collisions)
          .set("intern_entries", r.stats.entries)
          .set("intern_scc_computes", r.stats.scc_computes)
          .set("intern_keep_computes", r.stats.keep_computes);
    }
  }
  intern_table.print(std::cout);

  // End-to-end tripwire: a full Algorithm 1 run (lemma monitor
  // attached) with the intern table wired in must produce the same
  // decisions, decision rounds, and lemma verdicts as the uninterned
  // run — the table is a cache, never a semantics change.
  {
    RandomPsrcsParams params;
    params.n = 64;
    params.k = 3;
    params.root_components = 3;
    params.stabilization_round = 3;
    KSetRunConfig run_config;
    run_config.k = 3;
    run_config.attach_lemma_monitor = true;
    run_config.tail_rounds = 4;
    RandomPsrcsSource private_source(0xE2E2, params);
    const KSetRunReport private_report =
        run_kset(private_source, run_config);
    InternDomain domain;
    run_config.intern = &domain;
    RandomPsrcsSource interned_source(0xE2E2, params);
    const KSetRunReport interned_report =
        run_kset(interned_source, run_config);
    bool equal = private_report.outcomes.size() ==
                     interned_report.outcomes.size() &&
                 private_report.paths == interned_report.paths &&
                 private_report.lemma_violations ==
                     interned_report.lemma_violations &&
                 private_report.final_skeleton ==
                     interned_report.final_skeleton;
    for (std::size_t p = 0; equal && p < private_report.outcomes.size();
         ++p) {
      equal = private_report.outcomes[p].decided ==
                  interned_report.outcomes[p].decided &&
              private_report.outcomes[p].decision ==
                  interned_report.outcomes[p].decision &&
              private_report.outcomes[p].decision_round ==
                  interned_report.outcomes[p].decision_round;
    }
    if (!equal) {
      std::cerr << "intern run-equivalence FAILED: interned run diverged "
                   "from the private baseline\n";
      all_ok = false;
    }
    std::cout << "\nintern run-equivalence (n=64, k=3, lemma monitor): "
              << (equal ? "decisions and lemma verdicts bit-equal\n"
                        : "MISMATCH\n");
    const InternStats run_stats = domain.merged_stats();
    json.add("intern_run_equivalence")
        .set("n", static_cast<std::int64_t>(params.n))
        .set("k", params.k)
        .set("match", static_cast<std::int64_t>(equal))
        .set("intern_hits", run_stats.hits)
        .set("intern_misses", run_stats.misses)
        .set("intern_fingerprint_collisions",
             run_stats.fingerprint_collisions)
        .set("intern_entries", run_stats.entries);
  }

  const char* path_env = std::getenv("SSKEL_BENCH_JSON");
  const std::string path =
      path_env != nullptr ? path_env : "BENCH_theorem1.json";
  if (json.write_file(path)) {
    std::cout << "wrote " << path << '\n';
  } else {
    std::cerr << "warning: could not write " << path << '\n';
  }
  std::cout << (all_ok ? "RESULT: Theorem 1 bound held in every trial.\n"
                       : "RESULT: VIOLATIONS FOUND (see table).\n");
  return all_ok ? 0 : 1;
}
