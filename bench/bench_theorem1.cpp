// E2 — Theorem 1 empirically: across random Psrcs(k) adversaries, the
// stable skeleton never has more than k root components and
// Algorithm 1 never decides more than k values.
//
// Sweep: n x k x j (engineered root components), 100 seeded trials per
// row. Columns report the distribution of root components and distinct
// decisions; the "viol" columns must stay 0.
#include <iostream>

#include "mc/montecarlo.hpp"
#include "util/table.hpp"

int main() {
  using namespace sskel;
  std::cout << "==============================================\n"
            << " E2: Theorem 1 — at most k root components /\n"
            << "     at most k decision values under Psrcs(k)\n"
            << "==============================================\n\n";

  struct Row {
    ProcId n;
    int k;
    int j;
  };
  const std::vector<Row> rows = {
      {6, 1, 1},  {6, 2, 2},  {8, 2, 2},  {8, 3, 3},  {12, 3, 2},
      {12, 4, 4}, {16, 2, 2}, {16, 5, 5}, {24, 3, 3}, {32, 4, 4},
      {48, 6, 6}, {64, 4, 4},
  };
  const int trials = 100;

  Table table("root components and decision values vs k (100 trials/row)",
              {"n", "k", "j", "roots mean", "roots max", "values mean",
               "values max", "values hist", "agree viol", "root>k viol"});
  bool all_ok = true;
  for (const Row& row : rows) {
    RandomPsrcsParams params;
    params.n = row.n;
    params.k = row.k;
    params.root_components = row.j;
    params.stabilization_round = 3;
    params.noise_probability = 0.3;
    KSetRunConfig config;
    config.k = row.k;
    const McSummary s =
        run_random_psrcs_trials(0xE2, trials, params, config);

    const std::int64_t root_viol =
        s.root_histogram.max_value() > row.k ? 1 : 0;
    all_ok = all_ok && s.agreement_violations == 0 && root_viol == 0 &&
             s.undecided_runs == 0;
    table.add_row({cell(row.n), cell(row.k), cell(row.j),
                   cell(s.root_components.mean(), 2),
                   cell(s.root_components.max(), 0),
                   cell(s.distinct_values.mean(), 2),
                   cell(s.distinct_values.max(), 0),
                   s.distinct_histogram.to_string(),
                   cell(s.agreement_violations), cell(root_viol)});
  }
  table.print(std::cout);
  std::cout << (all_ok ? "RESULT: Theorem 1 bound held in every trial.\n"
                       : "RESULT: VIOLATIONS FOUND (see table).\n");
  return all_ok ? 0 : 1;
}
