// E2 — Theorem 1 empirically: across random Psrcs(k) adversaries, the
// stable skeleton never has more than k root components and
// Algorithm 1 never decides more than k values.
//
// Sweep: n x k x j (engineered root components), 100 seeded trials per
// row. Columns report the distribution of root components and distinct
// decisions; the "viol" columns must stay 0.
// Besides the table, the binary writes BENCH_theorem1.json: one
// record per sweep row, including the Psrcs(k) decision cost on the
// row's stable skeleton (branch-and-bound subsets visited vs the
// C(n, k+1) brute-force baseline). SSKEL_SMOKE=1 cuts the trial count
// for CI; SSKEL_BENCH_JSON overrides the output path.
#include <cstdlib>
#include <iostream>

#include "adversary/random_psrcs.hpp"
#include "mc/montecarlo.hpp"
#include "predicates/psrcs.hpp"
#include "util/bench_json.hpp"
#include "util/table.hpp"

int main() {
  using namespace sskel;
  std::cout << "==============================================\n"
            << " E2: Theorem 1 — at most k root components /\n"
            << "     at most k decision values under Psrcs(k)\n"
            << "==============================================\n\n";

  struct Row {
    ProcId n;
    int k;
    int j;
  };
  const std::vector<Row> rows = {
      {6, 1, 1},  {6, 2, 2},  {8, 2, 2},  {8, 3, 3},  {12, 3, 2},
      {12, 4, 4}, {16, 2, 2}, {16, 5, 5}, {24, 3, 3}, {32, 4, 4},
      {48, 6, 6}, {64, 4, 4},
  };
  const bool smoke = std::getenv("SSKEL_SMOKE") != nullptr;
  const int trials = smoke ? 10 : 100;

  BenchJson json("theorem1");
  Table table("root components and decision values vs k (100 trials/row)",
              {"n", "k", "j", "roots mean", "roots max", "values mean",
               "values max", "values hist", "agree viol", "root>k viol"});
  bool all_ok = true;
  for (const Row& row : rows) {
    RandomPsrcsParams params;
    params.n = row.n;
    params.k = row.k;
    params.root_components = row.j;
    params.stabilization_round = 3;
    params.noise_probability = 0.3;
    KSetRunConfig config;
    config.k = row.k;
    const McSummary s =
        run_random_psrcs_trials(0xE2, trials, params, config);

    const std::int64_t root_viol =
        s.root_histogram.max_value() > row.k ? 1 : 0;
    all_ok = all_ok && s.agreement_violations == 0 && root_viol == 0 &&
             s.undecided_runs == 0;
    table.add_row({cell(row.n), cell(row.k), cell(row.j),
                   cell(s.root_components.mean(), 2),
                   cell(s.root_components.max(), 0),
                   cell(s.distinct_values.mean(), 2),
                   cell(s.distinct_values.max(), 0),
                   s.distinct_histogram.to_string(),
                   cell(s.agreement_violations), cell(root_viol)});

    // Psrcs(k) decision cost on this row's stable skeleton: the
    // branch-and-bound checker must agree with the brute-force
    // enumeration while visiting fewer subsets.
    // (the C(n, k+1) baseline is only affordable on the smaller rows;
    // -1 marks rows where it was skipped).
    RandomPsrcsSource source(0xE2, params);
    const Digraph& skel = source.stable_skeleton();
    const PsrcsCheck pruned = check_psrcs_exact(skel, row.k);
    std::int64_t brute_subsets = -1;
    if (row.n <= 32) {
      const PsrcsCheck brute = check_psrcs_bruteforce(skel, row.k);
      brute_subsets = brute.subsets_checked;
      all_ok = all_ok && pruned.holds == brute.holds;
    }
    json.add("theorem1_row")
        .set("n", row.n)
        .set("k", row.k)
        .set("j", row.j)
        .set("trials", trials)
        .set("roots_mean", s.root_components.mean())
        .set("roots_max", s.root_components.max())
        .set("values_mean", s.distinct_values.mean())
        .set("values_max", s.distinct_values.max())
        .set("agreement_violations", s.agreement_violations)
        .set("root_bound_violations", root_viol)
        .set("psrcs_holds", static_cast<std::int64_t>(pruned.holds))
        .set("subsets_visited_pruned", pruned.subsets_checked)
        .set("subsets_visited_bruteforce", brute_subsets);
  }
  table.print(std::cout);

  const char* path_env = std::getenv("SSKEL_BENCH_JSON");
  const std::string path =
      path_env != nullptr ? path_env : "BENCH_theorem1.json";
  if (json.write_file(path)) {
    std::cout << "wrote " << path << '\n';
  } else {
    std::cerr << "warning: could not write " << path << '\n';
  }
  std::cout << (all_ok ? "RESULT: Theorem 1 bound held in every trial.\n"
                       : "RESULT: VIOLATIONS FOUND (see table).\n");
  return all_ok ? 0 : 1;
}
