// E15 — Monte-Carlo trial scheduling: fork-join pool vs the
// persistent tile-plane service (DESIGN.md §13).
//
// The fleet workload is many small trial batches against a scenario
// whose structure space has *converged*: after the first sweep the
// intern domain already holds every skeleton structure the adversary
// can produce, so a trial is mostly round execution plus fixed costs.
// The two schedulers split exactly on those fixed costs:
//
//   * fork-join pool (run_scenario_trials) — per batch: spawn workers,
//     build a fresh InternDomain (all analytics recompute), and per
//     trial construct a RoundEngine plus n process objects.
//   * tile-plane service (McTilePlane) — persistent tiles, a domain
//     that survives from batch to batch (analytics converge once,
//     globally), and per-tile trial scratch that resets engine and
//     processes in place instead of reconstructing them.
//
// Both fold results trial-index-keyed from identical per-trial seeds,
// so the summaries are bit-identical (the McTilePlane tripwire tests
// pin the full struct; the bench asserts a cheap digest projection).
//
// Gates: the service sustains >= 3x the pool's batch throughput on the
// converged workload, and every digest matches. A tile-count sweep
// reports scaling plus the topology placement map and failed-pin count
// (this host may be single-core; the sweep is about correctness of
// oversubscription, the gate about fixed-cost elimination).
//
// SSKEL_SMOKE=1 shrinks the sweeps for CI; SSKEL_BENCH_JSON overrides
// the BENCH_mc.json path. Rate fields end in _per_sec so
// tools/bench_diff.py treats them as higher-is-better.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "adversary/partition.hpp"
#include "mc/mc_plane.hpp"
#include "mc/montecarlo.hpp"
#include "util/bench_json.hpp"
#include "util/table.hpp"

namespace {

using namespace sskel;
using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Trial-derived projection of a summary: any scheduler divergence in
/// any trial perturbs at least one of these. Service-level fields
/// (intern stats, scheduler provenance, memory marks) are deliberately
/// excluded — they legitimately differ between schedulers.
[[nodiscard]] std::string summary_digest(const McSummary& s) {
  std::string d;
  d += std::to_string(s.runs) + "|" + std::to_string(s.undecided_runs);
  d += "|" + std::to_string(s.agreement_violations);
  d += "|" + std::to_string(s.bound_violations);
  d += "|" + s.distinct_histogram.to_string();
  d += "|" + s.root_histogram.to_string();
  d += "|" + std::to_string(s.last_decision_round.sum());
  d += "|" + std::to_string(s.stabilization_round.sum());
  d += "|" + std::to_string(s.total_messages.sum());
  return d;
}

}  // namespace

int main() {
  const bool smoke = std::getenv("SSKEL_SMOKE") != nullptr;
  bool all_ok = true;
  BenchJson json("mc");

  // The converged workload: a 2-block partition of n = 4 that is
  // stable from round 1, so the structure space is tiny and converges
  // within the first batch. Small n keeps per-trial execution short,
  // which is exactly the fleet regime where the schedulers' fixed
  // costs (engine/process construction, fresh-domain analytics)
  // dominate the batch — the cost class the tile plane eliminates.
  const ProcId n = 4;
  PartitionParams params;
  params.blocks = even_blocks(n, 2);
  params.cross_noise_probability = 0.0;
  params.stabilization_round = 1;
  const PartitionScenario scenario(params);

  KSetRunConfig config;
  config.k = 2;

  std::cout << "========================================================\n"
            << " E15: Monte-Carlo scheduling — pool vs tile-plane\n"
            << " (partition n=4, m=2, converged structure space)\n"
            << "========================================================\n\n";

  {
    const int batches = smoke ? 12 : 96;
    // One trial per request: the fleet's smallest batch, where the
    // schedulers' per-batch and per-trial fixed costs are least
    // amortized and the split between them is sharpest.
    const int trials_per_batch = 1;
    const int warm_batches = smoke ? 4 : 16;
    const int reps = smoke ? 2 : 3;
    const std::uint64_t master = 0xE15BA5E;

    // Fork-join pool baseline: one run_scenario_trials call per batch,
    // the pre-§13 shape (fresh domain + fresh engines every time).
    // Both schedulers get an untimed warm-up (allocator, code, worker
    // threads, intern-domain convergence) and then `reps` identically
    // seeded timed repetitions; the minimum elapsed is the score. The
    // seeds repeat across reps on purpose — batch b is always
    // master + b — so every rep must reproduce the same digests, and
    // min-of-reps measures steady-state batch cost, not scheduler
    // noise on a busy host.
    std::vector<std::string> pool_digests;
    pool_digests.reserve(static_cast<std::size_t>(batches));
    auto pool_batch = [&](int b) {
      return summary_digest(run_scenario_trials(
          scenario, master + static_cast<std::uint64_t>(b), trials_per_batch,
          config, /*threads=*/0));
    };
    for (int b = 0; b < warm_batches; ++b) (void)pool_batch(b % batches);
    double pool_s = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      const Clock::time_point start = Clock::now();
      for (int b = 0; b < batches; ++b) {
        std::string digest = pool_batch(b);
        if (rep == 0) {
          pool_digests.push_back(std::move(digest));
        } else {
          SSKEL_ASSERT(digest == pool_digests[static_cast<std::size_t>(b)]);
        }
      }
      const double elapsed = seconds_since(start);
      pool_s = rep == 0 ? elapsed : std::min(pool_s, elapsed);
    }

    // Tile-plane service: one plane reused across every batch — the
    // per-trial state (engines, trackers, intern shards) persists, the
    // pool rebuilds it per trial. Warm-up also converges the intern
    // domain, so the timed reps see the service's steady state; the
    // convergence cost itself is reported below (batch-1 misses).
    McTilePlane plane(scenario, McPlaneOptions{});
    McSummary last_plane_summary;
    std::int64_t first_batch_misses = 0;
    auto plane_batch = [&](int b) {
      last_plane_summary = plane.run(master + static_cast<std::uint64_t>(b),
                                     trials_per_batch, config);
      return summary_digest(last_plane_summary);
    };
    for (int b = 0; b < warm_batches; ++b) {
      const std::string digest = plane_batch(b % batches);
      if (b == 0) first_batch_misses = last_plane_summary.intern.misses;
      SSKEL_ASSERT(digest == pool_digests[static_cast<std::size_t>(b % batches)]);
    }
    double plane_s = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      const Clock::time_point start = Clock::now();
      for (int b = 0; b < batches; ++b) {
        SSKEL_ASSERT(plane_batch(b) ==
                     pool_digests[static_cast<std::size_t>(b)]);
      }
      const double elapsed = seconds_since(start);
      plane_s = rep == 0 ? elapsed : std::min(plane_s, elapsed);
    }

    const double total_trials =
        static_cast<double>(batches) * static_cast<double>(trials_per_batch);
    const double pool_rate = total_trials / (pool_s > 0.0 ? pool_s : 1e-9);
    const double plane_rate = total_trials / (plane_s > 0.0 ? plane_s : 1e-9);
    const double speedup = plane_rate / (pool_rate > 0.0 ? pool_rate : 1e-9);
    const bool speedup_ok = speedup >= 3.0;
    all_ok = all_ok && speedup_ok;

    Table table("batched service throughput (" + std::to_string(batches) +
                    " batches x " + std::to_string(trials_per_batch) +
                    " trials, best of " + std::to_string(reps) + " reps)",
                {"scheduler", "trials/s", "elapsed (ms)", "intern misses",
                 "intern hits"});
    table.add_row({"fork-join pool", cell(pool_rate, 0),
                   cell(pool_s * 1000.0, 1), "per batch", "-"});
    table.add_row({"tile-plane service", cell(plane_rate, 0),
                   cell(plane_s * 1000.0, 1),
                   cell(last_plane_summary.intern.misses),
                   cell(last_plane_summary.intern.hits)});
    table.print(std::cout);
    std::cout << "service speedup: " << speedup
              << "x (gate >= 3x: " << (speedup_ok ? "PASS" : "FAIL")
              << "); digests bit-identical across every batch of every rep\n"
              << "domain convergence: " << first_batch_misses
              << " misses in batch 1 vs "
              << last_plane_summary.intern.misses << " total after "
              << warm_batches + reps * batches << " batches\n\n";

    json.add("service_speedup")
        .set("batches", batches)
        .set("trials_per_batch", trials_per_batch)
        .set("timing_reps", reps)
        .set("pool_trials_per_sec", pool_rate)
        .set("plane_trials_per_sec", plane_rate)
        .set("speedup_vs_pool", speedup)
        .set("first_batch_intern_misses", first_batch_misses)
        .set("final_intern_misses", last_plane_summary.intern.misses)
        .set("final_intern_hits", last_plane_summary.intern.hits)
        .set("trials_executed", plane.trials_executed())
        .set("speedup_gate_pass", static_cast<std::int64_t>(speedup_ok));
  }

  std::cout << "========================================================\n"
            << " E15b: tile-count sweep (placement + pin accounting)\n"
            << "========================================================\n\n";

  {
    const int trials = smoke ? 24 : 96;
    const std::uint64_t master = 0xE15B;
    std::string reference_digest;

    Table table("tile sweep (" + std::to_string(trials) + " trials per row)",
                {"tiles", "trials/s", "placement", "failed pins",
                 "submit stalls", "result stalls"});
    for (unsigned tiles : {1u, 2u, 4u}) {
      McPlaneOptions options;
      options.tiles = tiles;
      options.pin_tiles = true;  // exercises topology-derived placement
      McTilePlane plane(scenario, options);
      const Clock::time_point start = Clock::now();
      const McSummary summary = plane.run(master, trials, config);
      const double elapsed = seconds_since(start);
      const double rate =
          static_cast<double>(trials) / (elapsed > 0.0 ? elapsed : 1e-9);

      const std::string digest = summary_digest(summary);
      if (reference_digest.empty()) reference_digest = digest;
      SSKEL_ASSERT(digest == reference_digest);

      table.add_row({cell(static_cast<std::int64_t>(tiles)), cell(rate, 0),
                     summary.tile_placement.empty() ? "-"
                                                    : summary.tile_placement,
                     cell(summary.failed_pins), cell(plane.submit_stalls()),
                     cell(plane.result_stalls())});
      json.add("tile_sweep")
          .set("tiles", static_cast<std::int64_t>(tiles))
          .set("trials", trials)
          .set("trials_per_sec", rate)
          .set("tile_placement", summary.tile_placement)
          .set("failed_pins", summary.failed_pins)
          .set("credit_stall_submit", plane.submit_stalls())
          .set("credit_stall_result", plane.result_stalls());
    }
    table.print(std::cout);
    std::cout << "summaries bit-identical across tile counts "
              << "(trial-index-keyed fold)\n\n";
  }

  const char* path_env = std::getenv("SSKEL_BENCH_JSON");
  const std::string path = path_env != nullptr ? path_env : "BENCH_mc.json";
  if (json.write_file(path)) {
    std::cout << "wrote " << path << '\n';
  } else {
    std::cerr << "warning: could not write " << path << '\n';
  }
  std::cout << (all_ok ? "RESULT: all Monte-Carlo scheduling gates held.\n"
                       : "RESULT: GATE FAILURES (see above).\n");
  return all_ok ? 0 : 1;
}
