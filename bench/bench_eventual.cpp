// E6 — why Psrcs(k) must be perpetual: the ♦Psrcs counterexample.
//
// For each n, play the run whose prefix isolates every process
// (self-loops only) before a star topology satisfying even Psrcs(1)
// appears. Per the paper's indistinguishability argument, the prefix
// forces every process to decide its own value: n distinct decisions,
// regardless of how good the suffix is. The zero-isolation control row
// shows the same suffix *perpetually* yields consensus.
#include <iostream>

#include "adversary/eventual.hpp"
#include "kset/runner.hpp"
#include "util/table.hpp"

int main() {
  using namespace sskel;
  std::cout << "=====================================================\n"
            << " E6: eventual-only synchrony is useless — ♦Psrcs run\n"
            << "=====================================================\n\n";

  Table table("distinct decisions vs isolation-prefix length",
              {"n", "isolation rounds", "distinct values", "expected",
               "ok", "last decision round"});
  bool all_ok = true;
  struct Row {
    ProcId n;
    Round isolation;
    int expected;
  };
  std::vector<Row> rows;
  for (ProcId n : {4, 6, 8, 12, 16}) {
    rows.push_back({n, 0, 1});            // control: perpetual star
    rows.push_back({n, 1, static_cast<int>(n)});   // even 1 round kills PT
    rows.push_back({n, 2 * n, static_cast<int>(n)});  // the paper's prefix
  }
  for (const Row& row : rows) {
    auto source = make_eventual_source(row.n, row.isolation);
    KSetRunConfig config;
    config.k = 1;
    config.max_rounds = 8 * row.n + 4 * row.isolation + 32;
    const KSetRunReport report = run_kset(*source, config);
    const bool ok =
        report.all_decided && report.distinct_values == row.expected;
    all_ok = all_ok && ok;
    table.add_row({cell(row.n),
                   cell(static_cast<std::int64_t>(row.isolation)),
                   cell(report.distinct_values), cell(row.expected),
                   ok ? "yes" : "NO",
                   cell(static_cast<std::int64_t>(
                       report.last_decision_round))});
  }
  table.print(std::cout);
  std::cout
      << (all_ok
              ? "RESULT: any isolated prefix yields n values; the perpetual\n"
                "star yields consensus — perpetual synchrony is essential.\n"
              : "RESULT: MISMATCH (see table).\n");
  return all_ok ? 0 : 1;
}
