// E12 — perpetual vs per-round synchrony: why Psrcs(k) quantifies over
// the *stable* skeleton.
//
// A rotating star gives every round the strongest per-round guarantees
// in the HO taxonomy (nonempty kernel, nonsplit) — yet nothing
// persists: the stable skeleton is bare self-loops, every process's
// approximation collapses to the singleton {p}, and all decide as
// loners. Whatever agreement emerges is a round-1 accident of whose
// value leaked before PT collapsed; starting the rotation at a center
// that does not hold the global minimum yields a *guaranteed*
// consensus violation (2 values) despite maximal per-round synchrony.
// The same star held fixed forever yields consensus.
//
// Together with E6 (the ♦Psrcs counterexample) this brackets the
// paper's design space: neither eventual-only nor per-round-only
// synchrony suffices; what Algorithm 1 converts into agreement is
// exactly the perpetual part of the communication pattern.
#include <iostream>

#include "adversary/rotating.hpp"
#include "graph/scc.hpp"
#include "kset/runner.hpp"
#include "predicates/classic.hpp"
#include "util/table.hpp"

int main() {
  using namespace sskel;
  std::cout << "========================================================\n"
            << " E12: per-round synchrony without persistence is useless\n"
            << "========================================================\n\n";

  Table table("rotating star (first center p1): nonempty kernel every round",
              {"n", "hold", "kernel rounds", "perpetual kernel",
               "skeleton roots", "distinct values", "consensus?",
               "expected"});
  bool all_ok = true;
  struct Row {
    ProcId n;
    Round hold;
    int expected_values;
  };
  std::vector<Row> rows;
  for (ProcId n : {5, 8, 12}) {
    // Rotating variants: p1 (not the min-holder p0) leads round 1, so
    // p0 keeps its own minimum while everyone else adopts p1's value:
    // exactly 2 decision values, deterministically.
    rows.push_back({n, 1, 2});
    rows.push_back({n, 2, 2});
    rows.push_back({n, static_cast<Round>(n), 2});
    rows.push_back({n, 100000, 1});  // effectively fixed: consensus
  }
  for (const Row& row : rows) {
    auto profile_source = make_rotating_star_source(row.n, row.hold, 1);
    std::vector<Digraph> prefix;
    for (Round r = 1; r <= 4 * row.n; ++r) {
      prefix.push_back(profile_source->graph(r));
    }
    const RunSynchronyProfile profile = profile_run(prefix);

    auto run_source = make_rotating_star_source(row.n, row.hold, 1);
    KSetRunConfig config;
    config.k = 1;  // judge against consensus
    const KSetRunReport report = run_kset(*run_source, config);

    const bool ok = report.all_decided &&
                    report.distinct_values == row.expected_values;
    all_ok = all_ok && ok;
    table.add_row(
        {cell(row.n), cell(static_cast<std::int64_t>(row.hold)),
         cell(static_cast<std::int64_t>(profile.rounds_with_kernel)) + "/" +
             cell(static_cast<std::int64_t>(profile.rounds)),
         profile.perpetual_kernel.empty()
             ? "empty"
             : profile.perpetual_kernel.to_string(),
         cell(static_cast<std::int64_t>(
             root_components(report.final_skeleton).size())),
         cell(report.distinct_values),
         report.distinct_values == 1 ? "yes" : "NO",
         cell(row.expected_values)});
  }
  table.print(std::cout);
  std::cout
      << (all_ok
              ? "RESULT: every rotating run had a nonempty kernel in every\n"
                "round and still split the skeleton into n singleton roots\n"
                "and violated consensus (2 values); only the permanently\n"
                "fixed star (nonempty *perpetual* kernel) reached consensus.\n"
                "Synchrony must persist to be usable by stable-skeleton\n"
                "algorithms — exactly the paper's premise.\n"
              : "RESULT: MISMATCH (see table).\n");
  return all_ok ? 0 : 1;
}
