// E7 — baseline comparison: Algorithm 1 vs FloodMin vs LocalMin.
//
// Table A: the synchronous crash model (FloodMin's home turf). Both
// algorithms are safe; FloodMin decides in floor(f/k)+1 rounds with
// 8-byte messages, Algorithm 1 pays > n rounds and graph-sized
// messages for assumptions it does not need here.
//
// Table B: a Psrcs(k) link-failure adversary (Algorithm 1's home
// turf). FloodMin's crash-budget premise is violated and it splinters
// past k values; the LocalMin strawman does too; Algorithm 1 never
// exceeds k. This is the trade the paper's model buys.
#include <iostream>
#include <memory>
#include <set>

#include "adversary/crash.hpp"
#include "adversary/random_psrcs.hpp"
#include "kset/floodmin.hpp"
#include "kset/local_min.hpp"
#include "kset/one_third_rule.hpp"
#include "kset/runner.hpp"
#include "rounds/simulator.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace sskel;

template <typename Proc, typename... Args>
std::vector<std::unique_ptr<Algorithm<Value>>> make_value_procs(
    ProcId n, Args... args) {
  std::vector<std::unique_ptr<Algorithm<Value>>> procs;
  const std::vector<Value> proposals = default_proposals(n);
  for (ProcId p = 0; p < n; ++p) {
    procs.push_back(std::make_unique<Proc>(
        n, p, proposals[static_cast<std::size_t>(p)], args...));
  }
  return procs;
}

struct ValueRunStats {
  int distinct = 0;
  int undecided = 0;
  Round last_round = 0;
  std::int64_t bytes = 0;
};

template <typename Proc, typename... Args>
ValueRunStats run_value_algo(GraphSource& source, Round rounds,
                             const ProcSet& counted, Args... args) {
  Simulator<Value> sim(source, make_value_procs<Proc>(source.n(), args...));
  sim.set_message_sizer([](const Value&) { return std::int64_t{8}; });
  sim.run(rounds);
  std::set<Value> values;
  ValueRunStats stats;
  for (ProcId p : counted) {
    auto& proc = static_cast<Proc&>(sim.process(p));
    if (!proc.decided()) {
      ++stats.undecided;
      continue;
    }
    values.insert(proc.decision());
    stats.last_round = std::max(stats.last_round, proc.decision_round());
  }
  stats.distinct = static_cast<int>(values.size());
  stats.bytes = sim.trace().total_bytes();
  return stats;
}

}  // namespace

int main() {
  std::cout << "========================================================\n"
            << " E7: Algorithm 1 vs FloodMin vs LocalMin\n"
            << "========================================================\n\n";

  const int trials = 30;

  {  // Table A: crash model.
    Table table("A: synchronous crash model (n=10, f=4), 30 trials",
                {"k", "algorithm", "max distinct", "viol runs",
                 "mean decision round", "mean bytes/run"});
    for (int k : {1, 2, 4}) {
      const ProcId n = 10;
      const int f = 4;
      Accumulator fm_round, fm_bytes, a1_round, a1_bytes;
      int fm_max = 0, a1_max = 0, fm_viol = 0, a1_viol = 0;
      for (int t = 0; t < trials; ++t) {
        const std::uint64_t seed =
            mix_seed(0xE7A, static_cast<std::uint64_t>(t * 10 + k));
        auto src = make_random_crash_source(seed, n, f, f / k + 1);
        const ValueRunStats fm = run_value_algo<FloodMinProcess>(
            *src, f / k + 1, src->correct_processes(), f, k);
        fm_max = std::max(fm_max, fm.distinct);
        if (fm.distinct > k) ++fm_viol;
        fm_round.add(fm.last_round);
        fm_bytes.add(static_cast<double>(fm.bytes));

        auto src2 = make_random_crash_source(seed, n, f, f / k + 1);
        KSetRunConfig config;
        config.k = k;
        config.measure_bytes = true;
        const KSetRunReport r = run_kset(*src2, config);
        a1_max = std::max(a1_max, r.distinct_values);
        if (r.distinct_values > k) ++a1_viol;
        a1_round.add(r.last_decision_round);
        a1_bytes.add(static_cast<double>(r.total_bytes));
      }
      table.add_row({cell(k), "FloodMin", cell(fm_max), cell(fm_viol),
                     cell(fm_round.mean(), 1), cell(fm_bytes.mean(), 0)});
      table.add_row({cell(k), "Algorithm 1 (skeleton)", cell(a1_max),
                     cell(a1_viol), cell(a1_round.mean(), 1),
                     cell(a1_bytes.mean(), 0)});
    }
    table.print(std::cout);
  }

  {  // Table B: Psrcs(k) link failures.
    Table table("B: Psrcs(k) link-failure adversary (n=10, k isolated "
                "roots), 30 trials",
                {"k", "algorithm", "max distinct", "viol runs (>k)",
                 "mean decision round", "undecided procs/run"});
    for (int k : {2, 3, 4}) {
      const ProcId n = 10;
      RandomPsrcsParams params;
      params.n = n;
      params.k = k;
      params.root_components = k;
      params.max_core_size = 1;
      // Pure stable sparsity: the harshest admissible Psrcs(k) run.
      params.noise_probability = 0.0;
      params.follower_edge_probability = 0.0;

      Accumulator fm_round, lm_round, otr_undecided, a1_round;
      int fm_max = 0, lm_max = 0, otr_max = 0, a1_max = 0;
      int fm_viol = 0, lm_viol = 0, otr_viol = 0, a1_viol = 0;
      for (int t = 0; t < trials; ++t) {
        const std::uint64_t seed =
            mix_seed(0xE7B, static_cast<std::uint64_t>(t * 10 + k));
        const int f = 2;
        RandomPsrcsSource s1(seed, params);
        const ValueRunStats fm = run_value_algo<FloodMinProcess>(
            s1, 2 * n, ProcSet::full(n), f, k);
        fm_max = std::max(fm_max, fm.distinct);
        if (fm.distinct > k) ++fm_viol;
        fm_round.add(fm.last_round);

        RandomPsrcsSource s2(seed, params);
        const ValueRunStats lm = run_value_algo<LocalMinProcess>(
            s2, 2 * n, ProcSet::full(n), Round{4});
        lm_max = std::max(lm_max, lm.distinct);
        if (lm.distinct > k) ++lm_viol;
        lm_round.add(lm.last_round);

        // One-Third Rule: its > 2n/3 kernels never materialize on a
        // sparse Psrcs(k) skeleton — it cannot terminate here.
        RandomPsrcsSource s4(seed, params);
        const ValueRunStats otr = run_value_algo<OneThirdRuleProcess>(
            s4, 4 * n, ProcSet::full(n));
        otr_max = std::max(otr_max, otr.distinct);
        if (otr.distinct > k) ++otr_viol;
        otr_undecided.add(otr.undecided);

        RandomPsrcsSource s3(seed, params);
        KSetRunConfig config;
        config.k = k;
        const KSetRunReport r = run_kset(s3, config);
        a1_max = std::max(a1_max, r.distinct_values);
        if (r.distinct_values > k) ++a1_viol;
        a1_round.add(r.last_decision_round);
      }
      table.add_row({cell(k), "FloodMin", cell(fm_max), cell(fm_viol),
                     cell(fm_round.mean(), 1), "0"});
      table.add_row({cell(k), "LocalMin (strawman)", cell(lm_max),
                     cell(lm_viol), cell(lm_round.mean(), 1), "0"});
      table.add_row({cell(k), "OneThirdRule (HO consensus)", cell(otr_max),
                     cell(otr_viol), "n/a",
                     cell(otr_undecided.mean(), 1)});
      table.add_row({cell(k), "Algorithm 1 (skeleton)", cell(a1_max),
                     cell(a1_viol), cell(a1_round.mean(), 1), "0"});
    }
    table.print(std::cout);
  }

  std::cout
      << "Reading: in A both algorithms are safe — FloodMin is faster and\n"
         "cheaper under its stronger (crash-budget) model. In B only\n"
         "Algorithm 1 both terminates and respects the k ceiling:\n"
         "FloodMin/LocalMin decide quickly but splinter past k (their\n"
         "premises are void under pure link failures), and OneThirdRule —\n"
         "a consensus algorithm needing > 2n/3 heard-of kernels — never\n"
         "terminates on the sparse Psrcs(k) skeleton (it stays safe only\n"
         "by staying silent). Algorithm 1's skeleton approximation is the\n"
         "piece that converts arbitrary perpetual sparsity into decisions.\n";
  return 0;
}
