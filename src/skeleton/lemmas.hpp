// Runtime monitors for the paper's approximation lemmas.
//
// The correctness of Algorithm 1 rests on a chain of structural claims
// relating each process's approximation graph G_p^r to the true
// skeleton G∩r (Observation 1, Lemmas 3-7, Theorem 8) and on estimate
// invariants (Observation 2, Lemma 12). This monitor re-checks those
// claims mechanically, round by round, on live runs: a test or bench
// attaches it next to the algorithm and asserts `violations().empty()`
// at the end. Because the lemmas are proved for *every* communication
// pattern ("our algorithm yields a correct approximation atop of any
// communication predicate"), the monitor is also run on runs that do
// NOT satisfy Psrcs(k).
//
// Cost: the per-round sweep is O(n^3)-ish with full history; monitors
// are test/verification equipment, not part of the algorithm. The
// skeleton-derived inputs of every check (SCC decomposition, induced
// component subgraphs) are cached on the tracker's version stamp, so
// rounds that leave the skeleton untouched — the entire tail after
// r_ST — reuse them instead of re-running Tarjan per process.
#pragma once

#include <string>
#include <vector>

#include "graph/labeled_digraph.hpp"
#include "skeleton/tracker.hpp"
#include "util/types.hpp"
#include "util/versioned_cache.hpp"

namespace sskel {

class StructureInternTable;

/// What a lemma monitor needs to see of one process at the end of a
/// round. The k-set runner fills these from the algorithm state.
struct ProcessSnapshot {
  LabeledDigraph approx;           // G_p^r (end of round r)
  ProcSet pt;                      // PT_p variable (end of round r)
  Value estimate = kNoValue;       // x_p^r
  bool decided = false;            // decided_p
  bool decided_via_message = false;  // decided through Line 12
  Round decision_round = 0;        // 0 when undecided
};

/// Which checks to run (they differ in cost).
struct LemmaChecks {
  bool observation1 = true;  // p in G_p; no stale labels
  bool lemma3 = true;        // PT_p == PT(p, r); fresh self-row labels
  bool lemma5 = true;        // C_p^r subseteq G_p^r for r >= n
  bool lemma6 = true;        // labels certify skeleton membership
  bool lemma7 = true;        // strongly connected G_p^R subseteq C_p^{R-n+1}
  bool theorem8 = true;      // SC graphs closed under stable components
  bool estimates = true;     // Observation 2 + Lemma 12
};

class LemmaMonitor {
 public:
  /// n is both the process count and the purge window of Algorithm 1.
  explicit LemmaMonitor(ProcId n, LemmaChecks checks = {});

  /// Feeds one completed round. `snapshots[p]` is process p's end-of-
  /// round state; `comm_graph` is G^r (with self-loops).
  void observe_round(Round r, const Digraph& comm_graph,
                     const std::vector<ProcessSnapshot>& snapshots);

  /// Runs the end-of-run checks (Theorem 8 against the last skeleton,
  /// which equals G∩∞ provided the run extends past stabilization;
  /// callers ensure that by running a stabilized source long enough).
  void finalize();

  [[nodiscard]] const std::vector<std::string>& violations() const {
    return violations_;
  }

  [[nodiscard]] const SkeletonTracker& tracker() const { return tracker_; }

  /// Attaches a run-scoped intern table (nullptr detaches). The
  /// monitor's tracker resolves its analytics through the table, and
  /// Lemma 7's per-round base-skeleton decomposition is served from
  /// the interned entry's memoized Tarjan instead of recomputed — one
  /// decomposition per *distinct* historical skeleton for the whole
  /// run (and across trials sharing the table) rather than one per
  /// round. Same single-thread discipline as the tracker: the table
  /// must outlive the monitor.
  void attach_intern(StructureInternTable* table);

  /// Lemma 7 base decompositions served from an interned entry vs
  /// computed privately (table detached, full, or n mismatch).
  [[nodiscard]] std::int64_t lemma7_interned_bases() const {
    return lemma7_interned_bases_;
  }
  [[nodiscard]] std::int64_t lemma7_private_bases() const {
    return lemma7_private_bases_;
  }

  /// Recomputation count of the cached induced-component-subgraph
  /// analytics (for the cache-invalidation property tests; equals
  /// skeleton version bumps + 1 when queried every round).
  [[nodiscard]] std::int64_t analytics_recomputes() const {
    return induced_components_.recomputes();
  }

 private:
  void report(Round r, ProcId p, const std::string& what);

  /// Induced subgraph of the current skeleton's component containing
  /// p, served from the version-keyed cache. On a version bump the
  /// cache is *patched* in place: the tracker's component_origin() map
  /// says which components survived the shrink untouched, and their
  /// induced graphs are moved over instead of rebuilt — only split or
  /// rebuilt components pay for a fresh induced() pass.
  [[nodiscard]] const Digraph& component_graph(ProcId p);

  ProcId n_;
  LemmaChecks checks_;
  SkeletonTracker tracker_;
  StructureInternTable* intern_ = nullptr;
  std::int64_t lemma7_interned_bases_ = 0;
  std::int64_t lemma7_private_bases_ = 0;
  /// induced[c] = skeleton restricted to component c of current_scc(),
  /// plus a trailing empty graph serving nodes absent from the
  /// skeleton.
  mutable VersionedCache<std::vector<Digraph>> induced_components_;
  /// Tracker analytics generation the cached induced graphs belong to;
  /// component_origin() is only a valid carry map when we consumed the
  /// immediately preceding generation.
  mutable std::int64_t induced_generation_ = -1;
  std::vector<std::string> violations_;
  std::vector<Value> prev_estimates_;
  /// First strongly-connected approximation snapshot per process, for
  /// the Theorem 8 finalize pass: (round, graph).
  std::vector<std::pair<Round, LabeledDigraph>> first_sc_;
};

}  // namespace sskel
