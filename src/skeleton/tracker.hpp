// SkeletonTracker: the round-r skeleton G∩r of a run, maintained
// incrementally.
//
// G∩r is the intersection of the communication graphs of rounds
// 1 .. r (Sec. II); it shrinks monotonically (Eq. (1)) and reaches the
// stable skeleton G∩∞ at some finite round r_ST. The tracker observes
// one graph per round (attach SkeletonTracker::observer() to a
// Simulator), maintains the current skeleton, and remembers the last
// round at which the skeleton changed — for a source that stabilizes,
// that round *is* r_ST once enough rounds have elapsed.
//
// Change-driven analytics: every observe() is a word-parallel AND that
// also reports whether anything shrank. The tracker exposes that as a
// monotonically increasing version() stamp, and keys its own derived
// analytics (SCC decomposition, root components) on it. After r_ST the
// version stops moving, so the per-round cost of "observe + query all
// analytics" collapses to the AND itself — O(n^2/64) — instead of
// O(n^2 + SCC).
//
// Optionally retains the whole history G∩1, G∩2, ... for the lemma
// monitors (O(rounds * n^2 / 8) bits).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/inc_scc.hpp"
#include "graph/scc.hpp"
#include "util/types.hpp"

namespace sskel {

class StructureInternTable;
class InternedStructure;

class SkeletonTracker {
 public:
  enum class History { kNone, kKeepAll };

  explicit SkeletonTracker(ProcId n, History history = History::kNone);

  /// Folds G^r into the skeleton. Rounds must arrive as 1, 2, 3, ...
  void observe(Round r, const Digraph& graph);

  /// Restores the freshly-constructed state (complete skeleton, round
  /// 0, no analytics) without releasing storage, detaching any intern
  /// table — re-attach afterwards if interning is wanted. Trial
  /// scratches recycle one tracker across runs through this; the
  /// scheduler-equivalence tripwire pins reset == construct.
  void reset();

  /// Adapter for Simulator::add_observer.
  [[nodiscard]] std::function<void(Round, const Digraph&)> observer() {
    return [this](Round r, const Digraph& g) { observe(r, g); };
  }

  [[nodiscard]] ProcId n() const { return n_; }
  [[nodiscard]] Round rounds_observed() const { return round_; }

  /// The current skeleton G∩r (complete graph before any round).
  [[nodiscard]] const Digraph& skeleton() const { return skeleton_; }

  /// G∩r for a specific past round (requires History::kKeepAll).
  [[nodiscard]] const Digraph& skeleton_at(Round r) const;

  /// PT(p, r) for the current round: p's row of in-neighbors.
  [[nodiscard]] const ProcSet& pt(ProcId p) const {
    return skeleton_.in_neighbors(p);
  }

  /// Last round whose observation changed the skeleton (0 when no
  /// round shrank it — i.e. the first graph was already stable). If
  /// the source has stabilized, this equals the paper's r_ST.
  [[nodiscard]] Round last_change_round() const { return last_change_; }

  /// Version stamp of the skeleton: starts at 0 and bumps exactly when
  /// a round's intersection removed a node or edge. Monotonicity makes
  /// this a complete invalidation key for anything derived from the
  /// skeleton.
  [[nodiscard]] std::uint64_t version() const { return version_; }

  /// Number of consecutive rounds (counting backwards from the
  /// current one) whose observation left the skeleton untouched. Once
  /// the source has stabilized this grows without bound; equals
  /// rounds_observed() - last_change_round().
  [[nodiscard]] Round stabilized_for() const { return round_ - last_change_; }

  /// Attaches a run-scoped structure intern table: analytics queries
  /// resolve the current skeleton to its canonical interned entry
  /// (one fingerprint per version bump, served across trials that
  /// reach the same structure) instead of seeding a private
  /// IncrementalScc. When the table overflows, the tracker falls back
  /// to the incremental path transparently. Must be called before the
  /// first analytics query; component_origin() is not maintained on
  /// the interned path (it stays empty). Pass nullptr to detach is
  /// not supported — attach once, up front.
  void attach_intern(StructureInternTable* table);

  /// The interned entry serving the current analytics, or nullptr
  /// when no table is attached / the table overflowed. Refreshes the
  /// analytics first.
  [[nodiscard]] const InternedStructure* interned_current() const;

  /// SCC decomposition of the current skeleton. The first query seeds
  /// an IncrementalScc maintainer with one Tarjan pass; after that the
  /// intersection in observe() records the removed nodes/edges
  /// (Digraph::intersect_collect) and each stale query *patches* the
  /// decomposition instead of recomputing it — only components that
  /// lost an internal edge or a member are re-decomposed, locally.
  /// The result is a valid reverse-topological ordering of the
  /// condensation (Tarjan's contract), though not necessarily Tarjan's
  /// exact permutation.
  [[nodiscard]] const SccDecomposition& current_scc() const;

  /// Root components of the current skeleton (Theorem 1's objects),
  /// maintained alongside current_scc().
  [[nodiscard]] const std::vector<ProcSet>& current_root_components() const;

  /// Indices into current_scc().components of the root components,
  /// ascending.
  [[nodiscard]] const std::vector<int>& current_root_indices() const;

  /// After the analytics have been brought up to date (any analytics
  /// accessor at the current version), component_origin()[c] is the
  /// index this component had in the decomposition served by the
  /// *previous* analytics refresh, or -1 when it was (re)built. Valid
  /// for consumers that query every refresh generation (compare
  /// analytics_recomputes()); lets them carry per-component derived
  /// data across a shrink. Empty before the first query.
  [[nodiscard]] const std::vector<int>& component_origin() const;

  /// Number of times the SCC/root-component analytics actually ran
  /// (seed or incremental patch). With a query every round this equals
  /// version bumps + 1 (the initial seed) — the cache-invalidation
  /// property tests pin that.
  [[nodiscard]] std::int64_t analytics_recomputes() const {
    return analytics_recomputes_;
  }

  /// Local re-decompositions the incremental maintainer ran — the
  /// work metric the benchmarks report next to full-Tarjan reruns.
  [[nodiscard]] std::int64_t scc_components_resolved() const {
    return inc_scc_.components_resolved();
  }

 private:
  /// Brings the incremental maintainer up to date with skeleton_
  /// (seed on first call, apply pending deltas on later ones).
  void refresh_analytics() const;

  ProcId n_;
  History history_;
  Digraph skeleton_;
  std::vector<Digraph> past_;  // past_[r-1] = G∩r
  Round round_ = 0;
  Round last_change_ = 0;
  std::uint64_t version_ = 0;
  // Analytics state: lazily seeded, then delta-driven. pending_ only
  // accumulates once the maintainer is seeded, so runs that never ask
  // for analytics keep the plain (delta-free) intersection path. With
  // an intern table attached, entry_ serves the analytics instead and
  // inc_scc_ stays unseeded (unless the table overflows).
  StructureInternTable* intern_ = nullptr;
  mutable InternedStructure* entry_ = nullptr;
  mutable IncrementalScc inc_scc_;
  mutable GraphDelta pending_;
  mutable std::vector<ProcSet> roots_;
  mutable std::uint64_t analytics_version_ = 0;
  mutable bool analytics_valid_ = false;
  mutable std::int64_t analytics_recomputes_ = 0;
};

}  // namespace sskel
