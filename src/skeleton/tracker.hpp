// SkeletonTracker: the round-r skeleton G∩r of a run, maintained
// incrementally.
//
// G∩r is the intersection of the communication graphs of rounds
// 1 .. r (Sec. II); it shrinks monotonically (Eq. (1)) and reaches the
// stable skeleton G∩∞ at some finite round r_ST. The tracker observes
// one graph per round (attach SkeletonTracker::observer() to a
// Simulator), maintains the current skeleton, and remembers the last
// round at which the skeleton changed — for a source that stabilizes,
// that round *is* r_ST once enough rounds have elapsed.
//
// Change-driven analytics: every observe() is a word-parallel AND that
// also reports whether anything shrank. The tracker exposes that as a
// monotonically increasing version() stamp, and keys its own derived
// analytics (SCC decomposition, root components) on it. After r_ST the
// version stops moving, so the per-round cost of "observe + query all
// analytics" collapses to the AND itself — O(n^2/64) — instead of
// O(n^2 + SCC).
//
// Optionally retains the whole history G∩1, G∩2, ... for the lemma
// monitors (O(rounds * n^2 / 8) bits).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/scc.hpp"
#include "util/types.hpp"
#include "util/versioned_cache.hpp"

namespace sskel {

class SkeletonTracker {
 public:
  enum class History { kNone, kKeepAll };

  explicit SkeletonTracker(ProcId n, History history = History::kNone);

  /// Folds G^r into the skeleton. Rounds must arrive as 1, 2, 3, ...
  void observe(Round r, const Digraph& graph);

  /// Adapter for Simulator::add_observer.
  [[nodiscard]] std::function<void(Round, const Digraph&)> observer() {
    return [this](Round r, const Digraph& g) { observe(r, g); };
  }

  [[nodiscard]] ProcId n() const { return n_; }
  [[nodiscard]] Round rounds_observed() const { return round_; }

  /// The current skeleton G∩r (complete graph before any round).
  [[nodiscard]] const Digraph& skeleton() const { return skeleton_; }

  /// G∩r for a specific past round (requires History::kKeepAll).
  [[nodiscard]] const Digraph& skeleton_at(Round r) const;

  /// PT(p, r) for the current round: p's row of in-neighbors.
  [[nodiscard]] const ProcSet& pt(ProcId p) const {
    return skeleton_.in_neighbors(p);
  }

  /// Last round whose observation changed the skeleton (0 when no
  /// round shrank it — i.e. the first graph was already stable). If
  /// the source has stabilized, this equals the paper's r_ST.
  [[nodiscard]] Round last_change_round() const { return last_change_; }

  /// Version stamp of the skeleton: starts at 0 and bumps exactly when
  /// a round's intersection removed a node or edge. Monotonicity makes
  /// this a complete invalidation key for anything derived from the
  /// skeleton.
  [[nodiscard]] std::uint64_t version() const { return version_; }

  /// Number of consecutive rounds (counting backwards from the
  /// current one) whose observation left the skeleton untouched. Once
  /// the source has stabilized this grows without bound; equals
  /// rounds_observed() - last_change_round().
  [[nodiscard]] Round stabilized_for() const { return round_ - last_change_; }

  /// SCC decomposition of the current skeleton, cached on version():
  /// recomputed only after a round that actually shrank the skeleton.
  [[nodiscard]] const SccDecomposition& current_scc() const;

  /// Root components of the current skeleton (Theorem 1's objects),
  /// cached on version() like current_scc().
  [[nodiscard]] const std::vector<ProcSet>& current_root_components() const;

  /// Number of times the SCC/root-component analytics actually ran.
  /// With a query every round this equals version bumps + 1 (the
  /// initial fill) — the cache-invalidation property tests pin that.
  [[nodiscard]] std::int64_t analytics_recomputes() const {
    return analytics_.recomputes();
  }

 private:
  struct Analytics {
    SccDecomposition scc;
    std::vector<ProcSet> roots;
  };

  /// The version-cached SCC + root-component bundle (one Tarjan run
  /// serves both accessors).
  [[nodiscard]] const Analytics& analytics() const;

  ProcId n_;
  History history_;
  Digraph skeleton_;
  std::vector<Digraph> past_;  // past_[r-1] = G∩r
  Round round_ = 0;
  Round last_change_ = 0;
  std::uint64_t version_ = 0;
  mutable VersionedCache<Analytics> analytics_;
};

}  // namespace sskel
