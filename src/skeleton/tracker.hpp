// SkeletonTracker: the round-r skeleton G∩r of a run, maintained
// incrementally.
//
// G∩r is the intersection of the communication graphs of rounds
// 1 .. r (Sec. II); it shrinks monotonically (Eq. (1)) and reaches the
// stable skeleton G∩∞ at some finite round r_ST. The tracker observes
// one graph per round (attach SkeletonTracker::observer() to a
// Simulator), maintains the current skeleton, and remembers the last
// round at which the skeleton changed — for a source that stabilizes,
// that round *is* r_ST once enough rounds have elapsed.
//
// Optionally retains the whole history G∩1, G∩2, ... for the lemma
// monitors (O(rounds * n^2 / 8) bits).
#pragma once

#include <functional>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/scc.hpp"
#include "util/types.hpp"

namespace sskel {

class SkeletonTracker {
 public:
  enum class History { kNone, kKeepAll };

  explicit SkeletonTracker(ProcId n, History history = History::kNone);

  /// Folds G^r into the skeleton. Rounds must arrive as 1, 2, 3, ...
  void observe(Round r, const Digraph& graph);

  /// Adapter for Simulator::add_observer.
  [[nodiscard]] std::function<void(Round, const Digraph&)> observer() {
    return [this](Round r, const Digraph& g) { observe(r, g); };
  }

  [[nodiscard]] ProcId n() const { return n_; }
  [[nodiscard]] Round rounds_observed() const { return round_; }

  /// The current skeleton G∩r (complete graph before any round).
  [[nodiscard]] const Digraph& skeleton() const { return skeleton_; }

  /// G∩r for a specific past round (requires History::kKeepAll).
  [[nodiscard]] const Digraph& skeleton_at(Round r) const;

  /// PT(p, r) for the current round: p's row of in-neighbors.
  [[nodiscard]] const ProcSet& pt(ProcId p) const {
    return skeleton_.in_neighbors(p);
  }

  /// Last round whose observation changed the skeleton (0 when no
  /// round shrank it — i.e. the first graph was already stable). If
  /// the source has stabilized, this equals the paper's r_ST.
  [[nodiscard]] Round last_change_round() const { return last_change_; }

  /// Root components of the current skeleton (Theorem 1's objects).
  [[nodiscard]] std::vector<ProcSet> current_root_components() const {
    return root_components(skeleton_);
  }

 private:
  ProcId n_;
  History history_;
  Digraph skeleton_;
  Digraph scratch_;  // previous skeleton, reused across observe() calls
  std::vector<Digraph> past_;  // past_[r-1] = G∩r
  Round round_ = 0;
  Round last_change_ = 0;
};

}  // namespace sskel
