// Wire codec for approximation graphs and k-set agreement messages.
//
// Sec. V notes Algorithm 1 has "worst-case message bit complexity that
// is polynomial in n": a round message carries (kind, estimate,
// approximation graph). This codec gives that claim teeth — it is a
// real, self-contained binary encoding (LEB128 varints + node bitmap +
// edge list with delta-coded labels), and the simulator's message
// sizer uses it so experiment E5 measures genuine encoded bytes, not
// in-memory sizeof.
//
// Layout of an encoded graph:
//   varint n
//   ceil(n/8) bytes of node-presence bitmap
//   varint edge_count
//   per edge (sorted by (q, p)): varint q, varint p, varint label
#pragma once

#include <cstdint>
#include <vector>

#include "graph/labeled_digraph.hpp"
#include "util/decode.hpp"
#include "util/types.hpp"
#include "util/varint.hpp"

namespace sskel {

/// Universe ceiling for *labeled* graph decodes, tighter than
/// kMaxDecodeUniverse because LabeledDigraph carries an n x n label
/// matrix: accepting a hostile n of 2^17 would let 3 bytes of input
/// demand a 64 GiB allocation. 4x past the n <= 512 scales labeled
/// graphs actually run at.
inline constexpr std::uint64_t kMaxLabeledDecodeUniverse = 1u << 11;

/// Serializes a labeled digraph.
[[nodiscard]] std::vector<std::uint8_t> encode_graph(const LabeledDigraph& g);

/// Decodes untrusted bytes. Accepts exactly the canonical encodings
/// encode_graph produces — strict varints, zero padding bits, edges in
/// strictly increasing (q, p) order with labels in [1, INT32_MAX],
/// endpoints inside the node bitmap — so a successful decode
/// re-encodes to the identical byte string.
[[nodiscard]] DecodeResult<LabeledDigraph> try_decode_graph(
    const std::vector<std::uint8_t>& in);

/// Inverse of encode_graph for *trusted* bytes (in-process round
/// messages): a decode failure is a caller bug and aborts via
/// SSKEL_REQUIRE. Untrusted bytes go through try_decode_graph.
[[nodiscard]] LabeledDigraph decode_graph(const std::vector<std::uint8_t>& in);

/// Encoded size without materializing the buffer (same arithmetic as
/// encode_graph); used on the simulator hot path.
[[nodiscard]] std::int64_t encoded_graph_size(const LabeledDigraph& g);

}  // namespace sskel
