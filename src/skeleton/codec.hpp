// Wire codec for approximation graphs and k-set agreement messages.
//
// Sec. V notes Algorithm 1 has "worst-case message bit complexity that
// is polynomial in n": a round message carries (kind, estimate,
// approximation graph). This codec gives that claim teeth — it is a
// real, self-contained binary encoding (LEB128 varints + node bitmap +
// edge list with delta-coded labels), and the simulator's message
// sizer uses it so experiment E5 measures genuine encoded bytes, not
// in-memory sizeof.
//
// Layout of an encoded graph:
//   varint n
//   ceil(n/8) bytes of node-presence bitmap
//   varint edge_count
//   per edge (sorted by (q, p)): varint q, varint p, varint label
#pragma once

#include <cstdint>
#include <vector>

#include "graph/labeled_digraph.hpp"
#include "util/types.hpp"
#include "util/varint.hpp"

namespace sskel {

/// Serializes a labeled digraph.
[[nodiscard]] std::vector<std::uint8_t> encode_graph(const LabeledDigraph& g);

/// Inverse of encode_graph. The result compares equal to the input.
[[nodiscard]] LabeledDigraph decode_graph(const std::vector<std::uint8_t>& in);

/// Encoded size without materializing the buffer (same arithmetic as
/// encode_graph); used on the simulator hot path.
[[nodiscard]] std::int64_t encoded_graph_size(const LabeledDigraph& g);

}  // namespace sskel
