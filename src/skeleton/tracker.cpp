#include "skeleton/tracker.hpp"

#include "skeleton/intern.hpp"
#include "util/assert.hpp"

namespace sskel {

SkeletonTracker::SkeletonTracker(ProcId n, History history)
    : n_(n), history_(history), skeleton_(Digraph::complete(n)) {
  SSKEL_REQUIRE(n > 0);
}

void SkeletonTracker::observe(Round r, const Digraph& graph) {
  SSKEL_REQUIRE(graph.n() == n_);
  SSKEL_REQUIRE(r == round_ + 1);
  round_ = r;
  // The AND itself detects shrinkage — no pre-round copy, no graph
  // comparison. A no-op round costs exactly the intersection. Once the
  // SCC maintainer is seeded the intersection also materializes what
  // it removed, so the next analytics query can patch instead of
  // recompute; before that (or when analytics are never queried) the
  // delta-free path runs.
  const bool changed = inc_scc_.seeded()
                           ? skeleton_.intersect_collect(graph, pending_)
                           : skeleton_.intersect_with(graph);
  if (changed) {
    last_change_ = r;
    ++version_;
  }
  if (history_ == History::kKeepAll) past_.push_back(skeleton_);
}

void SkeletonTracker::reset() {
  skeleton_.fill_complete();
  past_.clear();
  round_ = 0;
  last_change_ = 0;
  version_ = 0;
  intern_ = nullptr;
  entry_ = nullptr;
  // Interned runs never seed the private maintainer; replacing it is
  // the rare fallback-path case, not the per-trial cost.
  if (inc_scc_.seeded()) inc_scc_ = IncrementalScc();
  pending_.clear();
  roots_.clear();
  analytics_version_ = 0;
  analytics_valid_ = false;
  analytics_recomputes_ = 0;
}

const Digraph& SkeletonTracker::skeleton_at(Round r) const {
  SSKEL_REQUIRE(history_ == History::kKeepAll);
  SSKEL_REQUIRE(r >= 1 && r <= static_cast<Round>(past_.size()));
  return past_[static_cast<std::size_t>(r - 1)];
}

void SkeletonTracker::attach_intern(StructureInternTable* table) {
  SSKEL_REQUIRE(table != nullptr);
  SSKEL_REQUIRE(!analytics_valid_ && !inc_scc_.seeded());
  intern_ = table;
}

const InternedStructure* SkeletonTracker::interned_current() const {
  refresh_analytics();
  return entry_;
}

void SkeletonTracker::refresh_analytics() const {
  if (analytics_valid_ && analytics_version_ == version_) return;
  if (intern_ != nullptr && !inc_scc_.seeded()) {
    // One fingerprint per version bump; the entry's analytics are
    // shared with every other resolver of the same structure. On
    // overflow (nullptr) fall through to the private incremental
    // path and stay there: once inc_scc_ is seeded, observe() starts
    // collecting deltas and the two paths must not alternate (the
    // interned branch clears pending_, which would starve a later
    // apply()).
    entry_ = intern_->intern(skeleton_);
    if (entry_ != nullptr) {
      roots_ = entry_->root_components();
      pending_.clear();
      analytics_version_ = version_;
      analytics_valid_ = true;
      ++analytics_recomputes_;
      return;
    }
  }
  if (!inc_scc_.seeded()) {
    inc_scc_.seed(skeleton_);
  } else {
    inc_scc_.apply(skeleton_, pending_);
  }
  pending_.clear();
  roots_.clear();
  for (int idx : inc_scc_.root_indices()) {
    roots_.push_back(
        inc_scc_.decomposition().components[static_cast<std::size_t>(idx)]);
  }
  analytics_version_ = version_;
  analytics_valid_ = true;
  ++analytics_recomputes_;
}

const SccDecomposition& SkeletonTracker::current_scc() const {
  refresh_analytics();
  return entry_ != nullptr ? entry_->scc() : inc_scc_.decomposition();
}

const std::vector<ProcSet>& SkeletonTracker::current_root_components() const {
  refresh_analytics();
  return roots_;
}

const std::vector<int>& SkeletonTracker::current_root_indices() const {
  refresh_analytics();
  return entry_ != nullptr ? entry_->root_indices() : inc_scc_.root_indices();
}

const std::vector<int>& SkeletonTracker::component_origin() const {
  return inc_scc_.origin_of();
}

}  // namespace sskel
