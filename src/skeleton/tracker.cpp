#include "skeleton/tracker.hpp"

#include "util/assert.hpp"

namespace sskel {

SkeletonTracker::SkeletonTracker(ProcId n, History history)
    : n_(n), history_(history), skeleton_(Digraph::complete(n)) {
  SSKEL_REQUIRE(n > 0);
}

void SkeletonTracker::observe(Round r, const Digraph& graph) {
  SSKEL_REQUIRE(graph.n() == n_);
  SSKEL_REQUIRE(r == round_ + 1);
  round_ = r;
  scratch_ = skeleton_;  // copy-assign: reuses scratch storage
  skeleton_.intersect_with(graph);
  if (skeleton_ != scratch_) last_change_ = r;
  if (history_ == History::kKeepAll) past_.push_back(skeleton_);
}

const Digraph& SkeletonTracker::skeleton_at(Round r) const {
  SSKEL_REQUIRE(history_ == History::kKeepAll);
  SSKEL_REQUIRE(r >= 1 && r <= static_cast<Round>(past_.size()));
  return past_[static_cast<std::size_t>(r - 1)];
}

}  // namespace sskel
