#include "skeleton/tracker.hpp"

#include "util/assert.hpp"

namespace sskel {

SkeletonTracker::SkeletonTracker(ProcId n, History history)
    : n_(n), history_(history), skeleton_(Digraph::complete(n)) {
  SSKEL_REQUIRE(n > 0);
}

void SkeletonTracker::observe(Round r, const Digraph& graph) {
  SSKEL_REQUIRE(graph.n() == n_);
  SSKEL_REQUIRE(r == round_ + 1);
  round_ = r;
  // The AND itself detects shrinkage — no pre-round copy, no graph
  // comparison. A no-op round costs exactly the intersection.
  if (skeleton_.intersect_with(graph)) {
    last_change_ = r;
    ++version_;
  }
  if (history_ == History::kKeepAll) past_.push_back(skeleton_);
}

const Digraph& SkeletonTracker::skeleton_at(Round r) const {
  SSKEL_REQUIRE(history_ == History::kKeepAll);
  SSKEL_REQUIRE(r >= 1 && r <= static_cast<Round>(past_.size()));
  return past_[static_cast<std::size_t>(r - 1)];
}

const SkeletonTracker::Analytics& SkeletonTracker::analytics() const {
  return analytics_.get(version_, [&] {
    Analytics a;
    a.scc = strongly_connected_components(skeleton_);
    for (int idx : root_component_indices(skeleton_, a.scc)) {
      a.roots.push_back(a.scc.components[static_cast<std::size_t>(idx)]);
    }
    return a;
  });
}

const SccDecomposition& SkeletonTracker::current_scc() const {
  return analytics().scc;
}

const std::vector<ProcSet>& SkeletonTracker::current_root_components() const {
  return analytics().roots;
}

}  // namespace sskel
