#include "skeleton/codec.hpp"

#include "util/assert.hpp"

namespace sskel {

std::vector<std::uint8_t> encode_graph(const LabeledDigraph& g) {
  std::vector<std::uint8_t> out;
  const ProcId n = g.n();
  put_varint(out, static_cast<std::uint64_t>(n));

  // Node bitmap.
  const std::size_t bitmap_bytes = (static_cast<std::size_t>(n) + 7) / 8;
  std::vector<std::uint8_t> bitmap(bitmap_bytes, 0);
  for (ProcId p : g.nodes()) {
    bitmap[static_cast<std::size_t>(p) / 8] |=
        static_cast<std::uint8_t>(1u << (static_cast<unsigned>(p) % 8));
  }
  out.insert(out.end(), bitmap.begin(), bitmap.end());

  put_varint(out, static_cast<std::uint64_t>(g.edge_count()));
  for (ProcId q : g.nodes()) {
    for (ProcId p : g.out_edges(q)) {
      put_varint(out, static_cast<std::uint64_t>(q));
      put_varint(out, static_cast<std::uint64_t>(p));
      put_varint(out, static_cast<std::uint64_t>(g.label(q, p)));
    }
  }
  return out;
}

LabeledDigraph decode_graph(const std::vector<std::uint8_t>& in) {
  std::size_t pos = 0;
  const ProcId n = static_cast<ProcId>(get_varint(in, pos));
  SSKEL_REQUIRE(n > 0);

  const std::size_t bitmap_bytes = (static_cast<std::size_t>(n) + 7) / 8;
  SSKEL_REQUIRE(pos + bitmap_bytes <= in.size());

  // An owner node is required by the constructor; find the first
  // present node, then add the rest.
  ProcId first_node = -1;
  for (ProcId p = 0; p < n && first_node == -1; ++p) {
    if (in[pos + static_cast<std::size_t>(p) / 8] &
        (1u << (static_cast<unsigned>(p) % 8))) {
      first_node = p;
    }
  }
  SSKEL_REQUIRE(first_node != -1);
  LabeledDigraph g(n, first_node);
  for (ProcId p = 0; p < n; ++p) {
    if (in[pos + static_cast<std::size_t>(p) / 8] &
        (1u << (static_cast<unsigned>(p) % 8))) {
      g.add_node(p);
    }
  }
  pos += bitmap_bytes;

  const std::uint64_t edges = get_varint(in, pos);
  for (std::uint64_t e = 0; e < edges; ++e) {
    const ProcId q = static_cast<ProcId>(get_varint(in, pos));
    const ProcId p = static_cast<ProcId>(get_varint(in, pos));
    const Round l = static_cast<Round>(get_varint(in, pos));
    g.set_edge(q, p, l);
  }
  SSKEL_REQUIRE(pos == in.size());
  return g;
}

std::int64_t encoded_graph_size(const LabeledDigraph& g) {
  const ProcId n = g.n();
  std::int64_t size = varint_size(static_cast<std::uint64_t>(n));
  size += static_cast<std::int64_t>((static_cast<std::size_t>(n) + 7) / 8);
  size += varint_size(static_cast<std::uint64_t>(g.edge_count()));
  for (ProcId q : g.nodes()) {
    for (ProcId p : g.out_edges(q)) {
      size += varint_size(static_cast<std::uint64_t>(q));
      size += varint_size(static_cast<std::uint64_t>(p));
      size += varint_size(static_cast<std::uint64_t>(g.label(q, p)));
    }
  }
  return size;
}

}  // namespace sskel
