#include "skeleton/codec.hpp"

#include "util/assert.hpp"

namespace sskel {

std::vector<std::uint8_t> encode_graph(const LabeledDigraph& g) {
  std::vector<std::uint8_t> out;
  const ProcId n = g.n();
  put_varint(out, static_cast<std::uint64_t>(n));

  // Node bitmap.
  const std::size_t bitmap_bytes = (static_cast<std::size_t>(n) + 7) / 8;
  std::vector<std::uint8_t> bitmap(bitmap_bytes, 0);
  for (ProcId p : g.nodes()) {
    bitmap[static_cast<std::size_t>(p) / 8] |=
        static_cast<std::uint8_t>(1u << (static_cast<unsigned>(p) % 8));
  }
  out.insert(out.end(), bitmap.begin(), bitmap.end());

  put_varint(out, static_cast<std::uint64_t>(g.edge_count()));
  for (ProcId q : g.nodes()) {
    for (ProcId p : g.out_edges(q)) {
      put_varint(out, static_cast<std::uint64_t>(q));
      put_varint(out, static_cast<std::uint64_t>(p));
      put_varint(out, static_cast<std::uint64_t>(g.label(q, p)));
    }
  }
  return out;
}

DecodeResult<LabeledDigraph> try_decode_graph(
    const std::vector<std::uint8_t>& in) {
  ByteReader reader(in.data(), in.size());
  // Range-check before the narrowing cast; the n x n label matrix
  // makes an unchecked n an allocation bomb, not just an alias bug.
  std::uint64_t n_wide = 0;
  if (!reader.read_varint_max(n_wide, kMaxLabeledDecodeUniverse, "graph n")) {
    return reader.error();
  }
  if (n_wide == 0) {
    return DecodeError{DecodeStatus::kValueOutOfRange, 0, "graph n"};
  }
  const ProcId n = static_cast<ProcId>(n_wide);

  const std::size_t bitmap_bytes = (static_cast<std::size_t>(n) + 7) / 8;
  if (!reader.require_bytes(bitmap_bytes, "node bitmap")) {
    return reader.error();
  }
  const std::uint8_t* bitmap = reader.cursor();
  const unsigned tail_bits = static_cast<unsigned>(n) % 8;
  if (tail_bits != 0 &&
      (bitmap[bitmap_bytes - 1] &
       static_cast<std::uint8_t>(0xffu << tail_bits))) {
    return DecodeError{DecodeStatus::kValueOutOfRange, reader.pos(),
                       "node bitmap"};
  }
  // The constructor requires an owner node; an all-zero bitmap never
  // comes out of encode_graph (a process graph always holds its owner).
  ProcId first_node = -1;
  for (ProcId p = 0; p < n && first_node == -1; ++p) {
    if (bitmap[static_cast<std::size_t>(p) / 8] &
        (1u << (static_cast<unsigned>(p) % 8))) {
      first_node = p;
    }
  }
  if (first_node == -1) {
    return DecodeError{DecodeStatus::kValueOutOfRange, reader.pos(),
                       "node bitmap"};
  }
  LabeledDigraph g(n, first_node);
  for (ProcId p = first_node + 1; p < n; ++p) {
    if (bitmap[static_cast<std::size_t>(p) / 8] &
        (1u << (static_cast<unsigned>(p) % 8))) {
      g.add_node(p);
    }
  }
  reader.skip(bitmap_bytes);

  std::uint64_t edges = 0;
  if (!reader.read_varint(edges, "edge count")) return reader.error();
  // Each edge costs at least three varint bytes; a count the remaining
  // bytes cannot hold is rejected up front.
  if (edges > reader.remaining() / 3) {
    return DecodeError{DecodeStatus::kLimitExceeded, reader.pos(),
                       "edge count"};
  }
  ProcId prev_q = -1;
  ProcId prev_p = -1;
  for (std::uint64_t e = 0; e < edges; ++e) {
    std::uint64_t q_wide = 0;
    std::uint64_t p_wide = 0;
    std::uint64_t label_wide = 0;
    const std::uint64_t max_id = static_cast<std::uint64_t>(n) - 1;
    if (!reader.read_varint_max(q_wide, max_id, "edge source") ||
        !reader.read_varint_max(p_wide, max_id, "edge target")) {
      return reader.error();
    }
    const std::size_t label_pos = reader.pos();
    if (!reader.read_varint_max(label_wide, INT32_MAX, "edge label")) {
      return reader.error();
    }
    if (label_wide == 0) {  // label 0 means "edge absent"
      return DecodeError{DecodeStatus::kValueOutOfRange, label_pos,
                         "edge label"};
    }
    const ProcId q = static_cast<ProcId>(q_wide);
    const ProcId p = static_cast<ProcId>(p_wide);
    // set_edge silently inserts endpoints, so an edge touching a node
    // outside the bitmap must be caught here, not below.
    if (!g.has_node(q) || !g.has_node(p)) {
      return DecodeError{DecodeStatus::kInvalidEdge, label_pos, "edge"};
    }
    // Strictly increasing (q, p) keeps the accepted language equal to
    // encode_graph's output: no duplicates, no reordered aliases.
    if (q < prev_q || (q == prev_q && p <= prev_p)) {
      return DecodeError{DecodeStatus::kValueOutOfRange, label_pos,
                         "edge order"};
    }
    prev_q = q;
    prev_p = p;
    g.set_edge(q, p, static_cast<Round>(label_wide));
  }
  if (!reader.at_end()) {
    return DecodeError{DecodeStatus::kTrailingBytes, reader.pos(), "graph"};
  }
  return g;
}

LabeledDigraph decode_graph(const std::vector<std::uint8_t>& in) {
  DecodeResult<LabeledDigraph> result = try_decode_graph(in);
  SSKEL_REQUIRE(result.ok());
  return std::move(result.value());
}

std::int64_t encoded_graph_size(const LabeledDigraph& g) {
  const ProcId n = g.n();
  std::int64_t size = varint_size(static_cast<std::uint64_t>(n));
  size += static_cast<std::int64_t>((static_cast<std::size_t>(n) + 7) / 8);
  size += varint_size(static_cast<std::uint64_t>(g.edge_count()));
  for (ProcId q : g.nodes()) {
    for (ProcId p : g.out_edges(q)) {
      size += varint_size(static_cast<std::uint64_t>(q));
      size += varint_size(static_cast<std::uint64_t>(p));
      size += varint_size(static_cast<std::uint64_t>(g.label(q, p)));
    }
  }
  return size;
}

}  // namespace sskel
