#include "skeleton/lemmas.hpp"

#include <optional>
#include <sstream>

#include "graph/reach.hpp"
#include "graph/scc.hpp"
#include "skeleton/intern.hpp"
#include "util/assert.hpp"

namespace sskel {

LemmaMonitor::LemmaMonitor(ProcId n, LemmaChecks checks)
    : n_(n),
      checks_(checks),
      tracker_(n, SkeletonTracker::History::kKeepAll),
      prev_estimates_(static_cast<std::size_t>(n), kNoValue),
      first_sc_(static_cast<std::size_t>(n), {0, LabeledDigraph()}) {
  SSKEL_REQUIRE(n > 0);
}

void LemmaMonitor::attach_intern(StructureInternTable* table) {
  intern_ = table;
  tracker_.attach_intern(table);
}

void LemmaMonitor::report(Round r, ProcId p, const std::string& what) {
  std::ostringstream os;
  os << "round " << r << ", p" << p << ": " << what;
  violations_.push_back(os.str());
}

const Digraph& LemmaMonitor::component_graph(ProcId p) {
  const SccDecomposition& scc = tracker_.current_scc();
  const std::int64_t gen = tracker_.analytics_recomputes();
  const std::vector<Digraph>& induced =
      induced_components_.refresh(tracker_.version(), [&](
                                      std::vector<Digraph>& graphs) {
        // One induced subgraph per component, plus a trailing empty
        // graph serving nodes absent from the skeleton. When we hold
        // the immediately preceding analytics generation, the
        // tracker's origin map tells us which components survived the
        // shrink with members and internal edges intact — their
        // induced graphs are moved over verbatim; only split/rebuilt
        // components run a fresh induced() pass.
        const std::vector<int>& origin = tracker_.component_origin();
        const bool patchable = induced_generation_ + 1 == gen &&
                               !graphs.empty() &&
                               origin.size() == scc.components.size();
        std::vector<Digraph> next;
        next.reserve(scc.components.size() + 1);
        for (std::size_t c = 0; c < scc.components.size(); ++c) {
          const int o = patchable ? origin[c] : -1;
          if (o >= 0 && static_cast<std::size_t>(o) + 1 < graphs.size()) {
            next.push_back(std::move(graphs[static_cast<std::size_t>(o)]));
          } else {
            next.push_back(tracker_.skeleton().induced(scc.components[c]));
          }
        }
        if (!graphs.empty()) {
          next.push_back(std::move(graphs.back()));  // stays empty forever
        } else {
          next.push_back(tracker_.skeleton().induced(ProcSet(n_)));
        }
        graphs = std::move(next);
      });
  induced_generation_ = gen;
  const int idx = scc.component_of[static_cast<std::size_t>(p)];
  const std::size_t slot =
      idx < 0 ? induced.size() - 1 : static_cast<std::size_t>(idx);
  return induced[slot];
}

void LemmaMonitor::observe_round(Round r, const Digraph& comm_graph,
                                 const std::vector<ProcessSnapshot>& snaps) {
  SSKEL_REQUIRE(snaps.size() == static_cast<std::size_t>(n_));
  tracker_.observe(r, comm_graph);
  const Digraph& skel = tracker_.skeleton();
  // Lemma 7's historical base decomposition, resolved lazily once per
  // round (it is the same graph for every process). With an intern
  // table attached the decomposition is served from the canonical
  // entry's memoized Tarjan — one pass per *distinct* base skeleton
  // for the whole run, instead of one per round.
  const SccDecomposition* base_scc = nullptr;
  std::optional<SccDecomposition> scc_base;  // private-path storage

  for (ProcId p = 0; p < n_; ++p) {
    const auto pi = static_cast<std::size_t>(p);
    const ProcessSnapshot& snap = snaps[pi];
    const LabeledDigraph& gp = snap.approx;

    if (checks_.observation1) {
      if (!gp.has_node(p)) report(r, p, "Obs.1: owner not in G_p");
      const Round min_l = gp.min_label();
      if (min_l != 0 && min_l <= r - n_) {
        report(r, p, "Obs.1: stale label " + std::to_string(min_l) +
                         " survives purge window");
      }
      if (gp.max_label() > r) {
        report(r, p, "Obs.1: label from the future");
      }
    }

    if (checks_.lemma3) {
      // PT_p variable must equal PT(p, r) = in-row of G∩r ...
      if (snap.pt != skel.in_neighbors(p)) {
        report(r, p, "Lemma 3: PT_p != PT(p, r); PT_p=" +
                         snap.pt.to_string() + " expected " +
                         skel.in_neighbors(p).to_string());
      }
      // ... and every q in PT(p, r) must carry a fresh (q -r-> p) edge
      // (Line 17 executed this round; merge can only confirm label r).
      for (ProcId q : skel.in_neighbors(p)) {
        if (gp.label(q, p) != r) {
          report(r, p, "Lemma 3: edge (q -r-> p) missing/stale for q=" +
                           std::to_string(q) + " label=" +
                           std::to_string(gp.label(q, p)));
        }
      }
    }

    if (checks_.lemma5 && r >= n_) {
      if (!component_graph(p).is_subgraph_of(gp.unlabeled())) {
        report(r, p, "Lemma 5: C_p^r not a subgraph of G_p^r");
      }
    }

    if (checks_.lemma6) {
      // Every edge (q' -s-> q) of G_p^r must certify q' in PT(q, s),
      // i.e. (q' -> q) in G∩s.
      for (ProcId q2 : gp.nodes()) {
        for (ProcId q : gp.nodes()) {
          const Round s = gp.label(q2, q);
          if (s == 0) continue;
          if (s < 1 || s > r) {
            report(r, p, "Lemma 6: label out of range");
            continue;
          }
          if (!tracker_.skeleton_at(s).has_edge(q2, q)) {
            report(r, p, "Lemma 6: edge (p" + std::to_string(q2) + " -" +
                             std::to_string(s) + "-> p" + std::to_string(q) +
                             ") not in skeleton of its label round");
          }
        }
      }
    }

    const bool sc = gp.strongly_connected();
    if (sc && first_sc_[pi].first == 0) {
      first_sc_[pi] = {r, gp};
    }

    if (checks_.lemma7 && sc && r >= n_) {
      // G_p^R strongly connected => G_p^R subseteq C_p^{R-n+1}. The
      // base skeleton is shared by every process this round, so its
      // decomposition is computed at most once per observe_round.
      const Round base = r - n_ + 1;
      const Digraph& skel_base = tracker_.skeleton_at(base);
      if (base_scc == nullptr) {
        if (intern_ != nullptr) {
          if (InternedStructure* entry = intern_->intern(skel_base)) {
            base_scc = &entry->scc();
            ++lemma7_interned_bases_;
          }
        }
        if (base_scc == nullptr) {  // detached, or the table is full
          scc_base = strongly_connected_components(skel_base);
          base_scc = &*scc_base;
          ++lemma7_private_bases_;
        }
      }
      const int idx = base_scc->component_of[static_cast<std::size_t>(p)];
      const ProcSet cp = idx < 0
                             ? ProcSet(n_)
                             : base_scc->components[static_cast<std::size_t>(idx)];
      const Digraph comp_graph = skel_base.induced(cp);
      if (!gp.unlabeled().is_subgraph_of(comp_graph)) {
        report(r, p, "Lemma 7: strongly connected G_p^r exceeds C_p^{r-n+1}");
      }
    }

    if (checks_.estimates) {
      // Observation 2: estimates never increase through Line 27.
      // A Line-12 adoption overwrites x_p with the sender's decision
      // value, which is outside the observation's scope — skip the
      // round where that adoption happens.
      const bool adopted_now =
          snap.decided_via_message && snap.decision_round == r;
      if (!adopted_now && prev_estimates_[pi] != kNoValue &&
          snap.estimate > prev_estimates_[pi]) {
        report(r, p, "Obs.2: estimate increased");
      }
      // Lemma 12: without a Line-12 decision, estimates are frozen
      // from round n on (x^n = x^{n+1} = ...).
      if (r > n_ && !snap.decided_via_message &&
          prev_estimates_[pi] != kNoValue &&
          snap.estimate != prev_estimates_[pi]) {
        report(r, p, "Lemma 12: estimate changed after round n");
      }
      prev_estimates_[pi] = snap.estimate;
    }
  }
}

void LemmaMonitor::finalize() {
  if (!checks_.theorem8) return;
  // Treat the final skeleton as G∩∞ (valid when the run extends past
  // source stabilization; the runner guarantees this).
  for (ProcId p = 0; p < n_; ++p) {
    const auto& [r, gp] = first_sc_[static_cast<std::size_t>(p)];
    if (r == 0 || r < n_) continue;  // Theorem 8 assumes R >= n
    const Digraph unl = gp.unlabeled();
    for (ProcId q : unl.nodes()) {
      if (!component_graph(q).is_subgraph_of(unl)) {
        report(r, p,
               "Theorem 8: strongly connected G_p^R misses part of C_q^inf "
               "for q=" + std::to_string(q));
      }
    }
  }
}

}  // namespace sskel
