// Run-wide structure interning: hash-consed skeleton approximations
// with shared analytics.
//
// After r_ST (and typically long before, under benign adversaries) all
// n per-process approximations of the stable skeleton converge to the
// same structure, yet each process recomputes the same keep-set,
// strong-connectivity verdict, and root decomposition on its private
// copy. The intern table maps each *distinct* structure — node set
// plus out-edge rows, labels ignored — to one canonical
// InternedStructure that owns the expensive analytics, so a round
// where all n processes hold the same skeleton pays for the analytics
// once instead of n times (DESIGN.md §10).
//
// Lookup is a seeded 128-bit fingerprint (graph/fingerprint.hpp) into
// a fixed bucket array, with every fingerprint hit confirmed by a full
// word-level structure compare — a colliding fingerprint costs one
// extra O(n^2/64) scan, never a wrong answer. Tables are single-
// threaded by design; the Monte-Carlo path shards one table per worker
// thread through InternDomain (no locks on the lookup path). A
// read-mostly InternGlobalTier on top of the shards shares *analytics*
// across workers: a shard that already paid for an SCC decomposition
// or a Psrcs subset search promotes an immutable snapshot, and other
// shards adopt it on their first miss instead of recomputing.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <utility>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/fingerprint.hpp"
#include "graph/scc.hpp"
#include "predicates/analysis.hpp"
#include "predicates/psrcs.hpp"
#include "util/types.hpp"

namespace sskel {

class LabeledDigraph;

/// Counters of one intern table (or the merged view of a domain's
/// shards). Reported through BENCH_*.json so tools/bench_diff.py
/// tracks them across runs.
struct InternStats {
  std::int64_t hits = 0;    // resolved to an existing entry
  std::int64_t misses = 0;  // created a new entry
  /// Chain entries whose fingerprint matched but whose structure
  /// compare failed — the full-equality fallback firing.
  std::int64_t fingerprint_collisions = 0;
  /// Lookups rejected because the table was at max_entries; callers
  /// fall back to their private computation path.
  std::int64_t overflow_rejects = 0;
  std::int64_t entries = 0;
  /// Analytics actually computed across all entries (each at most
  /// once per entry/owner-component/k): the denominator that makes the
  /// hit counters meaningful.
  std::int64_t scc_computes = 0;
  std::int64_t keep_computes = 0;
  std::int64_t psrcs_computes = 0;
  /// Cross-shard promotion (DESIGN.md §12): shard entries with
  /// materialized analytics accepted into the domain's global tier,
  /// and shard misses served by adopting a global snapshot instead of
  /// recomputing from scratch.
  std::int64_t promotions = 0;
  std::int64_t promotion_hits = 0;

  InternStats& operator+=(const InternStats& other);
};

/// One canonical skeleton structure with lazily materialized shared
/// analytics. Entries are owned by a StructureInternTable, have stable
/// addresses for the table's lifetime, and are immutable in structure;
/// all analytics are memoized on first query. Not thread-safe — a
/// table and its entries belong to one thread (see InternDomain).
class InternedStructure {
 public:
  InternedStructure(ProcId n, Fingerprint128 fp, ProcSet nodes,
                    std::vector<ProcSet> rows);

  [[nodiscard]] ProcId n() const { return n_; }
  [[nodiscard]] const Fingerprint128& fingerprint() const { return fp_; }
  [[nodiscard]] const ProcSet& nodes() const { return nodes_; }
  [[nodiscard]] const ProcSet& row(ProcId q) const {
    return rows_[static_cast<std::size_t>(q)];
  }

  /// The structure as an unlabeled Digraph (materialized on first use;
  /// one counted Digraph construction per entry, never per round).
  [[nodiscard]] const Digraph& graph();

  /// Tarjan decomposition / root components of the structure.
  [[nodiscard]] const SccDecomposition& scc();
  [[nodiscard]] const std::vector<int>& root_indices();
  [[nodiscard]] const std::vector<ProcSet>& root_components();

  /// Line 28 on the *unpruned* structure: one SCC covering a nonempty
  /// node set.
  [[nodiscard]] bool strongly_connected();

  /// Line 25's keep-set for `owner` (must be a node): the set of nodes
  /// that reach `owner`. Bit-equal to
  /// LabeledDigraph::prune_not_reaching(owner) on the same structure.
  /// Served from the condensation's reach closure, cached per owner
  /// *component* — processes in one SCC share the answer.
  [[nodiscard]] const ProcSet& keep_set(ProcId owner);

  /// Line 28 on the graph *after* the Line-25 prune for `owner`,
  /// without materializing the pruned graph: the pruned graph (induced
  /// on keep_set) is strongly connected iff keep_set(owner) equals
  /// owner's SCC — "⊇" holds always (the SCC reaches owner), and any
  /// node reaching owner outside the SCC is a node the SCC cannot
  /// reach back. A cardinality compare therefore decides it.
  [[nodiscard]] bool pruned_strongly_connected(ProcId owner);

  /// check_psrcs_exact(graph(), k), memoized per k. The reference is
  /// invalidated by a later psrcs_exact call on this entry (vector
  /// growth) — read it before re-querying.
  [[nodiscard]] const PsrcsCheck& psrcs_exact(int k);

  [[nodiscard]] std::int64_t scc_computes() const { return scc_computes_; }
  [[nodiscard]] std::int64_t keep_computes() const { return keep_computes_; }
  [[nodiscard]] std::int64_t psrcs_computes() const {
    return psrcs_computes_;
  }

  /// Whether this entry carries analytics worth sharing across shards
  /// (the global-tier promotion policy: structure alone is cheap to
  /// rebuild; SCC decompositions and Psrcs verdicts are not).
  [[nodiscard]] bool has_shared_analytics() const {
    return scc_ready_ || !psrcs_by_k_.empty();
  }

  /// Zeroes the analytics-compute counters. Used on clones entering
  /// the global tier so adopted copies never double-count work that
  /// the originating shard already reported.
  void reset_compute_counters() {
    scc_computes_ = 0;
    keep_computes_ = 0;
    psrcs_computes_ = 0;
  }

 private:
  void ensure_graph();
  void ensure_scc();
  /// Builds reachers_[c] = components that reach component c
  /// (including c), by one pass over the components in decreasing
  /// index order — reverse-topological order guarantees an edge
  /// d -> c implies c < d, so reachers_[d] is complete when c needs
  /// it.
  void ensure_reach_closure();

  ProcId n_;
  Fingerprint128 fp_;
  ProcSet nodes_;
  std::vector<ProcSet> rows_;

  bool graph_ready_ = false;
  Digraph graph_;
  bool scc_ready_ = false;
  SccDecomposition scc_;
  std::vector<int> root_indices_;
  std::vector<ProcSet> root_components_;
  bool closure_ready_ = false;
  std::vector<ProcSet> reachers_;  // universe = component count
  std::vector<ProcSet> keep_by_comp_;
  std::vector<char> keep_ready_;
  std::vector<std::pair<int, PsrcsCheck>> psrcs_by_k_;

  std::int64_t scc_computes_ = 0;
  std::int64_t keep_computes_ = 0;
  std::int64_t psrcs_computes_ = 0;
};

struct InternTableOptions {
  /// log2 of the bucket count. Fixed at construction (no rehash: the
  /// max_entries cap bounds the load factor, and chains absorb skew).
  int bucket_bits = 12;
  /// Entry cap; intern() returns nullptr once reached (callers keep
  /// their private path). An entry is O(n^2/8) bytes, so the default
  /// bounds a shard at ~35 MB even at n = 512.
  std::size_t max_entries = 1024;
  /// Fingerprint seed; distinct seeds give independent hash functions.
  std::uint64_t seed = 0x736b656c65746f6eULL;  // "skeleton"
  /// Test seam: replace every fingerprint with a constant so all
  /// entries land in one bucket with equal keys, forcing lookups
  /// through the full-equality fallback.
  bool degrade_fingerprint_for_tests = false;
};

/// Read-mostly global tier over a domain's per-worker shards. A shard
/// that materializes expensive analytics (SCC decomposition, Psrcs
/// verdicts) *offers* an immutable snapshot of the entry here; a shard
/// that misses on a structure first consults the tier and *adopts* the
/// snapshot — analytics included — instead of recomputing from
/// scratch. Entries are immutable once offered (shared_ptr<const>),
/// so readers only pay a shared lock plus a fingerprint scan; the
/// exclusive lock is taken only on offers, which happen at most once
/// per (shard, entry). First offer per fingerprint wins.
class InternGlobalTier {
 public:
  /// Immutable snapshot for the fingerprint, or nullptr. The caller
  /// must still verify same-structure before adopting (a colliding
  /// fingerprint must not smuggle in a wrong graph's analytics).
  [[nodiscard]] std::shared_ptr<const InternedStructure> lookup(
      const Fingerprint128& fp) const;

  /// Publishes a snapshot; a snapshot already present for the same
  /// fingerprint is kept (first writer wins). Returns whether this
  /// call inserted.
  bool offer(std::shared_ptr<const InternedStructure> snapshot);

  [[nodiscard]] std::size_t entry_count() const;

 private:
  mutable std::shared_mutex mu_;
  std::vector<std::shared_ptr<const InternedStructure>> entries_;
};

/// Hash-consing table from structure to canonical InternedStructure.
/// Entries have stable addresses (unique_ptr storage) and live as long
/// as the table. Single-threaded; see InternDomain for the sharded
/// Monte-Carlo use.
class StructureInternTable {
 public:
  explicit StructureInternTable(InternTableOptions options = {});

  StructureInternTable(const StructureInternTable&) = delete;
  StructureInternTable& operator=(const StructureInternTable&) = delete;

  /// Resolves the structure of `g` to its canonical entry, creating it
  /// on first sight. Returns nullptr when the table is full
  /// (overflow_rejects counts those; callers fall back to private
  /// computation).
  InternedStructure* intern(const Digraph& g);

  /// Same, keyed on the *structure* of a labeled graph (labels
  /// ignored) — a labeled and an unlabeled graph with the same nodes
  /// and edges resolve to the same entry.
  InternedStructure* intern(const LabeledDigraph& g);

  [[nodiscard]] std::size_t entry_count() const { return entries_.size(); }

  /// Lookup counters plus the entry-level analytics counters summed on
  /// demand.
  [[nodiscard]] InternStats stats() const;

  [[nodiscard]] const InternTableOptions& options() const { return options_; }

  /// Attaches the table to a cross-shard tier (nullptr detaches). The
  /// tier must outlive the table; InternDomain wires each shard to the
  /// domain-owned tier on creation.
  void set_global_tier(InternGlobalTier* tier) { tier_ = tier; }

 private:
  /// Type-erased view of a candidate structure (no copy until a miss
  /// decides to create the entry).
  struct RowSource {
    ProcId n;
    const ProcSet* nodes;
    const ProcSet& (*row)(const void* ctx, ProcId q);
    const void* ctx;
  };

  [[nodiscard]] Fingerprint128 fingerprint_of(const RowSource& src) const;
  [[nodiscard]] static bool same_structure(const InternedStructure& entry,
                                           const RowSource& src);
  InternedStructure* resolve(const RowSource& src);
  /// Hit-path hook: offers entry `idx` to the tier once it carries
  /// analytics worth sharing (at most one offer per entry).
  void maybe_promote(std::size_t idx);

  InternTableOptions options_;
  std::size_t bucket_mask_;
  std::vector<int> buckets_;  // head entry index per bucket, -1 empty
  std::vector<int> next_;     // chain link per entry, parallel to entries_
  std::vector<std::unique_ptr<InternedStructure>> entries_;
  std::vector<char> offered_;  // entry already offered to the tier
  InternGlobalTier* tier_ = nullptr;
  InternStats stats_;  // lookup counters only; stats() adds entry counters
};

/// A run-scoped family of intern tables, one shard per worker thread,
/// so the WorkerPool Monte-Carlo path shares structures *within* a
/// worker without any lock on the lookup path. local() hands the
/// calling thread its shard (created on first use behind a mutex,
/// then served from a thread-local cache keyed by a globally unique
/// domain id — never a dangling pointer, even across domain
/// lifetimes at the same address). merged_stats() sums the shards.
class InternDomain {
 public:
  explicit InternDomain(InternTableOptions options = {});

  InternDomain(const InternDomain&) = delete;
  InternDomain& operator=(const InternDomain&) = delete;

  /// This thread's shard. The reference stays valid for the domain's
  /// lifetime; the domain must outlive all users (run_scenario_trials
  /// keeps it alive across the parallel region).
  [[nodiscard]] StructureInternTable& local();

  [[nodiscard]] std::size_t shard_count() const;
  [[nodiscard]] InternStats merged_stats() const;

  /// The domain-owned cross-shard tier every shard is wired to.
  [[nodiscard]] const InternGlobalTier& global_tier() const { return tier_; }

 private:
  std::uint64_t id_;
  InternTableOptions options_;
  InternGlobalTier tier_;
  mutable std::mutex mu_;
  std::vector<std::pair<std::thread::id, std::unique_ptr<StructureInternTable>>>
      shards_;
};

/// Adapts a shard into a SkeletonPredicateCache shared-resolution
/// hook: the provider interns the monitored skeleton (re-fingerprinted
/// only on version bumps, like the cache itself) and serves Psrcs(k)
/// verdicts from the entry, so identical stable skeletons across
/// trials share one subset search. Same single-tracker discipline as
/// SkeletonPredicateCache; the table must outlive the provider.
[[nodiscard]] SkeletonPredicateCache::SharedPsrcsProvider
make_interned_psrcs_provider(StructureInternTable& table);

}  // namespace sskel
