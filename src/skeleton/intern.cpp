#include "skeleton/intern.hpp"

#include <atomic>

#include "graph/labeled_digraph.hpp"
#include "util/assert.hpp"

namespace sskel {

InternStats& InternStats::operator+=(const InternStats& other) {
  hits += other.hits;
  misses += other.misses;
  fingerprint_collisions += other.fingerprint_collisions;
  overflow_rejects += other.overflow_rejects;
  entries += other.entries;
  scc_computes += other.scc_computes;
  keep_computes += other.keep_computes;
  psrcs_computes += other.psrcs_computes;
  promotions += other.promotions;
  promotion_hits += other.promotion_hits;
  return *this;
}

std::shared_ptr<const InternedStructure> InternGlobalTier::lookup(
    const Fingerprint128& fp) const {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  for (const auto& entry : entries_) {
    if (entry->fingerprint() == fp) return entry;
  }
  return nullptr;
}

bool InternGlobalTier::offer(
    std::shared_ptr<const InternedStructure> snapshot) {
  SSKEL_REQUIRE(snapshot != nullptr);
  const std::unique_lock<std::shared_mutex> lock(mu_);
  for (const auto& entry : entries_) {
    if (entry->fingerprint() == snapshot->fingerprint()) return false;
  }
  entries_.push_back(std::move(snapshot));
  return true;
}

std::size_t InternGlobalTier::entry_count() const {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  return entries_.size();
}

InternedStructure::InternedStructure(ProcId n, Fingerprint128 fp,
                                     ProcSet nodes, std::vector<ProcSet> rows)
    : n_(n), fp_(fp), nodes_(std::move(nodes)), rows_(std::move(rows)) {
  SSKEL_REQUIRE(static_cast<ProcId>(rows_.size()) == n_);
}

void InternedStructure::ensure_graph() {
  if (graph_ready_) return;
  Digraph g(n_);
  for (ProcId p = 0; p < n_; ++p) {
    if (!nodes_.contains(p)) g.remove_node(p);
  }
  for (ProcId q : nodes_) {
    for (ProcId p : rows_[static_cast<std::size_t>(q)]) {
      g.add_edge(q, p);
    }
  }
  graph_ = std::move(g);
  graph_ready_ = true;
}

const Digraph& InternedStructure::graph() {
  ensure_graph();
  return graph_;
}

void InternedStructure::ensure_scc() {
  if (scc_ready_) return;
  ensure_graph();
  scc_ = strongly_connected_components(graph_);
  root_indices_ = root_component_indices(graph_, scc_);
  root_components_.clear();
  for (const int idx : root_indices_) {
    root_components_.push_back(
        scc_.components[static_cast<std::size_t>(idx)]);
  }
  scc_ready_ = true;
  ++scc_computes_;
}

const SccDecomposition& InternedStructure::scc() {
  ensure_scc();
  return scc_;
}

const std::vector<int>& InternedStructure::root_indices() {
  ensure_scc();
  return root_indices_;
}

const std::vector<ProcSet>& InternedStructure::root_components() {
  ensure_scc();
  return root_components_;
}

bool InternedStructure::strongly_connected() {
  ensure_scc();
  return scc_.count() == 1;
}

void InternedStructure::ensure_reach_closure() {
  if (closure_ready_) return;
  ensure_scc();
  const int comp_count = scc_.count();
  const ProcId universe = static_cast<ProcId>(comp_count);
  // in_edges[c] = components with a condensation edge into c. Reverse
  // topological order means every such predecessor has a *larger*
  // index.
  std::vector<ProcSet> in_edges(static_cast<std::size_t>(comp_count),
                                ProcSet(universe));
  for (ProcId q : nodes_) {
    const int cq = scc_.component_of[static_cast<std::size_t>(q)];
    for (ProcId p : rows_[static_cast<std::size_t>(q)]) {
      const int cp = scc_.component_of[static_cast<std::size_t>(p)];
      if (cp != cq) {
        in_edges[static_cast<std::size_t>(cp)].insert(static_cast<ProcId>(cq));
      }
    }
  }
  reachers_.assign(static_cast<std::size_t>(comp_count), ProcSet(universe));
  for (int c = comp_count - 1; c >= 0; --c) {
    ProcSet& reach = reachers_[static_cast<std::size_t>(c)];
    reach.insert(static_cast<ProcId>(c));
    for (ProcId d : in_edges[static_cast<std::size_t>(c)]) {
      reach |= reachers_[static_cast<std::size_t>(d)];
    }
  }
  closure_ready_ = true;
}

const ProcSet& InternedStructure::keep_set(ProcId owner) {
  SSKEL_REQUIRE(nodes_.contains(owner));
  ensure_reach_closure();
  if (keep_ready_.empty()) {
    keep_ready_.assign(static_cast<std::size_t>(scc_.count()), 0);
    keep_by_comp_.assign(static_cast<std::size_t>(scc_.count()), ProcSet());
  }
  const std::size_t co =
      static_cast<std::size_t>(scc_.component_of[static_cast<std::size_t>(owner)]);
  if (!keep_ready_[co]) {
    ProcSet keep(n_);
    for (ProcId d : reachers_[co]) {
      keep |= scc_.components[static_cast<std::size_t>(d)];
    }
    keep_by_comp_[co] = std::move(keep);
    keep_ready_[co] = 1;
    ++keep_computes_;
  }
  return keep_by_comp_[co];
}

bool InternedStructure::pruned_strongly_connected(ProcId owner) {
  const ProcSet& keep = keep_set(owner);
  const std::size_t co =
      static_cast<std::size_t>(scc_.component_of[static_cast<std::size_t>(owner)]);
  return keep.count() == scc_.components[co].count();
}

const PsrcsCheck& InternedStructure::psrcs_exact(int k) {
  for (const auto& [cached_k, check] : psrcs_by_k_) {
    if (cached_k == k) return check;
  }
  ensure_graph();
  psrcs_by_k_.emplace_back(k, check_psrcs_exact(graph_, k));
  ++psrcs_computes_;
  return psrcs_by_k_.back().second;
}

StructureInternTable::StructureInternTable(InternTableOptions options)
    : options_(options),
      bucket_mask_((std::size_t{1} << options.bucket_bits) - 1),
      buckets_(std::size_t{1} << options.bucket_bits, -1) {
  SSKEL_REQUIRE(options.bucket_bits >= 0 && options.bucket_bits <= 24);
}

Fingerprint128 StructureInternTable::fingerprint_of(
    const RowSource& src) const {
  if (options_.degrade_fingerprint_for_tests) {
    return Fingerprint128{0x5eedULL, 0x5eedULL};
  }
  FingerprintBuilder b(options_.seed);
  b.mix_word(static_cast<std::uint64_t>(src.n));
  b.mix_set(*src.nodes);
  for (ProcId q = 0; q < src.n; ++q) {
    b.mix_set(src.row(src.ctx, q));
  }
  return b.finish();
}

bool StructureInternTable::same_structure(const InternedStructure& entry,
                                          const RowSource& src) {
  if (entry.n() != src.n) return false;
  if (!(entry.nodes() == *src.nodes)) return false;
  for (ProcId q = 0; q < src.n; ++q) {
    if (!(entry.row(q) == src.row(src.ctx, q))) return false;
  }
  return true;
}

void StructureInternTable::maybe_promote(std::size_t idx) {
  if (tier_ == nullptr || offered_[idx] != 0) return;
  InternedStructure& entry = *entries_[idx];
  // Nothing shareable yet (the caller may compute analytics after this
  // lookup returns) — leave the flag clear so a later hit re-checks.
  if (!entry.has_shared_analytics()) return;
  auto snapshot = std::make_shared<InternedStructure>(entry);
  // The originating shard already reported this work; the snapshot
  // must not report it again through an adopting shard's stats().
  snapshot->reset_compute_counters();
  tier_->offer(std::move(snapshot));
  offered_[idx] = 1;
  ++stats_.promotions;
}

InternedStructure* StructureInternTable::resolve(const RowSource& src) {
  const Fingerprint128 fp = fingerprint_of(src);
  const std::size_t bucket = static_cast<std::size_t>(fp.lo) & bucket_mask_;
  for (int i = buckets_[bucket]; i >= 0;
       i = next_[static_cast<std::size_t>(i)]) {
    InternedStructure& entry = *entries_[static_cast<std::size_t>(i)];
    if (entry.fingerprint() == fp) {
      if (same_structure(entry, src)) {
        ++stats_.hits;
        maybe_promote(static_cast<std::size_t>(i));
        return &entry;
      }
      ++stats_.fingerprint_collisions;
    }
  }
  if (entries_.size() >= options_.max_entries) {
    ++stats_.overflow_rejects;
    return nullptr;
  }
  // Shard miss: adopt a promoted snapshot — analytics included — when
  // another shard has already interned this structure. The full
  // structure compare keeps a colliding fingerprint from smuggling in
  // the wrong graph's analytics.
  std::unique_ptr<InternedStructure> fresh;
  bool adopted = false;
  if (tier_ != nullptr) {
    if (const auto snapshot = tier_->lookup(fp);
        snapshot != nullptr && same_structure(*snapshot, src)) {
      fresh = std::make_unique<InternedStructure>(*snapshot);
      adopted = true;
    }
  }
  if (fresh == nullptr) {
    std::vector<ProcSet> rows;
    rows.reserve(static_cast<std::size_t>(src.n));
    for (ProcId q = 0; q < src.n; ++q) {
      rows.push_back(src.row(src.ctx, q));
    }
    fresh = std::make_unique<InternedStructure>(src.n, fp, *src.nodes,
                                                std::move(rows));
  }
  entries_.push_back(std::move(fresh));
  next_.push_back(buckets_[bucket]);
  buckets_[bucket] = static_cast<int>(entries_.size() - 1);
  // An adopted entry came *from* the tier; never re-offer it.
  offered_.push_back(adopted ? 1 : 0);
  ++stats_.misses;
  if (adopted) ++stats_.promotion_hits;
  return entries_.back().get();
}

InternedStructure* StructureInternTable::intern(const Digraph& g) {
  const RowSource src{
      g.n(), &g.nodes(),
      [](const void* ctx, ProcId q) -> const ProcSet& {
        return static_cast<const Digraph*>(ctx)->out_neighbors(q);
      },
      &g};
  return resolve(src);
}

InternedStructure* StructureInternTable::intern(const LabeledDigraph& g) {
  const RowSource src{
      g.n(), &g.nodes(),
      [](const void* ctx, ProcId q) -> const ProcSet& {
        return static_cast<const LabeledDigraph*>(ctx)->out_edges(q);
      },
      &g};
  return resolve(src);
}

InternStats StructureInternTable::stats() const {
  InternStats total = stats_;
  total.entries = static_cast<std::int64_t>(entries_.size());
  for (const auto& entry : entries_) {
    total.scc_computes += entry->scc_computes();
    total.keep_computes += entry->keep_computes();
    total.psrcs_computes += entry->psrcs_computes();
  }
  return total;
}

namespace {

std::uint64_t next_domain_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

InternDomain::InternDomain(InternTableOptions options)
    : id_(next_domain_id()), options_(options) {}

StructureInternTable& InternDomain::local() {
  // Single-entry thread-local cache: a worker inside one Monte-Carlo
  // region always asks for the same domain, so the common case is one
  // id compare. The id is globally unique (never reused), so a cached
  // pointer from a destroyed domain can never be returned for a new
  // domain allocated at the same address.
  struct Cached {
    std::uint64_t domain_id = 0;
    StructureInternTable* table = nullptr;
  };
  thread_local Cached cached;
  if (cached.domain_id == id_) return *cached.table;

  const std::thread::id me = std::this_thread::get_id();
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [tid, table] : shards_) {
    if (tid == me) {
      cached = {id_, table.get()};
      return *cached.table;
    }
  }
  shards_.emplace_back(me, std::make_unique<StructureInternTable>(options_));
  shards_.back().second->set_global_tier(&tier_);
  cached = {id_, shards_.back().second.get()};
  return *cached.table;
}

std::size_t InternDomain::shard_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return shards_.size();
}

InternStats InternDomain::merged_stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  InternStats total;
  for (const auto& [tid, table] : shards_) {
    total += table->stats();
  }
  return total;
}

SkeletonPredicateCache::SharedPsrcsProvider make_interned_psrcs_provider(
    StructureInternTable& table) {
  struct State {
    bool valid = false;
    std::uint64_t version = 0;
    InternedStructure* entry = nullptr;
  };
  auto state = std::make_shared<State>();
  return [&table, state](const Digraph& skeleton, std::uint64_t version,
                         int k) -> const PsrcsCheck* {
    if (!state->valid || state->version != version) {
      state->entry = table.intern(skeleton);
      state->version = version;
      state->valid = true;
    }
    if (state->entry == nullptr) return nullptr;
    return &state->entry->psrcs_exact(k);
  };
}

}  // namespace sskel
