// One-call harness: Algorithm 1 running over the simulated partially
// synchronous network instead of an abstract GraphSource.
//
// This closes the loop from the paper's abstract model back to a
// concrete system: timely links realize the hub cover that implies
// Psrcs(k) on the *derived* skeleton, and the decisions obey the same
// k ceiling — measured end to end through real (simulated) message
// timing, deadlines and discards.
#pragma once

#include <vector>

#include "graph/digraph.hpp"
#include "kset/skeleton_kset.hpp"
#include "kset/verify.hpp"
#include "net/driver.hpp"

namespace sskel {

struct NetKSetConfig {
  int k = 1;
  NetConfig net;
  /// Proposals; empty = default distinct values.
  std::vector<Value> proposals;
  DecisionGuard guard = DecisionGuard::kAfterRoundN;
  Round max_rounds = 0;  // 0 -> 8n + 32
};

struct NetKSetReport {
  ProcId n = 0;
  std::vector<Outcome> outcomes;
  KSetVerdict verdict;
  bool all_decided = false;
  Round rounds_executed = 0;
  Round last_decision_round = 0;
  int distinct_values = 0;

  /// Skeleton of the *derived* communication graphs.
  Digraph final_skeleton;
  Round skeleton_last_change = 0;

  /// Network-level accounting.
  std::int64_t delivered_messages = 0;
  std::int64_t late_messages = 0;
  std::int64_t lost_messages = 0;
  SimTime wall_clock = 0;  // simulated microseconds
};

/// Runs Algorithm 1 over the network defined by `links`.
[[nodiscard]] NetKSetReport run_kset_over_network(const LinkMatrix& links,
                                                  const NetKSetConfig& config);

}  // namespace sskel
