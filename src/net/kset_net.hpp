// One-call harness: Algorithm 1 running over the simulated partially
// synchronous network instead of an abstract GraphSource.
//
// This closes the loop from the paper's abstract model back to a
// concrete system: timely links realize the hub cover that implies
// Psrcs(k) on the *derived* skeleton, and the decisions obey the same
// k ceiling — measured end to end through real (simulated) message
// timing, deadlines and discards. The run itself is the shared
// run_kset_on_engine() over a NetRoundDriver, so every KSetRunReport
// field (lemma monitoring, Psrcs analysis, byte accounting) is
// available on the network substrate too; this wrapper only adds the
// network-level accounting on top.
#pragma once

#include "kset/runner.hpp"
#include "net/driver.hpp"

namespace sskel {

struct NetKSetConfig {
  /// The full runner configuration (k, proposals, guard, max_rounds,
  /// tail, lemma monitor, byte measurement) — identical to the
  /// simulator entry point.
  KSetRunConfig run;
  /// The network substrate: round duration D, clock skews, seed.
  NetConfig net;
};

struct NetKSetReport {
  /// The substrate-agnostic report, exactly as run_kset() produces it.
  KSetRunReport kset;

  /// Network-level accounting.
  std::int64_t delivered_messages = 0;
  std::int64_t late_messages = 0;
  std::int64_t lost_messages = 0;
  /// Ring-plane flow control: publish attempts that found the
  /// receiver's ring out of credits (0 on the event-queue plane, and
  /// on the ring plane whenever ring_depth covers the skew window).
  std::int64_t credit_stalls = 0;
  /// Frags that crossed a ring (0 on the event-queue plane).
  std::int64_t ring_frags = 0;
  SimTime wall_clock = 0;  // simulated microseconds
};

/// Runs Algorithm 1 over the network defined by `links`.
[[nodiscard]] NetKSetReport run_kset_over_network(const LinkMatrix& links,
                                                  const NetKSetConfig& config);

}  // namespace sskel
