// Per-link delay models for the partially synchronous network.
//
// The paper's round model descends from partial synchrony (Dwork/
// Lynch/Stockmeyer; Santoro/Widmayer): whether an edge (q -> p)
// appears in the round-r communication graph is decided purely by
// whether q's round-r message arrives before p closes the round. The
// link layer makes that concrete:
//
//   kTimely — delay uniform in [min_delay, max_delay]; with
//             max_delay + skew slack below the round duration the
//             link is *perpetually* timely, i.e. a stable skeleton
//             edge. These links realize the hub covers behind
//             Psrcs(k).
//   kFlaky  — on time with probability on_time_probability, otherwise
//             late (delivered after the deadline and discarded) or
//             dropped. Flaky links produce the transient edges that
//             make skeletons shrink.
//   kDown   — never delivers.
//
// Self-links are implicitly perfect (a process always hears itself).
#pragma once

#include <vector>

#include "net/event_queue.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace sskel {

enum class LinkKind { kTimely, kFlaky, kDown };

struct LinkSpec {
  LinkKind kind = LinkKind::kDown;
  SimTime min_delay = 100;   // microseconds
  SimTime max_delay = 900;
  /// kFlaky only: probability of an on-time delivery attempt.
  double on_time_probability = 0.5;
};

/// Sentinel delay: the message never arrives.
inline constexpr SimTime kLost = -1;

/// Samples the delivery delay for one message on a link.
/// `deadline_slack` is the delay budget that still counts as on time
/// for this (sender, receiver) pair; flaky links use it to materialize
/// "late" as a concrete arrival past the deadline. Inline: the round
/// drivers draw one sample per link per round, making this (with the
/// Rng step it wraps) the broadcast loop's per-link cost.
[[nodiscard]] SimTime sample_delay_slow(const LinkSpec& spec,
                                        SimTime deadline_slack, Rng& rng);
[[nodiscard]] inline SimTime sample_delay(const LinkSpec& spec,
                                          SimTime deadline_slack, Rng& rng) {
  if (spec.kind == LinkKind::kTimely) {
    SSKEL_REQUIRE(spec.min_delay >= 0);
    SSKEL_REQUIRE(spec.max_delay >= spec.min_delay);
    const std::uint64_t span =
        static_cast<std::uint64_t>(spec.max_delay - spec.min_delay) + 1;
    return spec.min_delay + static_cast<SimTime>(rng.next_below(span));
  }
  return sample_delay_slow(spec, deadline_slack, rng);
}

/// Dense n x n link configuration (diagonal ignored).
class LinkMatrix {
 public:
  explicit LinkMatrix(ProcId n);

  [[nodiscard]] ProcId n() const { return n_; }
  [[nodiscard]] const LinkSpec& at(ProcId q, ProcId p) const {
    SSKEL_REQUIRE(q >= 0 && q < n_ && p >= 0 && p < n_);
    return specs_[static_cast<std::size_t>(q) * static_cast<std::size_t>(n_) +
                  static_cast<std::size_t>(p)];
  }
  void set(ProcId q, ProcId p, const LinkSpec& spec);

  /// All links timely with the given delay range.
  static LinkMatrix all_timely(ProcId n, SimTime min_delay,
                               SimTime max_delay);

  /// All links flaky (default spec), then callers upgrade the stable
  /// structure to timely.
  static LinkMatrix all_flaky(ProcId n, double on_time_probability);

  /// Upgrades every edge of `stable` (excluding self-loops) to a
  /// timely link with the given delays. The usual recipe: start from
  /// all_flaky / all-down, upgrade a hub-cover skeleton.
  void upgrade_to_timely(const class Digraph& stable, SimTime min_delay,
                         SimTime max_delay);

 private:
  ProcId n_;
  std::vector<LinkSpec> specs_;
};

}  // namespace sskel
