// A deterministic discrete-event queue.
//
// The net substrate simulates a partially synchronous message-passing
// network under the round abstraction (see net/driver.hpp). Events are
// ordered by simulated time with FIFO tie-breaking on equal
// timestamps (insertion sequence), which keeps runs bit-deterministic
// regardless of how many events collide on a timestamp.
//
// Handlers are stored in a fixed-capacity InlineCallable rather than a
// std::function: every capture lives inside the entry, so scheduling
// an event never allocates. The heap is an explicit vector managed
// with std::push_heap/pop_heap because std::priority_queue requires
// copyable elements and InlineCallable is move-only.
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.hpp"
#include "util/inline_callable.hpp"
#include "util/types.hpp"

namespace sskel {

class EventQueue {
 public:
  /// Capacity covers the driver's delivery closures (a this-pointer,
  /// two ProcIds, a Round, and a payload slot index) with headroom for
  /// test lambdas; anything larger fails to compile at the schedule
  /// call site rather than silently reintroducing heap traffic.
  static constexpr std::size_t kHandlerCapacity = 48;
  using Handler = InlineCallable<kHandlerCapacity>;

  /// Schedules `fn` at absolute time `t` (>= now).
  void schedule(SimTime t, Handler fn);

  /// Current simulated time (time of the last executed event).
  [[nodiscard]] SimTime now() const { return now_; }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

  // --- external-timer integration ----------------------------------------
  //
  // A driver may run some of its timers outside the heap (e.g. the
  // ring plane's strictly periodic round closes live on a calendar,
  // not in the heap). Such timers still participate in the queue's
  // deterministic (time, seq) order: they draw their tie-breaking seq
  // from take_seq() at the moment they would have been scheduled,
  // compare against peek_key() to decide who fires next, and report
  // their firing through advance_now().

  /// (time, seq) key of the earliest pending event; false when empty.
  [[nodiscard]] bool peek_key(SimTime& t, std::uint64_t& seq) const {
    if (heap_.empty()) return false;
    t = heap_.front().time;
    seq = heap_.front().seq;
    return true;
  }

  /// Allocates the next scheduling sequence number without enqueuing.
  [[nodiscard]] std::uint64_t take_seq() { return next_seq_++; }

  /// Advances the clock to `t` (>= now) for an externally-run timer.
  void advance_now(SimTime t) {
    SSKEL_REQUIRE(t >= now_);
    now_ = t;
  }

  /// Executes the earliest event; returns false when none is pending.
  bool step();

  /// Executes events until the queue drains or `limit` events ran.
  /// Returns the number of events executed.
  std::int64_t run(std::int64_t limit);

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    Handler fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
  SimTime now_ = 0;
};

}  // namespace sskel
