// A deterministic discrete-event queue.
//
// The net substrate simulates a partially synchronous message-passing
// network under the round abstraction (see net/driver.hpp). Events are
// ordered by simulated time with FIFO tie-breaking on equal
// timestamps (insertion sequence), which keeps runs bit-deterministic
// regardless of how many events collide on a timestamp.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/assert.hpp"

namespace sskel {

/// Simulated time in microseconds.
using SimTime = std::int64_t;

class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Schedules `fn` at absolute time `t` (>= now).
  void schedule(SimTime t, Handler fn);

  /// Current simulated time (time of the last executed event).
  [[nodiscard]] SimTime now() const { return now_; }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

  /// Executes the earliest event; returns false when none is pending.
  bool step();

  /// Executes events until the queue drains or `limit` events ran.
  /// Returns the number of events executed.
  std::int64_t run(std::int64_t limit);

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    Handler fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  SimTime now_ = 0;
};

}  // namespace sskel
