#include "net/event_queue.hpp"

#include <utility>

namespace sskel {

void EventQueue::schedule(SimTime t, Handler fn) {
  SSKEL_REQUIRE(t >= now_);
  SSKEL_REQUIRE(fn != nullptr);
  heap_.push(Entry{t, next_seq_++, std::move(fn)});
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // Move the handler out before popping so the handler may schedule
  // further events (priority_queue::top is const; copy the entry).
  Entry entry = heap_.top();
  heap_.pop();
  SSKEL_ASSERT(entry.time >= now_);
  now_ = entry.time;
  entry.fn();
  return true;
}

std::int64_t EventQueue::run(std::int64_t limit) {
  std::int64_t executed = 0;
  while (executed < limit && step()) ++executed;
  return executed;
}

}  // namespace sskel
