#include "net/event_queue.hpp"

#include <algorithm>
#include <utility>

namespace sskel {

void EventQueue::schedule(SimTime t, Handler fn) {
  SSKEL_REQUIRE(t >= now_);
  SSKEL_REQUIRE(static_cast<bool>(fn));
  heap_.push_back(Entry{t, next_seq_++, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // Move the earliest entry to the back and out of the heap before
  // running it, so the handler may schedule further events.
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry entry = std::move(heap_.back());
  heap_.pop_back();
  SSKEL_ASSERT(entry.time >= now_);
  now_ = entry.time;
  entry.fn();
  return true;
}

std::int64_t EventQueue::run(std::int64_t limit) {
  std::int64_t executed = 0;
  while (executed < limit && step()) ++executed;
  return executed;
}

}  // namespace sskel
