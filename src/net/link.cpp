#include "net/link.hpp"

#include <algorithm>

#include "graph/digraph.hpp"
#include "util/assert.hpp"

namespace sskel {

SimTime sample_delay_slow(const LinkSpec& spec, SimTime deadline_slack,
                          Rng& rng) {
  switch (spec.kind) {
    case LinkKind::kDown:
      return kLost;
    case LinkKind::kTimely:
      SSKEL_ASSERT(false);  // resolved by the inline fast path
      return kLost;
    case LinkKind::kFlaky: {
      if (rng.next_bool(spec.on_time_probability)) {
        // On-time attempt: sample within the budget (or the nominal
        // range if that is tighter).
        const SimTime hi = std::min(spec.max_delay, deadline_slack);
        if (hi < spec.min_delay) return kLost;  // cannot make it
        const std::uint64_t span =
            static_cast<std::uint64_t>(hi - spec.min_delay) + 1;
        return spec.min_delay + static_cast<SimTime>(rng.next_below(span));
      }
      // Late or lost, half/half: late arrivals exercise the
      // communication-closed discard path.
      if (rng.next_bool(0.5)) return kLost;
      const SimTime base = std::max(deadline_slack + 1, spec.min_delay);
      return base + static_cast<SimTime>(rng.next_below(1000));
    }
  }
  SSKEL_ASSERT(false);
  return kLost;
}

LinkMatrix::LinkMatrix(ProcId n)
    : n_(n),
      specs_(static_cast<std::size_t>(n) * static_cast<std::size_t>(n)) {
  SSKEL_REQUIRE(n > 0);
}

void LinkMatrix::set(ProcId q, ProcId p, const LinkSpec& spec) {
  SSKEL_REQUIRE(q >= 0 && q < n_ && p >= 0 && p < n_);
  specs_[static_cast<std::size_t>(q) * static_cast<std::size_t>(n_) +
         static_cast<std::size_t>(p)] = spec;
}

LinkMatrix LinkMatrix::all_timely(ProcId n, SimTime min_delay,
                                  SimTime max_delay) {
  LinkMatrix m(n);
  LinkSpec spec;
  spec.kind = LinkKind::kTimely;
  spec.min_delay = min_delay;
  spec.max_delay = max_delay;
  for (ProcId q = 0; q < n; ++q) {
    for (ProcId p = 0; p < n; ++p) m.set(q, p, spec);
  }
  return m;
}

LinkMatrix LinkMatrix::all_flaky(ProcId n, double on_time_probability) {
  LinkMatrix m(n);
  LinkSpec spec;
  spec.kind = LinkKind::kFlaky;
  spec.on_time_probability = on_time_probability;
  for (ProcId q = 0; q < n; ++q) {
    for (ProcId p = 0; p < n; ++p) m.set(q, p, spec);
  }
  return m;
}

void LinkMatrix::upgrade_to_timely(const Digraph& stable, SimTime min_delay,
                                   SimTime max_delay) {
  SSKEL_REQUIRE(stable.n() == n_);
  LinkSpec spec;
  spec.kind = LinkKind::kTimely;
  spec.min_delay = min_delay;
  spec.max_delay = max_delay;
  for (ProcId q : stable.nodes()) {
    for (ProcId p : stable.out_neighbors(q)) {
      if (q != p) set(q, p, spec);
    }
  }
}

}  // namespace sskel
