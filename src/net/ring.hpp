// Lock-free frag-metadata ring buffers: the shared-memory message
// plane's transport primitive (DESIGN.md §12).
//
// The layout follows the firedancer/tango mcache+dcache split. A
// FragRing is two arrays:
//
//   * the *mcache*: a power-of-two ring of cache-line-aligned FragMeta
//     descriptors, each tagged with the sequence number it currently
//     carries. The producer publishes frag seq s into line s & (depth-1)
//     with a release store of the seq tag as the last write; a consumer
//     polling for seq s acquire-loads that line's tag and compares:
//       tag == s          -> frag s is ready,
//       tag <  s (wrapped)-> nothing published yet,
//       tag >  s          -> the consumer was lapped (seq overrun).
//     Comparisons use wraparound-safe signed sequence arithmetic, so
//     the ring survives 2^64 rollover.
//
//   * the *dcache*: a separate array of typed payload slots. Metadata
//     carries the slot index instead of the payload, so a broadcast
//     writes its (possibly large, non-POD) message once and publishes
//     n-1 descriptors pointing at it.
//
// Safety contract: a consumer may dereference a frag's payload only
// when the producer is credit-gated on that consumer's FlowSeq
// (net/fctl.hpp) — then the producer provably cannot rewrite the line
// or the slot before the consumer advances, and the release/acquire
// pair on the seq tag makes the payload writes visible. Without flow
// control the ring still detects overruns from the seq tag alone
// (kOverrun, payload untouched); speculative payload reads after an
// overrun window are not offered because they cannot be made race-free
// for non-trivial payload types.
//
// Single producer per ring. Multiple producers use one ring each plus
// a RingMux on the consumer side — the tango netmux pattern — which
// preserves per-producer order and needs no CAS anywhere.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/event_queue.hpp"
#include "util/assert.hpp"
#include "util/types.hpp"

namespace sskel {

inline constexpr std::size_t kCacheLineBytes = 64;

/// Wraparound-safe sequence compare: a - b as a signed distance.
[[nodiscard]] constexpr std::int64_t seq_diff(std::uint64_t a,
                                              std::uint64_t b) {
  return static_cast<std::int64_t>(a - b);
}
[[nodiscard]] constexpr bool seq_lt(std::uint64_t a, std::uint64_t b) {
  return seq_diff(a, b) < 0;
}

/// Packs (from, to) into a frag signature; the round and timestamp get
/// their own descriptor fields. Receivers use sig_from to index their
/// inbox row without touching the payload.
[[nodiscard]] constexpr std::uint64_t frag_sig(ProcId from, ProcId to) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from))
          << 32U) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(to));
}
[[nodiscard]] constexpr ProcId sig_from(std::uint64_t sig) {
  return static_cast<ProcId>(sig >> 32U);
}
[[nodiscard]] constexpr ProcId sig_to(std::uint64_t sig) {
  return static_cast<ProcId>(sig & 0xffffffffU);
}

/// One mcache line. Exactly one cache line so two descriptors never
/// false-share, with the seq tag doubling as the publication flag.
struct alignas(kCacheLineBytes) FragMeta {
  std::atomic<std::uint64_t> seq{0};
  std::uint64_t sig = 0;
  std::uint32_t slot = 0;   // dcache index of the payload
  std::uint32_t ctl = 0;    // producer-defined control bits
  std::int64_t round = 0;   // round tag (message-plane routing)
  std::int64_t tsorig = 0;  // origin timestamp (arrival SimTime)
};
static_assert(sizeof(FragMeta) == kCacheLineBytes);

/// A consumer's view of one frag: descriptor fields copied out of the
/// mcache line at poll time.
struct Frag {
  std::uint64_t seq = 0;
  std::uint64_t sig = 0;
  std::uint32_t slot = 0;
  std::uint32_t ctl = 0;
  std::int64_t round = 0;
  std::int64_t tsorig = 0;
};

enum class PollStatus : std::uint8_t {
  kEmpty,    // nothing published at the cursor yet
  kFrag,     // one frag copied out; cursor advanced
  kOverrun,  // producer lapped the cursor; cursor resynced forward
};

/// Seq-tagged descriptor ring plus typed payload slots; single
/// producer, any number of independent (per-cursor) consumers.
template <typename Payload>
class FragRing {
 public:
  /// `depth` descriptor lines (rounded up to a power of two, min 4)
  /// and `slots` payload slots (0 = one per line). Slot lifetime is
  /// the producer's contract, not the ring's: the driver recycles
  /// slots only after every consumer provably drained them.
  explicit FragRing(std::size_t depth, std::size_t slots = 0)
      : depth_(ceil_pow2(depth < 4 ? 4 : depth)),
        mask_(depth_ - 1),
        lines_(depth_),
        payloads_(slots == 0 ? depth_ : slots) {
    // Seed line tags to "one lap below" their first carried seq, so a
    // fresh cursor at seq s reads tag s - depth: strictly seq_lt, i.e.
    // kEmpty, never a bogus frag or overrun.
    for (std::size_t i = 0; i < depth_; ++i) {
      lines_[i].seq.store(static_cast<std::uint64_t>(i) - depth_,
                          std::memory_order_relaxed);
    }
  }

  FragRing(const FragRing&) = delete;
  FragRing& operator=(const FragRing&) = delete;
  // Moves transfer the whole mcache/dcache storage (vector moves —
  // no FragMeta, hence no atomic, is moved individually). Only safe
  // with no concurrent producer or consumer, i.e. at plane setup.
  FragRing(FragRing&&) noexcept = default;
  FragRing& operator=(FragRing&&) noexcept = default;

  [[nodiscard]] std::size_t depth() const { return depth_; }
  [[nodiscard]] std::size_t payload_slots() const { return payloads_.size(); }

  /// Producer-side sequence of the next frag to publish.
  [[nodiscard]] std::uint64_t seq_produced() const { return seq_next_; }

  /// Producer-side payload slot access (write before publish).
  [[nodiscard]] Payload& payload(std::uint32_t slot) {
    return payloads_[slot];
  }
  [[nodiscard]] const Payload& payload(std::uint32_t slot) const {
    return payloads_[slot];
  }

  /// Publishes the next frag: writes the descriptor fields, then
  /// release-stores the seq tag so a consumer that observes the tag
  /// observes everything the producer wrote before it (descriptor and
  /// payload alike). Returns the published seq.
  std::uint64_t publish(std::uint64_t sig, std::uint32_t slot, Round round,
                        SimTime tsorig, std::uint32_t ctl = 0) {
    const std::uint64_t seq = seq_next_++;
    FragMeta& line = lines_[static_cast<std::size_t>(seq) & mask_];
    line.sig = sig;
    line.slot = slot;
    line.ctl = ctl;
    line.round = round;
    line.tsorig = tsorig;
    line.seq.store(seq, std::memory_order_release);
    return seq;
  }

  /// A consumer's position in the ring. Cursors are independent; each
  /// consumer owns one and polls with it.
  struct Cursor {
    std::uint64_t seq = 0;
    std::int64_t overruns = 0;  // laps detected (diagnostics/tests)
  };

  /// Polls for the cursor's next frag. kFrag copies the descriptor
  /// into `out` and advances the cursor; kOverrun resyncs the cursor
  /// to the oldest still-live line (skipped frags are lost, counted in
  /// cursor.overruns) without touching any payload.
  PollStatus poll(Cursor& cursor, Frag& out) const {
    const FragMeta& line = lines_[static_cast<std::size_t>(cursor.seq) & mask_];
    const std::uint64_t tag = line.seq.load(std::memory_order_acquire);
    if (tag == cursor.seq) {
      out.seq = tag;
      out.sig = line.sig;
      out.slot = line.slot;
      out.ctl = line.ctl;
      out.round = line.round;
      out.tsorig = line.tsorig;
      ++cursor.seq;
      return PollStatus::kFrag;
    }
    if (seq_lt(tag, cursor.seq)) return PollStatus::kEmpty;
    // Lapped: the line already carries a later lap. Resync to the
    // oldest seq that can still be live in the ring.
    ++cursor.overruns;
    cursor.seq = tag - mask_;
    return PollStatus::kOverrun;
  }

 private:
  [[nodiscard]] static std::size_t ceil_pow2(std::size_t v) {
    std::size_t p = 1;
    while (p < v) p <<= 1U;
    return p;
  }

  std::size_t depth_;
  std::size_t mask_;
  std::vector<FragMeta> lines_;
  std::vector<Payload> payloads_;
  std::uint64_t seq_next_ = 0;
};

/// Consumer-side merge of several single-producer rings (the netmux
/// pattern): polls the attached rings round-robin, preserving each
/// producer's publication order. No synchronization beyond the rings'
/// own seq tags — the mux itself belongs to one consumer thread.
template <typename Payload>
class RingMux {
 public:
  using Ring = FragRing<Payload>;

  /// Attaches a ring; returns its producer index within the mux.
  std::size_t attach(const Ring* ring) {
    inputs_.push_back(Input{ring, typename Ring::Cursor{}});
    return inputs_.size() - 1;
  }

  [[nodiscard]] std::size_t input_count() const { return inputs_.size(); }

  /// Polls each input at most once starting after the last serviced
  /// one (round-robin fairness). kFrag sets `producer` to the input
  /// index the frag came from. Returns kEmpty only after every input
  /// reported empty this sweep; overruns surface as kOverrun with the
  /// producer index (payloads untouched).
  PollStatus poll(Frag& out, std::size_t& producer) {
    const std::size_t count = inputs_.size();
    for (std::size_t step = 0; step < count; ++step) {
      const std::size_t i = (next_ + step) % count;
      const PollStatus status = inputs_[i].ring->poll(inputs_[i].cursor, out);
      if (status == PollStatus::kEmpty) continue;
      producer = i;
      next_ = (i + 1) % count;
      return status;
    }
    return PollStatus::kEmpty;
  }

  [[nodiscard]] std::uint64_t seq_consumed(std::size_t producer) const {
    return inputs_[producer].cursor.seq;
  }
  [[nodiscard]] std::int64_t overruns(std::size_t producer) const {
    return inputs_[producer].cursor.overruns;
  }

 private:
  struct Input {
    const Ring* ring;
    typename Ring::Cursor cursor;
  };
  std::vector<Input> inputs_;
  std::size_t next_ = 0;
};

}  // namespace sskel
