// Credit-based flow control between frag producers and consumers
// (DESIGN.md §12), after firedancer's fd_fctl.
//
// Each reliable consumer exposes a FlowSeq — a cache-line-aligned,
// atomically published "I have fully consumed every frag below this
// sequence" watermark. The producer side (FlowControl) turns those
// watermarks into a credit budget against its ring depth:
//
//   credits = depth - max over consumers (seq_next - fseq_consumer)
//
// i.e. the number of frags the producer can still publish before the
// slowest reliable consumer's unread window would be overwritten. The
// producer decrements a cached credit counter per publish and re-reads
// the consumer watermarks only when the cache runs dry (a low-water
// refill, keeping the fseq cache lines out of the publish hot path).
// acquire() returning false is backpressure: the ring is full from the
// slowest consumer's point of view, and the producer must drain, spin,
// or otherwise let the consumer catch up. Stall/refill counters feed
// the bench JSON (BENCH_network.json) and the regression gate.
//
// The consumer publishes its watermark with a release store so the
// producer's acquire-refill observes every payload read the consumer
// performed first — this pairing is what makes in-place payload reads
// on a credit-gated ring race-free (see net/ring.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "net/ring.hpp"
#include "util/assert.hpp"

namespace sskel {

/// A consumer-published consumption watermark. Own cache line so the
/// producer's polling never false-shares with neighboring state.
struct alignas(kCacheLineBytes) FlowSeq {
  std::atomic<std::uint64_t> seq{0};

  /// Consumer side: everything below `consumed` has been fully read.
  void publish(std::uint64_t consumed) {
    seq.store(consumed, std::memory_order_release);
  }
  /// Producer side (used by FlowControl's refill).
  [[nodiscard]] std::uint64_t read() const {
    return seq.load(std::memory_order_acquire);
  }
};
static_assert(sizeof(FlowSeq) == kCacheLineBytes);

/// Producer-side credit accounting over one ring and its reliable
/// consumers.
class FlowControl {
 public:
  /// `depth` is the producer ring's descriptor depth: the hard bound
  /// on frags in flight past the slowest reliable consumer.
  explicit FlowControl(std::uint64_t depth) : depth_(depth) {
    SSKEL_REQUIRE(depth > 0);
  }

  /// Registers a reliable consumer's watermark. The FlowSeq must
  /// outlive this FlowControl; registration is setup-time only.
  void add_consumer(const FlowSeq* fseq) {
    SSKEL_REQUIRE(fseq != nullptr);
    consumers_.push_back(fseq);
  }

  [[nodiscard]] std::size_t consumer_count() const {
    return consumers_.size();
  }

  /// Takes one publish credit for the frag about to be published at
  /// `seq_next`. Refills from the consumer watermarks when the cached
  /// budget is dry; returns false — backpressure — when even a fresh
  /// refill yields no credit. The caller retries after making the
  /// consumer progress (draining, spinning, yielding).
  [[nodiscard]] bool acquire(std::uint64_t seq_next) {
    if (credits_ == 0) {
      refill(seq_next);
      if (credits_ == 0) {
        ++stalls_;
        return false;
      }
    }
    --credits_;
    return true;
  }

  /// Recomputes the credit budget from the consumer watermarks.
  void refill(std::uint64_t seq_next) {
    ++refills_;
    std::uint64_t budget = depth_;
    for (const FlowSeq* fseq : consumers_) {
      const std::int64_t in_flight = seq_diff(seq_next, fseq->read());
      SSKEL_ASSERT(in_flight >= 0);
      const std::uint64_t room =
          static_cast<std::uint64_t>(in_flight) >= depth_
              ? 0
              : depth_ - static_cast<std::uint64_t>(in_flight);
      if (room < budget) budget = room;
    }
    credits_ = budget;
  }

  [[nodiscard]] std::uint64_t credits_cached() const { return credits_; }
  /// Backpressure events: acquire() calls that found no credit even
  /// after a refill.
  [[nodiscard]] std::int64_t stalls() const { return stalls_; }
  [[nodiscard]] std::int64_t refills() const { return refills_; }

 private:
  std::uint64_t depth_;
  std::uint64_t credits_ = 0;
  std::int64_t stalls_ = 0;
  std::int64_t refills_ = 0;
  std::vector<const FlowSeq*> consumers_;
};

}  // namespace sskel
