// NetRoundDriver: the communication-closed round abstraction,
// implemented on a simulated partially synchronous network — the
// network-backed RoundEngine.
//
// This is the "messaging boilerplate" beneath the paper's model. Each
// process p has a local clock offset skew_p and a round duration D:
// it starts round r at  start_p(r) = (r-1)*D + skew_p,  immediately
// broadcasts its round-r message (after applying the round-(r-1)
// transition), and closes the round at  start_p(r+1) = start_p(r) + D,
// consuming exactly the round-r messages that arrived by then. A
// message from q traveling d microseconds is on time for p iff
//
//     skew_q + d <= skew_p + D                       (*)
//
// so the *derived* communication graph of round r contains edge
// (q -> p) iff (*) held for that message — asynchrony (slow links,
// skewed clocks) and failures (drops) become missing edges and nothing
// else, which is precisely the paper's unified model. Late messages
// are discarded (communication closure) and counted.
//
// As a RoundEngine, the driver surfaces each derived graph through
// step() and the shared observer bus, and feeds the shared RunTrace
// (message counts, plus encoded bytes when a sizer is installed) — so
// the whole upper stack, Algorithm 1 through KSetRunner, runs
// unchanged on top of the network substrate, and NetConfig (skew,
// latency distributions, drop rates) becomes a first-class adversary.
#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "graph/digraph.hpp"
#include "net/event_queue.hpp"
#include "net/link.hpp"
#include "rounds/algorithm.hpp"
#include "rounds/engine.hpp"
#include "util/rng.hpp"

namespace sskel {

struct NetConfig {
  /// Round duration D in microseconds (the synchronizer's timeout).
  SimTime round_duration = 1000;
  /// Per-process clock offsets; empty = all zero. Offsets shift the
  /// timeliness condition (*) per link direction.
  std::vector<SimTime> skews;
  /// Seed for all delay sampling.
  std::uint64_t seed = 1;
};

template <typename Msg>
class NetRoundDriver final : public RoundEngine<Msg> {
 public:
  using Process = Algorithm<Msg>;

  NetRoundDriver(NetConfig config, LinkMatrix links,
                 std::vector<std::unique_ptr<Process>> processes)
      : config_(std::move(config)),
        links_(std::move(links)),
        processes_(std::move(processes)),
        rng_(config_.seed) {
    const std::size_t n = processes_.size();
    SSKEL_REQUIRE(n > 0);
    SSKEL_REQUIRE(links_.n() == static_cast<ProcId>(n));
    SSKEL_REQUIRE(config_.round_duration > 0);
    if (config_.skews.empty()) config_.skews.assign(n, 0);
    SSKEL_REQUIRE(config_.skews.size() == n);
    for (SimTime skew : config_.skews) {
      // A skew beyond the round duration would let rounds overlap by
      // more than one boundary; keep the synchronizer's invariant.
      SSKEL_REQUIRE(skew >= 0 && skew < config_.round_duration);
    }
    for (std::size_t i = 0; i < n; ++i) {
      SSKEL_REQUIRE(processes_[i] != nullptr);
      SSKEL_REQUIRE(processes_[i]->id() == static_cast<ProcId>(i));
    }
    inboxes_.resize(n);
    finalized_round_.assign(n, 0);

    // Bootstrap: every process starts round 1 at skew_p.
    for (ProcId p = 0; p < this->n(); ++p) {
      queue_.schedule(skew(p), [this, p] { start_round(p, 1); });
    }
  }

  [[nodiscard]] ProcId n() const override {
    return static_cast<ProcId>(processes_.size());
  }

  [[nodiscard]] Process& process(ProcId p) override {
    return *processes_[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] const Process& process(ProcId p) const override {
    return *processes_[static_cast<std::size_t>(p)];
  }

  [[nodiscard]] SimTime now() const { return queue_.now(); }

  /// Number of round-tagged messages that arrived after their deadline
  /// and were discarded (the communication-closure drop path).
  [[nodiscard]] std::int64_t late_messages() const { return late_; }
  [[nodiscard]] std::int64_t lost_messages() const { return lost_; }
  [[nodiscard]] std::int64_t delivered_messages() const { return delivered_; }

  /// Rounds whose derived graph is complete (every process closed the
  /// round). Rounds complete in order because skews stay below D.
  [[nodiscard]] Round rounds_completed() const override {
    return derived_rounds_;
  }

  /// Pumps the event queue until the next round's derived graph
  /// completes; returns that graph.
  const Digraph& step() override {
    const Round target = derived_rounds_ + 1;
    while (derived_rounds_ < target) {
      const bool progressed = queue_.step();
      SSKEL_ASSERT(progressed);
    }
    return last_graph_;
  }

  /// Runs the network until every process has finalized `rounds`
  /// rounds (absolute, unlike run()'s relative count).
  void run_rounds(Round rounds) {
    SSKEL_REQUIRE(rounds >= 0);
    while (rounds_completed() < rounds) step();
  }

 private:
  struct RoundInbox {
    Round round = 0;
    ProcSet senders;
    std::vector<Msg> messages;
  };

  [[nodiscard]] SimTime skew(ProcId p) const {
    return config_.skews[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] SimTime start_time(ProcId p, Round r) const {
    return static_cast<SimTime>(r - 1) * config_.round_duration + skew(p);
  }
  [[nodiscard]] SimTime deadline(ProcId p, Round r) const {
    return start_time(p, r) + config_.round_duration;
  }

  RoundInbox& inbox_for(ProcId p, Round r) {
    // A process buffers at most two live rounds (its current one and
    // the next, which early-clock peers may already be sending).
    auto& slots = inboxes_[static_cast<std::size_t>(p)];
    for (auto& slot : slots) {
      if (slot.round == r) return slot;
    }
    RoundInbox fresh;
    fresh.round = r;
    fresh.senders = ProcSet(n());
    fresh.messages.assign(static_cast<std::size_t>(n()), Msg{});
    slots.push_back(std::move(fresh));
    return slots.back();
  }

  void drop_inbox(ProcId p, Round r) {
    auto& slots = inboxes_[static_cast<std::size_t>(p)];
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].round == r) {
        slots.erase(slots.begin() + static_cast<std::ptrdiff_t>(i));
        return;
      }
    }
  }

  /// Round boundary for p: broadcast round r (state is already the
  /// beginning-of-round-r state) and schedule the round's close.
  void start_round(ProcId p, Round r) {
    const Msg msg = processes_[static_cast<std::size_t>(p)]->send(r);

    // Self-delivery is immediate and always on time.
    RoundInbox& own = inbox_for(p, r);
    own.senders.insert(p);
    own.messages[static_cast<std::size_t>(p)] = msg;
    account_delivery(r, msg);

    for (ProcId q = 0; q < n(); ++q) {
      if (q == p) continue;
      // Slack for on-time delivery on this pair, from (*).
      const SimTime slack =
          config_.round_duration + skew(q) - skew(p);
      const SimTime delay = sample_delay(links_.at(p, q), slack, rng_);
      if (delay == kLost) {
        ++lost_;
        continue;
      }
      const SimTime arrival = queue_.now() + delay;
      queue_.schedule(arrival, [this, p, q, r, msg] {
        deliver(/*from=*/p, /*to=*/q, r, msg);
      });
    }

    queue_.schedule(deadline(p, r), [this, p, r] { close_round(p, r); });
  }

  void deliver(ProcId from, ProcId to, Round r, const Msg& msg) {
    if (queue_.now() > deadline(to, r)) {
      ++late_;  // communication closure: the round already ended
      return;
    }
    ++delivered_;
    RoundInbox& inbox = inbox_for(to, r);
    inbox.senders.insert(from);
    inbox.messages[static_cast<std::size_t>(from)] = msg;
    account_delivery(r, msg);
  }

  void close_round(ProcId p, Round r) {
    RoundInbox& inbox = inbox_for(p, r);
    const ProcSet senders = inbox.senders;

    const Inbox<Msg> view(inbox.senders, inbox.messages);
    processes_[static_cast<std::size_t>(p)]->transition(r, view);
    finalized_round_[static_cast<std::size_t>(p)] = r;

    // Record the derived communication-graph row *after* the
    // transition: when the last row of round r lands, every process is
    // in its end-of-round-r state, so observers (skeleton trackers,
    // lemma monitors) see a consistent cut.
    derived_row(p, r, senders);
    drop_inbox(p, r);

    // The close of round r is the start of round r + 1.
    start_round(p, r + 1);
  }

  struct PendingRound {
    Round round = 0;
    Digraph graph;
    ProcId rows = 0;
    std::int64_t bytes = 0;
    std::int64_t max_message_bytes = 0;
  };

  PendingRound& pending_for(Round r) {
    for (PendingRound& pg : pending_rounds_) {
      if (pg.round == r) return pg;
    }
    pending_rounds_.push_back(PendingRound{r, Digraph(n()), 0, 0, 0});
    return pending_rounds_.back();
  }

  /// Byte accounting for one on-time delivery (sizer installed only).
  void account_delivery(Round r, const Msg& msg) {
    if (!this->sizer_) return;
    const std::int64_t bytes = this->sizer_(msg);
    PendingRound& rec = pending_for(r);
    rec.bytes += bytes;
    rec.max_message_bytes = std::max(rec.max_message_bytes, bytes);
  }

  /// Collects per-process rows into whole derived graphs; once a
  /// round's last row lands, records the round in the trace and fires
  /// the observer bus. Rounds complete in order: the last close of
  /// round r (at r*D + max skew) precedes the first close of round
  /// r+1 (at (r+1)*D + min skew) because skews are constrained below
  /// D.
  void derived_row(ProcId p, Round r, const ProcSet& senders) {
    PendingRound& rec = pending_for(r);
    for (ProcId q : senders) rec.graph.add_edge(q, p);
    if (++rec.rows == n()) {
      RoundStats stats;
      stats.round = r;
      stats.messages_delivered = rec.graph.edge_count();
      stats.bytes_delivered = rec.bytes;
      stats.max_message_bytes = rec.max_message_bytes;
      this->trace_.record(stats);
      this->bus_.notify(r, rec.graph);
      last_graph_ = std::move(rec.graph);
      ++derived_rounds_;
      std::erase_if(pending_rounds_,
                    [r](const PendingRound& pg) { return pg.round == r; });
    }
  }

  NetConfig config_;
  LinkMatrix links_;
  std::vector<std::unique_ptr<Process>> processes_;
  Rng rng_;
  EventQueue queue_;
  std::vector<std::vector<RoundInbox>> inboxes_;
  std::vector<Round> finalized_round_;
  std::vector<PendingRound> pending_rounds_;
  Digraph last_graph_;
  Round derived_rounds_ = 0;
  std::int64_t late_ = 0;
  std::int64_t lost_ = 0;
  std::int64_t delivered_ = 0;
};

}  // namespace sskel
