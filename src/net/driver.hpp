// NetRoundDriver: the communication-closed round abstraction,
// implemented on a simulated partially synchronous network — the
// network-backed RoundEngine.
//
// This is the "messaging boilerplate" beneath the paper's model. Each
// process p has a local clock offset skew_p and a round duration D:
// it starts round r at  start_p(r) = (r-1)*D + skew_p,  immediately
// broadcasts its round-r message (after applying the round-(r-1)
// transition), and closes the round at  start_p(r+1) = start_p(r) + D,
// consuming exactly the round-r messages that arrived by then. A
// message from q traveling d microseconds is on time for p iff
//
//     skew_q + d <= skew_p + D                       (*)
//
// so the *derived* communication graph of round r contains edge
// (q -> p) iff (*) held for that message — asynchrony (slow links,
// skewed clocks) and failures (drops) become missing edges and nothing
// else, which is precisely the paper's unified model. Late messages
// are discarded (communication closure) and counted.
//
// Message plane (DESIGN.md §12). Two implementations of the delivery
// hot path share this synchronizer:
//
//   * NetPlane::kRing (default) — on-time broadcasts go through
//     lock-free frag rings: the payload is written once into a shared
//     dcache slot keyed by (sender, round parity), and one descriptor
//     per recipient is published into that recipient's credit-gated
//     FragRing (net/ring.hpp, net/fctl.hpp). Rings drain in batch when
//     the recipient closes a round — timeliness is *analytic* (the
//     descriptor carries the arrival time; (*) is evaluated against
//     the receiver's deadline), so no per-message event, closure, or
//     allocation exists on the path. Only round closes and the rare
//     late arrivals remain on the event queue, which is retained
//     purely for timer semantics. If a recipient's ring runs out of
//     credits (tiny test depths), the driver performs an early
//     opportunistic drain — semantics-preserving, since deposits are
//     keyed by sender and timeliness is analytic — and counts a
//     credit stall.
//   * NetPlane::kEventQueue — the legacy path: one scheduled event per
//     delivery. Kept as the baseline for the throughput bench and the
//     bit-equality tripwire (tests/net/plane_equivalence_test.cpp).
//
// Both planes consume the RNG identically and produce bit-identical
// reports: inbox deposits commute (keyed by sender), byte accounting
// is a sum/max, and the one observable tie — arrival exactly at the
// deadline while the receiver's close event ordered first — is
// reproduced analytically (close_precedes_delivery_at_tie).
//
// As a RoundEngine, the driver surfaces each derived graph through
// step() and the shared observer bus, and feeds the shared RunTrace
// (message counts, plus encoded bytes when a sizer is installed) — so
// the whole upper stack, Algorithm 1 through KSetRunner, runs
// unchanged on top of the network substrate, and NetConfig (skew,
// latency distributions, drop rates) becomes a first-class adversary.
#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "graph/digraph.hpp"
#include "net/event_queue.hpp"
#include "net/fctl.hpp"
#include "net/link.hpp"
#include "net/ring.hpp"
#include "rounds/algorithm.hpp"
#include "rounds/engine.hpp"
#include "rounds/inbox.hpp"
#include "util/rng.hpp"

namespace sskel {

/// Which delivery hot path the driver runs on (see the header
/// comment). Both planes are observationally identical; kEventQueue
/// exists as the measured baseline and equivalence oracle.
enum class NetPlane : std::uint8_t { kRing, kEventQueue };

struct NetConfig {
  /// Round duration D in microseconds (the synchronizer's timeout).
  SimTime round_duration = 1000;
  /// Per-process clock offsets; empty = all zero. Offsets shift the
  /// timeliness condition (*) per link direction.
  std::vector<SimTime> skews;
  /// Seed for all delay sampling.
  std::uint64_t seed = 1;
  /// Delivery hot path.
  NetPlane plane = NetPlane::kRing;
  /// Descriptor depth of each per-recipient frag ring; 0 = automatic
  /// (2n, enough for the two live rounds a recipient can have in
  /// flight, so credit stalls never occur). Tests set tiny depths to
  /// exercise backpressure.
  std::size_t ring_depth = 0;
};

template <typename Msg>
class NetRoundDriver final : public RoundEngine<Msg> {
 public:
  using Process = Algorithm<Msg>;

  NetRoundDriver(NetConfig config, LinkMatrix links,
                 std::vector<std::unique_ptr<Process>> processes)
      : config_(std::move(config)),
        links_(std::move(links)),
        processes_(std::move(processes)),
        rng_(config_.seed),
        inboxes_(static_cast<ProcId>(processes_.size())),
        dcache_(2 * processes_.size()) {
    const std::size_t n = processes_.size();
    SSKEL_REQUIRE(n > 0);
    SSKEL_REQUIRE(links_.n() == static_cast<ProcId>(n));
    SSKEL_REQUIRE(config_.round_duration > 0);
    if (config_.skews.empty()) config_.skews.assign(n, 0);
    SSKEL_REQUIRE(config_.skews.size() == n);
    for (SimTime skew : config_.skews) {
      // A skew beyond the round duration would let rounds overlap by
      // more than one boundary; keep the synchronizer's invariant.
      SSKEL_REQUIRE(skew >= 0 && skew < config_.round_duration);
    }
    for (std::size_t i = 0; i < n; ++i) {
      SSKEL_REQUIRE(processes_[i] != nullptr);
      SSKEL_REQUIRE(processes_[i]->id() == static_cast<ProcId>(i));
    }
    finalized_round_.assign(n, 0);
    use_rows64_ = n <= 64;

    if (config_.plane == NetPlane::kRing) {
      const std::size_t depth =
          config_.ring_depth != 0 ? config_.ring_depth : 2 * n;
      rings_.reserve(n);
      fctl_.reserve(n);
      cursors_.resize(n);
      drain_fseq_ = std::vector<FlowSeq>(n);
      for (std::size_t q = 0; q < n; ++q) {
        // Payload slots live in the shared dcache_, not the ring;
        // descriptors carry dcache indices.
        rings_.emplace_back(depth, 1);
        fctl_.emplace_back(rings_.back().depth());
        fctl_.back().add_consumer(&drain_fseq_[q]);
      }
      // Close calendar: rounds close in one fixed per-round order —
      // by deadline, i.e. by skew, FIFO (= bootstrap = id) on ties —
      // so the ring plane ticks closes off this precomputed cycle
      // instead of paying the event heap for its only periodic timer.
      close_order_.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        close_order_[i] = static_cast<ProcId>(i);
      }
      std::stable_sort(close_order_.begin(), close_order_.end(),
                       [this](ProcId a, ProcId b) { return skew(a) < skew(b); });
      close_time_.assign(n, 0);
      close_seq_.assign(n, 0);
      close_round_.assign(n, 0);
    }

    // Bootstrap: every process starts round 1 at skew_p.
    for (ProcId p = 0; p < this->n(); ++p) {
      queue_.schedule(skew(p), [this, p] { start_round(p, 1); });
    }
  }

  [[nodiscard]] ProcId n() const override {
    return static_cast<ProcId>(processes_.size());
  }

  [[nodiscard]] Process& process(ProcId p) override {
    return *processes_[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] const Process& process(ProcId p) const override {
    return *processes_[static_cast<std::size_t>(p)];
  }

  [[nodiscard]] SimTime now() const { return queue_.now(); }

  /// Number of round-tagged messages that arrived after their deadline
  /// and were discarded (the communication-closure drop path).
  [[nodiscard]] std::int64_t late_messages() const { return late_; }
  [[nodiscard]] std::int64_t lost_messages() const { return lost_; }

  /// Messages that arrived on time, *as of the current cut*. The ring
  /// plane moves deposits off the arrival instant (drains run at round
  /// closes; zombies count at publish), so the raw tally would run
  /// ahead of the event-queue plane's whenever the cut leaves
  /// deliveries in flight. The accessor restores arrival-time
  /// semantics analytically: an on-time message counts iff its arrival
  /// precedes now(), or lands exactly on it while belonging to the
  /// just-completed round (the event-queue seq-order analysis of the
  /// deadline tie — same-time next-round deliveries are scheduled
  /// after the cut's close event and have not executed there).
  [[nodiscard]] std::int64_t delivered_messages() const {
    std::int64_t total = delivered_;
    const SimTime cut = queue_.now();
    const auto arrived = [&](SimTime arrival, Round r) {
      return arrival < cut || (arrival == cut && r == derived_rounds_);
    };
    for (const FutureCount& fc : future_counts_) {
      if (arrived(fc.arrival, fc.round)) ++total;
    }
    Frag frag;
    for (std::size_t q = 0; q < rings_.size(); ++q) {
      auto cursor = cursors_[q];  // copy: peek without consuming
      while (rings_[q].poll(cursor, frag) == PollStatus::kFrag) {
        if (arrived(frag.tsorig, static_cast<Round>(frag.round))) ++total;
      }
    }
    return total;
  }

  /// Ring-plane backpressure events: publishes that found a recipient
  /// ring out of credits and forced an early drain. Always 0 on the
  /// event-queue plane and with automatic ring depth.
  [[nodiscard]] std::int64_t credit_stalls() const {
    std::int64_t total = 0;
    for (const FlowControl& fctl : fctl_) total += fctl.stalls();
    return total;
  }

  /// Frags published across all recipient rings (0 on the event-queue
  /// plane).
  [[nodiscard]] std::int64_t ring_frags() const {
    std::int64_t total = 0;
    for (const auto& ring : rings_) {
      total += static_cast<std::int64_t>(ring.seq_produced());
    }
    return total;
  }

  [[nodiscard]] NetPlane plane() const { return config_.plane; }

  /// Optional wire encoder for trace capture: writes `msg`'s encoded
  /// bytes into the scratch vector (cleared by the driver first).
  using TraceEncoder = std::function<void(const Msg&, std::vector<std::uint8_t>&)>;

  /// Installs a capture sink for the delivery/close schedule (null
  /// detaches). Must be called before the first step(). With a sink
  /// installed the ring plane additionally schedules one no-op trace
  /// event per on-time/tie message at its arrival instant — matching
  /// the event-queue plane's per-delivery events one for one — so the
  /// two planes' captures carry identical delivery/close orderings
  /// and identical event-queue sequence numbers. Tracing is not the
  /// hot path; the ring plane's zero-event delivery property holds
  /// whenever no sink is attached. When `encoder` is provided the
  /// sink also receives every broadcast's encoded payload.
  void set_trace_sink(NetTraceSink* sink, TraceEncoder encoder = nullptr) {
    SSKEL_REQUIRE(derived_rounds_ == 0);
    sink_ = sink;
    trace_encoder_ = std::move(encoder);
  }

  /// The TraceSource tag matching this driver's plane.
  [[nodiscard]] TraceSource trace_source() const {
    return config_.plane == NetPlane::kRing ? TraceSource::kNetRing
                                            : TraceSource::kNetEventQueue;
  }

  /// Rounds whose derived graph is complete (every process closed the
  /// round). Rounds complete in order because skews stay below D.
  [[nodiscard]] Round rounds_completed() const override {
    return derived_rounds_;
  }

  /// Pumps the event queue until the next round's derived graph
  /// completes; returns that graph.
  const Digraph& step() override {
    const Round target = derived_rounds_ + 1;
    while (derived_rounds_ < target) {
      const bool progressed = pump();
      SSKEL_ASSERT(progressed);
    }
    return last_graph_;
  }

  /// Runs the network until every process has finalized `rounds`
  /// rounds (absolute, unlike run()'s relative count).
  void run_rounds(Round rounds) {
    SSKEL_REQUIRE(rounds >= 0);
    while (rounds_completed() < rounds) step();
  }

 private:
  /// Runs the earliest pending timer: the event-queue head or, on the
  /// ring plane, the next calendar close — whichever's (time, seq)
  /// key is smaller. Calendar closes carry seqs drawn from the queue
  /// at registration, so the FIFO tie-break is exactly the one the
  /// heap would have applied had the close been scheduled.
  bool pump() {
    if (config_.plane == NetPlane::kRing) {
      const ProcId p = close_order_[next_close_];
      const std::size_t pi = static_cast<std::size_t>(p);
      if (close_round_[pi] != 0) {  // calendar armed (bootstrap done)
        SimTime head_time = 0;
        std::uint64_t head_seq = 0;
        const bool queued = queue_.peek_key(head_time, head_seq);
        const SimTime due = close_time_[pi];
        if (!queued || due < head_time ||
            (due == head_time && close_seq_[pi] < head_seq)) {
          queue_.advance_now(due);
          const Round r = close_round_[pi];
          next_close_ = (next_close_ + 1) % close_order_.size();
          close_round(p, r);
          return true;
        }
      }
    }
    return queue_.step();
  }

  [[nodiscard]] SimTime skew(ProcId p) const {
    return config_.skews[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] SimTime start_time(ProcId p, Round r) const {
    return static_cast<SimTime>(r - 1) * config_.round_duration + skew(p);
  }
  [[nodiscard]] SimTime deadline(ProcId p, Round r) const {
    return start_time(p, r) + config_.round_duration;
  }

  /// Shared dcache slot for sender p's round-r broadcast. Two slots
  /// per sender (round parity) suffice: the slot for round r is
  /// overwritten at start(p, r+2), which strictly follows every
  /// consumption of round r (deadline(q, r) < start(p, r+2) because
  /// skews stay below D).
  [[nodiscard]] std::uint32_t dcache_slot(ProcId p, Round r) const {
    return static_cast<std::uint32_t>(
        2 * static_cast<std::size_t>(p) +
        (static_cast<std::size_t>(r) & 1U));
  }

  /// Event-queue seq order for the one observable tie: a message
  /// arriving exactly at the receiver's deadline races the receiver's
  /// close event. On the event-queue plane both land at the same
  /// timestamp and FIFO seq decides; seqs follow scheduling order,
  /// which follows the start-event order of the two processes —
  /// (skew, id) lexicographic. The ring plane reproduces the verdict
  /// analytically.
  [[nodiscard]] bool close_precedes_delivery_at_tie(ProcId from,
                                                    ProcId to) const {
    if (skew(from) != skew(to)) return skew(from) > skew(to);
    return from > to;
  }

  /// On-time deposit into (to, r)'s inbox. Deposits commute: they are
  /// keyed by sender, so drain order never affects the round's
  /// outcome. Counting is the caller's job (the planes count at
  /// different instants; see delivered_messages()).
  void deposit(ProcId from, ProcId to, Round r, const Msg& msg) {
    RoundInboxSlot<Msg>& slot = inboxes_.acquire(to, r);
    slot.senders.insert(from);
    slot.messages[static_cast<std::size_t>(from)] = msg;
    account_delivery(r, msg);
  }

  /// Ring-plane count of one on-time message: eager when its arrival
  /// is already in the past (any future cut includes it), deferred to
  /// the analytic accessor otherwise.
  void count_delivery(SimTime arrival, Round r) {
    if (arrival <= queue_.now()) {
      ++delivered_;
    } else {
      future_counts_.push_back(FutureCount{arrival, r});
    }
  }

  /// Ring plane: publishes one delivery descriptor into the
  /// recipient's ring, early-draining on credit exhaustion.
  void publish_frag(ProcId from, ProcId to, Round r, SimTime arrival,
                    std::uint32_t slot) {
    FragRing<Msg>& ring = rings_[static_cast<std::size_t>(to)];
    FlowControl& fctl = fctl_[static_cast<std::size_t>(to)];
    if (!fctl.acquire(ring.seq_produced())) {
      drain_ring(to);
      const bool ok = fctl.acquire(ring.seq_produced());
      SSKEL_ASSERT(ok);
    }
    ring.publish(frag_sig(from, to), slot, r, arrival);
  }

  /// Drains every published frag of `q`'s ring into its inboxes and
  /// republishes the consumption watermark. Runs at q's round closes
  /// and under producer backpressure; both are safe at any time
  /// because deposits commute and timeliness is analytic (late frags
  /// never enter the ring — see start_round).
  void drain_ring(ProcId q) {
    FragRing<Msg>& ring = rings_[static_cast<std::size_t>(q)];
    auto& cursor = cursors_[static_cast<std::size_t>(q)];
    // now() is loop-invariant across the whole drain (no events
    // execute mid-drain), so hoist it past the deposit stores the
    // compiler must otherwise assume could alias the clock.
    const SimTime now = queue_.now();
    // Frags of one drain span at most two rounds (r, then early r+1
    // publishes), and producers publish in event order — so the inbox
    // slot switches at most once per drain and is worth caching
    // instead of re-resolving per frag.
    RoundInboxSlot<Msg>* slot = nullptr;
    Round slot_round = 0;
    SimTime slot_deadline = 0;
    Frag frag;
    while (ring.poll(cursor, frag) == PollStatus::kFrag) {
      const auto r = static_cast<Round>(frag.round);
      if (r != slot_round) {
        slot = &inboxes_.acquire(q, r);
        slot_round = r;
        slot_deadline = deadline(q, r);
      }
      SSKEL_ASSERT(frag.tsorig <= slot_deadline);
      if (frag.tsorig <= now) {  // count_delivery, against the hoisted clock
        ++delivered_;
      } else {
        future_counts_.push_back(FutureCount{frag.tsorig, r});
      }
      const ProcId from = sig_from(frag.sig);
      const Msg& msg = dcache_[frag.slot];
      slot->senders.insert(from);
      slot->messages[static_cast<std::size_t>(from)] = msg;
      if (this->sizer_) account_delivery(r, msg);
    }
    drain_fseq_[static_cast<std::size_t>(q)].publish(cursor.seq);
    // Housekeeping: settle deferred counts whose arrival has passed.
    if (!future_counts_.empty()) {
      std::erase_if(future_counts_, [&](const FutureCount& fc) {
        if (fc.arrival >= now) return false;
        ++delivered_;
        return true;
      });
    }
  }

  /// Round boundary for p: broadcast round r (state is already the
  /// beginning-of-round-r state) and schedule the round's close.
  void start_round(ProcId p, Round r) {
    const std::uint32_t slot = dcache_slot(p, r);
    processes_[static_cast<std::size_t>(p)]->send_into(r, dcache_[slot]);
    const Msg& msg = dcache_[slot];

    if (sink_ != nullptr && trace_encoder_) {
      encode_scratch_.clear();
      trace_encoder_(msg, encode_scratch_);
      sink_->on_broadcast(r, p, encode_scratch_);
    }

    // Self-delivery is immediate and always on time (not counted in
    // delivered_, matching the network-accounting convention).
    RoundInboxSlot<Msg>& own = inboxes_.acquire(p, r);
    own.senders.insert(p);
    own.messages[static_cast<std::size_t>(p)] = msg;
    account_delivery(r, msg);

    const bool ring_plane = config_.plane == NetPlane::kRing;
    // now() is loop-invariant (schedule/take_seq never move the
    // clock); hoist it past the publish stores.
    const SimTime send_time = queue_.now();
    for (ProcId q = 0; q < n(); ++q) {
      if (q == p) continue;
      // Slack for on-time delivery on this pair, from (*).
      const SimTime slack =
          config_.round_duration + skew(q) - skew(p);
      const SimTime delay = sample_delay(links_.at(p, q), slack, rng_);
      if (delay == kLost) {
        ++lost_;
        // Both planes learn of a drop at the send instant; record it
        // there so captures agree across planes.
        if (sink_ != nullptr) {
          sink_->on_delivery(DeliveryKind::kDropped, r, p, q, send_time);
        }
        continue;
      }
      const SimTime arrival = send_time + delay;
      if (!ring_plane) {
        queue_.schedule(arrival, [this, p, q, r] {
          deliver(/*from=*/p, /*to=*/q, r);
        });
        continue;
      }
      const SimTime due = deadline(q, r);
      if (arrival > due) {
        // Late: never enters the ring. The timer event reproduces the
        // event-queue plane's counting cutoff exactly — a late
        // arrival past the run's final event stays uncounted there
        // too.
        queue_.schedule(arrival, [this, p, q, r] {
          ++late_;
          if (sink_ != nullptr) {
            sink_->on_delivery(DeliveryKind::kLate, r, p, q, queue_.now());
          }
        });
      } else if (arrival == due && close_precedes_delivery_at_tie(p, q)) {
        // The event-queue plane would run the close first and the
        // delivery into a dead inbox right after: counted and
        // byte-accounted, never consumed.
        count_delivery(arrival, r);
        account_delivery(r, msg);
        if (sink_ != nullptr) schedule_trace_delivery(p, q, r, arrival, true);
      } else {
        publish_frag(p, q, r, arrival, slot);
        if (sink_ != nullptr) schedule_trace_delivery(p, q, r, arrival, false);
      }
    }

    if (ring_plane) {
      // Register the close on the calendar (seq keeps the FIFO
      // interleave with any late timers queued above).
      const std::size_t pi = static_cast<std::size_t>(p);
      close_time_[pi] = deadline(p, r);
      close_seq_[pi] = queue_.take_seq();
      close_round_[pi] = r;
    } else {
      queue_.schedule(deadline(p, r), [this, p, r] { close_round(p, r); });
    }
  }

  /// Ring plane, sink attached: schedules the no-op trace event that
  /// stands in for the event-queue plane's delivery event at the same
  /// (time, seq) slot, keeping the two planes' captures and sequence
  /// streams aligned (see set_trace_sink).
  void schedule_trace_delivery(ProcId from, ProcId to, Round r,
                               SimTime arrival, bool tie_discard) {
    queue_.schedule(arrival, [this, from, to, r, tie_discard] {
      sink_->on_delivery(
          tie_discard ? DeliveryKind::kTieDiscard : DeliveryKind::kOnTime, r,
          from, to, queue_.now());
    });
  }

  /// Event-queue plane only: one scheduled event per delivery.
  void deliver(ProcId from, ProcId to, Round r) {
    if (queue_.now() > deadline(to, r)) {
      ++late_;  // communication closure: the round already ended
      if (sink_ != nullptr) {
        sink_->on_delivery(DeliveryKind::kLate, r, from, to, queue_.now());
      }
      return;
    }
    ++delivered_;
    // Arrival exactly at the deadline after the close already ran: the
    // deposit lands in a dead inbox (counted, never consumed) — the
    // tie the ring plane reproduces analytically.
    if (sink_ != nullptr) {
      const bool dead =
          finalized_round_[static_cast<std::size_t>(to)] >= r;
      sink_->on_delivery(
          dead ? DeliveryKind::kTieDiscard : DeliveryKind::kOnTime, r, from,
          to, queue_.now());
    }
    deposit(from, to, r, dcache_[dcache_slot(from, r)]);
  }

  void close_round(ProcId p, Round r) {
    if (sink_ != nullptr) sink_->on_close(r, p, queue_.now());
    // Ring plane: batch-consume everything published since the last
    // close (round-r frags, plus early round-(r+1) frags that simply
    // land in the other parity slot).
    if (config_.plane == NetPlane::kRing) drain_ring(p);

    RoundInboxSlot<Msg>& slot = inboxes_.acquire(p, r);
    const Inbox<Msg> view(slot.senders, slot.messages);
    processes_[static_cast<std::size_t>(p)]->transition(r, view);
    finalized_round_[static_cast<std::size_t>(p)] = r;

    // Record the derived communication-graph row *after* the
    // transition: when the last row of round r lands, every process is
    // in its end-of-round-r state, so observers (skeleton trackers,
    // lemma monitors) see a consistent cut.
    derived_row(p, r, slot.senders);

    // The close of round r is the start of round r + 1.
    start_round(p, r + 1);
  }

  struct PendingRound {
    Round round = 0;
    Digraph graph;
    /// n <= 64 only: staged in-rows (bit q of word p = edge q -> p),
    /// landed into `graph` in one transpose when the round completes.
    std::vector<std::uint64_t> in_words;
    ProcId rows = 0;
    std::int64_t bytes = 0;
    std::int64_t max_message_bytes = 0;
  };

  PendingRound& pending_for(Round r) {
    for (PendingRound& pg : pending_rounds_) {
      if (pg.round == r) return pg;
    }
    // Recycle a retired record when one is parked (derived_row returns
    // them reset): a fresh Digraph(n) heap-allocates 2n rows, which
    // would be the only per-round allocation left on the hot path.
    PendingRound rec;
    if (!pending_pool_.empty()) {
      rec = std::move(pending_pool_.back());
      pending_pool_.pop_back();
    } else {
      rec.graph = Digraph(n());
      if (use_rows64_) rec.in_words.assign(static_cast<std::size_t>(n()), 0);
    }
    rec.round = r;
    pending_rounds_.push_back(std::move(rec));
    return pending_rounds_.back();
  }

  /// Byte accounting for one on-time delivery (sizer installed only).
  void account_delivery(Round r, const Msg& msg) {
    if (!this->sizer_) return;
    const std::int64_t bytes = this->sizer_(msg);
    PendingRound& rec = pending_for(r);
    rec.bytes += bytes;
    rec.max_message_bytes = std::max(rec.max_message_bytes, bytes);
  }

  /// Collects per-process rows into whole derived graphs; once a
  /// round's last row lands, records the round in the trace and fires
  /// the observer bus. Rounds complete in order: the last close of
  /// round r (at r*D + max skew) precedes the first close of round
  /// r+1 (at (r+1)*D + min skew) because skews are constrained below
  /// D.
  void derived_row(ProcId p, Round r, const ProcSet& senders) {
    PendingRound& rec = pending_for(r);
    if (use_rows64_) {
      // Stage the row as one packed word; the whole round's edge set
      // lands below via a single 64x64 transpose instead of n
      // scattered out-row inserts per close.
      rec.in_words[static_cast<std::size_t>(p)] = senders.word_at(0);
    } else {
      rec.graph.add_in_edges(p, senders);
    }
    if (++rec.rows == n()) {
      if (use_rows64_) rec.graph.or_in_rows64(rec.in_words.data());
      RoundStats stats;
      stats.round = r;
      stats.messages_delivered = rec.graph.edge_count();
      stats.bytes_delivered = rec.bytes;
      stats.max_message_bytes = rec.max_message_bytes;
      this->trace_.record(stats);
      this->bus_.notify(r, rec.graph);
      Digraph retired = std::exchange(last_graph_, std::move(rec.graph));
      if (retired.n() == n()) {
        retired.reset();
        PendingRound recycled;
        recycled.graph = std::move(retired);
        recycled.in_words = std::move(rec.in_words);
        std::fill(recycled.in_words.begin(), recycled.in_words.end(), 0);
        pending_pool_.push_back(std::move(recycled));
      }
      ++derived_rounds_;
      std::erase_if(pending_rounds_,
                    [r](const PendingRound& pg) { return pg.round == r; });
    }
  }

  /// A ring-plane on-time message counted before its arrival instant
  /// (early drain or publish-time zombie); settled into delivered_
  /// once its arrival passes, evaluated analytically at a cut before.
  struct FutureCount {
    SimTime arrival = 0;
    Round round = 0;
  };

  NetConfig config_;
  LinkMatrix links_;
  std::vector<std::unique_ptr<Process>> processes_;
  Rng rng_;
  EventQueue queue_;
  InboxBuffer<Msg> inboxes_;
  /// Shared payload dcache: 2 slots per sender (round parity).
  std::vector<Msg> dcache_;
  /// Ring plane state (empty on the event-queue plane).
  std::vector<FragRing<Msg>> rings_;
  std::vector<FlowControl> fctl_;
  std::vector<FlowSeq> drain_fseq_;
  std::vector<typename FragRing<Msg>::Cursor> cursors_;
  /// Close calendar (ring plane): the fixed per-round close order and
  /// each process's pending close (absolute time, tie-break seq,
  /// round; round 0 = not yet armed).
  std::vector<ProcId> close_order_;
  std::vector<SimTime> close_time_;
  std::vector<std::uint64_t> close_seq_;
  std::vector<Round> close_round_;
  std::size_t next_close_ = 0;
  std::vector<Round> finalized_round_;
  std::vector<FutureCount> future_counts_;
  std::vector<PendingRound> pending_rounds_;
  /// Retired round records (graph reset, rows re-zeroed), ready for
  /// the next round.
  std::vector<PendingRound> pending_pool_;
  /// n <= 64: derived rows staged as packed words, landed per round
  /// with one transpose (Digraph::or_in_rows64).
  bool use_rows64_ = false;
  Digraph last_graph_;
  Round derived_rounds_ = 0;
  std::int64_t late_ = 0;
  std::int64_t lost_ = 0;
  std::int64_t delivered_ = 0;
  /// Capture hooks (null/empty when not tracing).
  NetTraceSink* sink_ = nullptr;
  TraceEncoder trace_encoder_;
  std::vector<std::uint8_t> encode_scratch_;
};

}  // namespace sskel
