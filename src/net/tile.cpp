#include "net/tile.hpp"

#include <atomic>
#include <utility>

#include "util/assert.hpp"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace sskel {

namespace {

void pin_current_thread(int cpu, std::atomic<unsigned>& failures) {
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  if (pthread_setaffinity_np(pthread_self(), sizeof(set), &set) != 0) {
    failures.fetch_add(1, std::memory_order_relaxed);
  }
#else
  (void)cpu;
  failures.fetch_add(1, std::memory_order_relaxed);
#endif
}

std::vector<int> resolve_placement(const TilePlaneOptions& options,
                                   unsigned tiles) {
  if (!options.pin_threads) return {};
  std::vector<int> plan;
  if (!options.cpu_placement.empty()) {
    plan.reserve(tiles);
    for (unsigned i = 0; i < tiles; ++i) {
      plan.push_back(options.cpu_placement[i % options.cpu_placement.size()]);
    }
    return plan;
  }
  plan = plan_tile_cpus(probe_cpu_topology(), tiles);
  if (plan.empty()) {  // degenerate probe: fall back to identity
    for (unsigned i = 0; i < tiles; ++i) plan.push_back(static_cast<int>(i));
  }
  return plan;
}

}  // namespace

struct TilePlane::Tile {
  Tile(unsigned tile_index, const TilePlaneOptions& options,
       const FlowSeq* result_mark)
      : index(tile_index),
        intake(options.ring_depth),
        result(options.ring_depth),
        intake_fctl(intake.depth()),
        result_fctl(result.depth()) {
    intake_fctl.add_consumer(&intake_fseq);
    result_fctl.add_consumer(result_mark);
  }

  unsigned index;
  FragRing<TileWork> intake;
  FragRing<TileResult> result;
  /// Published by the tile thread; read by the dispatcher's intake
  /// flow control.
  FlowSeq intake_fseq;
  /// Dispatcher-side credits against this tile's intake.
  FlowControl intake_fctl;
  /// Tile-side credits against the dispatcher's result consumption.
  FlowControl result_fctl;
  /// Tile-thread counters mirrored atomically so the dispatcher can
  /// read them while the tile runs.
  std::atomic<std::int64_t> frags{0};
  std::atomic<std::int64_t> result_stalls{0};
};

TilePlane::TilePlane(unsigned tiles, WorkFn fn, void* ctx,
                     TilePlaneOptions options)
    : fn_(fn),
      ctx_(ctx),
      options_(std::move(options)),
      placement_(resolve_placement(options_, tiles)),
      result_fseq_(tiles) {
  SSKEL_REQUIRE(tiles > 0);
  SSKEL_REQUIRE(fn != nullptr);
  tiles_.reserve(tiles);
  for (unsigned i = 0; i < tiles; ++i) {
    tiles_.push_back(std::make_unique<Tile>(i, options_, &result_fseq_[i]));
    const std::size_t producer = result_mux_.attach(&tiles_[i]->result);
    SSKEL_ASSERT(producer == i);
  }
  threads_.reserve(tiles);
  for (unsigned i = 0; i < tiles; ++i) {
    Tile* tile = tiles_[i].get();
    threads_.emplace_back([this, tile](const std::stop_token& stop) {
      tile_main(*tile, stop);
    });
  }
}

TilePlane::~TilePlane() {
  for (std::jthread& thread : threads_) thread.request_stop();
  // Unblock tiles parked on result-ring backpressure before joining.
  std::vector<TileResult> residue;
  drain(residue);
  threads_.clear();  // joins every tile
}

unsigned TilePlane::tiles() const {
  return static_cast<unsigned>(tiles_.size());
}

void TilePlane::tile_main(Tile& tile, const std::stop_token& stop) {
  if (options_.pin_threads && tile.index < placement_.size()) {
    pin_current_thread(placement_[tile.index], pin_failures_);
  }
  FragRing<TileWork>::Cursor cursor;
  TickPacer pacer(options_.lazy);
  Frag frag;
  while (true) {
    const PollStatus status = tile.intake.poll(cursor, frag);
    if (status == PollStatus::kFrag) {
      // In-place payload read: safe, the dispatcher is credit-gated on
      // intake_fseq and cannot recycle this slot yet.
      const TileWork work = tile.intake.payload(frag.slot);
      if (pacer.tick()) tile.intake_fseq.publish(cursor.seq);
      const TileResult result = fn_(ctx_, tile.index, work);
      while (!tile.result_fctl.acquire(tile.result.seq_produced())) {
        tile.result_stalls.fetch_add(1, std::memory_order_relaxed);
        if (stop.stop_requested()) return;  // shutdown: drop the result
        std::this_thread::yield();
      }
      const auto slot = static_cast<std::uint32_t>(
          tile.result.seq_produced() % tile.result.payload_slots());
      tile.result.payload(slot) = result;
      tile.result.publish(frag_sig(static_cast<ProcId>(tile.index), 0), slot,
                          /*round=*/0, /*tsorig=*/0);
      tile.frags.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    SSKEL_ASSERT(status == PollStatus::kEmpty);  // credit-gated: no overruns
    tile.intake_fseq.publish(cursor.seq);
    if (stop.stop_requested()) return;
    std::this_thread::yield();
  }
}

unsigned TilePlane::submit(const TileWork& work) {
  const unsigned index = next_tile_;
  next_tile_ = (next_tile_ + 1) % tiles();
  Tile& tile = *tiles_[index];
  while (!tile.intake_fctl.acquire(tile.intake.seq_produced())) {
    // Backpressure: the tile's intake is full. Keep consuming results
    // meanwhile — a tile blocked on its result ring would otherwise
    // deadlock against a dispatcher blocked on its intake ring.
    drain(pending_);
    std::this_thread::yield();
  }
  const auto slot = static_cast<std::uint32_t>(tile.intake.seq_produced() %
                                               tile.intake.payload_slots());
  tile.intake.payload(slot) = work;
  tile.intake.publish(frag_sig(0, static_cast<ProcId>(index)), slot,
                      /*round=*/0, /*tsorig=*/0);
  return index;
}

bool TilePlane::try_submit(const TileWork& work) {
  for (unsigned offset = 0; offset < tiles(); ++offset) {
    const unsigned index = (next_tile_ + offset) % tiles();
    Tile& tile = *tiles_[index];
    if (!tile.intake_fctl.acquire(tile.intake.seq_produced())) continue;
    const auto slot = static_cast<std::uint32_t>(tile.intake.seq_produced() %
                                                 tile.intake.payload_slots());
    tile.intake.payload(slot) = work;
    tile.intake.publish(frag_sig(0, static_cast<ProcId>(index)), slot,
                        /*round=*/0, /*tsorig=*/0);
    next_tile_ = (index + 1) % tiles();
    return true;
  }
  return false;
}

std::size_t TilePlane::drain(std::vector<TileResult>& out) {
  std::size_t drained = 0;
  if (&out != &pending_ && !pending_.empty()) {
    drained += pending_.size();
    out.insert(out.end(), pending_.begin(), pending_.end());
    pending_.clear();
  }
  Frag frag;
  std::size_t producer = 0;
  while (result_mux_.poll(frag, producer) == PollStatus::kFrag) {
    out.push_back(tiles_[producer]->result.payload(frag.slot));
    result_fseq_[producer].publish(result_mux_.seq_consumed(producer));
    ++drained;
  }
  return drained;
}

void TilePlane::run_all(const std::vector<TileWork>& work,
                        std::vector<TileResult>& out) {
  const std::size_t base = out.size();
  for (const TileWork& item : work) {
    submit(item);
    drain(out);
  }
  while (out.size() - base < work.size()) {
    if (drain(out) == 0) std::this_thread::yield();
  }
}

std::int64_t TilePlane::submit_stalls() const {
  std::int64_t total = 0;
  for (const auto& tile : tiles_) total += tile->intake_fctl.stalls();
  return total;
}

std::int64_t TilePlane::result_stalls() const {
  std::int64_t total = 0;
  for (const auto& tile : tiles_) {
    total += tile->result_stalls.load(std::memory_order_relaxed);
  }
  return total;
}

std::int64_t TilePlane::frags_processed() const {
  std::int64_t total = 0;
  for (const auto& tile : tiles_) {
    total += tile->frags.load(std::memory_order_relaxed);
  }
  return total;
}

unsigned TilePlane::failed_pins() const {
  return pin_failures_.load(std::memory_order_relaxed);
}

const std::vector<int>& TilePlane::placement() const { return placement_; }

}  // namespace sskel
