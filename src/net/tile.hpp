// Worker tiles: pinned threads joined by frag rings with credit-based
// flow control, multiplexing many concurrent net-backed runs
// (DESIGN.md §12).
//
// Topology (the fd_netmux shape, specialized to a dispatch fan):
//
//   dispatcher ──intake ring──▶ tile 0 ──result ring──▶ ┐
//   dispatcher ──intake ring──▶ tile 1 ──result ring──▶ ├─ RingMux ─▶ dispatcher
//   dispatcher ──intake ring──▶ tile T ──result ring──▶ ┘
//
// Every ring is single-producer (net/ring.hpp); every link is credit
// gated (net/fctl.hpp): the dispatcher cannot overrun a slow tile's
// intake, and a tile cannot overrun the dispatcher's result
// consumption. Tiles publish their consumption watermark on a tick
// pace (TickPacer) — every `lazy` frags and on idle — so the fseq
// cache line stays off the per-frag path, exactly the tempo of
// firedancer's housekeeping ticks.
//
// Work items and results are fixed POD records (TileWork/TileResult):
// the payloads cross threads by value through the dcache, which keeps
// the in-place ring reads race-free under flow control. The work
// function itself runs whole net-backed runs (or any other job) on
// the tile's thread; the plane neither knows nor cares.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "net/fctl.hpp"
#include "net/ring.hpp"
#include "util/topology.hpp"

namespace sskel {

/// Tick-paced housekeeping: returns true every `interval` ticks (and
/// on the first tick), bounding how often slow-path work — watermark
/// publication, stall bookkeeping — interrupts the frag-processing
/// fast path.
class TickPacer {
 public:
  explicit TickPacer(std::int64_t interval)
      : interval_(interval > 0 ? interval : 1) {}

  bool tick() {
    if (++since_ < interval_) return false;
    since_ = 0;
    return true;
  }

  [[nodiscard]] std::int64_t interval() const { return interval_; }

 private:
  std::int64_t interval_;
  std::int64_t since_ = 0;
};

/// One unit of work dispatched to a tile. Meaning of the fields is the
/// work function's contract (the bench uses id/seed/param as run id,
/// RNG seed, and round budget).
struct TileWork {
  std::uint64_t id = 0;
  std::uint64_t seed = 0;
  std::uint64_t param = 0;
};

/// One completed unit, reported back through the tile's result ring.
struct TileResult {
  std::uint64_t id = 0;
  std::int64_t value = 0;
  std::int64_t aux = 0;
};

struct TilePlaneOptions {
  /// Descriptor depth of each intake/result ring (rounded to pow2).
  std::size_t ring_depth = 64;
  /// Housekeeping cadence: a tile publishes its intake watermark every
  /// `lazy` processed frags (and whenever it goes idle).
  std::int64_t lazy = 8;
  /// Pin each tile thread to a CPU (Linux only; a failed pin is
  /// recorded, never fatal — CI runners often forbid affinity
  /// changes). The CPU per tile comes from `cpu_placement` when set,
  /// else from the probed host topology physical-core-first
  /// (util/topology.hpp), so SMT siblings are used only after every
  /// physical core carries a tile.
  bool pin_threads = false;
  /// Explicit CPU id per tile (cycled when shorter than the tile
  /// count). Empty = derive from probe_cpu_topology(). Ignored unless
  /// pin_threads is set.
  std::vector<int> cpu_placement;
};

/// A fixed set of worker tiles executing TileWork items delivered over
/// credit-gated frag rings. The constructor spawns the tiles; the
/// destructor stops and joins them. All public methods belong to the
/// dispatcher thread.
class TilePlane {
 public:
  /// `tile` is the executing tile's index — work functions use it to
  /// address persistent per-tile state (scratch engines, intern
  /// shards) without thread-local lookups.
  using WorkFn = TileResult (*)(void* ctx, unsigned tile,
                                const TileWork& work);

  TilePlane(unsigned tiles, WorkFn fn, void* ctx,
            TilePlaneOptions options = {});
  ~TilePlane();

  TilePlane(const TilePlane&) = delete;
  TilePlane& operator=(const TilePlane&) = delete;

  [[nodiscard]] unsigned tiles() const;

  /// Publishes one work item to the next tile round-robin, spinning
  /// (with yields) through backpressure until the tile's intake has
  /// credit. Returns the tile index the work went to.
  unsigned submit(const TileWork& work);

  /// Non-blocking submit: scans the tiles round-robin starting at the
  /// next one and publishes to the first intake with credit. Returns
  /// false — without spinning or draining — when every intake is full,
  /// so a streaming dispatcher can keep ring occupancy high while
  /// staying off the backpressure path (each refused intake still
  /// counts one flow-control stall, which is the occupancy signal
  /// adaptive feeders react to).
  bool try_submit(const TileWork& work);

  /// Non-blocking sweep of every tile's result ring; appends drained
  /// results to `out` and returns how many arrived.
  std::size_t drain(std::vector<TileResult>& out);

  /// Submits every item and drains until all results arrived. Results
  /// are appended in completion order; callers needing determinism key
  /// them by TileResult::id (the Monte-Carlo discipline).
  void run_all(const std::vector<TileWork>& work,
               std::vector<TileResult>& out);

  /// Dispatcher-side backpressure events against tile intakes.
  [[nodiscard]] std::int64_t submit_stalls() const;
  /// Tile-side backpressure events against the result rings.
  [[nodiscard]] std::int64_t result_stalls() const;
  /// Frags processed across all tiles.
  [[nodiscard]] std::int64_t frags_processed() const;
  /// Tiles whose CPU pin attempt failed (diagnostics; 0 when pinning
  /// is off).
  [[nodiscard]] unsigned failed_pins() const;
  /// Planned CPU id per tile when pinning is on (empty otherwise).
  /// Entries are the *intended* placement; failed_pins() says how many
  /// of them the OS refused.
  [[nodiscard]] const std::vector<int>& placement() const;

 private:
  struct Tile;
  void tile_main(Tile& tile, const std::stop_token& stop);

  WorkFn fn_;
  void* ctx_;
  TilePlaneOptions options_;
  std::vector<int> placement_;  // CPU per tile; empty when not pinning
  std::vector<std::unique_ptr<Tile>> tiles_;
  RingMux<TileResult> result_mux_;
  std::vector<FlowSeq> result_fseq_;  // dispatcher's consumption marks
  std::vector<TileResult> pending_;   // results drained during submit stalls
  unsigned next_tile_ = 0;
  std::atomic<unsigned> pin_failures_{0};
  std::vector<std::jthread> threads_;  // last member: joins first
};

}  // namespace sskel
