#include "net/kset_net.hpp"

#include <algorithm>
#include <memory>

#include "graph/scc.hpp"
#include "kset/runner.hpp"
#include "skeleton/tracker.hpp"

namespace sskel {

NetKSetReport run_kset_over_network(const LinkMatrix& links,
                                    const NetKSetConfig& config) {
  const ProcId n = links.n();
  SSKEL_REQUIRE(config.k >= 1);

  const std::vector<Value> proposals =
      config.proposals.empty() ? default_proposals(n) : config.proposals;
  SSKEL_REQUIRE(proposals.size() == static_cast<std::size_t>(n));

  std::vector<std::unique_ptr<Algorithm<SkeletonMessage>>> procs;
  std::vector<SkeletonKSetProcess*> views;
  for (ProcId p = 0; p < n; ++p) {
    auto proc = std::make_unique<SkeletonKSetProcess>(
        n, p, proposals[static_cast<std::size_t>(p)], config.guard);
    views.push_back(proc.get());
    procs.push_back(std::move(proc));
  }

  NetRoundDriver<SkeletonMessage> driver(config.net, links, std::move(procs));
  SkeletonTracker tracker(n);
  driver.add_observer(tracker.observer());

  const Round max_rounds =
      config.max_rounds > 0 ? config.max_rounds : 8 * n + 32;
  auto all_decided = [&] {
    return std::all_of(
        views.begin(), views.end(),
        [](const SkeletonKSetProcess* v) { return v->decided(); });
  };
  driver.run_until(all_decided, max_rounds);

  NetKSetReport report;
  report.n = n;
  report.all_decided = all_decided();
  report.rounds_executed = driver.rounds_completed();
  for (const SkeletonKSetProcess* v : views) {
    Outcome o;
    o.proposal = v->proposal();
    o.decided = v->decided();
    if (v->decided()) {
      o.decision = v->decision();
      o.decision_round = v->decision_round();
      report.last_decision_round =
          std::max(report.last_decision_round, v->decision_round());
    }
    report.outcomes.push_back(o);
  }
  report.verdict = verify_kset(report.outcomes, config.k);
  report.distinct_values = report.verdict.distinct_decisions;
  report.final_skeleton = tracker.skeleton();
  report.skeleton_last_change = tracker.last_change_round();
  report.delivered_messages = driver.delivered_messages();
  report.late_messages = driver.late_messages();
  report.lost_messages = driver.lost_messages();
  report.wall_clock = driver.now();
  return report;
}

}  // namespace sskel
