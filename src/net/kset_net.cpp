#include "net/kset_net.hpp"

#include <utility>

namespace sskel {

NetKSetReport run_kset_over_network(const LinkMatrix& links,
                                    const NetKSetConfig& config) {
  const ProcId n = links.n();
  NetRoundDriver<SkeletonMessage> driver(
      config.net, links, make_kset_processes(n, config.run));

  NetKSetReport report;
  report.kset = run_kset_on_engine(driver, config.run);
  report.delivered_messages = driver.delivered_messages();
  report.late_messages = driver.late_messages();
  report.lost_messages = driver.lost_messages();
  report.credit_stalls = driver.credit_stalls();
  report.ring_frags = driver.ring_frags();
  report.wall_clock = driver.now();
  return report;
}

}  // namespace sskel
