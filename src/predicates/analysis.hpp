// Skeleton analysis utilities — the "duality between communication
// predicates and graph-theoretic properties" the paper's future-work
// section points at.
//
// Given a (stable) skeleton these functions answer: what is the
// smallest k for which Psrcs(k) holds? How does that compare to the
// number of root components? The paper shows
//   #root components <= min-k  (Theorem 1)
// and the Theorem 2 construction realizes equality; these helpers make
// the relation measurable on arbitrary skeletons.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "graph/digraph.hpp"
#include "predicates/psrcs.hpp"
#include "util/versioned_cache.hpp"

namespace sskel {

/// Smallest k >= 1 such that Psrcs(k) holds on the skeleton, computed
/// exactly (Psrcs is monotone in k, so this is the first passing k).
/// Returns n-1 at worst (any skeleton with self-loops satisfies
/// Psrcs(n-1): among n processes, at most n-1 can be pairwise
/// "sourceless"... not in general — hence nullopt when even k = n-1
/// fails). Exponential in the worst case; intended for n <= ~20.
[[nodiscard]] std::optional<int> min_psrcs_k(const Digraph& skeleton);

/// Size of the largest "sourceless" subset: a set S such that no
/// process has edges to two distinct members of S. Psrcs(k) holds
/// iff this value is <= k. Exact via depth-first search with
/// feasibility pruning; exponential worst case, fine for n <= ~20.
[[nodiscard]] int max_sourceless_subset(const Digraph& skeleton);

/// Theorem 1 gap report for a skeleton: root components vs min-k.
struct PredicateProfile {
  int root_components = 0;
  int min_k = 0;            // smallest k with Psrcs(k), n-1+1 if none
  bool theorem1_consistent = false;  // root_components <= min_k
};

[[nodiscard]] PredicateProfile profile_skeleton(const Digraph& skeleton);

/// Variant for callers that already maintain the skeleton's root
/// components (e.g. SkeletonTracker's incremental SCC analytics):
/// takes the root-component count as given and skips the internal
/// Tarjan pass, so profiling a tracked skeleton costs only the min-k
/// search.
[[nodiscard]] PredicateProfile profile_skeleton(const Digraph& skeleton,
                                                int root_count);

/// Change-driven predicate evaluation: caches Psrcs(k) verdicts and
/// the Theorem-1 profile of a monitored skeleton, keyed on the
/// SkeletonTracker's version stamp. Monotonicity (Lemma 1) makes the
/// version a complete invalidation key, so per-round re-evaluation in
/// the post-stabilization tail is a pointer return, not a subset
/// search. Callers pass (skeleton, version) pairs from the same
/// tracker; mixing trackers in one cache is a usage error.
class SkeletonPredicateCache {
 public:
  /// Optional shared-resolution hook: when set, psrcs_exact() first
  /// asks the provider for a verdict and only falls back to the local
  /// per-(version, k) cache when the provider returns nullptr. The
  /// run-scoped intern table (skeleton/intern.hpp,
  /// make_interned_psrcs_provider) plugs in here so identical stable
  /// skeletons across trials share one subset search; the predicates
  /// layer itself stays ignorant of interning.
  using SharedPsrcsProvider = std::function<const PsrcsCheck*(
      const Digraph& skeleton, std::uint64_t version, int k)>;

  void set_shared_provider(SharedPsrcsProvider provider) {
    shared_provider_ = std::move(provider);
  }

  /// Verdicts served by the shared provider instead of a local search
  /// or cache hit.
  [[nodiscard]] std::int64_t shared_hits() const { return shared_hits_; }

  /// check_psrcs_exact(skeleton, k), recomputed only on version bumps.
  const PsrcsCheck& psrcs_exact(const Digraph& skeleton,
                                std::uint64_t version, int k);

  /// profile_skeleton(skeleton), recomputed only on version bumps.
  const PredicateProfile& profile(const Digraph& skeleton,
                                  std::uint64_t version);

  /// Like profile(), but reuses the caller's already-maintained root
  /// components (a SkeletonTracker's current_root_components()) so a
  /// recompute runs no Tarjan of its own. Callers must pass roots that
  /// belong to `skeleton` at `version`.
  const PredicateProfile& profile_with_roots(
      const Digraph& skeleton, std::uint64_t version,
      const std::vector<ProcSet>& root_components);

  /// Total underlying Psrcs searches actually run, summed over all k
  /// (for the cache-invalidation property tests).
  [[nodiscard]] std::int64_t psrcs_recomputes() const;

  [[nodiscard]] std::int64_t profile_recomputes() const {
    return profile_.recomputes();
  }

 private:
  SharedPsrcsProvider shared_provider_;
  std::int64_t shared_hits_ = 0;
  std::vector<std::pair<int, VersionedCache<PsrcsCheck>>> psrcs_by_k_;
  VersionedCache<PredicateProfile> profile_;
};

}  // namespace sskel
