// Skeleton analysis utilities — the "duality between communication
// predicates and graph-theoretic properties" the paper's future-work
// section points at.
//
// Given a (stable) skeleton these functions answer: what is the
// smallest k for which Psrcs(k) holds? How does that compare to the
// number of root components? The paper shows
//   #root components <= min-k  (Theorem 1)
// and the Theorem 2 construction realizes equality; these helpers make
// the relation measurable on arbitrary skeletons.
#pragma once

#include <optional>

#include "graph/digraph.hpp"

namespace sskel {

/// Smallest k >= 1 such that Psrcs(k) holds on the skeleton, computed
/// exactly (Psrcs is monotone in k, so this is the first passing k).
/// Returns n-1 at worst (any skeleton with self-loops satisfies
/// Psrcs(n-1): among n processes, at most n-1 can be pairwise
/// "sourceless"... not in general — hence nullopt when even k = n-1
/// fails). Exponential in the worst case; intended for n <= ~20.
[[nodiscard]] std::optional<int> min_psrcs_k(const Digraph& skeleton);

/// Size of the largest "sourceless" subset: a set S such that no
/// process has edges to two distinct members of S. Psrcs(k) holds
/// iff this value is <= k. Exact via depth-first search with
/// feasibility pruning; exponential worst case, fine for n <= ~20.
[[nodiscard]] int max_sourceless_subset(const Digraph& skeleton);

/// Theorem 1 gap report for a skeleton: root components vs min-k.
struct PredicateProfile {
  int root_components = 0;
  int min_k = 0;            // smallest k with Psrcs(k), n-1+1 if none
  bool theorem1_consistent = false;  // root_components <= min_k
};

[[nodiscard]] PredicateProfile profile_skeleton(const Digraph& skeleton);

}  // namespace sskel
