// The communication predicate Psrcs(k) and its machinery (Sec. III).
//
// For a run with stable skeleton G∩∞:
//
//   Psrc(p, S)  ::  exists q != q' in S with p in PT(q) cap PT(q')
//   Psrcs(k)    ::  for all S with |S| = k+1, exists p: Psrc(p, S)
//
// In graph terms: p is a *2-source* for S when p has stable edges to
// two distinct members of S (p may itself be one of them — self-loops
// count). Everything here operates on an explicit skeleton graph, so
// the same checkers validate generated adversaries (against the
// skeleton they promise) and recorded runs (against the skeleton the
// tracker observed).
#pragma once

#include <optional>
#include <vector>

#include "graph/digraph.hpp"
#include "util/rng.hpp"

namespace sskel {

/// Evidence that Psrc(p, S) holds.
struct TwoSourceWitness {
  ProcId source = -1;      // p
  ProcId receiver_a = -1;  // q
  ProcId receiver_b = -1;  // q' (distinct from q)
};

/// Finds a 2-source for the set S in the given skeleton: a process p
/// (anywhere in Pi) with edges to two distinct members of S.
[[nodiscard]] std::optional<TwoSourceWitness> find_two_source(
    const Digraph& skeleton, const ProcSet& s);

/// Result of a Psrcs(k) check.
struct PsrcsCheck {
  bool holds = false;
  /// When violated: a (k+1)-subset with no 2-source.
  std::optional<ProcSet> violating_subset;
  /// Number of subsets examined: full (k+1)-subsets for the
  /// brute-force enumerator, sourceless partial subsets materialized
  /// for the branch-and-bound procedure (cost diagnostics).
  std::int64_t subsets_checked = 0;
  /// True when the verdict is a proof: every verdict of the exact and
  /// brute-force checkers, and a sampled *violation* (the witness is
  /// the proof). A sampled pass sets this to false — it only says no
  /// violating subset was drawn.
  bool certified = true;
  /// Statistical weight of the verdict, in [0, 1]. Certified verdicts
  /// carry 1.0. For an uncertified sampled pass this is the
  /// (1 - delta)-style bound P(detect a violation | one exists): if
  /// Psrcs(k) is false at least one of the C(n, k+1) subsets is
  /// sourceless, so each uniform sample hits a violator with
  /// probability >= 1/C(n, k+1) and s misses give
  ///   confidence = 1 - (1 - 1/C(n, k+1))^s.
  /// Conservative (assumes a single violator) and vanishingly small
  /// for large n unless samples scale with C(n, k+1) — which is
  /// exactly the caveat callers must surface instead of treating the
  /// verdict as an exact certificate.
  double confidence = 1.0;
};

/// Exact decision procedure for Psrcs(k): branch-and-bound search for
/// a "sourceless" (k+1)-subset (a set S such that no process has
/// stable edges to two distinct members of S — exactly a violator of
/// Eq. (8)). Instead of enumerating all C(n, k+1) subsets it grows
/// sourceless partial subsets only:
///   * per-candidate conflict bitsets ("everything sharing a 2-source
///     with v") are precomputed once from the out-neighborhood rows,
///     so extending a partial subset is one word-parallel OR;
///   * any extension already witnessed by a 2-source is pruned at
///     O(1) via the accumulated conflict mask;
///   * candidates are tried in ascending in-coverage order (sparsely
///     covered processes first), which finds violating subsets early;
///   * branches that cannot reach size k+1 are cut by a remaining-
///     candidates bound.
/// Same contract and verdicts as check_psrcs_bruteforce, orders of
/// magnitude fewer subsets visited on non-trivial instances; the
/// violating witness may differ (any sourceless (k+1)-subset is a
/// valid witness).
[[nodiscard]] PsrcsCheck check_psrcs_exact(const Digraph& skeleton, int k);

/// The literal Eq. (8) enumeration over every (k+1)-subset of Pi.
/// Cost C(n, k+1); kept as the reference oracle for randomized
/// equivalence tests of check_psrcs_exact and for subset-count
/// baselines in the benches. Intended for n <= ~24 or small k.
[[nodiscard]] PsrcsCheck check_psrcs_bruteforce(const Digraph& skeleton,
                                                int k);

/// Randomized refutation search: samples `samples` subsets of size
/// k+1 and reports a violation if one is found. Never proves the
/// predicate, but scales to any n; used by large-n benches as a
/// sanity screen. A found violation is certified (the subset is a
/// witness); a pass is returned with certified = false and the
/// miss-probability confidence bound documented on PsrcsCheck, so a
/// sampled pass can no longer masquerade as an exact verdict.
[[nodiscard]] PsrcsCheck check_psrcs_sampled(const Digraph& skeleton, int k,
                                             int samples, Rng& rng);

/// C(n, k) evaluated in double precision (exact while representable,
/// +inf on overflow). Exposed for tests pinning the sampled-verdict
/// confidence bound.
[[nodiscard]] double binomial_double(int n, int k);

/// A *hub cover* of size m is a set H of m processes such that every
/// process has a stable in-edge from some member of H. By pigeonhole,
/// a hub cover of size <= k implies Psrcs(k): any k+1 processes
/// include two sharing a hub. This is the constructive sufficient
/// condition our random adversaries are built around.
///
/// Returns a greedy (not necessarily minimum) hub cover, or nullopt if
/// some process has no stable in-edge at all (impossible once
/// self-loops are closed: {p covers p} always works, so the greedy
/// cover is at most n).
[[nodiscard]] std::optional<ProcSet> greedy_hub_cover(const Digraph& skeleton);

/// True iff `hubs` is a hub cover of the skeleton.
[[nodiscard]] bool is_hub_cover(const Digraph& skeleton, const ProcSet& hubs);

}  // namespace sskel
