#include "predicates/classic.hpp"

#include "util/assert.hpp"

namespace sskel {

ProcSet round_kernel(const Digraph& g) {
  ProcSet kernel = g.nodes();
  for (ProcId p : g.nodes()) {
    kernel &= g.in_neighbors(p);
  }
  return kernel;
}

bool has_nonempty_kernel(const Digraph& g) {
  return !round_kernel(g).empty();
}

bool is_nonsplit(const Digraph& g) {
  for (ProcId p : g.nodes()) {
    for (ProcId q = g.nodes().next_after(p); q != -1;
         q = g.nodes().next_after(q)) {
      if (!g.in_neighbors(p).intersects(g.in_neighbors(q))) return false;
    }
  }
  return true;
}

RunSynchronyProfile profile_run(const std::vector<Digraph>& graphs) {
  SSKEL_REQUIRE(!graphs.empty());
  const ProcId n = graphs.front().n();
  RunSynchronyProfile profile;
  profile.perpetual_kernel = ProcSet::full(n);
  profile.skeleton = Digraph::complete(n);
  for (const Digraph& raw : graphs) {
    SSKEL_REQUIRE(raw.n() == n);
    Digraph g = raw;
    g.add_self_loops();
    ++profile.rounds;
    const ProcSet kernel = round_kernel(g);
    if (!kernel.empty()) ++profile.rounds_with_kernel;
    if (is_nonsplit(g)) ++profile.nonsplit_rounds;
    profile.perpetual_kernel &= kernel;
    profile.skeleton.intersect_with(g);
  }
  return profile;
}

}  // namespace sskel
