#include "predicates/ho_view.hpp"

#include "util/assert.hpp"

namespace sskel {

HoRecorder::HoRecorder(ProcId n) : n_(n) { SSKEL_REQUIRE(n > 0); }

void HoRecorder::record(Round r, const Digraph& graph) {
  SSKEL_REQUIRE(graph.n() == n_);
  SSKEL_REQUIRE(r == static_cast<Round>(per_round_ho_.size()) + 1);
  std::vector<ProcSet> hos;
  hos.reserve(static_cast<std::size_t>(n_));
  for (ProcId p = 0; p < n_; ++p) hos.push_back(graph.in_neighbors(p));
  per_round_ho_.push_back(std::move(hos));
}

const ProcSet& HoRecorder::ho(ProcId p, Round r) const {
  SSKEL_REQUIRE(r >= 1 && r <= rounds());
  SSKEL_REQUIRE(p >= 0 && p < n_);
  return per_round_ho_[static_cast<std::size_t>(r - 1)]
                      [static_cast<std::size_t>(p)];
}

ProcSet HoRecorder::d(ProcId p, Round r) const {
  return ProcSet::full(n_) - ho(p, r);
}

ProcSet HoRecorder::pt_via_ho(ProcId p, Round r) const {
  SSKEL_REQUIRE(r >= 1 && r <= rounds());
  ProcSet pt = ProcSet::full(n_);
  for (Round rr = 1; rr <= r; ++rr) pt &= ho(p, rr);
  return pt;
}

ProcSet HoRecorder::pt_via_d(ProcId p, Round r) const {
  SSKEL_REQUIRE(r >= 1 && r <= rounds());
  ProcSet suspected(n_);
  for (Round rr = 1; rr <= r; ++rr) suspected |= d(p, rr);
  return ProcSet::full(n_) - suspected;
}

}  // namespace sskel
