// Classic per-round communication-graph properties from the HO
// literature (Charron-Bost & Schiper), alongside the paper's perpetual
// Psrcs(k).
//
//   kernel(G)    = { q : every process hears q in G }            (the
//                  intersection of all HO sets of the round)
//   nonsplit(G)  = every two processes hear a *common* process
//                  (exactly Psrc(p, {q,q'}) demanded per round —
//                  the per-round shadow of Psrcs(1))
//
// Known implication, verified by property tests:
//   nonempty kernel  =>  nonsplit.
//
// These properties ground experiment E12: a *rotating* star gives
// every single round a nonempty kernel, yet its stable skeleton is
// bare self-loops — per-round synchrony that never persists is
// invisible to PT and therefore useless to Algorithm 1, which is
// exactly why the paper quantifies over the *stable* skeleton.
#pragma once

#include <vector>

#include "graph/digraph.hpp"
#include "util/types.hpp"

namespace sskel {

/// Processes heard by every process in this round's graph:
/// { q : out(q) superset of nodes }. (With self-loops closed, members
/// of the kernel reach everyone including themselves.)
[[nodiscard]] ProcSet round_kernel(const Digraph& g);

[[nodiscard]] bool has_nonempty_kernel(const Digraph& g);

/// True iff every pair p != q has a common in-neighbor in g.
[[nodiscard]] bool is_nonsplit(const Digraph& g);

/// Round-by-round synchrony profile of a (finite prefix of a) run.
struct RunSynchronyProfile {
  Round rounds = 0;
  Round rounds_with_kernel = 0;   // nonempty kernel
  Round nonsplit_rounds = 0;
  /// Processes that were in the kernel of *every* round — the
  /// perpetual analogue; nonempty iff the run has a perpetual global
  /// source (a very strong form of Psrcs(1)).
  ProcSet perpetual_kernel;
  /// The skeleton of the profiled prefix.
  Digraph skeleton;
};

/// Profiles a graph sequence (self-loops are closed per round, as the
/// simulator would).
[[nodiscard]] RunSynchronyProfile profile_run(
    const std::vector<Digraph>& graphs);

}  // namespace sskel
