// Heard-Of sets and Round-by-Round fault detector views (Eq. (6), (7)).
//
// The paper's skeleton formalism coincides with two classic models:
//
//   HO model:   HO(p, r)  = processes p hears from in round r
//   RbR FDs:    D(p, r)   = processes p's detector suspects in round r
//                           (p waits for everyone outside D(p, r))
//
// Eq. (6):  (q -> p) in E∩r  <=>  q in HO(p, r') for all r' <= r
//                             <=>  q not in D(p, r') for all r' <= r
// Eq. (7):  PT(p, r) = intersection of HO(p, r'), r' <= r
//                    = Pi minus the union of D(p, r'), r' <= r
//
// HoRecorder materializes both views from a sequence of communication
// graphs so tests can confirm the correspondence mechanically.
#pragma once

#include <vector>

#include "graph/digraph.hpp"
#include "util/types.hpp"

namespace sskel {

class HoRecorder {
 public:
  explicit HoRecorder(ProcId n);

  /// Records G^r; rounds must arrive in order 1, 2, 3, ...
  void record(Round r, const Digraph& graph);

  [[nodiscard]] Round rounds() const {
    return static_cast<Round>(per_round_ho_.size());
  }

  /// HO(p, r): processes p heard from in round r (1-based).
  [[nodiscard]] const ProcSet& ho(ProcId p, Round r) const;

  /// D(p, r): the RbR fault-detector output = Pi \ HO(p, r).
  [[nodiscard]] ProcSet d(ProcId p, Round r) const;

  /// PT(p, r) computed via the HO form of Eq. (7): the running
  /// intersection of heard-of sets.
  [[nodiscard]] ProcSet pt_via_ho(ProcId p, Round r) const;

  /// PT(p, r) computed via the fault-detector form of Eq. (7):
  /// Pi \ union of D(p, r').
  [[nodiscard]] ProcSet pt_via_d(ProcId p, Round r) const;

 private:
  ProcId n_;
  // per_round_ho_[r-1][p] = HO(p, r)
  std::vector<std::vector<ProcSet>> per_round_ho_;
};

}  // namespace sskel
