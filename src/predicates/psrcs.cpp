#include "predicates/psrcs.hpp"

#include <algorithm>

namespace sskel {

std::optional<TwoSourceWitness> find_two_source(const Digraph& skeleton,
                                                const ProcSet& s) {
  SSKEL_REQUIRE(s.universe() == skeleton.n());
  for (ProcId p : skeleton.nodes()) {
    const ProcSet receivers = skeleton.out_neighbors(p) & s;
    if (receivers.count() >= 2) {
      const ProcId a = receivers.first();
      const ProcId b = receivers.next_after(a);
      return TwoSourceWitness{p, a, b};
    }
  }
  return std::nullopt;
}

PsrcsCheck check_psrcs_exact(const Digraph& skeleton, int k) {
  SSKEL_REQUIRE(k >= 1);
  PsrcsCheck result;
  result.holds = true;
  for_each_subset(ProcSet::full(skeleton.n()), k + 1,
                  [&](const ProcSet& subset) {
                    ++result.subsets_checked;
                    if (!find_two_source(skeleton, subset)) {
                      result.holds = false;
                      result.violating_subset = subset;
                      return false;  // stop at the first counterexample
                    }
                    return true;
                  });
  return result;
}

PsrcsCheck check_psrcs_sampled(const Digraph& skeleton, int k, int samples,
                               Rng& rng) {
  SSKEL_REQUIRE(k >= 1);
  SSKEL_REQUIRE(samples >= 0);
  PsrcsCheck result;
  result.holds = true;
  const ProcId n = skeleton.n();
  if (k + 1 > n) return result;  // vacuous

  std::vector<ProcId> ids(static_cast<std::size_t>(n));
  for (ProcId p = 0; p < n; ++p) ids[static_cast<std::size_t>(p)] = p;

  for (int trial = 0; trial < samples; ++trial) {
    // Partial Fisher-Yates: the first k+1 slots become a uniform
    // (k+1)-subset.
    for (int i = 0; i <= k; ++i) {
      const std::size_t j =
          static_cast<std::size_t>(i) +
          static_cast<std::size_t>(rng.next_below(
              static_cast<std::uint64_t>(n - i)));
      std::swap(ids[static_cast<std::size_t>(i)], ids[j]);
    }
    ProcSet subset(n);
    for (int i = 0; i <= k; ++i) subset.insert(ids[static_cast<std::size_t>(i)]);
    ++result.subsets_checked;
    if (!find_two_source(skeleton, subset)) {
      result.holds = false;
      result.violating_subset = subset;
      return result;
    }
  }
  return result;
}

std::optional<ProcSet> greedy_hub_cover(const Digraph& skeleton) {
  const ProcId n = skeleton.n();
  ProcSet uncovered = skeleton.nodes();
  ProcSet hubs(n);
  while (!uncovered.empty()) {
    // Pick the process covering the most uncovered receivers.
    ProcId best = -1;
    int best_cover = 0;
    for (ProcId p : skeleton.nodes()) {
      const int c = (skeleton.out_neighbors(p) & uncovered).count();
      if (c > best_cover) {
        best_cover = c;
        best = p;
      }
    }
    if (best == -1) return std::nullopt;  // some process hears nobody
    hubs.insert(best);
    uncovered -= skeleton.out_neighbors(best);
  }
  return hubs;
}

bool is_hub_cover(const Digraph& skeleton, const ProcSet& hubs) {
  ProcSet covered(skeleton.n());
  for (ProcId h : hubs) covered |= skeleton.out_neighbors(h);
  return skeleton.nodes().is_subset_of(covered);
}

}  // namespace sskel
