#include "predicates/psrcs.hpp"

#include <algorithm>
#include <cmath>

namespace sskel {

double binomial_double(int n, int k) {
  if (k < 0 || k > n) return 0.0;
  if (k > n - k) k = n - k;
  double c = 1.0;
  for (int i = 1; i <= k; ++i) {
    c *= static_cast<double>(n - k + i);
    c /= static_cast<double>(i);
  }
  return c;
}

std::optional<TwoSourceWitness> find_two_source(const Digraph& skeleton,
                                                const ProcSet& s) {
  SSKEL_REQUIRE(s.universe() == skeleton.n());
  for (ProcId p : skeleton.nodes()) {
    const ProcSet receivers = skeleton.out_neighbors(p) & s;
    if (receivers.count() >= 2) {
      const ProcId a = receivers.first();
      const ProcId b = receivers.next_after(a);
      return TwoSourceWitness{p, a, b};
    }
  }
  return std::nullopt;
}

namespace {

/// Branch-and-bound state for the sourceless-subset search. A subset
/// S violates Psrcs(k) iff |S| = k+1 and no process has out-edges to
/// two distinct members; the search grows sourceless subsets member
/// by member and therefore never touches the C(n, k+1) - (number of
/// sourceless subsets) bulk of the lattice.
struct SourcelessSearch {
  const Digraph& g;
  /// Candidates in ascending in-coverage order.
  std::vector<ProcId> order;
  /// conflicts[v] = processes that share a potential 2-source with v:
  /// the union of out(p) over p in in(v). Adding v to S makes exactly
  /// these ids infeasible, so feasibility of a later candidate is one
  /// bit test against the accumulated mask.
  std::vector<ProcSet> conflicts;
  int target;
  ProcSet current;
  std::int64_t visited = 0;
  std::optional<ProcSet> found;

  /// Extends `current` (of size `size`) with candidates from
  /// order[index..]; `blocked` masks every id whose inclusion would
  /// create a 2-source. Returns true once a sourceless subset of
  /// `target` members is found.
  bool dfs(std::size_t index, const ProcSet& blocked, int size) {
    if (size == target) {
      found = current;
      return true;
    }
    for (std::size_t i = index; i < order.size(); ++i) {
      // Bound: the remaining candidates cannot fill the subset.
      if (size + static_cast<int>(order.size() - i) < target) return false;
      const ProcId v = order[i];
      if (blocked.contains(v)) continue;  // pruned: 2-source witnessed
      ++visited;
      current.insert(v);
      ProcSet next_blocked = blocked;
      next_blocked |= conflicts[static_cast<std::size_t>(v)];
      if (dfs(i + 1, next_blocked, size + 1)) return true;
      current.erase(v);
    }
    return false;
  }
};

}  // namespace

PsrcsCheck check_psrcs_exact(const Digraph& skeleton, int k) {
  SSKEL_REQUIRE(k >= 1);
  const ProcId n = skeleton.n();
  PsrcsCheck result;
  result.holds = true;
  if (k + 1 > n) return result;  // vacuous: no (k+1)-subsets exist

  SourcelessSearch search{skeleton,
                          {},
                          {},
                          k + 1,
                          ProcSet(n),
                          0,
                          std::nullopt};

  // Precompute the per-candidate conflict bitsets from the skeleton's
  // out-neighborhood rows (once per skeleton version — callers that
  // re-check every round go through SkeletonPredicateCache).
  search.conflicts.assign(static_cast<std::size_t>(n), ProcSet(n));
  for (ProcId v = 0; v < n; ++v) {
    ProcSet& c = search.conflicts[static_cast<std::size_t>(v)];
    for (ProcId p : skeleton.in_neighbors(v)) {
      c |= skeleton.out_neighbors(p);
    }
  }

  // Ascending in-coverage: processes heard by few sources pack into
  // sourceless subsets most easily, so violations surface early.
  search.order.reserve(static_cast<std::size_t>(n));
  for (ProcId v = 0; v < n; ++v) search.order.push_back(v);
  std::stable_sort(search.order.begin(), search.order.end(),
                   [&](ProcId a, ProcId b) {
                     return skeleton.in_neighbors(a).count() <
                            skeleton.in_neighbors(b).count();
                   });

  search.dfs(0, ProcSet(n), 0);
  result.subsets_checked = search.visited;
  if (search.found.has_value()) {
    result.holds = false;
    result.violating_subset = std::move(search.found);
  }
  return result;
}

PsrcsCheck check_psrcs_bruteforce(const Digraph& skeleton, int k) {
  SSKEL_REQUIRE(k >= 1);
  PsrcsCheck result;
  result.holds = true;
  for_each_subset(ProcSet::full(skeleton.n()), k + 1,
                  [&](const ProcSet& subset) {
                    ++result.subsets_checked;
                    if (!find_two_source(skeleton, subset)) {
                      result.holds = false;
                      result.violating_subset = subset;
                      return false;  // stop at the first counterexample
                    }
                    return true;
                  });
  return result;
}

PsrcsCheck check_psrcs_sampled(const Digraph& skeleton, int k, int samples,
                               Rng& rng) {
  SSKEL_REQUIRE(k >= 1);
  SSKEL_REQUIRE(samples >= 0);
  PsrcsCheck result;
  result.holds = true;
  const ProcId n = skeleton.n();
  if (k + 1 > n) return result;  // vacuous

  std::vector<ProcId> ids(static_cast<std::size_t>(n));
  for (ProcId p = 0; p < n; ++p) ids[static_cast<std::size_t>(p)] = p;

  for (int trial = 0; trial < samples; ++trial) {
    // Partial Fisher-Yates: the first k+1 slots become a uniform
    // (k+1)-subset.
    for (int i = 0; i <= k; ++i) {
      const std::size_t j =
          static_cast<std::size_t>(i) +
          static_cast<std::size_t>(rng.next_below(
              static_cast<std::uint64_t>(n - i)));
      std::swap(ids[static_cast<std::size_t>(i)], ids[j]);
    }
    ProcSet subset(n);
    for (int i = 0; i <= k; ++i) subset.insert(ids[static_cast<std::size_t>(i)]);
    ++result.subsets_checked;
    if (!find_two_source(skeleton, subset)) {
      // A sampled violation is as good as an exact one: the subset is
      // the certificate. certified/confidence keep their defaults.
      result.holds = false;
      result.violating_subset = subset;
      return result;
    }
  }
  // Sampled pass: not a proof. Report the miss-probability bound —
  // a violator (if any) is hit with probability >= 1/C(n, k+1) per
  // sample, so `samples` misses refute its existence with confidence
  // 1 - (1 - 1/C(n, k+1))^samples, computed via expm1/log1p so tiny
  // per-sample probabilities do not round to zero.
  result.certified = false;
  const double total = binomial_double(n, k + 1);
  // samples == 0 would make `samples * log1p(-1/1)` the 0 * -inf NaN;
  // zero samples refute nothing, so the bound is plainly 0.
  result.confidence =
      samples > 0 && std::isfinite(total) && total >= 1.0
          ? -std::expm1(static_cast<double>(samples) * std::log1p(-1.0 / total))
          : 0.0;
  return result;
}

std::optional<ProcSet> greedy_hub_cover(const Digraph& skeleton) {
  const ProcId n = skeleton.n();
  ProcSet uncovered = skeleton.nodes();
  ProcSet hubs(n);
  while (!uncovered.empty()) {
    // Pick the process covering the most uncovered receivers.
    ProcId best = -1;
    int best_cover = 0;
    for (ProcId p : skeleton.nodes()) {
      const int c = (skeleton.out_neighbors(p) & uncovered).count();
      if (c > best_cover) {
        best_cover = c;
        best = p;
      }
    }
    if (best == -1) return std::nullopt;  // some process hears nobody
    hubs.insert(best);
    uncovered -= skeleton.out_neighbors(best);
  }
  return hubs;
}

bool is_hub_cover(const Digraph& skeleton, const ProcSet& hubs) {
  ProcSet covered(skeleton.n());
  for (ProcId h : hubs) covered |= skeleton.out_neighbors(h);
  return skeleton.nodes().is_subset_of(covered);
}

}  // namespace sskel
