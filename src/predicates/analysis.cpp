#include "predicates/analysis.hpp"

#include <algorithm>
#include <vector>

#include "graph/scc.hpp"
#include "predicates/psrcs.hpp"
#include "util/assert.hpp"

namespace sskel {

namespace {

/// Branch-and-bound search for the largest set S with no 2-source:
/// for every process p, |out(p) ∩ S| <= 1. `counts[p]` tracks
/// |out(p) ∩ S| along the current branch.
void search(const Digraph& skeleton, const std::vector<ProcId>& order,
            std::size_t index, ProcSet& current, std::vector<int>& counts,
            int& best) {
  const int size = current.count();
  best = std::max(best, size);
  // Bound: even taking every remaining candidate cannot beat best.
  if (size + static_cast<int>(order.size() - index) <= best) return;
  if (index == order.size()) return;

  const ProcId v = order[index];

  // Branch 1: include v if no out-row would exceed one member of S.
  bool feasible = true;
  for (ProcId p : skeleton.in_neighbors(v)) {
    if (counts[static_cast<std::size_t>(p)] >= 1) {
      feasible = false;
      break;
    }
  }
  if (feasible) {
    current.insert(v);
    for (ProcId p : skeleton.in_neighbors(v)) {
      ++counts[static_cast<std::size_t>(p)];
    }
    search(skeleton, order, index + 1, current, counts, best);
    for (ProcId p : skeleton.in_neighbors(v)) {
      --counts[static_cast<std::size_t>(p)];
    }
    current.erase(v);
  }

  // Branch 2: exclude v.
  search(skeleton, order, index + 1, current, counts, best);
}

}  // namespace

int max_sourceless_subset(const Digraph& skeleton) {
  const ProcId n = skeleton.n();
  std::vector<ProcId> order;
  for (ProcId p : skeleton.nodes()) order.push_back(p);
  ProcSet current(n);
  std::vector<int> counts(static_cast<std::size_t>(n), 0);
  int best = 0;
  search(skeleton, order, 0, current, counts, best);
  return best;
}

std::optional<int> min_psrcs_k(const Digraph& skeleton) {
  const ProcId n = skeleton.n();
  if (n < 2) return 1;  // vacuous: no subsets of size >= 2
  // Psrcs(k) holds iff the largest sourceless subset has size <= k.
  const int worst = max_sourceless_subset(skeleton);
  const int k = std::max(worst, 1);
  if (k >= n) return std::nullopt;  // even Psrcs(n-1) fails
  // Cross-check against the subset-enumerating checker when cheap.
  SSKEL_ASSERT(n > 20 || check_psrcs_exact(skeleton, k).holds);
  return k;
}

const PsrcsCheck& SkeletonPredicateCache::psrcs_exact(const Digraph& skeleton,
                                                      std::uint64_t version,
                                                      int k) {
  if (shared_provider_) {
    if (const PsrcsCheck* shared = shared_provider_(skeleton, version, k)) {
      ++shared_hits_;
      return *shared;
    }
  }
  for (auto& [cached_k, cache] : psrcs_by_k_) {
    if (cached_k == k) {
      return cache.get(version,
                       [&] { return check_psrcs_exact(skeleton, k); });
    }
  }
  psrcs_by_k_.emplace_back(k, VersionedCache<PsrcsCheck>{});
  return psrcs_by_k_.back().second.get(
      version, [&] { return check_psrcs_exact(skeleton, k); });
}

const PredicateProfile& SkeletonPredicateCache::profile(
    const Digraph& skeleton, std::uint64_t version) {
  return profile_.get(version, [&] { return profile_skeleton(skeleton); });
}

const PredicateProfile& SkeletonPredicateCache::profile_with_roots(
    const Digraph& skeleton, std::uint64_t version,
    const std::vector<ProcSet>& root_components) {
  return profile_.get(version, [&] {
    return profile_skeleton(skeleton,
                            static_cast<int>(root_components.size()));
  });
}

std::int64_t SkeletonPredicateCache::psrcs_recomputes() const {
  std::int64_t total = 0;
  for (const auto& [k, cache] : psrcs_by_k_) total += cache.recomputes();
  return total;
}

PredicateProfile profile_skeleton(const Digraph& skeleton) {
  return profile_skeleton(
      skeleton, static_cast<int>(root_components(skeleton).size()));
}

PredicateProfile profile_skeleton(const Digraph& skeleton, int root_count) {
  PredicateProfile profile;
  profile.root_components = root_count;
  const auto k = min_psrcs_k(skeleton);
  profile.min_k = k.value_or(skeleton.n());
  profile.theorem1_consistent = profile.root_components <= profile.min_k;
  return profile;
}

}  // namespace sskel
