#include "adversary/rotating.hpp"

#include "util/assert.hpp"

namespace sskel {

std::unique_ptr<GraphSource> make_rotating_star_source(ProcId n, Round hold,
                                                       ProcId first_center) {
  SSKEL_REQUIRE(n > 0);
  SSKEL_REQUIRE(hold >= 1);
  SSKEL_REQUIRE(first_center >= 0 && first_center < n);
  return std::make_unique<FunctionSource>(
      n, [n, hold, first_center](Round r) {
        const ProcId center = static_cast<ProcId>(
            (static_cast<Round>(first_center) + (r - 1) / hold) %
            static_cast<Round>(n));
        Digraph g = Digraph::self_loops_only(n);
        for (ProcId p = 0; p < n; ++p) g.add_edge(center, p);
        return g;
      });
}

}  // namespace sskel
