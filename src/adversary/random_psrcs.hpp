// RandomPsrcsSource: seeded random runs that satisfy Psrcs(k) by
// construction.
//
// Construction (all randomness from one 64-bit seed):
//
//   1. Pick j <= k *root cores*: disjoint strongly connected groups
//      (a directed cycle through the members plus random chords), each
//      containing a distinguished *hub* with stable edges hub -> x to
//      every core member.
//   2. Every remaining process becomes a *follower*: it gets a stable
//      edge hub -> f from the hub of a uniformly chosen core, plus
//      optional random stable edges from "earlier" processes (a DAG,
//      so follower SCCs stay singletons and the cores stay the only
//      root components).
//   3. Per round r: the stable edges, plus transient noise edges
//      (each non-stable ordered pair independently with probability
//      noise_probability). In round `stabilization_round` the graph is
//      *exactly* the stable edge set, which evicts every noise edge
//      from the skeleton — so G∩r = G∩∞ for all r >= that round and
//      r_ST <= stabilization_round. Noise may continue afterwards
//      (harmless: those edges already left the skeleton).
//
// Why this satisfies Psrcs(k): the hubs form a *hub cover* of size
// j <= k — every process perpetually hears some hub. Any k+1 processes
// therefore include two that share a hub (pigeonhole), and that hub is
// their 2-source. Theorem 1's bound is met with equality when j = k.
//
// The per-round graph for round r is a pure function of
// (seed, params, r), so a source can be re-queried or replayed freely.
#pragma once

#include <memory>
#include <vector>

#include "graph/digraph.hpp"
#include "rounds/graph_source.hpp"
#include "util/rng.hpp"

namespace sskel {

struct RandomPsrcsParams {
  ProcId n = 8;
  int k = 2;
  /// Number of root components j (1 <= j <= k; j <= n).
  int root_components = 2;
  /// Core sizes are drawn uniformly from [1, max_core_size].
  int max_core_size = 3;
  /// Per-round probability of each transient non-stable edge.
  double noise_probability = 0.25;
  /// The round whose graph is exactly the stable edges (>= 1).
  Round stabilization_round = 1;
  /// Keep injecting noise after stabilization_round.
  bool noise_after_stabilization = true;
  /// Probability of extra stable DAG edges into followers.
  double follower_edge_probability = 0.15;
};

class RandomPsrcsSource final : public GraphSource {
 public:
  RandomPsrcsSource(std::uint64_t seed, const RandomPsrcsParams& params);

  [[nodiscard]] ProcId n() const override { return params_.n; }
  [[nodiscard]] Digraph graph(Round r) override;
  /// Allocation-free round generation: copies the stable skeleton into
  /// `out` (reusing its storage) and sprinkles noise edges in place.
  void graph_into(Round r, Digraph& out) override;

  /// The stable skeleton this source converges to (self-loops
  /// included). Equals the run's G∩∞ for any run of at least
  /// stabilization_round rounds.
  [[nodiscard]] const Digraph& stable_skeleton() const { return stable_; }

  /// The hub cover (one hub per core), |hubs| = root_components.
  [[nodiscard]] const ProcSet& hubs() const { return hubs_; }

  /// The root components of the stable skeleton, by construction.
  [[nodiscard]] const std::vector<ProcSet>& cores() const { return cores_; }

  [[nodiscard]] const RandomPsrcsParams& params() const { return params_; }

 private:
  std::uint64_t seed_;
  RandomPsrcsParams params_;
  Digraph stable_;
  ProcSet hubs_;
  std::vector<ProcSet> cores_;
};

/// Convenience factory.
[[nodiscard]] std::unique_ptr<RandomPsrcsSource> make_random_psrcs_source(
    std::uint64_t seed, const RandomPsrcsParams& params);

}  // namespace sskel
