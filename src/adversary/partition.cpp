#include "adversary/partition.hpp"

#include "util/assert.hpp"

namespace sskel {

PartitionSource::PartitionSource(std::uint64_t seed, PartitionParams params)
    : seed_(seed), params_(std::move(params)), n_(0), stable_() {
  SSKEL_REQUIRE(!params_.blocks.empty());
  n_ = params_.blocks.front().universe();
  SSKEL_REQUIRE(n_ > 0);
  SSKEL_REQUIRE(params_.stabilization_round >= 1);

  // Blocks must partition the universe.
  ProcSet seen(n_);
  for (const ProcSet& block : params_.blocks) {
    SSKEL_REQUIRE(block.universe() == n_);
    SSKEL_REQUIRE(!block.empty());
    SSKEL_REQUIRE(!seen.intersects(block));
    seen |= block;
  }
  SSKEL_REQUIRE(seen == ProcSet::full(n_));

  stable_ = Digraph(n_);
  stable_.add_self_loops();
  for (const ProcSet& block : params_.blocks) {
    for (ProcId q : block) {
      for (ProcId p : block) stable_.add_edge(q, p);
    }
  }
}

Digraph PartitionSource::graph(Round r) {
  Digraph g;
  graph_into(r, g);
  return g;
}

void PartitionSource::graph_into(Round r, Digraph& out) {
  SSKEL_REQUIRE(r >= 1);
  out = stable_;  // copy-assign: reuses out's adjacency storage
  if (r >= params_.stabilization_round ||
      params_.cross_noise_probability <= 0.0) {
    return;
  }
  Rng rng(mix_seed(seed_, static_cast<std::uint64_t>(r)));
  for (ProcId q = 0; q < n_; ++q) {
    for (ProcId p = 0; p < n_; ++p) {
      if (out.has_edge(q, p)) continue;
      if (rng.next_bool(params_.cross_noise_probability)) out.add_edge(q, p);
    }
  }
}

std::vector<ProcSet> even_blocks(ProcId n, int m) {
  SSKEL_REQUIRE(n > 0);
  SSKEL_REQUIRE(m >= 1 && static_cast<ProcId>(m) <= n);
  std::vector<ProcSet> blocks;
  const ProcId base = n / static_cast<ProcId>(m);
  const ProcId extra = n % static_cast<ProcId>(m);
  ProcId next = 0;
  for (int b = 0; b < m; ++b) {
    const ProcId size = base + (static_cast<ProcId>(b) < extra ? 1 : 0);
    ProcSet block(n);
    for (ProcId i = 0; i < size; ++i) block.insert(next++);
    blocks.push_back(std::move(block));
  }
  SSKEL_ASSERT(next == n);
  return blocks;
}

}  // namespace sskel
