// PartitionSource: a partitioned system — the paper's own motivating
// scenario for k > 1 ("partitionable systems that need to reach
// consensus in every partition", Sec. I).
//
// Pi is split into m disjoint blocks. Within a block, communication is
// reliable all-to-all; across blocks, links are down, except for
// optional transient cross-block noise during a finite prefix. The
// stable skeleton is a disjoint union of complete blocks, so it has
// exactly m root components, Psrcs(m) holds (two of any m+1 processes
// share a block, and either one of those two is a 2-source for the
// pair), and Algorithm 1 reaches consensus *within each block* —
// m-set agreement globally.
#pragma once

#include <memory>
#include <vector>

#include "graph/digraph.hpp"
#include "rounds/graph_source.hpp"
#include "util/rng.hpp"

namespace sskel {

struct PartitionParams {
  /// Disjoint, covering blocks.
  std::vector<ProcSet> blocks;
  /// Cross-block noise probability during rounds < stabilization_round.
  double cross_noise_probability = 0.0;
  /// First round with *exactly* the block-local graph (>= 1).
  Round stabilization_round = 1;
};

class PartitionSource final : public GraphSource {
 public:
  PartitionSource(std::uint64_t seed, PartitionParams params);

  [[nodiscard]] ProcId n() const override { return n_; }
  [[nodiscard]] Digraph graph(Round r) override;
  /// Allocation-free round generation over the stable block structure.
  void graph_into(Round r, Digraph& out) override;

  /// Rebinds the source to a new trial seed. Equivalent to
  /// constructing PartitionSource(seed, same params) — the seed only
  /// feeds the per-round noise RNG — but skips re-validating the
  /// partition and rebuilding the stable graph, so per-worker trial
  /// scratches can reuse one source across a whole batch.
  void reseed(std::uint64_t seed) { seed_ = seed; }

  /// The stable skeleton: disjoint complete blocks (self-loops in).
  [[nodiscard]] const Digraph& stable_skeleton() const { return stable_; }

  [[nodiscard]] const std::vector<ProcSet>& blocks() const {
    return params_.blocks;
  }

 private:
  std::uint64_t seed_;
  PartitionParams params_;
  ProcId n_;
  Digraph stable_;
};

/// Splits n processes into m nearly equal contiguous blocks.
[[nodiscard]] std::vector<ProcSet> even_blocks(ProcId n, int m);

}  // namespace sskel
