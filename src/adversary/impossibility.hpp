// The Theorem 2 run: Psrcs(k) cannot solve (k-1)-set agreement.
//
// The proof constructs a run with a set L of k-1 "loners" that hear
// only themselves (PT(p) = {p}) and one 2-source s heard by every
// process outside L (PT(p) = {p, s} for p not in L). Validity +
// termination force every process in L ∪ {s} to decide its own value,
// yielding k distinct decisions — yet the run satisfies Psrcs(k),
// because in any (k+1)-set S at least two members of S \ L hear s.
//
// This module materializes that run as a GraphSource so experiment E3
// can (i) verify Psrcs(k) mechanically on the skeleton and (ii) watch
// Algorithm 1 produce exactly k values, the tight ceiling.
#pragma once

#include <memory>

#include "graph/digraph.hpp"
#include "rounds/graph_source.hpp"

namespace sskel {

/// The (constant) communication graph of the Theorem 2 run for given
/// n and k (requires 1 < k < n): self-loops, plus s -> p for every
/// p outside L, where L = {0, .., k-2} and s = k-1.
[[nodiscard]] Digraph impossibility_graph(ProcId n, int k);

/// The loner set L.
[[nodiscard]] ProcSet impossibility_loners(ProcId n, int k);

/// The 2-source s.
[[nodiscard]] ProcId impossibility_source_process(int k);

/// Constant source replaying impossibility_graph every round.
[[nodiscard]] std::unique_ptr<GraphSource> make_impossibility_source(ProcId n,
                                                                     int k);

}  // namespace sskel
