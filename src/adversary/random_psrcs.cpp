#include "adversary/random_psrcs.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sskel {

RandomPsrcsSource::RandomPsrcsSource(std::uint64_t seed,
                                     const RandomPsrcsParams& params)
    : seed_(seed),
      params_(params),
      stable_(params.n),
      hubs_(params.n) {
  const ProcId n = params_.n;
  SSKEL_REQUIRE(n > 0);
  SSKEL_REQUIRE(params_.k >= 1);
  SSKEL_REQUIRE(params_.root_components >= 1);
  SSKEL_REQUIRE(params_.root_components <= params_.k);
  SSKEL_REQUIRE(static_cast<ProcId>(params_.root_components) <= n);
  SSKEL_REQUIRE(params_.max_core_size >= 1);
  SSKEL_REQUIRE(params_.stabilization_round >= 1);

  Rng rng(mix_seed(seed_, 0));

  // Random process permutation; cores are carved off its front.
  std::vector<ProcId> order(static_cast<std::size_t>(n));
  for (ProcId p = 0; p < n; ++p) order[static_cast<std::size_t>(p)] = p;
  rng.shuffle(order);

  stable_.add_self_loops();

  const int j = params_.root_components;
  std::size_t cursor = 0;
  for (int c = 0; c < j; ++c) {
    // Leave at least one process for each remaining core.
    const std::size_t remaining_cores = static_cast<std::size_t>(j - c - 1);
    const std::size_t available =
        static_cast<std::size_t>(n) - cursor - remaining_cores;
    const std::size_t size = std::min<std::size_t>(
        1 + rng.next_below(static_cast<std::uint64_t>(params_.max_core_size)),
        available);
    SSKEL_ASSERT(size >= 1);

    std::vector<ProcId> members(order.begin() + static_cast<std::ptrdiff_t>(cursor),
                                order.begin() + static_cast<std::ptrdiff_t>(cursor + size));
    cursor += size;

    ProcSet core(n);
    for (ProcId m : members) core.insert(m);
    cores_.push_back(core);

    const ProcId hub = members.front();
    hubs_.insert(hub);

    // Strong connectivity: a directed cycle through the members.
    for (std::size_t i = 0; i < members.size(); ++i) {
      stable_.add_edge(members[i], members[(i + 1) % members.size()]);
    }
    // The hub must be heard by every core member (hub-cover property).
    for (ProcId m : members) stable_.add_edge(hub, m);
    // Random chords inside the core.
    for (ProcId a : members) {
      for (ProcId b : members) {
        if (a != b && rng.next_bool(0.3)) stable_.add_edge(a, b);
      }
    }
  }

  // Followers: everything after the cores in the permutation.
  for (std::size_t i = cursor; i < order.size(); ++i) {
    const ProcId f = order[i];
    const std::size_t core_idx = rng.pick_index(cores_.size());
    const ProcId chosen_hub = (cores_[core_idx] & hubs_).first();
    SSKEL_ASSERT(chosen_hub >= 0);
    stable_.add_edge(chosen_hub, f);
    // Extra stable in-edges from strictly earlier processes in the
    // permutation keep the follower layer acyclic, so the cores remain
    // the only root components.
    for (std::size_t e = 0; e < i; ++e) {
      if (rng.next_bool(params_.follower_edge_probability)) {
        stable_.add_edge(order[e], f);
      }
    }
  }
}

Digraph RandomPsrcsSource::graph(Round r) {
  Digraph g;
  graph_into(r, g);
  return g;
}

void RandomPsrcsSource::graph_into(Round r, Digraph& out) {
  SSKEL_REQUIRE(r >= 1);
  out = stable_;  // copy-assign: reuses out's adjacency storage
  if (r == params_.stabilization_round) return;
  if (r > params_.stabilization_round && !params_.noise_after_stabilization) {
    return;
  }
  Rng rng(mix_seed(seed_ ^ 0x5eed5eedULL, static_cast<std::uint64_t>(r)));
  const ProcId n = params_.n;
  for (ProcId q = 0; q < n; ++q) {
    for (ProcId p = 0; p < n; ++p) {
      if (q == p || out.has_edge(q, p)) continue;
      if (rng.next_bool(params_.noise_probability)) out.add_edge(q, p);
    }
  }
}

std::unique_ptr<RandomPsrcsSource> make_random_psrcs_source(
    std::uint64_t seed, const RandomPsrcsParams& params) {
  return std::make_unique<RandomPsrcsSource>(seed, params);
}

}  // namespace sskel
