// The Figure 1 run of the paper, reconstructed.
//
// Six processes p1..p6 (ids 0..5) in a run where Psrcs(3) holds. The
// arXiv text does not include the figure's edge lists, so we
// reconstruct a run consistent with every stated property:
//   * the stable skeleton G∩∞ has exactly the two root components the
//     caption names: {p1, p2} (a 2-cycle) and {p3, p4, p5} (a 3-cycle),
//   * p6 is a follower that perpetually hears p2 and p5,
//   * G∩2 (Fig. 1a) strictly contains G∩∞: three transient edges are
//     timely during rounds 1-2 and die in round 3 (so r_ST = 3),
//   * Psrcs(3) holds (checked exhaustively in tests),
//   * self-loops are implicit ("for simplicity, we omit self-loops").
//
// Stable edges (besides self-loops):
//   p1 -> p2, p2 -> p1          (root component A)
//   p3 -> p4, p4 -> p5, p5 -> p3 (root component B)
//   p2 -> p6, p5 -> p6          (p6 the follower)
// Transient edges (rounds 1-2 only; chosen to flow only into A or into
// the follower, so each root component keeps its own minimum):
//   p4 -> p2, p6 -> p1, p3 -> p6
#pragma once

#include <memory>

#include "graph/digraph.hpp"
#include "rounds/graph_source.hpp"

namespace sskel {

inline constexpr ProcId kFigure1N = 6;
inline constexpr int kFigure1K = 3;
/// r_ST of the reconstructed run: the round from which G∩r = G∩∞.
inline constexpr Round kFigure1StabilizationRound = 3;

/// The stable skeleton G∩∞ (self-loops included).
[[nodiscard]] Digraph figure1_stable_skeleton();

/// G∩2: the stable skeleton plus the transient edges (Fig. 1a).
[[nodiscard]] Digraph figure1_round2_skeleton();

/// Root component {p1, p2}.
[[nodiscard]] ProcSet figure1_root_a();

/// Root component {p3, p4, p5}.
[[nodiscard]] ProcSet figure1_root_b();

/// The communication-graph source of the run: transient edges present
/// in rounds 1-2, exactly the stable graph from round 3 on.
[[nodiscard]] std::unique_ptr<GraphSource> make_figure1_source();

}  // namespace sskel
