// The ♦Psrcs(k) counterexample (Sec. III, introduction of the
// predicate).
//
// The paper argues that the *perpetual* nature of Psrcs(k) is
// essential: the eventual variant ♦Psrcs(k) admits runs in which every
// process is alone (hears only itself) for an arbitrary finite prefix.
// By an indistinguishability argument, any algorithm that must decide
// ends up deciding its own value during a long enough prefix — so up
// to n different values are decided even though ♦Psrcs(k) holds in
// the limit.
//
// This source plays that scenario: isolation (self-loops only) for
// rounds 1..isolation_rounds, then a star rooted at process 0, which
// satisfies even Psrcs(1) from that point on. Running Algorithm 1 on
// it demonstrates the claim mechanically (experiment E6): if the
// isolation prefix outlasts the decision guard, all n processes decide
// their own proposals.
#pragma once

#include <memory>

#include "graph/digraph.hpp"
#include "rounds/graph_source.hpp"

namespace sskel {

/// Source for the ♦Psrcs counterexample. `isolation_rounds` is the
/// length of the all-alone prefix.
[[nodiscard]] std::unique_ptr<GraphSource> make_eventual_source(
    ProcId n, Round isolation_rounds);

}  // namespace sskel
