#include "adversary/impossibility.hpp"

#include <vector>

#include "util/assert.hpp"

namespace sskel {

Digraph impossibility_graph(ProcId n, int k) {
  SSKEL_REQUIRE(k > 1 && k < n);
  Digraph g(n);
  g.add_self_loops();
  const ProcId s = impossibility_source_process(k);
  for (ProcId p = s; p < n; ++p) g.add_edge(s, p);
  return g;
}

ProcSet impossibility_loners(ProcId n, int k) {
  SSKEL_REQUIRE(k > 1 && k < n);
  ProcSet loners(n);
  for (ProcId p = 0; p < static_cast<ProcId>(k - 1); ++p) loners.insert(p);
  return loners;
}

ProcId impossibility_source_process(int k) {
  return static_cast<ProcId>(k - 1);
}

std::unique_ptr<GraphSource> make_impossibility_source(ProcId n, int k) {
  std::vector<Digraph> prefix{impossibility_graph(n, k)};
  return std::make_unique<ScheduleSource>(std::move(prefix));
}

}  // namespace sskel
