// CrashSource: the classic synchronous crash-failure model, expressed
// as communication graphs.
//
// Following the paper's treatment (and [4, Sec. 2.2]), a crashed
// process is an "internally correct" process that nobody hears from
// any more: in the round it crashes it may reach an arbitrary subset
// of receivers (the classic partial broadcast), and from the next
// round on its out-edges are gone (except the implicit self-loop).
// Correct processes enjoy reliable all-to-all delivery.
//
// The resulting stable skeleton has exactly one root component — the
// set of processes that never crash (strongly connected all-to-all,
// and crashed processes' outgoing edges died in/after their crash
// round, so the component has no stable in-edges from outside)
// — which is why Algorithm 1 reaches *consensus* in this model (the
// Sec. V remark). The source exists mainly as the common ground for
// the FloodMin comparison (experiment E7).
#pragma once

#include <memory>
#include <vector>

#include "graph/digraph.hpp"
#include "rounds/graph_source.hpp"
#include "util/rng.hpp"

namespace sskel {

struct CrashEvent {
  ProcId victim = -1;
  /// Round in which the victim crashes (>= 1).
  Round round = 1;
  /// Receivers the victim still reaches in its crash round.
  ProcSet partial_receivers;
};

class CrashSource final : public GraphSource {
 public:
  /// Events must name distinct victims.
  CrashSource(ProcId n, std::vector<CrashEvent> events);

  [[nodiscard]] ProcId n() const override { return n_; }
  [[nodiscard]] Digraph graph(Round r) override;

  /// Processes that never crash.
  [[nodiscard]] ProcSet correct_processes() const;

  [[nodiscard]] const std::vector<CrashEvent>& events() const {
    return events_;
  }

 private:
  ProcId n_;
  std::vector<CrashEvent> events_;
};

/// f distinct victims crash at uniformly random rounds in
/// [1, max_crash_round], each reaching a uniformly random subset in
/// its crash round.
[[nodiscard]] std::unique_ptr<CrashSource> make_random_crash_source(
    std::uint64_t seed, ProcId n, int f, Round max_crash_round);

}  // namespace sskel
