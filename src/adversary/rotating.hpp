// RotatingStarSource: strong per-round synchrony with zero perpetual
// synchrony.
//
// Every round r the graph is a star centered at process
// (r - 1) mod n: the round kernel is nonempty (the center reaches
// everyone) and the round is nonsplit, the strongest per-round
// guarantees of the HO taxonomy. Yet no edge other than the self-loops
// survives n consecutive rounds, so the stable skeleton is bare
// self-loops: PT(p) = {p} and Psrcs(k) fails for every k < n - 1.
//
// Running Algorithm 1 on this source (experiment E12) makes every
// process decide as a *loner* (its approximation collapses to the
// singleton {p}); whatever agreement emerges is a round-1 accident of
// whose value leaked before PT collapsed, not a guarantee — the
// sharpest illustration of why the paper's predicate quantifies over
// *perpetual* timeliness: per-round synchrony that keeps moving is
// invisible to stable skeletons.
#pragma once

#include <memory>

#include "graph/digraph.hpp"
#include "rounds/graph_source.hpp"

namespace sskel {

/// Star centered at (first_center + (r - 1) / hold) mod n, so each
/// center persists for `hold` consecutive rounds (hold = 1 is the pure
/// rotation; a hold >= the run length degenerates to a fixed star at
/// first_center).
[[nodiscard]] std::unique_ptr<GraphSource> make_rotating_star_source(
    ProcId n, Round hold = 1, ProcId first_center = 0);

}  // namespace sskel
