#include "adversary/eventual.hpp"

#include "util/assert.hpp"

namespace sskel {

std::unique_ptr<GraphSource> make_eventual_source(ProcId n,
                                                  Round isolation_rounds) {
  SSKEL_REQUIRE(n > 0);
  SSKEL_REQUIRE(isolation_rounds >= 0);
  Digraph isolated = Digraph::self_loops_only(n);
  Digraph star = Digraph::self_loops_only(n);
  for (ProcId p = 0; p < n; ++p) star.add_edge(0, p);
  return std::make_unique<FunctionSource>(
      n, [isolated = std::move(isolated), star = std::move(star),
          isolation_rounds](Round r) {
        return r <= isolation_rounds ? isolated : star;
      });
}

}  // namespace sskel
