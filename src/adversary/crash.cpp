#include "adversary/crash.hpp"

#include "util/assert.hpp"

namespace sskel {

CrashSource::CrashSource(ProcId n, std::vector<CrashEvent> events)
    : n_(n), events_(std::move(events)) {
  SSKEL_REQUIRE(n > 0);
  ProcSet victims(n);
  for (const CrashEvent& e : events_) {
    SSKEL_REQUIRE(e.victim >= 0 && e.victim < n);
    SSKEL_REQUIRE(e.round >= 1);
    SSKEL_REQUIRE(e.partial_receivers.universe() == n);
    SSKEL_REQUIRE(!victims.contains(e.victim));
    victims.insert(e.victim);
  }
}

Digraph CrashSource::graph(Round r) {
  SSKEL_REQUIRE(r >= 1);
  Digraph g = Digraph::complete(n_);
  for (const CrashEvent& e : events_) {
    if (r < e.round) continue;
    // Drop the victim's out-edges; in its crash round it still reaches
    // the partial receiver set. (The simulator restores the self-loop.)
    for (ProcId p = 0; p < n_; ++p) {
      const bool keep = r == e.round && e.partial_receivers.contains(p);
      if (!keep) g.remove_edge(e.victim, p);
    }
  }
  return g;
}

ProcSet CrashSource::correct_processes() const {
  ProcSet correct = ProcSet::full(n_);
  for (const CrashEvent& e : events_) correct.erase(e.victim);
  return correct;
}

std::unique_ptr<CrashSource> make_random_crash_source(std::uint64_t seed,
                                                      ProcId n, int f,
                                                      Round max_crash_round) {
  SSKEL_REQUIRE(f >= 0 && f < n);
  SSKEL_REQUIRE(max_crash_round >= 1);
  Rng rng(seed);
  std::vector<ProcId> ids(static_cast<std::size_t>(n));
  for (ProcId p = 0; p < n; ++p) ids[static_cast<std::size_t>(p)] = p;
  rng.shuffle(ids);

  std::vector<CrashEvent> events;
  for (int i = 0; i < f; ++i) {
    CrashEvent e;
    e.victim = ids[static_cast<std::size_t>(i)];
    e.round = static_cast<Round>(
        1 + rng.next_below(static_cast<std::uint64_t>(max_crash_round)));
    e.partial_receivers = ProcSet(n);
    for (ProcId p = 0; p < n; ++p) {
      if (rng.next_bool(0.5)) e.partial_receivers.insert(p);
    }
    events.push_back(std::move(e));
  }
  return std::make_unique<CrashSource>(n, std::move(events));
}

}  // namespace sskel
