#include "adversary/figure1.hpp"

#include <vector>

namespace sskel {

namespace {

// 0-based ids for the paper's p1..p6.
constexpr ProcId kP1 = 0, kP2 = 1, kP3 = 2, kP4 = 3, kP5 = 4, kP6 = 5;

Digraph stable_edges() {
  Digraph g(kFigure1N);
  g.add_self_loops();
  // Root component A: 2-cycle {p1, p2}.
  g.add_edge(kP1, kP2);
  g.add_edge(kP2, kP1);
  // Root component B: 3-cycle {p3, p4, p5}.
  g.add_edge(kP3, kP4);
  g.add_edge(kP4, kP5);
  g.add_edge(kP5, kP3);
  // Follower p6 hears p2 and p5 perpetually.
  g.add_edge(kP2, kP6);
  g.add_edge(kP5, kP6);
  return g;
}

Digraph with_transients() {
  // The transient edges flow only *into* root component A or into the
  // follower p6, so the run's minima stay one-per-root and the decided
  // values match the one-value-per-root-component reading of Fig. 1b.
  Digraph g = stable_edges();
  g.add_edge(kP4, kP2);  // p4 -> p2 (into A)
  g.add_edge(kP6, kP1);  // p6 -> p1 (into A)
  g.add_edge(kP3, kP6);  // p3 -> p6 (into the follower)
  return g;
}

}  // namespace

Digraph figure1_stable_skeleton() { return stable_edges(); }

Digraph figure1_round2_skeleton() { return with_transients(); }

ProcSet figure1_root_a() { return ProcSet::of(kFigure1N, {kP1, kP2}); }

ProcSet figure1_root_b() { return ProcSet::of(kFigure1N, {kP3, kP4, kP5}); }

std::unique_ptr<GraphSource> make_figure1_source() {
  // Rounds 1-2 carry the transient edges; the final schedule entry
  // repeats forever.
  std::vector<Digraph> prefix{with_transients(), with_transients(),
                              stable_edges()};
  return std::make_unique<ScheduleSource>(std::move(prefix));
}

}  // namespace sskel
