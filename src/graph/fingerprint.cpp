#include "graph/fingerprint.hpp"

#include "graph/digraph.hpp"
#include "graph/labeled_digraph.hpp"

namespace sskel {
namespace {

constexpr std::uint64_t kPrime1 = 0x9E3779B185EBCA87ULL;
constexpr std::uint64_t kPrime2 = 0xC2B2AE3D27D4EB4FULL;
constexpr std::uint64_t kPrime3 = 0x165667B19E3779F9ULL;
constexpr std::uint64_t kPrime4 = 0x85EBCA77C2B2AE63ULL;
constexpr std::uint64_t kPrime5 = 0x27D4EB2F165667C5ULL;

constexpr std::uint64_t rotl64(std::uint64_t x, int r) {
  return (x << r) | (x >> (64 - r));
}

constexpr std::uint64_t avalanche(std::uint64_t x) {
  x ^= x >> 33;
  x *= kPrime2;
  x ^= x >> 29;
  x *= kPrime3;
  x ^= x >> 32;
  return x;
}

}  // namespace

FingerprintBuilder::FingerprintBuilder(std::uint64_t seed)
    : acc1_(seed + kPrime1 + kPrime2),
      acc2_((seed ^ kPrime5) * kPrime3 + kPrime4) {}

void FingerprintBuilder::mix_word(std::uint64_t w) {
  acc1_ = rotl64(acc1_ + w * kPrime2, 31) * kPrime1;
  acc2_ = rotl64(acc2_ ^ (w * kPrime3), 27) * kPrime4 + kPrime5;
  ++length_;
}

void FingerprintBuilder::mix_set(const ProcSet& s) {
  // Mix only the active (index, word) pairs: density-proportional on
  // decayed skeletons and identical across the dense/tiered/sparse
  // representations. Fingerprints are cache keys, never correctness
  // (the intern table confirms every hit by full equality), so this
  // redefinition is safe across builds.
  std::uint64_t active = 0;
  s.for_each_word([this, &active](std::uint32_t w, std::uint64_t v) {
    mix_word((static_cast<std::uint64_t>(w) << 32) ^ v);
    ++active;
  });
  // Variable-length streams need explicit set boundaries: without the
  // terminator a pair could migrate between consecutive rows of a
  // structure without changing the digest.
  mix_word(kPrime5 ^ active);
}

Fingerprint128 FingerprintBuilder::finish() const {
  Fingerprint128 fp;
  fp.lo = avalanche(acc1_ ^ (length_ * kPrime5));
  fp.hi = avalanche(acc2_ + rotl64(acc1_, 17) + length_);
  return fp;
}

Fingerprint128 fingerprint_structure(const Digraph& g, std::uint64_t seed) {
  FingerprintBuilder b(seed);
  b.mix_word(static_cast<std::uint64_t>(g.n()));
  b.mix_set(g.nodes());
  for (ProcId q = 0; q < g.n(); ++q) {
    b.mix_set(g.out_neighbors(q));
  }
  return b.finish();
}

Fingerprint128 fingerprint_structure(const LabeledDigraph& g,
                                     std::uint64_t seed) {
  FingerprintBuilder b(seed);
  b.mix_word(static_cast<std::uint64_t>(g.n()));
  b.mix_set(g.nodes());
  for (ProcId q = 0; q < g.n(); ++q) {
    b.mix_set(g.out_edges(q));
  }
  return b.finish();
}

}  // namespace sskel
