// LabeledDigraph: the weighted approximation digraph of Algorithm 1.
//
// Process p's local estimate G_p of the stable skeleton is a digraph
// whose edges carry *round labels*: edge (q' --s--> q) means "some
// process observed q' in PT(q, s)" (Lemma 6). Labels drive the aging
// rule of Line 24 (discard labels <= r - n) and the merge rule of
// Lines 19-23 (keep the maximal label over all graphs received from
// timely neighbors).
//
// Representation: a node-presence ProcSet plus an n x n label matrix
// (label 0 = edge absent; valid labels are rounds >= 1). For the
// n <= 512 scales of this library the dense matrix keeps the per-round
// merge a tight O(n^2) loop with no allocation.
#pragma once

#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "util/proc_set.hpp"
#include "util/types.hpp"

namespace sskel {

class LabeledDigraph;

/// Structural fingerprint of a LabeledDigraph: the node set plus the
/// out-edge rows, labels ignored. Line-25 pruning and Line-28 strong
/// connectivity depend only on this, so a process whose post-purge
/// structure matches the previous round's snapshot can reuse both
/// results instead of re-running the reachability fixpoints
/// (DESIGN.md §8). capture() reuses its buffers, so the steady-state
/// round cost is the O(n^2/64) word compare plus one copy.
class GraphStructure {
 public:
  /// Records the structure of `g`. O(n^2/64), no allocation after the
  /// first call on graphs of the same n.
  void capture(const LabeledDigraph& g);

  /// True iff `g` has exactly the nodes and edges recorded by the
  /// last capture(). False before any capture.
  [[nodiscard]] bool matches(const LabeledDigraph& g) const;

  /// Forgets the last capture — matches() is false until the next
  /// capture() — while keeping the row buffers for reuse (trial
  /// scratch reset).
  void invalidate() { valid_ = false; }

 private:
  bool valid_ = false;
  ProcSet nodes_;
  std::vector<ProcSet> rows_;
};

class LabeledDigraph {
 public:
  LabeledDigraph() = default;

  /// Graph over n processes with node set {owner} and no edges — the
  /// initialization of Line 3 and the per-round reset of Line 15.
  LabeledDigraph(ProcId n, ProcId owner);

  [[nodiscard]] ProcId n() const { return n_; }
  [[nodiscard]] const ProcSet& nodes() const { return nodes_; }
  [[nodiscard]] bool has_node(ProcId p) const { return nodes_.contains(p); }

  /// Resets to <{owner}, {}> (Line 15).
  void reset(ProcId owner);

  void add_node(ProcId p);

  /// Sets edge (q -> p) with the given round label, inserting both
  /// endpoints; overwrites any existing label (the algorithm never
  /// keeps two labels for one edge, cf. Lemma 3(c)/Lemma 4(b)).
  void set_edge(ProcId q, ProcId p, Round label);

  /// Label of (q -> p), or 0 when the edge is absent.
  [[nodiscard]] Round label(ProcId q, ProcId p) const {
    return labels_[index(q, p)];
  }

  [[nodiscard]] bool has_edge(ProcId q, ProcId p) const {
    return label(q, p) != 0;
  }

  void remove_edge(ProcId q, ProcId p);

  /// Adds all nodes of `other` (Line 18) and raises every edge label
  /// to the maximum of the two graphs (Lines 19-23, folded over the
  /// received graphs one at a time — max is associative, so the fold
  /// equals the paper's batch max over R_{i,j}).
  void merge_max(const LabeledDigraph& other);

  /// Removes every edge with label <= cutoff (Line 24 uses
  /// cutoff = r - n). Nodes are untouched.
  void purge_labels_up_to(Round cutoff);

  /// Removes every node (except `owner`) from which `owner` is not
  /// reachable, with all incident edges (Line 25). Returns the kept
  /// node set so callers can replay the prune on a structurally
  /// identical graph via restrict_to_reaching.
  ProcSet prune_not_reaching(ProcId owner);

  /// Applies a precomputed Line-25 keep-set: removes every node
  /// outside `keep` (except `owner`) with its incident edges, without
  /// running the reachability fixpoint. Only valid when `keep` is the
  /// set prune_not_reaching(owner) would compute — i.e. when the
  /// graph's structure matches the one that produced `keep`.
  void restrict_to_reaching(const ProcSet& keep, ProcId owner);

  [[nodiscard]] std::int64_t edge_count() const;

  /// Smallest / largest label present (0 when no edges).
  [[nodiscard]] Round min_label() const;
  [[nodiscard]] Round max_label() const;

  /// The unlabeled digraph on the same nodes/edges, for SCC tests and
  /// comparisons against skeleton graphs.
  [[nodiscard]] Digraph unlabeled() const;

  /// Strong connectivity of the present node set (Line 28's test).
  [[nodiscard]] bool strongly_connected() const;

  /// Process-wide count of reachability fixpoints run (reachable_from
  /// + reaching_set calls). Tests assert the post-stabilization tail
  /// of Algorithm 1 stops paying for them once the structure cache
  /// kicks in.
  [[nodiscard]] static std::int64_t reachability_computations();

  /// Out-neighbors of q (targets of labeled edges from q). Kept as a
  /// bitset alongside the label matrix so that merge/iteration cost
  /// scales with actual edges, not with n^2.
  [[nodiscard]] const ProcSet& out_edges(ProcId q) const {
    SSKEL_REQUIRE(q >= 0 && q < n_);
    return rows_[static_cast<std::size_t>(q)];
  }

  bool operator==(const LabeledDigraph& other) const = default;

  /// Lists edges as "q -r-> p" sorted by (q, p), for tests and the
  /// Figure 1 reproduction.
  [[nodiscard]] std::string to_string(bool include_self_loops = true) const;

 private:
  /// Nodes reachable from `start` following labeled edges (forward
  /// BFS over rows_; includes `start`). Native so the per-round
  /// Line-25/Line-28 checks construct no Digraph.
  [[nodiscard]] ProcSet reachable_from(ProcId start) const;

  /// Nodes that reach `target` (includes `target`). rows_ stores
  /// out-edges only, so this runs a fixpoint instead of a reverse BFS.
  [[nodiscard]] ProcSet reaching_set(ProcId target) const;

  [[nodiscard]] std::size_t index(ProcId q, ProcId p) const {
    SSKEL_REQUIRE(q >= 0 && q < n_ && p >= 0 && p < n_);
    return static_cast<std::size_t>(q) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(p);
  }

  ProcId n_ = 0;
  ProcSet nodes_;
  std::vector<Round> labels_;
  /// rows_[q] = { p : label(q, p) != 0 }; maintained by every mutator.
  std::vector<ProcSet> rows_;
};

}  // namespace sskel
