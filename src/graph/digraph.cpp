#include "graph/digraph.hpp"

#include <atomic>
#include <sstream>

namespace sskel {

namespace {
/// Allocation-regression counter; relaxed ordering is enough for the
/// "did this loop construct graphs?" delta checks tests perform.
std::atomic<std::int64_t> g_graphs_constructed{0};
}  // namespace

Digraph::Digraph(ProcId n)
    : n_(n),
      nodes_(ProcSet::full(n)),
      out_(static_cast<std::size_t>(n), ProcSet(n)),
      in_(static_cast<std::size_t>(n), ProcSet(n)) {
  SSKEL_REQUIRE(n >= 0);
  g_graphs_constructed.fetch_add(1, std::memory_order_relaxed);
}

Digraph::Digraph(const Digraph& other)
    : n_(other.n_),
      nodes_(other.nodes_),
      out_(other.out_),
      in_(other.in_) {
  g_graphs_constructed.fetch_add(1, std::memory_order_relaxed);
}

std::int64_t Digraph::graphs_constructed() {
  return g_graphs_constructed.load(std::memory_order_relaxed);
}

Digraph Digraph::complete(ProcId n) {
  Digraph g(n);
  const ProcSet all = ProcSet::full(n);
  for (ProcId p = 0; p < n; ++p) {
    g.out_[static_cast<std::size_t>(p)] = all;
    g.in_[static_cast<std::size_t>(p)] = all;
  }
  return g;
}

Digraph Digraph::self_loops_only(ProcId n) {
  Digraph g(n);
  for (ProcId p = 0; p < n; ++p) g.add_edge(p, p);
  return g;
}

void Digraph::add_node(ProcId p) {
  check_node(p);
  nodes_.insert(p);
}

void Digraph::remove_node(ProcId p) {
  check_node(p);
  if (!nodes_.contains(p)) return;
  nodes_.erase(p);
  // Remove incident edges in both directions.
  for (ProcId q : out_[static_cast<std::size_t>(p)]) {
    in_[static_cast<std::size_t>(q)].erase(p);
  }
  out_[static_cast<std::size_t>(p)].clear();
  for (ProcId q : in_[static_cast<std::size_t>(p)]) {
    out_[static_cast<std::size_t>(q)].erase(p);
  }
  in_[static_cast<std::size_t>(p)].clear();
}

void Digraph::reset() {
  nodes_ = ProcSet::full(n_);
  for (ProcSet& row : out_) row.clear();
  for (ProcSet& row : in_) row.clear();
}

void Digraph::fill_complete() {
  const ProcSet all = ProcSet::full(n_);
  nodes_ = all;
  for (ProcSet& row : out_) row = all;
  for (ProcSet& row : in_) row = all;
}

namespace {
/// In-place 64x64 bit-matrix transpose (Hacker's Delight 7-3, with
/// the shifts mirrored for the LSB-is-column-0 convention ProcSet
/// uses): six levels of masked block swaps, all in registers. Bit c
/// of a[r] becomes bit r of a[c].
void transpose64(std::uint64_t a[64]) {
  std::uint64_t m = 0x00000000FFFFFFFFULL;
  for (unsigned j = 32; j != 0; j >>= 1, m ^= m << j) {
    for (unsigned k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t t = ((a[k] >> j) ^ a[k + j]) & m;
      a[k] ^= t << j;
      a[k + j] ^= t;
    }
  }
}
}  // namespace

void Digraph::or_in_rows64(const std::uint64_t* rows) {
  SSKEL_REQUIRE(n_ >= 1 && n_ <= 64);
  const auto n = static_cast<std::size_t>(n_);
  std::uint64_t cols[64];
  for (std::size_t p = 0; p < 64; ++p) cols[p] = p < n ? rows[p] : 0;
  transpose64(cols);  // cols[q] is now the out-row of q
  for (std::size_t p = 0; p < n; ++p) {
    in_[p].or_word_at(0, rows[p]);
    out_[p].or_word_at(0, cols[p]);
  }
}

void Digraph::remove_edge(ProcId q, ProcId p) {
  check_node(q);
  check_node(p);
  out_[static_cast<std::size_t>(q)].erase(p);
  in_[static_cast<std::size_t>(p)].erase(q);
}

std::int64_t Digraph::edge_count() const {
  std::int64_t total = 0;
  for (ProcId p : nodes_) total += out_[static_cast<std::size_t>(p)].count();
  return total;
}

void Digraph::add_self_loops() {
  for (ProcId p : nodes_) add_edge(p, p);
}

bool Digraph::intersect_with(const Digraph& other) {
  SSKEL_REQUIRE(n_ == other.n_);
  bool changed = nodes_.intersect_changed(other.nodes_);
  for (ProcId p = 0; p < n_; ++p) {
    const auto i = static_cast<std::size_t>(p);
    if (!nodes_.contains(p)) {
      if (!out_[i].empty() || !in_[i].empty()) changed = true;
      out_[i].clear();
      in_[i].clear();
      continue;
    }
    changed |= out_[i].intersect_changed(other.out_[i]);
    changed |= in_[i].intersect_changed(other.in_[i]);
    // Edges must stay within the (possibly shrunken) node set.
    changed |= out_[i].intersect_changed(nodes_);
    changed |= in_[i].intersect_changed(nodes_);
  }
  return changed;
}

bool Digraph::intersect_collect(const Digraph& other, GraphDelta& delta) {
  SSKEL_REQUIRE(n_ == other.n_);
  ProcSet removed(n_);  // scratch, overwritten per row
  const bool nodes_changed = nodes_.intersect_diff(other.nodes_, removed);
  bool changed = nodes_changed;
  for (ProcId p : removed) delta.removed_nodes.push_back(p);
  for (ProcId p = 0; p < n_; ++p) {
    const auto i = static_cast<std::size_t>(p);
    if (!nodes_.contains(p)) {
      if (!out_[i].empty() || !in_[i].empty()) changed = true;
      // Every surviving out-edge of a removed node dies with it; the
      // in-edges (q -> p) surface as out-row diffs of the surviving q
      // below (rows are clamped to the shrunken node set).
      for (ProcId q : out_[i]) delta.removed_edges.push_back({p, q});
      out_[i].clear();
      in_[i].clear();
      continue;
    }
    if (out_[i].intersect_diff(other.out_[i], removed)) {
      changed = true;
      for (ProcId q : removed) delta.removed_edges.push_back({p, q});
    }
    // Rows were subsets of the old node set; a clamp to the shrunken
    // set can only remove something when nodes actually disappeared
    // this call — skip the second per-row pass otherwise.
    if (nodes_changed) {
      if (out_[i].intersect_diff(nodes_, removed)) {
        changed = true;
        for (ProcId q : removed) delta.removed_edges.push_back({p, q});
      }
      changed |= in_[i].intersect_changed(other.in_[i]);
      changed |= in_[i].intersect_changed(nodes_);
    } else {
      changed |= in_[i].intersect_changed(other.in_[i]);
    }
  }
  return changed;
}

void Digraph::union_with(const Digraph& other) {
  SSKEL_REQUIRE(n_ == other.n_);
  nodes_ |= other.nodes_;
  for (ProcId p = 0; p < n_; ++p) {
    const auto i = static_cast<std::size_t>(p);
    out_[i] |= other.out_[i];
    in_[i] |= other.in_[i];
  }
}

Digraph Digraph::induced(const ProcSet& keep) const {
  SSKEL_REQUIRE(keep.universe() == n_);
  Digraph g(n_);
  g.nodes_ = nodes_ & keep;
  for (ProcId p : g.nodes_) {
    const auto i = static_cast<std::size_t>(p);
    g.out_[i] = out_[i] & g.nodes_;
    g.in_[i] = in_[i] & g.nodes_;
  }
  return g;
}

bool Digraph::is_subgraph_of(const Digraph& other) const {
  SSKEL_REQUIRE(n_ == other.n_);
  if (!nodes_.is_subset_of(other.nodes_)) return false;
  for (ProcId p : nodes_) {
    const auto i = static_cast<std::size_t>(p);
    if (!out_[i].is_subset_of(other.out_[i])) return false;
  }
  return true;
}

std::string Digraph::to_string() const {
  std::ostringstream os;
  os << "Digraph(n=" << n_ << ", nodes=" << nodes_.to_string() << ")\n";
  for (ProcId p : nodes_) {
    os << "  p" << p << " <- "
       << in_[static_cast<std::size_t>(p)].to_string() << '\n';
  }
  return os.str();
}

std::string Digraph::to_dot(const std::string& name,
                            bool include_self_loops) const {
  std::ostringstream os;
  os << "digraph " << name << " {\n";
  for (ProcId p : nodes_) os << "  p" << p << ";\n";
  for (ProcId q : nodes_) {
    for (ProcId p : out_[static_cast<std::size_t>(q)]) {
      if (!include_self_loops && q == p) continue;
      os << "  p" << q << " -> p" << p << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace sskel
