#include "graph/labeled_digraph.hpp"

#include <algorithm>
#include <atomic>
#include <sstream>

namespace sskel {

namespace {
std::atomic<std::int64_t> g_reachability_computations{0};
}  // namespace

void GraphStructure::capture(const LabeledDigraph& g) {
  const std::size_t n = static_cast<std::size_t>(g.n());
  nodes_ = g.nodes();
  if (rows_.size() != n) rows_.resize(n, ProcSet(g.n()));
  for (ProcId q = 0; q < g.n(); ++q) {
    rows_[static_cast<std::size_t>(q)] = g.out_edges(q);
  }
  valid_ = true;
}

bool GraphStructure::matches(const LabeledDigraph& g) const {
  if (!valid_ || rows_.size() != static_cast<std::size_t>(g.n())) return false;
  if (nodes_ != g.nodes()) return false;
  for (ProcId q = 0; q < g.n(); ++q) {
    if (rows_[static_cast<std::size_t>(q)] != g.out_edges(q)) return false;
  }
  return true;
}

LabeledDigraph::LabeledDigraph(ProcId n, ProcId owner)
    : n_(n),
      nodes_(n),
      labels_(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0),
      rows_(static_cast<std::size_t>(n), ProcSet(n)) {
  SSKEL_REQUIRE(n > 0);
  SSKEL_REQUIRE(owner >= 0 && owner < n);
  nodes_.insert(owner);
}

void LabeledDigraph::reset(ProcId owner) {
  SSKEL_REQUIRE(owner >= 0 && owner < n_);
  nodes_.clear();
  nodes_.insert(owner);
  // Clearing by rows touches only cells that are actually set.
  for (ProcId q = 0; q < n_; ++q) {
    ProcSet& row = rows_[static_cast<std::size_t>(q)];
    for (ProcId p : row) labels_[index(q, p)] = 0;
    row.clear();
  }
}

void LabeledDigraph::add_node(ProcId p) {
  SSKEL_REQUIRE(p >= 0 && p < n_);
  nodes_.insert(p);
}

void LabeledDigraph::set_edge(ProcId q, ProcId p, Round label) {
  SSKEL_REQUIRE(label > 0);
  nodes_.insert(q);
  nodes_.insert(p);
  labels_[index(q, p)] = label;
  rows_[static_cast<std::size_t>(q)].insert(p);
}

void LabeledDigraph::remove_edge(ProcId q, ProcId p) {
  labels_[index(q, p)] = 0;
  rows_[static_cast<std::size_t>(q)].erase(p);
}

void LabeledDigraph::merge_max(const LabeledDigraph& other) {
  SSKEL_REQUIRE(n_ == other.n_);
  nodes_ |= other.nodes_;
  // Hybrid merge: approximation graphs in real runs are usually
  // sparse (skeletons hover around O(n) edges), where walking the
  // other graph's edge bitsets wins; when the other graph is dense,
  // the branch-free whole-matrix max is faster than bit scanning.
  const std::int64_t dense_threshold =
      static_cast<std::int64_t>(labels_.size() / 8);
  if (other.edge_count() >= dense_threshold) {
    for (std::size_t i = 0; i < labels_.size(); ++i) {
      labels_[i] = std::max(labels_[i], other.labels_[i]);
    }
    for (ProcId q = 0; q < n_; ++q) {
      rows_[static_cast<std::size_t>(q)] |=
          other.rows_[static_cast<std::size_t>(q)];
    }
    return;
  }
  for (ProcId q : other.nodes_) {
    const ProcSet& other_row = other.rows_[static_cast<std::size_t>(q)];
    for (ProcId p : other_row) {
      const Round incoming = other.labels_[other.index(q, p)];
      Round& cell = labels_[index(q, p)];
      if (incoming > cell) cell = incoming;
    }
    rows_[static_cast<std::size_t>(q)] |= other_row;
  }
}

void LabeledDigraph::purge_labels_up_to(Round cutoff) {
  if (cutoff <= 0) return;
  for (ProcId q = 0; q < n_; ++q) {
    ProcSet& row = rows_[static_cast<std::size_t>(q)];
    for (ProcId p : row) {
      Round& cell = labels_[index(q, p)];
      if (cell <= cutoff) {
        cell = 0;
        row.erase(p);
      }
    }
  }
}

ProcSet LabeledDigraph::reachable_from(ProcId start) const {
  g_reachability_computations.fetch_add(1, std::memory_order_relaxed);
  ProcSet visited(n_);
  if (!nodes_.contains(start)) return visited;
  visited.insert(start);
  ProcSet frontier = visited;
  while (!frontier.empty()) {
    ProcSet next(n_);
    for (ProcId v : frontier) next |= rows_[static_cast<std::size_t>(v)];
    next -= visited;
    next &= nodes_;
    visited |= next;
    frontier = std::move(next);
  }
  return visited;
}

ProcSet LabeledDigraph::reaching_set(ProcId target) const {
  g_reachability_computations.fetch_add(1, std::memory_order_relaxed);
  ProcSet visited(n_);
  if (!nodes_.contains(target)) return visited;
  visited.insert(target);
  // rows_ holds out-edges only; iterate to a fixpoint instead of
  // materializing the reversed graph.
  bool changed = true;
  while (changed) {
    changed = false;
    for (ProcId q : nodes_) {
      if (visited.contains(q)) continue;
      if (rows_[static_cast<std::size_t>(q)].intersects(visited)) {
        visited.insert(q);
        changed = true;
      }
    }
  }
  return visited;
}

ProcSet LabeledDigraph::prune_not_reaching(ProcId owner) {
  SSKEL_REQUIRE(nodes_.contains(owner));
  ProcSet keep = reaching_set(owner);
  restrict_to_reaching(keep, owner);
  return keep;
}

void LabeledDigraph::restrict_to_reaching(const ProcSet& keep, ProcId owner) {
  SSKEL_REQUIRE(nodes_.contains(owner));
  SSKEL_REQUIRE(keep.contains(owner));
  for (ProcId q = 0; q < n_; ++q) {
    ProcSet& row = rows_[static_cast<std::size_t>(q)];
    if (row.empty()) continue;
    if (!keep.contains(q)) {
      for (ProcId p : row) labels_[index(q, p)] = 0;
      row.clear();
      continue;
    }
    for (ProcId p : row) {
      if (!keep.contains(p)) {
        labels_[index(q, p)] = 0;
        row.erase(p);
      }
    }
  }
  nodes_ &= keep;
  nodes_.insert(owner);
}

std::int64_t LabeledDigraph::edge_count() const {
  std::int64_t total = 0;
  for (const ProcSet& row : rows_) total += row.count();
  return total;
}

Round LabeledDigraph::min_label() const {
  Round best = 0;
  for (ProcId q = 0; q < n_; ++q) {
    for (ProcId p : rows_[static_cast<std::size_t>(q)]) {
      const Round l = labels_[index(q, p)];
      if (best == 0 || l < best) best = l;
    }
  }
  return best;
}

Round LabeledDigraph::max_label() const {
  Round best = 0;
  for (ProcId q = 0; q < n_; ++q) {
    for (ProcId p : rows_[static_cast<std::size_t>(q)]) {
      best = std::max(best, labels_[index(q, p)]);
    }
  }
  return best;
}

Digraph LabeledDigraph::unlabeled() const {
  Digraph g(n_);
  g = g.induced(nodes_);
  for (ProcId q : nodes_) {
    for (ProcId p : rows_[static_cast<std::size_t>(q)]) g.add_edge(q, p);
  }
  return g;
}

std::int64_t LabeledDigraph::reachability_computations() {
  return g_reachability_computations.load(std::memory_order_relaxed);
}

bool LabeledDigraph::strongly_connected() const {
  if (nodes_.empty()) return false;
  const ProcId v = nodes_.first();
  // One SCC iff some node reaches everything and everything reaches it.
  return reachable_from(v) == nodes_ && reaching_set(v) == nodes_;
}

std::string LabeledDigraph::to_string(bool include_self_loops) const {
  std::ostringstream os;
  os << "G(nodes=" << nodes_.to_string() << "; ";
  bool first = true;
  for (ProcId q : nodes_) {
    for (ProcId p : rows_[static_cast<std::size_t>(q)]) {
      if (!include_self_loops && q == p) continue;
      if (!first) os << ", ";
      os << 'p' << q << " -" << labels_[index(q, p)] << "-> p" << p;
      first = false;
    }
  }
  os << ')';
  return os.str();
}

}  // namespace sskel
