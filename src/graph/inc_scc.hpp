// IncrementalScc: decremental SCC maintenance for shrink-only graphs.
//
// The skeleton G∩r only ever loses nodes and edges (Lemma 1), so its
// strongly connected components only ever *subdivide* and its
// condensation DAG only ever gains granularity. That monotonicity
// admits a maintainer that is seeded by one Tarjan pass and thereafter
// consumes the removed-edge sets the skeleton intersection already
// produces (Digraph::intersect_collect):
//
//   * a deleted edge whose endpoints live in different components
//     cannot change the decomposition at all — only the head
//     component's root status needs a recheck;
//   * a deleted internal edge can split exactly its own component;
//     the affected component is re-decomposed *locally* by pivot
//     forward/backward reachability (word-parallel bitset BFS, the
//     FW-BW scheme), and its sub-components are spliced into the old
//     component's slot — untouched components and the reverse
//     topological order of the condensation are patched, never
//     recomputed;
//   * root flags are carried for unaffected components and re-derived
//     only for split products and components that lost an incoming
//     condensation edge (edges never appear, so a root can only stop
//     being a root by splitting, and a non-root can only become one by
//     losing its last external in-edge).
//
// `strongly_connected_components` (graph/scc.hpp) remains the oracle:
// the randomized equivalence tests replay every deletion sequence
// against a fresh Tarjan run per step.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/scc.hpp"

namespace sskel {

class IncrementalScc {
 public:
  IncrementalScc() = default;

  /// Seeds the maintainer from one full Tarjan pass over g.
  void seed(const Digraph& g);

  [[nodiscard]] bool seeded() const { return seeded_; }

  /// Applies a batch of deletions: `g` must be the graph of the last
  /// seed()/apply() call minus exactly the nodes and edges recorded in
  /// `delta` (several shrink rounds may be batched into one delta —
  /// shrink-only graphs remove every node and edge at most once, so
  /// batches compose). Components only subdivide; the decomposition is
  /// patched in place.
  void apply(const Digraph& g, const GraphDelta& delta);

  /// The maintained decomposition. Components are in a valid reverse
  /// topological order of the condensation (same contract as Tarjan's
  /// output, though not necessarily the same permutation).
  [[nodiscard]] const SccDecomposition& decomposition() const { return scc_; }

  /// Indices (ascending) of the root components — components with no
  /// incoming edge from a different component (Theorem 1's objects).
  [[nodiscard]] const std::vector<int>& root_indices() const { return roots_; }

  /// origin_of()[c] is the index, in the decomposition *before* the
  /// last seed()/apply(), of the component whose member set and
  /// internal edges are unchanged and now sit at index c — or -1 when
  /// component c was (re)built by that call. Consumers holding
  /// per-component derived data (e.g. induced subgraphs) use this to
  /// carry values across an apply instead of rebuilding everything.
  [[nodiscard]] const std::vector<int>& origin_of() const { return origin_; }

  /// Number of local re-decompositions run (touched components).
  [[nodiscard]] std::int64_t components_resolved() const { return resolved_; }

  /// Number of apply() calls that split at least one component.
  [[nodiscard]] std::int64_t splitting_applies() const { return splits_; }

  /// Targeted-reachability fast path (on by default): when a component
  /// lost at most kTargetedBatchMax internal edges (and no member), one
  /// masked BFS per lost edge asking "does the tail still reach the
  /// head?" decides whether the component stays whole — a giant
  /// component losing a few chords skips the full FW-BW
  /// re-decomposition. Sound for batches: if every tail still reaches
  /// its head in the shrunk graph, any old internal path is repaired by
  /// splicing in those replacement paths (which themselves exist in the
  /// shrunk graph, so there is no circularity); and the BFS may stay
  /// inside the old member set because an outsider on a replacement
  /// path would have belonged to the pre-deletion SCC. Any failed probe
  /// falls through to the full pass. Kept toggleable so the randomized
  /// equivalence suite covers both paths.
  void set_single_edge_fastpath(bool enabled) {
    single_edge_fastpath_ = enabled;
  }

  /// Largest internal-deletion batch the targeted fast path attempts
  /// before going straight to FW-BW. Beyond a few probes the BFSes cost
  /// as much as one local decomposition.
  static constexpr int kTargetedBatchMax = 3;

  /// Fast-path checks attempted / checks that kept the component whole,
  /// counted per component (a multi-edge batch is one check however
  /// many probes it runs; a hit replaces one local FW-BW decomposition
  /// by <= kTargetedBatchMax BFSes and is *not* counted in
  /// components_resolved()).
  [[nodiscard]] std::int64_t targeted_checks() const {
    return targeted_checks_;
  }
  [[nodiscard]] std::int64_t targeted_hits() const { return targeted_hits_; }

 private:
  /// FW-BW decomposition of `members` in the subgraph of g they
  /// induce, appended to `out` in reverse topological order.
  void decompose_local(const Digraph& g, const ProcSet& members,
                       std::vector<ProcSet>& out);

  /// Re-derives the root flag of component c from g's in-rows.
  [[nodiscard]] bool derive_root(const Digraph& g, int c) const;

  void rebuild_component_of(ProcId n);
  void rebuild_root_list();

  bool seeded_ = false;
  bool single_edge_fastpath_ = true;
  std::int64_t targeted_checks_ = 0;
  std::int64_t targeted_hits_ = 0;
  SccDecomposition scc_;
  std::vector<char> is_root_;  // parallel to scc_.components
  std::vector<int> roots_;     // ascending indices of root components
  std::vector<int> origin_;    // parallel to scc_.components
  std::int64_t resolved_ = 0;
  std::int64_t splits_ = 0;
};

}  // namespace sskel
