// Reachability and path queries on digraphs.
//
// Lemma 4 and Theorem 8 of the paper argue about directed paths of
// bounded length in skeleton graphs; Line 25 of Algorithm 1 prunes
// nodes from which the owner is unreachable. All queries here are
// BFS-based and word-parallel where the frontier allows.
#pragma once

#include <optional>
#include <vector>

#include "graph/digraph.hpp"

namespace sskel {

/// Set of nodes reachable from `start` by directed edges (includes
/// `start` itself when present in g).
[[nodiscard]] ProcSet reachable_from(const Digraph& g, ProcId start);

/// Set of nodes that can reach `target` (includes `target`). This is
/// reachability in the reversed graph and implements Line 25's keep
/// set.
[[nodiscard]] ProcSet reaching(const Digraph& g, ProcId target);

/// Length (edge count) of a shortest directed path from `from` to
/// `to`; nullopt when unreachable. A node reaches itself in 0 steps.
[[nodiscard]] std::optional<int> shortest_path_length(const Digraph& g,
                                                      ProcId from, ProcId to);

/// One shortest directed path from `from` to `to` as a node sequence
/// (both endpoints included); empty when unreachable.
[[nodiscard]] std::vector<ProcId> shortest_path(const Digraph& g, ProcId from,
                                                ProcId to);

/// Eccentricity-style bound: the longest shortest-path distance from
/// any node to `target` among nodes that reach it. Used to validate
/// the "paths have length <= n-1" facts in Lemma 4 / Theorem 8.
[[nodiscard]] int max_distance_to(const Digraph& g, ProcId target);

}  // namespace sskel
