#include "graph/scc.hpp"

#include <algorithm>

namespace sskel {

namespace {

/// Explicit-stack Tarjan state for one root of the DFS forest.
struct Frame {
  ProcId node;
  ProcId next_candidate;  // resume point in the out-neighbor scan
};

}  // namespace

SccDecomposition strongly_connected_components(const Digraph& g) {
  const ProcId n = g.n();
  SccDecomposition result;
  result.component_of.assign(static_cast<std::size_t>(n), -1);

  std::vector<int> index(static_cast<std::size_t>(n), -1);
  std::vector<int> lowlink(static_cast<std::size_t>(n), 0);
  std::vector<bool> on_stack(static_cast<std::size_t>(n), false);
  std::vector<ProcId> stack;
  std::vector<Frame> dfs;
  int next_index = 0;

  for (ProcId root : g.nodes()) {
    if (index[static_cast<std::size_t>(root)] != -1) continue;

    dfs.push_back({root, -1});
    while (!dfs.empty()) {
      Frame& frame = dfs.back();
      const ProcId v = frame.node;
      const auto vi = static_cast<std::size_t>(v);
      if (frame.next_candidate == -1) {
        // First visit of v.
        index[vi] = lowlink[vi] = next_index++;
        stack.push_back(v);
        on_stack[vi] = true;
      } else {
        // Returned from the recursive visit of next_candidate.
        const auto wi = static_cast<std::size_t>(frame.next_candidate);
        lowlink[vi] = std::min(lowlink[vi], lowlink[wi]);
      }

      // Scan remaining out-neighbors, descending into the first
      // unvisited one. next_after() walks the row's summary tier (or
      // sparse block list), so the resumable scan skips empty regions
      // of a decayed row in O(active blocks) — the "blocked Tarjan"
      // the n = 65,536 runs rely on.
      ProcId w = g.out_neighbors(v).next_after(frame.next_candidate);
      bool descended = false;
      for (; w != -1; w = g.out_neighbors(v).next_after(w)) {
        const auto wi = static_cast<std::size_t>(w);
        if (index[wi] == -1) {
          frame.next_candidate = w;
          dfs.push_back({w, -1});
          descended = true;
          break;
        }
        if (on_stack[wi]) {
          lowlink[vi] = std::min(lowlink[vi], index[wi]);
        }
      }
      if (descended) continue;

      // v is fully explored.
      if (lowlink[vi] == index[vi]) {
        ProcSet comp(n);
        ProcId u;
        do {
          u = stack.back();
          stack.pop_back();
          on_stack[static_cast<std::size_t>(u)] = false;
          comp.insert(u);
          result.component_of[static_cast<std::size_t>(u)] =
              static_cast<int>(result.components.size());
        } while (u != v);
        result.components.push_back(std::move(comp));
      }
      // Lowlink propagates to the parent at the top of the loop: the
      // parent frame reads lowlink[next_candidate] when it resumes.
      dfs.pop_back();
    }
  }
  return result;
}

Digraph condensation(const Digraph& g, const SccDecomposition& scc) {
  const ProcId c = static_cast<ProcId>(scc.count());
  Digraph dag(c);
  for (ProcId q : g.nodes()) {
    const int a = scc.component_of[static_cast<std::size_t>(q)];
    for (ProcId p : g.out_neighbors(q)) {
      const int b = scc.component_of[static_cast<std::size_t>(p)];
      if (a != b) dag.add_edge(static_cast<ProcId>(a), static_cast<ProcId>(b));
    }
  }
  return dag;
}

std::vector<int> root_component_indices(const Digraph& g,
                                        const SccDecomposition& scc) {
  const Digraph dag = condensation(g, scc);
  std::vector<int> roots;
  for (ProcId comp : dag.nodes()) {
    if (dag.in_neighbors(comp).empty()) roots.push_back(comp);
  }
  return roots;
}

std::vector<ProcSet> root_components(const Digraph& g) {
  const SccDecomposition scc = strongly_connected_components(g);
  std::vector<ProcSet> out;
  for (int idx : root_component_indices(g, scc)) {
    out.push_back(scc.components[static_cast<std::size_t>(idx)]);
  }
  return out;
}

ProcSet component_of(const Digraph& g, ProcId p) {
  if (!g.has_node(p)) return ProcSet(g.n());
  const SccDecomposition scc = strongly_connected_components(g);
  const int idx = scc.component_of[static_cast<std::size_t>(p)];
  SSKEL_ASSERT(idx >= 0);
  return scc.components[static_cast<std::size_t>(idx)];
}

bool is_strongly_connected(const Digraph& g) {
  if (g.nodes().empty()) return false;
  const SccDecomposition scc = strongly_connected_components(g);
  return scc.count() == 1;
}

}  // namespace sskel
