// Strongly connected components, condensation DAGs, and root
// components.
//
// These are the central graph-theoretic tools of the paper: Algorithm 1
// decides when its approximation graph is strongly connected, Theorem 1
// bounds the number of *root components* (SCCs without incoming edges
// from outside), and Lemma 11's termination argument walks the
// condensation DAG. Tarjan's algorithm (iterative, to survive large n)
// yields components in reverse topological order of the condensation,
// which we exploit when building the contraction.
#pragma once

#include <vector>

#include "graph/digraph.hpp"

namespace sskel {

/// The SCC decomposition of (the present nodes of) a digraph.
struct SccDecomposition {
  /// component_of[p] is the component index of node p, or -1 when p is
  /// not present in the graph.
  std::vector<int> component_of;

  /// Member sets, indexed by component id. Components are emitted in
  /// *reverse topological* order of the condensation: if the
  /// condensation has an edge C_a -> C_b then b < a.
  std::vector<ProcSet> components;

  [[nodiscard]] int count() const {
    return static_cast<int>(components.size());
  }
};

/// Tarjan SCC over the present nodes of g.
[[nodiscard]] SccDecomposition strongly_connected_components(const Digraph& g);

/// The condensation (contraction of SCCs): a DAG with one node per
/// component, edge a->b iff some edge of g crosses from component a to
/// component b (a != b). Node ids of the result are component indices.
[[nodiscard]] Digraph condensation(const Digraph& g,
                                   const SccDecomposition& scc);

/// Indices of root components: components with no incoming edge from a
/// different component. Nonempty for every nonempty graph (the
/// condensation is a DAG — Lemma 11's first step).
[[nodiscard]] std::vector<int> root_component_indices(
    const Digraph& g, const SccDecomposition& scc);

/// Member sets of the root components of g.
[[nodiscard]] std::vector<ProcSet> root_components(const Digraph& g);

/// The strongly connected component C_p containing process p (empty
/// set if p is not a node of g).
[[nodiscard]] ProcSet component_of(const Digraph& g, ProcId p);

/// True iff g is nonempty and every present node can reach every
/// other, i.e. the whole graph is one SCC (Line 28's test).
[[nodiscard]] bool is_strongly_connected(const Digraph& g);

}  // namespace sskel
