#include "graph/reach.hpp"

#include <algorithm>

namespace sskel {

namespace {

/// Generic BFS closure: repeatedly folds the neighbor rows of the
/// frontier into the visited set until a fixpoint. The inner fold is
/// the fused `next |= row(v) & nodes` (ProcSet::or_and) so each row is
/// masked and accumulated in one pass over its active blocks — no
/// intermediate set, and rows of a decayed skeleton cost O(active
/// blocks), not O(n/64).
template <typename NeighborRow>
ProcSet closure(const Digraph& g, ProcId start, NeighborRow row) {
  ProcSet visited(g.n());
  if (!g.has_node(start)) return visited;
  visited.insert(start);
  ProcSet frontier = visited;
  while (!frontier.empty()) {
    ProcSet next(g.n());
    for (ProcId v : frontier) next.or_and(row(v), g.nodes());
    next -= visited;
    visited |= next;
    frontier = std::move(next);
  }
  return visited;
}

}  // namespace

ProcSet reachable_from(const Digraph& g, ProcId start) {
  return closure(g, start,
                 [&](ProcId v) -> const ProcSet& { return g.out_neighbors(v); });
}

ProcSet reaching(const Digraph& g, ProcId target) {
  return closure(g, target,
                 [&](ProcId v) -> const ProcSet& { return g.in_neighbors(v); });
}

std::optional<int> shortest_path_length(const Digraph& g, ProcId from,
                                        ProcId to) {
  if (!g.has_node(from) || !g.has_node(to)) return std::nullopt;
  if (from == to) return 0;
  ProcSet visited = ProcSet::singleton(g.n(), from);
  ProcSet frontier = visited;
  int dist = 0;
  while (!frontier.empty()) {
    ++dist;
    ProcSet next(g.n());
    for (ProcId v : frontier) next.or_and(g.out_neighbors(v), g.nodes());
    next -= visited;
    if (next.contains(to)) return dist;
    visited |= next;
    frontier = std::move(next);
  }
  return std::nullopt;
}

std::vector<ProcId> shortest_path(const Digraph& g, ProcId from, ProcId to) {
  if (!g.has_node(from) || !g.has_node(to)) return {};
  // BFS recording parents.
  std::vector<ProcId> parent(static_cast<std::size_t>(g.n()), -2);
  parent[static_cast<std::size_t>(from)] = -1;
  std::vector<ProcId> queue{from};
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const ProcId v = queue[head];
    if (v == to) break;
    for (ProcId w : g.out_neighbors(v)) {
      if (!g.has_node(w)) continue;
      if (parent[static_cast<std::size_t>(w)] != -2) continue;
      parent[static_cast<std::size_t>(w)] = v;
      queue.push_back(w);
    }
  }
  if (parent[static_cast<std::size_t>(to)] == -2) return {};
  std::vector<ProcId> path;
  for (ProcId v = to; v != -1; v = parent[static_cast<std::size_t>(v)]) {
    path.push_back(v);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

int max_distance_to(const Digraph& g, ProcId target) {
  if (!g.has_node(target)) return 0;
  // Backward BFS level count.
  ProcSet visited = ProcSet::singleton(g.n(), target);
  ProcSet frontier = visited;
  int levels = 0;
  while (true) {
    ProcSet next(g.n());
    for (ProcId v : frontier) next.or_and(g.in_neighbors(v), g.nodes());
    next -= visited;
    if (next.empty()) return levels;
    ++levels;
    visited |= next;
    frontier = std::move(next);
  }
}

}  // namespace sskel
