#include "graph/inc_scc.hpp"

#include <utility>

#include "util/assert.hpp"

namespace sskel {

namespace {

/// Word-parallel BFS closure of `start` within `members`, following
/// out-rows (forward = true) or in-rows (forward = false) of g.
ProcSet masked_closure(const Digraph& g, ProcId start, const ProcSet& members,
                       bool forward) {
  ProcSet visited(g.n());
  visited.insert(start);
  ProcSet frontier = visited;
  ProcSet next(g.n());
  while (!frontier.empty()) {
    next.clear();
    for (ProcId v : frontier) {
      // Fused fold: row & members accumulated in one pass over the
      // blocks active on both sides (ProcSet::or_and), so a decayed
      // component costs O(active blocks) per row, not O(n/64).
      next.or_and(forward ? g.out_neighbors(v) : g.in_neighbors(v), members);
    }
    next -= visited;
    visited |= next;
    std::swap(frontier, next);
  }
  return visited;
}

}  // namespace

void IncrementalScc::seed(const Digraph& g) {
  scc_ = strongly_connected_components(g);
  const int count = scc_.count();
  origin_.assign(static_cast<std::size_t>(count), -1);
  is_root_.assign(static_cast<std::size_t>(count), 0);
  for (int c = 0; c < count; ++c) {
    is_root_[static_cast<std::size_t>(c)] = derive_root(g, c) ? 1 : 0;
  }
  rebuild_root_list();
  seeded_ = true;
}

bool IncrementalScc::derive_root(const Digraph& g, int c) const {
  // Root iff no member hears from outside the component. In-rows only
  // contain present nodes, so removed nodes never count as sources.
  const ProcSet& comp = scc_.components[static_cast<std::size_t>(c)];
  for (ProcId p : comp) {
    if (!g.in_neighbors(p).is_subset_of(comp)) return false;
  }
  return true;
}

void IncrementalScc::rebuild_component_of(ProcId n) {
  scc_.component_of.assign(static_cast<std::size_t>(n), -1);
  for (std::size_t c = 0; c < scc_.components.size(); ++c) {
    for (ProcId p : scc_.components[c]) {
      scc_.component_of[static_cast<std::size_t>(p)] = static_cast<int>(c);
    }
  }
}

void IncrementalScc::rebuild_root_list() {
  roots_.clear();
  for (std::size_t c = 0; c < is_root_.size(); ++c) {
    if (is_root_[c] != 0) roots_.push_back(static_cast<int>(c));
  }
}

void IncrementalScc::decompose_local(const Digraph& g, const ProcSet& members,
                                     std::vector<ProcSet>& out) {
  // FW-BW with an explicit stack (a chain that shatters completely
  // would otherwise recurse to depth |members|). An item is either a
  // set still to decompose or a finished component to emit; pushing
  // {B, R, emit(scc), F} in reverse yields the emission order
  // F* scc R* B*, which is reverse topological: the pivot reaches all
  // of F (so F's components must precede its own), all of B reaches
  // the pivot, and R can only point into F — no edge runs from F, or
  // from R into B, or between R and the pivot's component.
  struct Item {
    ProcSet set;
    bool emit;
  };
  std::vector<Item> stack;
  stack.push_back({members, false});
  while (!stack.empty()) {
    Item item = std::move(stack.back());
    stack.pop_back();
    if (item.emit) {
      out.push_back(std::move(item.set));
      continue;
    }
    if (item.set.empty()) continue;
    const ProcId pivot = item.set.first();
    const ProcSet fwd = masked_closure(g, pivot, item.set, true);
    const ProcSet bwd = masked_closure(g, pivot, item.set, false);
    ProcSet scc = fwd & bwd;
    ProcSet rest = item.set;
    rest -= fwd;
    rest -= bwd;
    ProcSet fwd_only = fwd - scc;
    stack.push_back({bwd - scc, false});
    stack.push_back({std::move(rest), false});
    stack.push_back({std::move(scc), true});
    stack.push_back({std::move(fwd_only), false});
  }
}

void IncrementalScc::apply(const Digraph& g, const GraphDelta& delta) {
  SSKEL_REQUIRE(seeded_);
  const ProcId n = g.n();
  const int old_count = scc_.count();
  // Per-component damage record. A component with internal losses or
  // lost members must be revisited; lost_in_edge (head of a removed
  // inter-component edge) only forces a root-status recheck. The first
  // kTargetedBatchMax internal edges are remembered (and the count
  // capped one past that) for the targeted fast path below.
  struct Touch {
    int internal_losses = 0;  // capped at kTargetedBatchMax + 1
    ProcId tail[kTargetedBatchMax] = {-1, -1, -1};
    ProcId head[kTargetedBatchMax] = {-1, -1, -1};
    bool lost_member = false;
  };
  std::vector<Touch> touch(static_cast<std::size_t>(old_count));
  std::vector<char> lost_in_edge(static_cast<std::size_t>(old_count), 0);
  for (const auto& [from, to] : delta.removed_edges) {
    const int cf = scc_.component_of[static_cast<std::size_t>(from)];
    const int ct = scc_.component_of[static_cast<std::size_t>(to)];
    if (cf < 0 || ct < 0) continue;  // endpoint gone in an earlier apply
    if (cf == ct) {
      Touch& t = touch[static_cast<std::size_t>(cf)];
      if (t.internal_losses <= kTargetedBatchMax) {
        if (t.internal_losses < kTargetedBatchMax) {
          t.tail[t.internal_losses] = from;
          t.head[t.internal_losses] = to;
        }
        ++t.internal_losses;
      }
    } else {
      lost_in_edge[static_cast<std::size_t>(ct)] = 1;
    }
  }
  for (ProcId p : delta.removed_nodes) {
    const int c = scc_.component_of[static_cast<std::size_t>(p)];
    if (c >= 0) touch[static_cast<std::size_t>(c)].lost_member = true;
  }

  // Splice: untouched components keep their slot (and carried root
  // flag unless they lost an in-edge); touched components are replaced
  // in place by their locally ordered sub-components. Replacing one
  // valid reverse-topological position by a locally valid ordering of
  // its parts preserves global validity — every cross edge of a part
  // is a cross edge the old component already had.
  std::vector<ProcSet> new_components;
  std::vector<char> new_is_root;
  std::vector<char> recheck_root;
  std::vector<int> new_origin;
  new_components.reserve(static_cast<std::size_t>(old_count));
  new_is_root.reserve(static_cast<std::size_t>(old_count));
  recheck_root.reserve(static_cast<std::size_t>(old_count));
  new_origin.reserve(static_cast<std::size_t>(old_count));
  bool any_split = false;
  std::vector<ProcSet> parts;
  for (int c = 0; c < old_count; ++c) {
    const auto ci = static_cast<std::size_t>(c);
    const Touch& t = touch[ci];
    if (t.internal_losses == 0 && !t.lost_member) {
      new_origin.push_back(c);
      new_is_root.push_back(is_root_[ci]);
      recheck_root.push_back(lost_in_edge[ci]);
      new_components.push_back(std::move(scc_.components[ci]));
      continue;
    }
    if (single_edge_fastpath_ && t.internal_losses >= 1 &&
        t.internal_losses <= kTargetedBatchMax && !t.lost_member) {
      // A small batch of internal edges (tail_i -> head_i) vanished
      // and every member survived: the component stays one SCC iff
      // every tail still reaches its head in the shrunk graph. Any
      // old internal path is then repaired by splicing in those
      // replacement paths, which exist in the shrunk graph directly —
      // no circularity. Each BFS may stay inside the old member set:
      // an outsider on a tail-to-head path would have been reachable
      // from and reaching this SCC before the deletion, hence a
      // member. A hit keeps the component (and its root flag: cross
      // edges are untouched; a simultaneous lost_in_edge still forces
      // the recheck); origin is reported as -1 because the *internal*
      // edges changed, so carried induced subgraphs would be stale.
      // One check per component, however many probes the batch needs.
      ++targeted_checks_;
      bool all_reach = true;
      for (int e = 0; e < t.internal_losses; ++e) {
        if (!masked_closure(g, t.tail[e], scc_.components[ci], true)
                 .contains(t.head[e])) {
          all_reach = false;
          break;
        }
      }
      if (all_reach) {
        ++targeted_hits_;
        new_origin.push_back(-1);
        new_is_root.push_back(is_root_[ci]);
        recheck_root.push_back(lost_in_edge[ci]);
        new_components.push_back(std::move(scc_.components[ci]));
        continue;
      }
    }
    ProcSet members = scc_.components[ci] & g.nodes();
    parts.clear();
    decompose_local(g, members, parts);
    ++resolved_;
    if (parts.size() != 1) any_split = true;
    for (ProcSet& part : parts) {
      new_origin.push_back(-1);
      new_is_root.push_back(0);
      recheck_root.push_back(1);
      new_components.push_back(std::move(part));
    }
  }
  if (any_split) ++splits_;

  scc_.components = std::move(new_components);
  is_root_ = std::move(new_is_root);
  origin_ = std::move(new_origin);
  rebuild_component_of(n);
  for (std::size_t c = 0; c < recheck_root.size(); ++c) {
    if (recheck_root[c] != 0) {
      is_root_[c] = derive_root(g, static_cast<int>(c)) ? 1 : 0;
    }
  }
  rebuild_root_list();
}

}  // namespace sskel
