// Structure fingerprints: strong 128-bit hashes of digraph structure.
//
// The intern table (skeleton/intern.hpp) maps each distinct skeleton
// structure — node set plus out-edge rows, labels ignored — to one
// canonical entry. The bucket key is a 128-bit fingerprint computed by
// a seeded xxhash-style mix over the structure's packed bitset words,
// so hashing costs the same O(n^2/64) word scan as a structure
// compare. Fingerprint equality is *not* trusted as structure
// equality: the table always confirms a hit with a full word-level
// compare, so a collision costs one extra scan instead of a wrong
// answer.
#pragma once

#include <cstdint>

#include "util/proc_set.hpp"
#include "util/types.hpp"

namespace sskel {

class Digraph;
class LabeledDigraph;

/// A 128-bit structure fingerprint as two independent 64-bit lanes.
struct Fingerprint128 {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  bool operator==(const Fingerprint128& other) const = default;
};

/// Incremental two-lane mixer (xxhash64-style primes and rotations,
/// one accumulator per lane with distinct constants). Word order
/// matters: mixing the same words in a different order yields a
/// different fingerprint, which is exactly right for adjacency rows.
class FingerprintBuilder {
 public:
  explicit FingerprintBuilder(std::uint64_t seed);

  /// Mixes one 64-bit word into both lanes.
  void mix_word(std::uint64_t w);

  /// Mixes a whole ProcSet: its packed words in ascending word order.
  /// The universe size is *not* mixed per set — callers mix n once up
  /// front, after which every set of that universe contributes a fixed
  /// number of words and the stream stays self-delimiting.
  void mix_set(const ProcSet& s);

  /// Finalizes (avalanche per lane, folded with the word count).
  /// The builder may keep mixing afterwards; finish() is const.
  [[nodiscard]] Fingerprint128 finish() const;

 private:
  std::uint64_t acc1_;
  std::uint64_t acc2_;
  std::uint64_t length_ = 0;
};

/// Fingerprint of a Digraph's structure: n, the node set, then every
/// out-row in ascending node order.
[[nodiscard]] Fingerprint128 fingerprint_structure(const Digraph& g,
                                                   std::uint64_t seed);

/// Fingerprint of a LabeledDigraph's *structure* (labels ignored):
/// same word stream as the Digraph overload, so a labeled graph and an
/// unlabeled graph with identical nodes and edges fingerprint equal.
[[nodiscard]] Fingerprint128 fingerprint_structure(const LabeledDigraph& g,
                                                   std::uint64_t seed);

}  // namespace sskel
