// Digraph: directed graphs over the process universe.
//
// This is the representation used for per-round communication graphs
// G^r, skeletons G∩r, and stable skeletons G∩∞ (Sec. II of the paper).
// Nodes are process ids; a node-presence set supports induced
// subgraphs and strongly connected components as first-class graphs.
// Adjacency is stored as ProcSet rows in both directions so that
//   * skeleton intersection is a word-parallel AND per row, and
//   * PT(p, r) (the timely in-neighborhood) is a direct row read.
//
// Invariant maintained by every mutator: edges exist only between
// present nodes, and in_/out_ stay mirror images of each other.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/proc_set.hpp"
#include "util/types.hpp"

namespace sskel {

/// What one (or several, when batched) shrink operations removed from
/// a digraph. Produced by Digraph::intersect_collect and consumed by
/// the decremental SCC maintainer: because skeletons only ever lose
/// edges (Lemma 1), the total volume of deltas over an entire run is
/// bounded by the initial edge count, so accumulating them is cheap.
struct GraphDelta {
  /// Removed edges as (from, to) pairs, each reported exactly once —
  /// including the incident edges of removed nodes.
  std::vector<std::pair<ProcId, ProcId>> removed_edges;
  /// Nodes the shrink removed entirely.
  std::vector<ProcId> removed_nodes;

  void clear() {
    removed_edges.clear();
    removed_nodes.clear();
  }

  [[nodiscard]] bool empty() const {
    return removed_edges.empty() && removed_nodes.empty();
  }
};

class Digraph {
 public:
  /// Graph over an empty universe.
  Digraph() = default;

  /// Graph with all n nodes present and no edges.
  explicit Digraph(ProcId n);

  Digraph(const Digraph& other);
  Digraph& operator=(const Digraph& other) = default;
  Digraph(Digraph&& other) noexcept = default;
  Digraph& operator=(Digraph&& other) noexcept = default;
  ~Digraph() = default;

  /// Process-wide count of Digraph constructions that allocated fresh
  /// adjacency storage (the n-node constructor and copy construction;
  /// assignment into an existing graph reuses storage and is not
  /// counted). Hot-loop tests assert this stays flat per round.
  [[nodiscard]] static std::int64_t graphs_constructed();

  /// All n nodes, every edge including self-loops (the complete graph;
  /// the skeleton tracker starts from this and intersects downward).
  static Digraph complete(ProcId n);

  /// All n nodes, exactly the self-loops (a fully partitioned round).
  static Digraph self_loops_only(ProcId n);

  [[nodiscard]] ProcId n() const { return n_; }
  [[nodiscard]] const ProcSet& nodes() const { return nodes_; }
  [[nodiscard]] bool has_node(ProcId p) const { return nodes_.contains(p); }
  [[nodiscard]] int node_count() const { return nodes_.count(); }

  /// Inserts node p (no edges).
  void add_node(ProcId p);

  /// Removes node p and every incident edge.
  void remove_node(ProcId p);

  /// Adds edge (q -> p): "p hears from q". Both endpoints are added if
  /// absent. Inline: derived-graph rows insert one edge per delivered
  /// message, making this the message plane's per-round inner loop.
  void add_edge(ProcId q, ProcId p) {
    check_node(q);
    check_node(p);
    nodes_.insert(q);
    nodes_.insert(p);
    out_[static_cast<std::size_t>(q)].insert(p);
    in_[static_cast<std::size_t>(p)].insert(q);
  }

  /// Adds edge (q -> p) for every q in `senders` — the bulk form the
  /// round drivers use to land a whole derived-graph row. The in-row
  /// and node updates are word-parallel set unions; only the out-row
  /// scatter walks the members.
  void add_in_edges(ProcId p, const ProcSet& senders) {
    check_node(p);
    SSKEL_REQUIRE(senders.universe() == n_);
    nodes_.insert(p);
    nodes_ |= senders;
    in_[static_cast<std::size_t>(p)] |= senders;
    for (ProcId q : senders) out_[static_cast<std::size_t>(q)].insert(p);
  }

  /// Bulk edge load for universes of at most 64 processes: ORs in the
  /// edge set given as packed in-rows (`rows[p]` bit q set means edge
  /// q -> p). Out-rows are materialized with one in-register 64x64 bit
  /// transpose instead of per-edge scatters, so a round driver can
  /// stage a whole derived graph in flat words and land it in O(n)
  /// word stores. Nodes are not modified: callers must ensure every
  /// edge endpoint is already present (the drivers' graphs keep all n
  /// nodes present).
  void or_in_rows64(const std::uint64_t* rows);

  void remove_edge(ProcId q, ProcId p);

  /// Restores the freshly-constructed state — all n nodes present, no
  /// edges — without releasing row storage. Round drivers recycle
  /// graphs through this instead of constructing (and heap-allocating
  /// 2n rows for) a new Digraph every round.
  void reset();

  /// Restores the complete graph (every edge including self-loops) in
  /// place, reusing row storage — the counterpart of reset() for
  /// consumers that start from Digraph::complete, like a recycled
  /// skeleton tracker.
  void fill_complete();

  [[nodiscard]] bool has_edge(ProcId q, ProcId p) const {
    return out_[static_cast<std::size_t>(q)].contains(p);
  }

  /// Successors of q: processes that hear from q.
  [[nodiscard]] const ProcSet& out_neighbors(ProcId q) const {
    return out_[static_cast<std::size_t>(q)];
  }

  /// Predecessors of p: processes p hears from. In paper terms the row
  /// of G∩r giving PT(p, r).
  [[nodiscard]] const ProcSet& in_neighbors(ProcId p) const {
    return in_[static_cast<std::size_t>(p)];
  }

  [[nodiscard]] std::int64_t edge_count() const;

  /// Ensures (p -> p) for every present node. Models the paper's
  /// convention that a process always hears from itself.
  void add_self_loops();

  /// Edge-and-node intersection, the G ∩ G' of footnote 3. Requires
  /// equal universes. Returns true when the intersection removed at
  /// least one node or edge — the change flag is computed inside the
  /// word-parallel AND, so callers (the skeleton tracker's version
  /// stamp) learn "nothing shrank" for free.
  bool intersect_with(const Digraph& other);

  /// intersect_with that additionally *appends* every removed node and
  /// edge to `delta` (existing delta contents are kept, so the skeleton
  /// tracker can batch several shrink rounds into one delta). Each
  /// removed edge is reported exactly once, via its out-row; the
  /// incident edges of removed nodes are included. Costs one extra
  /// ProcSet of scratch per call plus O(#removed) appends on top of the
  /// word-parallel AND.
  bool intersect_collect(const Digraph& other, GraphDelta& delta);

  /// Edge-and-node union. Requires equal universes.
  void union_with(const Digraph& other);

  /// The subgraph induced by `keep` (within the present nodes).
  [[nodiscard]] Digraph induced(const ProcSet& keep) const;

  /// True when `other` has every node and edge of *this (subgraph
  /// relation of Eq. (1)).
  [[nodiscard]] bool is_subgraph_of(const Digraph& other) const;

  bool operator==(const Digraph& other) const = default;

  /// Multi-line listing "p3 <- {p1, p5}" per node, for logs and tests.
  [[nodiscard]] std::string to_string() const;

  /// Graphviz rendering (self-loops omitted by default, as in Fig. 1).
  [[nodiscard]] std::string to_dot(const std::string& name,
                                   bool include_self_loops = false) const;

 private:
  void check_node(ProcId p) const {
    SSKEL_REQUIRE(p >= 0 && p < n_);
  }

  ProcId n_ = 0;
  ProcSet nodes_;
  std::vector<ProcSet> out_;
  std::vector<ProcSet> in_;
};

}  // namespace sskel
