// SSKC — the framed campaign-checkpoint container (DESIGN.md §15).
//
// A checkpoint is the campaign's folded prefix: for every job, the
// partial McSummary over trials [0, trials_folded) plus that count.
// Because trial t's seed is mix_seed(master, t) and the fold is a left
// fold in trial order (fold_scenario_trial), the folded prefix *is*
// the complete resumable state — no RNG positions, no in-flight
// bookkeeping. Resume folds trial trials_folded onward on top of the
// decoded summary and lands bit-identically on the uninterrupted run.
//
// Wire format ("SSKC", version 1):
//
//   magic "SSKC" | varint version | frames...
//   frame  := type u8 | varint payload-length | payload
//   kHeader (1), exactly once, first:
//       varint spec-fingerprint | varint job-count
//   kJob (2), exactly job-count times, in job order:
//       varint trials-folded | summary body (see checkpoint.cpp)
//   kEnd (3), exactly once, last, empty payload
//
// The frame sequence is fully determined by the struct (fixed order,
// no optional frames), every varint is strict ULEB128, and doubles
// travel as raw 8-byte little-endian bit patterns — so the encoding
// is *byte-canonical*: decode(b) accepted implies encode(decode(b))
// == b, the law the SSKC fuzzer enforces (stronger than SSKT's
// idempotence law, and what lets CI diff checkpoint files byte-wise).
//
// Encoding trusts its caller (SSKEL_REQUIRE on malformed summaries);
// decoding trusts nothing — checkpoints are files that survive
// crashes, travel as CI artifacts, and feed fuzz corpora, so every
// field is bounds-checked and rejection is a DecodeError, never an
// abort or OOM.
#pragma once

#include <cstdint>
#include <vector>

#include "mc/montecarlo.hpp"
#include "util/decode.hpp"

namespace sskel {

/// One job's folded prefix: the partial summary over the first
/// `trials_folded` trials. Only trial-derived fields round-trip;
/// service-level fields (intern stats, memory marks, scheduler
/// provenance) are runtime observations, re-exported by whichever
/// plane finishes the job.
struct JobCheckpoint {
  McSummary summary;
  std::int64_t trials_folded = 0;
};

struct CampaignCheckpoint {
  /// CampaignSpec::fingerprint() of the spec that produced this
  /// checkpoint; resume refuses a checkpoint whose fingerprint does
  /// not match the spec it is asked to continue (folding trials of a
  /// different campaign would be silent corruption).
  std::uint64_t spec_fingerprint = 0;
  std::vector<JobCheckpoint> jobs;
};

/// Serializes a checkpoint (byte-canonical, see above).
[[nodiscard]] std::vector<std::uint8_t> encode_checkpoint(
    const CampaignCheckpoint& checkpoint);

/// Decodes untrusted checkpoint bytes.
[[nodiscard]] DecodeResult<CampaignCheckpoint> decode_checkpoint(
    const std::vector<std::uint8_t>& bytes);

/// Serializes exactly the trial-derived fields of a summary — the
/// kJob body without the trials-folded prefix. This is the campaign's
/// bit-equality currency: two summaries fold-identical iff these
/// bytes are equal, so tests, the bench gate, and the CLI's digest
/// all compare through it (the service-level fields excluded here are
/// the same set the scheduler-equivalence tests exclude).
[[nodiscard]] std::vector<std::uint8_t> encode_summary_trial_fields(
    const McSummary& summary);

/// FNV-1a 64 over arbitrary bytes — the digest rendered by the
/// sskel_campaign CLI (over encode_summary_trial_fields) and the
/// fingerprint primitive used by CampaignSpec.
[[nodiscard]] std::uint64_t fnv1a64(const std::vector<std::uint8_t>& bytes);

}  // namespace sskel
