#include "campaign/spec.hpp"

#include <cctype>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>

#include "adversary/crash.hpp"
#include "adversary/rotating.hpp"

namespace sskel {

namespace {

[[nodiscard]] std::string trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && (std::isspace(static_cast<unsigned char>(s[begin])) !=
                         0)) {
    ++begin;
  }
  while (end > begin &&
         (std::isspace(static_cast<unsigned char>(s[end - 1])) != 0)) {
    --end;
  }
  return s.substr(begin, end - begin);
}

/// key=value attributes of a `job =` line, after the scenario word.
class Attrs {
 public:
  [[nodiscard]] bool parse(const std::string& text, std::string& error) {
    std::istringstream in(text);
    std::string token;
    while (in >> token) {
      const std::size_t eq = token.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == token.size()) {
        error = "malformed attribute '" + token + "' (want key=value)";
        return false;
      }
      values_[token.substr(0, eq)] = token.substr(eq + 1);
    }
    return true;
  }

  [[nodiscard]] bool get_int(const std::string& key, std::int64_t fallback,
                             std::int64_t& out, std::string& error) {
    auto it = values_.find(key);
    if (it == values_.end()) {
      out = fallback;
      return true;
    }
    consumed_.insert(it->first);
    char* end = nullptr;
    out = std::strtoll(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0') {
      error = "attribute '" + key + "' is not an integer: " + it->second;
      return false;
    }
    return true;
  }

  [[nodiscard]] bool get_uint(const std::string& key, std::uint64_t fallback,
                              std::uint64_t& out, std::string& error) {
    auto it = values_.find(key);
    if (it == values_.end()) {
      out = fallback;
      return true;
    }
    consumed_.insert(it->first);
    char* end = nullptr;
    out = std::strtoull(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0') {
      error = "attribute '" + key + "' is not an integer: " + it->second;
      return false;
    }
    return true;
  }

  [[nodiscard]] bool get_double(const std::string& key, double fallback,
                                double& out, std::string& error) {
    auto it = values_.find(key);
    if (it == values_.end()) {
      out = fallback;
      return true;
    }
    consumed_.insert(it->first);
    char* end = nullptr;
    out = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0') {
      error = "attribute '" + key + "' is not a number: " + it->second;
      return false;
    }
    return true;
  }

  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    consumed_.insert(it->first);
    return it->second;
  }

  /// Unknown attributes are typos in a sweep config — fail fast.
  [[nodiscard]] bool check_consumed(std::string& error) const {
    for (const auto& [key, value] : values_) {
      if (consumed_.count(key) == 0) {
        error = "unknown attribute '" + key + "'";
        return false;
      }
    }
    return true;
  }

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> consumed_;
};

/// strtoll-with-endptr validation for top-level config values — the
/// same fail-fast contract job attributes get via Attrs (atoi/atoll
/// would fold garbage or trailing junk into a silent 0).
[[nodiscard]] bool parse_int_value(const std::string& value,
                                   std::int64_t& out) {
  if (value.empty()) return false;
  char* end = nullptr;
  out = std::strtoll(value.c_str(), &end, 10);
  return end != value.c_str() && *end == '\0';
}

[[nodiscard]] bool parse_bool_value(const std::string& value, bool& out) {
  if (value == "1" || value == "true") {
    out = true;
    return true;
  }
  if (value == "0" || value == "false") {
    out = false;
    return true;
  }
  return false;
}

[[nodiscard]] bool parse_job(const std::string& value, CampaignJob& job,
                             std::string& error) {
  std::istringstream in(value);
  std::string kind;
  if (!(in >> kind)) {
    error = "job line missing scenario kind";
    return false;
  }
  std::string rest;
  std::getline(in, rest);

  Attrs attrs;
  if (!attrs.parse(rest, error)) return false;

  std::int64_t trials = 0;
  std::uint64_t seed = 0;
  if (!attrs.get_int("trials", 0, trials, error) ||
      !attrs.get_uint("seed", 0, seed, error)) {
    return false;
  }
  if (trials <= 0) {
    error = "job needs trials > 0";
    return false;
  }
  job.master_seed = seed;
  job.trials = trials;
  job.name = attrs.get_string("name", kind);

  if (kind == "partition") {
    std::int64_t n = 0;
    std::int64_t m = 0;
    double noise = 0.0;
    std::int64_t stabilize = 1;
    if (!attrs.get_int("n", 4, n, error) || !attrs.get_int("m", 2, m, error) ||
        !attrs.get_double("noise", 0.0, noise, error) ||
        !attrs.get_int("stabilize", 1, stabilize, error)) {
      return false;
    }
    if (n < 1 || m < 1 || m > n || stabilize < 1) {
      error = "partition needs 1 <= m <= n and stabilize >= 1";
      return false;
    }
    PartitionParams params;
    params.blocks = even_blocks(static_cast<ProcId>(n), static_cast<int>(m));
    params.cross_noise_probability = noise;
    params.stabilization_round = static_cast<Round>(stabilize);
    job.scenario = std::make_shared<PartitionScenario>(std::move(params));
  } else if (kind == "random-psrcs") {
    std::int64_t n = 0;
    std::int64_t k = 0;
    std::int64_t roots = 0;
    std::int64_t maxcore = 0;
    double noise = 0.0;
    std::int64_t stabilize = 1;
    if (!attrs.get_int("n", 8, n, error) || !attrs.get_int("k", 2, k, error) ||
        !attrs.get_int("roots", 2, roots, error) ||
        !attrs.get_int("maxcore", 3, maxcore, error) ||
        !attrs.get_double("noise", 0.25, noise, error) ||
        !attrs.get_int("stabilize", 1, stabilize, error)) {
      return false;
    }
    if (n < 1 || k < 1 || roots < 1 || roots > k || maxcore < 1 ||
        stabilize < 1) {
      error = "random-psrcs needs n,k,maxcore >= 1 and 1 <= roots <= k";
      return false;
    }
    RandomPsrcsParams params;
    params.n = static_cast<ProcId>(n);
    params.k = static_cast<int>(k);
    params.root_components = static_cast<int>(roots);
    params.max_core_size = static_cast<int>(maxcore);
    params.noise_probability = noise;
    params.stabilization_round = static_cast<Round>(stabilize);
    job.scenario = std::make_shared<RandomPsrcsScenario>(params);
  } else if (kind == "crash") {
    std::int64_t n = 0;
    std::int64_t crashes = 0;
    std::int64_t maxcrash = 0;
    if (!attrs.get_int("n", 5, n, error) ||
        !attrs.get_int("crashes", 1, crashes, error) ||
        !attrs.get_int("maxcrash", 3, maxcrash, error)) {
      return false;
    }
    if (n < 1 || crashes < 0 || crashes >= n || maxcrash < 1) {
      error = "crash needs 0 <= crashes < n and maxcrash >= 1";
      return false;
    }
    job.scenario = std::make_shared<CrashScenario>(
        static_cast<ProcId>(n), static_cast<int>(crashes),
        static_cast<Round>(maxcrash));
  } else if (kind == "rotating") {
    std::int64_t n = 0;
    std::int64_t hold = 0;
    if (!attrs.get_int("n", 4, n, error) ||
        !attrs.get_int("hold", 1, hold, error)) {
      return false;
    }
    if (n < 1 || hold < 1) {
      error = "rotating needs n >= 1 and hold >= 1";
      return false;
    }
    job.scenario = std::make_shared<RotatingScenario>(
        static_cast<ProcId>(n), static_cast<Round>(hold));
  } else {
    error = "unknown scenario kind '" + kind + "'";
    return false;
  }
  return attrs.check_consumed(error);
}

}  // namespace

SpecParseResult parse_campaign_spec(const std::string& text) {
  SpecParseResult result;
  CampaignSpec spec;

  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::size_t hash = raw.find('#');
    const std::string line =
        trim(hash == std::string::npos ? raw : raw.substr(0, hash));
    if (line.empty()) continue;

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      result.error = "expected 'key = value'";
      result.line = line_no;
      return result;
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    std::string error;

    if (key == "job") {
      CampaignJob job;
      if (!parse_job(value, job, error)) {
        result.error = error;
        result.line = line_no;
        return result;
      }
      spec.jobs.push_back(std::move(job));
    } else if (key == "k") {
      std::int64_t k = 0;
      if (!parse_int_value(value, k) || k < 1) {
        result.error = "k must be an integer >= 1";
        result.line = line_no;
        return result;
      }
      spec.config.k = static_cast<int>(k);
    } else if (key == "guard") {
      if (value == "after-round-n") {
        spec.config.guard = DecisionGuard::kAfterRoundN;
      } else if (value == "at-round-n") {
        spec.config.guard = DecisionGuard::kAtRoundN;
      } else {
        result.error = "guard must be after-round-n or at-round-n";
        result.line = line_no;
        return result;
      }
    } else if (key == "max_rounds") {
      std::int64_t rounds = 0;
      if (!parse_int_value(value, rounds) || rounds < 0) {
        result.error = "max_rounds must be an integer >= 0 (0 = automatic)";
        result.line = line_no;
        return result;
      }
      spec.config.max_rounds = static_cast<Round>(rounds);
    } else if (key == "tail_rounds") {
      std::int64_t rounds = 0;
      if (!parse_int_value(value, rounds) || rounds < 0) {
        result.error = "tail_rounds must be an integer >= 0";
        result.line = line_no;
        return result;
      }
      spec.config.tail_rounds = static_cast<Round>(rounds);
    } else if (key == "measure_bytes") {
      if (!parse_bool_value(value, spec.config.measure_bytes)) {
        result.error = "measure_bytes must be 0/1/true/false";
        result.line = line_no;
        return result;
      }
    } else if (key == "lemma_monitor") {
      if (!parse_bool_value(value, spec.config.attach_lemma_monitor)) {
        result.error = "lemma_monitor must be 0/1/true/false";
        result.line = line_no;
        return result;
      }
    } else {
      result.error = "unknown config key '" + key + "'";
      result.line = line_no;
      return result;
    }
  }

  if (spec.jobs.empty()) {
    result.error = "spec has no jobs";
    result.line = 0;
    return result;
  }
  result.spec = std::move(spec);
  return result;
}

}  // namespace sskel
