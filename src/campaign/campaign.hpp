// Checkpointed Monte-Carlo campaigns over a hot tile plane
// (DESIGN.md §15, experiment E17).
//
// A *campaign* is a sweep: a list of jobs, each (scenario, master
// seed, trial count), folded under one run config. Where the batch
// API (McTilePlane::run) pays its ramp — window allocation, ring
// warm-up, intern re-analysis — once per call, the campaign engine
// keeps one McTilePlane hot per distinct scenario and streams every
// job's trials through the plane's submit rings from a persistent
// cursor, so sustained trials/sec over a long sweep matches
// back-to-back batches (bench_campaign gates ≥ 0.95x with
// checkpointing on).
//
// Crash safety costs (almost) nothing on the hot path: the folded
// state at any instant is a *prefix* of the deterministic trial
// sequence (trial t = seed mix_seed(master, t), left-folded in trial
// order — fold_scenario_trial), so a checkpoint is just {cursor,
// partial summary} per job. At a boundary the dispatcher copies that
// state (microseconds) and hands it to the CheckpointWriter thread;
// encoding and file I/O never touch the dispatcher. Resuming decodes
// the newest checkpoint and folds trial trials_folded onward —
// bit-identical to the uninterrupted run, across any tile count, by
// the left-fold identity. In-flight trials past the fold point at the
// crash are simply re-run.
//
// Misbehaving trials self-archive: a folded trial that violates
// agreement/validity/the Lemma-11 bound (or whose tile-side runtime
// is a > sigma outlier) triggers a re-run of the same seed with a
// TraceRecorder attached (purity makes the re-run the same run), and
// the SSKT capture lands in the artifact directory for offline
// replay. Runtime outliers never influence folded state — wall time
// is the one nondeterministic observation.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "campaign/checkpoint.hpp"
#include "campaign/writer.hpp"
#include "mc/mc_plane.hpp"
#include "mc/scenario.hpp"

namespace sskel {

/// One sweep entry: `trials` seeded trials of `scenario`, trial t
/// using mix_seed(master_seed, t).
struct CampaignJob {
  std::string name;
  std::shared_ptr<const ScenarioFactory> scenario;
  std::uint64_t master_seed = 0;
  std::int64_t trials = 0;
};

struct CampaignSpec {
  std::vector<CampaignJob> jobs;
  /// One run config for every trial of every job.
  KSetRunConfig config;

  /// Identity hash over everything that shapes the trial sequence:
  /// job names/seeds/trial counts, scenario identities (name plus
  /// every constructor parameter, via
  /// ScenarioFactory::append_fingerprint), and the config fields that
  /// alter per-trial results. A checkpoint carries this; resume
  /// refuses a mismatch.
  [[nodiscard]] std::uint64_t fingerprint() const;
};

/// Streaming observability record, emitted every progress_every
/// folded trials (and once at the end of a run). Field names match
/// BENCH_campaign.json so a progress stream and the bench artifact
/// diff with the same tooling.
struct CampaignProgress {
  std::string job;
  std::int64_t job_index = 0;
  std::int64_t trials_done = 0;   // folded within the current job
  std::int64_t trials_total = 0;  // the current job's target
  std::int64_t campaign_trials_done = 0;  // folded this run, all jobs
  double elapsed_seconds = 0.0;
  double sustained_trials_per_sec = 0.0;
  std::int64_t checkpoints_written = 0;
  double checkpoint_stall_pct = 0.0;
};

struct CampaignOptions {
  McPlaneOptions plane;
  /// In-flight trial window per plane (also the adaptive burst cap).
  std::size_t window = 256;
  /// Checkpoint every N folded trials (per job); <= 0 disables the
  /// cadence (a final checkpoint is still written on stop).
  std::int64_t checkpoint_every = 10000;
  /// Checkpoint directory; empty = no checkpointing at all.
  std::string state_dir;
  /// Deterministic kill switch for tests and CI: stop folding after
  /// exactly N trials (campaign-wide, this run), discard in-flight
  /// work, persist a final checkpoint, and return completed = false.
  /// < 0 = run to completion. This models a crash at a precise point
  /// — resume from the written checkpoint must land bit-identically
  /// on the uninterrupted run.
  std::int64_t stop_after_trials = -1;
  /// Emit a CampaignProgress every N folded trials (0 = off).
  std::int64_t progress_every = 0;
  std::function<void(const CampaignProgress&)> on_progress;
  /// When set, each progress record is also appended to this file as
  /// one JSON object per line.
  std::string progress_path;
  /// Crash-artifact directory for misbehaving-trial captures; empty
  /// disables capture.
  std::string artifact_dir;
  /// Runtime-outlier threshold: a trial is an outlier when its
  /// tile-side wall time exceeds mean + outlier_sigma * stddev of the
  /// job's prior trials, once outlier_min_samples have accumulated.
  double outlier_sigma = 8.0;
  std::int64_t outlier_min_samples = 64;
  /// Cap on captured artifacts per run (a pathological sweep must not
  /// fill the disk with traces).
  std::int64_t max_artifacts = 16;
};

/// Runtime counters for one engine run (service-level — never part of
/// the folded state or the checkpoint).
struct CampaignStats {
  std::int64_t trials_folded = 0;  // this run (excludes resumed prefix)
  double wall_seconds = 0.0;
  double sustained_trials_per_sec = 0.0;
  std::int64_t checkpoints_written = 0;
  std::int64_t checkpoints_coalesced = 0;
  std::int64_t checkpoint_bytes = 0;
  /// Dispatcher-side time lost to checkpointing (snapshot copy +
  /// handoff; the write itself is off-thread).
  double checkpoint_stall_seconds = 0.0;
  double checkpoint_stall_pct = 0.0;
  std::int64_t submit_stalls = 0;
  std::int64_t result_stalls = 0;
  std::int64_t artifacts_captured = 0;
  std::int64_t outliers_detected = 0;
  std::int64_t violations_detected = 0;
  /// Adaptive burst resizing events (occupancy signal: a refused
  /// offer halves the burst, a fully accepted one grows it).
  std::int64_t burst_shrinks = 0;
  std::int64_t burst_grows = 0;
};

struct CampaignResult {
  /// Per-job summaries: complete for finished jobs, the folded
  /// partial for the job interrupted by stop_after_trials, zero-run
  /// for jobs never reached.
  std::vector<McSummary> summaries;
  std::vector<std::int64_t> trials_folded;
  /// True iff every job folded every trial.
  bool completed = false;
  CampaignStats stats;
};

class CampaignEngine {
 public:
  CampaignEngine(CampaignSpec spec, CampaignOptions options);
  ~CampaignEngine();

  CampaignEngine(const CampaignEngine&) = delete;
  CampaignEngine& operator=(const CampaignEngine&) = delete;

  /// Runs the campaign from trial zero (any existing checkpoint in
  /// state_dir is ignored and will be overwritten).
  [[nodiscard]] CampaignResult run();

  /// Continues from the newest decodable checkpoint in state_dir
  /// (fresh run when none exists). The checkpoint's fingerprint must
  /// match this spec.
  [[nodiscard]] CampaignResult resume();

  [[nodiscard]] const CampaignSpec& spec() const { return spec_; }

 private:
  [[nodiscard]] McTilePlane& plane_for(const ScenarioFactory& scenario);
  [[nodiscard]] CampaignResult execute(CampaignCheckpoint state);

  CampaignSpec spec_;
  CampaignOptions options_;
  /// One hot plane per distinct scenario object, created on first use
  /// and kept for the engine's lifetime (jobs sharing a scenario
  /// share its plane — and its warmed intern shards).
  std::vector<std::pair<const ScenarioFactory*, std::unique_ptr<McTilePlane>>>
      planes_;
};

}  // namespace sskel
