// Double-buffered, off-hot-path checkpoint persistence.
//
// The campaign dispatcher must never wait on the filesystem: at a
// checkpoint boundary it snapshots the folded state (a McSummary copy
// per job — microseconds) and hands the snapshot to this writer; the
// encode and file I/O happen on the writer's own thread. A snapshot
// offered while the previous one is still being written *replaces*
// the pending one (coalescing): checkpoints are idempotent prefixes,
// so only the freshest matters.
//
// Durability is torn-write-proof twice over:
//   * each write goes to a temp file, fsync-free but atomically
//     renamed into place — a crash mid-write leaves the target
//     untouched;
//   * writes alternate between two targets (ckpt.a.sskc /
//     ckpt.b.sskc), so even a corrupted rename leaves the previous
//     generation intact. load_latest decodes both and returns the one
//     with the most folded trials, ignoring anything undecodable.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "campaign/checkpoint.hpp"

namespace sskel {

class CheckpointWriter {
 public:
  /// Creates `state_dir` if missing and starts the writer thread.
  explicit CheckpointWriter(std::filesystem::path state_dir);
  /// Flushes the pending snapshot (if any) and joins.
  ~CheckpointWriter();

  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  /// Hands a snapshot to the writer thread. Never blocks on I/O: the
  /// only cost to the caller is moving the snapshot under a mutex. A
  /// pending unwritten snapshot is replaced (counted as coalesced).
  void offer(CampaignCheckpoint snapshot);

  /// Blocks until every offered snapshot has reached a file. The
  /// engine calls this once, at the end of a run (and tests use it to
  /// observe deterministic file states).
  void flush();

  [[nodiscard]] std::int64_t checkpoints_written() const;
  [[nodiscard]] std::int64_t checkpoints_coalesced() const;
  [[nodiscard]] std::int64_t bytes_written() const;

  /// Reads both checkpoint generations from `state_dir` and returns
  /// the decodable one with the most folded trials (nullopt when
  /// neither exists or decodes). Corrupt or torn files are skipped,
  /// never fatal — that is the double buffer's contract. When
  /// `expected_fingerprint` is given and exactly one generation
  /// matches it, that one wins regardless of folded counts, so a
  /// stale file from a previous spec sharing the state dir cannot
  /// shadow the matching checkpoint; with no match the plain
  /// newest-wins rule applies, letting callers observe (and refuse)
  /// a genuine spec mismatch.
  [[nodiscard]] static std::optional<CampaignCheckpoint> load_latest(
      const std::filesystem::path& state_dir,
      std::optional<std::uint64_t> expected_fingerprint = std::nullopt);

  static constexpr const char* kFileA = "ckpt.a.sskc";
  static constexpr const char* kFileB = "ckpt.b.sskc";

 private:
  void writer_main(const std::stop_token& stop);
  void write_one(const CampaignCheckpoint& snapshot);

  std::filesystem::path state_dir_;
  mutable std::mutex mutex_;
  std::condition_variable_any cv_;
  std::optional<CampaignCheckpoint> pending_;
  bool writing_ = false;
  int next_file_ = 0;  // alternates 0 (a) / 1 (b)
  std::int64_t written_ = 0;
  std::int64_t coalesced_ = 0;
  std::int64_t bytes_ = 0;
  std::jthread thread_;  // last: joins before state dies
};

}  // namespace sskel
