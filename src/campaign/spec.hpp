// Text campaign specs for the sskel_campaign CLI and CI.
//
// A spec is a line-oriented config: `#` comments, blank lines
// ignored, `key = value` config entries, and one `job = <scenario>
// key=value...` line per sweep entry. Example:
//
//   # converged partition sweep
//   k = 2
//   guard = after-round-n
//   job = partition name=conv n=4 m=2 noise=0 stabilize=1 seed=42 trials=50000
//   job = random-psrcs name=rp n=6 k=2 roots=2 seed=7 trials=2000
//   job = crash name=cr n=5 crashes=1 maxcrash=3 seed=9 trials=2000
//   job = rotating name=rot n=4 hold=1 seed=3 trials=500
//
// Config keys: k, guard (after-round-n | at-round-n), max_rounds,
// tail_rounds, measure_bytes (0/1), lemma_monitor (0/1).
//
// Parsing never aborts on bad input — specs are user files; errors
// come back with the offending line number so the CLI can point at
// them.
#pragma once

#include <optional>
#include <string>

#include "campaign/campaign.hpp"

namespace sskel {

struct SpecParseResult {
  /// Set iff parsing succeeded.
  std::optional<CampaignSpec> spec;
  /// Human-readable reason when it did not.
  std::string error;
  /// 1-based line the error was found on (0 = whole-file problem).
  int line = 0;
};

[[nodiscard]] SpecParseResult parse_campaign_spec(const std::string& text);

}  // namespace sskel
