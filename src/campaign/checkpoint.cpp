#include "campaign/checkpoint.hpp"

#include <bit>
#include <limits>

#include "util/varint.hpp"

namespace sskel {

namespace {

constexpr std::uint8_t kMagic[4] = {'S', 'S', 'K', 'C'};
constexpr std::uint64_t kVersion = 1;

enum class CkptFrame : std::uint8_t {
  kHeader = 1,
  kJob = 2,
  kEnd = 3,
};

constexpr std::uint64_t kMaxCount =
    static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max());
/// Jobs are hand-written spec entries, not bulk data.
constexpr std::uint64_t kMaxJobs = 1u << 16;
constexpr std::uint64_t kMaxScenarioName = 256;

// --- encode side (trusted input) -----------------------------------

void put_frame(std::vector<std::uint8_t>& out, CkptFrame type,
               const std::vector<std::uint8_t>& payload) {
  out.push_back(static_cast<std::uint8_t>(type));
  put_varint(out, payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
}

void put_count(std::vector<std::uint8_t>& out, std::int64_t value) {
  SSKEL_REQUIRE(value >= 0);
  put_varint(out, static_cast<std::uint64_t>(value));
}

/// Doubles travel as their exact 8-byte little-endian bit pattern:
/// canonical by construction, and every pattern (±inf in an empty
/// accumulator's extrema, NaN if one ever arose) round-trips bit-for-
/// bit — which is the whole point of a bit-exact resume.
void put_double(std::vector<std::uint8_t>& out, double value) {
  const auto bits = std::bit_cast<std::uint64_t>(value);
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
  }
}

void put_bool(std::vector<std::uint8_t>& out, bool value) {
  out.push_back(value ? 1 : 0);
}

/// Zigzag for histogram bucket values (int64, sign possible in
/// principle even though today's histograms count nonnegatives).
[[nodiscard]] std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] std::int64_t unzigzag(std::uint64_t z) {
  return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

void put_accumulator(std::vector<std::uint8_t>& out, const Accumulator& acc) {
  const Accumulator::State s = acc.state();
  put_count(out, s.count);
  put_double(out, s.mean);
  put_double(out, s.m2);
  put_double(out, s.sum);
  put_double(out, s.min);
  put_double(out, s.max);
}

void put_histogram(std::vector<std::uint8_t>& out, const IntHistogram& hist) {
  const auto& buckets = hist.buckets();
  put_varint(out, buckets.size());
  for (const auto& [value, count] : buckets) {
    put_varint(out, zigzag(value));
    put_count(out, count);
  }
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  SSKEL_REQUIRE(s.size() <= kMaxScenarioName);
  put_varint(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

// --- decode side (untrusted input) ---------------------------------

[[nodiscard]] bool read_count(ByteReader& r, std::int64_t& out,
                              const char* field) {
  std::uint64_t v = 0;
  if (!r.read_varint_max(v, kMaxCount, field)) return false;
  out = static_cast<std::int64_t>(v);
  return true;
}

[[nodiscard]] bool read_double(ByteReader& r, double& out, const char* field) {
  if (!r.require_bytes(8, field)) return false;
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<std::uint64_t>(r.cursor()[i]) << (8 * i);
  }
  r.skip(8);
  out = std::bit_cast<double>(bits);
  return true;
}

[[nodiscard]] bool read_bool(ByteReader& r, bool& out, const char* field) {
  std::uint8_t byte = 0;
  if (!r.read_u8(byte, field)) return false;
  // Accepting 2..255 would break canonicality (many encodings, one
  // value).
  if (byte > 1) return r.fail(DecodeStatus::kValueOutOfRange, field);
  out = byte != 0;
  return true;
}

[[nodiscard]] bool read_accumulator(ByteReader& r, Accumulator& out,
                                    const char* field) {
  Accumulator::State s;
  if (!read_count(r, s.count, field)) return false;
  if (!read_double(r, s.mean, field) || !read_double(r, s.m2, field) ||
      !read_double(r, s.sum, field) || !read_double(r, s.min, field) ||
      !read_double(r, s.max, field)) {
    return false;
  }
  out = Accumulator::from_state(s);
  return true;
}

[[nodiscard]] bool read_histogram(ByteReader& r, IntHistogram& out,
                                  const char* field) {
  // Each bucket needs at least 2 bytes, so remaining() over-bounds the
  // count without letting a hostile header demand a giant reserve.
  std::uint64_t buckets = 0;
  if (!r.read_varint_max(buckets, r.remaining(), field)) return false;
  std::vector<std::pair<std::int64_t, std::int64_t>> pairs;
  pairs.reserve(static_cast<std::size_t>(buckets));
  std::int64_t prev = 0;
  std::uint64_t total = 0;
  for (std::uint64_t i = 0; i < buckets; ++i) {
    std::uint64_t z = 0;
    if (!r.read_varint(z, field)) return false;
    const std::int64_t value = unzigzag(z);
    // Strictly ascending values: the canonical (and only) bucket order
    // add() maintains.
    if (i > 0 && value <= prev) {
      return r.fail(DecodeStatus::kValueOutOfRange, field);
    }
    prev = value;
    std::int64_t count = 0;
    if (!read_count(r, count, field)) return false;
    if (count <= 0) return r.fail(DecodeStatus::kValueOutOfRange, field);
    total += static_cast<std::uint64_t>(count);
    // from_buckets recomputes the total with int64 arithmetic; reject
    // inputs that would overflow it.
    if (total > kMaxCount) {
      return r.fail(DecodeStatus::kValueOutOfRange, field);
    }
    pairs.emplace_back(value, count);
  }
  out = IntHistogram::from_buckets(std::move(pairs));
  return true;
}

[[nodiscard]] bool read_string(ByteReader& r, std::string& out,
                               const char* field) {
  std::uint64_t size = 0;
  if (!r.read_varint_max(size, kMaxScenarioName, field)) return false;
  if (!r.require_bytes(static_cast<std::size_t>(size), field)) return false;
  out.assign(reinterpret_cast<const char*>(r.cursor()),
             static_cast<std::size_t>(size));
  r.skip(static_cast<std::size_t>(size));
  return true;
}

[[nodiscard]] bool read_summary_trial_fields(ByteReader& r, McSummary& s) {
  if (!read_string(r, s.scenario, "scenario")) return false;
  if (!read_count(r, s.runs, "runs") ||
      !read_count(r, s.undecided_runs, "undecided runs") ||
      !read_count(r, s.agreement_violations, "agreement violations") ||
      !read_count(r, s.validity_violations, "validity violations") ||
      !read_count(r, s.bound_violations, "bound violations") ||
      !read_count(r, s.lemma_violation_runs, "lemma violation runs")) {
    return false;
  }
  if (!read_accumulator(r, s.distinct_values, "distinct values") ||
      !read_accumulator(r, s.root_components, "root components") ||
      !read_accumulator(r, s.last_decision_round, "last decision round") ||
      !read_accumulator(r, s.stabilization_round, "stabilization round") ||
      !read_accumulator(r, s.total_messages, "total messages")) {
    return false;
  }
  if (!read_bool(r, s.bytes_measured, "bytes measured")) return false;
  if (!read_accumulator(r, s.total_bytes, "total bytes") ||
      !read_accumulator(r, s.max_message_bytes, "max message bytes")) {
    return false;
  }
  if (!read_histogram(r, s.distinct_histogram, "distinct histogram") ||
      !read_histogram(r, s.root_histogram, "root histogram")) {
    return false;
  }
  if (!read_bool(r, s.net_backed, "net backed")) return false;
  if (!read_accumulator(r, s.late_messages, "late messages") ||
      !read_accumulator(r, s.lost_messages, "lost messages") ||
      !read_accumulator(r, s.wall_clock_ms, "wall clock ms")) {
    return false;
  }
  if (!read_count(r, s.credit_stalls, "credit stalls")) return false;
  return true;
}

}  // namespace

std::vector<std::uint8_t> encode_summary_trial_fields(
    const McSummary& summary) {
  std::vector<std::uint8_t> out;
  put_string(out, summary.scenario);
  put_count(out, summary.runs);
  put_count(out, summary.undecided_runs);
  put_count(out, summary.agreement_violations);
  put_count(out, summary.validity_violations);
  put_count(out, summary.bound_violations);
  put_count(out, summary.lemma_violation_runs);
  put_accumulator(out, summary.distinct_values);
  put_accumulator(out, summary.root_components);
  put_accumulator(out, summary.last_decision_round);
  put_accumulator(out, summary.stabilization_round);
  put_accumulator(out, summary.total_messages);
  put_bool(out, summary.bytes_measured);
  put_accumulator(out, summary.total_bytes);
  put_accumulator(out, summary.max_message_bytes);
  put_histogram(out, summary.distinct_histogram);
  put_histogram(out, summary.root_histogram);
  put_bool(out, summary.net_backed);
  put_accumulator(out, summary.late_messages);
  put_accumulator(out, summary.lost_messages);
  put_accumulator(out, summary.wall_clock_ms);
  put_count(out, summary.credit_stalls);
  return out;
}

std::vector<std::uint8_t> encode_checkpoint(
    const CampaignCheckpoint& checkpoint) {
  SSKEL_REQUIRE(checkpoint.jobs.size() <= kMaxJobs);
  std::vector<std::uint8_t> out(kMagic, kMagic + 4);
  put_varint(out, kVersion);

  std::vector<std::uint8_t> payload;
  put_varint(payload, checkpoint.spec_fingerprint);
  put_varint(payload, checkpoint.jobs.size());
  put_frame(out, CkptFrame::kHeader, payload);

  for (const JobCheckpoint& job : checkpoint.jobs) {
    SSKEL_REQUIRE(job.trials_folded >= 0);
    SSKEL_REQUIRE(job.summary.runs == job.trials_folded);
    payload.clear();
    put_count(payload, job.trials_folded);
    const std::vector<std::uint8_t> body =
        encode_summary_trial_fields(job.summary);
    payload.insert(payload.end(), body.begin(), body.end());
    put_frame(out, CkptFrame::kJob, payload);
  }

  payload.clear();
  put_frame(out, CkptFrame::kEnd, payload);
  return out;
}

DecodeResult<CampaignCheckpoint> decode_checkpoint(
    const std::vector<std::uint8_t>& bytes) {
  ByteReader reader(bytes.data(), bytes.size());
  if (!reader.require_bytes(4, "magic")) return reader.error();
  for (std::size_t i = 0; i < 4; ++i) {
    if (reader.cursor()[i] != kMagic[i]) {
      return DecodeError{DecodeStatus::kBadMagic, reader.pos() + i, "magic"};
    }
  }
  reader.skip(4);
  std::uint64_t version = 0;
  if (!reader.read_varint(version, "version")) return reader.error();
  if (version != kVersion) {
    return DecodeError{DecodeStatus::kBadVersion, reader.pos(), "version"};
  }

  CampaignCheckpoint c;
  bool have_header = false;
  bool have_end = false;
  std::uint64_t job_count = 0;
  while (!reader.at_end()) {
    if (have_end) {
      return DecodeError{DecodeStatus::kTrailingBytes, reader.pos(), "frame"};
    }
    const std::size_t frame_start = reader.pos();
    std::uint8_t type_byte = 0;
    if (!reader.read_u8(type_byte, "frame type")) return reader.error();
    std::uint64_t length = 0;
    if (!reader.read_varint(length, "frame length")) return reader.error();
    if (length > reader.remaining()) {
      return DecodeError{DecodeStatus::kLimitExceeded, frame_start,
                         "frame length"};
    }
    // Parse through a sub-reader confined to the declared length; a
    // frame whose fields consume more or fewer bytes is malformed.
    ByteReader frame(reader.cursor(), static_cast<std::size_t>(length));
    reader.skip(static_cast<std::size_t>(length));
    const auto frame_error = [&](const DecodeError& err) {
      // Re-anchor sub-reader offsets to the whole input.
      return DecodeError{err.status, frame_start + 1 + err.offset, err.field};
    };
    const auto type = static_cast<CkptFrame>(type_byte);
    if (type != CkptFrame::kHeader && !have_header) {
      return DecodeError{DecodeStatus::kBadFrame, frame_start, "frame order"};
    }
    switch (type) {
      case CkptFrame::kHeader: {
        if (have_header) {
          return DecodeError{DecodeStatus::kBadFrame, frame_start,
                             "duplicate header"};
        }
        if (!frame.read_varint(c.spec_fingerprint, "spec fingerprint")) {
          return frame_error(frame.error());
        }
        if (!frame.read_varint_max(job_count, kMaxJobs, "job count")) {
          return frame_error(frame.error());
        }
        c.jobs.reserve(static_cast<std::size_t>(job_count));
        have_header = true;
        break;
      }
      case CkptFrame::kJob: {
        if (c.jobs.size() >= job_count) {
          return DecodeError{DecodeStatus::kBadFrame, frame_start,
                             "excess job frame"};
        }
        JobCheckpoint job;
        if (!read_count(frame, job.trials_folded, "trials folded") ||
            !read_summary_trial_fields(frame, job.summary)) {
          return frame_error(frame.error());
        }
        // A folded prefix has runs == trials_folded by construction;
        // anything else is not a checkpoint this engine wrote.
        if (job.summary.runs != job.trials_folded) {
          return DecodeError{DecodeStatus::kValueOutOfRange, frame_start,
                             "trials folded"};
        }
        c.jobs.push_back(std::move(job));
        break;
      }
      case CkptFrame::kEnd: {
        if (length != 0) {
          return DecodeError{DecodeStatus::kBadFrame, frame_start,
                             "end payload"};
        }
        if (c.jobs.size() != job_count) {
          return DecodeError{DecodeStatus::kBadFrame, frame_start,
                             "missing job frame"};
        }
        have_end = true;
        break;
      }
      default:
        return DecodeError{DecodeStatus::kBadFrame, frame_start, "frame type"};
    }
    if (!frame.at_end()) {
      return DecodeError{DecodeStatus::kBadFrame, frame_start,
                         "frame payload length"};
    }
  }
  if (!have_end) {
    return DecodeError{DecodeStatus::kTruncated, reader.pos(), "end frame"};
  }
  return c;
}

std::uint64_t fnv1a64(const std::vector<std::uint8_t>& bytes) {
  std::uint64_t hash = 14695981039346656037ull;
  for (const std::uint8_t byte : bytes) {
    hash ^= byte;
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace sskel
