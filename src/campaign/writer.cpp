#include "campaign/writer.hpp"

#include <fstream>
#include <utility>

#include "util/assert.hpp"

namespace sskel {

namespace {

[[nodiscard]] std::optional<CampaignCheckpoint> load_file(
    const std::filesystem::path& path) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) return std::nullopt;
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  DecodeResult<CampaignCheckpoint> decoded = decode_checkpoint(bytes);
  if (!decoded.ok()) return std::nullopt;
  return std::move(decoded.value());
}

[[nodiscard]] std::int64_t folded_total(const CampaignCheckpoint& c) {
  std::int64_t total = 0;
  for (const JobCheckpoint& job : c.jobs) total += job.trials_folded;
  return total;
}

}  // namespace

CheckpointWriter::CheckpointWriter(std::filesystem::path state_dir)
    : state_dir_(std::move(state_dir)) {
  std::filesystem::create_directories(state_dir_);
  thread_ = std::jthread(
      [this](const std::stop_token& stop) { writer_main(stop); });
}

CheckpointWriter::~CheckpointWriter() {
  thread_.request_stop();
  cv_.notify_all();
  thread_.join();
  // The writer loop drains the pending snapshot before honoring the
  // stop, so nothing offered is ever lost on destruction.
}

void CheckpointWriter::offer(CampaignCheckpoint snapshot) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (pending_.has_value()) ++coalesced_;
    pending_ = std::move(snapshot);
  }
  cv_.notify_all();
}

void CheckpointWriter::flush() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return !pending_.has_value() && !writing_; });
}

std::int64_t CheckpointWriter::checkpoints_written() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return written_;
}

std::int64_t CheckpointWriter::checkpoints_coalesced() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return coalesced_;
}

std::int64_t CheckpointWriter::bytes_written() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

void CheckpointWriter::writer_main(const std::stop_token& stop) {
  while (true) {
    std::optional<CampaignCheckpoint> snapshot;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, stop,
               [this] { return pending_.has_value(); });
      if (!pending_.has_value()) {
        // Stop requested with nothing pending: done.
        if (stop.stop_requested()) return;
        continue;  // spurious wake
      }
      snapshot = std::move(pending_);
      pending_.reset();
      writing_ = true;
    }
    write_one(*snapshot);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      writing_ = false;
    }
    cv_.notify_all();  // flush() waiters
  }
}

void CheckpointWriter::write_one(const CampaignCheckpoint& snapshot) {
  const std::vector<std::uint8_t> bytes = encode_checkpoint(snapshot);
  const std::filesystem::path target =
      state_dir_ / (next_file_ == 0 ? kFileA : kFileB);
  const std::filesystem::path tmp = state_dir_ / "ckpt.tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    SSKEL_REQUIRE(out.good());
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    SSKEL_REQUIRE(out.good());
  }
  std::error_code ec;
  std::filesystem::rename(tmp, target, ec);
  SSKEL_REQUIRE(!ec);
  next_file_ ^= 1;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++written_;
    bytes_ += static_cast<std::int64_t>(bytes.size());
  }
}

std::optional<CampaignCheckpoint> CheckpointWriter::load_latest(
    const std::filesystem::path& state_dir,
    std::optional<std::uint64_t> expected_fingerprint) {
  std::optional<CampaignCheckpoint> a = load_file(state_dir / kFileA);
  std::optional<CampaignCheckpoint> b = load_file(state_dir / kFileB);
  if (expected_fingerprint.has_value()) {
    const bool a_matches =
        a.has_value() && a->spec_fingerprint == *expected_fingerprint;
    const bool b_matches =
        b.has_value() && b->spec_fingerprint == *expected_fingerprint;
    if (a_matches != b_matches) return a_matches ? a : b;
  }
  if (!a.has_value()) return b;
  if (!b.has_value()) return a;
  return folded_total(*a) >= folded_total(*b) ? a : b;
}

}  // namespace sskel
