#include "campaign/campaign.hpp"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "rounds/trace.hpp"
#include "util/bench_json.hpp"
#include "util/rng.hpp"
#include "util/varint.hpp"

namespace sskel {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

void put_spec_string(std::vector<std::uint8_t>& out, const std::string& s) {
  put_varint(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

/// A trial misbehaved when any checked property failed — the same
/// predicates fold_scenario_trial counts, read off the single trial.
[[nodiscard]] const char* violation_reason(const ScenarioTrial& trial,
                                           const KSetRunConfig& config) {
  const KSetRunReport& report = trial.kset;
  if (!report.verdict.k_agreement) return "agreement";
  if (!report.verdict.validity) return "validity";
  if (!report.lemma_violations.empty()) return "lemma";
  if (report.all_decided &&
      report.last_decision_round > report.termination_bound(config.guard)) {
    return "bound";
  }
  return nullptr;
}

}  // namespace

std::uint64_t CampaignSpec::fingerprint() const {
  std::vector<std::uint8_t> bytes;
  put_varint(bytes, jobs.size());
  for (const CampaignJob& job : jobs) {
    put_spec_string(bytes, job.name);
    put_spec_string(bytes, job.scenario->name());
    // name() only separates scenario classes; append_fingerprint
    // covers every constructor parameter (crash counts, noise, ...)
    // so a resume under a same-class-different-distribution spec is
    // refused instead of silently folded onto the old prefix.
    job.scenario->append_fingerprint(bytes);
    put_varint(bytes, job.master_seed);
    put_varint(bytes, static_cast<std::uint64_t>(job.trials));
  }
  put_varint(bytes, static_cast<std::uint64_t>(config.k));
  put_varint(bytes, static_cast<std::uint64_t>(config.guard));
  put_varint(bytes, static_cast<std::uint64_t>(config.max_rounds));
  put_varint(bytes, static_cast<std::uint64_t>(config.tail_rounds));
  put_varint(bytes, config.attach_lemma_monitor ? 1 : 0);
  put_varint(bytes, config.measure_bytes ? 1 : 0);
  put_varint(bytes, config.proposals.size());
  for (const Value v : config.proposals) {
    put_varint(bytes, static_cast<std::uint64_t>(v));
  }
  return fnv1a64(bytes);
}

CampaignEngine::CampaignEngine(CampaignSpec spec, CampaignOptions options)
    : spec_(std::move(spec)), options_(std::move(options)) {
  SSKEL_REQUIRE(!spec_.jobs.empty());
  SSKEL_REQUIRE(options_.window > 0);
  for (const CampaignJob& job : spec_.jobs) {
    SSKEL_REQUIRE(job.scenario != nullptr);
    SSKEL_REQUIRE(job.trials >= 0);
  }
}

CampaignEngine::~CampaignEngine() = default;

McTilePlane& CampaignEngine::plane_for(const ScenarioFactory& scenario) {
  for (auto& [key, plane] : planes_) {
    if (key == &scenario) return *plane;
  }
  planes_.emplace_back(
      &scenario, std::make_unique<McTilePlane>(scenario, options_.plane));
  return *planes_.back().second;
}

CampaignResult CampaignEngine::run() {
  if (!options_.state_dir.empty()) {
    // run() ignores any existing checkpoint — delete both generations
    // up front so a stale file from a previous spec can never shadow
    // (or outlive) the ones this run writes.
    std::error_code ec;
    const std::filesystem::path dir(options_.state_dir);
    std::filesystem::remove(dir / CheckpointWriter::kFileA, ec);
    std::filesystem::remove(dir / CheckpointWriter::kFileB, ec);
  }
  CampaignCheckpoint fresh;
  fresh.spec_fingerprint = spec_.fingerprint();
  return execute(std::move(fresh));
}

CampaignResult CampaignEngine::resume() {
  std::optional<CampaignCheckpoint> loaded;
  if (!options_.state_dir.empty()) {
    loaded =
        CheckpointWriter::load_latest(options_.state_dir, spec_.fingerprint());
  }
  if (!loaded.has_value()) return run();
  SSKEL_REQUIRE(loaded->spec_fingerprint == spec_.fingerprint());
  SSKEL_REQUIRE(loaded->jobs.size() <= spec_.jobs.size());
  for (std::size_t j = 0; j < loaded->jobs.size(); ++j) {
    SSKEL_REQUIRE(loaded->jobs[j].trials_folded <= spec_.jobs[j].trials);
  }
  return execute(std::move(*loaded));
}

CampaignResult CampaignEngine::execute(CampaignCheckpoint state) {
  const std::size_t job_count = spec_.jobs.size();
  state.jobs.resize(job_count);

  CampaignResult result;
  result.summaries.resize(job_count);
  result.trials_folded.assign(job_count, 0);
  CampaignStats& stats = result.stats;

  std::unique_ptr<CheckpointWriter> writer;
  if (!options_.state_dir.empty()) {
    writer = std::make_unique<CheckpointWriter>(options_.state_dir);
  }

  ProcSet::reset_peak_bytes();
  const Clock::time_point start_time = Clock::now();
  double stall_seconds = 0.0;
  std::int64_t folded_this_run = 0;
  // stop_after == 0 means "killed before folding anything".
  bool stopped = options_.stop_after_trials == 0;

  // Snapshot = copy the folded state and hand it off; the encode and
  // the file write happen on the writer thread. This copy is the
  // entire dispatcher-side checkpoint cost (checkpoint_stall_*).
  const auto snapshot = [&] {
    if (writer == nullptr) return;
    const Clock::time_point t0 = Clock::now();
    writer->offer(state);
    stall_seconds += seconds_since(t0);
  };

  std::ofstream progress_out;
  if (!options_.progress_path.empty()) {
    progress_out.open(options_.progress_path, std::ios::app);
  }
  const auto emit_progress = [&](std::size_t j, const JobCheckpoint& job) {
    CampaignProgress p;
    p.job = spec_.jobs[j].name;
    p.job_index = static_cast<std::int64_t>(j);
    p.trials_done = job.trials_folded;
    p.trials_total = spec_.jobs[j].trials;
    p.campaign_trials_done = folded_this_run;
    p.elapsed_seconds = seconds_since(start_time);
    p.sustained_trials_per_sec =
        p.elapsed_seconds > 0.0
            ? static_cast<double>(folded_this_run) / p.elapsed_seconds
            : 0.0;
    p.checkpoints_written =
        writer != nullptr ? writer->checkpoints_written() : 0;
    p.checkpoint_stall_pct =
        p.elapsed_seconds > 0.0 ? 100.0 * stall_seconds / p.elapsed_seconds
                                : 0.0;
    if (options_.on_progress) options_.on_progress(p);
    if (progress_out.is_open()) {
      BenchRecord record;
      record.set("op", std::string("progress"))
          .set("job", p.job)
          .set("trials_done", p.trials_done)
          .set("trials_total", p.trials_total)
          .set("campaign_trials_done", p.campaign_trials_done)
          .set("elapsed_seconds", p.elapsed_seconds)
          .set("sustained_trials_per_sec", p.sustained_trials_per_sec)
          .set("checkpoints_written", p.checkpoints_written)
          .set("checkpoint_stall_pct", p.checkpoint_stall_pct);
      record.write(progress_out);
      progress_out << "\n" << std::flush;
    }
  };

  const auto maybe_capture = [&](const CampaignJob& job, std::uint64_t index,
                                 const char* reason) {
    if (options_.artifact_dir.empty()) return;
    if (stats.artifacts_captured >= options_.max_artifacts) return;
    const std::optional<RunCapture> capture = job.scenario->capture_trial(
        mix_seed(job.master_seed, index), spec_.config);
    if (!capture.has_value()) return;
    std::filesystem::create_directories(options_.artifact_dir);
    const std::filesystem::path path =
        std::filesystem::path(options_.artifact_dir) /
        (job.name + "-trial-" + std::to_string(index) + "-" + reason +
         ".sskt");
    const std::vector<std::uint8_t> bytes = encode_trace(*capture);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out.good()) return;
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    ++stats.artifacts_captured;
  };

  // The job the terminal progress record describes: the furthest one
  // the loop reached (== the interrupted job when stop_after_trials
  // halts the run early).
  std::size_t last_job = 0;
  for (std::size_t j = 0; j < job_count && !stopped; ++j) {
    const CampaignJob& job = spec_.jobs[j];
    JobCheckpoint& job_state = state.jobs[j];
    last_job = j;
    SSKEL_REQUIRE(job_state.trials_folded <= job.trials);
    if (job_state.trials_folded == 0) {
      // Fresh job: initialize exactly like McTilePlane::run does
      // before its first fold, so the final summary is bit-identical
      // to one uninterrupted batch.
      job_state.summary = McSummary{};
      job_state.summary.scenario = job.scenario->name();
      job_state.summary.bytes_measured = spec_.config.measure_bytes;
    }
    if (job_state.trials_folded == job.trials) continue;

    McTilePlane& plane = plane_for(*job.scenario);
    plane.stream_begin(spec_.config, options_.window,
                       static_cast<std::uint64_t>(job_state.trials_folded));

    /// Tile-side wall times of this job's prior trials (runtime-only:
    /// resets every run, never serialized).
    Accumulator runtime;

    const McTilePlane::StreamSink sink =
        [&](std::uint64_t index, const ScenarioTrial& trial,
            std::int64_t elapsed_ns) {
          if (stopped) return;  // kill point passed: discard
          fold_scenario_trial(job_state.summary, trial, spec_.config);
          ++job_state.trials_folded;
          ++folded_this_run;

          if (const char* reason = violation_reason(trial, spec_.config)) {
            ++stats.violations_detected;
            maybe_capture(job, index, reason);
          } else if (runtime.count() >= options_.outlier_min_samples &&
                     static_cast<double>(elapsed_ns) >
                         runtime.mean() +
                             options_.outlier_sigma * runtime.stddev()) {
            ++stats.outliers_detected;
            maybe_capture(job, index, "outlier");
          }
          runtime.add(static_cast<double>(elapsed_ns));

          if (writer != nullptr && options_.checkpoint_every > 0 &&
              job_state.trials_folded % options_.checkpoint_every == 0) {
            snapshot();
          }
          if (options_.progress_every > 0 &&
              folded_this_run % options_.progress_every == 0) {
            emit_progress(j, job_state);
          }
          if (options_.stop_after_trials >= 0 &&
              folded_this_run >= options_.stop_after_trials) {
            stopped = true;
          }
        };

    // Adaptive burst: submit up to `burst` trials per iteration via
    // the non-blocking offer; a refusal (window full or no intake
    // credit) halves the burst, a fully accepted burst doubles it up
    // to the window. Ring occupancy is the signal — no timers.
    auto next = static_cast<std::uint64_t>(job_state.trials_folded);
    const auto total = static_cast<std::uint64_t>(job.trials);
    std::int64_t burst =
        std::min<std::int64_t>(32, static_cast<std::int64_t>(options_.window));
    while (!stopped && job_state.trials_folded < job.trials) {
      std::int64_t submitted = 0;
      bool refused = false;
      while (submitted < burst && next < total) {
        if (!plane.stream_offer(next, mix_seed(job.master_seed, next))) {
          refused = true;
          break;
        }
        ++next;
        ++submitted;
      }
      if (refused) {
        if (burst > 1) {
          burst /= 2;
          ++stats.burst_shrinks;
        }
      } else if (submitted == burst &&
                 burst < static_cast<std::int64_t>(options_.window)) {
        burst = std::min<std::int64_t>(
            burst * 2, static_cast<std::int64_t>(options_.window));
        ++stats.burst_grows;
      }
      // Nothing collected and nothing submitted (ring full, or every
      // trial is already in flight): only in-flight completions can
      // make progress, so don't busy-spin the dispatcher core.
      if (plane.stream_collect(sink) == 0 && submitted == 0) {
        std::this_thread::yield();
      }
    }

    if (stopped) {
      // The kill point: everything past the folded prefix is
      // discarded, exactly as a crash would lose it.
      plane.stream_abort();
    } else {
      plane.stream_flush(sink);
      // flush() folds the in-flight tail; a kill landing inside that
      // tail still aborts the rest.
      if (stopped) plane.stream_abort();
    }
    plane.stream_end();
    plane.export_service_fields(job_state.summary);
    // Job boundary (or kill): persist, so a resume skips finished
    // jobs entirely.
    snapshot();
  }

  if (writer != nullptr) writer->flush();

  stats.wall_seconds = seconds_since(start_time);
  stats.trials_folded = folded_this_run;
  stats.sustained_trials_per_sec =
      stats.wall_seconds > 0.0
          ? static_cast<double>(folded_this_run) / stats.wall_seconds
          : 0.0;
  stats.checkpoint_stall_seconds = stall_seconds;
  stats.checkpoint_stall_pct =
      stats.wall_seconds > 0.0 ? 100.0 * stall_seconds / stats.wall_seconds
                               : 0.0;
  if (writer != nullptr) {
    stats.checkpoints_written = writer->checkpoints_written();
    stats.checkpoints_coalesced = writer->checkpoints_coalesced();
    stats.checkpoint_bytes = writer->bytes_written();
  }
  for (const auto& [key, plane] : planes_) {
    stats.submit_stalls += plane->submit_stalls();
    stats.result_stalls += plane->result_stalls();
  }

  result.completed = true;
  for (std::size_t j = 0; j < job_count; ++j) {
    result.summaries[j] = state.jobs[j].summary;
    result.trials_folded[j] = state.jobs[j].trials_folded;
    if (state.jobs[j].trials_folded != spec_.jobs[j].trials) {
      result.completed = false;
    }
  }
  if (options_.progress_every > 0) {
    // Final record so a consumer always sees the terminal state.
    emit_progress(last_job, state.jobs[last_job]);
  }
  return result;
}

}  // namespace sskel
