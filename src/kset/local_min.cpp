#include "kset/local_min.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sskel {

LocalMinProcess::LocalMinProcess(ProcId n, ProcId id, Value proposal,
                                 Round decide_round)
    : Algorithm(n, id),
      proposal_(proposal),
      min_(proposal),
      decide_round_(decide_round) {
  SSKEL_REQUIRE(proposal != kNoValue);
  SSKEL_REQUIRE(decide_round >= 1);
}

Value LocalMinProcess::send(Round /*r*/) { return min_; }

void LocalMinProcess::transition(Round r, const Inbox<Value>& inbox) {
  for (ProcId q : inbox.senders()) {
    min_ = std::min(min_, inbox.from(q));
  }
  if (!decided_ && r >= decide_round_) {
    decided_ = true;
    decision_round_ = r;
  }
}

Value LocalMinProcess::decision() const {
  SSKEL_REQUIRE(decided_);
  return min_;
}

}  // namespace sskel
