#include "kset/ablation.hpp"

#include <algorithm>
#include <memory>

#include "kset/runner.hpp"
#include "kset/verify.hpp"
#include "rounds/simulator.hpp"

namespace sskel {

AblationKSetProcess::AblationKSetProcess(ProcId n, ProcId id, Value proposal,
                                         AblationFlags flags,
                                         DecisionGuard guard)
    : Algorithm(n, id),
      proposal_(proposal),
      x_(proposal),
      pt_(ProcSet::full(n)),
      g_(n, id),
      flags_(flags),
      guard_(guard) {
  SSKEL_REQUIRE(proposal != kNoValue);
}

SkeletonMessage AblationKSetProcess::send(Round /*r*/) {
  return SkeletonMessage{decided_, x_, g_};
}

void AblationKSetProcess::send_into(Round /*r*/, SkeletonMessage& out) {
  out.decide = decided_;
  out.x = x_;
  out.graph = g_;  // copy-assign: the outbox slot's rows are reused
}

void AblationKSetProcess::transition(Round r,
                                     const Inbox<SkeletonMessage>& inbox) {
  pt_ &= inbox.senders();

  if (flags_.forward_decides && !decided_) {
    Value adopted = kNoValue;
    for (ProcId q : pt_) {
      const SkeletonMessage& m = inbox.from(q);
      if (m.decide && (adopted == kNoValue || m.x < adopted)) adopted = m.x;
    }
    if (adopted != kNoValue) {
      x_ = adopted;
      decided_ = true;
      decision_round_ = r;
    }
  }

  if (flags_.reset_graph) g_.reset(id());
  for (ProcId q : pt_) {
    g_.set_edge(q, id(), r);
    g_.merge_max(inbox.from(q).graph);
  }
  if (flags_.purge_old) g_.purge_labels_up_to(r - n());
  if (flags_.prune_unreachable) g_.prune_not_reaching(id());

  if (!decided_) {
    Value best = kNoValue;
    for (ProcId q : pt_) {
      const Value xq = inbox.from(q).x;
      if (best == kNoValue || xq < best) best = xq;
    }
    SSKEL_ASSERT(best != kNoValue);
    x_ = best;
    if (guard_passed(r) && g_.strongly_connected()) {
      decided_ = true;
      decision_round_ = r;
    }
  }
}

Value AblationKSetProcess::decision() const {
  SSKEL_REQUIRE(decided_);
  return x_;
}

AblationRunResult run_ablation(GraphSource& source, AblationFlags flags,
                               int k, Round max_rounds) {
  SSKEL_REQUIRE(k >= 1);
  const ProcId n = source.n();
  const std::vector<Value> proposals = default_proposals(n);

  std::vector<std::unique_ptr<Algorithm<SkeletonMessage>>> procs;
  std::vector<AblationKSetProcess*> views;
  for (ProcId p = 0; p < n; ++p) {
    auto proc = std::make_unique<AblationKSetProcess>(
        n, p, proposals[static_cast<std::size_t>(p)], flags);
    views.push_back(proc.get());
    procs.push_back(std::move(proc));
  }
  Simulator<SkeletonMessage> sim(source, std::move(procs));

  AblationRunResult result;
  while (sim.current_round() < max_rounds) {
    sim.step();
    bool all = true;
    for (const AblationKSetProcess* v : views) all = all && v->decided();
    if (all) break;
  }
  result.rounds_executed = sim.current_round();

  std::vector<Outcome> outcomes;
  result.all_decided = true;
  for (const AblationKSetProcess* v : views) {
    Outcome o;
    o.proposal = v->proposal();
    o.decided = v->decided();
    if (v->decided()) {
      o.decision = v->decision();
      o.decision_round = v->decision_round();
      ++result.decided_count;
      result.last_decision_round =
          std::max(result.last_decision_round, v->decision_round());
    } else {
      result.all_decided = false;
    }
    outcomes.push_back(o);
  }
  result.distinct_values = distinct_decisions(outcomes);
  return result;
}

}  // namespace sskel
