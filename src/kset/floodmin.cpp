#include "kset/floodmin.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sskel {

FloodMinProcess::FloodMinProcess(ProcId n, ProcId id, Value proposal, int f,
                                 int k)
    : Algorithm(n, id),
      proposal_(proposal),
      min_(proposal),
      rounds_needed_(static_cast<Round>(f / k + 1)) {
  SSKEL_REQUIRE(proposal != kNoValue);
  SSKEL_REQUIRE(f >= 0 && f < n);
  SSKEL_REQUIRE(k >= 1);
}

Value FloodMinProcess::send(Round /*r*/) { return min_; }

void FloodMinProcess::transition(Round r, const Inbox<Value>& inbox) {
  if (decided_) return;  // the decision is irrevocable
  for (ProcId q : inbox.senders()) {
    min_ = std::min(min_, inbox.from(q));
  }
  if (r >= rounds_needed_) {
    decided_ = true;
    decision_round_ = r;
  }
}

Value FloodMinProcess::decision() const {
  SSKEL_REQUIRE(decided_);
  return min_;
}

}  // namespace sskel
