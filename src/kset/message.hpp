// The round message of Algorithm 1.
//
// Line 6/8: a process broadcasts (decide, x_p, G_p) once decided and
// (prop, x_p, G_p) otherwise — same payload, different tag.
#pragma once

#include "graph/labeled_digraph.hpp"
#include "skeleton/codec.hpp"
#include "util/types.hpp"

namespace sskel {

struct SkeletonMessage {
  /// true = (decide, ...), false = (prop, ...).
  bool decide = false;
  /// The sender's estimate x_q (its decision value when decide).
  Value x = kNoValue;
  /// The sender's approximation graph G_q at the beginning of the
  /// round (i.e. G_q^{r-1}).
  LabeledDigraph graph;
};

/// Encoded wire size in bytes: 1 tag byte + 8 value bytes + the graph
/// codec size. Used by the simulator's message sizer for experiment
/// E5 (bit complexity).
[[nodiscard]] inline std::int64_t encoded_size(const SkeletonMessage& m) {
  return 1 + 8 + encoded_graph_size(m.graph);
}

/// Appends the wire form — 1 tag byte, 8 little-endian value bytes,
/// then the graph codec — to `out`. Produces exactly encoded_size(m)
/// bytes; the trace recorder uses this as the driver's message
/// encoder so captures carry real wire payloads.
inline void encode_message(const SkeletonMessage& m,
                           std::vector<std::uint8_t>& out) {
  out.push_back(m.decide ? 1 : 0);
  const auto v = static_cast<std::uint64_t>(m.x);
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  const std::vector<std::uint8_t> graph = encode_graph(m.graph);
  out.insert(out.end(), graph.begin(), graph.end());
}

}  // namespace sskel
