// Ablation variant of Algorithm 1: every structurally interesting line
// of the pseudocode can be switched off.
//
// DESIGN.md calls out the design choices the paper bakes into
// Algorithm 1. This process makes them measurable (experiment E10):
//
//   * reset_graph (Line 15) — without the per-round reset, G_p keeps
//     accumulating stale structure and the prune step loses meaning.
//   * purge_old (Line 24) — without aging out labels <= r - n, edges
//     of dead links persist forever; approximations of root-component
//     members never shrink back to their component, so Line 28 never
//     fires in runs with transient prefixes: termination breaks.
//   * prune_unreachable (Line 25) — without pruning, nodes that
//     cannot reach p stay in G_p; since strong connectivity is tested
//     over the whole node set, decisions are again delayed/blocked.
//   * forward_decides (Lines 10-13) — without adopting decide
//     messages, processes outside root components can never decide.
//
// With all flags on, the behavior is the faithful Algorithm 1 (tested
// equivalent against SkeletonKSetProcess run for run).
#pragma once

#include "kset/message.hpp"
#include "kset/skeleton_kset.hpp"
#include "rounds/algorithm.hpp"
#include "rounds/graph_source.hpp"
#include "util/proc_set.hpp"

namespace sskel {

struct AblationFlags {
  bool reset_graph = true;        // Line 15
  bool purge_old = true;          // Line 24
  bool prune_unreachable = true;  // Line 25
  bool forward_decides = true;    // Lines 10-13

  [[nodiscard]] bool faithful() const {
    return reset_graph && purge_old && prune_unreachable && forward_decides;
  }
};

class AblationKSetProcess final : public Algorithm<SkeletonMessage> {
 public:
  AblationKSetProcess(ProcId n, ProcId id, Value proposal,
                      AblationFlags flags,
                      DecisionGuard guard = DecisionGuard::kAfterRoundN);

  [[nodiscard]] SkeletonMessage send(Round r) override;
  void send_into(Round r, SkeletonMessage& out) override;
  void transition(Round r, const Inbox<SkeletonMessage>& inbox) override;

  [[nodiscard]] Value proposal() const { return proposal_; }
  [[nodiscard]] Value estimate() const { return x_; }
  [[nodiscard]] bool decided() const { return decided_; }
  [[nodiscard]] Value decision() const;
  [[nodiscard]] Round decision_round() const { return decision_round_; }
  [[nodiscard]] const LabeledDigraph& approximation() const { return g_; }
  [[nodiscard]] const AblationFlags& flags() const { return flags_; }

 private:
  [[nodiscard]] bool guard_passed(Round r) const {
    return guard_ == DecisionGuard::kAfterRoundN ? r > n() : r >= n();
  }

  Value proposal_;
  Value x_;
  ProcSet pt_;
  LabeledDigraph g_;
  bool decided_ = false;
  Round decision_round_ = 0;
  AblationFlags flags_;
  DecisionGuard guard_;
};

/// Outcome summary of one ablation run (all processes share flags).
struct AblationRunResult {
  bool all_decided = false;
  int decided_count = 0;
  int distinct_values = 0;
  Round last_decision_round = 0;
  Round rounds_executed = 0;
};

/// Runs the ablated algorithm over the source until everyone decides
/// or max_rounds elapses.
[[nodiscard]] AblationRunResult run_ablation(GraphSource& source,
                                             AblationFlags flags, int k,
                                             Round max_rounds);

}  // namespace sskel
