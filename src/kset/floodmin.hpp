// FloodMin: the classic synchronous crash-tolerant k-set agreement
// baseline (Chaudhuri; see also Lynch, "Distributed Algorithms",
// Sec. 7.2 for k=1 FloodSet).
//
// Model: synchronous rounds, at most f crash failures, otherwise
// reliable all-to-all delivery. Every process floods its current
// minimum for floor(f/k) + 1 rounds and then decides it. With at most
// f crashes there is at least one "clean" round among any f/k+1 in
// which fewer than k processes crash, which bounds the surviving
// minima by k.
//
// The paper itself has no experimental comparator; FloodMin is the
// canonical baseline for experiment E7: it needs *stronger* assumptions
// (bounded crashes, reliable delivery otherwise) but fewer rounds and
// O(log v)-bit messages, while Algorithm 1 tolerates arbitrary
// Psrcs(k) message loss at the cost of graph-sized messages and
// r_ST + 2n - 1 rounds. Under a GraphSource that violates the crash
// model (e.g. arbitrary Psrcs(k) link failures), FloodMin's guard does
// not apply and it may — and in tests does — decide on more than k
// values; that contrast is the point of the experiment.
#pragma once

#include "rounds/algorithm.hpp"
#include "util/types.hpp"

namespace sskel {

class FloodMinProcess final : public Algorithm<Value> {
 public:
  /// k-set agreement tolerating up to f crashes: decides at the end of
  /// round floor(f/k) + 1.
  FloodMinProcess(ProcId n, ProcId id, Value proposal, int f, int k);

  [[nodiscard]] Value send(Round r) override;
  void transition(Round r, const Inbox<Value>& inbox) override;

  [[nodiscard]] Value proposal() const { return proposal_; }
  [[nodiscard]] bool decided() const { return decided_; }
  [[nodiscard]] Value decision() const;
  [[nodiscard]] Round decision_round() const { return decision_round_; }

  /// Total rounds this instance runs before deciding.
  [[nodiscard]] Round rounds_needed() const { return rounds_needed_; }

 private:
  Value proposal_;
  Value min_;
  Round rounds_needed_;
  bool decided_ = false;
  Round decision_round_ = 0;
};

}  // namespace sskel
