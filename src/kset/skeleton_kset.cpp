#include "kset/skeleton_kset.hpp"

#include <algorithm>

#include "skeleton/intern.hpp"

namespace sskel {

SkeletonKSetProcess::SkeletonKSetProcess(ProcId n, ProcId id, Value proposal,
                                         DecisionGuard guard)
    : Algorithm(n, id),
      proposal_(proposal),
      x_(proposal),            // Line 2: x_p initially v_p
      pt_(ProcSet::full(n)),   // Line 1: PT_p initially Pi
      g_(n, id),               // Line 3: G_p initially <{p}, {}>
      guard_(guard) {
  SSKEL_REQUIRE(proposal != kNoValue);
}

void SkeletonKSetProcess::reset(Value proposal) {
  SSKEL_REQUIRE(proposal != kNoValue);
  proposal_ = proposal;
  x_ = proposal;            // Line 2
  pt_ = ProcSet::full(n()); // Line 1
  g_.reset(id());           // Line 3
  decided_ = false;
  decision_round_ = 0;
  path_ = DecisionPath::kNone;
  structure_.invalidate();
  cached_sc_ = false;
  cached_sc_valid_ = false;
  reach_cache_hits_ = 0;
  intern_ = nullptr;
  entry_ = nullptr;
  intern_resolutions_ = 0;
}

SkeletonMessage SkeletonKSetProcess::send(Round /*r*/) {
  // Lines 5-8: the same payload is broadcast either as a decide or a
  // prop message.
  return SkeletonMessage{decided_, x_, g_};
}

void SkeletonKSetProcess::send_into(Round /*r*/, SkeletonMessage& out) {
  out.decide = decided_;
  out.x = x_;
  out.graph = g_;  // copy-assign: the outbox slot's rows are reused
}

void SkeletonKSetProcess::transition(Round r, const Inbox<SkeletonMessage>& inbox) {
  // Line 9: update PT_p — a process stays timely only while it keeps
  // delivering every round (Eq. (7)).
  pt_ &= inbox.senders();
  SSKEL_ASSERT(pt_.contains(id()));  // self-delivery is guaranteed

  // Lines 10-13: adopt a decide message from a timely neighbor. When
  // several timely neighbors decided, adopt the minimum value for
  // determinism (any choice satisfies Lemma 13).
  if (!decided_) {
    Value adopted = kNoValue;
    for (ProcId q : pt_) {
      const SkeletonMessage& m = inbox.from(q);
      if (m.decide && (adopted == kNoValue || m.x < adopted)) {
        adopted = m.x;
      }
    }
    if (adopted != kNoValue) {
      x_ = adopted;           // Line 11
      decided_ = true;        // Lines 12-13
      decision_round_ = r;
      path_ = DecisionPath::kForwarded;
    }
  }

  // Lines 14-25: approximate the stable skeleton graph. This runs
  // regardless of the decision state — decided processes keep serving
  // fresh approximations to the rest of the system.
  g_.reset(id());  // Line 15
  for (ProcId q : pt_) {
    g_.set_edge(q, id(), r);  // Line 17: (q -r-> p)
    // Lines 18-23: union of node sets and max-label merge of the
    // received graphs. Folding merge_max over the senders equals the
    // paper's per-pair max over R_{i,j}, because max is associative
    // and the received labels are all <= r - 1 < r (so the fresh
    // Line-17 edges always win their cells).
    g_.merge_max(inbox.from(q).graph);
  }
  g_.purge_labels_up_to(r - n());  // Line 24

  // Line 25 — with change-driven reuse. The prune (and the Line-28
  // connectivity test) depend only on G_p's structure, which repeats
  // round after round once the skeleton stabilizes; when the
  // post-purge structure matches the previous round's snapshot, the
  // cached keep-set replays the prune without a reachability fixpoint
  // and the cached connectivity verdict answers Line 28.
  if (structure_.matches(g_)) {
    g_.restrict_to_reaching(cached_keep_, id());
    ++reach_cache_hits_;
  } else {
    structure_.capture(g_);
    entry_ = intern_ != nullptr ? intern_->intern(g_) : nullptr;
    if (entry_ != nullptr) {
      // Shared path (DESIGN.md §10): the canonical entry serves the
      // keep-set and the post-prune connectivity verdict from its
      // condensation reach closure — computed once per distinct
      // structure run-wide, bit-equal to the private fixpoints.
      ++intern_resolutions_;
      cached_keep_ = entry_->keep_set(id());
      cached_sc_ = entry_->pruned_strongly_connected(id());
      cached_sc_valid_ = true;
      g_.restrict_to_reaching(cached_keep_, id());
    } else {
      cached_keep_ = g_.prune_not_reaching(id());
      cached_sc_valid_ = false;
    }
  }

  if (!decided_) {  // Line 26
    // Line 27: x_p := min of the estimates heard from timely
    // neighbors. p hears itself, so x_p can only decrease (Obs. 2).
    Value best = kNoValue;
    for (ProcId q : pt_) {
      const Value xq = inbox.from(q).x;
      if (best == kNoValue || xq < best) best = xq;
    }
    SSKEL_ASSERT(best != kNoValue);
    x_ = best;

    // Lines 28-30: decide once the approximation is strongly
    // connected after the round guard. The verdict is evaluated
    // lazily and reused until the structure changes.
    if (guard_passed(r)) {
      if (!cached_sc_valid_) {
        cached_sc_ = g_.strongly_connected();
        cached_sc_valid_ = true;
      }
      if (cached_sc_) {
        decided_ = true;
        decision_round_ = r;
        path_ = DecisionPath::kConnected;
      }
    }
  }
}

Value SkeletonKSetProcess::decision() const {
  SSKEL_REQUIRE(decided_);
  return x_;
}

}  // namespace sskel
