// The One-Third Rule (OTR) consensus algorithm of the Heard-Of model
// (Charron-Bost & Schiper, "The Heard-Of model", Distributed
// Computing 2009) — a second baseline from the literature the paper
// builds on.
//
// Per round, a process that hears from more than 2n/3 processes
// updates its estimate to the smallest among the most frequent values
// received; it decides v once more than 2n/3 of the *received* values
// equal v. OTR solves consensus under HO predicates guaranteeing
// recurring large uniform kernels — assumptions incomparable with
// Psrcs(k): under all-to-all rounds OTR decides in two rounds with
// 8-byte messages, while under a sparse Psrcs(k) skeleton (|PT| far
// below 2n/3) it never fires at all. The contrast shows what the
// skeleton approximation buys: termination from *any* stabilizing
// pattern, however sparse.
#pragma once

#include "rounds/algorithm.hpp"
#include "util/types.hpp"

namespace sskel {

class OneThirdRuleProcess final : public Algorithm<Value> {
 public:
  OneThirdRuleProcess(ProcId n, ProcId id, Value proposal);

  [[nodiscard]] Value send(Round r) override;
  void transition(Round r, const Inbox<Value>& inbox) override;

  [[nodiscard]] Value proposal() const { return proposal_; }
  [[nodiscard]] Value estimate() const { return x_; }
  [[nodiscard]] bool decided() const { return decided_; }
  [[nodiscard]] Value decision() const;
  [[nodiscard]] Round decision_round() const { return decision_round_; }

 private:
  Value proposal_;
  Value x_;
  bool decided_ = false;
  Round decision_round_ = 0;
};

}  // namespace sskel
