#include "kset/verify.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "util/assert.hpp"

namespace sskel {

int distinct_decisions(const std::vector<Outcome>& outcomes) {
  std::set<Value> values;
  for (const Outcome& o : outcomes) {
    if (o.decided) values.insert(o.decision);
  }
  return static_cast<int>(values.size());
}

KSetVerdict verify_kset(const std::vector<Outcome>& outcomes, int k,
                        Round round_bound) {
  SSKEL_REQUIRE(k >= 1);
  KSetVerdict verdict;

  std::set<Value> proposals;
  for (const Outcome& o : outcomes) proposals.insert(o.proposal);

  verdict.distinct_decisions = distinct_decisions(outcomes);
  verdict.k_agreement = verdict.distinct_decisions <= k;
  if (!verdict.k_agreement) {
    std::ostringstream os;
    os << "k-agreement violated: " << verdict.distinct_decisions
       << " distinct values for k=" << k;
    verdict.failures.push_back(os.str());
  }

  verdict.validity = true;
  for (std::size_t p = 0; p < outcomes.size(); ++p) {
    const Outcome& o = outcomes[p];
    if (o.decided && proposals.count(o.decision) == 0) {
      verdict.validity = false;
      std::ostringstream os;
      os << "validity violated: p" << p << " decided unproposed value "
         << o.decision;
      verdict.failures.push_back(os.str());
    }
  }

  verdict.termination = true;
  for (std::size_t p = 0; p < outcomes.size(); ++p) {
    const Outcome& o = outcomes[p];
    if (!o.decided) {
      verdict.termination = false;
      std::ostringstream os;
      os << "termination violated: p" << p << " undecided";
      verdict.failures.push_back(os.str());
      continue;
    }
    verdict.last_decision_round =
        std::max(verdict.last_decision_round, o.decision_round);
    if (round_bound > 0 && o.decision_round > round_bound) {
      verdict.termination = false;
      std::ostringstream os;
      os << "termination bound violated: p" << p << " decided in round "
         << o.decision_round << " > bound " << round_bound;
      verdict.failures.push_back(os.str());
    }
  }
  return verdict;
}

}  // namespace sskel
