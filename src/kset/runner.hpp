// KSetRunner: the one-call harness for running Algorithm 1 on any
// round-execution substrate and collecting everything an experiment
// needs.
//
// Wires up one SkeletonKSetProcess per process, a skeleton tracker
// (for r_ST and root components), optional lemma monitors, and
// optional message-size accounting; runs until every process decides
// (plus an optional tail); and returns a structured report. The core
// entry point takes a RoundEngine<SkeletonMessage> — deterministic
// simulator or partially synchronous network alike — so the analysis
// stack is substrate-agnostic. run_kset(GraphSource&, ...) remains the
// convenience wrapper for the common simulator case. Examples, tests
// and benches all go through these entry points.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "kset/skeleton_kset.hpp"
#include "kset/verify.hpp"
#include "rounds/engine.hpp"
#include "rounds/graph_source.hpp"
#include "skeleton/lemmas.hpp"

namespace sskel {

class InternDomain;

struct KSetRunConfig {
  /// The k of k-set agreement (used for the verdict; the algorithm
  /// itself is k-oblivious — k enters only through the predicate the
  /// source satisfies).
  int k = 1;

  /// Proposals v_p; must have size n. Empty = distinct values 100*p+7.
  std::vector<Value> proposals;

  DecisionGuard guard = DecisionGuard::kAfterRoundN;

  /// Hard stop; 0 selects 8n + 32 rounds.
  Round max_rounds = 0;

  /// Rounds to keep simulating after the last decision (exercises the
  /// post-decision code paths and lets the skeleton settle).
  Round tail_rounds = 0;

  /// Attach the LemmaMonitor (O(n^3)/round; for tests and small n).
  bool attach_lemma_monitor = false;
  LemmaChecks checks;

  /// Install the wire codec as message sizer (experiment E5).
  bool measure_bytes = false;

  /// Optional run-wide structure interning (skeleton/intern.hpp,
  /// DESIGN.md §10), non-owning: each process and the skeleton
  /// tracker resolve structure changes through the calling thread's
  /// shard of this domain, so identical structures — across processes
  /// within a round and across trials on the same worker — share one
  /// analytics computation. The domain must outlive the run.
  /// run_scenario_trials supplies one automatically; direct run_kset
  /// callers opt in explicitly.
  InternDomain* intern = nullptr;
};

struct KSetRunReport {
  ProcId n = 0;
  std::vector<Outcome> outcomes;
  std::vector<DecisionPath> paths;
  KSetVerdict verdict;  // k-agreement/validity/termination w.r.t. config.k
  bool all_decided = false;
  Round rounds_executed = 0;
  Round last_decision_round = 0;
  int distinct_values = 0;

  /// Final skeleton G∩R of the run and the last round that changed it
  /// (equals r_ST once the source has stabilized).
  Digraph final_skeleton;
  Round skeleton_last_change = 0;
  std::vector<ProcSet> root_components_final;

  /// Message accounting (bytes only when measure_bytes).
  std::int64_t total_messages = 0;
  std::int64_t total_bytes = 0;
  std::int64_t max_message_bytes = 0;

  std::vector<std::string> lemma_violations;

  /// Lemma 11's termination bound for this run's guard:
  /// max(r_ST, 1) + 2n - 1, plus 1 for the strict Line-28 guard.
  [[nodiscard]] Round termination_bound(DecisionGuard guard) const;
};

/// Builds the Algorithm 1 process vector for any substrate: one
/// SkeletonKSetProcess per id with the config's proposals and guard.
[[nodiscard]] std::vector<std::unique_ptr<Algorithm<SkeletonMessage>>>
make_kset_processes(ProcId n, const KSetRunConfig& config);

/// Runs Algorithm 1 on an engine already populated with processes from
/// make_kset_processes() until all of them decide (or max_rounds),
/// plus tail_rounds. Works identically over Simulator and
/// NetRoundDriver. The engine must be freshly constructed (no rounds
/// executed yet). The report's verdict has no round bound applied; use
/// termination_bound() to check Lemma 11.
[[nodiscard]] KSetRunReport run_kset_on_engine(
    RoundEngine<SkeletonMessage>& engine, const KSetRunConfig& config);

/// Convenience wrapper: processes + Simulator over `source`, then
/// run_kset_on_engine.
[[nodiscard]] KSetRunReport run_kset(GraphSource& source,
                                     const KSetRunConfig& config);

/// Reusable across-trial state for run_kset: the Simulator (round
/// graph + outbox storage) and the n process objects survive between
/// trials, so a repeat trial costs n process *resets* instead of n
/// process constructions plus an engine construction — the dominant
/// fixed cost of small-n Monte-Carlo (DESIGN.md §13). One scratch
/// serves one thread; the tile plane keeps one per tile.
///
/// The scratch is revalidated per call: a different n or decision
/// guard rebuilds the engine, and the intern-table binding is
/// refreshed from the *calling thread's* shard every trial, so a
/// scratch is safe across configs and (sequentially) across threads.
class KSetTrialScratch {
 public:
  KSetTrialScratch();
  ~KSetTrialScratch();
  KSetTrialScratch(KSetTrialScratch&&) noexcept;
  KSetTrialScratch& operator=(KSetTrialScratch&&) noexcept;

  /// Trials served by reusing the persistent engine (vs rebuilt).
  [[nodiscard]] std::int64_t reuses() const;

 private:
  friend KSetRunReport run_kset(GraphSource& source,
                                const KSetRunConfig& config,
                                KSetTrialScratch& scratch);
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// run_kset with persistent engine/process reuse. Reports are
/// bit-identical to the scratch-free overload (the scheduler
/// equivalence tripwire pins this).
[[nodiscard]] KSetRunReport run_kset(GraphSource& source,
                                     const KSetRunConfig& config,
                                     KSetTrialScratch& scratch);

/// Default distinct proposals (100*p + 7) for n processes.
[[nodiscard]] std::vector<Value> default_proposals(ProcId n);

struct RunCapture;

/// run_kset with a TraceRecorder attached: the report is bit-identical
/// to run_kset over the same source/config (the recorder only
/// observes), and `capture` receives the full SSKT-encodable run —
/// per-round graphs and engine accounting, stamped with `seed` in the
/// header. This is the campaign's misbehaving-trial capture path: a
/// flagged seed is re-run through here and the capture written as a
/// crash artifact, so replaying the artifact reproduces the exact run.
[[nodiscard]] KSetRunReport run_kset_recorded(GraphSource& source,
                                              const KSetRunConfig& config,
                                              std::uint64_t seed,
                                              RunCapture& capture);

}  // namespace sskel
