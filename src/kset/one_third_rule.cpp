#include "kset/one_third_rule.hpp"

#include <map>

#include "util/assert.hpp"

namespace sskel {

OneThirdRuleProcess::OneThirdRuleProcess(ProcId n, ProcId id, Value proposal)
    : Algorithm(n, id), proposal_(proposal), x_(proposal) {
  SSKEL_REQUIRE(proposal != kNoValue);
}

Value OneThirdRuleProcess::send(Round /*r*/) { return x_; }

void OneThirdRuleProcess::transition(Round r, const Inbox<Value>& inbox) {
  // Tally the received multiset of values.
  std::map<Value, int> counts;
  int received = 0;
  for (ProcId q : inbox.senders()) {
    ++counts[inbox.from(q)];
    ++received;
  }

  const int threshold = 2 * n() / 3;  // "more than 2n/3" = > threshold

  if (received > threshold) {
    // Smallest among the most frequent received values.
    int best_count = 0;
    Value best = kNoValue;
    for (const auto& [value, count] : counts) {
      if (count > best_count) {  // map order: first max is the smallest
        best_count = count;
        best = value;
      }
    }
    SSKEL_ASSERT(best != kNoValue);
    x_ = best;
  }

  if (!decided_) {
    for (const auto& [value, count] : counts) {
      if (count > threshold) {
        x_ = value;
        decided_ = true;
        decision_round_ = r;
        break;
      }
    }
  }
}

Value OneThirdRuleProcess::decision() const {
  SSKEL_REQUIRE(decided_);
  return x_;
}

}  // namespace sskel
