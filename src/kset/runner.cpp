#include "kset/runner.hpp"

#include <algorithm>
#include <utility>

#include "graph/scc.hpp"
#include "rounds/simulator.hpp"
#include "rounds/trace.hpp"
#include "skeleton/intern.hpp"
#include "skeleton/tracker.hpp"

namespace sskel {

std::vector<Value> default_proposals(ProcId n) {
  std::vector<Value> v(static_cast<std::size_t>(n));
  for (ProcId p = 0; p < n; ++p) {
    v[static_cast<std::size_t>(p)] = 100 * static_cast<Value>(p) + 7;
  }
  return v;
}

Round KSetRunReport::termination_bound(DecisionGuard guard) const {
  const Round r_st = std::max<Round>(skeleton_last_change, 1);
  const Round slack = guard == DecisionGuard::kAfterRoundN ? 1 : 0;
  return r_st + 2 * n - 1 + slack;
}

std::vector<std::unique_ptr<Algorithm<SkeletonMessage>>> make_kset_processes(
    ProcId n, const KSetRunConfig& config) {
  SSKEL_REQUIRE(n > 0);
  SSKEL_REQUIRE(config.k >= 1);
  const std::vector<Value> proposals =
      config.proposals.empty() ? default_proposals(n) : config.proposals;
  SSKEL_REQUIRE(proposals.size() == static_cast<std::size_t>(n));

  // One shard resolution for the whole vector: processes built here
  // run on the thread that builds them (trials execute start-to-finish
  // on one worker), so the thread-local shard is the right table.
  StructureInternTable* table =
      config.intern != nullptr ? &config.intern->local() : nullptr;

  std::vector<std::unique_ptr<Algorithm<SkeletonMessage>>> procs;
  procs.reserve(static_cast<std::size_t>(n));
  for (ProcId p = 0; p < n; ++p) {
    auto proc = std::make_unique<SkeletonKSetProcess>(
        n, p, proposals[static_cast<std::size_t>(p)], config.guard);
    proc->set_intern_table(table);
    procs.push_back(std::move(proc));
  }
  return procs;
}

namespace {

/// Concrete views of the engine's processes, built once per engine
/// (trial scratches cache them across runs).
std::vector<SkeletonKSetProcess*> kset_views(
    RoundEngine<SkeletonMessage>& engine) {
  const ProcId n = engine.n();
  std::vector<SkeletonKSetProcess*> views;
  views.reserve(static_cast<std::size_t>(n));
  for (ProcId p = 0; p < n; ++p) {
    auto* view = dynamic_cast<SkeletonKSetProcess*>(&engine.process(p));
    SSKEL_REQUIRE(view != nullptr);
    views.push_back(view);
  }
  return views;
}

/// The run loop and report build behind run_kset_on_engine. The
/// tracker arrives freshly constructed or reset(), interned per the
/// config, with its observer already on the engine's bus; `views` are
/// the engine's processes.
KSetRunReport run_kset_core(RoundEngine<SkeletonMessage>& engine,
                            const KSetRunConfig& config,
                            SkeletonTracker& tracker,
                            const std::vector<SkeletonKSetProcess*>& views) {
  const ProcId n = engine.n();
  SSKEL_REQUIRE(n > 0);
  SSKEL_REQUIRE(config.k >= 1);
  SSKEL_REQUIRE(engine.rounds_completed() == 0);

  if (config.measure_bytes) {
    engine.set_message_sizer(
        [](const SkeletonMessage& m) { return encoded_size(m); });
  }

  std::unique_ptr<LemmaMonitor> monitor;
  if (config.attach_lemma_monitor) {
    monitor = std::make_unique<LemmaMonitor>(n, config.checks);
    if (config.intern != nullptr) {
      // The monitor's per-round SCC checks (Lemma 7 bases, tracker
      // analytics) then share the run-wide canonical entries.
      monitor->attach_intern(&config.intern->local());
    }
  }

  const Round max_rounds =
      config.max_rounds > 0 ? config.max_rounds : 8 * n + 32;

  auto all_decided = [&] {
    return std::all_of(
        views.begin(), views.end(),
        [](const SkeletonKSetProcess* v) { return v->decided(); });
  };

  // Both substrates fire step()/observers at the end-of-round cut, so
  // the monitor's snapshots are consistent with the graph it is fed.
  auto feed_monitor = [&](Round r, const Digraph& g) {
    if (!monitor) return;
    std::vector<ProcessSnapshot> snaps;
    snaps.reserve(static_cast<std::size_t>(n));
    for (const SkeletonKSetProcess* v : views) {
      ProcessSnapshot s;
      s.approx = v->approximation();
      s.pt = v->pt();
      s.estimate = v->estimate();
      s.decided = v->decided();
      s.decided_via_message = v->decision_path() == DecisionPath::kForwarded;
      s.decision_round = v->decision_round();
      snaps.push_back(std::move(s));
    }
    monitor->observe_round(r, g, snaps);
  };

  Round executed = 0;
  bool done = false;
  while (executed < max_rounds) {
    const Digraph& g = engine.step();
    ++executed;
    feed_monitor(executed, g);
    if (all_decided()) {
      done = true;
      break;
    }
  }
  for (Round t = 0; t < config.tail_rounds && executed < max_rounds; ++t) {
    const Digraph& g = engine.step();
    ++executed;
    feed_monitor(executed, g);
  }
  if (monitor) monitor->finalize();

  KSetRunReport report;
  report.n = n;
  report.all_decided = done || all_decided();
  report.rounds_executed = executed;
  for (const SkeletonKSetProcess* v : views) {
    Outcome o;
    o.proposal = v->proposal();
    o.decided = v->decided();
    if (v->decided()) {
      o.decision = v->decision();
      o.decision_round = v->decision_round();
      report.last_decision_round =
          std::max(report.last_decision_round, v->decision_round());
    }
    report.outcomes.push_back(o);
    report.paths.push_back(v->decision_path());
  }
  report.verdict = verify_kset(report.outcomes, config.k);
  report.distinct_values = report.verdict.distinct_decisions;
  report.final_skeleton = tracker.skeleton();
  report.skeleton_last_change = tracker.last_change_round();
  report.root_components_final = tracker.current_root_components();
  report.total_messages = engine.trace().total_messages();
  report.total_bytes = engine.trace().total_bytes();
  report.max_message_bytes = engine.trace().max_message_bytes();
  if (monitor) report.lemma_violations = monitor->violations();
  return report;
}

}  // namespace

KSetRunReport run_kset_on_engine(RoundEngine<SkeletonMessage>& engine,
                                 const KSetRunConfig& config) {
  SkeletonTracker tracker(engine.n());
  if (config.intern != nullptr) {
    tracker.attach_intern(&config.intern->local());
  }
  engine.add_observer(tracker.observer());
  return run_kset_core(engine, config, tracker, kset_views(engine));
}

KSetRunReport run_kset(GraphSource& source, const KSetRunConfig& config) {
  Simulator<SkeletonMessage> sim(source,
                                 make_kset_processes(source.n(), config));
  return run_kset_on_engine(sim, config);
}

KSetRunReport run_kset_recorded(GraphSource& source,
                                const KSetRunConfig& config,
                                std::uint64_t seed, RunCapture& capture) {
  Simulator<SkeletonMessage> sim(source,
                                 make_kset_processes(source.n(), config));
  TraceRecorder recorder(source.n(), TraceSource::kSimulator, seed);
  recorder.attach(sim);
  KSetRunReport report = run_kset_on_engine(sim, config);
  capture = recorder.finish(sim.trace());
  return report;
}

struct KSetTrialScratch::Impl {
  std::unique_ptr<Simulator<SkeletonMessage>> sim;
  std::unique_ptr<SkeletonTracker> tracker;
  std::vector<SkeletonKSetProcess*> views;
  /// default_proposals(n), computed once — reused whenever the run
  /// config does not supply proposals.
  std::vector<Value> default_props;
  ProcId n = 0;
  DecisionGuard guard = DecisionGuard::kAfterRoundN;
  std::int64_t reuses = 0;
};

KSetTrialScratch::KSetTrialScratch() = default;
KSetTrialScratch::~KSetTrialScratch() = default;
KSetTrialScratch::KSetTrialScratch(KSetTrialScratch&&) noexcept = default;
KSetTrialScratch& KSetTrialScratch::operator=(KSetTrialScratch&&) noexcept =
    default;

std::int64_t KSetTrialScratch::reuses() const {
  return impl_ != nullptr ? impl_->reuses : 0;
}

KSetRunReport run_kset(GraphSource& source, const KSetRunConfig& config,
                       KSetTrialScratch& scratch) {
  if (scratch.impl_ == nullptr) {
    scratch.impl_ = std::make_unique<KSetTrialScratch::Impl>();
  }
  KSetTrialScratch::Impl& impl = *scratch.impl_;
  const ProcId n = source.n();

  if (impl.sim == nullptr || impl.n != n || impl.guard != config.guard) {
    // First use or shape change: build once, reuse thereafter. The
    // guard is a constructor-time choice of the processes, so a guard
    // change rebuilds rather than resets.
    impl.sim = std::make_unique<Simulator<SkeletonMessage>>(
        source, make_kset_processes(n, config));
    impl.tracker = std::make_unique<SkeletonTracker>(n);
    impl.views = kset_views(*impl.sim);
    impl.default_props.clear();
    impl.n = n;
    impl.guard = config.guard;
  } else {
    // Reuse: rebind the engine and restore every process and the
    // tracker to the state first use would have constructed —
    // including the per-call intern-shard binding, which must come
    // from the *current* thread and the *current* config.
    impl.sim->reset(source);
    impl.tracker->reset();
    const std::vector<Value>* proposals = &config.proposals;
    if (config.proposals.empty()) {
      if (impl.default_props.empty()) {
        impl.default_props = default_proposals(n);
      }
      proposals = &impl.default_props;
    }
    SSKEL_REQUIRE(proposals->size() == static_cast<std::size_t>(n));
    StructureInternTable* table =
        config.intern != nullptr ? &config.intern->local() : nullptr;
    for (ProcId p = 0; p < n; ++p) {
      SkeletonKSetProcess* proc = impl.views[static_cast<std::size_t>(p)];
      proc->reset((*proposals)[static_cast<std::size_t>(p)]);
      proc->set_intern_table(table);
    }
    ++impl.reuses;
  }

  if (config.intern != nullptr) {
    impl.tracker->attach_intern(&config.intern->local());
  }
  impl.sim->add_observer(impl.tracker->observer());
  return run_kset_core(*impl.sim, config, *impl.tracker, impl.views);
}

}  // namespace sskel
