// LocalMin: a deliberately naive strawman.
//
// Each process floods minima like FloodMin but decides after a fixed
// number of rounds with no model justification. It exists as the
// negative control for the experiment harness: under adversarial
// Psrcs(k) communication it routinely decides on more than k values,
// demonstrating that the skeleton approximation of Algorithm 1 — not
// mere min-flooding — is what buys k-agreement.
#pragma once

#include "rounds/algorithm.hpp"
#include "util/types.hpp"

namespace sskel {

class LocalMinProcess final : public Algorithm<Value> {
 public:
  LocalMinProcess(ProcId n, ProcId id, Value proposal, Round decide_round);

  [[nodiscard]] Value send(Round r) override;
  void transition(Round r, const Inbox<Value>& inbox) override;

  [[nodiscard]] Value proposal() const { return proposal_; }
  [[nodiscard]] bool decided() const { return decided_; }
  [[nodiscard]] Value decision() const;
  [[nodiscard]] Round decision_round() const { return decision_round_; }

 private:
  Value proposal_;
  Value min_;
  Round decide_round_;
  bool decided_ = false;
  Round decision_round_ = 0;
};

}  // namespace sskel
