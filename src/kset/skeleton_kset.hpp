// Algorithm 1: approximating the stable skeleton graph and solving
// k-set agreement with Psrcs(k).
//
// A faithful implementation of the paper's pseudocode. Per round r a
// process p:
//
//   send:      (decide | prop, x_p, G_p)                    (L5-8)
//   receive:   PT_p := PT_p cap senders                     (L9)
//              adopt a decide message from PT_p             (L10-13)
//              G_p := <{p}, {}>                             (L15)
//              add (q -r-> p) for q in PT_p                 (L16-18)
//              max-label merge of graphs from PT_p          (L19-23)
//              purge labels <= r - n                        (L24)
//              prune nodes not reaching p                   (L25)
//              if undecided:                                (L26)
//                x_p := min of estimates heard from PT_p    (L27)
//                if r > n and G_p strongly connected:       (L28)
//                  decide x_p                               (L29-30)
//
// The one deliberately configurable point is the Line-28 round guard:
// the pseudocode reads "r > n", while Lemma 11's termination bound
// needs decisions as early as round n when the skeleton is stable from
// round 1. Both guards are safe (deciding later never breaks
// k-agreement; Lemma 14 only needs "not before round n"), so the guard
// is a constructor parameter with the literal pseudocode as default.
// Tests exercise both.
#pragma once

#include "kset/message.hpp"
#include "rounds/algorithm.hpp"
#include "util/proc_set.hpp"

namespace sskel {

class StructureInternTable;
class InternedStructure;

/// How a decision was reached.
enum class DecisionPath {
  kNone,        // undecided
  kConnected,   // Line 29: own approximation strongly connected
  kForwarded,   // Line 12: adopted a neighbor's decide message
};

/// Line-28 round guard variants.
enum class DecisionGuard {
  kAfterRoundN,  // r > n  (the paper's literal pseudocode)
  kAtRoundN,     // r >= n (the earliest round Lemma 14 permits)
};

class SkeletonKSetProcess final : public Algorithm<SkeletonMessage> {
 public:
  /// `proposal` is v_p; `guard` selects the Line-28 variant.
  SkeletonKSetProcess(ProcId n, ProcId id, Value proposal,
                      DecisionGuard guard = DecisionGuard::kAfterRoundN);

  /// Restores the freshly-constructed state for a new trial with a
  /// (possibly different) proposal, reusing the PT/G_p storage and the
  /// structure-cache buffers instead of reallocating them. n, id and
  /// guard are fixed; the intern table detaches (the next trial's
  /// table may belong to a different run — call set_intern_table
  /// again). The cross-scheduler bit-equality tripwire
  /// (tests/mc/mc_plane_test.cpp) pins reset == construct.
  void reset(Value proposal);

  [[nodiscard]] SkeletonMessage send(Round r) override;
  void send_into(Round r, SkeletonMessage& out) override;
  void transition(Round r, const Inbox<SkeletonMessage>& inbox) override;

  /// v_p, the initial proposal.
  [[nodiscard]] Value proposal() const { return proposal_; }

  /// Current estimate x_p.
  [[nodiscard]] Value estimate() const { return x_; }

  [[nodiscard]] bool decided() const { return decided_; }

  /// The decided value; requires decided().
  [[nodiscard]] Value decision() const;

  /// Round in which the decision fired (0 when undecided).
  [[nodiscard]] Round decision_round() const { return decision_round_; }

  [[nodiscard]] DecisionPath decision_path() const { return path_; }

  /// PT_p, the perceived perpetually-timely set.
  [[nodiscard]] const ProcSet& pt() const { return pt_; }

  /// G_p, the current approximation of the stable skeleton.
  [[nodiscard]] const LabeledDigraph& approximation() const { return g_; }

  /// Rounds whose Line-25 prune (and, when reached, Line-28 test)
  /// were answered from the structure cache instead of recomputed.
  [[nodiscard]] std::int64_t reachability_cache_hits() const {
    return reach_cache_hits_;
  }

  /// Attaches a run-scoped structure intern table (skeleton/intern.hpp):
  /// whenever the post-purge structure changes, the process resolves it
  /// to the canonical interned entry and takes the Line-25 keep-set and
  /// Line-28 verdict from the shared analytics — so n processes holding
  /// the same skeleton pay for the reachability work once, not n times.
  /// Rounds whose structure repeats keep the allocation-free snapshot
  /// fast path (no rehash). nullptr detaches. On table overflow the
  /// process transparently falls back to its private computation.
  void set_intern_table(StructureInternTable* table) { intern_ = table; }

  /// The interned entry backing the current cached keep-set/verdict,
  /// or nullptr (no table, overflow, or private path). Test hook.
  [[nodiscard]] const InternedStructure* intern_entry() const {
    return entry_;
  }

  /// Structure changes resolved through the intern table.
  [[nodiscard]] std::int64_t intern_resolutions() const {
    return intern_resolutions_;
  }

 private:
  [[nodiscard]] bool guard_passed(Round r) const {
    return guard_ == DecisionGuard::kAfterRoundN ? r > n() : r >= n();
  }

  Value proposal_;
  Value x_;
  ProcSet pt_;
  LabeledDigraph g_;
  bool decided_ = false;
  Round decision_round_ = 0;
  DecisionPath path_ = DecisionPath::kNone;
  DecisionGuard guard_;

  /// Change-driven reuse of the Line-25/Line-28 reachability work
  /// (DESIGN.md §8). Both depend only on G_p's structure (nodes +
  /// edges, labels ignored), and once the skeleton stabilizes the
  /// post-purge structure repeats round after round — so the previous
  /// round's keep-set and connectivity verdict stay valid as long as
  /// the snapshot matches.
  GraphStructure structure_;       // post-purge, pre-prune snapshot
  ProcSet cached_keep_;            // Line-25 keep-set for structure_
  bool cached_sc_ = false;         // Line-28 verdict for structure_
  bool cached_sc_valid_ = false;   // Line 28 evaluated lazily
  std::int64_t reach_cache_hits_ = 0;

  /// Optional run-wide structure interning (DESIGN.md §10): when set,
  /// a structure change resolves through the shared table instead of
  /// running the private reachability fixpoints.
  StructureInternTable* intern_ = nullptr;
  InternedStructure* entry_ = nullptr;
  std::int64_t intern_resolutions_ = 0;
};

}  // namespace sskel
