// Property checking for k-set agreement runs (Sec. II-A).
//
//   k-Agreement: at most k distinct decision values.
//   Validity:    every decision was proposed by some process.
//   Termination: every process decides (here: by a given round bound).
#pragma once

#include <string>
#include <vector>

#include "util/types.hpp"

namespace sskel {

/// One process's outcome in a run.
struct Outcome {
  Value proposal = kNoValue;
  bool decided = false;
  Value decision = kNoValue;  // meaningful iff decided
  Round decision_round = 0;   // meaningful iff decided
};

struct KSetVerdict {
  bool k_agreement = false;
  bool validity = false;
  bool termination = false;
  int distinct_decisions = 0;
  Round last_decision_round = 0;
  std::vector<std::string> failures;

  [[nodiscard]] bool all_hold() const {
    return k_agreement && validity && termination;
  }
};

/// Checks the three k-set agreement properties over per-process
/// outcomes. Termination holds when every process decided; when
/// `round_bound` > 0 it additionally requires every decision round to
/// be <= round_bound (used to validate Lemma 11's r_ST + 2n - 1).
[[nodiscard]] KSetVerdict verify_kset(const std::vector<Outcome>& outcomes,
                                      int k, Round round_bound = 0);

/// Count of distinct decision values among decided processes.
[[nodiscard]] int distinct_decisions(const std::vector<Outcome>& outcomes);

}  // namespace sskel
