// VersionedCache: memoization keyed on a monotonically increasing
// version stamp.
//
// The skeleton G∩r shrinks monotonically and stabilizes at r_ST
// (Lemma 1), so every derived quantity — SCCs, root components,
// predicate verdicts, lemma certificates — is a pure function of the
// skeleton's version. Consumers hold one VersionedCache per derived
// value and pass the producer's current version on every query: the
// stored value is returned untouched while the version matches and
// recomputed exactly once per version bump. This is what turns the
// infinite post-stabilization tail of a run into cache hits.
//
// Single-threaded by design (one cache per tracker/monitor instance;
// trials never share them across threads).
#pragma once

#include <cstdint>
#include <utility>

namespace sskel {

template <typename T>
class VersionedCache {
 public:
  /// Returns the cached value when `version` matches the version of
  /// the last computation, otherwise recomputes via `compute()` and
  /// stores the result under `version`.
  template <typename Fn>
  const T& get(std::uint64_t version, Fn&& compute) {
    if (!valid_ || version_ != version) {
      value_ = std::forward<Fn>(compute)();
      version_ = version;
      valid_ = true;
      ++recomputes_;
    }
    return value_;
  }

  /// In-place variant of get(): when the stored version is stale,
  /// `update(value)` mutates the previous value instead of building a
  /// replacement, so consumers with patchable state (e.g. per-component
  /// derived data under a shrink-only producer) can carry the parts
  /// that did not change. On the very first fill `value` is the
  /// default-constructed T. Counts as a recompute exactly like get().
  template <typename Fn>
  const T& refresh(std::uint64_t version, Fn&& update) {
    if (!valid_ || version_ != version) {
      std::forward<Fn>(update)(value_);
      version_ = version;
      valid_ = true;
      ++recomputes_;
    }
    return value_;
  }

  /// Number of times compute() actually ran. With no invalidations,
  /// tests assert this equals the number of version bumps (plus one
  /// for the initial fill); explicit invalidate() calls add one forced
  /// recompute each, tracked separately by invalidations().
  [[nodiscard]] std::int64_t recomputes() const { return recomputes_; }

  /// True when a value is stored for `version`.
  [[nodiscard]] bool fresh(std::uint64_t version) const {
    return valid_ && version_ == version;
  }

  /// Drops the stored value AND its version stamp: the next get() at
  /// any version — including the one just invalidated — recomputes.
  /// Resetting the stamp (rather than only clearing the valid flag)
  /// keeps the stamp from resurrecting a stale value if a caller ever
  /// grows a path that flips valid_ back on, and invalidations() lets
  /// the "recomputes == bumps + 1" accounting stay exact:
  /// recomputes == bumps + 1 + invalidations (when queried per bump).
  void invalidate() {
    valid_ = false;
    version_ = 0;
    ++invalidations_;
  }

  /// Number of explicit invalidate() calls.
  [[nodiscard]] std::int64_t invalidations() const { return invalidations_; }

 private:
  bool valid_ = false;
  std::uint64_t version_ = 0;
  std::int64_t recomputes_ = 0;
  std::int64_t invalidations_ = 0;
  T value_{};
};

}  // namespace sskel
