// InlineCallable: a fixed-capacity, allocation-free std::function.
//
// EventQueue used to store each handler in a std::function<void()>,
// which heap-allocates as soon as the capture exceeds the library's
// small-buffer budget (two pointers on libstdc++) — one allocation per
// scheduled event on the network hot path. InlineCallable keeps the
// capture in an in-object buffer with a hard capacity cap enforced at
// compile time, so storing, moving, and invoking a handler never
// touches the allocator. Callables must be nothrow-move-constructible
// (moves happen inside the event heap's sift operations, which must
// not throw mid-swap).
#pragma once

#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

#include "util/assert.hpp"

namespace sskel {

/// A move-only, nullable callable of signature void() whose target is
/// stored inline. Oversized or throwing-move captures are rejected at
/// compile time — there is no heap fallback by design.
template <std::size_t Capacity>
class InlineCallable {
 public:
  InlineCallable() = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, InlineCallable> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  InlineCallable(F&& fn) {  // NOLINT(bugprone-forwarding-reference-overload)
    using Target = std::decay_t<F>;
    static_assert(sizeof(Target) <= Capacity,
                  "capture exceeds InlineCallable capacity");
    static_assert(alignof(Target) <= alignof(std::max_align_t),
                  "over-aligned captures are not supported");
    static_assert(std::is_nothrow_move_constructible_v<Target>,
                  "captures must be nothrow movable (handlers move "
                  "inside the event heap)");
    ::new (static_cast<void*>(storage_)) Target(std::forward<F>(fn));
    invoke_ = [](void* storage) { (*static_cast<Target*>(storage))(); };
    relocate_ = [](void* dst, void* src) {
      Target* from = static_cast<Target*>(src);
      ::new (dst) Target(std::move(*from));
      from->~Target();
    };
    destroy_ = [](void* storage) { static_cast<Target*>(storage)->~Target(); };
  }

  InlineCallable(InlineCallable&& other) noexcept { move_from(other); }

  InlineCallable& operator=(InlineCallable&& other) noexcept {
    if (this == &other) return *this;
    reset();
    move_from(other);
    return *this;
  }

  InlineCallable(const InlineCallable&) = delete;
  InlineCallable& operator=(const InlineCallable&) = delete;

  ~InlineCallable() { reset(); }

  [[nodiscard]] explicit operator bool() const { return invoke_ != nullptr; }

  void operator()() {
    SSKEL_REQUIRE(invoke_ != nullptr);
    invoke_(storage_);
  }

  void reset() {
    if (invoke_ == nullptr) return;
    destroy_(storage_);
    invoke_ = nullptr;
  }

 private:
  void move_from(InlineCallable& other) noexcept {
    if (other.invoke_ == nullptr) return;
    other.relocate_(storage_, other.storage_);
    invoke_ = other.invoke_;
    relocate_ = other.relocate_;
    destroy_ = other.destroy_;
    other.invoke_ = nullptr;
  }

  alignas(std::max_align_t) std::byte storage_[Capacity];
  void (*invoke_)(void*) = nullptr;
  void (*relocate_)(void*, void*) = nullptr;
  void (*destroy_)(void*) = nullptr;
};

}  // namespace sskel
