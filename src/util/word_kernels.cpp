#include "util/word_kernels.hpp"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>

#include "util/assert.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#define SSKEL_WK_X86 1
#include <immintrin.h>
#else
#define SSKEL_WK_X86 0
#endif

namespace sskel::wk {

namespace {

// ---------------------------------------------------------------------------
// Scalar kernels (the portable reference; also the tail handler the
// vector kernels fall back to for the last < vector-width words).
// ---------------------------------------------------------------------------

void s_and(std::uint64_t* dst, const std::uint64_t* src, std::size_t nw) {
  for (std::size_t i = 0; i < nw; ++i) dst[i] &= src[i];
}

std::uint64_t s_and_changed(std::uint64_t* dst, const std::uint64_t* src,
                            std::size_t nw) {
  std::uint64_t removed = 0;
  for (std::size_t i = 0; i < nw; ++i) {
    removed |= dst[i] & ~src[i];
    dst[i] &= src[i];
  }
  return removed;
}

std::uint64_t s_and_diff(std::uint64_t* dst, const std::uint64_t* src,
                         std::uint64_t* diff, std::size_t nw) {
  std::uint64_t removed = 0;
  for (std::size_t i = 0; i < nw; ++i) {
    const std::uint64_t gone = dst[i] & ~src[i];
    diff[i] = gone;
    removed |= gone;
    dst[i] &= src[i];
  }
  return removed;
}

void s_or(std::uint64_t* dst, const std::uint64_t* src, std::size_t nw) {
  for (std::size_t i = 0; i < nw; ++i) dst[i] |= src[i];
}

void s_or_and(std::uint64_t* dst, const std::uint64_t* a,
              const std::uint64_t* b, std::size_t nw) {
  for (std::size_t i = 0; i < nw; ++i) dst[i] |= a[i] & b[i];
}

void s_andnot(std::uint64_t* dst, const std::uint64_t* src, std::size_t nw) {
  for (std::size_t i = 0; i < nw; ++i) dst[i] &= ~src[i];
}

bool s_subset(const std::uint64_t* a, const std::uint64_t* b,
              std::size_t nw) {
  for (std::size_t i = 0; i < nw; ++i) {
    if ((a[i] & ~b[i]) != 0) return false;
  }
  return true;
}

bool s_intersects(const std::uint64_t* a, const std::uint64_t* b,
                  std::size_t nw) {
  for (std::size_t i = 0; i < nw; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}

constexpr Kernels kScalarKernels{
    s_and,    s_and_changed, s_and_diff, s_or,
    s_or_and, s_andnot,      s_subset,   s_intersects,
};

#if SSKEL_WK_X86

// ---------------------------------------------------------------------------
// AVX2 kernels: 4 words per 256-bit op, scalar tail. Compiled with a
// per-function target attribute so the TU itself needs no -mavx2 and
// the binary stays runnable on machines that dispatch to scalar.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) void v2_and(std::uint64_t* dst,
                                            const std::uint64_t* src,
                                            std::size_t nw) {
  std::size_t i = 0;
  for (; i + 4 <= nw; i += 4) {
    const __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_and_si256(d, s));
  }
  s_and(dst + i, src + i, nw - i);
}

__attribute__((target("avx2"))) std::uint64_t v2_and_changed(
    std::uint64_t* dst, const std::uint64_t* src, std::size_t nw) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= nw; i += 4) {
    const __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    acc = _mm256_or_si256(acc, _mm256_andnot_si256(s, d));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_and_si256(d, s));
  }
  std::uint64_t removed = s_and_changed(dst + i, src + i, nw - i);
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  removed |= lanes[0] | lanes[1] | lanes[2] | lanes[3];
  return removed;
}

__attribute__((target("avx2"))) std::uint64_t v2_and_diff(
    std::uint64_t* dst, const std::uint64_t* src, std::uint64_t* diff,
    std::size_t nw) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= nw; i += 4) {
    const __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i gone = _mm256_andnot_si256(s, d);
    acc = _mm256_or_si256(acc, gone);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(diff + i), gone);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_and_si256(d, s));
  }
  std::uint64_t removed = s_and_diff(dst + i, src + i, diff + i, nw - i);
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  removed |= lanes[0] | lanes[1] | lanes[2] | lanes[3];
  return removed;
}

__attribute__((target("avx2"))) void v2_or(std::uint64_t* dst,
                                           const std::uint64_t* src,
                                           std::size_t nw) {
  std::size_t i = 0;
  for (; i + 4 <= nw; i += 4) {
    const __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(d, s));
  }
  s_or(dst + i, src + i, nw - i);
}

__attribute__((target("avx2"))) void v2_or_and(std::uint64_t* dst,
                                               const std::uint64_t* a,
                                               const std::uint64_t* b,
                                               std::size_t nw) {
  std::size_t i = 0;
  for (; i + 4 <= nw; i += 4) {
    const __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i y = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm256_or_si256(d, _mm256_and_si256(x, y)));
  }
  s_or_and(dst + i, a + i, b + i, nw - i);
}

__attribute__((target("avx2"))) void v2_andnot(std::uint64_t* dst,
                                               const std::uint64_t* src,
                                               std::size_t nw) {
  std::size_t i = 0;
  for (; i + 4 <= nw; i += 4) {
    const __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_andnot_si256(s, d));
  }
  s_andnot(dst + i, src + i, nw - i);
}

__attribute__((target("avx2"))) bool v2_subset(const std::uint64_t* a,
                                               const std::uint64_t* b,
                                               std::size_t nw) {
  std::size_t i = 0;
  for (; i + 4 <= nw; i += 4) {
    const __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i y = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    // testz(~b, a): nonzero iff a has a bit outside b.
    if (_mm256_testz_si256(_mm256_andnot_si256(y, x),
                           _mm256_andnot_si256(y, x)) == 0) {
      return false;
    }
  }
  return s_subset(a + i, b + i, nw - i);
}

__attribute__((target("avx2"))) bool v2_intersects(const std::uint64_t* a,
                                                   const std::uint64_t* b,
                                                   std::size_t nw) {
  std::size_t i = 0;
  for (; i + 4 <= nw; i += 4) {
    const __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i y = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    if (_mm256_testz_si256(x, y) == 0) return true;
  }
  return s_intersects(a + i, b + i, nw - i);
}

constexpr Kernels kAvx2Kernels{
    v2_and,    v2_and_changed, v2_and_diff, v2_or,
    v2_or_and, v2_andnot,      v2_subset,   v2_intersects,
};

// ---------------------------------------------------------------------------
// AVX-512F kernels: 8 words per 512-bit op, scalar tail.
//
// gcc 12 expands several 512-bit intrinsics (_mm512_andnot_si512,
// _mm512_test_epi64_mask, ...) through _mm512_undefined_epi32(), whose
// deliberately-uninitialized passthrough operand trips
// -Werror=maybe-uninitialized at inline depth. Silence just those two
// diagnostics for this section; the kernels themselves read nothing
// uninitialized.
// ---------------------------------------------------------------------------
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

__attribute__((target("avx512f"))) void v5_and(std::uint64_t* dst,
                                               const std::uint64_t* src,
                                               std::size_t nw) {
  std::size_t i = 0;
  for (; i + 8 <= nw; i += 8) {
    const __m512i d = _mm512_loadu_si512(dst + i);
    const __m512i s = _mm512_loadu_si512(src + i);
    _mm512_storeu_si512(dst + i, _mm512_and_si512(d, s));
  }
  s_and(dst + i, src + i, nw - i);
}

// OR-reduction of 8 lanes via a spill; gcc 12's _mm512_reduce_or_epi64
// expands through _mm256_undefined_si256() and trips
// -Werror=uninitialized, so we reduce by hand.
__attribute__((target("avx512f"))) std::uint64_t v5_hor(__m512i acc) {
  std::uint64_t lanes[8];
  _mm512_storeu_si512(lanes, acc);
  return lanes[0] | lanes[1] | lanes[2] | lanes[3] | lanes[4] | lanes[5] |
         lanes[6] | lanes[7];
}

__attribute__((target("avx512f"))) std::uint64_t v5_and_changed(
    std::uint64_t* dst, const std::uint64_t* src, std::size_t nw) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= nw; i += 8) {
    const __m512i d = _mm512_loadu_si512(dst + i);
    const __m512i s = _mm512_loadu_si512(src + i);
    acc = _mm512_or_si512(acc, _mm512_andnot_si512(s, d));
    _mm512_storeu_si512(dst + i, _mm512_and_si512(d, s));
  }
  std::uint64_t removed = s_and_changed(dst + i, src + i, nw - i);
  removed |= v5_hor(acc);
  return removed;
}

__attribute__((target("avx512f"))) std::uint64_t v5_and_diff(
    std::uint64_t* dst, const std::uint64_t* src, std::uint64_t* diff,
    std::size_t nw) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= nw; i += 8) {
    const __m512i d = _mm512_loadu_si512(dst + i);
    const __m512i s = _mm512_loadu_si512(src + i);
    const __m512i gone = _mm512_andnot_si512(s, d);
    acc = _mm512_or_si512(acc, gone);
    _mm512_storeu_si512(diff + i, gone);
    _mm512_storeu_si512(dst + i, _mm512_and_si512(d, s));
  }
  std::uint64_t removed = s_and_diff(dst + i, src + i, diff + i, nw - i);
  removed |= v5_hor(acc);
  return removed;
}

__attribute__((target("avx512f"))) void v5_or(std::uint64_t* dst,
                                              const std::uint64_t* src,
                                              std::size_t nw) {
  std::size_t i = 0;
  for (; i + 8 <= nw; i += 8) {
    const __m512i d = _mm512_loadu_si512(dst + i);
    const __m512i s = _mm512_loadu_si512(src + i);
    _mm512_storeu_si512(dst + i, _mm512_or_si512(d, s));
  }
  s_or(dst + i, src + i, nw - i);
}

__attribute__((target("avx512f"))) void v5_or_and(std::uint64_t* dst,
                                                  const std::uint64_t* a,
                                                  const std::uint64_t* b,
                                                  std::size_t nw) {
  std::size_t i = 0;
  for (; i + 8 <= nw; i += 8) {
    const __m512i d = _mm512_loadu_si512(dst + i);
    const __m512i x = _mm512_loadu_si512(a + i);
    const __m512i y = _mm512_loadu_si512(b + i);
    _mm512_storeu_si512(dst + i, _mm512_or_si512(d, _mm512_and_si512(x, y)));
  }
  s_or_and(dst + i, a + i, b + i, nw - i);
}

__attribute__((target("avx512f"))) void v5_andnot(std::uint64_t* dst,
                                                  const std::uint64_t* src,
                                                  std::size_t nw) {
  std::size_t i = 0;
  for (; i + 8 <= nw; i += 8) {
    const __m512i d = _mm512_loadu_si512(dst + i);
    const __m512i s = _mm512_loadu_si512(src + i);
    _mm512_storeu_si512(dst + i, _mm512_andnot_si512(s, d));
  }
  s_andnot(dst + i, src + i, nw - i);
}

__attribute__((target("avx512f"))) bool v5_subset(const std::uint64_t* a,
                                                  const std::uint64_t* b,
                                                  std::size_t nw) {
  std::size_t i = 0;
  for (; i + 8 <= nw; i += 8) {
    const __m512i x = _mm512_loadu_si512(a + i);
    const __m512i y = _mm512_loadu_si512(b + i);
    if (_mm512_test_epi64_mask(_mm512_andnot_si512(y, x),
                               _mm512_andnot_si512(y, x)) != 0) {
      return false;
    }
  }
  return s_subset(a + i, b + i, nw - i);
}

__attribute__((target("avx512f"))) bool v5_intersects(const std::uint64_t* a,
                                                       const std::uint64_t* b,
                                                       std::size_t nw) {
  std::size_t i = 0;
  for (; i + 8 <= nw; i += 8) {
    const __m512i x = _mm512_loadu_si512(a + i);
    const __m512i y = _mm512_loadu_si512(b + i);
    if (_mm512_test_epi64_mask(x, y) != 0) return true;
  }
  return s_intersects(a + i, b + i, nw - i);
}

constexpr Kernels kAvx512Kernels{
    v5_and,    v5_and_changed, v5_and_diff, v5_or,
    v5_or_and, v5_andnot,      v5_subset,   v5_intersects,
};
#pragma GCC diagnostic pop

#endif  // SSKEL_WK_X86

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

Simd resolve_initial() {
  Simd pick = best_supported();
  if (const char* env = std::getenv("SSKEL_SIMD")) {
    Simd parsed = pick;
    if (parse(env, parsed) && supported(parsed)) pick = parsed;
  }
  return pick;
}

/// The active tier, stored as int for the atomic. Initialized lazily
/// so tests can set SSKEL_SIMD before first use.
std::atomic<int>& active_slot() {
  static std::atomic<int> slot{static_cast<int>(resolve_initial())};
  return slot;
}

}  // namespace

bool supported(Simd kind) {
  switch (kind) {
    case Simd::kScalar:
      return true;
#if SSKEL_WK_X86
    case Simd::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case Simd::kAvx512:
      return __builtin_cpu_supports("avx512f") != 0;
#else
    case Simd::kAvx2:
    case Simd::kAvx512:
      return false;
#endif
  }
  return false;
}

Simd best_supported() {
  if (supported(Simd::kAvx512)) return Simd::kAvx512;
  if (supported(Simd::kAvx2)) return Simd::kAvx2;
  return Simd::kScalar;
}

const Kernels& ops_for(Simd kind) {
  SSKEL_REQUIRE(supported(kind));
#if SSKEL_WK_X86
  switch (kind) {
    case Simd::kAvx512:
      return kAvx512Kernels;
    case Simd::kAvx2:
      return kAvx2Kernels;
    case Simd::kScalar:
      break;
  }
#endif
  return kScalarKernels;
}

const Kernels& ops() { return ops_for(active()); }

Simd active() {
  return static_cast<Simd>(active_slot().load(std::memory_order_relaxed));
}

void force(Simd kind) {
  SSKEL_REQUIRE(supported(kind));
  active_slot().store(static_cast<int>(kind), std::memory_order_relaxed);
}

const char* name(Simd kind) {
  switch (kind) {
    case Simd::kScalar:
      return "scalar";
    case Simd::kAvx2:
      return "avx2";
    case Simd::kAvx512:
      return "avx512";
  }
  return "?";
}

bool parse(const char* text, Simd& out) {
  if (text == nullptr) return false;
  const auto equals = [text](const char* t) {
    return std::strcmp(text, t) == 0;
  };
  if (equals("auto")) {
    out = best_supported();
    return true;
  }
  if (equals("scalar")) {
    out = Simd::kScalar;
    return true;
  }
  if (equals("avx2")) {
    out = Simd::kAvx2;
    return true;
  }
  if (equals("avx512")) {
    out = Simd::kAvx512;
    return true;
  }
  return false;
}

std::int64_t popcount(const std::uint64_t* w, std::size_t nw) {
  std::int64_t c = 0;
  std::size_t i = 0;
  for (; i + 4 <= nw; i += 4) {
    c += std::popcount(w[i]) + std::popcount(w[i + 1]) +
         std::popcount(w[i + 2]) + std::popcount(w[i + 3]);
  }
  for (; i < nw; ++i) c += std::popcount(w[i]);
  return c;
}

void build_summary(const std::uint64_t* words, std::size_t nw,
                   std::uint64_t* summary) {
  const std::size_t ns = (nw + 63) / 64;
  for (std::size_t s = 0; s < ns; ++s) summary[s] = 0;
  for (std::size_t i = 0; i < nw; ++i) {
    if (words[i] != 0) summary[i / 64] |= std::uint64_t{1} << (i % 64);
  }
}

}  // namespace sskel::wk
