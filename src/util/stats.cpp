#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/assert.hpp"

namespace sskel {

void Accumulator::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double Accumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

std::string Accumulator::summary(int precision) const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << mean() << " ± " << stddev() << " [" << min() << ", " << max() << "]";
  return os.str();
}

double percentile(std::vector<double> samples, double q) {
  SSKEL_REQUIRE(q >= 0.0 && q <= 100.0);
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = q / 100.0 * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

void IntHistogram::add(std::int64_t value) {
  auto it = std::lower_bound(
      buckets_.begin(), buckets_.end(), value,
      [](const auto& bucket, std::int64_t v) { return bucket.first < v; });
  if (it != buckets_.end() && it->first == value) {
    ++it->second;
  } else {
    buckets_.insert(it, {value, 1});
  }
  ++total_;
}

IntHistogram IntHistogram::from_buckets(
    std::vector<std::pair<std::int64_t, std::int64_t>> buckets) {
  IntHistogram h;
  std::int64_t total = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    SSKEL_REQUIRE(buckets[i].second > 0);
    SSKEL_REQUIRE(i == 0 || buckets[i - 1].first < buckets[i].first);
    total += buckets[i].second;
  }
  h.buckets_ = std::move(buckets);
  h.total_ = total;
  return h;
}

std::int64_t IntHistogram::count(std::int64_t value) const {
  auto it = std::lower_bound(
      buckets_.begin(), buckets_.end(), value,
      [](const auto& bucket, std::int64_t v) { return bucket.first < v; });
  if (it != buckets_.end() && it->first == value) return it->second;
  return 0;
}

std::int64_t IntHistogram::min_value() const {
  return buckets_.empty() ? 0 : buckets_.front().first;
}

std::int64_t IntHistogram::max_value() const {
  return buckets_.empty() ? 0 : buckets_.back().first;
}

std::string IntHistogram::to_string() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [value, count] : buckets_) {
    if (!first) os << ' ';
    os << value << ':' << count;
    first = false;
  }
  return os.str();
}

}  // namespace sskel
