#include "util/rng.hpp"

#include <bit>
#include <cmath>

namespace sskel {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t st = seed ^ (0x9e3779b97f4a7c15ULL * (index + 1));
  // Two splitmix64 rounds fully decorrelate adjacent indices.
  (void)splitmix64(st);
  return splitmix64(st);
}

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t st = seed;
  for (auto& word : s_) word = splitmix64(st);
  // xoshiro requires a nonzero state; splitmix64 maps at most one input
  // to zero per word, so enforce explicitly.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_below_edge(std::uint64_t x, std::uint64_t bound) {
  // Unbiased rejection sampling: draw from the largest prefix of the
  // 64-bit range that is a whole multiple of bound. The expected
  // number of draws is < 2 for every bound.
  const std::uint64_t limit =
      UINT64_MAX - (UINT64_MAX % bound + 1) % bound;
  while (x > limit) x = next_u64();
  return x % bound;
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  SSKEL_REQUIRE(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                   next_below(span));
}

}  // namespace sskel
