#include "util/rng.hpp"

#include <bit>
#include <cmath>

namespace sskel {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t st = seed ^ (0x9e3779b97f4a7c15ULL * (index + 1));
  // Two splitmix64 rounds fully decorrelate adjacent indices.
  (void)splitmix64(st);
  return splitmix64(st);
}

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t st = seed;
  for (auto& word : s_) word = splitmix64(st);
  // xoshiro requires a nonzero state; splitmix64 maps at most one input
  // to zero per word, so enforce explicitly.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  SSKEL_REQUIRE(bound > 0);
  if ((bound & (bound - 1)) == 0) return next_u64() & (bound - 1);
  // Unbiased rejection sampling: draw from the largest prefix of the
  // 64-bit range that is a whole multiple of bound. The expected
  // number of draws is < 2 for every bound.
  const std::uint64_t limit =
      UINT64_MAX - (UINT64_MAX % bound + 1) % bound;
  std::uint64_t x = next_u64();
  while (x > limit) x = next_u64();
  return x % bound;
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  SSKEL_REQUIRE(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                   next_below(span));
}

double Rng::next_double() {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

}  // namespace sskel
