#include "util/bench_json.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>
#include <system_error>

namespace sskel {

namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
             << "0123456789abcdef"[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_double(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";  // JSON has no NaN/Inf
    return;
  }
  // Shortest representation that round-trips exactly (to_chars without
  // a precision argument). precision(10) silently loses the last ~7
  // bits of the mantissa, which is enough to corrupt ns/op deltas in
  // the bench-regression diffs.
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec == std::errc{}) {
    os.write(buf, ptr - buf);
    return;
  }
  std::ostringstream tmp;  // unreachable fallback, still round-trips
  tmp.precision(std::numeric_limits<double>::max_digits10);
  tmp << v;
  os << tmp.str();
}

}  // namespace

BenchRecord& BenchRecord::set(std::string key, std::int64_t value) {
  Field f;
  f.key = std::move(key);
  f.kind = Kind::kInt;
  f.int_value = value;
  fields_.push_back(std::move(f));
  return *this;
}

BenchRecord& BenchRecord::set(std::string key, double value) {
  Field f;
  f.key = std::move(key);
  f.kind = Kind::kDouble;
  f.double_value = value;
  fields_.push_back(std::move(f));
  return *this;
}

BenchRecord& BenchRecord::set(std::string key, std::string value) {
  Field f;
  f.key = std::move(key);
  f.kind = Kind::kString;
  f.string_value = std::move(value);
  fields_.push_back(std::move(f));
  return *this;
}

void BenchRecord::write(std::ostream& os) const {
  os << '{';
  bool first = true;
  for (const Field& f : fields_) {
    if (!first) os << ", ";
    first = false;
    write_escaped(os, f.key);
    os << ": ";
    switch (f.kind) {
      case Kind::kInt: os << f.int_value; break;
      case Kind::kDouble: write_double(os, f.double_value); break;
      case Kind::kString: write_escaped(os, f.string_value); break;
    }
  }
  os << '}';
}

BenchJson::BenchJson(std::string bench_name)
    : bench_name_(std::move(bench_name)) {}

BenchRecord& BenchJson::add(const std::string& op) {
  records_.emplace_back();
  records_.back().set("op", op);
  return records_.back();
}

void BenchJson::write(std::ostream& os) const {
  os << "{\n  \"bench\": ";
  write_escaped(os, bench_name_);
  os << ",\n  \"records\": [\n";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    os << "    ";
    records_[i].write(os);
    if (i + 1 < records_.size()) os << ',';
    os << '\n';
  }
  os << "  ]\n}\n";
}

bool BenchJson::write_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write(os);
  return static_cast<bool>(os);
}

}  // namespace sskel
