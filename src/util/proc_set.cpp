#include "util/proc_set.hpp"

#include <atomic>
#include <numeric>
#include <sstream>
#include <utility>

#include "util/word_kernels.hpp"

namespace sskel {
namespace {

std::atomic<int> g_tier_policy{static_cast<int>(ProcSet::TierPolicy::kAuto)};
std::atomic<std::size_t> g_tier_words{32};
std::atomic<std::int64_t> g_live_bytes{0};
std::atomic<std::int64_t> g_peak_bytes{0};
std::atomic<std::int64_t> g_arena_bytes{0};
std::atomic<std::int64_t> g_arena_reuses{0};

/// Per-thread recycling pool for dense payload vectors. Only buffers
/// at least tier_threshold_words() long are worth parking (the small-
/// universe dense sets never release their payload anyway), and the
/// pool is capped so a pathological workload cannot park unbounded
/// memory. The `t_arena_live` flag has trivial destruction, so the
/// release hooks can safely detect (and skip) the window after the
/// arena's own thread-exit destructor has run.
constexpr std::size_t kArenaMaxBuffers = 64;

std::int64_t buffer_bytes(const std::vector<std::uint64_t>& buf) {
  return static_cast<std::int64_t>(buf.capacity() * sizeof(std::uint64_t));
}

thread_local bool t_arena_live = false;

struct WordArena {
  std::vector<std::vector<std::uint64_t>> buffers;

  WordArena() { t_arena_live = true; }
  ~WordArena() {
    t_arena_live = false;
    drop_all();
  }

  void drop_all() {
    for (const auto& buf : buffers) {
      g_arena_bytes.fetch_add(-buffer_bytes(buf), std::memory_order_relaxed);
    }
    buffers.clear();
  }
};

WordArena* thread_arena() {
  thread_local WordArena arena;
  return t_arena_live ? &arena : nullptr;
}

/// A zeroed dense payload of `words` words, recycled when a parked
/// buffer is big enough (best fit; capacity is retained).
std::vector<std::uint64_t> arena_acquire(std::size_t words) {
  if (WordArena* arena = thread_arena(); arena != nullptr) {
    auto& pool = arena->buffers;
    std::size_t best = pool.size();
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (pool[i].capacity() < words) continue;
      if (best == pool.size() ||
          pool[i].capacity() < pool[best].capacity()) {
        best = i;
      }
    }
    if (best != pool.size()) {
      std::vector<std::uint64_t> buf = std::move(pool[best]);
      pool.erase(pool.begin() +
                 static_cast<std::ptrdiff_t>(best));
      g_arena_bytes.fetch_add(-buffer_bytes(buf), std::memory_order_relaxed);
      g_arena_reuses.fetch_add(1, std::memory_order_relaxed);
      buf.assign(words, 0);
      return buf;
    }
  }
  return std::vector<std::uint64_t>(words, 0);
}

/// Parks a released dense payload when it is worth recycling;
/// otherwise lets it free normally.
void arena_release(std::vector<std::uint64_t>&& buf) {
  if (buf.capacity() < ProcSet::tier_threshold_words()) return;
  WordArena* arena = thread_arena();
  if (arena == nullptr || arena->buffers.size() >= kArenaMaxBuffers) return;
  g_arena_bytes.fetch_add(buffer_bytes(buf), std::memory_order_relaxed);
  arena->buffers.push_back(std::move(buf));
}

void bump_peak(std::int64_t live) {
  std::int64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
  while (live > peak && !g_peak_bytes.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
}

/// Invokes fn(payload_word_index) for each set summary bit in
/// ascending order; fn returning false aborts the walk.
template <typename Fn>
bool walk_blocks(const std::vector<std::uint64_t>& summary, Fn&& fn) {
  for (std::size_t s = 0; s < summary.size(); ++s) {
    std::uint64_t bits = summary[s];
    while (bits != 0) {
      const auto j = static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      if (!fn(s * 64 + j)) return false;
    }
  }
  return true;
}

ProcId word_bit_to_proc(std::size_t w, std::uint64_t v) {
  return static_cast<ProcId>(w * 64 +
                             static_cast<std::size_t>(std::countr_zero(v)));
}

}  // namespace

void ProcSet::set_tier_policy(TierPolicy policy) {
  g_tier_policy.store(static_cast<int>(policy), std::memory_order_relaxed);
}

ProcSet::TierPolicy ProcSet::tier_policy() {
  return static_cast<TierPolicy>(g_tier_policy.load(std::memory_order_relaxed));
}

void ProcSet::set_tier_threshold_words(std::size_t words) {
  g_tier_words.store(words, std::memory_order_relaxed);
}

std::size_t ProcSet::tier_threshold_words() {
  return g_tier_words.load(std::memory_order_relaxed);
}

std::int64_t ProcSet::live_bytes() {
  return g_live_bytes.load(std::memory_order_relaxed);
}

std::int64_t ProcSet::peak_bytes() {
  return g_peak_bytes.load(std::memory_order_relaxed);
}

void ProcSet::reset_peak_bytes() {
  g_peak_bytes.store(g_live_bytes.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
}

std::int64_t ProcSet::arena_bytes() {
  return g_arena_bytes.load(std::memory_order_relaxed);
}

std::int64_t ProcSet::arena_reuses() {
  return g_arena_reuses.load(std::memory_order_relaxed);
}

void ProcSet::release_thread_arena() {
  if (WordArena* arena = thread_arena(); arena != nullptr) {
    arena->drop_all();
  }
}

bool ProcSet::tiered() const {
  return word_count(n_) >= tier_threshold_words() &&
         tier_policy() == TierPolicy::kAuto;
}

std::int64_t ProcSet::storage_bytes() const {
  return static_cast<std::int64_t>(
      words_.capacity() * sizeof(std::uint64_t) +
      summary_.capacity() * sizeof(std::uint64_t) +
      sidx_.capacity() * sizeof(std::uint32_t) +
      sval_.capacity() * sizeof(std::uint64_t));
}

void ProcSet::account() {
  const std::int64_t bytes = storage_bytes();
  if (bytes == footprint_) return;
  const std::int64_t delta = bytes - footprint_;
  const std::int64_t live =
      g_live_bytes.fetch_add(delta, std::memory_order_relaxed) + delta;
  footprint_ = bytes;
  if (delta > 0) bump_peak(live);
}

ProcSet::ProcSet(ProcId n) : n_(n) {
  SSKEL_REQUIRE(n >= 0);
  if (tiered()) {
    sparse_ = true;  // empty block list; no payload allocation yet
  } else {
    words_.assign(word_count(n_), 0);
  }
  account();
}

ProcSet::ProcSet(const ProcSet& other)
    : n_(other.n_),
      sparse_(other.sparse_),
      words_(other.words_),
      summary_(other.summary_),
      sidx_(other.sidx_),
      sval_(other.sval_) {
  account();
}

ProcSet::ProcSet(ProcSet&& other) noexcept
    : n_(other.n_),
      sparse_(other.sparse_),
      words_(std::move(other.words_)),
      summary_(std::move(other.summary_)),
      sidx_(std::move(other.sidx_)),
      sval_(std::move(other.sval_)),
      footprint_(other.footprint_) {
  other.n_ = 0;
  other.sparse_ = false;
  other.footprint_ = 0;
}

ProcSet& ProcSet::operator=(const ProcSet& other) {
  if (this == &other) return *this;
  n_ = other.n_;
  sparse_ = other.sparse_;
  words_ = other.words_;
  summary_ = other.summary_;
  sidx_ = other.sidx_;
  sval_ = other.sval_;
  account();
  return *this;
}

ProcSet& ProcSet::operator=(ProcSet&& other) noexcept {
  if (this == &other) return *this;
  g_live_bytes.fetch_add(-footprint_, std::memory_order_relaxed);
  n_ = other.n_;
  sparse_ = other.sparse_;
  words_ = std::move(other.words_);
  summary_ = std::move(other.summary_);
  sidx_ = std::move(other.sidx_);
  sval_ = std::move(other.sval_);
  footprint_ = other.footprint_;
  other.n_ = 0;
  other.sparse_ = false;
  other.footprint_ = 0;
  return *this;
}

ProcSet::~ProcSet() {
  g_live_bytes.fetch_add(-footprint_, std::memory_order_relaxed);
  // Dense payloads of dying tiered sets (ProcSet::full temporaries,
  // scratch rows that never sparsified) are worth parking too.
  if (!sparse_ && !words_.empty()) arena_release(std::move(words_));
}

ProcSet ProcSet::full(ProcId n) {
  ProcSet s(n);
  s.sparse_ = false;
  s.sidx_.clear();
  s.sval_.clear();
  s.words_.assign(word_count(n), ~std::uint64_t{0});
  s.trim();
  if (s.tiered()) s.rebuild_summary();
  s.account();
  return s;
}

ProcSet ProcSet::singleton(ProcId n, ProcId p) {
  ProcSet s(n);
  s.insert(p);
  return s;
}

ProcSet ProcSet::of(ProcId n, std::initializer_list<ProcId> members) {
  ProcSet s(n);
  for (ProcId p : members) s.insert(p);
  return s;
}

void ProcSet::insert_sparse(ProcId p) {
  const std::size_t w = word(p);
  const auto wi = static_cast<std::uint32_t>(w);
  const auto it = std::lower_bound(sidx_.begin(), sidx_.end(), wi);
  const auto pos = static_cast<std::size_t>(it - sidx_.begin());
  if (it != sidx_.end() && *it == wi) {
    sval_[pos] |= mask(p);
    return;
  }
  sidx_.insert(it, wi);
  sval_.insert(sval_.begin() + static_cast<std::ptrdiff_t>(pos), mask(p));
  maybe_densify_for_growth(sidx_.size());
  account();
}

void ProcSet::erase_sparse(ProcId p) {
  const std::size_t w = word(p);
  const auto wi = static_cast<std::uint32_t>(w);
  const auto it = std::lower_bound(sidx_.begin(), sidx_.end(), wi);
  if (it == sidx_.end() || *it != wi) return;
  const auto pos = static_cast<std::size_t>(it - sidx_.begin());
  sval_[pos] &= ~mask(p);
  if (sval_[pos] == 0) {
    sidx_.erase(it);
    sval_.erase(sval_.begin() + static_cast<std::ptrdiff_t>(pos));
  }
}

void ProcSet::clear() {
  if (sparse_) {
    sidx_.clear();  // keeps capacity: cleared scratch sets are reused
    sval_.clear();
    return;
  }
  if (tiered()) {
    arena_release(std::move(words_));  // park the payload for reuse
    words_ = std::vector<std::uint64_t>{};
    summary_ = std::vector<std::uint64_t>{};
    sparse_ = true;
    account();
    return;
  }
  std::fill(words_.begin(), words_.end(), 0);
  std::fill(summary_.begin(), summary_.end(), 0);
}

int ProcSet::count() const {
  if (sparse_) {
    return static_cast<int>(wk::popcount(sval_.data(), sval_.size()));
  }
  if (!summary_.empty()) {
    std::int64_t c = 0;
    walk_blocks(summary_, [&](std::size_t w) {
      c += std::popcount(words_[w]);
      return true;
    });
    return static_cast<int>(c);
  }
  return static_cast<int>(wk::popcount(words_.data(), words_.size()));
}

bool ProcSet::empty() const {
  if (sparse_) return sidx_.empty();
  const std::vector<std::uint64_t>& scan =
      summary_.empty() ? words_ : summary_;
  for (std::uint64_t w : scan) {
    if (w != 0) return false;
  }
  return true;
}

bool ProcSet::is_subset_of(const ProcSet& other) const {
  SSKEL_REQUIRE(n_ == other.n_);
  if (sparse_) {
    for (std::size_t i = 0; i < sidx_.size(); ++i) {
      if ((sval_[i] & ~other.word_at(sidx_[i])) != 0) return false;
    }
    return true;
  }
  if (!summary_.empty()) {
    return walk_blocks(summary_, [&](std::size_t w) {
      return (words_[w] & ~other.word_at(w)) == 0;
    });
  }
  if (other.sparse_) {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      if (words_[w] != 0 && (words_[w] & ~other.word_at(w)) != 0) return false;
    }
    return true;
  }
  return wk::ops().subset(words_.data(), other.words_.data(), words_.size());
}

bool ProcSet::intersects(const ProcSet& other) const {
  SSKEL_REQUIRE(n_ == other.n_);
  if (sparse_ || other.sparse_) {
    const ProcSet& walk = sparse_ ? *this : other;
    const ProcSet& peer = sparse_ ? other : *this;
    for (std::size_t i = 0; i < walk.sidx_.size(); ++i) {
      if ((walk.sval_[i] & peer.word_at(walk.sidx_[i])) != 0) return true;
    }
    return false;
  }
  if (!summary_.empty() && summary_.size() == other.summary_.size()) {
    // Both summaries present: only blocks active on both sides can hit.
    for (std::size_t s = 0; s < summary_.size(); ++s) {
      std::uint64_t bits = summary_[s] & other.summary_[s];
      while (bits != 0) {
        const auto j = static_cast<std::size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        const std::size_t w = s * 64 + j;
        if ((words_[w] & other.words_[w]) != 0) return true;
      }
    }
    return false;
  }
  const std::vector<std::uint64_t>& guide =
      !summary_.empty() ? summary_ : other.summary_;
  if (!guide.empty()) {
    return !walk_blocks(guide, [&](std::size_t w) {
      return (words_[w] & other.words_[w]) == 0;
    });
  }
  return wk::ops().intersects(words_.data(), other.words_.data(),
                              words_.size());
}

std::uint64_t ProcSet::intersect_core(const ProcSet& other, ProcSet* diff) {
  SSKEL_REQUIRE(n_ == other.n_);
  if (diff != nullptr) {
    SSKEL_REQUIRE(diff->n_ == n_);
    diff->clear();
  }
  // Appends are in ascending word order on every non-kernel path, so a
  // sparse diff can push_back without re-sorting.
  const auto note = [&](std::size_t w, std::uint64_t gone) {
    if (diff->sparse_) {
      diff->sidx_.push_back(static_cast<std::uint32_t>(w));
      diff->sval_.push_back(gone);
    } else {
      diff->words_[w] = gone;
      if (!diff->summary_.empty()) diff->summary_set(w);
    }
  };
  std::uint64_t any = 0;

  if (sparse_) {
    std::size_t out = 0;
    for (std::size_t i = 0; i < sidx_.size(); ++i) {
      const std::uint64_t before = sval_[i];
      const std::uint64_t after = before & other.word_at(sidx_[i]);
      const std::uint64_t gone = before ^ after;
      any |= gone;
      if (gone != 0 && diff != nullptr) note(sidx_[i], gone);
      if (after != 0) {
        sidx_[out] = sidx_[i];
        sval_[out] = after;
        ++out;
      }
    }
    sidx_.resize(out);
    sval_.resize(out);
    if (diff != nullptr) diff->account();
    return any;
  }

  if (!summary_.empty() &&
      (other.sparse_ || active_words() * 4 <= words_.size())) {
    // Summary-guided shrink: only this set's active blocks can lose
    // members, so the sweep is O(active blocks) however large n is.
    walk_blocks(summary_, [&](std::size_t w) {
      const std::uint64_t before = words_[w];
      const std::uint64_t after = before & other.word_at(w);
      const std::uint64_t gone = before ^ after;
      if (gone != 0) {
        any |= gone;
        if (diff != nullptr) note(w, gone);
        words_[w] = after;
        if (after == 0) summary_clear(w);
      }
      return true;
    });
    if (diff != nullptr) diff->account();
    maybe_sparsify();
    return any;
  }

  if (other.sparse_) {
    // Dense payload without a usable summary against a sparse operand
    // (mixed-policy epochs): scalar sweep with block lookups.
    for (std::size_t w = 0; w < words_.size(); ++w) {
      const std::uint64_t before = words_[w];
      if (before == 0) continue;
      const std::uint64_t after = before & other.word_at(w);
      const std::uint64_t gone = before ^ after;
      if (gone != 0) {
        any |= gone;
        if (diff != nullptr) note(w, gone);
        words_[w] = after;
        if (!summary_.empty() && after == 0) summary_clear(w);
      }
    }
    if (diff != nullptr) diff->account();
    maybe_sparsify();
    return any;
  }

  // Dense x dense full-span: hand the whole payload to the SIMD kernel.
  if (diff != nullptr) {
    if (diff->sparse_) diff->densify();
    any = wk::ops().and_diff(words_.data(), other.words_.data(),
                             diff->words_.data(), words_.size());
    if (!diff->summary_.empty()) diff->rebuild_summary();
  } else {
    any = wk::ops().and_changed(words_.data(), other.words_.data(),
                                words_.size());
  }
  if (!summary_.empty() && any != 0) rebuild_summary();
  if (diff != nullptr) {
    diff->maybe_sparsify();
    diff->account();
  }
  maybe_sparsify();
  return any;
}

ProcSet& ProcSet::operator&=(const ProcSet& other) {
  intersect_core(other, nullptr);
  return *this;
}

bool ProcSet::intersect_changed(const ProcSet& other) {
  return intersect_core(other, nullptr) != 0;
}

bool ProcSet::intersect_diff(const ProcSet& other, ProcSet& removed) {
  return intersect_core(other, &removed) != 0;
}

void ProcSet::or_word(std::size_t w, std::uint64_t v) {
  if (v == 0) return;
  if (!sparse_) {
    words_[w] |= v;
    if (!summary_.empty()) summary_set(w);
    return;
  }
  const auto wi = static_cast<std::uint32_t>(w);
  const auto it = std::lower_bound(sidx_.begin(), sidx_.end(), wi);
  const auto pos = static_cast<std::size_t>(it - sidx_.begin());
  if (it != sidx_.end() && *it == wi) {
    sval_[pos] |= v;
    return;
  }
  sidx_.insert(it, wi);
  sval_.insert(sval_.begin() + static_cast<std::ptrdiff_t>(pos), v);
}

void ProcSet::or_word_at_sparse(std::size_t w, std::uint64_t v) {
  or_word(w, v);
  if (sparse_) {
    maybe_densify_for_growth(sidx_.size());
    account();
  }
}

ProcSet& ProcSet::or_assign_slow(const ProcSet& other) {
  if (other.sparse_) {
    for (std::size_t i = 0; i < other.sidx_.size(); ++i) {
      or_word(other.sidx_[i], other.sval_[i]);
    }
    if (sparse_) {
      maybe_densify_for_growth(sidx_.size());
      account();
    }
    return *this;
  }
  if (sparse_) densify();
  wk::ops().or_inplace(words_.data(), other.words_.data(), words_.size());
  if (!summary_.empty()) {
    if (other.summary_.size() == summary_.size()) {
      for (std::size_t s = 0; s < summary_.size(); ++s) {
        summary_[s] |= other.summary_[s];
      }
    } else {
      rebuild_summary();
    }
  }
  return *this;
}

ProcSet& ProcSet::operator-=(const ProcSet& other) {
  SSKEL_REQUIRE(n_ == other.n_);
  if (sparse_) {
    std::size_t out = 0;
    for (std::size_t i = 0; i < sidx_.size(); ++i) {
      const std::uint64_t after = sval_[i] & ~other.word_at(sidx_[i]);
      if (after != 0) {
        sidx_[out] = sidx_[i];
        sval_[out] = after;
        ++out;
      }
    }
    sidx_.resize(out);
    sval_.resize(out);
    return *this;
  }
  if (other.sparse_) {
    // Only the subtrahend's active blocks can remove anything.
    for (std::size_t i = 0; i < other.sidx_.size(); ++i) {
      const std::size_t w = other.sidx_[i];
      if (words_[w] == 0) continue;
      words_[w] &= ~other.sval_[i];
      if (!summary_.empty() && words_[w] == 0) summary_clear(w);
    }
    maybe_sparsify();
    return *this;
  }
  if (!summary_.empty() && active_words() * 4 <= words_.size()) {
    walk_blocks(summary_, [&](std::size_t w) {
      words_[w] &= ~other.words_[w];
      if (words_[w] == 0) summary_clear(w);
      return true;
    });
    maybe_sparsify();
    return *this;
  }
  wk::ops().andnot_inplace(words_.data(), other.words_.data(), words_.size());
  if (!summary_.empty()) rebuild_summary();
  maybe_sparsify();
  return *this;
}

void ProcSet::or_and(const ProcSet& src, const ProcSet& mask) {
  SSKEL_REQUIRE(n_ == src.n_);
  SSKEL_REQUIRE(n_ == mask.n_);
  if (src.sparse_ || mask.sparse_) {
    // Walk the (smaller) sparse operand; the fold can only set bits in
    // blocks active on both sides.
    const bool walk_mask =
        !src.sparse_ ||
        (mask.sparse_ && mask.sidx_.size() < src.sidx_.size());
    const ProcSet& walk = walk_mask ? mask : src;
    const ProcSet& peer = walk_mask ? src : mask;
    for (std::size_t i = 0; i < walk.sidx_.size(); ++i) {
      const std::size_t w = walk.sidx_[i];
      or_word(w, walk.sval_[i] & peer.word_at(w));
    }
    if (sparse_) {
      maybe_densify_for_growth(sidx_.size());
      account();
    }
    return;
  }
  if (sparse_) {
    if (!src.summary_.empty() && src.summary_.size() == mask.summary_.size()) {
      for (std::size_t s = 0; s < src.summary_.size(); ++s) {
        std::uint64_t bits = src.summary_[s] & mask.summary_[s];
        while (bits != 0) {
          const auto j = static_cast<std::size_t>(std::countr_zero(bits));
          bits &= bits - 1;
          const std::size_t w = s * 64 + j;
          or_word(w, src.words_[w] & mask.words_[w]);
        }
      }
      maybe_densify_for_growth(sidx_.size());
      account();
      return;
    }
    densify();
  }
  wk::ops().or_and(words_.data(), src.words_.data(), mask.words_.data(),
                   words_.size());
  if (!summary_.empty()) rebuild_summary();
}

bool ProcSet::operator==(const ProcSet& other) const {
  if (n_ != other.n_) return false;
  if (sparse_ == other.sparse_) {
    if (sparse_) return sidx_ == other.sidx_ && sval_ == other.sval_;
    return words_ == other.words_;
  }
  const ProcSet& s = sparse_ ? *this : other;
  const ProcSet& d = sparse_ ? other : *this;
  std::size_t i = 0;
  for (std::size_t w = 0; w < d.words_.size(); ++w) {
    std::uint64_t expected = 0;
    if (i < s.sidx_.size() && s.sidx_[i] == w) {
      expected = s.sval_[i];
      ++i;
    }
    if (d.words_[w] != expected) return false;
  }
  return i == s.sidx_.size();
}

ProcId ProcSet::first_slow() const {
  if (sparse_) {
    if (sidx_.empty()) return -1;
    return word_bit_to_proc(sidx_[0], sval_[0]);
  }
  // Dense with a summary tier (the summary-free dense case resolved
  // inline).
  ProcId found = -1;
  walk_blocks(summary_, [&](std::size_t w) {
    found = word_bit_to_proc(w, words_[w]);
    return false;  // first active block wins
  });
  return found;
}

ProcId ProcSet::next_after_slow(ProcId q) const {
  const std::size_t wq = word(q);
  const std::uint64_t low_mask = ~std::uint64_t{0} << bit(q);
  if (sparse_) {
    const auto it = std::lower_bound(sidx_.begin(), sidx_.end(),
                                     static_cast<std::uint32_t>(wq));
    std::size_t i = static_cast<std::size_t>(it - sidx_.begin());
    if (i < sidx_.size() && sidx_[i] == wq) {
      const std::uint64_t v = sval_[i] & low_mask;
      if (v != 0) return word_bit_to_proc(wq, v);
      ++i;
    }
    if (i >= sidx_.size()) return -1;
    return word_bit_to_proc(sidx_[i], sval_[i]);
  }
  {
    const std::uint64_t v = words_[wq] & low_mask;
    if (v != 0) return word_bit_to_proc(wq, v);
  }
  if (!summary_.empty()) {
    // Skip straight to the next active block via the summary tier.
    std::size_t from = wq + 1;
    if (from >= words_.size()) return -1;
    std::size_t s = from / 64;
    std::uint64_t bits = summary_[s] & (~std::uint64_t{0} << (from % 64));
    while (true) {
      if (bits != 0) {
        const auto j = static_cast<std::size_t>(std::countr_zero(bits));
        const std::size_t w = s * 64 + j;
        return word_bit_to_proc(w, words_[w]);
      }
      if (++s >= summary_.size()) return -1;
      bits = summary_[s];
    }
  }
  for (std::size_t w = wq + 1; w < words_.size(); ++w) {
    if (words_[w] != 0) return word_bit_to_proc(w, words_[w]);
  }
  return -1;
}

std::vector<ProcId> ProcSet::to_vector() const {
  std::vector<ProcId> out;
  out.reserve(static_cast<std::size_t>(count()));
  for (ProcId p : *this) out.push_back(p);
  return out;
}

std::string ProcSet::to_string() const {
  std::ostringstream os;
  os << '{';
  bool first_member = true;
  for (ProcId p : *this) {
    if (!first_member) os << ", ";
    os << 'p' << p;
    first_member = false;
  }
  os << '}';
  return os.str();
}

std::uint64_t ProcSet::hash() const {
  // FNV-1a over the nonzero (index, word) pairs: density-proportional
  // and identical across the dense, summarized, and sparse forms.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for_each_word([&](std::uint32_t w, std::uint64_t v) {
    h ^= w;
    h *= 0x100000001b3ULL;
    h ^= v;
    h *= 0x100000001b3ULL;
  });
  return h;
}

std::size_t ProcSet::active_words() const {
  if (sparse_) return sidx_.size();
  if (!summary_.empty()) {
    return static_cast<std::size_t>(
        wk::popcount(summary_.data(), summary_.size()));
  }
  std::size_t active = 0;
  for (std::uint64_t w : words_) active += (w != 0) ? 1 : 0;
  return active;
}

void ProcSet::compact() {
  if (!sparse_) maybe_sparsify();
}

void ProcSet::rebuild_summary() {
  summary_.assign((words_.size() + 63) / 64, 0);
  wk::build_summary(words_.data(), words_.size(), summary_.data());
}

void ProcSet::densify() {
  SSKEL_REQUIRE(sparse_);
  words_ = arena_acquire(word_count(n_));
  const bool summarize = word_count(n_) >= tier_threshold_words();
  if (summarize) summary_.assign((words_.size() + 63) / 64, 0);
  for (std::size_t i = 0; i < sidx_.size(); ++i) {
    words_[sidx_[i]] = sval_[i];
    if (summarize) summary_set(sidx_[i]);
  }
  sidx_ = std::vector<std::uint32_t>{};
  sval_ = std::vector<std::uint64_t>{};
  sparse_ = false;
  account();
}

void ProcSet::sparsify() {
  SSKEL_REQUIRE(!sparse_);
  const std::size_t active = active_words();
  sidx_.clear();
  sval_.clear();
  sidx_.reserve(active);
  sval_.reserve(active);
  for_each_word([&](std::uint32_t w, std::uint64_t v) {
    sidx_.push_back(w);
    sval_.push_back(v);
  });
  arena_release(std::move(words_));
  words_ = std::vector<std::uint64_t>{};
  summary_ = std::vector<std::uint64_t>{};
  sparse_ = true;
  account();
}

void ProcSet::maybe_sparsify() {
  if (sparse_ || !tiered()) return;
  // Adopt the block list once at most 1/8 of the payload is active;
  // re-densification waits for 1/4 (hysteresis against flapping).
  if (active_words() * 8 <= words_.size()) sparsify();
}

void ProcSet::maybe_densify_for_growth(std::size_t projected_blocks) {
  if (!sparse_) return;
  if (projected_blocks * 4 > word_count(n_)) densify();
}

void ProcSet::trim() {
  const unsigned rem = static_cast<unsigned>(n_) % kBits;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (std::uint64_t{1} << rem) - 1;
  }
}

bool for_each_subset(const ProcSet& universe_members, int k,
                     const std::function<bool(const ProcSet&)>& fn) {
  SSKEL_REQUIRE(k >= 0);
  const std::vector<ProcId> members = universe_members.to_vector();
  const int m = static_cast<int>(members.size());
  if (k > m) return true;  // no subsets to visit

  // Standard lexicographic k-combination walk over the member list.
  std::vector<int> idx(static_cast<std::size_t>(k));
  std::iota(idx.begin(), idx.end(), 0);
  while (true) {
    ProcSet subset(universe_members.universe());
    for (int i : idx) subset.insert(members[static_cast<std::size_t>(i)]);
    if (!fn(subset)) return false;

    // Advance to the next combination.
    int i = k - 1;
    while (i >= 0 && idx[static_cast<std::size_t>(i)] == m - k + i) --i;
    if (i < 0) return true;
    ++idx[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < k; ++j) {
      idx[static_cast<std::size_t>(j)] =
          idx[static_cast<std::size_t>(j - 1)] + 1;
    }
  }
}

}  // namespace sskel
