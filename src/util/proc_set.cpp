#include "util/proc_set.hpp"

#include <bit>
#include <numeric>
#include <sstream>

namespace sskel {

ProcSet ProcSet::full(ProcId n) {
  ProcSet s(n);
  std::fill(s.words_.begin(), s.words_.end(), ~std::uint64_t{0});
  s.trim();
  return s;
}

ProcSet ProcSet::singleton(ProcId n, ProcId p) {
  ProcSet s(n);
  s.insert(p);
  return s;
}

ProcSet ProcSet::of(ProcId n, std::initializer_list<ProcId> members) {
  ProcSet s(n);
  for (ProcId p : members) s.insert(p);
  return s;
}

int ProcSet::count() const {
  int c = 0;
  for (std::uint64_t w : words_) c += std::popcount(w);
  return c;
}

bool ProcSet::empty() const {
  for (std::uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

bool ProcSet::is_subset_of(const ProcSet& other) const {
  SSKEL_REQUIRE(n_ == other.n_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  }
  return true;
}

bool ProcSet::intersects(const ProcSet& other) const {
  SSKEL_REQUIRE(n_ == other.n_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & other.words_[i]) != 0) return true;
  }
  return false;
}

ProcSet& ProcSet::operator&=(const ProcSet& other) {
  SSKEL_REQUIRE(n_ == other.n_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

bool ProcSet::intersect_changed(const ProcSet& other) {
  SSKEL_REQUIRE(n_ == other.n_);
  std::uint64_t removed = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    const std::uint64_t before = words_[i];
    const std::uint64_t after = before & other.words_[i];
    removed |= before ^ after;
    words_[i] = after;
  }
  return removed != 0;
}

bool ProcSet::intersect_diff(const ProcSet& other, ProcSet& removed) {
  SSKEL_REQUIRE(n_ == other.n_);
  SSKEL_REQUIRE(removed.n_ == n_);
  std::uint64_t any = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    const std::uint64_t before = words_[i];
    const std::uint64_t after = before & other.words_[i];
    const std::uint64_t gone = before ^ after;
    removed.words_[i] = gone;
    any |= gone;
    words_[i] = after;
  }
  return any != 0;
}

ProcSet& ProcSet::operator|=(const ProcSet& other) {
  SSKEL_REQUIRE(n_ == other.n_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

ProcSet& ProcSet::operator-=(const ProcSet& other) {
  SSKEL_REQUIRE(n_ == other.n_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  return *this;
}

ProcId ProcSet::first() const {
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] != 0) {
      return static_cast<ProcId>(i * kBits +
                                 static_cast<std::size_t>(
                                     std::countr_zero(words_[i])));
    }
  }
  return -1;
}

ProcId ProcSet::next_after(ProcId p) const {
  ProcId q = p < 0 ? 0 : p + 1;
  if (q >= n_) return -1;
  std::size_t wi = word(q);
  std::uint64_t w = words_[wi] & (~std::uint64_t{0} << bit(q));
  while (true) {
    if (w != 0) {
      return static_cast<ProcId>(wi * kBits +
                                 static_cast<std::size_t>(std::countr_zero(w)));
    }
    if (++wi >= words_.size()) return -1;
    w = words_[wi];
  }
}

std::vector<ProcId> ProcSet::to_vector() const {
  std::vector<ProcId> out;
  out.reserve(static_cast<std::size_t>(count()));
  for (ProcId p : *this) out.push_back(p);
  return out;
}

std::string ProcSet::to_string() const {
  std::ostringstream os;
  os << '{';
  bool first_member = true;
  for (ProcId p : *this) {
    if (!first_member) os << ", ";
    os << 'p' << p;
    first_member = false;
  }
  os << '}';
  return os.str();
}

std::uint64_t ProcSet::hash() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint64_t w : words_) {
    h ^= w;
    h *= 0x100000001b3ULL;
  }
  return h;
}

void ProcSet::trim() {
  const unsigned rem = static_cast<unsigned>(n_) % kBits;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (std::uint64_t{1} << rem) - 1;
  }
}

bool for_each_subset(const ProcSet& universe_members, int k,
                     const std::function<bool(const ProcSet&)>& fn) {
  SSKEL_REQUIRE(k >= 0);
  const std::vector<ProcId> members = universe_members.to_vector();
  const int m = static_cast<int>(members.size());
  if (k > m) return true;  // no subsets to visit

  // Standard lexicographic k-combination walk over the member list.
  std::vector<int> idx(static_cast<std::size_t>(k));
  std::iota(idx.begin(), idx.end(), 0);
  while (true) {
    ProcSet subset(universe_members.universe());
    for (int i : idx) subset.insert(members[static_cast<std::size_t>(i)]);
    if (!fn(subset)) return false;

    // Advance to the next combination.
    int i = k - 1;
    while (i >= 0 && idx[static_cast<std::size_t>(i)] == m - k + i) --i;
    if (i < 0) return true;
    ++idx[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < k; ++j) {
      idx[static_cast<std::size_t>(j)] = idx[static_cast<std::size_t>(j - 1)] + 1;
    }
  }
}

}  // namespace sskel
