// Recoverable decode errors for untrusted bytes.
//
// Captures are meant to be shared: attached to CI failures, passed
// around as bug reports, and fed back to fuzzers as corpora. A decoder
// facing those bytes must be able to *reject* them — gracefully,
// distinguishably from a crash — where the in-process codecs are
// entitled to SSKEL_REQUIRE on their own output. DecodeResult<T> is
// the expected-style channel every untrusted-byte decoder returns, and
// ByteReader is the bounds-checked cursor they share: every read is
// checked against the remaining bytes (never `pos + k <= size`, which
// wraps), varints are strict ULEB128 (canonical, in-range), and any
// failure carries the byte offset where decoding stopped.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "util/assert.hpp"
#include "util/varint.hpp"

namespace sskel {

/// Why a decode rejected its input. kOk never appears in a
/// DecodeError that reaches a caller.
enum class DecodeStatus : std::uint8_t {
  kOk = 0,
  /// Input ended inside a field (including inside a varint).
  kTruncated,
  /// Varint used more bytes than its value needs (non-canonical), so
  /// two distinct byte strings would decode to one value.
  kOverlongVarint,
  /// Varint encodes a value outside 64 bits.
  kVarintOverflow,
  /// A decoded value is outside its field's legal range (e.g. an `n`
  /// that does not fit ProcId, a zero round count, a frame kind byte
  /// with no meaning).
  kValueOutOfRange,
  /// A size or count field demands more payload than the bytes that
  /// remain can possibly hold.
  kLimitExceeded,
  /// An edge references a node absent from the graph's node bitmap.
  kInvalidEdge,
  /// Trace container: wrong magic bytes.
  kBadMagic,
  /// Trace container: unsupported format version.
  kBadVersion,
  /// Trace container: malformed frame structure (unknown frame type,
  /// payload length mismatch, frame out of order, missing/duplicate
  /// required frame).
  kBadFrame,
  /// Bytes remain after the last legal field/frame.
  kTrailingBytes,
};

/// Universe ceiling for untrusted decodes. Decoders validate a
/// claimed `n` against this *before* sizing anything by it: a Digraph
/// allocates O(n) row objects even when empty, so an unchecked header
/// could demand gigabytes off a few bytes of input. 2x past the
/// n = 65,536 kernel scale (DESIGN.md §11); raise it alongside the
/// kernel, not ad hoc.
inline constexpr std::uint64_t kMaxDecodeUniverse = 1u << 17;

[[nodiscard]] constexpr const char* decode_status_name(DecodeStatus s) {
  switch (s) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kTruncated: return "truncated";
    case DecodeStatus::kOverlongVarint: return "overlong varint";
    case DecodeStatus::kVarintOverflow: return "varint overflow";
    case DecodeStatus::kValueOutOfRange: return "value out of range";
    case DecodeStatus::kLimitExceeded: return "limit exceeded";
    case DecodeStatus::kInvalidEdge: return "invalid edge";
    case DecodeStatus::kBadMagic: return "bad magic";
    case DecodeStatus::kBadVersion: return "bad version";
    case DecodeStatus::kBadFrame: return "bad frame";
    case DecodeStatus::kTrailingBytes: return "trailing bytes";
  }
  return "unknown";
}

/// One rejection: what went wrong, where in the input, and (when the
/// status alone is ambiguous) which field was being decoded.
struct DecodeError {
  DecodeStatus status = DecodeStatus::kOk;
  /// Byte offset in the input where decoding stopped.
  std::size_t offset = 0;
  /// Static context string ("run n", "frame length", ...); never
  /// owning, so errors are cheap to construct and copy.
  const char* field = "";

  [[nodiscard]] std::string to_string() const {
    std::string s = decode_status_name(status);
    if (field[0] != '\0') {
      s += " (";
      s += field;
      s += ")";
    }
    s += " at byte ";
    s += std::to_string(offset);
    return s;
  }
};

/// Expected-style result of decoding untrusted bytes: either a value
/// or a DecodeError, never both. Accessors enforce the discriminant so
/// misuse fails loudly instead of reading a moved-from default.
template <typename T>
class DecodeResult {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): ok-path conversions
  // keep decoder code readable (`return capture;`).
  DecodeResult(T value) : value_(std::move(value)), ok_(true) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  DecodeResult(DecodeError error) : error_(error) {
    SSKEL_REQUIRE(error.status != DecodeStatus::kOk);
  }

  [[nodiscard]] bool ok() const { return ok_; }
  explicit operator bool() const { return ok_; }

  [[nodiscard]] T& value() {
    SSKEL_REQUIRE(ok_);
    return value_;
  }
  [[nodiscard]] const T& value() const {
    SSKEL_REQUIRE(ok_);
    return value_;
  }

  [[nodiscard]] const DecodeError& error() const {
    SSKEL_REQUIRE(!ok_);
    return error_;
  }

 private:
  T value_{};
  DecodeError error_{};
  bool ok_ = false;
};

/// Bounds-checked cursor over untrusted bytes. All reads either
/// succeed and advance, or fail (returning false) and record the error
/// without advancing past the failure point. Overflow-safe by
/// construction: limits are always expressed as "remaining bytes",
/// never as `pos + k` sums that can wrap.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
  [[nodiscard]] bool at_end() const { return pos_ == size_; }
  [[nodiscard]] const DecodeError& error() const { return error_; }

  /// Raw pointer to the next `n` bytes; call only after a successful
  /// require_bytes(n).
  [[nodiscard]] const std::uint8_t* cursor() const { return data_ + pos_; }

  void skip(std::size_t n) {
    SSKEL_ASSERT(n <= remaining());
    pos_ += n;
  }

  [[nodiscard]] bool fail(DecodeStatus status, const char* field) {
    error_ = DecodeError{status, pos_, field};
    return false;
  }

  /// Checks that `n` more bytes exist (no cursor movement).
  [[nodiscard]] bool require_bytes(std::size_t n, const char* field) {
    if (n > remaining()) return fail(DecodeStatus::kTruncated, field);
    return true;
  }

  [[nodiscard]] bool read_u8(std::uint8_t& out, const char* field) {
    if (!require_bytes(1, field)) return false;
    out = data_[pos_++];
    return true;
  }

  /// Strict ULEB128: rejects truncation, overflow past 64 bits, and
  /// non-canonical (overlong) encodings.
  [[nodiscard]] bool read_varint(std::uint64_t& out, const char* field) {
    const std::size_t start = pos_;
    switch (try_get_varint(data_, size_, pos_, out)) {
      case VarintStatus::kOk:
        return true;
      case VarintStatus::kTruncated:
        pos_ = start;
        return fail(DecodeStatus::kTruncated, field);
      case VarintStatus::kOverflow:
        pos_ = start;
        return fail(DecodeStatus::kVarintOverflow, field);
      case VarintStatus::kOverlong:
        pos_ = start;
        return fail(DecodeStatus::kOverlongVarint, field);
    }
    return false;  // unreachable
  }

  /// Varint constrained to [0, max]; `max` is the field's semantic
  /// ceiling (e.g. INT32_MAX for a ProcId count), checked *before* any
  /// narrowing cast so hostile wide values cannot alias narrow ones.
  [[nodiscard]] bool read_varint_max(std::uint64_t& out, std::uint64_t max,
                                     const char* field) {
    const std::size_t start = pos_;
    if (!read_varint(out, field)) return false;
    if (out > max) {
      pos_ = start;
      return fail(DecodeStatus::kValueOutOfRange, field);
    }
    return true;
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  DecodeError error_{};
};

}  // namespace sskel
