// ASCII table and CSV rendering for experiment harnesses.
//
// Every bench binary prints its results as an aligned ASCII table (the
// "rows the paper would report") and can optionally dump the same rows
// as CSV for downstream plotting. Cells are strings; formatting of
// numbers is the caller's concern (see cell() helpers).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace sskel {

/// Formats a double with fixed precision (no trailing-zero trimming, so
/// columns align).
[[nodiscard]] std::string cell(double v, int precision = 2);
[[nodiscard]] std::string cell(std::int64_t v);
[[nodiscard]] std::string cell(int v);
[[nodiscard]] std::string cell(std::size_t v);

/// A titled table with a fixed header row and appended data rows.
class Table {
 public:
  Table(std::string title, std::vector<std::string> header);

  /// Appends a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> row);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Pretty-prints with column alignment, a title banner, and a rule
  /// under the header.
  void print(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (quotes cells containing commas/quotes).
  void write_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sskel
