// Physical CPU topology: sysfs probe + physical-core-first placement.
//
// The tile plane pins worker tiles to CPUs (net/tile.hpp). Naive
// pinning — tile i to CPU i mod hardware_concurrency — lands two busy
// tiles on the two hyperthreads of one physical core while whole cores
// idle, because Linux numbers SMT siblings after all primaries on some
// machines and interleaved on others. This module reads the kernel's
// own map (/sys/devices/system/cpu/cpu*/topology/) and plans
// placements that fill distinct physical cores first, falling back to
// SMT siblings only when every core already carries a tile.
//
// The sysfs probe is Linux-only and never fatal: on any other OS, a
// stripped container, or an unreadable sysfs it synthesizes a flat
// one-thread-per-core topology from hardware_concurrency, which makes
// physical-core-first placement degrade to the old i-mod-hw order.
// Everything below the probe is pure and unit-tested on synthetic
// topologies (tests/util/topology_test.cpp).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace sskel {

/// One logical CPU and the physical core/package carrying it.
struct CpuSlot {
  int cpu = 0;      // logical CPU id (the id sched_setaffinity takes)
  int core = 0;     // topology/core_id
  int package = 0;  // topology/physical_package_id
};

struct CpuTopology {
  /// Online logical CPUs, ascending by cpu id.
  std::vector<CpuSlot> cpus;
  /// True when the slots came from sysfs; false for the synthesized
  /// fallback (each logical CPU its own core).
  bool probed = false;

  [[nodiscard]] std::size_t logical_count() const { return cpus.size(); }
  /// Distinct (package, core) pairs.
  [[nodiscard]] std::size_t physical_core_count() const;
  /// True when some physical core carries more than one logical CPU.
  [[nodiscard]] bool has_smt() const {
    return physical_core_count() < logical_count();
  }
};

/// Parses a kernel cpu-list ("0-3,8,10-11") into ascending CPU ids.
/// Malformed chunks are skipped rather than fatal (a truncated sysfs
/// read should degrade, not crash).
[[nodiscard]] std::vector<int> parse_cpu_list(std::string_view text);

/// A flat topology for `logical` CPUs: cpu i on core i, package 0.
[[nodiscard]] CpuTopology fallback_topology(unsigned logical);

/// Probes /sys/devices/system/cpu; falls back to fallback_topology
/// (hardware_concurrency) off-Linux or when sysfs is unreadable.
[[nodiscard]] CpuTopology probe_cpu_topology();

/// All logical CPUs in physical-core-first order: the lowest-numbered
/// CPU of each (package, core) pair first (ascending package, core),
/// then the second SMT sibling of every core, and so on — so the first
/// physical_core_count() entries all sit on distinct cores.
[[nodiscard]] std::vector<int> physical_first_order(
    const CpuTopology& topology);

/// CPU id for each of `tiles` tiles: physical_first_order cycled when
/// tiles exceed the logical CPU count. Empty only when the topology
/// has no CPUs.
[[nodiscard]] std::vector<int> plan_tile_cpus(const CpuTopology& topology,
                                              unsigned tiles);

/// "0,2,4,1" rendering for placement maps in reports and bench JSON
/// ("" for an empty plan).
[[nodiscard]] std::string cpu_list_to_string(const std::vector<int>& cpus);

}  // namespace sskel
