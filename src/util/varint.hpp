// ULEB128 varints — shared by every binary codec in the library.
//
// Decoding is *strict*: exactly one byte string encodes each value.
// Truncated input, encodings that overflow 64 bits, and overlong
// (non-canonical) encodings whose trailing byte contributes no bits
// are all rejected — two distinct byte strings must never decode to
// the same value, or the codecs' round-trip identity (and everything
// the fuzzers assert on top of it) breaks. try_get_varint reports the
// failure for untrusted bytes; get_varint aborts, for input the caller
// already trusts (its own encoder's output).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace sskel {

/// Appends a ULEB128 varint (always canonical: minimal length).
inline void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80u);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

/// Why a strict varint read rejected its input.
enum class VarintStatus : std::uint8_t {
  kOk = 0,
  /// Input ended while a continuation bit promised more bytes.
  kTruncated,
  /// The encoding carries bits beyond the 64-bit range (a 10th byte
  /// above 0x01, or any continuation past the 10th byte).
  kOverflow,
  /// Non-canonical: the final byte is zero yet not the only byte, so
  /// a shorter encoding of the same value exists.
  kOverlong,
};

/// Strict ULEB128 read over a raw byte range. On kOk advances `pos`
/// past the encoding and sets `out`; on failure `pos` ends up at the
/// byte where the failure was detected (ByteReader rewinds it to the
/// varint's start so errors report the field's offset).
[[nodiscard]] inline VarintStatus try_get_varint(const std::uint8_t* data,
                                                 std::size_t size,
                                                 std::size_t& pos,
                                                 std::uint64_t& out) {
  std::uint64_t value = 0;
  int shift = 0;
  const std::size_t start = pos;
  while (true) {
    if (pos >= size) return VarintStatus::kTruncated;
    const std::uint8_t byte = data[pos++];
    // The 10th byte sits at shift 63: only its low payload bit fits in
    // 64 bits, and any continuation would need an 11th byte.
    if (shift == 63 && (byte & 0xfeu) != 0) return VarintStatus::kOverflow;
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      if (byte == 0 && pos - start > 1) return VarintStatus::kOverlong;
      out = value;
      return VarintStatus::kOk;
    }
    shift += 7;
  }
}

/// Reads a ULEB128 varint, advancing `pos`. Aborts on truncated,
/// overflowing, or overlong input — for bytes the caller trusts;
/// untrusted bytes go through try_get_varint / ByteReader.
[[nodiscard]] inline std::uint64_t get_varint(
    const std::vector<std::uint8_t>& in, std::size_t& pos) {
  std::uint64_t value = 0;
  const VarintStatus status = try_get_varint(in.data(), in.size(), pos, value);
  SSKEL_REQUIRE(status == VarintStatus::kOk);
  return value;
}

/// Encoded size of a varint without materializing it.
[[nodiscard]] inline int varint_size(std::uint64_t value) {
  int size = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++size;
  }
  return size;
}

}  // namespace sskel
