// ULEB128 varints — shared by every binary codec in the library.
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace sskel {

/// Appends a ULEB128 varint.
inline void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80u);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

/// Reads a ULEB128 varint, advancing `pos`. Aborts on truncation.
[[nodiscard]] inline std::uint64_t get_varint(
    const std::vector<std::uint8_t>& in, std::size_t& pos) {
  std::uint64_t value = 0;
  int shift = 0;
  while (true) {
    SSKEL_REQUIRE(pos < in.size());
    const std::uint8_t byte = in[pos++];
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
    SSKEL_REQUIRE(shift < 64);
  }
  return value;
}

/// Encoded size of a varint without materializing it.
[[nodiscard]] inline int varint_size(std::uint64_t value) {
  int size = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++size;
  }
  return size;
}

}  // namespace sskel
