#include "util/cli.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace sskel {

namespace {
[[noreturn]] void usage_error(const std::string& program,
                              const std::string& message,
                              const std::vector<std::string>& known) {
  std::fprintf(stderr, "%s: %s\n", program.c_str(), message.c_str());
  if (!known.empty()) {
    std::fprintf(stderr, "known flags:");
    for (const auto& f : known) std::fprintf(stderr, " --%s", f.c_str());
    std::fprintf(stderr, "\n");
  }
  std::exit(2);
}
}  // namespace

CliArgs::CliArgs(int argc, const char* const* argv,
                 std::vector<std::string> known_flags)
    : program_(argc > 0 ? argv[0] : "sskel") {
  auto is_known = [&](const std::string& name) {
    return std::find(known_flags.begin(), known_flags.end(), name) !=
           known_flags.end();
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    std::string name;
    std::string value;
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
    } else {
      name = body;
      // "--name value" form: consume the next token when it does not
      // itself look like a flag; otherwise treat as boolean "true".
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    if (!is_known(name)) usage_error(program_, "unknown flag --" + name,
                                     known_flags);
    values_[name] = std::move(value);
  }
}

bool CliArgs::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string CliArgs::get_string(const std::string& name,
                                const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace sskel
