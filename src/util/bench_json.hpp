// Machine-readable benchmark output (BENCH_*.json).
//
// Every experiment binary prints human-oriented tables; CI and
// downstream tooling additionally want stable, parseable records
// (op, n, k, ns/op, subsets visited, ...). BenchJson collects flat
// key/value records and writes them as one JSON document:
//
//   {
//     "bench": "micro",
//     "records": [
//       {"op": "psrcs_exact", "n": 24, "k": 3, "ns_per_op": 512.0},
//       ...
//     ]
//   }
//
// Values are int64, double, or string; insertion order is preserved
// so diffs of consecutive CI artifacts stay readable. No external
// JSON dependency — the writer emits the subset of JSON it needs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace sskel {

/// One flat JSON object of ordered key/value fields.
class BenchRecord {
 public:
  BenchRecord& set(std::string key, std::int64_t value);
  BenchRecord& set(std::string key, double value);
  BenchRecord& set(std::string key, std::string value);
  /// Convenience for the int-ish types the benches juggle.
  BenchRecord& set(std::string key, int value) {
    return set(std::move(key), static_cast<std::int64_t>(value));
  }

  void write(std::ostream& os) const;

 private:
  enum class Kind { kInt, kDouble, kString };
  struct Field {
    std::string key;
    Kind kind;
    std::int64_t int_value = 0;
    double double_value = 0.0;
    std::string string_value;
  };
  std::vector<Field> fields_;
};

/// A named collection of records, written as one JSON document.
class BenchJson {
 public:
  explicit BenchJson(std::string bench_name);

  /// Appends a record initialized with {"op": op} and returns it for
  /// chained set() calls. The reference stays valid until the next
  /// add() (vector growth) — populate it before adding more.
  BenchRecord& add(const std::string& op);

  void write(std::ostream& os) const;

  /// Writes to `path`; returns false (and writes nothing) on I/O
  /// failure. Benches warn rather than abort on failure so a
  /// read-only working directory never kills an experiment run.
  [[nodiscard]] bool write_file(const std::string& path) const;

 private:
  std::string bench_name_;
  std::vector<BenchRecord> records_;
};

}  // namespace sskel
