// Runtime-dispatched word kernels for bitset algebra.
//
// Every hot loop of the library bottoms out in straight-line algebra
// over packed 64-bit words: skeleton intersection, removal-diff
// materialization, masked BFS folds, subset tests. At n = 65,536 a
// single dense row is 1024 words and one complete-graph intersection
// sweep touches gigabytes, so those loops are worth explicit SIMD.
// This header exposes one dispatch table of C-style kernels with three
// implementations — portable scalar, AVX2 (4 words per op), and
// AVX-512F (8 words per op) — selected once at startup from CPUID,
// overridable via the SSKEL_SIMD environment variable
// (auto/scalar/avx2/avx512, mirroring SSKEL_THREADS) and via force()
// so the equivalence tests can run every supported path.
//
// Kernels are deliberately representation-free: they see raw word
// spans, not ProcSets. The tiered ProcSet calls them on its dense
// payload; sparse blocks go through per-word scalar merges where SIMD
// has nothing to add.
#pragma once

#include <cstddef>
#include <cstdint>

namespace sskel::wk {

/// Instruction-set tiers, ordered by preference.
enum class Simd { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// One dispatchable kernel set. All spans are `nw` words long;
/// overlapping spans are not supported (callers pass distinct
/// buffers or dst == a style in-place forms as documented per field).
struct Kernels {
  /// dst &= src.
  void (*and_inplace)(std::uint64_t* dst, const std::uint64_t* src,
                      std::size_t nw);
  /// dst &= src; returns the OR of all removed bits (nonzero iff the
  /// AND cleared anything).
  std::uint64_t (*and_changed)(std::uint64_t* dst, const std::uint64_t* src,
                               std::size_t nw);
  /// dst &= src; diff[i] receives the bits removed from dst[i];
  /// returns the OR of all removed bits.
  std::uint64_t (*and_diff)(std::uint64_t* dst, const std::uint64_t* src,
                            std::uint64_t* diff, std::size_t nw);
  /// dst |= src.
  void (*or_inplace)(std::uint64_t* dst, const std::uint64_t* src,
                     std::size_t nw);
  /// dst |= a & b — the fused masked-BFS fold (frontier row ANDed with
  /// the member mask, ORed into the visited accumulator, one pass).
  void (*or_and)(std::uint64_t* dst, const std::uint64_t* a,
                 const std::uint64_t* b, std::size_t nw);
  /// dst &= ~src.
  void (*andnot_inplace)(std::uint64_t* dst, const std::uint64_t* src,
                         std::size_t nw);
  /// (a & ~b) == 0 over the span.
  bool (*subset)(const std::uint64_t* a, const std::uint64_t* b,
                 std::size_t nw);
  /// (a & b) != 0 anywhere in the span.
  bool (*intersects)(const std::uint64_t* a, const std::uint64_t* b,
                     std::size_t nw);
};

/// The active kernel table (resolved on first use: SSKEL_SIMD when
/// set and supported, otherwise the best CPUID-supported tier).
[[nodiscard]] const Kernels& ops();

/// The kernel table of a specific tier (for the SIMD-vs-scalar
/// equivalence tests). Requires supported(kind).
[[nodiscard]] const Kernels& ops_for(Simd kind);

/// Currently active tier.
[[nodiscard]] Simd active();

/// Whether this CPU can run `kind`.
[[nodiscard]] bool supported(Simd kind);

/// Best tier this CPU supports.
[[nodiscard]] Simd best_supported();

/// Forces the active tier (tests / benches). Requires supported(kind).
void force(Simd kind);

/// "scalar" / "avx2" / "avx512".
[[nodiscard]] const char* name(Simd kind);

/// Parses an SSKEL_SIMD value: "auto" yields best_supported();
/// "scalar"/"avx2"/"avx512" name a tier. Returns false (out
/// untouched) on unknown text.
[[nodiscard]] bool parse(const char* text, Simd& out);

/// c += popcount(w[0..nw)). Scalar on purpose: hardware popcnt
/// saturates one per cycle and the loop is memory-bound.
[[nodiscard]] std::int64_t popcount(const std::uint64_t* w, std::size_t nw);

/// summary[s] bit j = (words[s*64 + j] != 0), for ceil(nw/64) summary
/// words; trailing summary bits beyond nw are zero.
void build_summary(const std::uint64_t* words, std::size_t nw,
                   std::uint64_t* summary);

}  // namespace sskel::wk
