// Minimal command-line flag parsing for examples and bench harnesses.
//
// Supports "--name=value", "--name value", and bare "--flag" booleans.
// Unknown flags are an error (fail fast beats silently ignoring a typo
// in an experiment sweep). Positional arguments are collected in order.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sskel {

class CliArgs {
 public:
  /// Parses argv; exits with a message on malformed input.
  CliArgs(int argc, const char* const* argv,
          std::vector<std::string> known_flags);

  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace sskel
