// Lightweight contract checking for libsskel.
//
// SSKEL_ASSERT checks internal invariants; SSKEL_REQUIRE checks caller
// preconditions on public APIs. Both are active in every build type:
// this library backs correctness experiments for a theory paper, so a
// silently wrong answer is strictly worse than a crash. The cost is a
// predictable branch per check and is invisible next to the O(n^2)
// per-round graph work.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace sskel::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "sskel: %s failed: %s (%s:%d)\n", kind, expr, file,
               line);
  std::abort();
}

}  // namespace sskel::detail

#define SSKEL_ASSERT(expr)                                                  \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::sskel::detail::contract_failure("assertion", #expr, __FILE__,       \
                                        __LINE__);                          \
    }                                                                       \
  } while (false)

#define SSKEL_REQUIRE(expr)                                                 \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::sskel::detail::contract_failure("precondition", #expr, __FILE__,    \
                                        __LINE__);                          \
    }                                                                       \
  } while (false)
