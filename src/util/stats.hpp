// Small descriptive-statistics helpers for experiment harnesses.
//
// Benches accumulate per-run observations (decision rounds, message
// bits, root-component counts, ...) into Accumulator objects and report
// summary rows; the math here is intentionally simple and allocation
// free on the hot path (Welford online mean/variance).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace sskel {

/// Online mean / variance / extrema accumulator (Welford).
class Accumulator {
 public:
  /// The complete internal state, exposed for bit-exact serialization
  /// (the campaign checkpoint codec): restoring from a state and
  /// continuing to add() is indistinguishable from never having
  /// paused. min/max keep their empty-state infinities so an empty
  /// accumulator round-trips exactly.
  struct State {
    std::int64_t count = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  void add(double x);

  [[nodiscard]] State state() const {
    return State{count_, mean_, m2_, sum_, min_, max_};
  }

  /// Rebuilds an accumulator mid-stream from a previously captured
  /// state. Trusted input: callers validating hostile bytes do so
  /// before constructing the State.
  [[nodiscard]] static Accumulator from_state(const State& s) {
    Accumulator a;
    a.count_ = s.count;
    a.mean_ = s.mean;
    a.m2_ = s.m2;
    a.sum_ = s.sum;
    a.min_ = s.min;
    a.max_ = s.max;
    return a;
  }

  [[nodiscard]] std::int64_t count() const { return count_; }
  /// sum/count, not the Welford running mean: the running mean
  /// accumulates one rounding error per sample, which leaked digits
  /// like `296.2000000000001` into bench JSON for integer-valued
  /// observations. The compensated-by-construction sum quotient is
  /// exact whenever the sum is exactly representable (all integer
  /// samples) and at worst one rounding away otherwise. The Welford
  /// state still backs variance(), where it is numerically superior.
  [[nodiscard]] double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  /// "mean ± stddev [min, max]" rendering for table cells.
  [[nodiscard]] std::string summary(int precision = 2) const;

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Percentile over a *copy* of the samples (nearest-rank). q in [0,100].
[[nodiscard]] double percentile(std::vector<double> samples, double q);

/// Simple integer histogram keyed by exact value; used to report
/// distributions of small counts (distinct decision values, root
/// components).
class IntHistogram {
 public:
  void add(std::int64_t value);
  [[nodiscard]] std::int64_t count(std::int64_t value) const;
  /// Sorted (value, count) pairs — the histogram's full state, exposed
  /// for bit-exact serialization.
  [[nodiscard]] const std::vector<std::pair<std::int64_t, std::int64_t>>&
  buckets() const {
    return buckets_;
  }
  /// Rebuilds a histogram from bucket pairs. Requires strictly
  /// ascending values and positive counts (hostile-byte decoders
  /// validate before calling); the total is recomputed.
  [[nodiscard]] static IntHistogram from_buckets(
      std::vector<std::pair<std::int64_t, std::int64_t>> buckets);
  [[nodiscard]] std::int64_t total() const { return total_; }
  [[nodiscard]] std::int64_t min_value() const;
  [[nodiscard]] std::int64_t max_value() const;
  /// "v:count v:count ..." ascending by value.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::pair<std::int64_t, std::int64_t>> buckets_;  // sorted
  std::int64_t total_ = 0;
};

}  // namespace sskel
