#include "util/topology.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

namespace sskel {

namespace {

// Whole-file slurp; empty optional-style "" on any failure. Sysfs
// topology files are one short line, so this never allocates much.
std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// First integer in `text`, or `fallback` when none parses.
int parse_int_or(std::string_view text, int fallback) {
  std::size_t begin = text.find_first_of("0123456789-");
  if (begin == std::string_view::npos) return fallback;
  int value = fallback;
  const char* first = text.data() + begin;
  const char* last = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{}) return fallback;
  (void)ptr;
  return value;
}

}  // namespace

std::size_t CpuTopology::physical_core_count() const {
  std::set<std::pair<int, int>> cores;
  for (const CpuSlot& slot : cpus) cores.emplace(slot.package, slot.core);
  return cores.size();
}

std::vector<int> parse_cpu_list(std::string_view text) {
  std::vector<int> cpus;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    std::string_view chunk = text.substr(
        pos, comma == std::string_view::npos ? std::string_view::npos
                                             : comma - pos);
    pos = comma == std::string_view::npos ? text.size() : comma + 1;
    // Trim whitespace/newlines around the chunk.
    while (!chunk.empty() &&
           (chunk.front() == ' ' || chunk.front() == '\n' ||
            chunk.front() == '\t' || chunk.front() == '\r')) {
      chunk.remove_prefix(1);
    }
    while (!chunk.empty() &&
           (chunk.back() == ' ' || chunk.back() == '\n' ||
            chunk.back() == '\t' || chunk.back() == '\r')) {
      chunk.remove_suffix(1);
    }
    if (chunk.empty()) continue;
    int lo = 0;
    const char* first = chunk.data();
    const char* last = chunk.data() + chunk.size();
    auto [after_lo, ec_lo] = std::from_chars(first, last, lo);
    if (ec_lo != std::errc{} || lo < 0) continue;
    int hi = lo;
    if (after_lo != last) {
      if (*after_lo != '-') continue;
      auto [after_hi, ec_hi] = std::from_chars(after_lo + 1, last, hi);
      if (ec_hi != std::errc{} || after_hi != last || hi < lo) continue;
    }
    for (int cpu = lo; cpu <= hi; ++cpu) cpus.push_back(cpu);
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

CpuTopology fallback_topology(unsigned logical) {
  if (logical == 0) logical = 1;
  CpuTopology topology;
  topology.cpus.reserve(logical);
  for (unsigned cpu = 0; cpu < logical; ++cpu) {
    topology.cpus.push_back(
        CpuSlot{static_cast<int>(cpu), static_cast<int>(cpu), 0});
  }
  topology.probed = false;
  return topology;
}

CpuTopology probe_cpu_topology() {
#if defined(__linux__)
  const std::string base = "/sys/devices/system/cpu";
  std::vector<int> online = parse_cpu_list(read_file(base + "/online"));
  if (!online.empty()) {
    CpuTopology topology;
    topology.cpus.reserve(online.size());
    for (int cpu : online) {
      const std::string dir = base + "/cpu" + std::to_string(cpu) +
                              "/topology";
      // Missing per-cpu files degrade that slot to its own core
      // (core_id = cpu) rather than failing the whole probe.
      int core = parse_int_or(read_file(dir + "/core_id"), cpu);
      int package =
          parse_int_or(read_file(dir + "/physical_package_id"), 0);
      topology.cpus.push_back(CpuSlot{cpu, core, package});
    }
    topology.probed = true;
    return topology;
  }
#endif
  return fallback_topology(std::thread::hardware_concurrency());
}

std::vector<int> physical_first_order(const CpuTopology& topology) {
  // Group SMT siblings per (package, core); map iteration gives the
  // ascending package-then-core order the contract promises, and
  // slots arrive ascending by cpu id so sibling lists stay sorted.
  std::map<std::pair<int, int>, std::vector<int>> cores;
  for (const CpuSlot& slot : topology.cpus) {
    cores[{slot.package, slot.core}].push_back(slot.cpu);
  }
  std::vector<int> order;
  order.reserve(topology.cpus.size());
  for (std::size_t lane = 0; order.size() < topology.cpus.size(); ++lane) {
    for (const auto& [key, siblings] : cores) {
      (void)key;
      if (lane < siblings.size()) order.push_back(siblings[lane]);
    }
  }
  return order;
}

std::vector<int> plan_tile_cpus(const CpuTopology& topology,
                                unsigned tiles) {
  std::vector<int> order = physical_first_order(topology);
  std::vector<int> plan;
  if (order.empty() || tiles == 0) return plan;
  plan.reserve(tiles);
  for (unsigned tile = 0; tile < tiles; ++tile) {
    plan.push_back(order[tile % order.size()]);
  }
  return plan;
}

std::string cpu_list_to_string(const std::vector<int>& cpus) {
  std::string out;
  for (std::size_t i = 0; i < cpus.size(); ++i) {
    if (i != 0) out.push_back(',');
    out += std::to_string(cpus[i]);
  }
  return out;
}

}  // namespace sskel
