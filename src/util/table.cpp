#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace sskel {

std::string cell(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string cell(std::int64_t v) { return std::to_string(v); }
std::string cell(int v) { return std::to_string(v); }
std::string cell(std::size_t v) { return std::to_string(v); }

Table::Table(std::string title, std::vector<std::string> header)
    : title_(std::move(title)), header_(std::move(header)) {
  SSKEL_REQUIRE(!header_.empty());
}

void Table::add_row(std::vector<std::string> row) {
  SSKEL_REQUIRE(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  os << "== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::left
         << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
  os << '\n';
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::write_csv(std::ostream& os) const {
  auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
}

}  // namespace sskel
