// ProcSet: a tiered, fixed-universe set of process ids.
//
// The whole library is built on per-round set algebra over Pi (the
// process universe): timely neighborhoods PT(p, r) shrink by
// intersection (Eq. (3)), skeletons are intersections of edge sets, and
// predicates quantify over (k+1)-subsets. A word-packed bitset makes
// every one of those operations O(n/64) — fine up to a few hundred
// processes, but at n = 65,536 a single row is 1024 words and a round
// of row intersections touches O(n^2/64) words even when the skeleton
// has long decayed to near-diagonal. ProcSet therefore tiers its
// representation by universe size and density:
//
//   * small universes (below the tier threshold, default 32 words /
//     n < 2048): the original flat dense bitset, bit for bit;
//   * large universes, dense form: the flat payload plus a *summary
//     tier* — one bit per payload word (so one summary word covers
//     64 * 64 = 4096 processes) kept exactly in sync; iteration and
//     shrink operations walk only summary-active blocks, and bulk
//     dense sweeps dispatch to the SIMD word kernels
//     (util/word_kernels.hpp);
//   * large universes, sparse form: once a shrink leaves at most
//     1/8 of the payload words nonzero, the payload is dropped for a
//     sorted (word-index, word) block list — CSR-style — so storage
//     and every subsequent operation cost O(active blocks). Sets
//     convert back to dense automatically when they grow past 1/4 of
//     the payload words (hysteresis avoids flapping).
//
// The representation is invisible through the public API: all
// operations, iteration order, equality, and hash() are
// representation-independent, and the randomized tier-equivalence
// suite (tests/util/proc_set_tier_test.cpp) pins dense and tiered
// builds bit-for-bit against each other. Benchmarks pin a mode via
// ScopedTierPolicy to measure tiered-vs-dense honestly.
//
// Memory accounting: every ProcSet maintains its heap footprint in
// process-wide live/peak counters (ProcSet::live_bytes() /
// peak_bytes()), the backbone of the per-run memory story at
// n = 65,536 surfaced through McSummary and the scale bench JSON.
#pragma once

#include <algorithm>
#include <bit>
#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/assert.hpp"
#include "util/types.hpp"

namespace sskel {

/// A subset of a fixed process universe {0, .., n-1}.
///
/// All binary operations require both operands to share the same
/// universe size; this is a precondition, not a silent resize.
class ProcSet {
 public:
  /// Representation policy, process-wide. kAuto is the production
  /// mode; kDenseOnly forces the flat dense payload everywhere (no
  /// sparse adoption, no summary-guided skipping) and exists so the
  /// scale benchmarks can measure tiered-vs-dense on identical
  /// workloads and the equivalence tests can pin bit-equality.
  enum class TierPolicy { kAuto, kDenseOnly };

  static void set_tier_policy(TierPolicy policy);
  [[nodiscard]] static TierPolicy tier_policy();

  /// Tier threshold in payload words: universes of at least this many
  /// words maintain the summary tier and may adopt the sparse form.
  /// Default 32 (n >= 2048). Tests lower it to exercise the tiered
  /// paths at small n; set it before creating the sets involved.
  static void set_tier_threshold_words(std::size_t words);
  [[nodiscard]] static std::size_t tier_threshold_words();

  /// Process-wide heap bytes currently owned by ProcSet storage, and
  /// the high-water mark since the last reset_peak_bytes(). The scale
  /// bench and the Monte-Carlo runner surface these per run.
  [[nodiscard]] static std::int64_t live_bytes();
  [[nodiscard]] static std::int64_t peak_bytes();
  static void reset_peak_bytes();

  /// Word-arena counters. Tiered sets recycle their dense payload
  /// vectors through a per-thread arena instead of returning them to
  /// the allocator on every sparsify/clear/destroy: the transient
  /// complete-graph phase at n = 65,536 repeatedly cycles ~8 KB row
  /// payloads through the dense form, and reuse turns that churn into
  /// pointer swaps. arena_bytes() is the capacity currently parked in
  /// arenas across all threads (these bytes are *not* in live_bytes(),
  /// which counts only set-owned storage); arena_reuses() counts
  /// dense materializations served from a recycled buffer.
  [[nodiscard]] static std::int64_t arena_bytes();
  [[nodiscard]] static std::int64_t arena_reuses();
  /// Frees the calling thread's parked buffers (tests and long-lived
  /// embedders that want the high-water memory back).
  static void release_thread_arena();

  /// Empty set over an empty universe. Mostly useful as a placeholder
  /// before assignment.
  ProcSet() = default;

  /// Empty set over a universe of `n` processes. Tiered universes
  /// start in the sparse form (no payload allocation) under kAuto.
  explicit ProcSet(ProcId n);

  ProcSet(const ProcSet& other);
  ProcSet(ProcSet&& other) noexcept;
  ProcSet& operator=(const ProcSet& other);
  ProcSet& operator=(ProcSet&& other) noexcept;
  ~ProcSet();

  /// The full set {0, .., n-1}.
  static ProcSet full(ProcId n);

  /// Singleton {p} over a universe of n processes.
  static ProcSet singleton(ProcId n, ProcId p);

  /// Builds a set from an explicit list of members.
  static ProcSet of(ProcId n, std::initializer_list<ProcId> members);

  /// Universe size (number of processes, *not* cardinality).
  [[nodiscard]] ProcId universe() const { return n_; }

  [[nodiscard]] bool contains(ProcId p) const {
    SSKEL_REQUIRE(in_range(p));
    return (word_at(word(p)) >> bit(p)) & 1u;
  }

  void insert(ProcId p) {
    SSKEL_REQUIRE(in_range(p));
    if (!sparse_) {
      // Dense fast path: this is the hottest call in the message plane
      // (every deposit and derived-graph edge lands here), so it must
      // inline to a load/or/store.
      words_[word(p)] |= mask(p);
      if (!summary_.empty()) summary_set(word(p));
      return;
    }
    insert_sparse(p);
  }
  void erase(ProcId p) {
    SSKEL_REQUIRE(in_range(p));
    if (!sparse_) {
      const std::size_t w = word(p);
      words_[w] &= ~mask(p);
      if (!summary_.empty() && words_[w] == 0) summary_clear(w);
      return;
    }
    erase_sparse(p);
  }

  /// Empties the set. Tiered sets drop their dense payload (the
  /// 65,536-process skeleton's dead rows cost nothing afterwards);
  /// small and policy-pinned dense sets zero in place, keeping their
  /// storage for reuse.
  void clear();

  /// Number of members.
  [[nodiscard]] int count() const;

  [[nodiscard]] bool empty() const;

  /// True iff *this is a subset of `other` (not necessarily proper).
  [[nodiscard]] bool is_subset_of(const ProcSet& other) const;

  /// True iff the two sets share at least one member.
  [[nodiscard]] bool intersects(const ProcSet& other) const;

  /// In-place intersection / union / difference.
  ProcSet& operator&=(const ProcSet& other);

  /// In-place intersection that reports whether any member was
  /// removed. The change test rides the word-parallel AND itself (one
  /// compare per word), so skeleton maintenance can detect "this round
  /// shrank nothing" at no extra asymptotic cost.
  bool intersect_changed(const ProcSet& other);

  /// In-place intersection that additionally *materializes* the
  /// removed members: after the call, `removed` holds exactly the
  /// members this intersection deleted (its previous contents are
  /// overwritten). `removed` must share the universe. Same word-
  /// parallel cost as intersect_changed; this is what lets skeleton
  /// maintenance hand the per-round deletion set to the decremental
  /// SCC maintainer for free.
  bool intersect_diff(const ProcSet& other, ProcSet& removed);
  ProcSet& operator|=(const ProcSet& other) {
    SSKEL_REQUIRE(n_ == other.n_);
    if (!sparse_ && !other.sparse_ && summary_.empty() &&
        other.summary_.empty()) {
      // Small-universe dense union: a plain word loop beats the
      // kernel dispatch for the handful of words involved.
      for (std::size_t w = 0; w < words_.size(); ++w) {
        words_[w] |= other.words_[w];
      }
      return *this;
    }
    return or_assign_slow(other);
  }
  ProcSet& operator-=(const ProcSet& other);

  /// Fused masked fold: *this |= (src & mask), in one pass over the
  /// blocks active in both src and mask. This is the inner step of
  /// every masked BFS (reach.cpp, inc_scc.cpp): frontier row ANDed
  /// with the member mask, ORed into the accumulator, without
  /// materializing the intermediate set.
  void or_and(const ProcSet& src, const ProcSet& mask);

  friend ProcSet operator&(ProcSet a, const ProcSet& b) { return a &= b; }
  friend ProcSet operator|(ProcSet a, const ProcSet& b) { return a |= b; }
  friend ProcSet operator-(ProcSet a, const ProcSet& b) { return a -= b; }

  /// Logical equality (representation-independent: a sparse and a
  /// dense set with the same members compare equal).
  bool operator==(const ProcSet& other) const;

  /// Smallest member, or -1 when empty.
  [[nodiscard]] ProcId first() const {
    if (!sparse_ && summary_.empty()) {
      for (std::size_t w = 0; w < words_.size(); ++w) {
        if (words_[w] != 0) {
          return static_cast<ProcId>(w * kBits) +
                 static_cast<ProcId>(std::countr_zero(words_[w]));
        }
      }
      return -1;
    }
    return first_slow();
  }

  /// Smallest member strictly greater than `p`, or -1 when none.
  /// Passing -1 yields the first member, so `next_after` supports
  /// resumable scans from a "before the beginning" cursor.
  /// Small-universe dense sets resolve inline (iteration is the inner
  /// loop of inbox consumption and derived-row construction); tiered
  /// and sparse forms take the out-of-line block walk.
  [[nodiscard]] ProcId next_after(ProcId p) const {
    const ProcId q = p < 0 ? 0 : p + 1;
    if (q >= n_) return -1;
    if (!sparse_ && summary_.empty()) {
      std::size_t w = word(q);
      std::uint64_t v = words_[w] & (~std::uint64_t{0} << bit(q));
      while (v == 0) {
        if (++w >= words_.size()) return -1;
        v = words_[w];
      }
      return static_cast<ProcId>(w * kBits) +
             static_cast<ProcId>(std::countr_zero(v));
    }
    return next_after_slow(q);
  }

  /// Members in ascending order.
  [[nodiscard]] std::vector<ProcId> to_vector() const;

  /// Renders as "{p0, p3, p7}" (ids, 0-based) for logs and tests.
  [[nodiscard]] std::string to_string() const;

  /// Stable 64-bit hash (FNV-1a over the nonzero (index, word) pairs,
  /// so dense and sparse forms of the same set hash equal).
  [[nodiscard]] std::uint64_t hash() const;

  // --- representation-agnostic word access -------------------------------
  //
  // Callers that fingerprint or serialize whole structures read the
  // packed words through these instead of assuming a flat dense
  // layout (little-endian bit order: bit b of word w is process
  // w*64+b).

  /// Number of payload words the universe spans (present or not).
  [[nodiscard]] std::size_t word_span() const { return word_count(n_); }

  /// Write counterpart of word_at: ORs `v` into payload word w. Bulk
  /// graph loaders (Digraph's transpose-based row assignment) land
  /// whole rows through this instead of per-bit inserts.
  void or_word_at(std::size_t w, std::uint64_t v) {
    SSKEL_REQUIRE(w < word_count(n_));
    if (v == 0) return;
    if (!sparse_) {
      words_[w] |= v;
      if (!summary_.empty()) summary_set(w);
      return;
    }
    or_word_at_sparse(w, v);
  }

  /// Word w of the packed representation; 0 for inactive blocks.
  [[nodiscard]] std::uint64_t word_at(std::size_t w) const {
    SSKEL_REQUIRE(w < word_count(n_));
    if (!sparse_) return words_[w];
    const auto it = std::lower_bound(sidx_.begin(), sidx_.end(),
                                     static_cast<std::uint32_t>(w));
    if (it == sidx_.end() || *it != w) return 0;
    return sval_[static_cast<std::size_t>(it - sidx_.begin())];
  }

  /// Invokes fn(word_index, word) for every *nonzero* payload word in
  /// ascending index order — O(active blocks) on tiered sets.
  template <typename Fn>
  void for_each_word(Fn&& fn) const {
    if (sparse_) {
      for (std::size_t i = 0; i < sidx_.size(); ++i) fn(sidx_[i], sval_[i]);
      return;
    }
    if (!summary_.empty()) {
      for (std::size_t s = 0; s < summary_.size(); ++s) {
        std::uint64_t bits = summary_[s];
        while (bits != 0) {
          const auto j = static_cast<std::size_t>(std::countr_zero(bits));
          bits &= bits - 1;
          const std::size_t w = s * kBits + j;
          fn(static_cast<std::uint32_t>(w), words_[w]);
        }
      }
      return;
    }
    for (std::size_t w = 0; w < words_.size(); ++w) {
      if (words_[w] != 0) fn(static_cast<std::uint32_t>(w), words_[w]);
    }
  }

  /// Number of nonzero payload words (the sparse form's storage cost).
  [[nodiscard]] std::size_t active_words() const;

  /// Whether this set currently holds the sparse (block-list) form.
  [[nodiscard]] bool is_sparse() const { return sparse_; }

  /// Re-evaluates the density transition immediately (normally done
  /// automatically after shrink operations).
  void compact();

  /// Iteration support: `for (ProcId p : set) ...`.
  class const_iterator {
   public:
    using value_type = ProcId;
    const_iterator(const ProcSet* s, ProcId p) : set_(s), cur_(p) {}
    ProcId operator*() const { return cur_; }
    const_iterator& operator++() {
      cur_ = set_->next_after(cur_);
      return *this;
    }
    bool operator!=(const const_iterator& o) const { return cur_ != o.cur_; }
    bool operator==(const const_iterator& o) const { return cur_ == o.cur_; }

   private:
    const ProcSet* set_;
    ProcId cur_;
  };

  [[nodiscard]] const_iterator begin() const {
    return const_iterator(this, first());
  }
  [[nodiscard]] const_iterator end() const { return const_iterator(this, -1); }

 private:
  static constexpr int kBits = 64;
  static std::size_t word_count(ProcId n) {
    return (static_cast<std::size_t>(n) + kBits - 1) / kBits;
  }
  static std::size_t word(ProcId p) {
    return static_cast<std::size_t>(p) / kBits;
  }
  static unsigned bit(ProcId p) { return static_cast<unsigned>(p) % kBits; }
  static std::uint64_t mask(ProcId p) { return std::uint64_t{1} << bit(p); }
  [[nodiscard]] bool in_range(ProcId p) const { return p >= 0 && p < n_; }

  /// Whether this universe maintains the summary tier (and may adopt
  /// the sparse form under kAuto).
  [[nodiscard]] bool tiered() const;

  /// Dense-form summary maintenance.
  void summary_set(std::size_t w) {
    summary_[w / kBits] |= std::uint64_t{1} << (w % kBits);
  }
  void summary_clear(std::size_t w) {
    summary_[w / kBits] &= ~(std::uint64_t{1} << (w % kBits));
  }
  void rebuild_summary();

  /// Sparse-form halves of the inline mutators, plus the tiered /
  /// sparse remainder of the inline scans.
  void insert_sparse(ProcId p);
  void erase_sparse(ProcId p);
  ProcSet& or_assign_slow(const ProcSet& other);
  [[nodiscard]] ProcId first_slow() const;
  [[nodiscard]] ProcId next_after_slow(ProcId q) const;

  /// Unconditional representation conversions.
  void densify();
  void sparsify();
  /// Density-transition checks (no-ops under kDenseOnly).
  void maybe_sparsify();
  void maybe_densify_for_growth(std::size_t projected_blocks);

  /// Zeroes bits beyond n_ in the last word (dense form, after
  /// whole-word ops that could set them).
  void trim();

  /// Shared core of &= / intersect_changed / intersect_diff: ANDs
  /// `other` into *this, optionally materializing removed bits into
  /// `diff` (cleared first). Returns the OR of all removed bits.
  std::uint64_t intersect_core(const ProcSet& other, ProcSet* diff);

  /// ORs a nonzero payload word into the set, whatever the current
  /// representation (sparse inserts keep the block list sorted).
  void or_word(std::size_t w, std::uint64_t v);

  /// Sparse tail of or_word_at: block insert plus densify/accounting.
  void or_word_at_sparse(std::size_t w, std::uint64_t v);

  /// Recomputes the heap footprint and settles the delta into the
  /// process-wide counters.
  void account();
  [[nodiscard]] std::int64_t storage_bytes() const;

  ProcId n_ = 0;
  bool sparse_ = false;
  std::vector<std::uint64_t> words_;    // dense payload (empty when sparse)
  std::vector<std::uint64_t> summary_;  // tiered: bit per payload word
  std::vector<std::uint32_t> sidx_;     // sparse: sorted active word indices
  std::vector<std::uint64_t> sval_;     // sparse: matching payload words
  std::int64_t footprint_ = 0;          // bytes settled into the counters
};

/// Pins the ProcSet tier policy for a scope (benchmarks measuring
/// tiered-vs-dense, tests pinning bit-equality across modes).
class ScopedTierPolicy {
 public:
  explicit ScopedTierPolicy(ProcSet::TierPolicy policy)
      : previous_(ProcSet::tier_policy()) {
    ProcSet::set_tier_policy(policy);
  }
  ScopedTierPolicy(const ScopedTierPolicy&) = delete;
  ScopedTierPolicy& operator=(const ScopedTierPolicy&) = delete;
  ~ScopedTierPolicy() { ProcSet::set_tier_policy(previous_); }

 private:
  ProcSet::TierPolicy previous_;
};

/// Enumerates all subsets of `universe_members` with exactly `k`
/// elements, invoking `fn(const ProcSet&)` for each. Used by the exact
/// Psrcs(k) checker; intended for small k and n (cost is C(n, k)).
/// `fn` returning false aborts the enumeration early; the function
/// returns false in that case, true when all subsets were visited.
bool for_each_subset(const ProcSet& universe_members, int k,
                     const std::function<bool(const ProcSet&)>& fn);

}  // namespace sskel
