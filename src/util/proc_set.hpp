// ProcSet: a dense, fixed-universe set of process ids.
//
// The whole library is built on per-round set algebra over Pi (the
// process universe): timely neighborhoods PT(p, r) shrink by
// intersection (Eq. (3)), skeletons are intersections of edge sets, and
// predicates quantify over (k+1)-subsets. A word-packed bitset makes
// every one of those operations O(n/64) and keeps the simulator's
// per-round cost at O(n^2/64).
#pragma once

#include <algorithm>
#include <compare>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/assert.hpp"
#include "util/types.hpp"

namespace sskel {

/// A subset of a fixed process universe {0, .., n-1}.
///
/// All binary operations require both operands to share the same
/// universe size; this is a precondition, not a silent resize.
class ProcSet {
 public:
  /// Empty set over an empty universe. Mostly useful as a placeholder
  /// before assignment.
  ProcSet() = default;

  /// Empty set over a universe of `n` processes.
  explicit ProcSet(ProcId n) : n_(n), words_(word_count(n), 0) {
    SSKEL_REQUIRE(n >= 0);
  }

  /// The full set {0, .., n-1}.
  static ProcSet full(ProcId n);

  /// Singleton {p} over a universe of n processes.
  static ProcSet singleton(ProcId n, ProcId p);

  /// Builds a set from an explicit list of members.
  static ProcSet of(ProcId n, std::initializer_list<ProcId> members);

  /// Universe size (number of processes, *not* cardinality).
  [[nodiscard]] ProcId universe() const { return n_; }

  [[nodiscard]] bool contains(ProcId p) const {
    SSKEL_REQUIRE(in_range(p));
    return (words_[word(p)] >> bit(p)) & 1u;
  }

  void insert(ProcId p) {
    SSKEL_REQUIRE(in_range(p));
    words_[word(p)] |= mask(p);
  }

  void erase(ProcId p) {
    SSKEL_REQUIRE(in_range(p));
    words_[word(p)] &= ~mask(p);
  }

  void clear() { std::fill(words_.begin(), words_.end(), 0); }

  /// Number of members.
  [[nodiscard]] int count() const;

  [[nodiscard]] bool empty() const;

  /// True iff *this is a subset of `other` (not necessarily proper).
  [[nodiscard]] bool is_subset_of(const ProcSet& other) const;

  /// True iff the two sets share at least one member.
  [[nodiscard]] bool intersects(const ProcSet& other) const;

  /// In-place intersection / union / difference.
  ProcSet& operator&=(const ProcSet& other);

  /// In-place intersection that reports whether any member was
  /// removed. The change test rides the word-parallel AND itself (one
  /// compare per word), so skeleton maintenance can detect "this round
  /// shrank nothing" at no extra asymptotic cost.
  bool intersect_changed(const ProcSet& other);

  /// In-place intersection that additionally *materializes* the
  /// removed members: after the call, `removed` holds exactly the
  /// members this intersection deleted (its previous contents are
  /// overwritten). `removed` must share the universe. Same word-
  /// parallel cost as intersect_changed; this is what lets skeleton
  /// maintenance hand the per-round deletion set to the decremental
  /// SCC maintainer for free.
  bool intersect_diff(const ProcSet& other, ProcSet& removed);
  ProcSet& operator|=(const ProcSet& other);
  ProcSet& operator-=(const ProcSet& other);

  friend ProcSet operator&(ProcSet a, const ProcSet& b) { return a &= b; }
  friend ProcSet operator|(ProcSet a, const ProcSet& b) { return a |= b; }
  friend ProcSet operator-(ProcSet a, const ProcSet& b) { return a -= b; }

  bool operator==(const ProcSet& other) const = default;

  /// Smallest member, or -1 when empty.
  [[nodiscard]] ProcId first() const;

  /// Smallest member strictly greater than `p`, or -1 when none.
  /// Passing -1 yields the first member, so `next_after` supports
  /// resumable scans from a "before the beginning" cursor.
  [[nodiscard]] ProcId next_after(ProcId p) const;

  /// Members in ascending order.
  [[nodiscard]] std::vector<ProcId> to_vector() const;

  /// Renders as "{p0, p3, p7}" (ids, 0-based) for logs and tests.
  [[nodiscard]] std::string to_string() const;

  /// Stable 64-bit hash of the member words (FNV-1a over words).
  [[nodiscard]] std::uint64_t hash() const;

  /// Read-only view of the packed member words (little-endian bit
  /// order: bit b of word w is process w*64+b). Exposed so callers
  /// that fingerprint whole structures (graph interning) can mix the
  /// words directly instead of iterating members.
  [[nodiscard]] const std::vector<std::uint64_t>& words() const {
    return words_;
  }

  /// Iteration support: `for (ProcId p : set) ...`.
  class const_iterator {
   public:
    using value_type = ProcId;
    const_iterator(const ProcSet* s, ProcId p) : set_(s), cur_(p) {}
    ProcId operator*() const { return cur_; }
    const_iterator& operator++() {
      cur_ = set_->next_after(cur_);
      return *this;
    }
    bool operator!=(const const_iterator& o) const { return cur_ != o.cur_; }
    bool operator==(const const_iterator& o) const { return cur_ == o.cur_; }

   private:
    const ProcSet* set_;
    ProcId cur_;
  };

  [[nodiscard]] const_iterator begin() const {
    return const_iterator(this, first());
  }
  [[nodiscard]] const_iterator end() const { return const_iterator(this, -1); }

 private:
  static constexpr int kBits = 64;
  static std::size_t word_count(ProcId n) {
    return (static_cast<std::size_t>(n) + kBits - 1) / kBits;
  }
  static std::size_t word(ProcId p) {
    return static_cast<std::size_t>(p) / kBits;
  }
  static unsigned bit(ProcId p) { return static_cast<unsigned>(p) % kBits; }
  static std::uint64_t mask(ProcId p) { return std::uint64_t{1} << bit(p); }
  [[nodiscard]] bool in_range(ProcId p) const { return p >= 0 && p < n_; }
  /// Zeroes bits beyond n_ in the last word (after whole-word ops that
  /// could set them).
  void trim();

  ProcId n_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Enumerates all subsets of `universe_members` with exactly `k`
/// elements, invoking `fn(const ProcSet&)` for each. Used by the exact
/// Psrcs(k) checker; intended for small k and n (cost is C(n, k)).
/// `fn` returning false aborts the enumeration early; the function
/// returns false in that case, true when all subsets were visited.
bool for_each_subset(const ProcSet& universe_members, int k,
                     const std::function<bool(const ProcSet&)>& fn);

}  // namespace sskel
