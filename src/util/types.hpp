// Core scalar types shared by every libsskel module.
#pragma once

#include <cstdint>

namespace sskel {

/// Process identifier. Processes are numbered 0 .. n-1; the paper's
/// p1 .. pn map to ids 0 .. n-1.
using ProcId = std::int32_t;

/// Round number. Rounds are 1-based as in the paper; 0 denotes
/// "before the first round" (e.g. initial state, absent edge labels).
using Round = std::int32_t;

/// Proposal / decision values. The paper takes values from N; 64 bits
/// is enough for every workload we generate.
using Value = std::int64_t;

/// Sentinel for "no value yet".
inline constexpr Value kNoValue = INT64_MIN;

/// Simulated time in microseconds (the network substrate's clock;
/// also stamped into run traces, which is why it lives here rather
/// than in net/).
using SimTime = std::int64_t;

}  // namespace sskel
