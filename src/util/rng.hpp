// Deterministic pseudo-random number generation.
//
// Every stochastic component in libsskel (random adversaries,
// Monte-Carlo drivers, workload generators) draws from an explicit
// Rng seeded with a 64-bit value, so each simulated run is exactly
// reproducible from (seed, parameters) regardless of thread count or
// platform. We implement xoshiro256** seeded through splitmix64 —
// small, fast, and with well-understood statistical quality; we avoid
// std::mt19937 because its stream is unspecified across standard
// library implementations for distributions, and we want bit-exact
// runs everywhere.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

#include "util/assert.hpp"

namespace sskel {

/// splitmix64 step; used for seeding and for cheap hash mixing of
/// (seed, index) pairs into independent substream seeds.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// Mixes two 64-bit values into one (for deriving substream seeds from
/// a master seed and a task index).
[[nodiscard]] std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t index);

/// xoshiro256** generator with explicit-seed determinism.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit word. Inline: the network simulator draws one per
  /// link per round, so the generator step must not cost a call.
  std::uint64_t next_u64() {
    const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = std::rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via unbiased rejection sampling.
  /// Requires bound > 0. Draws whose value sits more than `bound`
  /// below the top of the 64-bit range are provably under the
  /// rejection limit, so the common case pays a single modulo and
  /// never computes the limit; the produced stream is identical
  /// either way.
  std::uint64_t next_below(std::uint64_t bound) {
    SSKEL_REQUIRE(bound > 0);
    if ((bound & (bound - 1)) == 0) return next_u64() & (bound - 1);
    const std::uint64_t x = next_u64();
    if (x <= UINT64_MAX - bound) return x % bound;
    return next_below_edge(x, bound);
  }

  /// Uniform integer in the closed interval [lo, hi].
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double() {
    // 53 high bits -> [0, 1) with full double precision.
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool next_bool(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return next_double() < p;
  }

  /// Fisher-Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

  /// Picks a uniformly random element index of a container of the
  /// given size. Requires size > 0.
  std::size_t pick_index(std::size_t size) {
    SSKEL_REQUIRE(size > 0);
    return static_cast<std::size_t>(next_below(size));
  }

 private:
  /// Rejection-region tail of next_below: `x` landed within `bound`
  /// of UINT64_MAX, so the exact limit decides acceptance.
  std::uint64_t next_below_edge(std::uint64_t x, std::uint64_t bound);

  std::array<std::uint64_t, 4> s_{};
};

}  // namespace sskel
