// Monte-Carlo trial scheduling on the tile plane (DESIGN.md §13).
//
// run_scenario_trials (the "pool" scheduler) fans trials over the
// fork-join WorkerPool: correct and bit-deterministic, but every call
// pays batch-scoped fixed costs — a fresh InternDomain whose shards
// re-analyze every structure the previous batch already knew, and a
// fresh engine + n process constructions per trial. Campaign-scale
// runs are many small batches, so those fixed costs dominate at small
// n.
//
// McTilePlane is the same trial loop rebuilt as a persistent
// *service* over the PR 7 tile/ring transport:
//
//   * trial batches flow through the TilePlane's credit-gated
//     submit/result FragRings as TileWork{trial, seed} and come back
//     RingMux-merged, exactly like the multiplexed net runs;
//   * each tile owns persistent worker state — its InternDomain shard
//     (tile threads live across batches, so InternDomain::local() is
//     stable per tile), its ProcSet word arena, and a reusable
//     engine/scenario scratch (ScenarioFactory::make_scratch) — so a
//     trial resets hot structures instead of reconstructing them;
//   * tiles are placed physical-core-first from the probed host
//     topology when pinning is enabled (util/topology.hpp), and the
//     effective placement + failed pin count surface in McSummary.
//
// Determinism: trial t always uses seed mix_seed(master, t), results
// land in a trial-indexed buffer (the result ring carries completion
// tokens, not payloads — the ring's release/acquire ordering makes
// the buffer write visible to the dispatcher), and the fold is the
// shared fold_scenario_trials — so McSummary's trial-derived fields
// are bit-identical across tile counts and vs the pool scheduler.
// The pool path stays selectable as the reference scheduler,
// mirroring the NetPlane::kRing/kEventQueue pattern.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mc/montecarlo.hpp"
#include "mc/scenario.hpp"
#include "net/tile.hpp"
#include "skeleton/intern.hpp"

namespace sskel {

/// Which trial scheduler runs a Monte-Carlo batch (the NetPlane
/// pattern: new fast path + selectable reference path).
enum class McScheduler {
  kPool,       // fork-join WorkerPool (reference)
  kTilePlane,  // persistent tile-plane service
};

struct McPlaneOptions {
  /// Worker tiles. 0 = resolve from SSKEL_THREADS / hardware
  /// concurrency; explicit values are still capped by SSKEL_THREADS
  /// (resolve_tile_count — the single concurrency knob).
  unsigned tiles = 0;
  /// Intake/result ring depth (tiny values exercise backpressure).
  std::size_t ring_depth = 64;
  /// Watermark-publication cadence (TilePlaneOptions::lazy).
  std::int64_t lazy = 8;
  /// Pin tiles physical-core-first from the probed topology (or
  /// `cpu_placement` when set). Off by default: single-core CI hosts
  /// gain nothing and lose scheduling freedom.
  bool pin_tiles = false;
  /// Explicit CPU per tile (cycled); empty = derive from topology.
  std::vector<int> cpu_placement;
};

/// A persistent Monte-Carlo scheduling service: construct once per
/// scenario, call run() per batch. Tiles, their intern shards, and
/// their engine scratch survive between batches — the second batch of
/// a converged scenario runs almost entirely on interned analytics
/// and reset (not reconstructed) engines. Dispatcher methods (run and
/// the counters) belong to one thread at a time.
class McTilePlane {
 public:
  explicit McTilePlane(const ScenarioFactory& scenario,
                       McPlaneOptions options = {});
  ~McTilePlane();

  McTilePlane(const McTilePlane&) = delete;
  McTilePlane& operator=(const McTilePlane&) = delete;

  /// Runs one batch: trial t gets seed mix_seed(master_seed, t);
  /// aggregates fold in trial order. Bit-identical trial fields vs
  /// run_scenario_trials with the same (scenario, seed, trials,
  /// config). When config.intern is null the service's own persistent
  /// domain is used (intern stats in the summary are then cumulative
  /// across this plane's batches — service-level counters, like the
  /// stall counters below).
  [[nodiscard]] McSummary run(std::uint64_t master_seed, int trials,
                              const KSetRunConfig& config,
                              const TrialCallback& per_trial = {});

  // -------------------------------------------------------------------
  // Streaming feed (DESIGN.md §15). run() is itself built on this: a
  // batch is just a stream whose window spans every trial. The campaign
  // engine drives the stream directly so trials flow into the submit
  // rings from a persistent cursor — the plane never tears down between
  // batches, and the dispatcher folds the contiguous completed prefix
  // in trial order, which is what makes checkpoint/resume bit-exact
  // (the folded prefix *is* the state).
  // -------------------------------------------------------------------

  /// Receives trial `index`'s result once every lower-indexed trial in
  /// the stream has been delivered too (contiguous, in index order).
  /// `elapsed_ns` is the tile-side wall time of run_trial — the
  /// campaign's runtime-outlier detector feeds on it; it is the one
  /// nondeterministic output and must not influence folded state.
  using StreamSink = std::function<void(
      std::uint64_t index, const ScenarioTrial& trial, std::int64_t elapsed_ns)>;

  /// Opens a stream of sequentially indexed trials starting at
  /// `first_index`, with at most `window` trials in flight. Binds the
  /// run config for every trial of the stream (a null config.intern is
  /// replaced by the service's persistent domain). No stream or batch
  /// may already be active.
  void stream_begin(const KSetRunConfig& config, std::size_t window,
                    std::uint64_t first_index = 0);

  /// Offers trial `index` (must be the next sequential index) with its
  /// seed. Non-blocking: returns false — and consumes nothing — when
  /// the in-flight window is full or no tile intake has credit; the
  /// caller should collect and retry. Never spins.
  [[nodiscard]] bool stream_offer(std::uint64_t index, std::uint64_t seed);

  /// Drains completed trials and invokes `sink` for each contiguous
  /// next-in-order trial. Returns how many trials reached the sink.
  std::size_t stream_collect(const StreamSink& sink);

  /// Blocks (yielding) until every in-flight trial has reached `sink`.
  void stream_flush(const StreamSink& sink);

  /// Waits for in-flight trials but discards their results — the
  /// "kill" path: a campaign stopping at a checkpoint boundary drops
  /// everything past the folded prefix, exactly what a crash would.
  void stream_abort();

  /// Closes the stream. All offered trials must have been collected
  /// (or aborted).
  void stream_end();

  /// Trials offered but not yet collected.
  [[nodiscard]] std::int64_t stream_in_flight() const {
    return static_cast<std::int64_t>(next_offer_ - next_collect_);
  }

  /// Writes the service-level fields (intern stats, ProcSet memory
  /// marks, scheduler provenance) into `summary` — the fields run()
  /// sets after folding, exported so streaming callers can finish a
  /// summary the same way.
  void export_service_fields(McSummary& summary) const;

  [[nodiscard]] unsigned tiles() const { return plane_.tiles(); }
  [[nodiscard]] unsigned failed_pins() const { return plane_.failed_pins(); }
  [[nodiscard]] const std::vector<int>& placement() const {
    return plane_.placement();
  }
  [[nodiscard]] std::int64_t submit_stalls() const {
    return plane_.submit_stalls();
  }
  [[nodiscard]] std::int64_t result_stalls() const {
    return plane_.result_stalls();
  }
  /// Trials executed by this service since construction.
  [[nodiscard]] std::int64_t trials_executed() const {
    return plane_.frags_processed();
  }

 private:
  static TileResult work_fn(void* ctx, unsigned tile, const TileWork& work);

  /// One stream's shared inputs. Mutated only between streams: every
  /// result of the previous stream is drained (acquire) before the
  /// stream closes, and the new values publish to tiles via the intake
  /// ring's release, so tiles never observe a torn stream.
  struct Batch {
    const KSetRunConfig* config = nullptr;
    std::vector<ScenarioTrial>* results = nullptr;
  };

  const ScenarioFactory* scenario_;
  /// Persistent cross-batch intern domain; tile threads are stable so
  /// each tile keeps one shard for the service's lifetime.
  InternDomain intern_;
  /// Per-tile engine/scenario scratch (index = tile).
  std::vector<std::unique_ptr<ScenarioFactory::Scratch>> scratch_;
  /// Circular in-flight result window: trial i lands in slot
  /// i % window (unique while in flight — the window bound guarantees
  /// no two live trials share a slot).
  std::vector<ScenarioTrial> results_;
  Batch batch_;
  std::vector<TileResult> tokens_;  // drained completion tokens
  /// Streaming state: config copy bound for the stream's lifetime,
  /// per-slot completion flags + tile-side wall times, and the
  /// [next_collect_, next_offer_) in-flight cursor pair.
  KSetRunConfig stream_config_;
  std::vector<std::uint8_t> done_;
  std::vector<std::int64_t> elapsed_ns_;
  std::uint64_t next_offer_ = 0;
  std::uint64_t next_collect_ = 0;
  bool streaming_ = false;
  TilePlane plane_;  // last: joins tiles before the rest dies
};

/// Scheduler-dispatching convenience: kPool calls run_scenario_trials
/// (threads = options.tiles), kTilePlane builds a one-batch
/// McTilePlane. Campaign code holds a McTilePlane directly to reuse
/// it across batches.
[[nodiscard]] McSummary run_scenario_trials_on(
    McScheduler scheduler, const ScenarioFactory& scenario,
    std::uint64_t master_seed, int trials, const KSetRunConfig& config,
    const McPlaneOptions& options = {}, const TrialCallback& per_trial = {});

}  // namespace sskel
