#include "mc/scenario.hpp"

#include <memory>
#include <utility>

#include "adversary/crash.hpp"
#include "adversary/rotating.hpp"
#include "util/assert.hpp"

namespace sskel {

namespace {

ScenarioTrial from_report(KSetRunReport report) {
  ScenarioTrial trial;
  trial.kset = std::move(report);
  return trial;
}

/// Scratch for the simulator-backed scenarios: one persistent
/// engine + process vector per worker (kset/runner.hpp).
class KSetScratch : public ScenarioFactory::Scratch {
 public:
  KSetTrialScratch kset;
};

/// PartitionScenario's scratch additionally persists the graph source:
/// the partition's stable structure is seed-independent, so a reseed
/// replays exactly what a fresh construction would produce without
/// re-validating the blocks or rebuilding the stable graph.
class PartitionScratch final : public KSetScratch {
 public:
  std::unique_ptr<PartitionSource> source;
};

/// Downcast helper: any foreign scratch (or nullptr) degrades to the
/// scratch-free path rather than failing.
KSetTrialScratch* kset_scratch(ScenarioFactory::Scratch* scratch) {
  auto* typed = dynamic_cast<KSetScratch*>(scratch);
  return typed != nullptr ? &typed->kset : nullptr;
}

ScenarioTrial run_kset_trial(GraphSource& source, const KSetRunConfig& config,
                             ScenarioFactory::Scratch* scratch) {
  KSetTrialScratch* reuse = kset_scratch(scratch);
  return from_report(reuse != nullptr ? run_kset(source, config, *reuse)
                                      : run_kset(source, config));
}

std::unique_ptr<ScenarioFactory::Scratch> make_kset_scratch() {
  return std::make_unique<KSetScratch>();
}

}  // namespace

ScenarioTrial RandomPsrcsScenario::run_trial(
    std::uint64_t seed, const KSetRunConfig& config) const {
  RandomPsrcsSource source(seed, params_);
  return from_report(run_kset(source, config));
}

std::unique_ptr<ScenarioFactory::Scratch> RandomPsrcsScenario::make_scratch()
    const {
  return make_kset_scratch();
}

ScenarioTrial RandomPsrcsScenario::run_trial(std::uint64_t seed,
                                             const KSetRunConfig& config,
                                             Scratch* scratch) const {
  RandomPsrcsSource source(seed, params_);
  return run_kset_trial(source, config, scratch);
}

std::optional<RunCapture> RandomPsrcsScenario::capture_trial(
    std::uint64_t seed, const KSetRunConfig& config) const {
  RandomPsrcsSource source(seed, params_);
  RunCapture capture;
  (void)run_kset_recorded(source, config, seed, capture);
  return capture;
}

CrashScenario::CrashScenario(ProcId n, int crashes, Round max_crash_round)
    : n_(n), crashes_(crashes), max_crash_round_(max_crash_round) {
  SSKEL_REQUIRE(n_ > 0);
  SSKEL_REQUIRE(crashes_ >= 0 && static_cast<ProcId>(crashes_) < n_);
  SSKEL_REQUIRE(max_crash_round_ >= 1);
}

ScenarioTrial CrashScenario::run_trial(std::uint64_t seed,
                                       const KSetRunConfig& config) const {
  const std::unique_ptr<CrashSource> source =
      make_random_crash_source(seed, n_, crashes_, max_crash_round_);
  return from_report(run_kset(*source, config));
}

std::unique_ptr<ScenarioFactory::Scratch> CrashScenario::make_scratch()
    const {
  return make_kset_scratch();
}

ScenarioTrial CrashScenario::run_trial(std::uint64_t seed,
                                       const KSetRunConfig& config,
                                       Scratch* scratch) const {
  const std::unique_ptr<CrashSource> source =
      make_random_crash_source(seed, n_, crashes_, max_crash_round_);
  return run_kset_trial(*source, config, scratch);
}

std::optional<RunCapture> CrashScenario::capture_trial(
    std::uint64_t seed, const KSetRunConfig& config) const {
  const std::unique_ptr<CrashSource> source =
      make_random_crash_source(seed, n_, crashes_, max_crash_round_);
  RunCapture capture;
  (void)run_kset_recorded(*source, config, seed, capture);
  return capture;
}

PartitionScenario::PartitionScenario(PartitionParams params)
    : params_(std::move(params)), n_(0) {
  SSKEL_REQUIRE(!params_.blocks.empty());
  n_ = params_.blocks.front().universe();
}

ScenarioTrial PartitionScenario::run_trial(
    std::uint64_t seed, const KSetRunConfig& config) const {
  PartitionSource source(seed, params_);
  return from_report(run_kset(source, config));
}

std::unique_ptr<ScenarioFactory::Scratch> PartitionScenario::make_scratch()
    const {
  return std::make_unique<PartitionScratch>();
}

ScenarioTrial PartitionScenario::run_trial(std::uint64_t seed,
                                           const KSetRunConfig& config,
                                           Scratch* scratch) const {
  if (auto* typed = dynamic_cast<PartitionScratch*>(scratch)) {
    if (typed->source == nullptr) {
      typed->source = std::make_unique<PartitionSource>(seed, params_);
    } else {
      typed->source->reseed(seed);
    }
    return run_kset_trial(*typed->source, config, scratch);
  }
  PartitionSource source(seed, params_);
  return run_kset_trial(source, config, scratch);
}

std::optional<RunCapture> PartitionScenario::capture_trial(
    std::uint64_t seed, const KSetRunConfig& config) const {
  PartitionSource source(seed, params_);
  RunCapture capture;
  (void)run_kset_recorded(source, config, seed, capture);
  return capture;
}

RotatingScenario::RotatingScenario(ProcId n, Round hold)
    : n_(n), hold_(hold) {
  SSKEL_REQUIRE(n_ > 0);
  SSKEL_REQUIRE(hold_ >= 1);
}

ScenarioTrial RotatingScenario::run_trial(std::uint64_t seed,
                                          const KSetRunConfig& config) const {
  const ProcId first_center =
      static_cast<ProcId>(seed % static_cast<std::uint64_t>(n_));
  const std::unique_ptr<GraphSource> source =
      make_rotating_star_source(n_, hold_, first_center);
  return from_report(run_kset(*source, config));
}

std::unique_ptr<ScenarioFactory::Scratch> RotatingScenario::make_scratch()
    const {
  return make_kset_scratch();
}

ScenarioTrial RotatingScenario::run_trial(std::uint64_t seed,
                                          const KSetRunConfig& config,
                                          Scratch* scratch) const {
  const ProcId first_center =
      static_cast<ProcId>(seed % static_cast<std::uint64_t>(n_));
  const std::unique_ptr<GraphSource> source =
      make_rotating_star_source(n_, hold_, first_center);
  return run_kset_trial(*source, config, scratch);
}

std::optional<RunCapture> RotatingScenario::capture_trial(
    std::uint64_t seed, const KSetRunConfig& config) const {
  const ProcId first_center =
      static_cast<ProcId>(seed % static_cast<std::uint64_t>(n_));
  const std::unique_ptr<GraphSource> source =
      make_rotating_star_source(n_, hold_, first_center);
  RunCapture capture;
  (void)run_kset_recorded(*source, config, seed, capture);
  return capture;
}

NetScenario::NetScenario(LinkMatrix links, NetConfig net)
    : links_(std::move(links)), net_(std::move(net)) {
  SSKEL_REQUIRE(links_.n() > 0);
}

ScenarioTrial NetScenario::run_trial(std::uint64_t seed,
                                     const KSetRunConfig& config) const {
  NetKSetConfig net_config;
  net_config.run = config;
  net_config.net = net_;
  net_config.net.seed = seed;
  const NetKSetReport report = run_kset_over_network(links_, net_config);

  ScenarioTrial trial;
  trial.kset = report.kset;
  trial.net_backed = true;
  trial.delivered_messages = report.delivered_messages;
  trial.late_messages = report.late_messages;
  trial.lost_messages = report.lost_messages;
  trial.credit_stalls = report.credit_stalls;
  trial.wall_clock = report.wall_clock;
  return trial;
}

}  // namespace sskel
