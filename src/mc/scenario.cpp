#include "mc/scenario.hpp"

#include <memory>
#include <utility>

#include "adversary/crash.hpp"
#include "adversary/rotating.hpp"
#include "util/assert.hpp"

namespace sskel {

namespace {

ScenarioTrial from_report(KSetRunReport report) {
  ScenarioTrial trial;
  trial.kset = std::move(report);
  return trial;
}

}  // namespace

ScenarioTrial RandomPsrcsScenario::run_trial(
    std::uint64_t seed, const KSetRunConfig& config) const {
  RandomPsrcsSource source(seed, params_);
  return from_report(run_kset(source, config));
}

CrashScenario::CrashScenario(ProcId n, int crashes, Round max_crash_round)
    : n_(n), crashes_(crashes), max_crash_round_(max_crash_round) {
  SSKEL_REQUIRE(n_ > 0);
  SSKEL_REQUIRE(crashes_ >= 0 && static_cast<ProcId>(crashes_) < n_);
  SSKEL_REQUIRE(max_crash_round_ >= 1);
}

ScenarioTrial CrashScenario::run_trial(std::uint64_t seed,
                                       const KSetRunConfig& config) const {
  const std::unique_ptr<CrashSource> source =
      make_random_crash_source(seed, n_, crashes_, max_crash_round_);
  return from_report(run_kset(*source, config));
}

PartitionScenario::PartitionScenario(PartitionParams params)
    : params_(std::move(params)), n_(0) {
  SSKEL_REQUIRE(!params_.blocks.empty());
  n_ = params_.blocks.front().universe();
}

ScenarioTrial PartitionScenario::run_trial(
    std::uint64_t seed, const KSetRunConfig& config) const {
  PartitionSource source(seed, params_);
  return from_report(run_kset(source, config));
}

RotatingScenario::RotatingScenario(ProcId n, Round hold)
    : n_(n), hold_(hold) {
  SSKEL_REQUIRE(n_ > 0);
  SSKEL_REQUIRE(hold_ >= 1);
}

ScenarioTrial RotatingScenario::run_trial(std::uint64_t seed,
                                          const KSetRunConfig& config) const {
  const ProcId first_center =
      static_cast<ProcId>(seed % static_cast<std::uint64_t>(n_));
  const std::unique_ptr<GraphSource> source =
      make_rotating_star_source(n_, hold_, first_center);
  return from_report(run_kset(*source, config));
}

NetScenario::NetScenario(LinkMatrix links, NetConfig net)
    : links_(std::move(links)), net_(std::move(net)) {
  SSKEL_REQUIRE(links_.n() > 0);
}

ScenarioTrial NetScenario::run_trial(std::uint64_t seed,
                                     const KSetRunConfig& config) const {
  NetKSetConfig net_config;
  net_config.run = config;
  net_config.net = net_;
  net_config.net.seed = seed;
  const NetKSetReport report = run_kset_over_network(links_, net_config);

  ScenarioTrial trial;
  trial.kset = report.kset;
  trial.net_backed = true;
  trial.delivered_messages = report.delivered_messages;
  trial.late_messages = report.late_messages;
  trial.lost_messages = report.lost_messages;
  trial.credit_stalls = report.credit_stalls;
  trial.wall_clock = report.wall_clock;
  return trial;
}

}  // namespace sskel
