#include "mc/scenario.hpp"

#include <bit>
#include <memory>
#include <utility>

#include "adversary/crash.hpp"
#include "adversary/rotating.hpp"
#include "util/assert.hpp"
#include "util/varint.hpp"

namespace sskel {

namespace {

ScenarioTrial from_report(KSetRunReport report) {
  ScenarioTrial trial;
  trial.kset = std::move(report);
  return trial;
}

/// append_fingerprint helpers: integers go through the varint (the
/// fingerprint is hashed, only injectivity per scenario matters),
/// doubles through their exact bit pattern.
void fp_int(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_varint(out, static_cast<std::uint64_t>(v));
}

void fp_double(std::vector<std::uint8_t>& out, double v) {
  put_varint(out, std::bit_cast<std::uint64_t>(v));
}

/// Scratch for the simulator-backed scenarios: one persistent
/// engine + process vector per worker (kset/runner.hpp).
class KSetScratch : public ScenarioFactory::Scratch {
 public:
  KSetTrialScratch kset;
};

/// PartitionScenario's scratch additionally persists the graph source:
/// the partition's stable structure is seed-independent, so a reseed
/// replays exactly what a fresh construction would produce without
/// re-validating the blocks or rebuilding the stable graph.
class PartitionScratch final : public KSetScratch {
 public:
  std::unique_ptr<PartitionSource> source;
};

/// Downcast helper: any foreign scratch (or nullptr) degrades to the
/// scratch-free path rather than failing.
KSetTrialScratch* kset_scratch(ScenarioFactory::Scratch* scratch) {
  auto* typed = dynamic_cast<KSetScratch*>(scratch);
  return typed != nullptr ? &typed->kset : nullptr;
}

ScenarioTrial run_kset_trial(GraphSource& source, const KSetRunConfig& config,
                             ScenarioFactory::Scratch* scratch) {
  KSetTrialScratch* reuse = kset_scratch(scratch);
  return from_report(reuse != nullptr ? run_kset(source, config, *reuse)
                                      : run_kset(source, config));
}

std::unique_ptr<ScenarioFactory::Scratch> make_kset_scratch() {
  return std::make_unique<KSetScratch>();
}

}  // namespace

ScenarioTrial RandomPsrcsScenario::run_trial(
    std::uint64_t seed, const KSetRunConfig& config) const {
  RandomPsrcsSource source(seed, params_);
  return from_report(run_kset(source, config));
}

std::unique_ptr<ScenarioFactory::Scratch> RandomPsrcsScenario::make_scratch()
    const {
  return make_kset_scratch();
}

ScenarioTrial RandomPsrcsScenario::run_trial(std::uint64_t seed,
                                             const KSetRunConfig& config,
                                             Scratch* scratch) const {
  RandomPsrcsSource source(seed, params_);
  return run_kset_trial(source, config, scratch);
}

std::optional<RunCapture> RandomPsrcsScenario::capture_trial(
    std::uint64_t seed, const KSetRunConfig& config) const {
  RandomPsrcsSource source(seed, params_);
  RunCapture capture;
  (void)run_kset_recorded(source, config, seed, capture);
  return capture;
}

void RandomPsrcsScenario::append_fingerprint(
    std::vector<std::uint8_t>& out) const {
  fp_int(out, params_.n);
  fp_int(out, params_.k);
  fp_int(out, params_.root_components);
  fp_int(out, params_.max_core_size);
  fp_double(out, params_.noise_probability);
  fp_int(out, params_.stabilization_round);
  fp_int(out, params_.noise_after_stabilization ? 1 : 0);
  fp_double(out, params_.follower_edge_probability);
}

CrashScenario::CrashScenario(ProcId n, int crashes, Round max_crash_round)
    : n_(n), crashes_(crashes), max_crash_round_(max_crash_round) {
  SSKEL_REQUIRE(n_ > 0);
  SSKEL_REQUIRE(crashes_ >= 0 && static_cast<ProcId>(crashes_) < n_);
  SSKEL_REQUIRE(max_crash_round_ >= 1);
}

ScenarioTrial CrashScenario::run_trial(std::uint64_t seed,
                                       const KSetRunConfig& config) const {
  const std::unique_ptr<CrashSource> source =
      make_random_crash_source(seed, n_, crashes_, max_crash_round_);
  return from_report(run_kset(*source, config));
}

std::unique_ptr<ScenarioFactory::Scratch> CrashScenario::make_scratch()
    const {
  return make_kset_scratch();
}

ScenarioTrial CrashScenario::run_trial(std::uint64_t seed,
                                       const KSetRunConfig& config,
                                       Scratch* scratch) const {
  const std::unique_ptr<CrashSource> source =
      make_random_crash_source(seed, n_, crashes_, max_crash_round_);
  return run_kset_trial(*source, config, scratch);
}

std::optional<RunCapture> CrashScenario::capture_trial(
    std::uint64_t seed, const KSetRunConfig& config) const {
  const std::unique_ptr<CrashSource> source =
      make_random_crash_source(seed, n_, crashes_, max_crash_round_);
  RunCapture capture;
  (void)run_kset_recorded(*source, config, seed, capture);
  return capture;
}

void CrashScenario::append_fingerprint(std::vector<std::uint8_t>& out) const {
  fp_int(out, n_);
  fp_int(out, crashes_);
  fp_int(out, max_crash_round_);
}

PartitionScenario::PartitionScenario(PartitionParams params)
    : params_(std::move(params)), n_(0) {
  SSKEL_REQUIRE(!params_.blocks.empty());
  n_ = params_.blocks.front().universe();
}

ScenarioTrial PartitionScenario::run_trial(
    std::uint64_t seed, const KSetRunConfig& config) const {
  PartitionSource source(seed, params_);
  return from_report(run_kset(source, config));
}

std::unique_ptr<ScenarioFactory::Scratch> PartitionScenario::make_scratch()
    const {
  return std::make_unique<PartitionScratch>();
}

ScenarioTrial PartitionScenario::run_trial(std::uint64_t seed,
                                           const KSetRunConfig& config,
                                           Scratch* scratch) const {
  if (auto* typed = dynamic_cast<PartitionScratch*>(scratch)) {
    if (typed->source == nullptr) {
      typed->source = std::make_unique<PartitionSource>(seed, params_);
    } else {
      typed->source->reseed(seed);
    }
    return run_kset_trial(*typed->source, config, scratch);
  }
  PartitionSource source(seed, params_);
  return run_kset_trial(source, config, scratch);
}

std::optional<RunCapture> PartitionScenario::capture_trial(
    std::uint64_t seed, const KSetRunConfig& config) const {
  PartitionSource source(seed, params_);
  RunCapture capture;
  (void)run_kset_recorded(source, config, seed, capture);
  return capture;
}

void PartitionScenario::append_fingerprint(
    std::vector<std::uint8_t>& out) const {
  fp_int(out, n_);
  fp_int(out, static_cast<std::int64_t>(params_.blocks.size()));
  for (const ProcSet& block : params_.blocks) {
    fp_int(out, block.count());
    for (ProcId p = 0; p < n_; ++p) {
      if (block.contains(p)) fp_int(out, p);
    }
  }
  fp_double(out, params_.cross_noise_probability);
  fp_int(out, params_.stabilization_round);
}

RotatingScenario::RotatingScenario(ProcId n, Round hold)
    : n_(n), hold_(hold) {
  SSKEL_REQUIRE(n_ > 0);
  SSKEL_REQUIRE(hold_ >= 1);
}

ScenarioTrial RotatingScenario::run_trial(std::uint64_t seed,
                                          const KSetRunConfig& config) const {
  const ProcId first_center =
      static_cast<ProcId>(seed % static_cast<std::uint64_t>(n_));
  const std::unique_ptr<GraphSource> source =
      make_rotating_star_source(n_, hold_, first_center);
  return from_report(run_kset(*source, config));
}

std::unique_ptr<ScenarioFactory::Scratch> RotatingScenario::make_scratch()
    const {
  return make_kset_scratch();
}

ScenarioTrial RotatingScenario::run_trial(std::uint64_t seed,
                                          const KSetRunConfig& config,
                                          Scratch* scratch) const {
  const ProcId first_center =
      static_cast<ProcId>(seed % static_cast<std::uint64_t>(n_));
  const std::unique_ptr<GraphSource> source =
      make_rotating_star_source(n_, hold_, first_center);
  return run_kset_trial(*source, config, scratch);
}

std::optional<RunCapture> RotatingScenario::capture_trial(
    std::uint64_t seed, const KSetRunConfig& config) const {
  const ProcId first_center =
      static_cast<ProcId>(seed % static_cast<std::uint64_t>(n_));
  const std::unique_ptr<GraphSource> source =
      make_rotating_star_source(n_, hold_, first_center);
  RunCapture capture;
  (void)run_kset_recorded(*source, config, seed, capture);
  return capture;
}

void RotatingScenario::append_fingerprint(
    std::vector<std::uint8_t>& out) const {
  fp_int(out, n_);
  fp_int(out, hold_);
}

NetScenario::NetScenario(LinkMatrix links, NetConfig net)
    : links_(std::move(links)), net_(std::move(net)) {
  SSKEL_REQUIRE(links_.n() > 0);
}

ScenarioTrial NetScenario::run_trial(std::uint64_t seed,
                                     const KSetRunConfig& config) const {
  NetKSetConfig net_config;
  net_config.run = config;
  net_config.net = net_;
  net_config.net.seed = seed;
  const NetKSetReport report = run_kset_over_network(links_, net_config);

  ScenarioTrial trial;
  trial.kset = report.kset;
  trial.net_backed = true;
  trial.delivered_messages = report.delivered_messages;
  trial.late_messages = report.late_messages;
  trial.lost_messages = report.lost_messages;
  trial.credit_stalls = report.credit_stalls;
  trial.wall_clock = report.wall_clock;
  return trial;
}

void NetScenario::append_fingerprint(std::vector<std::uint8_t>& out) const {
  const ProcId n = links_.n();
  fp_int(out, n);
  for (ProcId q = 0; q < n; ++q) {
    for (ProcId p = 0; p < n; ++p) {
      const LinkSpec& spec = links_.at(q, p);
      fp_int(out, static_cast<std::int64_t>(spec.kind));
      fp_int(out, spec.min_delay);
      fp_int(out, spec.max_delay);
      fp_double(out, spec.on_time_probability);
    }
  }
  fp_int(out, net_.round_duration);
  fp_int(out, static_cast<std::int64_t>(net_.skews.size()));
  for (const SimTime skew : net_.skews) fp_int(out, skew);
  // net_.seed is excluded: the trial seed overrides it per trial.
  fp_int(out, static_cast<std::int64_t>(net_.plane));
  fp_int(out, static_cast<std::int64_t>(net_.ring_depth));
}

}  // namespace sskel
