// Thread-parallel fan-out for Monte-Carlo experiments.
//
// Simulation runs are embarrassingly parallel: each trial has its own
// seed, its own GraphSource, and its own simulator, sharing nothing.
// parallel_for hands trial indices to a fixed pool of std::jthread
// workers via an atomic counter (dynamic scheduling — trial costs vary
// wildly with the sampled topology, so static blocks would straggle).
// Determinism: results are keyed by trial index, never by completion
// order; with the seed-per-trial discipline (mix_seed(master, index))
// any thread count produces bit-identical aggregates.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace sskel {

/// Number of worker threads to use when `requested` is 0: the hardware
/// concurrency, at least 1.
[[nodiscard]] unsigned resolve_thread_count(unsigned requested);

/// Invokes fn(i) for every i in [0, count), distributing indices over
/// `threads` workers (0 = hardware concurrency). Runs inline when
/// count <= 1 or only one thread is available. fn must not throw.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                  unsigned threads = 0);

/// Maps fn over [0, count) into an index-ordered vector.
template <typename T>
[[nodiscard]] std::vector<T> collect_parallel(
    std::size_t count, const std::function<T(std::size_t)>& fn,
    unsigned threads = 0) {
  std::vector<T> results(count);
  parallel_for(
      count, [&](std::size_t i) { results[i] = fn(i); }, threads);
  return results;
}

}  // namespace sskel
