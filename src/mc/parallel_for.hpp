// Thread-parallel fan-out for Monte-Carlo experiments.
//
// Simulation runs are embarrassingly parallel: each trial has its own
// seed, its own GraphSource, and its own simulator, sharing nothing.
// parallel_for hands index ranges to a lazily created *persistent*
// worker pool (scenario sweeps call it thousands of times per
// experiment; spawning threads per call used to dominate small
// sweeps). Scheduling is dynamic — workers claim chunks off a shared
// atomic cursor, since trial costs vary wildly with the sampled
// topology and static blocks would straggle. Determinism: results are
// keyed by trial index, never by completion order; with the
// seed-per-trial discipline (mix_seed(master, index)) any thread
// count produces bit-identical aggregates.
//
// Scheduling is per-participant work-stealing (mc/steal_deque.hpp):
// the submitter prepopulates one Chase-Lev deque per participant with
// round-robin chunk blocks, each worker pops its own deque locally and
// steals from the others only when dry — replacing the old single
// shared chunk cursor, whose cache line every claim contended.
//
// The templated overloads are the hot path: the callable is passed by
// reference through a type-erased (function-pointer, context) pair,
// so no std::function is constructed and nothing allocates per call.
// The std::function overloads remain as thin forwarders for existing
// callers.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <type_traits>
#include <vector>

namespace sskel {

/// Number of worker threads to use when `requested` is 0: the
/// SSKEL_THREADS environment variable when set (clamped to the
/// hardware concurrency, minimum 1), otherwise the hardware
/// concurrency itself, at least 1. SSKEL_THREADS is re-read on every
/// call, so tests (and long-lived embedders) can change it; note the
/// pool's *helper threads* are spawned once with the value in effect
/// at the first parallel job and are not re-sized afterwards — a
/// smaller SSKEL_THREADS later still takes effect because only that
/// many participants join a job.
[[nodiscard]] unsigned resolve_thread_count(unsigned requested);

/// The pure clamp behind SSKEL_THREADS resolution, exposed for unit
/// tests: parses `value` (may be nullptr/empty) and clamps to
/// [1, hardware]. Unparsable, empty, zero, or negative values fall
/// back to `hardware`.
[[nodiscard]] unsigned threads_from_env_value(const char* value,
                                              unsigned hardware);

/// SSKEL_THREADS as the single concurrency knob, applied to a tile
/// count: requested == 0 resolves exactly like the worker pool
/// (threads_from_env_value, hardware-clamped); an explicit nonzero
/// request is *capped* by a parsed-positive SSKEL_THREADS but is NOT
/// hardware-clamped — oversubscribed tile counts are a deliberate
/// testing configuration (4 tiles on a 1-core host must stay 4 unless
/// the env says less). Unparsable env values leave the request alone.
/// Pure; exposed for unit tests.
[[nodiscard]] unsigned tiles_from_env_value(unsigned requested,
                                            const char* value,
                                            unsigned hardware);

/// tiles_from_env_value against the live SSKEL_THREADS (re-read per
/// call) and hardware concurrency.
[[nodiscard]] unsigned resolve_tile_count(unsigned requested);

namespace detail {

/// The process-wide persistent worker pool. Created lazily on the
/// first parallel call that actually needs helpers; workers then park
/// on a condition variable between jobs instead of being re-spawned.
/// One job runs at a time (concurrent submitters serialize), and the
/// submitting thread always participates in its own job, so a pool of
/// hardware_concurrency - 1 helpers saturates the machine.
class WorkerPool {
 public:
  static WorkerPool& instance();

  /// Runs invoke(ctx, i) for every i in [0, count) using up to
  /// `participants` threads (the caller plus participants - 1 pool
  /// helpers), claiming chunked index ranges off an atomic cursor.
  /// Blocks until every index is done and no helper still touches the
  /// job. invoke must not throw.
  void run(std::size_t count, unsigned participants,
           void (*invoke)(void*, std::size_t), void* ctx);

  /// True when the calling thread is a pool helper. Nested parallel
  /// calls from inside a job run inline (a helper re-submitting would
  /// deadlock against the job that occupies the pool).
  [[nodiscard]] static bool on_worker_thread();

  /// Helper threads currently alive (0 before the first parallel job).
  [[nodiscard]] unsigned helper_count();

  /// The pool's size in *participating threads*: live helpers + 1 (the
  /// submitter always works its own job), or the resolve_thread_count
  /// target before any helpers exist.
  [[nodiscard]] unsigned size();

  /// Jobs dispatched through the pool since process start (tests
  /// assert the pool is reused rather than re-created).
  [[nodiscard]] std::int64_t jobs_dispatched();

  /// Chunks obtained by stealing from another participant's deque
  /// since process start (diagnostics; the work-stealing scheduler's
  /// load-balancing activity).
  [[nodiscard]] std::int64_t chunks_stolen();

 private:
  WorkerPool();
  ~WorkerPool();
  struct Impl;
  Impl* impl();  // lazily constructed; joined + destroyed at exit

  std::once_flag once_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace detail

/// Invokes fn(i) for every i in [0, count), distributing indices over
/// `threads` workers (0 = hardware concurrency). Runs inline when
/// count <= 1, when only one thread is requested, or when called from
/// inside another parallel_for job. fn must not throw.
template <typename Fn>
void parallel_for(std::size_t count, Fn&& fn, unsigned threads = 0) {
  if (count == 0) return;
  const unsigned workers = static_cast<unsigned>(
      std::min<std::size_t>(resolve_thread_count(threads), count));
  if (workers <= 1 || detail::WorkerPool::on_worker_thread()) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  using Callable = std::remove_reference_t<Fn>;
  detail::WorkerPool::instance().run(
      count, workers,
      [](void* ctx, std::size_t i) { (*static_cast<Callable*>(ctx))(i); },
      const_cast<std::remove_const_t<Callable>*>(std::addressof(fn)));
}

/// std::function forwarder (kept for existing callers and ABI
/// stability of the tests; hot callers use the templated overload).
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                  unsigned threads = 0);

/// Maps fn over [0, count) into an index-ordered vector.
template <typename T, typename Fn>
[[nodiscard]] std::vector<T> collect_parallel(std::size_t count, Fn&& fn,
                                              unsigned threads = 0) {
  std::vector<T> results(count);
  parallel_for(
      count, [&](std::size_t i) { results[i] = fn(i); }, threads);
  return results;
}

/// std::function forwarder, see above.
template <typename T>
[[nodiscard]] std::vector<T> collect_parallel(
    std::size_t count, const std::function<T(std::size_t)>& fn,
    unsigned threads = 0) {
  std::vector<T> results(count);
  parallel_for(
      count, [&](std::size_t i) { results[i] = fn(i); }, threads);
  return results;
}

}  // namespace sskel
