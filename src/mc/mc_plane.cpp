#include "mc/mc_plane.hpp"

#include <chrono>
#include <thread>

#include "mc/parallel_for.hpp"
#include "util/rng.hpp"
#include "util/topology.hpp"

namespace sskel {

namespace {

TilePlaneOptions to_tile_options(const McPlaneOptions& options) {
  TilePlaneOptions tile_options;
  tile_options.ring_depth = options.ring_depth;
  tile_options.lazy = options.lazy;
  tile_options.pin_threads = options.pin_tiles;
  tile_options.cpu_placement = options.cpu_placement;
  return tile_options;
}

}  // namespace

McTilePlane::McTilePlane(const ScenarioFactory& scenario,
                         McPlaneOptions options)
    : scenario_(&scenario),
      scratch_(resolve_tile_count(options.tiles)),
      // scratch_.size() rather than resolving again: SSKEL_THREADS is
      // re-read per resolve and must bind exactly once per plane.
      plane_(static_cast<unsigned>(scratch_.size()), &McTilePlane::work_fn,
             this, to_tile_options(options)) {
  for (auto& slot : scratch_) slot = scenario.make_scratch();
}

McTilePlane::~McTilePlane() = default;

TileResult McTilePlane::work_fn(void* ctx, unsigned tile,
                                const TileWork& work) {
  auto* self = static_cast<McTilePlane*>(ctx);
  const std::size_t slot =
      static_cast<std::size_t>(work.id) % self->batch_.results->size();
  // Exclusive write: the in-flight window bound means no other live
  // trial maps to this slot. The result-ring publish (release) orders
  // it before the dispatcher's drain (acquire) of the completion token
  // below.
  const auto start = std::chrono::steady_clock::now();
  (*self->batch_.results)[slot] = self->scenario_->run_trial(
      work.seed, *self->batch_.config, self->scratch_[tile].get());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  TileResult token;
  token.id = work.id;
  token.value =
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
  return token;
}

void McTilePlane::stream_begin(const KSetRunConfig& config, std::size_t window,
                               std::uint64_t first_index) {
  SSKEL_REQUIRE(!streaming_);
  SSKEL_REQUIRE(window > 0);

  // The persistent domain is the service's point: tile shards carry
  // interned analytics from batch to batch, so a converged scenario's
  // second batch re-analyzes (almost) nothing.
  stream_config_ = config;
  if (stream_config_.intern == nullptr) stream_config_.intern = &intern_;

  results_.assign(window, ScenarioTrial{});
  done_.assign(window, 0);
  elapsed_ns_.assign(window, 0);
  batch_.config = &stream_config_;
  batch_.results = &results_;
  next_offer_ = first_index;
  next_collect_ = first_index;
  tokens_.clear();
  streaming_ = true;
}

bool McTilePlane::stream_offer(std::uint64_t index, std::uint64_t seed) {
  SSKEL_REQUIRE(streaming_);
  SSKEL_REQUIRE(index == next_offer_);
  if (next_offer_ - next_collect_ >= results_.size()) return false;
  TileWork work;
  work.id = index;
  work.seed = seed;
  if (!plane_.try_submit(work)) return false;
  ++next_offer_;
  return true;
}

std::size_t McTilePlane::stream_collect(const StreamSink& sink) {
  SSKEL_REQUIRE(streaming_);
  plane_.drain(tokens_);
  for (const TileResult& token : tokens_) {
    const std::size_t slot =
        static_cast<std::size_t>(token.id) % results_.size();
    SSKEL_ASSERT(done_[slot] == 0);
    done_[slot] = 1;
    elapsed_ns_[slot] = token.value;
  }
  tokens_.clear();
  std::size_t delivered = 0;
  while (next_collect_ < next_offer_ &&
         done_[static_cast<std::size_t>(next_collect_) % results_.size()] !=
             0) {
    const std::size_t slot =
        static_cast<std::size_t>(next_collect_) % results_.size();
    if (sink) sink(next_collect_, results_[slot], elapsed_ns_[slot]);
    done_[slot] = 0;
    ++next_collect_;
    ++delivered;
  }
  return delivered;
}

void McTilePlane::stream_flush(const StreamSink& sink) {
  while (stream_in_flight() > 0) {
    if (stream_collect(sink) == 0) std::this_thread::yield();
  }
}

void McTilePlane::stream_abort() { stream_flush(StreamSink{}); }

void McTilePlane::stream_end() {
  SSKEL_REQUIRE(streaming_);
  SSKEL_REQUIRE(stream_in_flight() == 0);
  streaming_ = false;
}

void McTilePlane::export_service_fields(McSummary& summary) const {
  summary.scenario = scenario_->name();
  summary.intern = stream_config_.intern != nullptr
                       ? stream_config_.intern->merged_stats()
                       : intern_.merged_stats();
  summary.intern_shards = static_cast<std::int64_t>(
      stream_config_.intern != nullptr ? stream_config_.intern->shard_count()
                                       : intern_.shard_count());
  summary.peak_proc_set_bytes = ProcSet::peak_bytes();
  summary.live_proc_set_bytes = ProcSet::live_bytes();
  summary.arena_proc_set_bytes = ProcSet::arena_bytes();
  summary.arena_reuses = ProcSet::arena_reuses();
  summary.scheduler = "tile-plane";
  summary.tiles = static_cast<std::int64_t>(plane_.tiles());
  summary.tile_placement = cpu_list_to_string(plane_.placement());
  summary.failed_pins = static_cast<std::int64_t>(plane_.failed_pins());
}

McSummary McTilePlane::run(std::uint64_t master_seed, int trials,
                           const KSetRunConfig& config,
                           const TrialCallback& per_trial) {
  SSKEL_REQUIRE(trials >= 0);

  ProcSet::reset_peak_bytes();

  McSummary summary;
  summary.bytes_measured = config.measure_bytes;

  // A batch is a stream whose window covers every trial: submission is
  // then limited only by ring credit, and the fold happens on the
  // dispatcher as completions arrive — in trial order, exactly like
  // the batch-end fold this replaced.
  stream_begin(config, std::max<std::size_t>(static_cast<std::size_t>(trials),
                                             std::size_t{1}));
  const StreamSink sink = [&](std::uint64_t t, const ScenarioTrial& trial,
                              std::int64_t /*elapsed_ns*/) {
    fold_scenario_trial(summary, trial, config);
    if (per_trial) per_trial(static_cast<std::size_t>(t), trial);
  };
  for (int t = 0; t < trials; ++t) {
    const auto index = static_cast<std::uint64_t>(t);
    while (!stream_offer(index, mix_seed(master_seed, index))) {
      if (stream_collect(sink) == 0) std::this_thread::yield();
    }
    stream_collect(sink);
  }
  stream_flush(sink);
  stream_end();

  export_service_fields(summary);
  return summary;
}

McSummary run_scenario_trials_on(McScheduler scheduler,
                                 const ScenarioFactory& scenario,
                                 std::uint64_t master_seed, int trials,
                                 const KSetRunConfig& config,
                                 const McPlaneOptions& options,
                                 const TrialCallback& per_trial) {
  if (scheduler == McScheduler::kPool) {
    return run_scenario_trials(scenario, master_seed, trials, config,
                               options.tiles, per_trial);
  }
  McTilePlane plane(scenario, options);
  return plane.run(master_seed, trials, config, per_trial);
}

}  // namespace sskel
