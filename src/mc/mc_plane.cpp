#include "mc/mc_plane.hpp"

#include "mc/parallel_for.hpp"
#include "util/rng.hpp"
#include "util/topology.hpp"

namespace sskel {

namespace {

TilePlaneOptions to_tile_options(const McPlaneOptions& options) {
  TilePlaneOptions tile_options;
  tile_options.ring_depth = options.ring_depth;
  tile_options.lazy = options.lazy;
  tile_options.pin_threads = options.pin_tiles;
  tile_options.cpu_placement = options.cpu_placement;
  return tile_options;
}

}  // namespace

McTilePlane::McTilePlane(const ScenarioFactory& scenario,
                         McPlaneOptions options)
    : scenario_(&scenario),
      scratch_(resolve_tile_count(options.tiles)),
      // scratch_.size() rather than resolving again: SSKEL_THREADS is
      // re-read per resolve and must bind exactly once per plane.
      plane_(static_cast<unsigned>(scratch_.size()), &McTilePlane::work_fn,
             this, to_tile_options(options)) {
  for (auto& slot : scratch_) slot = scenario.make_scratch();
}

McTilePlane::~McTilePlane() = default;

TileResult McTilePlane::work_fn(void* ctx, unsigned tile,
                                const TileWork& work) {
  auto* self = static_cast<McTilePlane*>(ctx);
  const auto t = static_cast<std::size_t>(work.id);
  // Exclusive write: trial index t belongs to exactly one work item.
  // The result-ring publish (release) orders it before the
  // dispatcher's drain (acquire) of the completion token below.
  (*self->batch_.results)[t] = self->scenario_->run_trial(
      work.seed, *self->batch_.config, self->scratch_[tile].get());
  TileResult token;
  token.id = work.id;
  return token;
}

McSummary McTilePlane::run(std::uint64_t master_seed, int trials,
                           const KSetRunConfig& config,
                           const TrialCallback& per_trial) {
  SSKEL_REQUIRE(trials >= 0);

  // The persistent domain is the service's point: tile shards carry
  // interned analytics from batch to batch, so a converged scenario's
  // second batch re-analyzes (almost) nothing.
  KSetRunConfig run_config = config;
  if (run_config.intern == nullptr) run_config.intern = &intern_;

  ProcSet::reset_peak_bytes();

  results_.assign(static_cast<std::size_t>(trials), ScenarioTrial{});
  batch_.config = &run_config;
  batch_.results = &results_;

  tokens_.clear();
  for (int t = 0; t < trials; ++t) {
    TileWork work;
    work.id = static_cast<std::uint64_t>(t);
    work.seed = mix_seed(master_seed, static_cast<std::uint64_t>(t));
    plane_.submit(work);
    plane_.drain(tokens_);
  }
  while (tokens_.size() < static_cast<std::size_t>(trials)) {
    if (plane_.drain(tokens_) == 0) std::this_thread::yield();
  }

  McSummary summary;
  summary.scenario = scenario_->name();
  summary.intern = run_config.intern->merged_stats();
  summary.intern_shards =
      static_cast<std::int64_t>(run_config.intern->shard_count());
  summary.peak_proc_set_bytes = ProcSet::peak_bytes();
  summary.live_proc_set_bytes = ProcSet::live_bytes();
  summary.arena_proc_set_bytes = ProcSet::arena_bytes();
  summary.arena_reuses = ProcSet::arena_reuses();
  summary.bytes_measured = config.measure_bytes;
  summary.scheduler = "tile-plane";
  summary.tiles = static_cast<std::int64_t>(plane_.tiles());
  summary.tile_placement = cpu_list_to_string(plane_.placement());
  summary.failed_pins = static_cast<std::int64_t>(plane_.failed_pins());
  fold_scenario_trials(summary, results_, config, per_trial);
  return summary;
}

McSummary run_scenario_trials_on(McScheduler scheduler,
                                 const ScenarioFactory& scenario,
                                 std::uint64_t master_seed, int trials,
                                 const KSetRunConfig& config,
                                 const McPlaneOptions& options,
                                 const TrialCallback& per_trial) {
  if (scheduler == McScheduler::kPool) {
    return run_scenario_trials(scenario, master_seed, trials, config,
                               options.tiles, per_trial);
  }
  McTilePlane plane(scenario, options);
  return plane.run(master_seed, trials, config, per_trial);
}

}  // namespace sskel
