// Monte-Carlo aggregation over random Psrcs(k) runs.
//
// The statistical experiments (E2, E4, E5, parts of E8) all share one
// shape: sample many seeded random adversaries, run Algorithm 1 on
// each, and aggregate decision/skeleton/traffic metrics. This module
// is that loop, parallelized over trials.
#pragma once

#include <cstdint>

#include "adversary/random_psrcs.hpp"
#include "kset/runner.hpp"
#include "util/stats.hpp"

namespace sskel {

struct McSummary {
  std::int64_t runs = 0;
  /// Runs in which some process failed to decide within max_rounds.
  std::int64_t undecided_runs = 0;
  /// Runs violating k-agreement (must stay 0 under Psrcs(k)).
  std::int64_t agreement_violations = 0;
  /// Runs violating validity.
  std::int64_t validity_violations = 0;
  /// Runs whose last decision exceeded Lemma 11's bound.
  std::int64_t bound_violations = 0;
  /// Runs with lemma-monitor findings (when the monitor is attached).
  std::int64_t lemma_violation_runs = 0;

  Accumulator distinct_values;       // per run
  Accumulator root_components;       // of the final skeleton
  Accumulator last_decision_round;   // over decided runs
  Accumulator stabilization_round;   // observed r_ST
  Accumulator total_messages;
  Accumulator total_bytes;           // 0 unless measure_bytes
  Accumulator max_message_bytes;
  IntHistogram distinct_histogram;
  IntHistogram root_histogram;
};

/// Runs `trials` random-Psrcs trials. Trial t uses the adversary seed
/// mix_seed(master_seed, t); proposals default to distinct values.
/// Thread count 0 = hardware concurrency.
[[nodiscard]] McSummary run_random_psrcs_trials(std::uint64_t master_seed,
                                                int trials,
                                                const RandomPsrcsParams& params,
                                                const KSetRunConfig& config,
                                                unsigned threads = 0);

}  // namespace sskel
