// Monte-Carlo aggregation over seeded scenario trials.
//
// The statistical experiments (E2, E4, E5, E7, E11, parts of E8) all
// share one shape: sample many seeded adversaries from a scenario
// factory, run Algorithm 1 on each, and aggregate
// decision/skeleton/traffic metrics. This module is that loop,
// parallelized over trials; results are folded in trial order, so
// every aggregate is bit-identical for every thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "adversary/random_psrcs.hpp"
#include "kset/runner.hpp"
#include "mc/scenario.hpp"
#include "skeleton/intern.hpp"
#include "util/stats.hpp"

namespace sskel {

struct McSummary {
  /// name() of the scenario the trials came from.
  std::string scenario;
  std::int64_t runs = 0;
  /// Runs in which some process failed to decide within max_rounds.
  std::int64_t undecided_runs = 0;
  /// Runs violating k-agreement (must stay 0 under Psrcs(k)).
  std::int64_t agreement_violations = 0;
  /// Runs violating validity.
  std::int64_t validity_violations = 0;
  /// Runs whose last decision exceeded Lemma 11's bound.
  std::int64_t bound_violations = 0;
  /// Runs with lemma-monitor findings (when the monitor is attached).
  std::int64_t lemma_violation_runs = 0;

  Accumulator distinct_values;       // per run
  Accumulator root_components;       // of the final skeleton
  Accumulator last_decision_round;   // over decided runs
  Accumulator stabilization_round;   // observed r_ST
  Accumulator total_messages;
  /// Byte accumulators are fed only when the run config enables
  /// measure_bytes; bytes_measured records which case this was.
  bool bytes_measured = false;
  Accumulator total_bytes;
  Accumulator max_message_bytes;
  IntHistogram distinct_histogram;
  IntHistogram root_histogram;

  /// Network accounting (net-backed scenarios only).
  bool net_backed = false;
  Accumulator late_messages;
  Accumulator lost_messages;
  Accumulator wall_clock_ms;  // simulated milliseconds
  /// Total ring-plane flow-control stalls across the batch (0 when the
  /// drivers ran the event-queue plane or rings never ran dry).
  std::int64_t credit_stalls = 0;

  /// Structure-interning counters, merged over the per-worker shards
  /// (DESIGN.md §10). run_scenario_trials interns by default — it
  /// creates a trial-scoped InternDomain when the run config does not
  /// supply one — so cross-trial structure sharing shows up here.
  InternStats intern;
  std::int64_t intern_shards = 0;

  /// ProcSet heap accounting over the whole batch: the live-bytes
  /// high-water mark reached while the trials ran (peak reset at batch
  /// start) and the bytes still live when they finished (structures
  /// retained by the intern domain and any caller-held state). The
  /// n = 65,536 scale runs are sized by these.
  std::int64_t peak_proc_set_bytes = 0;
  std::int64_t live_proc_set_bytes = 0;
  /// Word-arena state after the batch: bytes parked for reuse in the
  /// per-thread arenas (outside live_proc_set_bytes) and the running
  /// count of dense materializations served from a recycled buffer.
  std::int64_t arena_proc_set_bytes = 0;
  std::int64_t arena_reuses = 0;

  /// Scheduler provenance (DESIGN.md §13): which trial scheduler
  /// produced this summary ("pool" or "tile-plane"), how many
  /// workers/tiles it ran, the planned CPU per tile when pinning was
  /// on ("" otherwise, util/topology.hpp rendering), and how many pins
  /// the OS refused — so a throughput regression caused by denied
  /// affinity is diagnosable from the artifact alone. Excluded from
  /// the cross-scheduler bit-equality tripwire, like the intern/arena
  /// fields above.
  std::string scheduler = "pool";
  std::int64_t tiles = 0;
  std::string tile_placement;
  std::int64_t failed_pins = 0;
};

/// Optional per-trial hook, invoked in trial order after the parallel
/// phase (so it is deterministic too). Receives the trial index and
/// the full trial result; use it for per-trial tables the summary's
/// accumulators don't capture.
using TrialCallback = std::function<void(std::size_t, const ScenarioTrial&)>;

/// Folds per-trial results into `summary` in trial order and fires
/// `per_trial` for each. Shared verbatim by the pool scheduler
/// (run_scenario_trials) and the tile-plane scheduler (McTilePlane),
/// so the trial-derived aggregates are bit-identical across
/// schedulers by construction. `config` supplies the guard for the
/// Lemma-11 bound check and measure_bytes gating; summary.runs etc.
/// accumulate on top of whatever is already in `summary`.
void fold_scenario_trials(McSummary& summary,
                          const std::vector<ScenarioTrial>& results,
                          const KSetRunConfig& config,
                          const TrialCallback& per_trial = {});

/// Folds one trial. fold_scenario_trials is exactly this in a loop, so
/// folding trials one at a time in trial order — the campaign engine's
/// streaming discipline — produces a summary bit-identical to a single
/// batch fold of the same trials: the resume proof (DESIGN.md §15)
/// rests on this left-fold identity. summary.bytes_measured must be
/// set before the first fold (it gates the byte accumulators).
void fold_scenario_trial(McSummary& summary, const ScenarioTrial& trial,
                         const KSetRunConfig& config);

/// Runs `trials` independent trials of `scenario`. Trial t uses the
/// seed mix_seed(master_seed, t). Thread count 0 = hardware
/// concurrency.
[[nodiscard]] McSummary run_scenario_trials(
    const ScenarioFactory& scenario, std::uint64_t master_seed, int trials,
    const KSetRunConfig& config, unsigned threads = 0,
    const TrialCallback& per_trial = {});

/// The original random-Psrcs entry point, now a RandomPsrcsScenario
/// instantiation of run_scenario_trials (same seeds, same results).
[[nodiscard]] McSummary run_random_psrcs_trials(std::uint64_t master_seed,
                                                int trials,
                                                const RandomPsrcsParams& params,
                                                const KSetRunConfig& config,
                                                unsigned threads = 0);

}  // namespace sskel
