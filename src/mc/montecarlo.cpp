#include "mc/montecarlo.hpp"

#include "mc/parallel_for.hpp"
#include "util/rng.hpp"

namespace sskel {

void fold_scenario_trial(McSummary& summary, const ScenarioTrial& trial,
                         const KSetRunConfig& config) {
  const KSetRunReport& report = trial.kset;
  ++summary.runs;
  if (!report.all_decided) ++summary.undecided_runs;
  if (!report.verdict.k_agreement) ++summary.agreement_violations;
  if (!report.verdict.validity) ++summary.validity_violations;
  if (report.all_decided &&
      report.last_decision_round > report.termination_bound(config.guard)) {
    ++summary.bound_violations;
  }
  if (!report.lemma_violations.empty()) ++summary.lemma_violation_runs;

  summary.distinct_values.add(report.distinct_values);
  summary.distinct_histogram.add(report.distinct_values);
  const int roots = static_cast<int>(report.root_components_final.size());
  summary.root_components.add(roots);
  summary.root_histogram.add(roots);
  if (report.all_decided) {
    summary.last_decision_round.add(report.last_decision_round);
  }
  summary.stabilization_round.add(report.skeleton_last_change);
  summary.total_messages.add(static_cast<double>(report.total_messages));
  if (summary.bytes_measured) {
    summary.total_bytes.add(static_cast<double>(report.total_bytes));
    summary.max_message_bytes.add(
        static_cast<double>(report.max_message_bytes));
  }
  if (trial.net_backed) {
    summary.net_backed = true;
    summary.late_messages.add(static_cast<double>(trial.late_messages));
    summary.lost_messages.add(static_cast<double>(trial.lost_messages));
    summary.wall_clock_ms.add(static_cast<double>(trial.wall_clock) / 1000.0);
    summary.credit_stalls += trial.credit_stalls;
  }
}

void fold_scenario_trials(McSummary& summary,
                          const std::vector<ScenarioTrial>& results,
                          const KSetRunConfig& config,
                          const TrialCallback& per_trial) {
  for (std::size_t t = 0; t < results.size(); ++t) {
    fold_scenario_trial(summary, results[t], config);
    if (per_trial) per_trial(t, results[t]);
  }
}

McSummary run_scenario_trials(const ScenarioFactory& scenario,
                              std::uint64_t master_seed, int trials,
                              const KSetRunConfig& config, unsigned threads,
                              const TrialCallback& per_trial) {
  SSKEL_REQUIRE(trials >= 0);

  // Intern by default: trials on one worker share a table shard, so
  // the distinct structures of a whole seed sweep are analyzed once
  // per worker instead of once per trial. A caller-supplied domain
  // (config.intern) extends the sharing across several sweeps.
  InternDomain trial_domain;
  KSetRunConfig run_config = config;
  if (run_config.intern == nullptr) run_config.intern = &trial_domain;

  // High-water mark for this batch only (sets live before the batch
  // still count toward the level the mark is measured from).
  ProcSet::reset_peak_bytes();

  const std::vector<ScenarioTrial> results = collect_parallel<ScenarioTrial>(
      static_cast<std::size_t>(trials),
      [&](std::size_t t) {
        return scenario.run_trial(mix_seed(master_seed, t), run_config);
      },
      threads);

  McSummary summary;
  summary.scenario = scenario.name();
  summary.intern = run_config.intern->merged_stats();
  summary.intern_shards =
      static_cast<std::int64_t>(run_config.intern->shard_count());
  summary.peak_proc_set_bytes = ProcSet::peak_bytes();
  summary.live_proc_set_bytes = ProcSet::live_bytes();
  summary.arena_proc_set_bytes = ProcSet::arena_bytes();
  summary.arena_reuses = ProcSet::arena_reuses();
  summary.bytes_measured = config.measure_bytes;
  summary.scheduler = "pool";
  summary.tiles = static_cast<std::int64_t>(resolve_thread_count(threads));
  fold_scenario_trials(summary, results, config, per_trial);
  return summary;
}

McSummary run_random_psrcs_trials(std::uint64_t master_seed, int trials,
                                  const RandomPsrcsParams& params,
                                  const KSetRunConfig& config,
                                  unsigned threads) {
  const RandomPsrcsScenario scenario(params);
  return run_scenario_trials(scenario, master_seed, trials, config, threads);
}

}  // namespace sskel
