#include "mc/montecarlo.hpp"

#include "mc/parallel_for.hpp"
#include "util/rng.hpp"

namespace sskel {

namespace {

/// Per-trial measurements, extracted in the worker and folded into the
/// summary afterwards *in trial order*, so aggregates are bit-identical
/// for every thread count.
struct TrialResult {
  bool all_decided = false;
  bool k_agreement = true;
  bool validity = true;
  bool bound_ok = true;
  bool lemmas_clean = true;
  int distinct = 0;
  int roots = 0;
  Round last_decision = 0;
  Round r_st = 0;
  std::int64_t messages = 0;
  std::int64_t bytes = 0;
  std::int64_t max_msg_bytes = 0;
};

}  // namespace

McSummary run_random_psrcs_trials(std::uint64_t master_seed, int trials,
                                  const RandomPsrcsParams& params,
                                  const KSetRunConfig& config,
                                  unsigned threads) {
  SSKEL_REQUIRE(trials >= 0);

  const std::vector<TrialResult> results = collect_parallel<TrialResult>(
      static_cast<std::size_t>(trials),
      [&](std::size_t t) {
        RandomPsrcsSource source(mix_seed(master_seed, t), params);
        const KSetRunReport report = run_kset(source, config);
        TrialResult r;
        r.all_decided = report.all_decided;
        r.k_agreement = report.verdict.k_agreement;
        r.validity = report.verdict.validity;
        r.bound_ok = !report.all_decided ||
                     report.last_decision_round <=
                         report.termination_bound(config.guard);
        r.lemmas_clean = report.lemma_violations.empty();
        r.distinct = report.distinct_values;
        r.roots = static_cast<int>(report.root_components_final.size());
        r.last_decision = report.last_decision_round;
        r.r_st = report.skeleton_last_change;
        r.messages = report.total_messages;
        r.bytes = report.total_bytes;
        r.max_msg_bytes = report.max_message_bytes;
        return r;
      },
      threads);

  McSummary summary;
  for (const TrialResult& r : results) {
    ++summary.runs;
    if (!r.all_decided) ++summary.undecided_runs;
    if (!r.k_agreement) ++summary.agreement_violations;
    if (!r.validity) ++summary.validity_violations;
    if (r.all_decided && !r.bound_ok) ++summary.bound_violations;
    if (!r.lemmas_clean) ++summary.lemma_violation_runs;

    summary.distinct_values.add(r.distinct);
    summary.distinct_histogram.add(r.distinct);
    summary.root_components.add(r.roots);
    summary.root_histogram.add(r.roots);
    if (r.all_decided) summary.last_decision_round.add(r.last_decision);
    summary.stabilization_round.add(r.r_st);
    summary.total_messages.add(static_cast<double>(r.messages));
    summary.total_bytes.add(static_cast<double>(r.bytes));
    summary.max_message_bytes.add(static_cast<double>(r.max_msg_bytes));
  }
  return summary;
}

}  // namespace sskel
