// ScenarioFactory: seeded trial generators for the Monte-Carlo engine.
//
// A scenario is "one way to produce an adversary": random Psrcs(k)
// graphs, crash failures, partitions, rotating stars, or a full
// partially synchronous network. The Monte-Carlo engine
// (run_scenario_trials) only sees the factory interface, so every
// experiment — abstract-model and network-backed alike — aggregates
// through one code path. A trial is a pure function of its seed, so
// results are reproducible and thread-count independent.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "adversary/partition.hpp"
#include "adversary/random_psrcs.hpp"
#include "kset/runner.hpp"
#include "net/driver.hpp"
#include "net/kset_net.hpp"
#include "net/link.hpp"
#include "rounds/trace.hpp"

namespace sskel {

/// One trial's outcome: the substrate-agnostic report plus network
/// accounting when the scenario is network-backed.
struct ScenarioTrial {
  KSetRunReport kset;
  bool net_backed = false;
  std::int64_t delivered_messages = 0;
  std::int64_t late_messages = 0;
  std::int64_t lost_messages = 0;
  /// Ring-plane flow-control stalls (0 on the event-queue plane).
  std::int64_t credit_stalls = 0;
  SimTime wall_clock = 0;  // simulated microseconds; 0 off-network
};

/// A seeded generator of independent trials. Implementations must make
/// run_trial a pure function of (seed, config) — no mutable state — so
/// the Monte-Carlo engine can run trials on any thread in any order.
class ScenarioFactory {
 public:
  virtual ~ScenarioFactory() = default;
  ScenarioFactory(const ScenarioFactory&) = delete;
  ScenarioFactory& operator=(const ScenarioFactory&) = delete;

  /// Scenario name for reports/tables (e.g. "random-psrcs").
  [[nodiscard]] virtual std::string name() const = 0;

  /// Number of processes in every trial.
  [[nodiscard]] virtual ProcId n() const = 0;

  /// Appends every constructor parameter that shapes trial outcomes
  /// to `out` — an identity byte string, not a wire format. The
  /// campaign fingerprint (CampaignSpec::fingerprint) mixes this in so
  /// a checkpoint refuses a resume under a scenario whose parameters
  /// drifted (same class, different crashes/noise/...). Pure virtual
  /// on purpose: a new scenario cannot silently opt out and reopen
  /// that hole. Two instances producing different trial distributions
  /// must never append identical bytes.
  virtual void append_fingerprint(std::vector<std::uint8_t>& out) const = 0;

  /// Runs one independent trial with the given seed.
  [[nodiscard]] virtual ScenarioTrial run_trial(
      std::uint64_t seed, const KSetRunConfig& config) const = 0;

  /// Opaque per-worker trial state a scenario may reuse across trials
  /// (persistent engine + process objects — DESIGN.md §13). Purity is
  /// preserved: a trial run with scratch must be bit-identical to one
  /// run without (the scheduler-equivalence tripwire pins this). One
  /// scratch must only serve one trial at a time.
  class Scratch {
   public:
    virtual ~Scratch() = default;
  };

  /// Creates worker scratch, or nullptr when the scenario has no
  /// reusable state (the default). The engine keeps one per
  /// worker/tile and threads it through run_trial.
  [[nodiscard]] virtual std::unique_ptr<Scratch> make_scratch() const {
    return nullptr;
  }

  /// Scratch-aware trial; the default ignores the scratch and
  /// delegates to the pure overload.
  [[nodiscard]] virtual ScenarioTrial run_trial(std::uint64_t seed,
                                                const KSetRunConfig& config,
                                                Scratch* scratch) const {
    (void)scratch;
    return run_trial(seed, config);
  }

  /// Re-runs trial `seed` with a trace recorder attached and returns
  /// the SSKT-encodable capture — the campaign engine's crash-artifact
  /// path for misbehaving trials. Purity makes this exact: the re-run
  /// is the same run. Returns nullopt when the scenario cannot record
  /// (network-backed trials — the default). Off the hot path; no
  /// scratch reuse.
  [[nodiscard]] virtual std::optional<RunCapture> capture_trial(
      std::uint64_t seed, const KSetRunConfig& config) const {
    (void)seed;
    (void)config;
    return std::nullopt;
  }

 protected:
  ScenarioFactory() = default;
};

/// Random graphs satisfying Psrcs(k) by construction (experiments E2,
/// E4, E5, E8). The seed picks cores, hubs and noise.
class RandomPsrcsScenario final : public ScenarioFactory {
 public:
  explicit RandomPsrcsScenario(RandomPsrcsParams params)
      : params_(params) {}

  [[nodiscard]] std::string name() const override { return "random-psrcs"; }
  [[nodiscard]] ProcId n() const override { return params_.n; }
  void append_fingerprint(std::vector<std::uint8_t>& out) const override;
  [[nodiscard]] ScenarioTrial run_trial(
      std::uint64_t seed, const KSetRunConfig& config) const override;
  [[nodiscard]] std::unique_ptr<Scratch> make_scratch() const override;
  [[nodiscard]] ScenarioTrial run_trial(std::uint64_t seed,
                                        const KSetRunConfig& config,
                                        Scratch* scratch) const override;
  [[nodiscard]] std::optional<RunCapture> capture_trial(
      std::uint64_t seed, const KSetRunConfig& config) const override;

  [[nodiscard]] const RandomPsrcsParams& params() const { return params_; }

 private:
  RandomPsrcsParams params_;
};

/// Classic synchronous crash failures (experiment E7's model): the
/// seed picks victims, crash rounds and partial-broadcast receivers.
class CrashScenario final : public ScenarioFactory {
 public:
  CrashScenario(ProcId n, int crashes, Round max_crash_round);

  [[nodiscard]] std::string name() const override { return "crash"; }
  [[nodiscard]] ProcId n() const override { return n_; }
  void append_fingerprint(std::vector<std::uint8_t>& out) const override;
  [[nodiscard]] ScenarioTrial run_trial(
      std::uint64_t seed, const KSetRunConfig& config) const override;
  [[nodiscard]] std::unique_ptr<Scratch> make_scratch() const override;
  [[nodiscard]] ScenarioTrial run_trial(std::uint64_t seed,
                                        const KSetRunConfig& config,
                                        Scratch* scratch) const override;
  [[nodiscard]] std::optional<RunCapture> capture_trial(
      std::uint64_t seed, const KSetRunConfig& config) const override;

 private:
  ProcId n_;
  int crashes_;
  Round max_crash_round_;
};

/// Partitioned systems (the paper's motivating k > 1 scenario): fixed
/// blocks, seeded transient cross-block noise.
class PartitionScenario final : public ScenarioFactory {
 public:
  explicit PartitionScenario(PartitionParams params);

  [[nodiscard]] std::string name() const override { return "partition"; }
  [[nodiscard]] ProcId n() const override { return n_; }
  void append_fingerprint(std::vector<std::uint8_t>& out) const override;
  [[nodiscard]] ScenarioTrial run_trial(
      std::uint64_t seed, const KSetRunConfig& config) const override;
  [[nodiscard]] std::unique_ptr<Scratch> make_scratch() const override;
  [[nodiscard]] ScenarioTrial run_trial(std::uint64_t seed,
                                        const KSetRunConfig& config,
                                        Scratch* scratch) const override;
  [[nodiscard]] std::optional<RunCapture> capture_trial(
      std::uint64_t seed, const KSetRunConfig& config) const override;

 private:
  PartitionParams params_;
  ProcId n_;
};

/// Rotating stars (experiment E12): per-round synchrony with zero
/// perpetual synchrony. Deterministic per trial except the initial
/// center, which the seed picks — Psrcs fails by design, so this is
/// the engine's negative control.
class RotatingScenario final : public ScenarioFactory {
 public:
  explicit RotatingScenario(ProcId n, Round hold = 1);

  [[nodiscard]] std::string name() const override { return "rotating-star"; }
  [[nodiscard]] ProcId n() const override { return n_; }
  void append_fingerprint(std::vector<std::uint8_t>& out) const override;
  [[nodiscard]] ScenarioTrial run_trial(
      std::uint64_t seed, const KSetRunConfig& config) const override;
  [[nodiscard]] std::unique_ptr<Scratch> make_scratch() const override;
  [[nodiscard]] ScenarioTrial run_trial(std::uint64_t seed,
                                        const KSetRunConfig& config,
                                        Scratch* scratch) const override;
  [[nodiscard]] std::optional<RunCapture> capture_trial(
      std::uint64_t seed, const KSetRunConfig& config) const override;

 private:
  ProcId n_;
  Round hold_;
};

/// Network-backed trials (experiment E11): Algorithm 1 over the
/// partially synchronous network driver. The trial seed overrides
/// net.seed (delay sampling); links and skews are fixed.
class NetScenario final : public ScenarioFactory {
 public:
  NetScenario(LinkMatrix links, NetConfig net);

  [[nodiscard]] std::string name() const override { return "net"; }
  [[nodiscard]] ProcId n() const override { return links_.n(); }
  void append_fingerprint(std::vector<std::uint8_t>& out) const override;
  [[nodiscard]] ScenarioTrial run_trial(
      std::uint64_t seed, const KSetRunConfig& config) const override;

 private:
  LinkMatrix links_;
  NetConfig net_;
};

}  // namespace sskel
