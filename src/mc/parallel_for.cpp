#include "mc/parallel_for.hpp"

#include <algorithm>

namespace sskel {

unsigned resolve_thread_count(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1u, hw);
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& fn,
                  unsigned threads) {
  if (count == 0) return;
  const unsigned workers = static_cast<unsigned>(
      std::min<std::size_t>(resolve_thread_count(threads), count));
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      fn(i);
    }
  };
  std::vector<std::jthread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker);
  // jthreads join on destruction.
}

}  // namespace sskel
