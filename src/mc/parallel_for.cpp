#include "mc/parallel_for.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "mc/steal_deque.hpp"

namespace sskel {

unsigned threads_from_env_value(const char* value, unsigned hardware) {
  const unsigned hw = std::max(1u, hardware);
  if (value == nullptr || *value == '\0') return hw;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  // Reject trailing garbage (allow trailing whitespace only).
  for (const char* c = end; c != nullptr && *c != '\0'; ++c) {
    if (std::isspace(static_cast<unsigned char>(*c)) == 0) return hw;
  }
  if (end == value || parsed <= 0) return hw;
  return static_cast<unsigned>(
      std::min<unsigned long>(static_cast<unsigned long>(parsed), hw));
}

unsigned resolve_thread_count(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  return threads_from_env_value(std::getenv("SSKEL_THREADS"), hw);
}

unsigned tiles_from_env_value(unsigned requested, const char* value,
                              unsigned hardware) {
  if (requested == 0) return threads_from_env_value(value, hardware);
  if (value == nullptr || *value == '\0') return requested;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  for (const char* c = end; c != nullptr && *c != '\0'; ++c) {
    if (std::isspace(static_cast<unsigned char>(*c)) == 0) return requested;
  }
  if (end == value || parsed <= 0) return requested;
  if (parsed >= static_cast<long>(requested)) return requested;
  return static_cast<unsigned>(parsed);
}

unsigned resolve_tile_count(unsigned requested) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  return tiles_from_env_value(requested, std::getenv("SSKEL_THREADS"), hw);
}

namespace detail {

namespace {
/// Set while the thread executes pool work (helpers always; the
/// submitting thread for the duration of its job), so nested
/// parallel_for calls run inline instead of deadlocking on the pool.
thread_local bool t_on_worker = false;
}  // namespace

struct WorkerPool::Impl {
  /// One in-flight job. Lives on the submitting thread's stack; the
  /// pool guarantees no helper touches it after run() returns.
  /// Chunks are dealt round-robin into one deque per participant
  /// before the job is published (the pool mutex orders the fills
  /// before any helper's first pop/steal).
  struct Job {
    void (*invoke)(void*, std::size_t) = nullptr;
    void* ctx = nullptr;
    std::size_t count = 0;
    std::size_t chunk = 1;
    unsigned participants = 1;
    std::vector<std::unique_ptr<StealDeque>> deques;
    std::atomic<unsigned> next_slot{1};  // slot 0 is the submitter
    std::atomic<std::int64_t> steals{0};
  };

  /// Serializes submitters: the pool runs one job at a time.
  std::mutex submit_mutex;

  /// Guards everything below.
  std::mutex mutex;
  std::condition_variable_any wake_cv;  // helpers park here between jobs
  std::condition_variable done_cv;      // submitter waits for helpers here
  Job* job = nullptr;
  std::uint64_t generation = 0;  // bumps per job; helpers watch it
  unsigned tickets = 0;          // helpers still allowed to join the job
  int in_flight = 0;             // helpers currently inside the job
  std::int64_t jobs = 0;
  std::int64_t steals_total = 0;

  std::vector<std::jthread> helpers;  // last member: joins before the rest dies

  static void run_chunk(Job& job, std::size_t chunk_idx) {
    const std::size_t begin = chunk_idx * job.chunk;
    const std::size_t end = std::min(job.count, begin + job.chunk);
    for (std::size_t i = begin; i < end; ++i) job.invoke(job.ctx, i);
  }

  /// Work loop for participant `slot`: drain the own deque, then
  /// steal. Exits only after one full sweep in which every deque
  /// reported *empty* — a lost steal CAS (kContended) means items may
  /// remain somewhere, so the sweep restarts. Items never reappear
  /// (all pushes precede the job's publication), so the sweep
  /// terminates.
  static void work(Job& job, unsigned slot) {
    StealDeque& own = *job.deques[slot];
    std::size_t chunk_idx = 0;
    while (true) {
      if (own.pop(chunk_idx)) {
        run_chunk(job, chunk_idx);
        continue;
      }
      bool contended = false;
      bool stole = false;
      for (unsigned step = 1; step < job.participants; ++step) {
        StealDeque& victim =
            *job.deques[(slot + step) % job.participants];
        const StealResult result = victim.steal(chunk_idx);
        if (result == StealResult::kStole) {
          job.steals.fetch_add(1, std::memory_order_relaxed);
          run_chunk(job, chunk_idx);
          stole = true;
          break;
        }
        if (result == StealResult::kContended) contended = true;
      }
      if (!stole && !contended) return;
    }
  }

  void helper_main(std::stop_token stop) {
    t_on_worker = true;
    std::unique_lock<std::mutex> lock(mutex);
    std::uint64_t seen = 0;
    while (true) {
      wake_cv.wait(lock, stop, [&] { return generation != seen; });
      if (stop.stop_requested()) return;
      seen = generation;
      if (job == nullptr || tickets == 0) continue;
      --tickets;
      ++in_flight;
      Job* current = job;
      lock.unlock();
      const unsigned slot =
          current->next_slot.fetch_add(1, std::memory_order_relaxed);
      // More tickets than deques can exist when the pool has more
      // helpers than the job has participants; surplus joiners leave.
      if (slot < current->participants) work(*current, slot);
      lock.lock();
      if (--in_flight == 0) done_cv.notify_one();
    }
  }

  void ensure_helpers() {
    if (!helpers.empty()) return;
    const unsigned target = resolve_thread_count(0);
    const unsigned helper_target = target > 1 ? target - 1 : 0;
    helpers.reserve(helper_target);
    for (unsigned h = 0; h < helper_target; ++h) {
      helpers.emplace_back(
          [this](std::stop_token stop) { helper_main(stop); });
    }
  }
};

WorkerPool::WorkerPool() = default;

/// jthread members request stop and join: helpers wake from their
/// stop-token-aware wait and return, so process exit is clean (no
/// leaked threads for the sanitizers to flag).
WorkerPool::~WorkerPool() = default;

WorkerPool& WorkerPool::instance() {
  static WorkerPool pool;
  return pool;
}

WorkerPool::Impl* WorkerPool::impl() {
  std::call_once(once_, [this] { impl_ = std::make_unique<Impl>(); });
  return impl_.get();
}

bool WorkerPool::on_worker_thread() { return t_on_worker; }

unsigned WorkerPool::helper_count() {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mutex);
  return static_cast<unsigned>(i->helpers.size());
}

unsigned WorkerPool::size() {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mutex);
  if (!i->helpers.empty()) {
    return static_cast<unsigned>(i->helpers.size()) + 1;
  }
  return resolve_thread_count(0);
}

std::int64_t WorkerPool::jobs_dispatched() {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mutex);
  return i->jobs;
}

std::int64_t WorkerPool::chunks_stolen() {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mutex);
  return i->steals_total;
}

void WorkerPool::run(std::size_t count, unsigned participants,
                     void (*invoke)(void*, std::size_t), void* ctx) {
  Impl& pool = *impl();
  // One job at a time: concurrent submitters queue here.
  std::lock_guard<std::mutex> submit(pool.submit_mutex);

  Impl::Job job;
  job.invoke = invoke;
  job.ctx = ctx;
  job.count = count;
  job.participants = participants;
  // Chunk granularity: small enough that uneven trial costs still
  // balance through stealing (~8 chunks/worker), big enough that a
  // steal is rare relative to local pops.
  job.chunk = std::max<std::size_t>(
      1, count / (static_cast<std::size_t>(participants) * 8));
  const std::size_t chunks = (count + job.chunk - 1) / job.chunk;
  const std::size_t per_deque =
      (chunks + participants - 1) / static_cast<std::size_t>(participants);
  job.deques.reserve(participants);
  for (unsigned w = 0; w < participants; ++w) {
    job.deques.push_back(std::make_unique<StealDeque>(per_deque));
  }
  // Deal chunks round-robin so every participant starts with a spread
  // of the index space (costs often correlate with index locality).
  // Fills happen before publication: the pool mutex below orders them
  // before any helper's first pop or steal.
  for (std::size_t c = 0; c < chunks; ++c) {
    const bool pushed = job.deques[c % participants]->push(c);
    SSKEL_ASSERT(pushed);
  }

  {
    std::lock_guard<std::mutex> lock(pool.mutex);
    pool.ensure_helpers();
    pool.job = &job;
    pool.tickets = participants - 1;  // the caller is a participant too
    ++pool.generation;
    ++pool.jobs;
  }
  pool.wake_cv.notify_all();

  // The submitting thread works its own deque (slot 0); mark it as
  // "inside the pool" so the job's own nested parallel calls run
  // inline.
  t_on_worker = true;
  Impl::work(job, /*slot=*/0);
  t_on_worker = false;

  // Every chunk is claimed; wait until every helper that joined has
  // left the job before the stack frame holding it unwinds.
  std::unique_lock<std::mutex> lock(pool.mutex);
  pool.done_cv.wait(lock, [&] { return pool.in_flight == 0; });
  pool.job = nullptr;
  pool.tickets = 0;
  pool.steals_total += job.steals.load(std::memory_order_relaxed);
}

}  // namespace detail

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& fn,
                  unsigned threads) {
  parallel_for<const std::function<void(std::size_t)>&>(count, fn, threads);
}

}  // namespace sskel
