// Chase-Lev work-stealing deque (DESIGN.md §12).
//
// The Monte-Carlo worker pool used to hand out chunks from one shared
// atomic cursor: every claim by every worker contended the same cache
// line. The deque flips the ownership: each participant owns a deque
// of chunk ids, pops locally from the bottom (no contention at all
// while its own work lasts), and only when it runs dry does it touch
// another participant's line — stealing one chunk from the *top*, the
// cold end. This is the classic Chase-Lev layout (SPAA'05) with the
// C11-memory-model orderings of Lê et al. (PPoPP'13).
//
// Scope deliberately narrower than a general deque, matching how the
// pool uses it: the job's chunks are pushed before any worker starts
// (publication happens-before via the pool's job mutex), after which
// only pop/steal run — so the buffer never grows and capacity is
// fixed at construction. push() still implements the full owner-side
// protocol (and the tests exercise concurrent push/steal), it just
// refuses to grow past capacity.
//
// Determinism note: which worker executes which chunk varies run to
// run; results must be keyed by item index (the Monte-Carlo
// discipline), never by completion order. With seed-per-trial mixing,
// any thread count then produces bit-identical aggregates — pinned by
// tests/mc/steal_determinism_test.cpp.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

// ThreadSanitizer does not model std::atomic_thread_fence (GCC's
// -Wtsan promotes the call to an error), so under TSan the two
// fence-dependent StoreLoad/LoadLoad edges below are expressed as
// seq_cst operations on the atomics themselves — same ordering
// guarantees, visible to the race detector.
#if defined(__SANITIZE_THREAD__)
#define SSKEL_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SSKEL_TSAN 1
#endif
#endif
#ifndef SSKEL_TSAN
#define SSKEL_TSAN 0
#endif

namespace sskel {

enum class StealResult : std::uint8_t {
  kStole,      // one item copied out of the top
  kEmpty,      // the deque was (momentarily) empty
  kContended,  // lost the top CAS to another thief; items may remain
};

/// Single-owner deque of std::size_t items (chunk ids). The owner
/// pushes and pops at the bottom; any thread steals from the top.
class StealDeque {
 public:
  /// Fixed capacity, rounded up to a power of two (min 1).
  explicit StealDeque(std::size_t capacity)
      : buffer_(ceil_pow2(capacity == 0 ? 1 : capacity)),
        mask_(buffer_.size() - 1) {}

  StealDeque(const StealDeque&) = delete;
  StealDeque& operator=(const StealDeque&) = delete;

  [[nodiscard]] std::size_t capacity() const { return buffer_.size(); }

  /// Momentary item count (monitoring/tests; racy by nature).
  [[nodiscard]] std::size_t size() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  /// Owner only. False when the deque is full (fixed capacity — the
  /// pool sizes each deque for its whole prepopulated share).
  bool push(std::size_t item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    if (b - t >= static_cast<std::int64_t>(buffer_.size())) return false;
    buffer_[static_cast<std::size_t>(b) & mask_].store(
        item, std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_release);
    return true;
  }

  /// Owner only: LIFO pop from the bottom. False when empty.
  bool pop(std::size_t& item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
#if SSKEL_TSAN
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
#else
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
#endif
    if (t < b) {
      // More than one item: safe to take the bottom uncontended.
      item = buffer_[static_cast<std::size_t>(b) & mask_].load(
          std::memory_order_relaxed);
      return true;
    }
    bool got = false;
    if (t == b) {
      // Last item: race the thieves for it via the top CAS.
      item = buffer_[static_cast<std::size_t>(b) & mask_].load(
          std::memory_order_relaxed);
      got = top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                         std::memory_order_relaxed);
    }
    bottom_.store(b + 1, std::memory_order_relaxed);
    return got;
  }

  /// Any thread: FIFO steal from the top.
  StealResult steal(std::size_t& item) {
#if SSKEL_TSAN
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
#else
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
#endif
    if (t >= b) return StealResult::kEmpty;
    item = buffer_[static_cast<std::size_t>(t) & mask_].load(
        std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return StealResult::kContended;
    }
    return StealResult::kStole;
  }

 private:
  [[nodiscard]] static std::size_t ceil_pow2(std::size_t v) {
    std::size_t p = 1;
    while (p < v) p <<= 1U;
    return p;
  }

  std::vector<std::atomic<std::size_t>> buffer_;
  std::size_t mask_;
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
};

}  // namespace sskel
