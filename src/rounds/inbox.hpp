// Reusable round-inbox storage for substrates that deposit messages
// incrementally (DESIGN.md §12).
//
// A round synchronizer with skews below the round duration keeps at
// most two rounds live per process: its current round r and round
// r + 1, which early-clock peers may already be sending. InboxBuffer
// exploits that bound with exactly two parity-indexed slots per
// process, allocated once for the whole run. Acquiring a slot for a
// new round resets its sender set but deliberately leaves the message
// array untouched: Inbox<Msg>::from() refuses senders outside HO(p,r)
// (rounds/algorithm.hpp), so stale entries are unreachable, and the
// per-round n-element message reallocation the event-queue driver used
// to pay disappears from the hot path.
#pragma once

#include <vector>

#include "util/assert.hpp"
#include "util/proc_set.hpp"
#include "util/types.hpp"

namespace sskel {

/// One process's inbox for one live round: the sender set (exactly
/// HO(p, r) so far) plus messages indexed by sender.
template <typename Msg>
struct RoundInboxSlot {
  Round round = 0;  // 0 = never acquired (rounds are 1-based)
  ProcSet senders;
  std::vector<Msg> messages;
};

/// Two reusable inbox slots per process, keyed by round parity.
/// Callers must respect the two-live-rounds window: acquiring round
/// r + 2 recycles round r's slot.
template <typename Msg>
class InboxBuffer {
 public:
  explicit InboxBuffer(ProcId n) : n_(n) {
    SSKEL_REQUIRE(n > 0);
    slots_.resize(2 * static_cast<std::size_t>(n));
    for (RoundInboxSlot<Msg>& slot : slots_) {
      slot.senders = ProcSet(n);
      slot.messages.assign(static_cast<std::size_t>(n), Msg{});
    }
  }

  /// The slot for (p, r), reset (sender set emptied, round stamped) on
  /// first acquisition for r. Depositing and consuming within the same
  /// round share the identical slot object.
  RoundInboxSlot<Msg>& acquire(ProcId p, Round r) {
    RoundInboxSlot<Msg>& slot =
        slots_[2 * static_cast<std::size_t>(p) +
               (static_cast<std::size_t>(r) & 1U)];
    if (slot.round != r) {
      slot.round = r;
      slot.senders.clear();
    }
    return slot;
  }

  [[nodiscard]] ProcId n() const { return n_; }

 private:
  ProcId n_;
  std::vector<RoundInboxSlot<Msg>> slots_;
};

}  // namespace sskel
