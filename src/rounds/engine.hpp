// RoundEngine: the execution-substrate boundary of the library.
//
// The paper's central reduction (Sec. II, Eq. (5)-(7)) is that
// asynchrony, clock skew and faults all collapse into one object — the
// per-round communication graph G^r. Everything above that object
// (Algorithm 1, skeleton trackers, lemma monitors, Psrcs(k) analysis)
// therefore must not care *where* the graphs come from. RoundEngine is
// that boundary: any substrate that can (1) execute communication-
// closed rounds over a fixed process set and (2) surface the round's
// communication graph implements it, and the whole upper stack runs
// unchanged on top.
//
// Two substrates ship today:
//   * Simulator (rounds/simulator.hpp) — deterministic rounds driven
//     by an abstract GraphSource (the paper's model, verbatim);
//   * NetRoundDriver (net/driver.hpp) — a round synchronizer over a
//     simulated partially synchronous network, whose *derived* graphs
//     encode real message timing, deadlines and drops.
//
// Shared machinery lives here: the ObserverBus (per-round callbacks
// receiving G^r after the round's transitions — a consistent
// end-of-round cut on every substrate), the RunTrace (per-round
// message/byte accounting), the optional message sizer, and the
// run/run_until drivers, which are defined once so that predicate
// evaluation costs are identical on every substrate (done() runs at
// most once on entry and once per completed round).
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "graph/digraph.hpp"
#include "rounds/algorithm.hpp"
#include "rounds/trace.hpp"
#include "util/assert.hpp"
#include "util/types.hpp"

namespace sskel {

/// Fan-out of per-round callbacks. Observers fire in registration
/// order once per completed round, receiving the round number and the
/// round's communication graph (self-loops closed), with every process
/// already in its end-of-round state.
class ObserverBus {
 public:
  using Observer = std::function<void(Round, const Digraph&)>;

  void add(Observer obs);
  void notify(Round r, const Digraph& graph) const;

  [[nodiscard]] std::size_t size() const { return observers_.size(); }
  [[nodiscard]] bool empty() const { return observers_.empty(); }

  /// Drops every observer (engine reuse across trials).
  void clear() { observers_.clear(); }

 private:
  std::vector<Observer> observers_;
};

/// A substrate executing communication-closed rounds for one algorithm
/// instance per process. `Msg` is the algorithm's message type.
template <typename Msg>
class RoundEngine {
 public:
  using Process = Algorithm<Msg>;
  /// Optional encoded-size model: bytes for one message instance.
  using MessageSizer = std::function<std::int64_t(const Msg&)>;

  virtual ~RoundEngine() = default;

  RoundEngine(const RoundEngine&) = delete;
  RoundEngine& operator=(const RoundEngine&) = delete;

  /// Number of processes in the universe.
  [[nodiscard]] virtual ProcId n() const = 0;

  /// Rounds fully executed so far (every process has finished its
  /// transition for each counted round).
  [[nodiscard]] virtual Round rounds_completed() const = 0;

  [[nodiscard]] virtual Process& process(ProcId p) = 0;
  [[nodiscard]] virtual const Process& process(ProcId p) const = 0;

  /// Executes one full round; returns the round's communication graph
  /// (self-loops closed; for network substrates, the *derived* graph
  /// of on-time deliveries).
  virtual const Digraph& step() = 0;

  /// Observer registration, shared across substrates.
  [[nodiscard]] ObserverBus& observers() { return bus_; }
  void add_observer(ObserverBus::Observer obs) { bus_.add(std::move(obs)); }

  /// Installs the byte-accounting model; per-round byte totals then
  /// appear in the trace.
  void set_message_sizer(MessageSizer sizer) { sizer_ = std::move(sizer); }

  /// Per-round message/byte accounting of the run so far.
  [[nodiscard]] const RunTrace& trace() const { return trace_; }

  /// Runs `rounds` additional rounds.
  void run(Round rounds) {
    SSKEL_REQUIRE(rounds >= 0);
    for (Round i = 0; i < rounds; ++i) step();
  }

  /// Runs until `done()` holds or `rounds_completed()` reaches
  /// `max_rounds`; returns true iff the predicate fired. `done` is
  /// evaluated once on entry and once after each completed round —
  /// never twice for the same state, so expensive predicates are not
  /// double-charged.
  bool run_until(const std::function<bool()>& done, Round max_rounds) {
    if (done()) return true;
    while (rounds_completed() < max_rounds) {
      step();
      if (done()) return true;
    }
    return false;
  }

 protected:
  RoundEngine() = default;

  /// For substrates that support trial reuse (Simulator::reset):
  /// forgets observers, sizer and trace so the next run starts from
  /// the freshly-constructed engine contract.
  void reset_run_state() {
    bus_.clear();
    sizer_ = nullptr;
    trace_.clear();
  }

  ObserverBus bus_;
  MessageSizer sizer_;
  RunTrace trace_;
};

}  // namespace sskel
