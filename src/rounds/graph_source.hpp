// GraphSource: where per-round communication graphs come from.
//
// In the paper's model (Sec. II) a run is fully determined by the
// processes' initial states and the sequence of communication graphs
// G^1, G^2, ... — asynchrony and failures are *not* modelled
// separately; both surface only as missing edges. A GraphSource is
// that sequence: the simulator queries it once per round. Concrete
// adversaries (random Psrcs(k) generators, the Theorem 2 construction,
// crash adversaries, ...) live in src/adversary.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "graph/digraph.hpp"
#include "util/types.hpp"

namespace sskel {

class GraphSource {
 public:
  virtual ~GraphSource() = default;

  /// Number of processes in the universe.
  [[nodiscard]] virtual ProcId n() const = 0;

  /// The communication graph of round r (r >= 1). Must be defined for
  /// every r — runs are infinite; sources typically become periodic or
  /// constant after a stabilization prefix. The simulator adds
  /// self-loops on top of whatever is returned (a process always
  /// hears from itself).
  [[nodiscard]] virtual Digraph graph(Round r) = 0;

  /// Writes the round-r graph into `out`, reusing its adjacency
  /// storage when already sized for this universe. Sources on the
  /// Monte-Carlo hot path override this so a steady-state round
  /// performs no graph allocations; the default delegates to graph().
  virtual void graph_into(Round r, Digraph& out) { out = graph(r); }
};

/// A fixed prefix of graphs followed by the last graph forever. The
/// canonical way to script a run: the suffix graph is then exactly the
/// communication graph of every late round, so the stable skeleton is
/// the intersection of the prefix with the suffix graph.
class ScheduleSource final : public GraphSource {
 public:
  /// `prefix` must be nonempty; all graphs must share one universe.
  explicit ScheduleSource(std::vector<Digraph> prefix);

  [[nodiscard]] ProcId n() const override;
  [[nodiscard]] Digraph graph(Round r) override;
  void graph_into(Round r, Digraph& out) override;

  [[nodiscard]] std::size_t prefix_rounds() const { return prefix_.size(); }

 private:
  std::vector<Digraph> prefix_;
};

/// Wraps a callable `Round -> Digraph`; handy in tests.
class FunctionSource final : public GraphSource {
 public:
  FunctionSource(ProcId n, std::function<Digraph(Round)> fn);

  [[nodiscard]] ProcId n() const override { return n_; }
  [[nodiscard]] Digraph graph(Round r) override { return fn_(r); }

 private:
  ProcId n_;
  std::function<Digraph(Round)> fn_;
};

}  // namespace sskel
