// The framed trace container (DESIGN.md §14).
//
// Encoding trusts its caller (SSKEL_REQUIRE on malformed captures);
// decoding trusts nothing — captures travel as files, CI artifacts and
// fuzz corpora, so every field is bounds- and range-checked against
// the bytes that remain and rejection surfaces as a DecodeError, never
// as an abort, OOM or out-of-bounds access.
#include "rounds/trace.hpp"

#include <limits>

#include "rounds/record.hpp"
#include "util/varint.hpp"

namespace sskel {

namespace {

constexpr std::uint8_t kMagic[4] = {'S', 'S', 'K', 'T'};
constexpr std::uint64_t kVersion = 1;

constexpr std::uint64_t kMaxRound =
    static_cast<std::uint64_t>(std::numeric_limits<Round>::max());
constexpr std::uint64_t kMaxTime =
    static_cast<std::uint64_t>(std::numeric_limits<SimTime>::max());
constexpr std::uint64_t kMaxStat =
    static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max());

/// Appends one frame: type byte, varint payload length, payload.
void put_frame(std::vector<std::uint8_t>& out, TraceFrame type,
               const std::vector<std::uint8_t>& payload) {
  out.push_back(static_cast<std::uint8_t>(type));
  put_varint(out, payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
}

[[nodiscard]] bool read_proc(ByteReader& r, ProcId n, ProcId& out,
                             const char* field) {
  std::uint64_t v = 0;
  if (!r.read_varint_max(v, static_cast<std::uint64_t>(n) - 1, field)) {
    return false;
  }
  out = static_cast<ProcId>(v);
  return true;
}

[[nodiscard]] bool read_round(ByteReader& r, Round& out, const char* field) {
  std::uint64_t v = 0;
  if (!r.read_varint_max(v, kMaxRound, field)) return false;
  if (v == 0) return r.fail(DecodeStatus::kValueOutOfRange, field);
  out = static_cast<Round>(v);
  return true;
}

[[nodiscard]] bool read_time(ByteReader& r, SimTime& out, const char* field) {
  std::uint64_t v = 0;
  if (!r.read_varint_max(v, kMaxTime, field)) return false;
  out = static_cast<SimTime>(v);
  return true;
}

}  // namespace

std::vector<std::uint8_t> encode_trace(const RunCapture& c) {
  SSKEL_REQUIRE(c.header.n > 0);
  SSKEL_REQUIRE(c.header.round_duration >= 0);
  std::vector<std::uint8_t> out(kMagic, kMagic + 4);
  put_varint(out, kVersion);

  std::vector<std::uint8_t> payload;
  put_varint(payload, static_cast<std::uint64_t>(c.header.n));
  put_varint(payload, static_cast<std::uint64_t>(c.header.source));
  put_varint(payload, c.header.seed);
  put_varint(payload, static_cast<std::uint64_t>(c.header.round_duration));
  put_frame(out, TraceFrame::kHeader, payload);

  for (std::size_t i = 0; i < c.graphs.size(); ++i) {
    SSKEL_REQUIRE(c.graphs[i].n() == c.header.n);
    payload.clear();
    put_varint(payload, i + 1);
    encode_graph_body(payload, c.graphs[i]);
    put_frame(out, TraceFrame::kGraph, payload);
  }
  for (std::size_t i = 0; i < c.stats.size(); ++i) {
    const RoundStats& s = c.stats[i];
    SSKEL_REQUIRE(s.round == static_cast<Round>(i) + 1);
    SSKEL_REQUIRE(s.messages_delivered >= 0 && s.bytes_delivered >= 0 &&
                  s.max_message_bytes >= 0);
    payload.clear();
    put_varint(payload, i + 1);
    put_varint(payload, static_cast<std::uint64_t>(s.messages_delivered));
    put_varint(payload, static_cast<std::uint64_t>(s.bytes_delivered));
    put_varint(payload, static_cast<std::uint64_t>(s.max_message_bytes));
    put_frame(out, TraceFrame::kRoundStats, payload);
  }
  for (const MessageRecord& m : c.messages) {
    SSKEL_REQUIRE(m.round >= 1);
    SSKEL_REQUIRE(m.sender >= 0 && m.sender < c.header.n);
    payload.clear();
    put_varint(payload, static_cast<std::uint64_t>(m.round));
    put_varint(payload, static_cast<std::uint64_t>(m.sender));
    put_varint(payload, m.payload.size());
    payload.insert(payload.end(), m.payload.begin(), m.payload.end());
    put_frame(out, TraceFrame::kMessage, payload);
  }
  for (const DeliveryRecord& d : c.deliveries) {
    SSKEL_REQUIRE(d.round >= 1);
    SSKEL_REQUIRE(d.from >= 0 && d.from < c.header.n);
    SSKEL_REQUIRE(d.to >= 0 && d.to < c.header.n);
    SSKEL_REQUIRE(d.time >= 0);
    payload.clear();
    put_varint(payload, static_cast<std::uint64_t>(d.round));
    put_varint(payload, static_cast<std::uint64_t>(d.from));
    put_varint(payload, static_cast<std::uint64_t>(d.to));
    put_varint(payload, static_cast<std::uint64_t>(d.kind));
    put_varint(payload, static_cast<std::uint64_t>(d.time));
    put_frame(out, TraceFrame::kDelivery, payload);
  }
  for (const CloseRecord& cl : c.closes) {
    SSKEL_REQUIRE(cl.round >= 1);
    SSKEL_REQUIRE(cl.proc >= 0 && cl.proc < c.header.n);
    SSKEL_REQUIRE(cl.time >= 0);
    payload.clear();
    put_varint(payload, static_cast<std::uint64_t>(cl.round));
    put_varint(payload, static_cast<std::uint64_t>(cl.proc));
    put_varint(payload, static_cast<std::uint64_t>(cl.time));
    put_frame(out, TraceFrame::kClose, payload);
  }
  payload.clear();
  put_frame(out, TraceFrame::kEnd, payload);
  return out;
}

DecodeResult<RunCapture> decode_trace(const std::vector<std::uint8_t>& bytes) {
  ByteReader reader(bytes.data(), bytes.size());
  if (!reader.require_bytes(4, "magic")) return reader.error();
  for (std::size_t i = 0; i < 4; ++i) {
    if (reader.cursor()[i] != kMagic[i]) {
      return DecodeError{DecodeStatus::kBadMagic, reader.pos() + i, "magic"};
    }
  }
  reader.skip(4);
  std::uint64_t version = 0;
  if (!reader.read_varint(version, "version")) return reader.error();
  if (version != kVersion) {
    return DecodeError{DecodeStatus::kBadVersion, reader.pos(), "version"};
  }

  RunCapture c;
  bool have_header = false;
  bool have_end = false;
  while (!reader.at_end()) {
    if (have_end) {
      return DecodeError{DecodeStatus::kTrailingBytes, reader.pos(), "frame"};
    }
    const std::size_t frame_start = reader.pos();
    std::uint8_t type_byte = 0;
    if (!reader.read_u8(type_byte, "frame type")) return reader.error();
    std::uint64_t length = 0;
    if (!reader.read_varint(length, "frame length")) return reader.error();
    if (length > reader.remaining()) {
      return DecodeError{DecodeStatus::kLimitExceeded, frame_start,
                         "frame length"};
    }
    // Parse the payload through a sub-reader confined to the declared
    // length; a frame whose fields consume more or less than `length`
    // is malformed.
    ByteReader frame(reader.cursor(), static_cast<std::size_t>(length));
    reader.skip(static_cast<std::size_t>(length));
    const auto frame_error = [&](const DecodeError& err) {
      // Re-anchor sub-reader offsets to the whole input.
      return DecodeError{err.status, frame_start + 1 + err.offset, err.field};
    };
    const auto type = static_cast<TraceFrame>(type_byte);
    if (type != TraceFrame::kHeader && !have_header) {
      return DecodeError{DecodeStatus::kBadFrame, frame_start, "frame order"};
    }
    switch (type) {
      case TraceFrame::kHeader: {
        if (have_header) {
          return DecodeError{DecodeStatus::kBadFrame, frame_start,
                             "duplicate header"};
        }
        std::uint64_t n_wide = 0;
        if (!frame.read_varint_max(n_wide, kMaxDecodeUniverse, "header n")) {
          return frame_error(frame.error());
        }
        if (n_wide == 0) {
          return frame_error(DecodeError{DecodeStatus::kValueOutOfRange,
                                         frame.pos(), "header n"});
        }
        std::uint64_t source = 0;
        if (!frame.read_varint_max(
                source, static_cast<std::uint64_t>(TraceSource::kNetEventQueue),
                "header source")) {
          return frame_error(frame.error());
        }
        std::uint64_t seed = 0;
        if (!frame.read_varint(seed, "header seed")) {
          return frame_error(frame.error());
        }
        SimTime duration = 0;
        if (!read_time(frame, duration, "header round duration")) {
          return frame_error(frame.error());
        }
        c.header = TraceHeader{static_cast<ProcId>(n_wide),
                               static_cast<TraceSource>(source), seed,
                               duration};
        have_header = true;
        break;
      }
      case TraceFrame::kGraph: {
        Round round = 0;
        if (!read_round(frame, round, "graph round")) {
          return frame_error(frame.error());
        }
        if (round != static_cast<Round>(c.graphs.size()) + 1) {
          return DecodeError{DecodeStatus::kBadFrame, frame_start,
                             "graph round order"};
        }
        Digraph g;
        if (!decode_graph_body(frame, c.header.n, g)) {
          return frame_error(frame.error());
        }
        c.graphs.push_back(std::move(g));
        break;
      }
      case TraceFrame::kRoundStats: {
        Round round = 0;
        if (!read_round(frame, round, "stats round")) {
          return frame_error(frame.error());
        }
        if (round != static_cast<Round>(c.stats.size()) + 1) {
          return DecodeError{DecodeStatus::kBadFrame, frame_start,
                             "stats round order"};
        }
        RoundStats s;
        s.round = round;
        std::uint64_t v = 0;
        if (!frame.read_varint_max(v, kMaxStat, "stats messages")) {
          return frame_error(frame.error());
        }
        s.messages_delivered = static_cast<std::int64_t>(v);
        if (!frame.read_varint_max(v, kMaxStat, "stats bytes")) {
          return frame_error(frame.error());
        }
        s.bytes_delivered = static_cast<std::int64_t>(v);
        if (!frame.read_varint_max(v, kMaxStat, "stats max bytes")) {
          return frame_error(frame.error());
        }
        s.max_message_bytes = static_cast<std::int64_t>(v);
        c.stats.push_back(s);
        break;
      }
      case TraceFrame::kMessage: {
        MessageRecord m;
        if (!read_round(frame, m.round, "message round") ||
            !read_proc(frame, c.header.n, m.sender, "message sender")) {
          return frame_error(frame.error());
        }
        std::uint64_t size = 0;
        if (!frame.read_varint(size, "message size")) {
          return frame_error(frame.error());
        }
        if (size != frame.remaining()) {
          return frame_error(DecodeError{DecodeStatus::kLimitExceeded,
                                         frame.pos(), "message size"});
        }
        m.payload.assign(frame.cursor(), frame.cursor() + size);
        frame.skip(static_cast<std::size_t>(size));
        c.messages.push_back(std::move(m));
        break;
      }
      case TraceFrame::kDelivery: {
        DeliveryRecord d;
        std::uint64_t kind = 0;
        if (!read_round(frame, d.round, "delivery round") ||
            !read_proc(frame, c.header.n, d.from, "delivery from") ||
            !read_proc(frame, c.header.n, d.to, "delivery to") ||
            !frame.read_varint_max(
                kind, static_cast<std::uint64_t>(DeliveryKind::kTieDiscard),
                "delivery kind") ||
            !read_time(frame, d.time, "delivery time")) {
          return frame_error(frame.error());
        }
        d.kind = static_cast<DeliveryKind>(kind);
        c.deliveries.push_back(d);
        break;
      }
      case TraceFrame::kClose: {
        CloseRecord cl;
        if (!read_round(frame, cl.round, "close round") ||
            !read_proc(frame, c.header.n, cl.proc, "close proc") ||
            !read_time(frame, cl.time, "close time")) {
          return frame_error(frame.error());
        }
        c.closes.push_back(cl);
        break;
      }
      case TraceFrame::kEnd: {
        have_end = true;
        break;
      }
      default:
        return DecodeError{DecodeStatus::kBadFrame, frame_start, "frame type"};
    }
    if (!frame.at_end()) {
      return frame_error(DecodeError{DecodeStatus::kTrailingBytes, frame.pos(),
                                     "frame payload"});
    }
  }
  if (!have_header) {
    return DecodeError{DecodeStatus::kBadFrame, reader.pos(), "missing header"};
  }
  if (!have_end) {
    return DecodeError{DecodeStatus::kTruncated, reader.pos(),
                       "missing end frame"};
  }
  return c;
}

}  // namespace sskel
