// The deterministic round simulator.
//
// Executes communication-closed rounds over a fixed set of processes:
// every round r, (1) query the GraphSource for G^r and close it under
// self-loops, (2) invoke every sending function S_p^r, (3) deliver to
// each p exactly the messages of its in-neighbors in G^r, (4) invoke
// every transition function T_p^r. Step (2) completes before any step
// (4) starts, so a message sent in round r can only be received in
// round r — the communication-closed property of Sec. II.
//
// Observers (per-round callbacks receiving G^r) let higher layers —
// skeleton trackers, lemma monitors, predicate checkers — watch a run
// without the kernel depending on them.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "rounds/algorithm.hpp"
#include "rounds/graph_source.hpp"
#include "rounds/trace.hpp"
#include "util/assert.hpp"

namespace sskel {

template <typename Msg>
class Simulator {
 public:
  using Process = Algorithm<Msg>;
  using Observer = std::function<void(Round, const Digraph&)>;
  /// Optional encoded-size model: bytes for one message instance.
  using MessageSizer = std::function<std::int64_t(const Msg&)>;

  /// Takes ownership of the processes. `processes[i]` must have id i.
  Simulator(GraphSource& source,
            std::vector<std::unique_ptr<Process>> processes)
      : source_(source), processes_(std::move(processes)) {
    SSKEL_REQUIRE(!processes_.empty());
    SSKEL_REQUIRE(static_cast<std::size_t>(source_.n()) == processes_.size());
    for (std::size_t i = 0; i < processes_.size(); ++i) {
      SSKEL_REQUIRE(processes_[i] != nullptr);
      SSKEL_REQUIRE(processes_[i]->id() == static_cast<ProcId>(i));
    }
    outbox_.resize(processes_.size());
  }

  [[nodiscard]] ProcId n() const { return source_.n(); }
  [[nodiscard]] Round current_round() const { return round_; }
  [[nodiscard]] const RunTrace& trace() const { return trace_; }

  [[nodiscard]] Process& process(ProcId p) {
    SSKEL_REQUIRE(p >= 0 && p < n());
    return *processes_[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] const Process& process(ProcId p) const {
    SSKEL_REQUIRE(p >= 0 && p < n());
    return *processes_[static_cast<std::size_t>(p)];
  }

  void add_observer(Observer obs) { observers_.push_back(std::move(obs)); }

  void set_message_sizer(MessageSizer sizer) { sizer_ = std::move(sizer); }

  /// Executes one full round; returns the communication graph used
  /// (after self-loop closure).
  const Digraph& step() {
    const Round r = ++round_;
    graph_ = source_.graph(r);
    SSKEL_REQUIRE(graph_.n() == n());
    SSKEL_REQUIRE(graph_.nodes() == ProcSet::full(n()));
    graph_.add_self_loops();

    for (const Observer& obs : observers_) obs(r, graph_);

    // Phase 1: all sends, from beginning-of-round state.
    for (std::size_t i = 0; i < processes_.size(); ++i) {
      outbox_[i] = processes_[i]->send(r);
    }

    // Phase 2: deliveries + transitions.
    RoundStats stats;
    stats.round = r;
    for (ProcId p = 0; p < n(); ++p) {
      const ProcSet& senders = graph_.in_neighbors(p);
      stats.messages_delivered += senders.count();
      if (sizer_) {
        for (ProcId q : senders) {
          const std::int64_t bytes =
              sizer_(outbox_[static_cast<std::size_t>(q)]);
          stats.bytes_delivered += bytes;
          stats.max_message_bytes = std::max(stats.max_message_bytes, bytes);
        }
      }
      const Inbox<Msg> inbox(senders, outbox_);
      processes_[static_cast<std::size_t>(p)]->transition(r, inbox);
    }
    trace_.record(stats);
    return graph_;
  }

  /// Runs `rounds` additional rounds.
  void run(Round rounds) {
    SSKEL_REQUIRE(rounds >= 0);
    for (Round i = 0; i < rounds; ++i) step();
  }

  /// Runs until `done()` returns true (checked after every round) or
  /// `max_rounds` total rounds have executed; returns true iff the
  /// predicate fired.
  bool run_until(const std::function<bool()>& done, Round max_rounds) {
    while (round_ < max_rounds) {
      step();
      if (done()) return true;
    }
    return done();
  }

 private:
  GraphSource& source_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<Observer> observers_;
  MessageSizer sizer_;
  std::vector<Msg> outbox_;
  Digraph graph_;
  Round round_ = 0;
  RunTrace trace_;
};

}  // namespace sskel
