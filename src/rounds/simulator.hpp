// The deterministic round simulator: the GraphSource-backed
// RoundEngine.
//
// Executes communication-closed rounds over a fixed set of processes:
// every round r, (1) query the GraphSource for G^r and close it under
// self-loops, (2) invoke every sending function S_p^r, (3) deliver to
// each p exactly the messages of its in-neighbors in G^r, (4) invoke
// every transition function T_p^r. Step (2) completes before any step
// (4) starts, so a message sent in round r can only be received in
// round r — the communication-closed property of Sec. II.
//
// Observers on the engine's bus fire once per round after all
// transitions (the consistent end-of-round cut shared with the network
// substrate), receiving G^r.
//
// Hot path: the round graph and the per-process outboxes are reused
// across rounds — GraphSource::graph_into writes G^r into the same
// Digraph every round, so a steady-state round performs no graph
// allocations.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "rounds/algorithm.hpp"
#include "rounds/engine.hpp"
#include "rounds/graph_source.hpp"
#include "rounds/trace.hpp"
#include "util/assert.hpp"

namespace sskel {

template <typename Msg>
class Simulator final : public RoundEngine<Msg> {
 public:
  using Process = Algorithm<Msg>;

  /// Takes ownership of the processes. `processes[i]` must have id i.
  Simulator(GraphSource& source,
            std::vector<std::unique_ptr<Process>> processes)
      : source_(&source), processes_(std::move(processes)) {
    SSKEL_REQUIRE(!processes_.empty());
    SSKEL_REQUIRE(static_cast<std::size_t>(source_->n()) == processes_.size());
    for (std::size_t i = 0; i < processes_.size(); ++i) {
      SSKEL_REQUIRE(processes_[i] != nullptr);
      SSKEL_REQUIRE(processes_[i]->id() == static_cast<ProcId>(i));
    }
    outbox_.resize(processes_.size());
  }

  [[nodiscard]] ProcId n() const override { return source_->n(); }
  [[nodiscard]] Round current_round() const { return round_; }
  [[nodiscard]] Round rounds_completed() const override { return round_; }

  /// Rebinds the simulator to a fresh source and resets all run state
  /// — round counter, observers, sizer, trace — restoring the
  /// freshly-constructed engine contract (rounds_completed() == 0)
  /// while keeping the process objects and the graph/outbox storage.
  /// The caller must reset the processes themselves (the engine does
  /// not know their internals); `source` must have the same n.
  void reset(GraphSource& source) {
    SSKEL_REQUIRE(static_cast<std::size_t>(source.n()) == processes_.size());
    source_ = &source;
    round_ = 0;
    this->reset_run_state();
  }

  [[nodiscard]] Process& process(ProcId p) override {
    SSKEL_REQUIRE(p >= 0 && p < n());
    return *processes_[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] const Process& process(ProcId p) const override {
    SSKEL_REQUIRE(p >= 0 && p < n());
    return *processes_[static_cast<std::size_t>(p)];
  }

  /// Executes one full round; returns the communication graph used
  /// (after self-loop closure).
  const Digraph& step() override {
    const Round r = ++round_;
    source_->graph_into(r, graph_);
    SSKEL_REQUIRE(graph_.n() == n());
    SSKEL_REQUIRE(graph_.nodes() == ProcSet::full(n()));
    graph_.add_self_loops();

    // Phase 1: all sends, from beginning-of-round state. send_into
    // refreshes the outbox slots in place, so steady-state rounds do
    // not reallocate message storage.
    for (std::size_t i = 0; i < processes_.size(); ++i) {
      processes_[i]->send_into(r, outbox_[i]);
    }

    // Phase 2: deliveries + transitions.
    RoundStats stats;
    stats.round = r;
    for (ProcId p = 0; p < n(); ++p) {
      const ProcSet& senders = graph_.in_neighbors(p);
      stats.messages_delivered += senders.count();
      if (this->sizer_) {
        for (ProcId q : senders) {
          const std::int64_t bytes =
              this->sizer_(outbox_[static_cast<std::size_t>(q)]);
          stats.bytes_delivered += bytes;
          stats.max_message_bytes = std::max(stats.max_message_bytes, bytes);
        }
      }
      const Inbox<Msg> inbox(senders, outbox_);
      processes_[static_cast<std::size_t>(p)]->transition(r, inbox);
    }
    this->trace_.record(stats);

    // End-of-round cut: every process is in its round-r final state.
    this->bus_.notify(r, graph_);
    return graph_;
  }

 private:
  GraphSource* source_;  // non-owning; rebound by reset()
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<Msg> outbox_;
  Digraph graph_;
  Round round_ = 0;
};

}  // namespace sskel
