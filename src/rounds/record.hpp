// Run recording and replay.
//
// A run in this model *is* its communication-graph sequence (plus
// initial states), so capturing the sequence makes any run — random,
// adversarial, or network-derived — perfectly reproducible and
// shareable. RecordingSource taps a live source; ReplaySource plays a
// capture back; the byte codec persists captures (e.g. to attach a
// failing run to a bug report).
#pragma once

#include <cstdint>
#include <vector>

#include "rounds/graph_source.hpp"
#include "util/decode.hpp"

namespace sskel {

/// Decorator: forwards to an inner source and keeps every graph it
/// served. Queries must arrive in round order (1, 2, 3, ...), as the
/// simulator issues them; re-queries of past rounds are answered from
/// the capture without touching the inner source.
class RecordingSource final : public GraphSource {
 public:
  explicit RecordingSource(GraphSource& inner);

  [[nodiscard]] ProcId n() const override { return inner_.n(); }
  [[nodiscard]] Digraph graph(Round r) override;

  [[nodiscard]] const std::vector<Digraph>& recorded() const {
    return recorded_;
  }

 private:
  GraphSource& inner_;
  std::vector<Digraph> recorded_;
};

/// Replays a capture; rounds beyond the capture repeat the last graph
/// (matching ScheduleSource semantics, which suits stabilized runs).
class ReplaySource final : public GraphSource {
 public:
  explicit ReplaySource(std::vector<Digraph> capture);

  [[nodiscard]] ProcId n() const override;
  [[nodiscard]] Digraph graph(Round r) override;

  [[nodiscard]] std::size_t capture_rounds() const {
    return capture_.size();
  }

 private:
  std::vector<Digraph> capture_;
};

/// Serializes a graph sequence (varint n, varint rounds, then one
/// node-bitmap + out-row bitmaps per graph).
[[nodiscard]] std::vector<std::uint8_t> encode_run(
    const std::vector<Digraph>& graphs);

/// Inverse of encode_run, hardened for untrusted bytes (captures are
/// shared as files): every size field is validated against the bytes
/// that remain before any allocation, node/edge references are checked
/// against the recorded node bitmap, and varints are strict — so every
/// accepted input satisfies encode_run(decode_run(x)) == x, and every
/// other input is rejected with a DecodeError instead of an abort.
[[nodiscard]] DecodeResult<std::vector<Digraph>> decode_run(
    const std::vector<std::uint8_t>& bytes);

/// Shared with the trace codec: one graph in the run-codec layout
/// (node bitmap + n out-row bitmaps; no leading n). `reader` must sit
/// at the graph's first byte. Used by decode_run per round and by the
/// trace reader per kGraph frame.
[[nodiscard]] bool decode_graph_body(ByteReader& reader, ProcId n,
                                     Digraph& out);

/// Encoder counterpart of decode_graph_body.
void encode_graph_body(std::vector<std::uint8_t>& out, const Digraph& g);

}  // namespace sskel
