#include "rounds/engine.hpp"

namespace sskel {

void ObserverBus::add(Observer obs) {
  SSKEL_REQUIRE(obs != nullptr);
  observers_.push_back(std::move(obs));
}

void ObserverBus::notify(Round r, const Digraph& graph) const {
  for (const Observer& obs : observers_) obs(r, graph);
}

}  // namespace sskel
