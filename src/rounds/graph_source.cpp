#include "rounds/graph_source.hpp"

#include "util/assert.hpp"

namespace sskel {

ScheduleSource::ScheduleSource(std::vector<Digraph> prefix)
    : prefix_(std::move(prefix)) {
  SSKEL_REQUIRE(!prefix_.empty());
  for (const Digraph& g : prefix_) {
    SSKEL_REQUIRE(g.n() == prefix_.front().n());
  }
}

ProcId ScheduleSource::n() const { return prefix_.front().n(); }

Digraph ScheduleSource::graph(Round r) {
  SSKEL_REQUIRE(r >= 1);
  const std::size_t idx =
      std::min(static_cast<std::size_t>(r - 1), prefix_.size() - 1);
  return prefix_[idx];
}

void ScheduleSource::graph_into(Round r, Digraph& out) {
  SSKEL_REQUIRE(r >= 1);
  const std::size_t idx =
      std::min(static_cast<std::size_t>(r - 1), prefix_.size() - 1);
  out = prefix_[idx];  // copy-assign: reuses out's storage once sized
}

FunctionSource::FunctionSource(ProcId n, std::function<Digraph(Round)> fn)
    : n_(n), fn_(std::move(fn)) {
  SSKEL_REQUIRE(n > 0);
  SSKEL_REQUIRE(fn_ != nullptr);
}

}  // namespace sskel
