// Run traces: everything an experiment wants to know about a run —
// plus the framed binary capture format that makes a run shareable.
//
// The paper's runs *are* their communication-graph sequences, so a
// captured trace is a perfect deterministic adversary: any bench
// outlier or CI failure replays bit-exactly by feeding the captured
// graphs back through a ReplaySource. The capture format here goes
// beyond graph sequences to full run evidence — per-round derived
// graphs, per-round accounting, encoded message bytes, and the
// delivery/close schedule of the network substrate — in a versioned,
// pcap-like frame stream (1-byte type + varint length per frame; see
// DESIGN.md §14) whose decoder treats its input as hostile.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "graph/digraph.hpp"
#include "util/decode.hpp"
#include "util/types.hpp"

namespace sskel {

/// Per-round accounting recorded by the simulator.
struct RoundStats {
  Round round = 0;
  /// Edges of G^r (after self-loop closure) = messages delivered.
  std::int64_t messages_delivered = 0;
  /// Sum of encoded sizes (bytes) over delivered messages; 0 unless a
  /// message sizer is installed.
  std::int64_t bytes_delivered = 0;
  /// Largest single encoded message this round (bytes).
  std::int64_t max_message_bytes = 0;

  bool operator==(const RoundStats&) const = default;
};

/// Whole-run accounting. Graph retention is optional because storing
/// every G^r is O(rounds * n^2 / 8) memory.
class RunTrace {
 public:
  void record(RoundStats stats) { per_round_.push_back(stats); }

  /// Forgets all rounds, keeping the vector's capacity (engine reuse
  /// across trials).
  void clear() { per_round_.clear(); }

  [[nodiscard]] const std::vector<RoundStats>& per_round() const {
    return per_round_;
  }

  [[nodiscard]] Round rounds_executed() const {
    return static_cast<Round>(per_round_.size());
  }

  [[nodiscard]] std::int64_t total_messages() const {
    std::int64_t total = 0;
    for (const RoundStats& s : per_round_) total += s.messages_delivered;
    return total;
  }

  [[nodiscard]] std::int64_t total_bytes() const {
    std::int64_t total = 0;
    for (const RoundStats& s : per_round_) total += s.bytes_delivered;
    return total;
  }

  [[nodiscard]] std::int64_t max_message_bytes() const {
    std::int64_t best = 0;
    for (const RoundStats& s : per_round_) {
      best = std::max(best, s.max_message_bytes);
    }
    return best;
  }

 private:
  std::vector<RoundStats> per_round_;
};

// ---------------------------------------------------------------------------
// Framed binary captures (DESIGN.md §14).
//
// Container layout:
//   4 bytes magic "SSKT" | varint version (= 1) | frames... | kEnd
// Frame layout:
//   1 byte type | varint payload length | payload
// The kEnd frame is mandatory and last — a truncated file is
// detectable even when it happens to end on a frame boundary.
// ---------------------------------------------------------------------------

/// Which substrate produced a capture.
enum class TraceSource : std::uint8_t {
  kSimulator = 0,
  kNetRing = 1,
  kNetEventQueue = 2,
};

/// Fate of one point-to-point message on the network substrate.
enum class DeliveryKind : std::uint8_t {
  /// Arrived by the receiver's deadline and was consumed.
  kOnTime = 0,
  /// Arrived after the deadline; discarded (communication closure).
  kLate = 1,
  /// Never arrived (link drop). (Named kDropped, not kLost, to dodge
  /// the net-plane kLost delay sentinel — GCC 12 -Wshadow flags scoped
  /// enumerators against globals.)
  kDropped = 2,
  /// Arrived exactly at the deadline but the close ordered first:
  /// counted and byte-accounted, never consumed (the one observable
  /// (time, seq) tie — see NetRoundDriver).
  kTieDiscard = 3,
};

/// Frame types of the capture container.
enum class TraceFrame : std::uint8_t {
  kHeader = 1,      ///< run parameters; exactly one, first
  kGraph = 2,       ///< one per-round derived graph, rounds 1, 2, ...
  kRoundStats = 3,  ///< per-round accounting, rounds 1, 2, ...
  kMessage = 4,     ///< one broadcast's encoded payload
  kDelivery = 5,    ///< fate of one point-to-point message
  kClose = 6,       ///< one process closing one round
  kEnd = 7,         ///< terminator; exactly one, last
};

struct TraceHeader {
  ProcId n = 0;
  TraceSource source = TraceSource::kSimulator;
  /// Substrate seed (0 for GraphSource-driven runs, which carry their
  /// randomness in the source).
  std::uint64_t seed = 0;
  /// Round duration D of the network substrate; 0 for the simulator.
  SimTime round_duration = 0;

  bool operator==(const TraceHeader&) const = default;
};

/// One broadcast's wire bytes (recorded only when the driver has a
/// message encoder installed; replay does not need them — messages are
/// deterministic functions of state — but bug reports and fuzz seeds
/// do).
struct MessageRecord {
  Round round = 0;
  ProcId sender = 0;
  std::vector<std::uint8_t> payload;

  bool operator==(const MessageRecord&) const = default;
};

struct DeliveryRecord {
  Round round = 0;
  ProcId from = 0;
  ProcId to = 0;
  DeliveryKind kind = DeliveryKind::kOnTime;
  /// Arrival time (send time for kLost).
  SimTime time = 0;

  bool operator==(const DeliveryRecord&) const = default;
};

struct CloseRecord {
  Round round = 0;
  ProcId proc = 0;
  SimTime time = 0;

  bool operator==(const CloseRecord&) const = default;
};

/// Everything a capture holds. `graphs[i]` / `stats[i]` describe round
/// i + 1; message/delivery/close records appear in schedule order and
/// may reference the in-flight round past the last derived graph.
struct RunCapture {
  TraceHeader header;
  std::vector<Digraph> graphs;
  std::vector<RoundStats> stats;
  std::vector<MessageRecord> messages;
  std::vector<DeliveryRecord> deliveries;
  std::vector<CloseRecord> closes;

  bool operator==(const RunCapture&) const = default;
};

/// Serializes a capture into the framed container. Requires a valid
/// capture (n > 0, graphs over the header's universe, nonnegative
/// times/stats) — the encoder trusts its caller; only decoding is
/// defensive.
[[nodiscard]] std::vector<std::uint8_t> encode_trace(const RunCapture& c);

/// Inverse of encode_trace, hardened for untrusted bytes: strict
/// varints, every frame length validated against the remaining input,
/// graph/stat rounds required consecutive from 1, all ids/kinds/times
/// range-checked, no allocation before the bytes that would justify it
/// are known to exist. Accepted inputs satisfy
/// decode_trace(encode_trace(c)) == c.
[[nodiscard]] DecodeResult<RunCapture> decode_trace(
    const std::vector<std::uint8_t>& bytes);

/// Receiver of the network driver's schedule events (defined here, not
/// in net/, so the recorder below works without a net dependency; the
/// driver calls these as the events execute, in deterministic
/// (time, seq) order).
class NetTraceSink {
 public:
  virtual ~NetTraceSink() = default;

  /// Process `sender` broadcast its round-r message; `payload` is the
  /// encoded wire form (only fired when an encoder is installed).
  virtual void on_broadcast(Round r, ProcId sender,
                            const std::vector<std::uint8_t>& payload) = 0;

  /// Fate of the (from -> to) round-r message.
  virtual void on_delivery(DeliveryKind kind, Round r, ProcId from, ProcId to,
                           SimTime time) = 0;

  /// Process `proc` closed round r at `time`.
  virtual void on_close(Round r, ProcId proc, SimTime time) = 0;
};

/// Accumulates a RunCapture from a live run. Graphs and per-round
/// stats come from the engine (attach() registers an observer; pass
/// the engine's RunTrace to finish()); schedule events come from the
/// driver's NetTraceSink hook when the run is network-backed.
class TraceRecorder final : public NetTraceSink {
 public:
  explicit TraceRecorder(ProcId n,
                         TraceSource source = TraceSource::kSimulator,
                         std::uint64_t seed = 0, SimTime round_duration = 0) {
    capture_.header = TraceHeader{n, source, seed, round_duration};
  }

  /// Registers the per-round graph observer on any RoundEngine.
  template <typename Engine>
  void attach(Engine& engine) {
    engine.add_observer(
        [this](Round r, const Digraph& g) { on_round(r, g); });
  }

  void on_round(Round r, const Digraph& g) {
    SSKEL_REQUIRE(r == static_cast<Round>(capture_.graphs.size()) + 1);
    capture_.graphs.push_back(g);
  }

  void on_broadcast(Round r, ProcId sender,
                    const std::vector<std::uint8_t>& payload) override {
    capture_.messages.push_back(MessageRecord{r, sender, payload});
  }
  void on_delivery(DeliveryKind kind, Round r, ProcId from, ProcId to,
                   SimTime time) override {
    capture_.deliveries.push_back(DeliveryRecord{r, from, to, kind, time});
  }
  void on_close(Round r, ProcId proc, SimTime time) override {
    capture_.closes.push_back(CloseRecord{r, proc, time});
  }

  /// Copies the engine's per-round accounting in and returns the
  /// finished capture (recorder is left empty).
  [[nodiscard]] RunCapture finish(const RunTrace& trace) {
    capture_.stats = trace.per_round();
    return std::exchange(capture_, RunCapture{});
  }

  [[nodiscard]] const RunCapture& capture() const { return capture_; }

 private:
  RunCapture capture_;
};

}  // namespace sskel
