// Run traces: everything an experiment wants to know about a run.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "util/types.hpp"

namespace sskel {

/// Per-round accounting recorded by the simulator.
struct RoundStats {
  Round round = 0;
  /// Edges of G^r (after self-loop closure) = messages delivered.
  std::int64_t messages_delivered = 0;
  /// Sum of encoded sizes (bytes) over delivered messages; 0 unless a
  /// message sizer is installed.
  std::int64_t bytes_delivered = 0;
  /// Largest single encoded message this round (bytes).
  std::int64_t max_message_bytes = 0;
};

/// Whole-run accounting. Graph retention is optional because storing
/// every G^r is O(rounds * n^2 / 8) memory.
class RunTrace {
 public:
  void record(RoundStats stats) { per_round_.push_back(stats); }

  /// Forgets all rounds, keeping the vector's capacity (engine reuse
  /// across trials).
  void clear() { per_round_.clear(); }

  [[nodiscard]] const std::vector<RoundStats>& per_round() const {
    return per_round_;
  }

  [[nodiscard]] Round rounds_executed() const {
    return static_cast<Round>(per_round_.size());
  }

  [[nodiscard]] std::int64_t total_messages() const {
    std::int64_t total = 0;
    for (const RoundStats& s : per_round_) total += s.messages_delivered;
    return total;
  }

  [[nodiscard]] std::int64_t total_bytes() const {
    std::int64_t total = 0;
    for (const RoundStats& s : per_round_) total += s.bytes_delivered;
    return total;
  }

  [[nodiscard]] std::int64_t max_message_bytes() const {
    std::int64_t best = 0;
    for (const RoundStats& s : per_round_) {
      best = std::max(best, s.max_message_bytes);
    }
    return best;
  }

 private:
  std::vector<RoundStats> per_round_;
};

}  // namespace sskel
