#include "rounds/record.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/varint.hpp"

namespace sskel {

RecordingSource::RecordingSource(GraphSource& inner) : inner_(inner) {}

Digraph RecordingSource::graph(Round r) {
  SSKEL_REQUIRE(r >= 1);
  const auto idx = static_cast<std::size_t>(r - 1);
  if (idx < recorded_.size()) return recorded_[idx];
  SSKEL_REQUIRE(idx == recorded_.size());  // sequential first queries
  recorded_.push_back(inner_.graph(r));
  return recorded_.back();
}

ReplaySource::ReplaySource(std::vector<Digraph> capture)
    : capture_(std::move(capture)) {
  SSKEL_REQUIRE(!capture_.empty());
  for (const Digraph& g : capture_) {
    SSKEL_REQUIRE(g.n() == capture_.front().n());
  }
}

ProcId ReplaySource::n() const { return capture_.front().n(); }

Digraph ReplaySource::graph(Round r) {
  SSKEL_REQUIRE(r >= 1);
  const std::size_t idx =
      std::min(static_cast<std::size_t>(r - 1), capture_.size() - 1);
  return capture_[idx];
}

namespace {

void encode_bitmap(std::vector<std::uint8_t>& out, const ProcSet& set) {
  const std::size_t bytes = (static_cast<std::size_t>(set.universe()) + 7) / 8;
  std::vector<std::uint8_t> bitmap(bytes, 0);
  for (ProcId p : set) {
    bitmap[static_cast<std::size_t>(p) / 8] |=
        static_cast<std::uint8_t>(1u << (static_cast<unsigned>(p) % 8));
  }
  out.insert(out.end(), bitmap.begin(), bitmap.end());
}

/// Bytes of one ceil(n/8) bitmap.
[[nodiscard]] std::size_t bitmap_bytes(ProcId n) {
  return (static_cast<std::size_t>(n) + 7) / 8;
}

/// Bounds-checked bitmap read. The fixed-width layout means padding
/// bits (indices >= n in the last byte) must be zero, or two byte
/// strings would decode to the same set.
[[nodiscard]] bool decode_bitmap(ByteReader& reader, ProcId n, ProcSet& set,
                                 const char* field) {
  const std::size_t bytes = bitmap_bytes(n);
  // Expressed against remaining() — a `pos + bytes` sum can wrap for
  // the huge n a hostile header smuggles in.
  if (!reader.require_bytes(bytes, field)) return false;
  const std::uint8_t* data = reader.cursor();
  const unsigned tail_bits = static_cast<unsigned>(n) % 8;
  if (tail_bits != 0 &&
      (data[bytes - 1] & static_cast<std::uint8_t>(0xffu << tail_bits))) {
    return reader.fail(DecodeStatus::kValueOutOfRange, field);
  }
  set = ProcSet(n);
  for (ProcId p = 0; p < n; ++p) {
    if (data[static_cast<std::size_t>(p) / 8] &
        (1u << (static_cast<unsigned>(p) % 8))) {
      set.insert(p);
    }
  }
  reader.skip(bytes);
  return true;
}

}  // namespace

void encode_graph_body(std::vector<std::uint8_t>& out, const Digraph& g) {
  encode_bitmap(out, g.nodes());
  for (ProcId q = 0; q < g.n(); ++q) {
    encode_bitmap(out, g.out_neighbors(q));
  }
}

bool decode_graph_body(ByteReader& reader, ProcId n, Digraph& out) {
  ProcSet nodes(n);
  if (!decode_bitmap(reader, n, nodes, "node bitmap")) return false;
  Digraph g(n);
  // Restrict node presence first, then add edges; a row referencing a
  // node outside the bitmap (Digraph::add_edge would silently re-add
  // it) is hostile input, not a graph.
  g = g.induced(nodes);
  ProcSet row(n);
  for (ProcId q = 0; q < n; ++q) {
    if (!decode_bitmap(reader, n, row, "out-row bitmap")) return false;
    if (!row.is_subset_of(nodes) || (!row.empty() && !nodes.contains(q))) {
      return reader.fail(DecodeStatus::kInvalidEdge, "out-row bitmap");
    }
    for (ProcId p : row) g.add_edge(q, p);
  }
  out = std::move(g);
  return true;
}

std::vector<std::uint8_t> encode_run(const std::vector<Digraph>& graphs) {
  SSKEL_REQUIRE(!graphs.empty());
  const ProcId n = graphs.front().n();
  std::vector<std::uint8_t> out;
  put_varint(out, static_cast<std::uint64_t>(n));
  put_varint(out, graphs.size());
  for (const Digraph& g : graphs) {
    SSKEL_REQUIRE(g.n() == n);
    encode_graph_body(out, g);
  }
  return out;
}

DecodeResult<std::vector<Digraph>> decode_run(
    const std::vector<std::uint8_t>& bytes) {
  ByteReader reader(bytes.data(), bytes.size());
  // Range-check before the narrowing cast: a 64-bit n >= 2^31 would
  // silently truncate into a different, valid-looking universe, and
  // anything past kMaxDecodeUniverse sizes allocations no capture can
  // justify.
  std::uint64_t n_wide = 0;
  if (!reader.read_varint_max(n_wide, kMaxDecodeUniverse, "run n")) {
    return reader.error();
  }
  if (n_wide == 0) {
    return DecodeError{DecodeStatus::kValueOutOfRange, 0, "run n"};
  }
  const ProcId n = static_cast<ProcId>(n_wide);

  std::uint64_t rounds = 0;
  if (!reader.read_varint(rounds, "round count")) return reader.error();
  if (rounds == 0) {
    return DecodeError{DecodeStatus::kValueOutOfRange, reader.pos(),
                       "round count"};
  }
  // Each recorded round occupies exactly (n + 1) bitmaps; a `rounds`
  // the remaining bytes cannot possibly hold is rejected before the
  // reserve — a hostile varint must not demand a multi-GB allocation.
  const std::uint64_t per_round =
      static_cast<std::uint64_t>(bitmap_bytes(n)) *
      (static_cast<std::uint64_t>(n) + 1);
  if (rounds > reader.remaining() / per_round) {
    return DecodeError{DecodeStatus::kLimitExceeded, reader.pos(),
                       "round count"};
  }
  std::vector<Digraph> graphs;
  graphs.reserve(rounds);
  for (std::uint64_t i = 0; i < rounds; ++i) {
    Digraph g;
    if (!decode_graph_body(reader, n, g)) return reader.error();
    graphs.push_back(std::move(g));
  }
  if (!reader.at_end()) {
    return DecodeError{DecodeStatus::kTrailingBytes, reader.pos(), "run"};
  }
  return graphs;
}

}  // namespace sskel
