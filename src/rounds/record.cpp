#include "rounds/record.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/varint.hpp"

namespace sskel {

RecordingSource::RecordingSource(GraphSource& inner) : inner_(inner) {}

Digraph RecordingSource::graph(Round r) {
  SSKEL_REQUIRE(r >= 1);
  const auto idx = static_cast<std::size_t>(r - 1);
  if (idx < recorded_.size()) return recorded_[idx];
  SSKEL_REQUIRE(idx == recorded_.size());  // sequential first queries
  recorded_.push_back(inner_.graph(r));
  return recorded_.back();
}

ReplaySource::ReplaySource(std::vector<Digraph> capture)
    : capture_(std::move(capture)) {
  SSKEL_REQUIRE(!capture_.empty());
  for (const Digraph& g : capture_) {
    SSKEL_REQUIRE(g.n() == capture_.front().n());
  }
}

ProcId ReplaySource::n() const { return capture_.front().n(); }

Digraph ReplaySource::graph(Round r) {
  SSKEL_REQUIRE(r >= 1);
  const std::size_t idx =
      std::min(static_cast<std::size_t>(r - 1), capture_.size() - 1);
  return capture_[idx];
}

namespace {

void encode_bitmap(std::vector<std::uint8_t>& out, const ProcSet& set) {
  const std::size_t bytes = (static_cast<std::size_t>(set.universe()) + 7) / 8;
  std::vector<std::uint8_t> bitmap(bytes, 0);
  for (ProcId p : set) {
    bitmap[static_cast<std::size_t>(p) / 8] |=
        static_cast<std::uint8_t>(1u << (static_cast<unsigned>(p) % 8));
  }
  out.insert(out.end(), bitmap.begin(), bitmap.end());
}

ProcSet decode_bitmap(const std::vector<std::uint8_t>& in, std::size_t& pos,
                      ProcId n) {
  const std::size_t bytes = (static_cast<std::size_t>(n) + 7) / 8;
  SSKEL_REQUIRE(pos + bytes <= in.size());
  ProcSet set(n);
  for (ProcId p = 0; p < n; ++p) {
    if (in[pos + static_cast<std::size_t>(p) / 8] &
        (1u << (static_cast<unsigned>(p) % 8))) {
      set.insert(p);
    }
  }
  pos += bytes;
  return set;
}

}  // namespace

std::vector<std::uint8_t> encode_run(const std::vector<Digraph>& graphs) {
  SSKEL_REQUIRE(!graphs.empty());
  const ProcId n = graphs.front().n();
  std::vector<std::uint8_t> out;
  put_varint(out, static_cast<std::uint64_t>(n));
  put_varint(out, graphs.size());
  for (const Digraph& g : graphs) {
    SSKEL_REQUIRE(g.n() == n);
    encode_bitmap(out, g.nodes());
    for (ProcId q = 0; q < n; ++q) {
      encode_bitmap(out, g.out_neighbors(q));
    }
  }
  return out;
}

std::vector<Digraph> decode_run(const std::vector<std::uint8_t>& bytes) {
  std::size_t pos = 0;
  const ProcId n = static_cast<ProcId>(get_varint(bytes, pos));
  SSKEL_REQUIRE(n > 0);
  const std::uint64_t rounds = get_varint(bytes, pos);
  std::vector<Digraph> graphs;
  graphs.reserve(rounds);
  for (std::uint64_t i = 0; i < rounds; ++i) {
    const ProcSet nodes = decode_bitmap(bytes, pos, n);
    Digraph g(n);
    // Restrict node presence first, then add edges (rows of absent
    // nodes were recorded empty anyway).
    g = g.induced(nodes);
    for (ProcId q = 0; q < n; ++q) {
      const ProcSet row = decode_bitmap(bytes, pos, n);
      for (ProcId p : row) g.add_edge(q, p);
    }
    graphs.push_back(std::move(g));
  }
  SSKEL_REQUIRE(pos == bytes.size());
  return graphs;
}

}  // namespace sskel
