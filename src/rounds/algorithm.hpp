// The round-based algorithm interface: sending + transition functions.
//
// Sec. II of the paper: "an algorithm is composed of two functions.
// The sending function determines, for each process p and round r > 0,
// the message p broadcasts in round r based on p's state at the
// beginning of round r. The transition function determines ... the
// state at the end of round r" from the messages received in r.
//
// We keep the message type a template parameter so algorithms exchange
// real typed payloads (value + approximation graph for Algorithm 1, a
// bare value for FloodMin) with zero serialization on the hot path;
// encoded sizes for the bit-complexity experiments come from an
// optional per-message sizer in the simulator.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "util/proc_set.hpp"
#include "util/types.hpp"

namespace sskel {

/// The messages a process received in one round, indexed by sender.
/// `senders` is exactly HO(p, r) for the receiving process p; for a
/// sender q in `senders`, `from(q)` is q's round message.
template <typename Msg>
class Inbox {
 public:
  Inbox(const ProcSet& senders, const std::vector<Msg>& all_messages)
      : senders_(senders), all_(all_messages) {}

  [[nodiscard]] const ProcSet& senders() const { return senders_; }

  [[nodiscard]] const Msg& from(ProcId q) const {
    SSKEL_REQUIRE(senders_.contains(q));
    return all_[static_cast<std::size_t>(q)];
  }

  /// Batch consumption: fn(q, msg) for every sender in ascending id
  /// order. Equivalent to iterating senders() and calling from(q),
  /// minus the per-call membership check — the form transition
  /// functions on the message-plane hot path should prefer. Walks the
  /// sender set word-by-word, so the per-message cost is one
  /// count-trailing-zeros plus the callback.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    const auto n = static_cast<std::size_t>(senders_.universe());
    for (std::size_t w = 0; w * 64 < n; ++w) {
      std::uint64_t bits = senders_.word_at(w);
      while (bits != 0) {
        const std::size_t i =
            w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        fn(static_cast<ProcId>(i), all_[i]);
      }
    }
  }

 private:
  const ProcSet& senders_;
  const std::vector<Msg>& all_;
};

/// A deterministic round-based process. One instance per process id.
template <typename Msg>
class Algorithm {
 public:
  using message_type = Msg;

  virtual ~Algorithm() = default;

  Algorithm(const Algorithm&) = delete;
  Algorithm& operator=(const Algorithm&) = delete;

  [[nodiscard]] ProcId id() const { return id_; }
  [[nodiscard]] ProcId n() const { return n_; }

  /// Sending function S_p^r: the message broadcast in round r,
  /// computed from the state at the *beginning* of round r. Must not
  /// mutate observable state (rounds are communication closed; the
  /// simulator calls every send before any transition).
  [[nodiscard]] virtual Msg send(Round r) = 0;

  /// Storage-reusing form of send(): writes S_p^r into `out`,
  /// replacing its previous contents. The default forwards to send();
  /// algorithms whose messages own heap storage (graphs) override it
  /// to copy-assign the fields directly, so the engines' per-round
  /// outbox refresh reuses the existing message buffers instead of
  /// reallocating them. Same contract as send(): must not mutate
  /// observable state.
  virtual void send_into(Round r, Msg& out) { out = send(r); }

  /// Transition function T_p^r: consumes the round-r inbox and moves
  /// the process to its round r+1 state.
  virtual void transition(Round r, const Inbox<Msg>& inbox) = 0;

 protected:
  Algorithm(ProcId n, ProcId id) : n_(n), id_(id) {
    SSKEL_REQUIRE(n > 0);
    SSKEL_REQUIRE(id >= 0 && id < n);
  }

 private:
  ProcId n_;
  ProcId id_;
};

}  // namespace sskel
