// Fuzz target: the graph-sequence run codec.
//
// Property: decode_run never crashes, and the layout is canonical —
// any accepted input re-encodes to the identical byte string.
#include <cstdint>
#include <vector>

#include "rounds/record.hpp"
#include "util/assert.hpp"

using namespace sskel;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::vector<std::uint8_t> bytes(data, data + size);
  DecodeResult<std::vector<Digraph>> run = decode_run(bytes);
  if (!run.ok()) return 0;
  SSKEL_REQUIRE(encode_run(run.value()) == bytes);
  return 0;
}

extern "C" void sskel_fuzz_seed_corpus(
    std::vector<std::vector<std::uint8_t>>* out) {
  Digraph a(9);
  a.add_self_loops();
  a.add_edge(0, 5);
  a.add_edge(7, 3);
  Digraph b = a;
  b.remove_node(8);
  out->push_back(encode_run({a, b, a}));
  out->push_back(encode_run({Digraph(1)}));
}
