// Fuzz target: the structure intern table.
//
// Properties: equal structures resolve to one entry (labeled and
// unlabeled alike, labels ignored); distinct structures never share
// an entry; and the degraded-fingerprint mode (all keys collide, every
// lookup takes the full-equality fallback) answers identically.
#include <cstdint>
#include <vector>

#include "fuzz_input.hpp"
#include "graph/digraph.hpp"
#include "graph/labeled_digraph.hpp"
#include "skeleton/intern.hpp"
#include "util/assert.hpp"

using namespace sskel;
using sskel::fuzz::FuzzInput;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  FuzzInput input(data, size);
  const ProcId n = static_cast<ProcId>(input.in_range(1, 24));

  StructureInternTable table;
  InternTableOptions degraded_options;
  degraded_options.degrade_fingerprint_for_tests = true;
  StructureInternTable degraded(degraded_options);

  std::vector<Digraph> graphs;
  std::vector<const InternedStructure*> entries;
  const std::uint32_t rounds = input.in_range(1, 16);
  for (std::uint32_t i = 0; i < rounds; ++i) {
    Digraph g(n);
    const std::uint32_t edges = input.in_range(0, 48);
    for (std::uint32_t e = 0; e < edges; ++e) {
      g.add_edge(static_cast<ProcId>(
                     input.in_range(0, static_cast<std::uint32_t>(n) - 1)),
                 static_cast<ProcId>(
                     input.in_range(0, static_cast<std::uint32_t>(n) - 1)));
    }

    InternedStructure* entry = table.intern(g);
    SSKEL_REQUIRE(entry != nullptr);
    // Same structure again: the identical entry, not a sibling.
    SSKEL_REQUIRE(table.intern(g) == entry);

    // A labeled graph with the same nodes/edges resolves to the same
    // entry — labels are not part of the key.
    if (!g.nodes().empty()) {
      ProcId owner = -1;
      for (ProcId p : g.nodes()) {
        owner = p;
        break;
      }
      LabeledDigraph labeled(n, owner);
      for (ProcId p : g.nodes()) labeled.add_node(p);
      for (ProcId q : g.nodes()) {
        for (ProcId p : g.out_neighbors(q)) {
          labeled.set_edge(q, p,
                           static_cast<Round>(1 + input.in_range(0, 200)));
        }
      }
      SSKEL_REQUIRE(table.intern(labeled) == entry);
    }

    // Cross-check against every prior structure: entry identity iff
    // graph equality (structure is the whole key).
    for (std::size_t j = 0; j < graphs.size(); ++j) {
      SSKEL_REQUIRE((entries[j] == entry) == (graphs[j] == g));
    }

    // The collision-forced table must agree on equality structure.
    InternedStructure* slow = degraded.intern(g);
    SSKEL_REQUIRE(slow != nullptr);
    SSKEL_REQUIRE(degraded.intern(g) == slow);

    graphs.push_back(std::move(g));
    entries.push_back(entry);
  }
  return 0;
}
