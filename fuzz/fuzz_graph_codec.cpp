// Fuzz target: the labeled approximation-graph wire codec (the bytes
// a round message carries — the closest thing to a network-facing
// attack surface this library has).
//
// Property: try_decode_graph never crashes, and accepts exactly the
// canonical language — any accepted input re-encodes byte-identically.
#include <cstdint>
#include <vector>

#include "skeleton/codec.hpp"
#include "util/assert.hpp"

using namespace sskel;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::vector<std::uint8_t> bytes(data, data + size);
  DecodeResult<LabeledDigraph> g = try_decode_graph(bytes);
  if (!g.ok()) return 0;
  SSKEL_REQUIRE(encode_graph(g.value()) == bytes);
  return 0;
}

extern "C" void sskel_fuzz_seed_corpus(
    std::vector<std::vector<std::uint8_t>>* out) {
  LabeledDigraph g(11, 4);
  for (ProcId p = 0; p < 11; ++p) g.add_node(p);
  g.set_edge(4, 7, 200);
  g.set_edge(9, 1, 3);
  g.set_edge(0, 0, 1);
  out->push_back(encode_graph(g));
  out->push_back(encode_graph(LabeledDigraph(3, 2)));
}
