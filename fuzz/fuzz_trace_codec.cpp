// Fuzz target: the framed trace container (DESIGN.md §14).
//
// Property: decode_trace never crashes on arbitrary bytes, and every
// accepted input lands in a stable state — re-encoding the decoded
// capture and decoding again is the identity. (The container is not
// byte-canonical in general: frame order is flexible for captures, so
// idempotence is the right fixed point, not byte equality.)
#include <cstdint>
#include <vector>

#include "rounds/trace.hpp"
#include "util/assert.hpp"

using namespace sskel;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::vector<std::uint8_t> bytes(data, data + size);
  DecodeResult<RunCapture> first = decode_trace(bytes);
  if (!first.ok()) return 0;

  const std::vector<std::uint8_t> re = encode_trace(first.value());
  DecodeResult<RunCapture> second = decode_trace(re);
  SSKEL_REQUIRE(second.ok());
  SSKEL_REQUIRE(second.value() == first.value());
  return 0;
}

extern "C" void sskel_fuzz_seed_corpus(
    std::vector<std::vector<std::uint8_t>>* out) {
  RunCapture c;
  c.header = TraceHeader{5, TraceSource::kNetRing, 42, 1000};
  Digraph g(5);
  g.add_self_loops();
  g.add_edge(0, 1);
  g.add_edge(3, 2);
  c.graphs = {g};
  c.stats = {RoundStats{1, 7, 140, 20}};
  c.messages.push_back(MessageRecord{1, 0, {0xde, 0xad}});
  c.deliveries.push_back(DeliveryRecord{1, 0, 1, DeliveryKind::kOnTime, 900});
  c.deliveries.push_back(
      DeliveryRecord{1, 2, 3, DeliveryKind::kTieDiscard, 1000});
  c.closes.push_back(CloseRecord{1, 0, 1000});
  out->push_back(encode_trace(c));

  RunCapture minimal;
  minimal.header = TraceHeader{1, TraceSource::kSimulator, 0, 0};
  out->push_back(encode_trace(minimal));
}
