// Fuzz target: the SSKC campaign-checkpoint codec (DESIGN.md §15).
//
// Property: decode_checkpoint never crashes on arbitrary bytes, and —
// unlike the trace container, whose frame order is flexible — SSKC is
// byte-canonical: there is exactly one encoding per checkpoint, so any
// accepted input must re-encode to the identical byte string. This is
// the law the resume path depends on (CheckpointWriter::load_latest
// trusts that a decodable file IS the state that was written), so the
// fuzzer asserts the strong form, not just round-trip idempotence.
#include <cstdint>
#include <vector>

#include "adversary/partition.hpp"
#include "campaign/checkpoint.hpp"
#include "mc/scenario.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

using namespace sskel;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::vector<std::uint8_t> bytes(data, data + size);
  DecodeResult<CampaignCheckpoint> decoded = decode_checkpoint(bytes);
  if (!decoded.ok()) return 0;

  SSKEL_REQUIRE(encode_checkpoint(decoded.value()) == bytes);
  return 0;
}

extern "C" void sskel_fuzz_seed_corpus(
    std::vector<std::vector<std::uint8_t>>* out) {
  CampaignCheckpoint empty;
  empty.spec_fingerprint = 0x5353'4b43;
  out->push_back(encode_checkpoint(empty));

  // A mid-sweep checkpoint folded from real trials, so accumulators,
  // histograms and the runs == trials_folded invariant are all live.
  PartitionParams params;
  params.blocks = even_blocks(4, 2);
  const PartitionScenario scenario(std::move(params));
  KSetRunConfig config;
  config.k = 2;
  CampaignCheckpoint partial;
  partial.spec_fingerprint = 0xdead'beef;
  JobCheckpoint job;
  job.summary.scenario = scenario.name();
  job.summary.bytes_measured = config.measure_bytes;
  for (std::uint64_t t = 0; t < 5; ++t) {
    const ScenarioTrial trial = scenario.run_trial(mix_seed(7, t), config);
    fold_scenario_trial(job.summary, trial, config);
    ++job.trials_folded;
  }
  partial.jobs.push_back(job);
  // Two-job checkpoints exercise the kJob frame count discipline.
  partial.jobs.push_back(std::move(job));
  out->push_back(encode_checkpoint(partial));
}
