// Fuzz target: IncrementalScc under arbitrary deletion sequences.
//
// The fuzz input drives a random graph build, then a sequence of
// batched edge/node deletions (the shrink-only regime the maintainer
// supports). After every apply(), the patched decomposition must
// induce the same node partition as a fresh Tarjan pass, and the two
// root-component families must coincide — the exact invariants the
// skeleton analytics rely on (DESIGN.md §8).
#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "fuzz_input.hpp"
#include "graph/digraph.hpp"
#include "graph/inc_scc.hpp"
#include "graph/scc.hpp"
#include "util/assert.hpp"

using namespace sskel;
using sskel::fuzz::FuzzInput;

namespace {

/// Same-partition check: component_of maps agree up to relabeling.
void require_same_partition(const SccDecomposition& a,
                            const SccDecomposition& b, ProcId n) {
  SSKEL_REQUIRE(a.count() == b.count());
  // Injective label correspondence, both directions.
  std::vector<int> a_to_b(static_cast<std::size_t>(a.count()), -1);
  std::vector<int> b_to_a(static_cast<std::size_t>(b.count()), -1);
  for (ProcId p = 0; p < n; ++p) {
    const int ca = a.component_of[static_cast<std::size_t>(p)];
    const int cb = b.component_of[static_cast<std::size_t>(p)];
    SSKEL_REQUIRE((ca == -1) == (cb == -1));
    if (ca == -1) continue;
    auto& fwd = a_to_b[static_cast<std::size_t>(ca)];
    auto& rev = b_to_a[static_cast<std::size_t>(cb)];
    SSKEL_REQUIRE(fwd == -1 || fwd == cb);
    SSKEL_REQUIRE(rev == -1 || rev == ca);
    fwd = cb;
    rev = ca;
  }
}

/// Root components (no in-edge from another component) as sorted
/// member sets, independent of component numbering.
std::vector<std::vector<ProcId>> root_members(const Digraph& g,
                                              const SccDecomposition& scc) {
  std::vector<bool> has_external_in(
      static_cast<std::size_t>(scc.count()), false);
  for (ProcId q : g.nodes()) {
    const int cq = scc.component_of[static_cast<std::size_t>(q)];
    for (ProcId p : g.out_neighbors(q)) {
      const int cp = scc.component_of[static_cast<std::size_t>(p)];
      if (cp != cq) has_external_in[static_cast<std::size_t>(cp)] = true;
    }
  }
  std::vector<std::vector<ProcId>> roots;
  for (int c = 0; c < scc.count(); ++c) {
    if (has_external_in[static_cast<std::size_t>(c)]) continue;
    std::vector<ProcId> members;
    for (ProcId p : scc.components[static_cast<std::size_t>(c)]) {
      members.push_back(p);
    }
    roots.push_back(std::move(members));
  }
  std::sort(roots.begin(), roots.end());
  return roots;
}

void check_against_fresh(const IncrementalScc& inc, const Digraph& g) {
  const SccDecomposition fresh = strongly_connected_components(g);
  require_same_partition(inc.decomposition(), fresh, g.n());

  std::vector<std::vector<ProcId>> inc_roots;
  for (int c : inc.root_indices()) {
    std::vector<ProcId> members;
    for (ProcId p : inc.decomposition().components[static_cast<std::size_t>(c)]) {
      members.push_back(p);
    }
    inc_roots.push_back(std::move(members));
  }
  std::sort(inc_roots.begin(), inc_roots.end());
  SSKEL_REQUIRE(inc_roots == root_members(g, fresh));
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  FuzzInput input(data, size);
  const ProcId n = static_cast<ProcId>(input.in_range(1, 32));

  Digraph g(n);
  const std::uint32_t edges = input.in_range(0, 96);
  for (std::uint32_t e = 0; e < edges; ++e) {
    const auto q = static_cast<ProcId>(
        input.in_range(0, static_cast<std::uint32_t>(n) - 1));
    const auto p = static_cast<ProcId>(
        input.in_range(0, static_cast<std::uint32_t>(n) - 1));
    g.add_edge(q, p);
  }

  IncrementalScc inc;
  inc.seed(g);
  check_against_fresh(inc, g);

  // Deletion batches until the input runs dry.
  while (!input.empty()) {
    GraphDelta delta;
    const std::uint32_t ops = input.in_range(1, 6);
    for (std::uint32_t op = 0; op < ops; ++op) {
      const auto target = static_cast<ProcId>(
          input.in_range(0, static_cast<std::uint32_t>(n) - 1));
      if (input.boolean()) {
        // Remove one present node with its incident edges.
        if (!g.has_node(target)) continue;
        for (ProcId p : g.out_neighbors(target)) {
          if (p != target) delta.removed_edges.emplace_back(target, p);
        }
        for (ProcId q : g.nodes()) {
          if (q != target && g.has_edge(q, target)) {
            delta.removed_edges.emplace_back(q, target);
          }
        }
        if (g.has_edge(target, target)) {
          delta.removed_edges.emplace_back(target, target);
        }
        delta.removed_nodes.push_back(target);
        g.remove_node(target);
      } else {
        // Remove one existing out-edge of `target`.
        if (!g.has_node(target) || g.out_neighbors(target).empty()) continue;
        ProcId victim = -1;
        std::uint32_t skip = input.in_range(0, 7);
        for (ProcId p : g.out_neighbors(target)) {
          victim = p;
          if (skip-- == 0) break;
        }
        delta.removed_edges.emplace_back(target, victim);
        g.remove_edge(target, victim);
      }
    }
    if (delta.empty()) continue;
    inc.apply(g, delta);
    check_against_fresh(inc, g);
  }
  return 0;
}
