// Fuzz target: the two message planes of NetRoundDriver, differentially.
//
// The fuzz input picks a small universe, skews, link matrix (timely /
// flaky / lossy mix, deadline-tie delays included) and ring depth; the
// same k-set run then executes on the ring plane and the event-queue
// plane. Reports must be bit-equal (DESIGN.md §12) and the full
// captures — broadcasts, delivery fates, closes — identical. Tiny ring
// depths are part of the search space deliberately: backpressure and
// frag reassembly must not change observable behaviour.
#include <cstdint>
#include <vector>

#include "fuzz_input.hpp"
#include "kset/message.hpp"
#include "net/kset_net.hpp"
#include "rounds/trace.hpp"
#include "util/assert.hpp"

using namespace sskel;
using sskel::fuzz::FuzzInput;

namespace {

struct PlaneRun {
  KSetRunReport report;
  RunCapture capture;
  std::int64_t delivered = 0;
  std::int64_t late = 0;
  std::int64_t lost = 0;
  SimTime wall_clock = 0;
};

PlaneRun run_plane(const LinkMatrix& links, NetKSetConfig config,
                   NetPlane plane, std::size_t ring_depth) {
  config.net.plane = plane;
  config.net.ring_depth = ring_depth;
  const ProcId n = links.n();
  NetRoundDriver<SkeletonMessage> driver(
      config.net, links, make_kset_processes(n, config.run));
  TraceRecorder recorder(n, driver.trace_source(), config.net.seed,
                         config.net.round_duration);
  driver.set_trace_sink(&recorder, [](const SkeletonMessage& m,
                                      std::vector<std::uint8_t>& out) {
    encode_message(m, out);
  });
  recorder.attach(driver);
  PlaneRun out;
  out.report = run_kset_on_engine(driver, config.run);
  out.capture = recorder.finish(driver.trace());
  out.delivered = driver.delivered_messages();
  out.late = driver.late_messages();
  out.lost = driver.lost_messages();
  out.wall_clock = driver.now();
  return out;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  FuzzInput input(data, size);
  const ProcId n = static_cast<ProcId>(input.in_range(2, 6));
  const SimTime duration = 200 * static_cast<SimTime>(input.in_range(1, 5));

  NetKSetConfig config;
  config.run.k = static_cast<int>(input.in_range(1, 3));
  config.run.max_rounds = static_cast<Round>(input.in_range(4, 24));
  config.run.tail_rounds = static_cast<Round>(input.in_range(0, 2));
  config.net.round_duration = duration;
  config.net.seed = input.u64();
  for (ProcId p = 0; p < n; ++p) {
    // Skews must stay below D.
    config.net.skews.push_back(static_cast<SimTime>(
        input.in_range(0, static_cast<std::uint32_t>(duration) - 1)));
  }

  // Start from lossy chaos, then upgrade a fuzz-chosen stable
  // subgraph to timely links (self-loops always present). Delay
  // bounds may hit `duration` exactly — deadline ties are the point.
  LinkMatrix links = LinkMatrix::all_flaky(n, 0.25 * input.in_range(0, 3));
  Digraph stable(n);
  stable.add_self_loops();
  const std::uint32_t extra = input.in_range(0, 12);
  for (std::uint32_t e = 0; e < extra; ++e) {
    stable.add_edge(static_cast<ProcId>(
                        input.in_range(0, static_cast<std::uint32_t>(n) - 1)),
                    static_cast<ProcId>(
                        input.in_range(0, static_cast<std::uint32_t>(n) - 1)));
  }
  const SimTime lo = static_cast<SimTime>(
      input.in_range(1, static_cast<std::uint32_t>(duration)));
  const SimTime hi = lo + static_cast<SimTime>(input.in_range(
                              0, static_cast<std::uint32_t>(duration - lo)));
  links.upgrade_to_timely(stable, lo, hi);

  const std::size_t ring_depth = input.in_range(0, 3);
  const PlaneRun ring =
      run_plane(links, config, NetPlane::kRing, ring_depth);
  const PlaneRun eq = run_plane(links, config, NetPlane::kEventQueue, 0);

  SSKEL_REQUIRE(ring.report.outcomes.size() == eq.report.outcomes.size());
  for (std::size_t p = 0; p < ring.report.outcomes.size(); ++p) {
    SSKEL_REQUIRE(ring.report.outcomes[p].decided ==
                  eq.report.outcomes[p].decided);
    SSKEL_REQUIRE(ring.report.outcomes[p].decision ==
                  eq.report.outcomes[p].decision);
    SSKEL_REQUIRE(ring.report.outcomes[p].decision_round ==
                  eq.report.outcomes[p].decision_round);
  }
  SSKEL_REQUIRE(ring.report.rounds_executed == eq.report.rounds_executed);
  SSKEL_REQUIRE(ring.report.final_skeleton == eq.report.final_skeleton);
  SSKEL_REQUIRE(ring.report.total_messages == eq.report.total_messages);
  SSKEL_REQUIRE(ring.delivered == eq.delivered);
  SSKEL_REQUIRE(ring.late == eq.late);
  SSKEL_REQUIRE(ring.lost == eq.lost);
  SSKEL_REQUIRE(ring.wall_clock == eq.wall_clock);

  RunCapture rebased = ring.capture;
  rebased.header.source = TraceSource::kNetEventQueue;
  SSKEL_REQUIRE(rebased == eq.capture);
  return 0;
}
