// Minimal structure-aware reader for fuzz targets: deterministic,
// allocation-free slicing of the raw fuzz input into bounded integers.
// Runs dry gracefully — once the input is exhausted every read returns
// the range minimum, so targets never branch on uninitialized data and
// short inputs still reach deep code paths.
#pragma once

#include <cstddef>
#include <cstdint>

namespace sskel::fuzz {

class FuzzInput {
 public:
  FuzzInput(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
  [[nodiscard]] bool empty() const { return pos_ == size_; }

  [[nodiscard]] std::uint8_t u8() {
    return pos_ < size_ ? data_[pos_++] : 0;
  }

  [[nodiscard]] std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(u8()) << (8 * i);
    return v;
  }

  /// Uniform-ish value in [lo, hi] consuming one byte (two for wide
  /// ranges). lo when the input is exhausted.
  [[nodiscard]] std::uint32_t in_range(std::uint32_t lo, std::uint32_t hi) {
    if (hi <= lo) return lo;
    const std::uint32_t span = hi - lo + 1;
    std::uint32_t raw = u8();
    if (span > 256) raw = raw << 8 | u8();
    return lo + raw % span;
  }

  [[nodiscard]] bool boolean() { return (u8() & 1) != 0; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace sskel::fuzz
