// Differential fuzz target: record on the network substrate, replay on
// the Simulator, demand bit-equal reports.
//
// This is the paper's central claim turned into an oracle: a run *is*
// its communication-graph sequence, so the derived graphs captured
// from a network run — whatever loss, lateness, skew and deadline-tie
// schedule produced them — must drive the Simulator to the identical
// KSetRunReport. The capture also has to survive its own codec on the
// way (encode → decode → ReplaySource), so the fuzzer exercises the
// full record/replay pipeline end to end.
#include <cstdint>
#include <vector>

#include "fuzz_input.hpp"
#include "kset/message.hpp"
#include "net/kset_net.hpp"
#include "rounds/record.hpp"
#include "rounds/trace.hpp"
#include "util/assert.hpp"

using namespace sskel;
using sskel::fuzz::FuzzInput;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  FuzzInput input(data, size);
  const ProcId n = static_cast<ProcId>(input.in_range(2, 7));
  const SimTime duration = 250 * static_cast<SimTime>(input.in_range(1, 4));

  NetKSetConfig config;
  config.run.k = static_cast<int>(input.in_range(1, 3));
  config.run.max_rounds = static_cast<Round>(input.in_range(4, 24));
  config.run.tail_rounds = static_cast<Round>(input.in_range(0, 2));
  // Byte accounting differs legitimately on tie discards (the derived
  // graph cannot represent a counted-but-dead deposit), so the
  // differential contract is stated on the measured-bytes-off report.
  config.run.measure_bytes = false;
  config.net.round_duration = duration;
  config.net.seed = input.u64();
  for (ProcId p = 0; p < n; ++p) {
    config.net.skews.push_back(static_cast<SimTime>(
        input.in_range(0, static_cast<std::uint32_t>(duration) - 1)));
  }

  LinkMatrix links = LinkMatrix::all_flaky(n, 0.25 * input.in_range(0, 3));
  Digraph stable(n);
  stable.add_self_loops();
  const std::uint32_t extra = input.in_range(0, 12);
  for (std::uint32_t e = 0; e < extra; ++e) {
    stable.add_edge(static_cast<ProcId>(
                        input.in_range(0, static_cast<std::uint32_t>(n) - 1)),
                    static_cast<ProcId>(
                        input.in_range(0, static_cast<std::uint32_t>(n) - 1)));
  }
  const SimTime lo = static_cast<SimTime>(
      input.in_range(1, static_cast<std::uint32_t>(duration)));
  const SimTime hi = lo + static_cast<SimTime>(input.in_range(
                              0, static_cast<std::uint32_t>(duration - lo)));
  links.upgrade_to_timely(stable, lo, hi);

  config.net.plane =
      input.boolean() ? NetPlane::kRing : NetPlane::kEventQueue;
  config.net.ring_depth = input.in_range(0, 3);

  NetRoundDriver<SkeletonMessage> driver(
      config.net, links, make_kset_processes(n, config.run));
  TraceRecorder recorder(n, driver.trace_source(), config.net.seed,
                         config.net.round_duration);
  driver.set_trace_sink(&recorder, [](const SkeletonMessage& m,
                                      std::vector<std::uint8_t>& out) {
    encode_message(m, out);
  });
  recorder.attach(driver);
  const KSetRunReport net = run_kset_on_engine(driver, config.run);
  const RunCapture capture = recorder.finish(driver.trace());
  if (capture.graphs.empty()) return 0;  // max_rounds 0-round degenerate

  // Replay through the codec, not the in-memory capture: the bytes on
  // disk are what a bug report actually carries.
  DecodeResult<RunCapture> decoded = decode_trace(encode_trace(capture));
  SSKEL_REQUIRE(decoded.ok());
  SSKEL_REQUIRE(decoded.value() == capture);

  ReplaySource replay(decoded.value().graphs);
  const KSetRunReport sim = run_kset(replay, config.run);

  SSKEL_REQUIRE(sim.n == net.n);
  SSKEL_REQUIRE(sim.outcomes.size() == net.outcomes.size());
  for (std::size_t p = 0; p < sim.outcomes.size(); ++p) {
    SSKEL_REQUIRE(sim.outcomes[p].proposal == net.outcomes[p].proposal);
    SSKEL_REQUIRE(sim.outcomes[p].decided == net.outcomes[p].decided);
    SSKEL_REQUIRE(sim.outcomes[p].decision == net.outcomes[p].decision);
    SSKEL_REQUIRE(sim.outcomes[p].decision_round ==
                  net.outcomes[p].decision_round);
  }
  SSKEL_REQUIRE(sim.paths == net.paths);
  SSKEL_REQUIRE(sim.all_decided == net.all_decided);
  SSKEL_REQUIRE(sim.rounds_executed == net.rounds_executed);
  SSKEL_REQUIRE(sim.last_decision_round == net.last_decision_round);
  SSKEL_REQUIRE(sim.distinct_values == net.distinct_values);
  SSKEL_REQUIRE(sim.final_skeleton == net.final_skeleton);
  SSKEL_REQUIRE(sim.skeleton_last_change == net.skeleton_last_change);
  SSKEL_REQUIRE(sim.root_components_final == net.root_components_final);
  SSKEL_REQUIRE(sim.total_messages == net.total_messages);
  SSKEL_REQUIRE(sim.lemma_violations == net.lemma_violations);
  return 0;
}
