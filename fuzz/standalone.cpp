// Standalone mutation driver: gives every fuzz target a main() on
// toolchains without libFuzzer (the GCC-only container, plain CI
// runners). Real coverage-guided runs use Clang's -fsanitize=fuzzer
// against the same LLVMFuzzerTestOneInput entry points — this driver
// only does blind corpus mutation, but deterministically (fixed
// xoshiro seed), so a crash found in CI replays locally byte-for-byte
// and the corpus files double as regression inputs.
//
// Usage mirrors the libFuzzer flags the CI job passes:
//   target [-runs=N] [-seed=S] [-max_len=L] [corpus file-or-dir]...
// Every corpus file is first replayed verbatim, then N mutated inputs
// are generated (splice + flip + trim + insert) from the corpus plus
// the target's structure-aware seeds.
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "util/rng.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

/// Targets may override this to emit valid encodings as mutation
/// bases — structure-aware seeding without binary files in the tree.
extern "C" __attribute__((weak)) void sskel_fuzz_seed_corpus(
    std::vector<std::vector<std::uint8_t>>* out) {
  (void)out;
}

namespace {

using Input = std::vector<std::uint8_t>;

void load_path(const std::string& path, std::vector<Input>& corpus) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    for (const auto& entry : fs::directory_iterator(path, ec)) {
      if (entry.is_regular_file()) load_path(entry.path().string(), corpus);
    }
    return;
  }
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    std::fprintf(stderr, "standalone: cannot read %s\n", path.c_str());
    std::exit(2);
  }
  corpus.emplace_back(std::istreambuf_iterator<char>(is),
                      std::istreambuf_iterator<char>());
}

Input mutate(const std::vector<Input>& corpus, sskel::Rng& rng,
             std::size_t max_len) {
  Input out;
  if (!corpus.empty()) {
    out = corpus[static_cast<std::size_t>(rng.next_below(corpus.size()))];
  }
  const int mutations = 1 + static_cast<int>(rng.next_below(8));
  for (int m = 0; m < mutations; ++m) {
    switch (rng.next_below(6)) {
      case 0:  // flip one bit
        if (!out.empty()) {
          out[static_cast<std::size_t>(rng.next_below(out.size()))] ^=
              static_cast<std::uint8_t>(1u << rng.next_below(8));
        }
        break;
      case 1:  // overwrite one byte
        if (!out.empty()) {
          out[static_cast<std::size_t>(rng.next_below(out.size()))] =
              static_cast<std::uint8_t>(rng.next_below(256));
        }
        break;
      case 2:  // truncate
        if (!out.empty()) {
          out.resize(static_cast<std::size_t>(rng.next_below(out.size())));
        }
        break;
      case 3: {  // insert a few random bytes
        const std::size_t count = 1 + rng.next_below(8);
        const std::size_t at =
            out.empty() ? 0
                        : static_cast<std::size_t>(
                              rng.next_below(out.size() + 1));
        Input noise(count);
        for (auto& b : noise) {
          b = static_cast<std::uint8_t>(rng.next_below(256));
        }
        out.insert(out.begin() + static_cast<long>(at), noise.begin(),
                   noise.end());
        break;
      }
      case 4: {  // splice a window from another corpus item
        if (corpus.empty()) break;
        const Input& other =
            corpus[static_cast<std::size_t>(rng.next_below(corpus.size()))];
        if (other.empty()) break;
        const std::size_t from =
            static_cast<std::size_t>(rng.next_below(other.size()));
        const std::size_t len = 1 + rng.next_below(other.size() - from);
        const std::size_t at =
            out.empty() ? 0
                        : static_cast<std::size_t>(
                              rng.next_below(out.size() + 1));
        out.insert(out.begin() + static_cast<long>(at), other.begin() +
                       static_cast<long>(from),
                   other.begin() + static_cast<long>(from + len));
        break;
      }
      case 5: {  // duplicate a window of self (frame repetition)
        if (out.empty()) break;
        const std::size_t from =
            static_cast<std::size_t>(rng.next_below(out.size()));
        const std::size_t len = 1 + rng.next_below(out.size() - from);
        const Input window(out.begin() + static_cast<long>(from),
                           out.begin() + static_cast<long>(from + len));
        out.insert(out.end(), window.begin(), window.end());
        break;
      }
      default: break;
    }
  }
  if (out.size() > max_len) out.resize(max_len);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t runs = 1000;
  std::uint64_t seed = 1;
  std::size_t max_len = 1 << 14;
  std::vector<Input> corpus;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("-runs=", 0) == 0) {
      runs = std::strtoull(arg.c_str() + 6, nullptr, 10);
    } else if (arg.rfind("-seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 6, nullptr, 10);
    } else if (arg.rfind("-max_len=", 0) == 0) {
      max_len = std::strtoull(arg.c_str() + 9, nullptr, 10);
    } else if (!arg.empty() && arg[0] == '-') {
      // Ignore unknown libFuzzer-style flags so one CI invocation
      // works against both drivers.
    } else {
      load_path(arg, corpus);
    }
  }

  sskel_fuzz_seed_corpus(&corpus);

  std::uint64_t executed = 0;
  for (const Input& input : corpus) {
    LLVMFuzzerTestOneInput(input.data(), input.size());
    ++executed;
  }
  LLVMFuzzerTestOneInput(nullptr, 0);  // the empty input

  sskel::Rng rng(seed);
  for (std::uint64_t i = 0; i < runs; ++i) {
    const Input input = mutate(corpus, rng, max_len);
    LLVMFuzzerTestOneInput(input.data(), input.size());
    ++executed;
  }
  std::printf("standalone: %" PRIu64 " inputs (%zu corpus), no crashes\n",
              executed, corpus.size());
  return 0;
}
