// Leader election / name-space reduction with k-set agreement.
//
// The paper's introduction motivates k-set agreement through problems
// like renaming: shrinking an unbounded name space to a small one.
// This example runs Algorithm 1 with every process proposing *its own
// id*. k-set agreement guarantees at most k distinct ids survive as
// decisions — a set of at most k leaders that every process knows and
// agrees on (within its partition of the stable skeleton). A process
// that decides its own id *is* a leader; everyone else holds a leader
// id it heard and decided.
//
// This is exactly the "name-space reduction" view: n names in, at most
// k names out, tolerating arbitrary Psrcs(k)-compatible link failures.
//
// Usage:
//   leader_election [--n=12] [--k=3] [--seed=3] [--noise=0.25]
#include <iostream>
#include <map>
#include <set>

#include "adversary/random_psrcs.hpp"
#include "kset/runner.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace sskel;
  const CliArgs args(argc, argv, {"n", "k", "seed", "noise"});
  const ProcId n = static_cast<ProcId>(args.get_int("n", 12));
  const int k = static_cast<int>(args.get_int("k", 3));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 3));

  // Default: no transient noise, so each of the k root components
  // keeps its own minimum id and the election yields exactly k
  // leaders. With --noise > 0, transient early links can leak a small
  // id across components before the skeleton stabilizes — still
  // correct (<= k leaders), just fewer of them.
  RandomPsrcsParams params;
  params.n = n;
  params.k = k;
  params.root_components = k;
  params.noise_probability = args.get_double("noise", 0.0);
  params.stabilization_round = 3;
  RandomPsrcsSource source(seed, params);

  std::cout << "leader election via k-set agreement: " << n
            << " candidates, at most " << k << " leaders\n\n";

  // Proposal = own id: the decided values are process ids.
  KSetRunConfig config;
  config.k = k;
  for (ProcId p = 0; p < n; ++p) config.proposals.push_back(p);
  const KSetRunReport report = run_kset(source, config);

  if (!report.all_decided) {
    std::cout << "ERROR: election did not terminate\n";
    return 1;
  }

  std::set<Value> leaders;
  std::map<Value, int> supporters;
  for (ProcId p = 0; p < n; ++p) {
    const Value leader = report.outcomes[static_cast<std::size_t>(p)].decision;
    leaders.insert(leader);
    ++supporters[leader];
  }

  std::cout << "elected leaders (" << leaders.size() << " <= k = " << k
            << "):\n";
  for (Value leader : leaders) {
    std::cout << "  p" << leader << " with " << supporters[leader]
              << " supporters"
              << (report.outcomes[static_cast<std::size_t>(leader)].decision ==
                          leader
                      ? " (self-acknowledged)"
                      : "")
              << "\n";
  }

  std::cout << "\nname-space reduction: " << n << " -> " << leaders.size()
            << " names, done by round " << report.last_decision_round << "\n";
  return leaders.size() <= static_cast<std::size_t>(k) ? 0 : 1;
}
