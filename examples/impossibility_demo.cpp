// Impossibility demo: Theorem 2 made executable.
//
// The paper proves that no algorithm solves (k-1)-set agreement in
// system Psrcs(k) by constructing a run with k-1 "loners" and one
// 2-source s. This demo (i) verifies mechanically that the run's
// skeleton satisfies Psrcs(k) but not Psrcs(k-1), and (ii) runs
// Algorithm 1 on it, showing it produces exactly k distinct values:
// the algorithm meets the k ceiling, and the ceiling is real.
//
// Usage:
//   impossibility_demo [--n=8] [--k=4]
#include <iostream>

#include "adversary/impossibility.hpp"
#include "kset/runner.hpp"
#include "predicates/psrcs.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace sskel;
  const CliArgs args(argc, argv, {"n", "k"});
  const ProcId n = static_cast<ProcId>(args.get_int("n", 8));
  const int k = static_cast<int>(args.get_int("k", 4));
  if (!(k > 1 && k < n)) {
    std::cerr << "need 1 < k < n\n";
    return 2;
  }

  std::cout << "Theorem 2 run with n=" << n << ", k=" << k << ":\n";
  std::cout << "  loners L = " << impossibility_loners(n, k).to_string()
            << " (hear only themselves)\n";
  std::cout << "  2-source s = p" << impossibility_source_process(k)
            << " (heard by every process outside L)\n\n";

  const Digraph skel = impossibility_graph(n, k);
  const PsrcsCheck at_k = check_psrcs_exact(skel, k);
  const PsrcsCheck at_k1 = check_psrcs_exact(skel, k - 1);
  std::cout << "Psrcs(" << k << "): " << (at_k.holds ? "holds" : "violated")
            << "\n";
  std::cout << "Psrcs(" << k - 1
            << "): " << (at_k1.holds ? "holds" : "violated");
  if (at_k1.violating_subset) {
    std::cout << "  (witness subset " << at_k1.violating_subset->to_string()
              << " has no 2-source)";
  }
  std::cout << "\n\n";

  auto source = make_impossibility_source(n, k);
  KSetRunConfig config;
  config.k = k;
  const KSetRunReport report = run_kset(*source, config);

  for (ProcId p = 0; p < n; ++p) {
    const Outcome& o = report.outcomes[static_cast<std::size_t>(p)];
    std::cout << "  p" << p << ": proposed " << o.proposal << " -> decided "
              << o.decision << "\n";
  }
  std::cout << "\ndistinct values: " << report.distinct_values
            << "  => k-set agreement " << (report.distinct_values <= k
                                               ? "holds (tight)"
                                               : "VIOLATED")
            << ", (k-1)-set agreement "
            << (report.distinct_values <= k - 1 ? "unexpectedly holds"
                                                : "violated, as Theorem 2 "
                                                  "predicts")
            << "\n";
  return 0;
}
