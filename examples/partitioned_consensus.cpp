// Partitioned consensus: the paper's motivating scenario for k > 1
// (Sec. I) — "partitionable systems that need to reach consensus in
// every partition".
//
// A cluster of n replicas splits into m network partitions (e.g. rack
// switches failing). Within each partition links are timely; across
// partitions messages are lost, except for flaky cross-traffic during
// the first few rounds. Running Algorithm 1 with k = m gives exactly
// what such a system wants: each partition independently reaches
// consensus on one of its own proposals, and system-wide at most m
// values exist — without any process knowing the partition layout.
//
// Usage:
//   partitioned_consensus [--n=12] [--m=3] [--seed=7] [--noise=0.5]
#include <iostream>
#include <map>

#include "adversary/partition.hpp"
#include "kset/runner.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace sskel;
  const CliArgs args(argc, argv, {"n", "m", "seed", "noise"});
  const ProcId n = static_cast<ProcId>(args.get_int("n", 12));
  const int m = static_cast<int>(args.get_int("m", 3));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 7));

  // Default: clean partitions, so each block keeps its own minimum and
  // the decided values are one-per-partition. Turn --noise up to see
  // transient cross-links leak small minima across partitions before
  // the skeleton stabilizes — per-partition consensus still holds, but
  // partitions may then agree on a foreign proposal.
  PartitionParams params;
  params.blocks = even_blocks(n, m);
  params.cross_noise_probability = args.get_double("noise", 0.0);
  params.stabilization_round = 5;
  PartitionSource source(seed, params);

  std::cout << "partitioned cluster: " << n << " replicas in " << m
            << " partitions, cross-link noise "
            << params.cross_noise_probability << " for 4 rounds\n\n";

  KSetRunConfig config;
  config.k = m;
  const KSetRunReport report = run_kset(source, config);

  if (!report.all_decided) {
    std::cout << "ERROR: some replica failed to decide\n";
    return 1;
  }

  for (std::size_t b = 0; b < source.blocks().size(); ++b) {
    const ProcSet& block = source.blocks()[b];
    std::cout << "partition " << b << " " << block.to_string() << ":\n";
    std::map<Value, int> votes;
    for (ProcId p : block) {
      const Outcome& o = report.outcomes[static_cast<std::size_t>(p)];
      ++votes[o.decision];
      std::cout << "  p" << p << " proposed " << o.proposal << " -> decided "
                << o.decision << " (round " << o.decision_round << ")\n";
    }
    std::cout << "  => " << (votes.size() == 1 ? "consensus" : "SPLIT!")
              << " on " << votes.begin()->first << "\n";
  }

  std::cout << "\nsystem-wide distinct values: " << report.distinct_values
            << " (<= m = " << m << ": "
            << (report.distinct_values <= m ? "ok" : "VIOLATED") << ")\n";
  std::cout << "stable skeleton has " << report.root_components_final.size()
            << " root components (one per partition)\n";
  return report.verdict.all_hold() ? 0 : 1;
}
