// From partial synchrony to Psrcs(k): Algorithm 1 over a simulated
// network.
//
// The paper's round model abstracts a partially synchronous system:
// whether p "hears" q in a round is decided by real message timing.
// This example builds such a system explicitly — an event-driven
// network where k hub processes have bounded-delay (timely) links to
// their members while every other link is flaky — and runs Algorithm 1
// over a round synchronizer on top of it. The timely hubs form a hub
// cover, so the *derived* communication graphs satisfy Psrcs(k), and
// the decisions respect the k ceiling, end to end through deadlines,
// discarded late messages, and clock skew.
//
// Usage:
//   timely_network [--n=9] [--k=3] [--seed=2] [--flaky=0.4]
//                  [--round-us=1000] [--skew-us=200]
#include <iostream>

#include "graph/scc.hpp"
#include "net/kset_net.hpp"
#include "predicates/psrcs.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace sskel;
  const CliArgs args(argc, argv,
                     {"n", "k", "seed", "flaky", "round-us", "skew-us"});
  const ProcId n = static_cast<ProcId>(args.get_int("n", 9));
  const int k = static_cast<int>(args.get_int("k", 3));
  const double flaky = args.get_double("flaky", 0.4);
  const SimTime round_us = args.get_int("round-us", 1000);
  const SimTime skew_us = args.get_int("skew-us", 200);

  std::cout << "partially synchronous network: " << n << " processes, " << k
            << " timely hubs, flaky links p=" << flaky << ", round "
            << round_us << "us, max clock skew " << skew_us << "us\n\n";

  // Stable structure: hub h = p % k serves process p.
  Digraph stable(n);
  stable.add_self_loops();
  for (ProcId p = 0; p < n; ++p) {
    stable.add_edge(p % static_cast<ProcId>(k), p);
  }
  LinkMatrix links = LinkMatrix::all_flaky(n, flaky);
  // Timely delays must absorb the worst-case skew: d + skew <= D.
  links.upgrade_to_timely(stable, 100, round_us - skew_us - 100);

  NetKSetConfig config;
  config.run.k = k;
  config.net.round_duration = round_us;
  config.net.seed = static_cast<std::uint64_t>(args.get_int("seed", 2));
  for (ProcId p = 0; p < n; ++p) {
    config.net.skews.push_back((static_cast<SimTime>(p) * 37) % (skew_us + 1));
  }

  const NetKSetReport report = run_kset_over_network(links, config);
  if (!report.kset.all_decided) {
    std::cout << "ERROR: not all processes decided\n";
    return 1;
  }

  std::cout << "network traffic: " << report.delivered_messages
            << " delivered, " << report.late_messages
            << " discarded late (communication closure), "
            << report.lost_messages << " lost\n";
  std::cout << "simulated time: " << report.wall_clock << "us ("
            << report.kset.rounds_executed << " rounds)\n\n";

  std::cout << "derived skeleton: " << report.kset.final_skeleton.edge_count()
            << " stable edges, stabilized at round "
            << report.kset.skeleton_last_change << "\n";
  const PsrcsCheck check = check_psrcs_exact(report.kset.final_skeleton, k);
  std::cout << "Psrcs(" << k << ") on the derived skeleton: "
            << (check.holds ? "holds" : "VIOLATED") << "\n";
  std::cout << "root components: "
            << root_components(report.kset.final_skeleton).size() << "\n\n";

  for (ProcId p = 0; p < n; ++p) {
    const Outcome& o = report.kset.outcomes[static_cast<std::size_t>(p)];
    std::cout << "  p" << p << " (hub p" << p % static_cast<ProcId>(k)
              << "): proposed " << o.proposal << " -> decided " << o.decision
              << " in round " << o.decision_round << "\n";
  }
  std::cout << "\ndistinct values: " << report.kset.distinct_values
            << " (k = " << k << ": "
            << (report.kset.verdict.k_agreement ? "ok" : "VIOLATED") << ")\n";
  return report.kset.verdict.all_hold() ? 0 : 1;
}
