// Figure 1 walkthrough: replays the paper's running example and prints
// every artifact the figure shows — G∩2, G∩∞, the two root
// components, and process p6's approximation graph G_{p6}^r round by
// round (the series of Figs. 1c-1h).
//
// Note on numbering: the paper's p1..p6 are ids p0..p5 here.
//
// Usage:
//   figure1_walkthrough [--rounds=10] [--dot]  (--dot prints Graphviz)
#include <iostream>
#include <memory>

#include "adversary/figure1.hpp"
#include "graph/scc.hpp"
#include "kset/skeleton_kset.hpp"
#include "rounds/simulator.hpp"
#include "skeleton/tracker.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace sskel;
  const CliArgs args(argc, argv, {"rounds", "dot"});
  const Round rounds = static_cast<Round>(args.get_int("rounds", 10));
  const bool dot = args.get_bool("dot", false);

  std::cout << "=== The Figure 1 run (6 processes, Psrcs(3)) ===\n\n";
  std::cout << "Stable skeleton G∩∞ (Fig. 1b), self-loops omitted:\n"
            << figure1_stable_skeleton().to_string();
  std::cout << "Round-2 skeleton G∩2 (Fig. 1a) additionally carries the "
               "transient edges\n"
            << "p3->p1, p5->p0, p2->p5 (they die in round 3).\n\n";

  std::cout << "Root components: " << figure1_root_a().to_string() << " and "
            << figure1_root_b().to_string() << "\n\n";

  if (dot) {
    std::cout << figure1_stable_skeleton().to_dot("stable_skeleton") << "\n";
  }

  auto source = make_figure1_source();
  std::vector<std::unique_ptr<Algorithm<SkeletonMessage>>> procs;
  std::vector<SkeletonKSetProcess*> views;
  for (ProcId p = 0; p < kFigure1N; ++p) {
    auto proc =
        std::make_unique<SkeletonKSetProcess>(kFigure1N, p, 100 * p + 7);
    views.push_back(proc.get());
    procs.push_back(std::move(proc));
  }
  Simulator<SkeletonMessage> sim(*source, std::move(procs));
  SkeletonTracker tracker(kFigure1N);
  sim.add_observer(tracker.observer());

  std::cout << "p5's (the paper's p6) approximation graph per round, "
               "self-loops omitted:\n";
  for (Round r = 1; r <= rounds; ++r) {
    sim.step();
    std::cout << "  round " << r << ": "
              << views[5]->approximation().to_string(false) << "\n";
    for (ProcId p = 0; p < kFigure1N; ++p) {
      if (views[static_cast<std::size_t>(p)]->decided() &&
          views[static_cast<std::size_t>(p)]->decision_round() == r) {
        std::cout << "    -> p" << p << " decides "
                  << views[static_cast<std::size_t>(p)]->decision() << "\n";
      }
    }
  }

  std::cout << "\nskeleton stabilized at round "
            << tracker.last_change_round() << " (expected "
            << kFigure1StabilizationRound << ")\n";
  std::cout << "decisions: ";
  for (ProcId p = 0; p < kFigure1N; ++p) {
    std::cout << "p" << p << "="
              << (views[static_cast<std::size_t>(p)]->decided()
                      ? std::to_string(
                            views[static_cast<std::size_t>(p)]->decision())
                      : std::string("?"))
              << (p + 1 < kFigure1N ? ", " : "\n");
  }
  return 0;
}
