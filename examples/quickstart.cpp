// Quickstart: solve k-set agreement over an unreliable round-based
// system with libsskel.
//
// This example builds a random adversary that guarantees the paper's
// communication predicate Psrcs(k), runs Algorithm 1 (the stable-
// skeleton approximation algorithm) on it, and prints the outcome:
// every process decides, at most k distinct values survive, and the
// decisions map one-to-one onto the root components of the run's
// stable skeleton.
//
// Usage:
//   quickstart [--n=10] [--k=3] [--roots=3] [--seed=1] [--noise=0.3]
#include <cstdio>
#include <iostream>

#include "adversary/random_psrcs.hpp"
#include "graph/scc.hpp"
#include "kset/runner.hpp"
#include "predicates/psrcs.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace sskel;
  const CliArgs args(argc, argv, {"n", "k", "roots", "seed", "noise"});

  RandomPsrcsParams params;
  params.n = static_cast<ProcId>(args.get_int("n", 10));
  params.k = static_cast<int>(args.get_int("k", 3));
  params.root_components =
      static_cast<int>(args.get_int("roots", params.k));
  params.noise_probability = args.get_double("noise", 0.3);
  params.stabilization_round = 4;
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1));

  std::cout << "libsskel quickstart: " << params.n
            << " processes, k=" << params.k << ", "
            << params.root_components
            << " root components, seed=" << seed << "\n\n";

  RandomPsrcsSource source(seed, params);

  // The adversary promises Psrcs(k); check it when affordable.
  if (params.n <= 14) {
    const PsrcsCheck check =
        check_psrcs_exact(source.stable_skeleton(), params.k);
    std::cout << "Psrcs(" << params.k << ") on the stable skeleton: "
              << (check.holds ? "holds" : "VIOLATED") << " ("
              << check.subsets_checked << " subsets checked)\n";
  }

  // Run Algorithm 1.
  KSetRunConfig config;
  config.k = params.k;
  config.measure_bytes = true;
  const KSetRunReport report = run_kset(source, config);

  std::cout << "run finished after " << report.rounds_executed
            << " rounds; skeleton stabilized at round "
            << report.skeleton_last_change << "\n";
  std::cout << "root components of the stable skeleton:\n";
  for (const ProcSet& root : report.root_components_final) {
    std::cout << "  " << root.to_string() << "\n";
  }

  std::cout << "\nper-process outcome:\n";
  for (ProcId p = 0; p < report.n; ++p) {
    const Outcome& o = report.outcomes[static_cast<std::size_t>(p)];
    std::cout << "  p" << p << ": proposed " << o.proposal << ", decided "
              << o.decision << " in round " << o.decision_round << " ("
              << (report.paths[static_cast<std::size_t>(p)] ==
                          DecisionPath::kConnected
                      ? "own skeleton view"
                      : "forwarded decide")
              << ")\n";
  }

  std::cout << "\ndistinct decision values: " << report.distinct_values
            << " (k = " << config.k << ")\n";
  std::cout << "k-agreement: "
            << (report.verdict.k_agreement ? "ok" : "VIOLATED")
            << ", validity: " << (report.verdict.validity ? "ok" : "VIOLATED")
            << ", termination: "
            << (report.verdict.termination ? "ok" : "VIOLATED") << "\n";
  std::cout << "traffic: " << report.total_messages << " messages, "
            << report.total_bytes << " bytes total, largest message "
            << report.max_message_bytes << " bytes\n";

  return report.verdict.all_hold() ? 0 : 1;
}
