// Tests for the partition adversary.
#include "adversary/partition.hpp"

#include <gtest/gtest.h>

#include "graph/scc.hpp"
#include "predicates/psrcs.hpp"
#include "skeleton/tracker.hpp"

namespace sskel {
namespace {

TEST(EvenBlocksTest, SplitsEvenly) {
  const auto blocks = even_blocks(10, 3);
  ASSERT_EQ(blocks.size(), 3u);
  EXPECT_EQ(blocks[0].count(), 4);
  EXPECT_EQ(blocks[1].count(), 3);
  EXPECT_EQ(blocks[2].count(), 3);
  ProcSet all(10);
  for (const auto& b : blocks) all |= b;
  EXPECT_EQ(all, ProcSet::full(10));
}

TEST(PartitionSourceTest, StableSkeletonIsBlockCliques) {
  PartitionParams params;
  params.blocks = even_blocks(6, 2);
  PartitionSource src(1, params);
  const Digraph& skel = src.stable_skeleton();
  EXPECT_TRUE(skel.has_edge(0, 2));   // same block
  EXPECT_FALSE(skel.has_edge(0, 3));  // cross block
  EXPECT_TRUE(skel.has_edge(4, 5));
  EXPECT_TRUE(skel.has_edge(0, 0));   // self-loops present
}

TEST(PartitionSourceTest, RootComponentsAreBlocks) {
  PartitionParams params;
  params.blocks = even_blocks(9, 3);
  PartitionSource src(2, params);
  const auto roots = root_components(src.stable_skeleton());
  EXPECT_EQ(roots.size(), 3u);
}

TEST(PartitionSourceTest, SatisfiesPsrcsM) {
  PartitionParams params;
  params.blocks = even_blocks(8, 3);
  PartitionSource src(3, params);
  EXPECT_TRUE(check_psrcs_exact(src.stable_skeleton(), 3).holds);
  EXPECT_FALSE(check_psrcs_exact(src.stable_skeleton(), 2).holds);
}

TEST(PartitionSourceTest, CrossNoiseDiesAtStabilization) {
  PartitionParams params;
  params.blocks = even_blocks(6, 2);
  params.cross_noise_probability = 0.8;
  params.stabilization_round = 4;
  PartitionSource src(4, params);

  bool any_cross_noise = false;
  for (Round r = 1; r < 4; ++r) {
    if (src.graph(r) != src.stable_skeleton()) any_cross_noise = true;
  }
  EXPECT_TRUE(any_cross_noise);
  for (Round r = 4; r <= 10; ++r) {
    EXPECT_EQ(src.graph(r), src.stable_skeleton());
  }

  SkeletonTracker tracker(6);
  for (Round r = 1; r <= 10; ++r) {
    Digraph g = src.graph(r);
    g.add_self_loops();
    tracker.observe(r, g);
  }
  EXPECT_EQ(tracker.skeleton(), src.stable_skeleton());
}

TEST(PartitionSourceDeathTest, OverlappingBlocksRejected) {
  PartitionParams params;
  params.blocks = {ProcSet::of(4, {0, 1}), ProcSet::of(4, {1, 2, 3})};
  EXPECT_DEATH(PartitionSource(1, params), "precondition");
}

TEST(PartitionSourceDeathTest, NonCoveringBlocksRejected) {
  PartitionParams params;
  params.blocks = {ProcSet::of(4, {0, 1}), ProcSet::of(4, {2})};
  EXPECT_DEATH(PartitionSource(1, params), "precondition");
}

}  // namespace
}  // namespace sskel
