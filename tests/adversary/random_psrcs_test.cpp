// Tests for the random Psrcs(k) adversary: the generated runs must
// actually deliver the structure they promise.
#include "adversary/random_psrcs.hpp"

#include <gtest/gtest.h>

#include "graph/scc.hpp"
#include "predicates/psrcs.hpp"
#include "skeleton/tracker.hpp"
#include "util/rng.hpp"

namespace sskel {
namespace {

struct SweepCase {
  ProcId n;
  int k;
  int roots;
};

class RandomPsrcsSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(RandomPsrcsSweep, StableSkeletonSatisfiesContract) {
  const SweepCase c = GetParam();
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RandomPsrcsParams params;
    params.n = c.n;
    params.k = c.k;
    params.root_components = c.roots;
    RandomPsrcsSource source(seed, params);
    const Digraph& skel = source.stable_skeleton();

    // Hub cover of size <= k => Psrcs(k) by pigeonhole.
    EXPECT_EQ(source.hubs().count(), c.roots);
    EXPECT_TRUE(is_hub_cover(skel, source.hubs()));
    // Exact check where affordable.
    if (c.n <= 12) {
      EXPECT_TRUE(check_psrcs_exact(skel, c.k).holds)
          << "seed=" << seed << " n=" << c.n << " k=" << c.k;
    }

    // Exactly the promised root components.
    const std::vector<ProcSet> roots = root_components(skel);
    EXPECT_EQ(roots.size(), static_cast<std::size_t>(c.roots));
    // Each promised core is a root component.
    for (const ProcSet& core : source.cores()) {
      bool matched = false;
      for (const ProcSet& root : roots) {
        if (root == core) matched = true;
      }
      EXPECT_TRUE(matched) << "core " << core.to_string()
                           << " is not a root component (seed=" << seed
                           << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomPsrcsSweep,
    ::testing::Values(SweepCase{4, 1, 1}, SweepCase{6, 2, 2},
                      SweepCase{8, 3, 2}, SweepCase{8, 3, 3},
                      SweepCase{12, 4, 4}, SweepCase{16, 2, 2},
                      SweepCase{24, 5, 5}),
    [](const ::testing::TestParamInfo<SweepCase>& pinfo) {
      return "n" + std::to_string(pinfo.param.n) + "_k" +
             std::to_string(pinfo.param.k) + "_j" +
             std::to_string(pinfo.param.roots);
    });

TEST(RandomPsrcsTest, GraphIsDeterministicPerRound) {
  RandomPsrcsParams params;
  params.n = 10;
  params.k = 2;
  params.root_components = 2;
  RandomPsrcsSource a(7, params);
  RandomPsrcsSource b(7, params);
  for (Round r = 1; r <= 6; ++r) EXPECT_EQ(a.graph(r), b.graph(r));
  RandomPsrcsSource c(8, params);
  bool any_diff = false;
  for (Round r = 1; r <= 6; ++r) any_diff |= (a.graph(r) != c.graph(r));
  EXPECT_TRUE(any_diff);
}

TEST(RandomPsrcsTest, EveryRoundContainsStableEdges) {
  RandomPsrcsParams params;
  params.n = 9;
  params.k = 3;
  params.root_components = 3;
  params.noise_probability = 0.5;
  RandomPsrcsSource source(11, params);
  for (Round r = 1; r <= 15; ++r) {
    EXPECT_TRUE(source.stable_skeleton().is_subgraph_of(source.graph(r)))
        << "round " << r;
  }
}

TEST(RandomPsrcsTest, SkeletonConvergesToStable) {
  RandomPsrcsParams params;
  params.n = 8;
  params.k = 2;
  params.root_components = 2;
  params.noise_probability = 0.4;
  params.stabilization_round = 5;
  RandomPsrcsSource source(13, params);
  SkeletonTracker tracker(8);
  for (Round r = 1; r <= 20; ++r) {
    Digraph g = source.graph(r);
    g.add_self_loops();
    tracker.observe(r, g);
  }
  EXPECT_EQ(tracker.skeleton(), source.stable_skeleton());
  EXPECT_LE(tracker.last_change_round(), 5);
}

TEST(RandomPsrcsTest, NoNoiseAfterStabilizationWhenDisabled) {
  RandomPsrcsParams params;
  params.n = 6;
  params.k = 2;
  params.root_components = 1;
  params.noise_probability = 0.9;
  params.stabilization_round = 3;
  params.noise_after_stabilization = false;
  RandomPsrcsSource source(17, params);
  for (Round r = 3; r <= 10; ++r) {
    EXPECT_EQ(source.graph(r), source.stable_skeleton());
  }
}

TEST(RandomPsrcsTest, CoresAreDisjointAndCoverHubs) {
  RandomPsrcsParams params;
  params.n = 20;
  params.k = 4;
  params.root_components = 4;
  RandomPsrcsSource source(23, params);
  ProcSet seen(20);
  for (const ProcSet& core : source.cores()) {
    EXPECT_FALSE(seen.intersects(core));
    seen |= core;
    EXPECT_EQ((core & source.hubs()).count(), 1);  // one hub per core
  }
}

TEST(RandomPsrcsDeathTest, RejectsMoreRootsThanK) {
  RandomPsrcsParams params;
  params.n = 6;
  params.k = 2;
  params.root_components = 3;
  EXPECT_DEATH(RandomPsrcsSource(1, params), "precondition");
}

}  // namespace
}  // namespace sskel
