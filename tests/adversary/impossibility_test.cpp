// Tests for the Theorem 2 construction.
#include "adversary/impossibility.hpp"

#include <gtest/gtest.h>

#include "graph/scc.hpp"
#include "skeleton/tracker.hpp"

namespace sskel {
namespace {

TEST(ImpossibilityTest, GraphStructure) {
  const Digraph g = impossibility_graph(6, 3);
  // Loners L = {0, 1}; source s = 2; followers 3, 4, 5.
  EXPECT_EQ(impossibility_loners(6, 3), ProcSet::of(6, {0, 1}));
  EXPECT_EQ(impossibility_source_process(3), 2);
  // Loners hear only themselves.
  EXPECT_EQ(g.in_neighbors(0), ProcSet::singleton(6, 0));
  EXPECT_EQ(g.in_neighbors(1), ProcSet::singleton(6, 1));
  // Everyone outside L hears itself and s.
  for (ProcId p = 2; p < 6; ++p) {
    EXPECT_EQ(g.in_neighbors(p), ProcSet::of(6, {2, p}));
  }
}

TEST(ImpossibilityTest, RootComponentCountIsK) {
  // The run realizes Theorem 1's bound with equality: k-1 loner roots
  // plus the root {s}.
  for (int k = 2; k <= 4; ++k) {
    const Digraph g = impossibility_graph(7, k);
    EXPECT_EQ(root_components(g).size(), static_cast<std::size_t>(k));
  }
}

TEST(ImpossibilityTest, SourceIsConstant) {
  auto source = make_impossibility_source(5, 2);
  EXPECT_EQ(source->graph(1), source->graph(50));
  SkeletonTracker tracker(5);
  for (Round r = 1; r <= 12; ++r) {
    Digraph g = source->graph(r);
    g.add_self_loops();
    tracker.observe(r, g);
  }
  EXPECT_EQ(tracker.skeleton(), impossibility_graph(5, 2));
  EXPECT_EQ(tracker.last_change_round(), 1);  // stable from round 1
}

TEST(ImpossibilityDeathTest, RequiresOneLtKLtN) {
  EXPECT_DEATH(impossibility_graph(5, 1), "precondition");
  EXPECT_DEATH(impossibility_graph(5, 5), "precondition");
}

}  // namespace
}  // namespace sskel
