// Tests for the ♦Psrcs counterexample source.
#include "adversary/eventual.hpp"

#include <gtest/gtest.h>

#include "predicates/psrcs.hpp"
#include "skeleton/tracker.hpp"

namespace sskel {
namespace {

TEST(EventualSourceTest, IsolationThenStar) {
  auto src = make_eventual_source(4, 3);
  for (Round r = 1; r <= 3; ++r) {
    EXPECT_EQ(src->graph(r), Digraph::self_loops_only(4)) << "r=" << r;
  }
  const Digraph g4 = src->graph(4);
  for (ProcId p = 1; p < 4; ++p) EXPECT_TRUE(g4.has_edge(0, p));
}

TEST(EventualSourceTest, SuffixSatisfiesPsrcs1ButSkeletonDoesNot) {
  auto src = make_eventual_source(5, 2);
  // The per-round graph from round 3 on satisfies even Psrcs(1)...
  EXPECT_TRUE(check_psrcs_exact(src->graph(3), 1).holds);
  // ...but the *run's* skeleton lost the star edges during isolation,
  // so the (perpetual) predicate fails for every k < n-1.
  SkeletonTracker tracker(5);
  for (Round r = 1; r <= 10; ++r) tracker.observe(r, src->graph(r));
  EXPECT_EQ(tracker.skeleton(), Digraph::self_loops_only(5));
  EXPECT_FALSE(check_psrcs_exact(tracker.skeleton(), 3).holds);
}

TEST(EventualSourceTest, ZeroIsolationIsPurePsrcs1) {
  auto src = make_eventual_source(4, 0);
  SkeletonTracker tracker(4);
  for (Round r = 1; r <= 8; ++r) tracker.observe(r, src->graph(r));
  EXPECT_TRUE(check_psrcs_exact(tracker.skeleton(), 1).holds);
}

}  // namespace
}  // namespace sskel
