// Tests for the reconstructed Figure 1 run.
#include "adversary/figure1.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/scc.hpp"
#include "predicates/psrcs.hpp"
#include "skeleton/tracker.hpp"

namespace sskel {
namespace {

TEST(Figure1Test, StableSkeletonStructure) {
  const Digraph skel = figure1_stable_skeleton();
  EXPECT_EQ(skel.n(), kFigure1N);
  // 6 self-loops + 7 stable edges.
  EXPECT_EQ(skel.edge_count(), 13);
  EXPECT_TRUE(skel.has_edge(0, 1));
  EXPECT_TRUE(skel.has_edge(1, 0));
  EXPECT_TRUE(skel.has_edge(2, 3));
  EXPECT_TRUE(skel.has_edge(3, 4));
  EXPECT_TRUE(skel.has_edge(4, 2));
  EXPECT_TRUE(skel.has_edge(1, 5));
  EXPECT_TRUE(skel.has_edge(4, 5));
}

TEST(Figure1Test, RootComponentsMatchCaption) {
  std::vector<ProcSet> roots = root_components(figure1_stable_skeleton());
  ASSERT_EQ(roots.size(), 2u);
  std::sort(roots.begin(), roots.end(),
            [](const ProcSet& a, const ProcSet& b) {
              return a.first() < b.first();
            });
  EXPECT_EQ(roots[0], figure1_root_a());
  EXPECT_EQ(roots[1], figure1_root_b());
}

TEST(Figure1Test, TransientsDieAtRound3) {
  auto source = make_figure1_source();
  SkeletonTracker tracker(kFigure1N);
  for (Round r = 1; r <= 10; ++r) {
    Digraph g = source->graph(r);
    g.add_self_loops();
    tracker.observe(r, g);
  }
  EXPECT_EQ(tracker.skeleton(), figure1_stable_skeleton());
  EXPECT_EQ(tracker.last_change_round(), kFigure1StabilizationRound);
}

TEST(Figure1Test, Round2SkeletonHasTransients) {
  const Digraph g2 = figure1_round2_skeleton();
  EXPECT_TRUE(figure1_stable_skeleton().is_subgraph_of(g2));
  EXPECT_GT(g2.edge_count(), figure1_stable_skeleton().edge_count());
  EXPECT_TRUE(g2.has_edge(3, 1));
  EXPECT_TRUE(g2.has_edge(5, 0));
  EXPECT_TRUE(g2.has_edge(2, 5));
}

TEST(Figure1Test, PredicateHolds) {
  EXPECT_TRUE(check_psrcs_exact(figure1_stable_skeleton(), kFigure1K).holds);
  // Even the richer G∩2 satisfies it (supergraph of a satisfying
  // skeleton).
  EXPECT_TRUE(check_psrcs_exact(figure1_round2_skeleton(), kFigure1K).holds);
}

TEST(Figure1Test, FollowerHearsBothRoots) {
  const Digraph skel = figure1_stable_skeleton();
  EXPECT_EQ(skel.in_neighbors(5), ProcSet::of(6, {1, 4, 5}));
}

}  // namespace
}  // namespace sskel
