// Tests for the synchronous crash adversary.
#include "adversary/crash.hpp"

#include <gtest/gtest.h>

#include "graph/scc.hpp"
#include "skeleton/tracker.hpp"

namespace sskel {
namespace {

TEST(CrashSourceTest, NoCrashesIsComplete) {
  CrashSource src(4, {});
  EXPECT_EQ(src.graph(1), Digraph::complete(4));
  EXPECT_EQ(src.graph(9), Digraph::complete(4));
  EXPECT_EQ(src.correct_processes(), ProcSet::full(4));
}

TEST(CrashSourceTest, CrashDropsOutEdges) {
  CrashEvent e;
  e.victim = 1;
  e.round = 2;
  e.partial_receivers = ProcSet::of(4, {0});
  CrashSource src(4, {e});

  // Before the crash: full broadcast.
  EXPECT_TRUE(src.graph(1).has_edge(1, 3));
  // Crash round: only the partial set.
  const Digraph g2 = src.graph(2);
  EXPECT_TRUE(g2.has_edge(1, 0));
  EXPECT_FALSE(g2.has_edge(1, 2));
  EXPECT_FALSE(g2.has_edge(1, 3));
  // After: nothing (self-loop restored by the simulator, not here).
  const Digraph g3 = src.graph(3);
  EXPECT_FALSE(g3.has_edge(1, 0));
  EXPECT_FALSE(g3.has_edge(1, 3));
  // Crashed processes can still receive.
  EXPECT_TRUE(g3.has_edge(0, 1));
  EXPECT_EQ(src.correct_processes(), ProcSet::of(4, {0, 2, 3}));
}

TEST(CrashSourceTest, SkeletonHasSingleCorrectRootComponent) {
  CrashEvent e1{0, 2, ProcSet::of(5, {1})};
  CrashEvent e2{4, 3, ProcSet(5)};
  CrashSource src(5, {e1, e2});
  SkeletonTracker tracker(5);
  for (Round r = 1; r <= 10; ++r) {
    Digraph g = src.graph(r);
    g.add_self_loops();
    tracker.observe(r, g);
  }
  const auto roots = root_components(tracker.skeleton());
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0], ProcSet::of(5, {1, 2, 3}));
}

TEST(CrashSourceTest, RandomFactoryRespectsF) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto src = make_random_crash_source(seed, 8, 3, 5);
    EXPECT_EQ(src->events().size(), 3u);
    EXPECT_EQ(src->correct_processes().count(), 5);
    ProcSet victims(8);
    for (const CrashEvent& e : src->events()) {
      EXPECT_FALSE(victims.contains(e.victim));  // distinct victims
      victims.insert(e.victim);
      EXPECT_GE(e.round, 1);
      EXPECT_LE(e.round, 5);
    }
  }
}

TEST(CrashSourceDeathTest, DuplicateVictimRejected) {
  CrashEvent e1{0, 1, ProcSet(3)};
  CrashEvent e2{0, 2, ProcSet(3)};
  EXPECT_DEATH(CrashSource(3, {e1, e2}), "precondition");
}

}  // namespace
}  // namespace sskel
