// Unit tests for ScheduleSource / FunctionSource.
#include "rounds/graph_source.hpp"

#include <gtest/gtest.h>

namespace sskel {
namespace {

TEST(ScheduleSourceTest, PrefixThenRepeatLast) {
  Digraph g1(3);
  g1.add_edge(0, 1);
  Digraph g2(3);
  g2.add_edge(1, 2);
  ScheduleSource src({g1, g2});
  EXPECT_EQ(src.n(), 3);
  EXPECT_EQ(src.prefix_rounds(), 2u);
  EXPECT_EQ(src.graph(1), g1);
  EXPECT_EQ(src.graph(2), g2);
  EXPECT_EQ(src.graph(3), g2);
  EXPECT_EQ(src.graph(100), g2);
}

TEST(FunctionSourceTest, DelegatesToCallable) {
  FunctionSource src(4, [](Round r) {
    Digraph g(4);
    if (r % 2 == 0) g.add_edge(0, 1);
    return g;
  });
  EXPECT_EQ(src.n(), 4);
  EXPECT_FALSE(src.graph(1).has_edge(0, 1));
  EXPECT_TRUE(src.graph(2).has_edge(0, 1));
}

TEST(ScheduleSourceDeathTest, EmptyPrefixRejected) {
  EXPECT_DEATH(ScheduleSource(std::vector<Digraph>{}), "precondition");
}

TEST(ScheduleSourceDeathTest, MixedUniversesRejected) {
  EXPECT_DEATH(ScheduleSource({Digraph(3), Digraph(4)}), "precondition");
}

}  // namespace
}  // namespace sskel
