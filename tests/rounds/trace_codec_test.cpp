// The framed trace container: canonical round-trips over every ProcSet
// representation tier, plus hostile-input sweeps (truncation at every
// byte boundary, single-bit flips, structural frame corruption) that
// must end in a DecodeError — never an abort, OOM or OOB access.
#include "rounds/trace.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/proc_set.hpp"
#include "util/rng.hpp"
#include "util/varint.hpp"

namespace sskel {
namespace {

/// A capture exercising every frame type and both payload branches
/// (with/without message bytes).
RunCapture sample_capture(ProcId n, std::uint64_t seed) {
  Rng rng(seed);
  RunCapture c;
  c.header = TraceHeader{n, TraceSource::kNetRing, seed, 1000};
  for (Round r = 1; r <= 4; ++r) {
    Digraph g(n);
    for (ProcId p = 0; p < n; ++p) g.add_edge(p, p);
    for (int e = 0; e < 3 * n; ++e) {
      const auto q = static_cast<ProcId>(
          rng.next_below(static_cast<std::uint64_t>(n)));
      const auto p = static_cast<ProcId>(
          rng.next_below(static_cast<std::uint64_t>(n)));
      g.add_edge(q, p);
    }
    c.graphs.push_back(g);
    c.stats.push_back(RoundStats{r, static_cast<std::int64_t>(n) * n,
                                 1234 + r, 200 + r});
    for (ProcId p = 0; p < n; ++p) {
      c.messages.push_back(MessageRecord{
          r, p, {static_cast<std::uint8_t>(p), 0xff, 0x00}});
      c.deliveries.push_back(DeliveryRecord{
          r, p, static_cast<ProcId>((p + 1) % n),
          static_cast<DeliveryKind>(p % 4), 1000 * r + p});
      c.closes.push_back(CloseRecord{r, p, 1000 * r + 900 + p});
    }
  }
  // An empty-payload message and an in-flight round past the graphs.
  c.messages.push_back(MessageRecord{5, 0, {}});
  c.deliveries.push_back(
      DeliveryRecord{5, 0, 1, DeliveryKind::kDropped, 5000});
  return c;
}

TEST(TraceCodecTest, RoundTripAllFrameTypes) {
  const RunCapture c = sample_capture(7, 0xABCD);
  const std::vector<std::uint8_t> bytes = encode_trace(c);
  DecodeResult<RunCapture> back = decode_trace(bytes);
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  EXPECT_EQ(back.value(), c);
  // The container is canonical for captures in schedule order.
  EXPECT_EQ(encode_trace(back.value()), bytes);
}

TEST(TraceCodecTest, RoundTripAcrossProcSetTiers) {
  // The graph bitmaps must encode identically whatever representation
  // the ProcSets currently use: dense-only, and tiered with a
  // threshold low enough that n = 40 rows adopt the sparse form.
  const std::size_t saved = ProcSet::tier_threshold_words();
  std::vector<std::uint8_t> dense_bytes;
  {
    ScopedTierPolicy scope(ProcSet::TierPolicy::kDenseOnly);
    dense_bytes = encode_trace(sample_capture(40, 77));
  }
  ProcSet::set_tier_threshold_words(1);
  const std::vector<std::uint8_t> tiered_bytes =
      encode_trace(sample_capture(40, 77));
  DecodeResult<RunCapture> tiered_back = decode_trace(tiered_bytes);
  ProcSet::set_tier_threshold_words(saved);

  EXPECT_EQ(dense_bytes, tiered_bytes);
  ASSERT_TRUE(tiered_back.ok());
  EXPECT_EQ(tiered_back.value(), sample_capture(40, 77));
}

TEST(TraceCodecTest, MinimalCapture) {
  RunCapture c;
  c.header = TraceHeader{1, TraceSource::kSimulator, 0, 0};
  DecodeResult<RunCapture> back = decode_trace(encode_trace(c));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), c);
}

TEST(TraceCodecHostileTest, TruncationAtEveryBoundaryIsGraceful) {
  const std::vector<std::uint8_t> full = encode_trace(sample_capture(5, 3));
  for (std::size_t len = 0; len < full.size(); ++len) {
    const std::vector<std::uint8_t> cut(full.begin(),
                                        full.begin() + static_cast<long>(len));
    DecodeResult<RunCapture> r = decode_trace(cut);
    EXPECT_FALSE(r.ok()) << "prefix of length " << len << " decoded";
  }
}

TEST(TraceCodecHostileTest, SingleBitFlipsNeverCrashAndStayDeterministic) {
  const std::vector<std::uint8_t> full = encode_trace(sample_capture(5, 9));
  for (std::size_t byte = 0; byte < full.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> mutated = full;
      mutated[byte] ^= static_cast<std::uint8_t>(1u << bit);
      DecodeResult<RunCapture> r = decode_trace(mutated);
      if (!r.ok()) continue;  // graceful rejection is the common case
      // A flip that still decodes (e.g. a seed bit) must land in a
      // stable state: re-encoding and re-decoding is the identity.
      const std::vector<std::uint8_t> re = encode_trace(r.value());
      DecodeResult<RunCapture> again = decode_trace(re);
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(again.value(), r.value())
          << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(TraceCodecHostileTest, BadMagicAndVersionRejected) {
  std::vector<std::uint8_t> bytes = encode_trace(sample_capture(3, 1));
  bytes[2] = 'X';
  DecodeResult<RunCapture> r = decode_trace(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().status, DecodeStatus::kBadMagic);
  EXPECT_EQ(r.error().offset, 2u);

  bytes = encode_trace(sample_capture(3, 1));
  bytes[4] = 0x63;  // version 99
  r = decode_trace(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().status, DecodeStatus::kBadVersion);

  EXPECT_EQ(decode_trace({}).error().status, DecodeStatus::kTruncated);
}

TEST(TraceCodecHostileTest, StructuralFrameErrorsRejected) {
  const RunCapture c = sample_capture(3, 2);
  const std::vector<std::uint8_t> good = encode_trace(c);

  // Frame length claiming more payload than the input holds.
  {
    std::vector<std::uint8_t> bytes(good.begin(), good.begin() + 5);
    bytes.push_back(static_cast<std::uint8_t>(TraceFrame::kHeader));
    put_varint(bytes, 1u << 20);
    EXPECT_EQ(decode_trace(bytes).error().status,
              DecodeStatus::kLimitExceeded);
  }
  // Unknown frame type.
  {
    std::vector<std::uint8_t> bytes(good.begin(), good.end() - 2);
    bytes.push_back(0x99);
    put_varint(bytes, 0);
    bytes.push_back(static_cast<std::uint8_t>(TraceFrame::kEnd));
    put_varint(bytes, 0);
    EXPECT_EQ(decode_trace(bytes).error().status, DecodeStatus::kBadFrame);
  }
  // First frame is not the header.
  {
    std::vector<std::uint8_t> bytes(good.begin(), good.begin() + 5);
    bytes.push_back(static_cast<std::uint8_t>(TraceFrame::kEnd));
    put_varint(bytes, 0);
    EXPECT_EQ(decode_trace(bytes).error().status, DecodeStatus::kBadFrame);
  }
  // Frames after the end marker.
  {
    std::vector<std::uint8_t> bytes = good;
    bytes.push_back(static_cast<std::uint8_t>(TraceFrame::kEnd));
    put_varint(bytes, 0);
    EXPECT_EQ(decode_trace(bytes).error().status,
              DecodeStatus::kTrailingBytes);
  }
  // Missing end marker (clean frame boundary, still truncated).
  {
    std::vector<std::uint8_t> bytes(good.begin(), good.end() - 2);
    EXPECT_EQ(decode_trace(bytes).error().status, DecodeStatus::kTruncated);
  }
}

TEST(TraceCodecHostileTest, DuplicateHeaderAndRoundOrderRejected) {
  RunCapture c;
  c.header = TraceHeader{4, TraceSource::kNetEventQueue, 5, 800};
  Digraph g(4);
  g.add_self_loops();
  c.graphs = {g, g};
  const std::vector<std::uint8_t> good = encode_trace(c);

  // Duplicate header: replay the header frame right after itself.
  {
    // magic(4) + version(1) + header frame = type(1) + len(1) + payload.
    const std::size_t header_len = static_cast<std::size_t>(good[6]);
    const std::size_t header_end = 7 + header_len;
    std::vector<std::uint8_t> bytes(good.begin(), good.begin() +
                                    static_cast<long>(header_end));
    bytes.insert(bytes.end(), good.begin() + 5,
                 good.begin() + static_cast<long>(header_end));
    bytes.insert(bytes.end(), good.begin() + static_cast<long>(header_end),
                 good.end());
    EXPECT_EQ(decode_trace(bytes).error().status, DecodeStatus::kBadFrame);
  }
  // Graph rounds must be consecutive from 1: drop the first graph
  // frame so round 2 arrives first.
  {
    const std::size_t header_len = static_cast<std::size_t>(good[6]);
    const std::size_t header_end = 7 + header_len;
    const std::size_t g1_len =
        static_cast<std::size_t>(good[header_end + 1]);
    const std::size_t g1_end = header_end + 2 + g1_len;
    std::vector<std::uint8_t> bytes(good.begin(),
                                    good.begin() + static_cast<long>(header_end));
    bytes.insert(bytes.end(), good.begin() + static_cast<long>(g1_end),
                 good.end());
    EXPECT_EQ(decode_trace(bytes).error().status, DecodeStatus::kBadFrame);
  }
}

TEST(TraceCodecHostileTest, MessageSizeMustMatchFrameRemainder) {
  RunCapture c;
  c.header = TraceHeader{2, TraceSource::kSimulator, 0, 0};
  c.messages.push_back(MessageRecord{1, 0, {0xaa, 0xbb}});
  std::vector<std::uint8_t> bytes = encode_trace(c);
  // The message frame payload is [round=1][sender=0][size=2][aa][bb];
  // shrink the declared size so two trailing bytes dangle.
  const std::size_t size_pos = bytes.size() - 5;  // before aa bb + end frame
  ASSERT_EQ(bytes[size_pos], 2u);
  bytes[size_pos] = 1;
  EXPECT_EQ(decode_trace(bytes).error().status, DecodeStatus::kLimitExceeded);
}

}  // namespace
}  // namespace sskel
