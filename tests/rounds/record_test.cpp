// Tests for run recording, replay and the run codec.
#include "rounds/record.hpp"

#include <gtest/gtest.h>

#include "adversary/random_psrcs.hpp"
#include "kset/runner.hpp"

namespace sskel {
namespace {

TEST(RecordingSourceTest, CapturesServedGraphs) {
  RandomPsrcsParams params;
  params.n = 6;
  params.k = 2;
  params.root_components = 2;
  RandomPsrcsSource inner(4, params);
  RecordingSource recorder(inner);
  for (Round r = 1; r <= 5; ++r) {
    const Digraph g = recorder.graph(r);
    EXPECT_EQ(g, inner.graph(r));  // inner is a pure function of r
  }
  EXPECT_EQ(recorder.recorded().size(), 5u);
  // Re-queries of past rounds come from the capture.
  EXPECT_EQ(recorder.graph(3), inner.graph(3));
  EXPECT_EQ(recorder.recorded().size(), 5u);
}

TEST(ReplaySourceTest, ReplaysAndRepeatsLast) {
  Digraph a(3);
  a.add_edge(0, 1);
  Digraph b(3);
  b.add_edge(1, 2);
  ReplaySource replay({a, b});
  EXPECT_EQ(replay.graph(1), a);
  EXPECT_EQ(replay.graph(2), b);
  EXPECT_EQ(replay.graph(7), b);
  EXPECT_EQ(replay.n(), 3);
}

TEST(RunCodecTest, RoundTrip) {
  RandomPsrcsParams params;
  params.n = 11;
  params.k = 3;
  params.root_components = 3;
  params.noise_probability = 0.4;
  RandomPsrcsSource source(9, params);
  std::vector<Digraph> run;
  for (Round r = 1; r <= 8; ++r) run.push_back(source.graph(r));

  const std::vector<std::uint8_t> bytes = encode_run(run);
  const std::vector<Digraph> back = decode_run(bytes);
  ASSERT_EQ(back.size(), run.size());
  for (std::size_t i = 0; i < run.size(); ++i) EXPECT_EQ(back[i], run[i]);
}

TEST(RunCodecTest, PreservesNodeAbsence) {
  Digraph g(5);
  g.add_edge(0, 1);
  g.remove_node(4);
  const std::vector<Digraph> back = decode_run(encode_run({g}));
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0], g);
  EXPECT_FALSE(back[0].has_node(4));
}

TEST(RecordReplayTest, ReplayedRunReproducesDecisionsExactly) {
  // Record a live run, replay the capture, and compare every outcome —
  // the reproduce-a-bug workflow.
  RandomPsrcsParams params;
  params.n = 8;
  params.k = 2;
  params.root_components = 2;
  params.stabilization_round = 3;
  RandomPsrcsSource inner(17, params);
  RecordingSource recorder(inner);

  KSetRunConfig config;
  config.k = 2;
  const KSetRunReport live = run_kset(recorder, config);
  ASSERT_TRUE(live.all_decided);

  ReplaySource replay(recorder.recorded());
  const KSetRunReport replayed = run_kset(replay, config);

  ASSERT_EQ(replayed.outcomes.size(), live.outcomes.size());
  for (std::size_t p = 0; p < live.outcomes.size(); ++p) {
    EXPECT_EQ(replayed.outcomes[p].decision, live.outcomes[p].decision);
    EXPECT_EQ(replayed.outcomes[p].decision_round,
              live.outcomes[p].decision_round);
  }
  EXPECT_EQ(replayed.final_skeleton, live.final_skeleton);
}

TEST(RunCodecDeathTest, TrailingGarbageRejected) {
  std::vector<std::uint8_t> bytes = encode_run({Digraph(3)});
  bytes.push_back(0);
  EXPECT_DEATH(decode_run(bytes), "precondition");
}

}  // namespace
}  // namespace sskel
