// Tests for run recording, replay and the run codec.
#include "rounds/record.hpp"

#include <gtest/gtest.h>

#include "adversary/random_psrcs.hpp"
#include "kset/runner.hpp"
#include "util/varint.hpp"

namespace sskel {
namespace {

TEST(RecordingSourceTest, CapturesServedGraphs) {
  RandomPsrcsParams params;
  params.n = 6;
  params.k = 2;
  params.root_components = 2;
  RandomPsrcsSource inner(4, params);
  RecordingSource recorder(inner);
  for (Round r = 1; r <= 5; ++r) {
    const Digraph g = recorder.graph(r);
    EXPECT_EQ(g, inner.graph(r));  // inner is a pure function of r
  }
  EXPECT_EQ(recorder.recorded().size(), 5u);
  // Re-queries of past rounds come from the capture.
  EXPECT_EQ(recorder.graph(3), inner.graph(3));
  EXPECT_EQ(recorder.recorded().size(), 5u);
}

TEST(ReplaySourceTest, ReplaysAndRepeatsLast) {
  Digraph a(3);
  a.add_edge(0, 1);
  Digraph b(3);
  b.add_edge(1, 2);
  ReplaySource replay({a, b});
  EXPECT_EQ(replay.graph(1), a);
  EXPECT_EQ(replay.graph(2), b);
  EXPECT_EQ(replay.graph(7), b);
  EXPECT_EQ(replay.n(), 3);
}

TEST(RunCodecTest, RoundTrip) {
  RandomPsrcsParams params;
  params.n = 11;
  params.k = 3;
  params.root_components = 3;
  params.noise_probability = 0.4;
  RandomPsrcsSource source(9, params);
  std::vector<Digraph> run;
  for (Round r = 1; r <= 8; ++r) run.push_back(source.graph(r));

  const std::vector<std::uint8_t> bytes = encode_run(run);
  DecodeResult<std::vector<Digraph>> back = decode_run(bytes);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().size(), run.size());
  for (std::size_t i = 0; i < run.size(); ++i) {
    EXPECT_EQ(back.value()[i], run[i]);
  }
  // The layout is canonical, so decode inverts encode *and* vice versa.
  EXPECT_EQ(encode_run(back.value()), bytes);
}

TEST(RunCodecTest, PreservesNodeAbsence) {
  Digraph g(5);
  g.add_edge(0, 1);
  g.remove_node(4);
  DecodeResult<std::vector<Digraph>> back = decode_run(encode_run({g}));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().size(), 1u);
  EXPECT_EQ(back.value()[0], g);
  EXPECT_FALSE(back.value()[0].has_node(4));
}

TEST(RecordReplayTest, ReplayedRunReproducesDecisionsExactly) {
  // Record a live run, replay the capture, and compare every outcome —
  // the reproduce-a-bug workflow.
  RandomPsrcsParams params;
  params.n = 8;
  params.k = 2;
  params.root_components = 2;
  params.stabilization_round = 3;
  RandomPsrcsSource inner(17, params);
  RecordingSource recorder(inner);

  KSetRunConfig config;
  config.k = 2;
  const KSetRunReport live = run_kset(recorder, config);
  ASSERT_TRUE(live.all_decided);

  ReplaySource replay(recorder.recorded());
  const KSetRunReport replayed = run_kset(replay, config);

  ASSERT_EQ(replayed.outcomes.size(), live.outcomes.size());
  for (std::size_t p = 0; p < live.outcomes.size(); ++p) {
    EXPECT_EQ(replayed.outcomes[p].decision, live.outcomes[p].decision);
    EXPECT_EQ(replayed.outcomes[p].decision_round,
              live.outcomes[p].decision_round);
  }
  EXPECT_EQ(replayed.final_skeleton, live.final_skeleton);
}

// --- hostile-input regressions -------------------------------------
//
// decode_run sees untrusted bytes (shared captures, fuzz corpora); it
// must reject every malformed input with a DecodeError, never abort,
// over-allocate, or mis-decode.

DecodeStatus decode_status(const std::vector<std::uint8_t>& bytes) {
  DecodeResult<std::vector<Digraph>> r = decode_run(bytes);
  return r.ok() ? DecodeStatus::kOk : r.error().status;
}

TEST(RunCodecHostileTest, TrailingGarbageRejected) {
  std::vector<std::uint8_t> bytes = encode_run({Digraph(3)});
  bytes.push_back(0);
  EXPECT_EQ(decode_status(bytes), DecodeStatus::kTrailingBytes);
}

TEST(RunCodecHostileTest, HugeRoundCountRejectedBeforeAllocation) {
  // Regression: `graphs.reserve(rounds)` used to trust the varint, so
  // a claimed 2^40 rounds demanded a terabyte-scale allocation. The
  // count must be bounded by the bytes actually present.
  std::vector<std::uint8_t> bytes;
  put_varint(bytes, 3);                       // n = 3
  put_varint(bytes, std::uint64_t{1} << 40);  // rounds
  EXPECT_EQ(decode_status(bytes), DecodeStatus::kLimitExceeded);
}

TEST(RunCodecHostileTest, UniverseBeyondProcIdRejectedBeforeCast) {
  // Regression: n was narrowed to ProcId before any range check, so
  // n = 2^32 + 3 aliased n = 3 and decoded a *different* capture.
  std::vector<std::uint8_t> bytes;
  put_varint(bytes, (std::uint64_t{1} << 32) + 3);
  put_varint(bytes, 1);  // rounds
  bytes.push_back(0x07); // would be a valid n = 3 node bitmap
  for (int row = 0; row < 3; ++row) bytes.push_back(0x00);
  DecodeResult<std::vector<Digraph>> r = decode_run(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().status, DecodeStatus::kValueOutOfRange);
  EXPECT_EQ(r.error().offset, 0u);  // points at the n varint
}

TEST(RunCodecHostileTest, UniverseAboveDecodeCapRejected) {
  std::vector<std::uint8_t> bytes;
  put_varint(bytes, kMaxDecodeUniverse + 1);
  put_varint(bytes, 1);
  EXPECT_EQ(decode_status(bytes), DecodeStatus::kValueOutOfRange);
}

TEST(RunCodecHostileTest, OverlongVarintRejected) {
  // Regression: get_varint accepted 0x83 0x00 as 3 (an overlong
  // encoding), so two distinct byte strings decoded to one capture.
  std::vector<std::uint8_t> bytes = {0x83, 0x00};
  std::vector<std::uint8_t> rest = encode_run({Digraph(3)});
  bytes.insert(bytes.end(), rest.begin() + 1, rest.end());
  EXPECT_EQ(decode_status(bytes), DecodeStatus::kOverlongVarint);
}

TEST(RunCodecHostileTest, ZeroUniverseAndZeroRoundsRejected) {
  std::vector<std::uint8_t> zero_n;
  put_varint(zero_n, 0);
  put_varint(zero_n, 1);
  EXPECT_EQ(decode_status(zero_n), DecodeStatus::kValueOutOfRange);

  std::vector<std::uint8_t> zero_rounds;
  put_varint(zero_rounds, 3);
  put_varint(zero_rounds, 0);
  EXPECT_EQ(decode_status(zero_rounds), DecodeStatus::kValueOutOfRange);
}

TEST(RunCodecHostileTest, EdgeTouchingAbsentNodeRejected) {
  // A row bitmap naming a node outside the node bitmap is not a graph:
  // Digraph::add_edge would silently re-add the node.
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  std::vector<std::uint8_t> bytes = encode_run({g});
  const std::size_t node_bitmap = bytes.size() - 4;
  ASSERT_EQ(bytes[node_bitmap], 0x07);
  // Drop node 2 from the node bitmap while row 0 still targets it.
  bytes[node_bitmap] = 0x03;
  EXPECT_EQ(decode_status(bytes), DecodeStatus::kInvalidEdge);

  // Out-edges *from* an absent node are equally malformed.
  bytes[node_bitmap + 1] = 0x02;  // row 0 back in range (0 -> 1)
  bytes[node_bitmap + 3] = 0x01;  // absent node 2 -> 0
  EXPECT_EQ(decode_status(bytes), DecodeStatus::kInvalidEdge);
}

TEST(RunCodecHostileTest, PaddingBitsMustBeZero) {
  std::vector<std::uint8_t> bytes = encode_run({Digraph(3)});
  bytes[bytes.size() - 4] |= 0xf8;  // set bits >= n in the node bitmap
  EXPECT_EQ(decode_status(bytes), DecodeStatus::kValueOutOfRange);
}

TEST(RunCodecHostileTest, TruncationAtEveryBoundaryIsGraceful) {
  Digraph g(9);
  g.add_edge(0, 1);
  g.add_edge(5, 8);
  const std::vector<std::uint8_t> full = encode_run({g, g});
  for (std::size_t len = 0; len < full.size(); ++len) {
    const std::vector<std::uint8_t> cut(full.begin(),
                                        full.begin() + static_cast<long>(len));
    DecodeResult<std::vector<Digraph>> r = decode_run(cut);
    EXPECT_FALSE(r.ok()) << "prefix of length " << len << " decoded";
  }
}

}  // namespace
}  // namespace sskel
