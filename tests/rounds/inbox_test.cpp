// Tests for Inbox: the senders/from contract and the word-walking
// for_each used by message-plane transition functions.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "rounds/algorithm.hpp"

namespace sskel {
namespace {

TEST(InboxTest, SendersAndFrom) {
  const ProcId n = 5;
  ProcSet senders(n);
  senders.insert(1);
  senders.insert(3);
  std::vector<std::string> messages(static_cast<std::size_t>(n));
  messages[1] = "one";
  messages[3] = "three";
  const Inbox<std::string> inbox(senders, messages);
  EXPECT_EQ(inbox.senders().count(), 2);
  EXPECT_EQ(inbox.from(1), "one");
  EXPECT_EQ(inbox.from(3), "three");
}

TEST(InboxTest, ForEachMatchesIterationAcrossWords) {
  // A universe wider than one payload word, with senders on both
  // sides of the boundary and at both ends: for_each must visit
  // exactly senders(), ascending, with the matching payloads.
  const ProcId n = 150;
  ProcSet senders(n);
  for (ProcId q : {0, 1, 63, 64, 65, 127, 128, 149}) senders.insert(q);
  std::vector<int> messages(static_cast<std::size_t>(n), -1);
  for (ProcId q : senders) messages[static_cast<std::size_t>(q)] = 1000 + q;

  const Inbox<int> inbox(senders, messages);
  std::vector<std::pair<ProcId, int>> via_for_each;
  inbox.for_each([&](ProcId q, const int& msg) {
    via_for_each.emplace_back(q, msg);
  });

  std::vector<std::pair<ProcId, int>> via_iteration;
  for (ProcId q : inbox.senders()) {
    via_iteration.emplace_back(q, inbox.from(q));
  }
  EXPECT_EQ(via_for_each, via_iteration);
  ASSERT_EQ(via_for_each.size(), 8u);
  EXPECT_EQ(via_for_each.front(), (std::pair<ProcId, int>{0, 1000}));
  EXPECT_EQ(via_for_each.back(), (std::pair<ProcId, int>{149, 1149}));
}

TEST(InboxTest, ForEachOnEmptySendersVisitsNothing) {
  const ProcId n = 100;
  const ProcSet senders(n);
  const std::vector<int> messages(static_cast<std::size_t>(n), 0);
  const Inbox<int> inbox(senders, messages);
  int visits = 0;
  inbox.for_each([&](ProcId, const int&) { ++visits; });
  EXPECT_EQ(visits, 0);
}

}  // namespace
}  // namespace sskel
