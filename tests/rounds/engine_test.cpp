// Tests for the RoundEngine boundary itself: run_until's predicate
// discipline, observer-bus semantics, and the end-of-round cut — the
// contracts every substrate (simulator, network driver) must honor.
#include "rounds/engine.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "rounds/graph_source.hpp"
#include "rounds/simulator.hpp"

namespace sskel {
namespace {

/// Counts its own transitions; message is the sender id.
class CountingProcess final : public Algorithm<int> {
 public:
  CountingProcess(ProcId n, ProcId id) : Algorithm(n, id) {}
  int send(Round) override { return static_cast<int>(id()); }
  void transition(Round, const Inbox<int>&) override { ++transitions; }
  int transitions = 0;
};

std::vector<std::unique_ptr<Algorithm<int>>> make_counters(ProcId n) {
  std::vector<std::unique_ptr<Algorithm<int>>> procs;
  for (ProcId p = 0; p < n; ++p) {
    procs.push_back(std::make_unique<CountingProcess>(n, p));
  }
  return procs;
}

ScheduleSource complete_source(ProcId n) {
  return ScheduleSource({Digraph::complete(n)});
}

TEST(RoundEngineTest, RunUntilEvaluatesDoneOncePerRoundPlusEntry) {
  ScheduleSource source = complete_source(3);
  Simulator<int> sim(source, make_counters(3));
  RoundEngine<int>& engine = sim;

  int evaluations = 0;
  const bool fired = engine.run_until(
      [&] {
        ++evaluations;
        return false;
      },
      5);
  EXPECT_FALSE(fired);
  EXPECT_EQ(engine.rounds_completed(), 5);
  // Once on entry + once after each of the 5 rounds — never a second
  // evaluation at the max_rounds cap.
  EXPECT_EQ(evaluations, 6);
}

TEST(RoundEngineTest, RunUntilEntryTrueRunsNoRounds) {
  ScheduleSource source = complete_source(3);
  Simulator<int> sim(source, make_counters(3));

  int evaluations = 0;
  const bool fired = sim.run_until(
      [&] {
        ++evaluations;
        return true;
      },
      5);
  EXPECT_TRUE(fired);
  EXPECT_EQ(evaluations, 1);
  EXPECT_EQ(sim.rounds_completed(), 0);
}

TEST(RoundEngineTest, RunUntilStopsAtFirstTrueEvaluation) {
  ScheduleSource source = complete_source(2);
  Simulator<int> sim(source, make_counters(2));

  int evaluations = 0;
  const bool fired = sim.run_until(
      [&] {
        ++evaluations;
        return sim.rounds_completed() >= 3;
      },
      10);
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.rounds_completed(), 3);
  EXPECT_EQ(evaluations, 4);  // entry + rounds 1..3
}

TEST(RoundEngineTest, ObserversFireInRegistrationOrder) {
  ScheduleSource source = complete_source(2);
  Simulator<int> sim(source, make_counters(2));

  std::vector<int> order;
  sim.add_observer([&](Round, const Digraph&) { order.push_back(1); });
  sim.add_observer([&](Round, const Digraph&) { order.push_back(2); });
  EXPECT_EQ(sim.observers().size(), 2u);

  sim.run(2);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2}));
}

TEST(RoundEngineTest, ObserversSeeEndOfRoundState) {
  // The bus fires after all transitions: an observer reading process
  // state must see the *completed* round on every substrate.
  ScheduleSource source = complete_source(3);
  auto procs = make_counters(3);
  std::vector<const CountingProcess*> views;
  for (const auto& p : procs) {
    views.push_back(static_cast<const CountingProcess*>(p.get()));
  }
  Simulator<int> sim(source, std::move(procs));

  std::vector<int> seen;
  sim.add_observer([&](Round r, const Digraph& g) {
    EXPECT_EQ(g.n(), 3);
    for (const CountingProcess* v : views) {
      EXPECT_EQ(v->transitions, r) << "observer fired before transitions";
    }
    seen.push_back(static_cast<int>(r));
  });
  sim.run(4);
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 3, 4}));
}

TEST(RoundEngineTest, PolymorphicAccessMatchesConcrete) {
  ScheduleSource source = complete_source(4);
  Simulator<int> sim(source, make_counters(4));
  RoundEngine<int>& engine = sim;

  EXPECT_EQ(engine.n(), 4);
  const Digraph& g = engine.step();
  EXPECT_EQ(g, Digraph::complete(4));
  EXPECT_EQ(engine.rounds_completed(), 1);
  for (ProcId p = 0; p < 4; ++p) {
    const auto& proc =
        dynamic_cast<const CountingProcess&>(engine.process(p));
    EXPECT_EQ(proc.transitions, 1);
  }
}

TEST(RoundEngineTest, TraceAccumulatesThroughBase) {
  ScheduleSource source = complete_source(3);
  Simulator<int> sim(source, make_counters(3));
  RoundEngine<int>& engine = sim;
  engine.set_message_sizer([](const int&) { return std::int64_t{5}; });
  engine.run(2);
  // Complete graph on 3 nodes: 9 deliveries per round.
  EXPECT_EQ(engine.trace().total_messages(), 18);
  EXPECT_EQ(engine.trace().total_bytes(), 90);
  EXPECT_EQ(engine.trace().max_message_bytes(), 5);
}

}  // namespace
}  // namespace sskel
