// Unit tests for the round simulator: delivery semantics,
// communication closure, self-loops, accounting, observers.
#include "rounds/simulator.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace sskel {
namespace {

/// Test algorithm: broadcasts its id each round and records exactly
/// which senders it heard from per round.
class EchoProcess final : public Algorithm<ProcId> {
 public:
  EchoProcess(ProcId n, ProcId id) : Algorithm(n, id) {}

  ProcId send(Round /*r*/) override { return id(); }

  void transition(Round /*r*/, const Inbox<ProcId>& inbox) override {
    heard.push_back(inbox.senders());
    // Payload sanity: each message carries its sender's id.
    for (ProcId q : inbox.senders()) EXPECT_EQ(inbox.from(q), q);
  }

  std::vector<ProcSet> heard;
};

/// Counts how often send runs before any transition in a round
/// (communication closure check).
class PhaseOrderProcess final : public Algorithm<int> {
 public:
  PhaseOrderProcess(ProcId n, ProcId id, int* sends, int* transitions)
      : Algorithm(n, id), sends_(sends), transitions_(transitions) {}

  int send(Round /*r*/) override {
    // All sends of round r run before any transition of round r: when
    // the s-th send fires, exactly floor(s / n) * n transitions (all
    // from previous rounds) may have run.
    EXPECT_EQ(*transitions_, (*sends_ / n()) * n())
        << "send observed a transition from its own round";
    ++*sends_;
    return 0;
  }

  void transition(Round /*r*/, const Inbox<int>& /*inbox*/) override {
    ++*transitions_;
  }

 private:
  int* sends_;
  int* transitions_;
};

template <typename Proc, typename... Args>
std::vector<std::unique_ptr<Algorithm<typename Proc::message_type>>>
make_procs(ProcId n, Args&&... args) {
  std::vector<std::unique_ptr<Algorithm<typename Proc::message_type>>> procs;
  for (ProcId p = 0; p < n; ++p) {
    procs.push_back(std::make_unique<Proc>(n, p, args...));
  }
  return procs;
}

TEST(SimulatorTest, DeliversAlongGraphEdges) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(2, 1);
  ScheduleSource src({g});

  auto procs = make_procs<EchoProcess>(3);
  std::vector<EchoProcess*> views;
  for (auto& p : procs) views.push_back(static_cast<EchoProcess*>(p.get()));
  Simulator<ProcId> sim(src, std::move(procs));
  sim.step();

  // p1 hears p0, p2 and itself (self-loop closure); others only self.
  EXPECT_EQ(views[1]->heard[0], ProcSet::of(3, {0, 1, 2}));
  EXPECT_EQ(views[0]->heard[0], ProcSet::singleton(3, 0));
  EXPECT_EQ(views[2]->heard[0], ProcSet::singleton(3, 2));
}

TEST(SimulatorTest, SelfLoopAlwaysDelivered) {
  // Even an empty graph delivers every process its own message.
  ScheduleSource src({Digraph(4)});
  auto procs = make_procs<EchoProcess>(4);
  std::vector<EchoProcess*> views;
  for (auto& p : procs) views.push_back(static_cast<EchoProcess*>(p.get()));
  Simulator<ProcId> sim(src, std::move(procs));
  sim.step();
  for (ProcId p = 0; p < 4; ++p) {
    EXPECT_EQ(views[static_cast<std::size_t>(p)]->heard[0],
              ProcSet::singleton(4, p));
  }
}

TEST(SimulatorTest, CommunicationClosedPhases) {
  int sends = 0;
  int transitions = 0;
  ScheduleSource src({Digraph::complete(3)});
  auto procs = make_procs<PhaseOrderProcess>(3, &sends, &transitions);
  Simulator<int> sim(src, std::move(procs));
  sim.run(4);
  EXPECT_EQ(sends, 12);
  EXPECT_EQ(transitions, 12);
}

TEST(SimulatorTest, RoundCounterAndTrace) {
  ScheduleSource src({Digraph::complete(3)});
  auto procs = make_procs<EchoProcess>(3);
  Simulator<ProcId> sim(src, std::move(procs));
  EXPECT_EQ(sim.current_round(), 0);
  sim.run(5);
  EXPECT_EQ(sim.current_round(), 5);
  EXPECT_EQ(sim.trace().rounds_executed(), 5);
  // Complete graph on 3 nodes: 9 deliveries per round.
  EXPECT_EQ(sim.trace().total_messages(), 45);
}

TEST(SimulatorTest, MessageSizerAccounting) {
  ScheduleSource src({Digraph::complete(2)});
  auto procs = make_procs<EchoProcess>(2);
  Simulator<ProcId> sim(src, std::move(procs));
  sim.set_message_sizer([](const ProcId&) { return std::int64_t{10}; });
  sim.step();
  EXPECT_EQ(sim.trace().total_bytes(), 40);  // 4 deliveries x 10 bytes
  EXPECT_EQ(sim.trace().max_message_bytes(), 10);
}

TEST(SimulatorTest, ObserverSeesClosedGraph) {
  Digraph g(3);
  g.add_edge(0, 1);
  ScheduleSource src({g});
  auto procs = make_procs<EchoProcess>(3);
  Simulator<ProcId> sim(src, std::move(procs));
  std::vector<Round> rounds_seen;
  sim.add_observer([&](Round r, const Digraph& graph) {
    rounds_seen.push_back(r);
    EXPECT_TRUE(graph.has_edge(0, 0));  // self-loops closed
    EXPECT_TRUE(graph.has_edge(0, 1));
  });
  sim.run(3);
  EXPECT_EQ(rounds_seen, (std::vector<Round>{1, 2, 3}));
}

TEST(SimulatorTest, RunUntilStopsAtPredicate) {
  ScheduleSource src({Digraph::complete(2)});
  auto procs = make_procs<EchoProcess>(2);
  Simulator<ProcId> sim(src, std::move(procs));
  const bool fired =
      sim.run_until([&] { return sim.current_round() >= 3; }, 10);
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.current_round(), 3);

  const bool fired2 = sim.run_until([&] { return false; }, 5);
  EXPECT_FALSE(fired2);
  EXPECT_EQ(sim.current_round(), 5);
}

}  // namespace
}  // namespace sskel
