// Tests for the KSetRunner harness.
#include "kset/runner.hpp"

#include <gtest/gtest.h>

#include "adversary/figure1.hpp"
#include "adversary/random_psrcs.hpp"

namespace sskel {
namespace {

TEST(RunnerTest, DefaultProposalsDistinct) {
  const std::vector<Value> v = default_proposals(4);
  EXPECT_EQ(v, (std::vector<Value>{7, 107, 207, 307}));
}

TEST(RunnerTest, CompleteGraphReachesConsensus) {
  std::vector<Digraph> prefix{Digraph::complete(4)};
  ScheduleSource src(std::move(prefix));
  KSetRunConfig config;
  config.k = 1;
  const KSetRunReport report = run_kset(src, config);
  EXPECT_TRUE(report.all_decided);
  EXPECT_TRUE(report.verdict.all_hold());
  EXPECT_EQ(report.distinct_values, 1);
  EXPECT_EQ(report.outcomes[0].decision, 7);  // the min proposal
  EXPECT_EQ(report.root_components_final.size(), 1u);
}

TEST(RunnerTest, CustomProposalsRespected) {
  ScheduleSource src({Digraph::complete(3)});
  KSetRunConfig config;
  config.k = 1;
  config.proposals = {42, 42, 41};
  const KSetRunReport report = run_kset(src, config);
  EXPECT_EQ(report.outcomes[0].decision, 41);
  EXPECT_TRUE(report.verdict.validity);
}

TEST(RunnerTest, ReportsSkeletonData) {
  auto source = make_figure1_source();
  KSetRunConfig config;
  config.k = kFigure1K;
  config.tail_rounds = 4;
  const KSetRunReport report = run_kset(*source, config);
  EXPECT_EQ(report.final_skeleton, figure1_stable_skeleton());
  EXPECT_EQ(report.skeleton_last_change, kFigure1StabilizationRound);
  EXPECT_EQ(report.root_components_final.size(), 2u);
}

TEST(RunnerTest, MessageAccountingWhenEnabled) {
  ScheduleSource src({Digraph::complete(3)});
  KSetRunConfig config;
  config.k = 1;
  config.measure_bytes = true;
  const KSetRunReport report = run_kset(src, config);
  EXPECT_GT(report.total_bytes, 0);
  EXPECT_GT(report.max_message_bytes, 0);
  EXPECT_GT(report.total_messages, 0);

  KSetRunConfig off = config;
  off.measure_bytes = false;
  ScheduleSource src2({Digraph::complete(3)});
  const KSetRunReport report2 = run_kset(src2, off);
  EXPECT_EQ(report2.total_bytes, 0);
  EXPECT_EQ(report2.total_messages, report.total_messages);
}

TEST(RunnerTest, MaxRoundsCapStopsNonDecidingRuns) {
  // A source that keeps every process alone... still decides (loners
  // decide own values). To exercise the cap, use max_rounds smaller
  // than the guard.
  ScheduleSource src({Digraph::self_loops_only(5)});
  KSetRunConfig config;
  config.k = 5;
  config.max_rounds = 3;  // < n+1: nobody can decide yet
  const KSetRunReport report = run_kset(src, config);
  EXPECT_FALSE(report.all_decided);
  EXPECT_EQ(report.rounds_executed, 3);
}

TEST(RunnerTest, GuardVariantsBothSafe) {
  for (DecisionGuard guard :
       {DecisionGuard::kAfterRoundN, DecisionGuard::kAtRoundN}) {
    RandomPsrcsParams params;
    params.n = 8;
    params.k = 3;
    params.root_components = 3;
    RandomPsrcsSource source(5, params);
    KSetRunConfig config;
    config.k = 3;
    config.guard = guard;
    const KSetRunReport report = run_kset(source, config);
    EXPECT_TRUE(report.all_decided);
    EXPECT_TRUE(report.verdict.all_hold());
    EXPECT_LE(report.last_decision_round,
              report.termination_bound(guard));
  }
}

TEST(RunnerTest, TerminationBoundFormula) {
  KSetRunReport report;
  report.n = 6;
  report.skeleton_last_change = 3;
  EXPECT_EQ(report.termination_bound(DecisionGuard::kAtRoundN), 3 + 11);
  EXPECT_EQ(report.termination_bound(DecisionGuard::kAfterRoundN), 3 + 12);
  report.skeleton_last_change = 0;  // stable from the start
  EXPECT_EQ(report.termination_bound(DecisionGuard::kAtRoundN), 1 + 11);
}

TEST(RunnerTest, LemmaMonitorAttachedProducesCleanRun) {
  RandomPsrcsParams params;
  params.n = 6;
  params.k = 2;
  params.root_components = 2;
  params.stabilization_round = 4;
  params.noise_probability = 0.35;
  RandomPsrcsSource source(21, params);
  KSetRunConfig config;
  config.k = 2;
  config.attach_lemma_monitor = true;
  config.tail_rounds = 6;
  const KSetRunReport report = run_kset(source, config);
  EXPECT_TRUE(report.all_decided);
  EXPECT_TRUE(report.lemma_violations.empty())
      << report.lemma_violations.front();
}

}  // namespace
}  // namespace sskel
